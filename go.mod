module plfs

go 1.22
