// Federated metadata: the paper's §V experiment in miniature.
//
// A 512-process N-N create storm (every process creates its own file)
// runs against the simulated cluster with PLFS configured for 1, 4, and
// 10 metadata volumes, plus direct access.  Spreading containers across
// metadata domains breaks the single-directory serialization.
//
// Run:
//
//	go run ./examples/federated-metadata
package main

import (
	"fmt"
	"log"

	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

func main() {
	const ranks = 512
	storm := workloads.CreateStorm{FilesPerRank: 1}

	run := func(volumes int) workloads.Result {
		cfg := pfs.SmallCluster()
		if volumes > 0 {
			cfg.Volumes = volumes
		}
		res, err := harness.Run(harness.Job{
			Seed: 7, Ranks: ranks, Cfg: cfg, Net: mpi.DefaultNet(),
			Opt: plfs.Options{
				IndexMode:        plfs.ParallelIndexRead,
				NumSubdirs:       4,
				SpreadContainers: volumes > 1,
			},
			Kernel: storm, UsePLFS: volumes > 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("N-N create storm: %d processes, one file each\n\n", ranks)
	direct := run(0)
	fmt.Printf("%-10s open %7.3fs   close %7.3fs\n", "direct", direct.WriteOpen.Seconds(), direct.WriteClose.Seconds())
	for _, v := range []int{1, 4, 10} {
		r := run(v)
		fmt.Printf("plfs-%-5d open %7.3fs   close %7.3fs   (open speedup vs direct: %.1fx)\n",
			v, r.WriteOpen.Seconds(), r.WriteClose.Seconds(),
			direct.WriteOpen.Seconds()/r.WriteOpen.Seconds())
	}
	fmt.Println("\nPLFS-1 pays container-creation overhead on one metadata server;")
	fmt.Println("federating the namespace across volumes turns that into a win.")
}
