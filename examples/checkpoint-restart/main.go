// Checkpoint-restart on the simulated cluster: the paper's headline
// scenario end to end.
//
// A 256-process job on the simulated 64-node cluster writes an N-1
// checkpoint and restarts from it, once directly against the parallel
// file system and once through PLFS.  The run prints the write/read
// bandwidths and open times of both, showing the transform's effect.
//
// Run:
//
//	go run ./examples/checkpoint-restart
package main

import (
	"fmt"
	"log"

	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

func main() {
	const ranks = 256
	kernel := workloads.MPIIOTest(50<<20, 50<<10) // 50 MB per rank in 50 KB ops, as §IV.C

	run := func(usePLFS bool) workloads.Result {
		cfg := pfs.SmallCluster()
		res, err := harness.Run(harness.Job{
			Seed: 42, Ranks: ranks, Cfg: cfg, Net: mpi.DefaultNet(),
			Opt: plfs.Options{
				IndexMode:  plfs.ParallelIndexRead,
				NumSubdirs: 32,
			},
			Kernel: kernel, UsePLFS: usePLFS, ReadBack: true, Verify: true,
			DropCaches: true, // a restart happens on a fresh (rebooted) machine
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	direct := run(false)
	viaPLFS := run(true)

	fmt.Printf("simulated cluster: 64 nodes x 16 cores, PanFS-class storage (1.25 GB/s peak)\n")
	fmt.Printf("workload: %d processes, N-1 strided checkpoint, 50 MB/proc in 50 KB ops\n\n", ranks)
	row := func(name string, r workloads.Result) {
		fmt.Printf("%-8s write %7.1f MB/s (close %6.3fs)   read %7.1f MB/s (open %6.3fs)\n",
			name, r.WriteBW(ranks)/1e6, r.WriteClose.Seconds(),
			r.ReadBW(ranks)/1e6, r.ReadOpen.Seconds())
	}
	row("direct", direct)
	row("plfs", viaPLFS)
	fmt.Printf("\ncheckpoint (write) speedup through PLFS: %.1fx\n",
		direct.WriteTotal().Seconds()/viaPLFS.WriteTotal().Seconds())
	fmt.Printf("restart  (read)  speedup through PLFS: %.1fx\n",
		direct.ReadTotal().Seconds()/viaPLFS.ReadTotal().Seconds())
}
