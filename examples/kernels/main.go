// Kernels: run the paper's application I/O kernels (Pixie3D via the mini
// Parallel-NetCDF library, ARAMCO via the mini HDF library, IOR, MADbench,
// LANL 1, LANL 3 with collective buffering) at a small scale, through
// PLFS and directly, and print effective read bandwidths — a miniature of
// the paper's Figure 5.
//
// Run:
//
//	go run ./examples/kernels
package main

import (
	"fmt"
	"log"

	"plfs/internal/adio"
	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

func main() {
	const ranks = 64
	type entry struct {
		kernel workloads.Kernel
		hints  adio.Hints
	}
	kernels := []entry{
		{workloads.Pixie3D{BytesPerRank: 128 << 20, Vars: 8}, adio.Hints{}},
		{workloads.Aramco{TotalBytes: 4 << 30}, adio.Hints{}},
		{workloads.IOR(50<<20, 1<<20), adio.Hints{}},
		{workloads.Madbench{Matrices: 4, MatrixBytes: 16 << 20}, adio.Hints{}},
		{workloads.LANL1(50 << 20), adio.Hints{}},
		{workloads.LANL3(4<<30, ranks), adio.Hints{CollectiveBuffering: true, ProcsPerNode: 16}},
	}

	fmt.Printf("%-12s %14s %14s %10s\n", "kernel", "direct MB/s", "plfs MB/s", "speedup")
	for _, k := range kernels {
		bw := func(usePLFS bool) float64 {
			res, err := harness.Run(harness.Job{
				Seed: 3, Ranks: ranks, Cfg: pfs.SmallCluster(), Net: mpi.DefaultNet(),
				Opt:    plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 32},
				Hints:  k.hints,
				Kernel: k.kernel, UsePLFS: usePLFS, ReadBack: true, Verify: true,
				DropCaches: true, // reads measure storage, not page cache
			})
			if err != nil {
				log.Fatalf("%s: %v", k.kernel.Name(), err)
			}
			return res.ReadBW(ranks) / 1e6
		}
		direct := bw(false)
		viaPLFS := bw(true)
		fmt.Printf("%-12s %14.1f %14.1f %9.2fx\n", k.kernel.Name(), direct, viaPLFS, viaPLFS/direct)
	}
	fmt.Println("\n(effective read bandwidth: open+read+close in the denominator, as in the paper)")
}
