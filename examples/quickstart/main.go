// Quickstart: PLFS as a real middleware library over a local directory.
//
// Eight concurrent goroutine "ranks" write one logical checkpoint file
// N-1 strided through PLFS; the logical file becomes a container of
// per-rank log-structured droppings on disk.  The file is then read back
// and verified, and the container anatomy is printed.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"plfs/internal/localcomm"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

const (
	ranks  = 8
	blocks = 4
	bs     = 64 << 10 // 64 KiB per write
)

func main() {
	root, err := os.MkdirTemp("", "plfs-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)
	fmt.Println("backing store (the 'parallel file system'):", root)

	mount := plfs.NewMount([]string{root}, plfs.Options{
		IndexMode:  plfs.ParallelIndexRead,
		NumSubdirs: 4,
	})

	// --- Write phase: N ranks, one logical file, strided N-1 pattern. ---
	comms := localcomm.New(ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx := plfs.Ctx{
				Vols:       []plfs.Backend{osfs.New()},
				Rank:       r,
				Host:       r / 4, // pretend 4 ranks per node
				HostLeader: r%4 == 0,
				Comm:       comms[r],
			}
			w, err := mount.Create(ctx, "checkpoint.001")
			if err != nil {
				log.Fatalf("rank %d: create: %v", r, err)
			}
			for k := 0; k < blocks; k++ {
				// Logical offset is strided; the physical write is always a
				// sequential append to this rank's private data dropping.
				off := int64(k*ranks+r) * bs
				if err := w.Write(off, payload.Synthetic(uint64(r+1), off, bs)); err != nil {
					log.Fatalf("rank %d: write: %v", r, err)
				}
			}
			if err := w.Close(); err != nil {
				log.Fatalf("rank %d: close: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	fmt.Printf("wrote checkpoint.001: %d ranks x %d blocks x %d KiB (N-1 strided)\n",
		ranks, blocks, bs>>10)

	// --- What actually landed on the backing store. ---
	fmt.Println("\ncontainer anatomy on the backing store:")
	filepath.Walk(filepath.Join(root, "checkpoint.001"), func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, p)
		kind := "file"
		if info.IsDir() {
			kind = "dir "
		}
		fmt.Printf("  %s %-55s %8d bytes\n", kind, rel, info.Size())
		return nil
	})

	// --- Read phase: serial reader (the FUSE-style path). ---
	ctx := plfs.Ctx{Vols: []plfs.Backend{osfs.New()}, HostLeader: true}
	rd, err := mount.OpenReader(ctx, "checkpoint.001")
	if err != nil {
		log.Fatal(err)
	}
	defer rd.Close()
	fmt.Printf("\nread open: mode=%s, aggregated %d index records from %d droppings\n",
		rd.Stats.Mode, rd.Stats.RawEntries, rd.Stats.Droppings)
	fmt.Printf("logical size: %d bytes\n", rd.Size())

	for r := 0; r < ranks; r++ {
		for k := 0; k < blocks; k++ {
			off := int64(k*ranks+r) * bs
			got, err := rd.ReadAt(off, bs)
			if err != nil {
				log.Fatal(err)
			}
			want := payload.List{payload.Synthetic(uint64(r+1), off, bs)}
			if !payload.ContentEqual(got, want) {
				log.Fatalf("verification failed at rank %d block %d", r, k)
			}
		}
	}
	fmt.Println("verified: every byte maps back to the rank that wrote it")
}
