// POSIX interposition: the FUSE-style path, end to end, on a real
// directory — plus the administrative tooling.
//
// A mini-HDF file is written through the VFS mount (transparently
// transformed into a PLFS container), then statted, checked, flattened,
// renamed, and read back through plain POSIX-style calls.
//
// Run:
//
//	go run ./examples/posix-vfs
package main

import (
	"fmt"
	"log"
	"os"

	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
	"plfs/internal/vfs"
)

func main() {
	root, err := os.MkdirTemp("", "plfs-vfs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	mount := plfs.NewMount([]string{root}, plfs.Options{NumSubdirs: 2})
	ctx := plfs.Ctx{Vols: []plfs.Backend{osfs.New()}, HostLeader: true}
	v := vfs.New(ctx)
	v.MountPLFS("/ckpt", mount)

	// --- Write through the POSIX surface. ---
	fd, err := v.Open("/ckpt/dump.0001", vfs.OWronly|vfs.OCreate)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := v.Write(fd, payload.FromBytes([]byte(fmt.Sprintf("record-%03d|", i)))); err != nil {
			log.Fatal(err)
		}
	}
	// A backfill at an earlier offset — PLFS logs it, the index resolves it.
	if err := v.Pwrite(fd, 0, payload.FromBytes([]byte("RECORD"))); err != nil {
		log.Fatal(err)
	}
	if err := v.Close(fd); err != nil {
		log.Fatal(err)
	}

	fi, err := v.Stat("/ckpt/dump.0001")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stat: %s is a logical file of %d bytes (really a container)\n", fi.Name, fi.Size)

	// --- Administrative tooling on the same container. ---
	rep, err := mount.Check(ctx, "dump.0001")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("check:", rep)

	if err := mount.Flatten(ctx, "dump.0001"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("flattened: reads now use a single global index")

	if err := v.Rename("/ckpt/dump.0001", "/ckpt/dump.final"); err != nil {
		log.Fatal(err)
	}

	// --- Read back via sequential POSIX reads. ---
	rd, err := v.Open("/ckpt/dump.final", vfs.ORdonly)
	if err != nil {
		log.Fatal(err)
	}
	defer v.Close(rd)
	var all []byte
	for {
		pl, err := v.Read(rd, 13)
		if err != nil {
			log.Fatal(err)
		}
		if pl.Len() == 0 {
			break
		}
		all = append(all, pl.Materialize()...)
	}
	fmt.Printf("read back: %q\n", all)
	if string(all[:6]) != "RECORD" {
		log.Fatal("backfilled bytes did not win")
	}
	fmt.Println("the later Pwrite overwrote the log-structured earlier bytes, as POSIX demands")
}
