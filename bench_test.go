// Package repro's top-level benchmarks regenerate every evaluation figure
// of the paper, one benchmark per table/figure panel.  Benchmarks run the
// Quick-scale configuration so `go test -bench=.` finishes promptly and
// report the figure's headline quantities as custom metrics; the paper-
// scale regeneration is `go run ./cmd/plfsbench -fig all -scale paper`
// (what EXPERIMENTS.md records).
//
// Run a single figure at paper scale through the bench harness with:
//
//	go test -bench=Fig8d -benchtime=1x -scale=paper
package repro

import (
	"flag"
	"fmt"
	"testing"

	"plfs/internal/harness"
	"plfs/internal/stats"
)

var scaleFlag = flag.String("scale", "quick", "bench scale: quick | paper")

func benchOpts() harness.Options {
	o := harness.Options{Scale: harness.Quick, Reps: 1}
	if *scaleFlag == "paper" {
		o.Scale = harness.Paper
		o.Reps = 3
	}
	return o
}

// runFigure executes one figure per benchmark iteration and reports a
// selection of its points as benchmark metrics.
func runFigure(b *testing.B, id string, metrics func(b *testing.B, tabs []*stats.Table)) {
	b.Helper()
	fig, ok := harness.FindFigure(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		tabs, err := fig.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && metrics != nil {
			metrics(b, tabs)
		}
	}
}

// lastX returns the largest x of a series and its mean value there.
func lastX(tab *stats.Table, series string) (x, mean float64) {
	for _, p := range tab.Points() {
		if p.Series == series && p.X >= x {
			x, mean = p.X, p.Mean
		}
	}
	return
}

// BenchmarkFig2WriteSpeedup regenerates Figure 2: the summary of N-1
// write speedups through PLFS across the workload suite.
func BenchmarkFig2WriteSpeedup(b *testing.B) {
	runFigure(b, "fig2", func(b *testing.B, tabs []*stats.Table) {
		best := 0.0
		for _, p := range tabs[0].Points() {
			if p.Mean > best {
				best = p.Mean
			}
		}
		b.ReportMetric(best, "max-speedup-x")
	})
}

// benchFig4 shares one Fig. 4 regeneration across the four panels.
func benchFig4(b *testing.B, panel int, metric string, series string) {
	runFigure(b, "fig4", func(b *testing.B, tabs []*stats.Table) {
		_, v := lastX(tabs[panel], series)
		b.ReportMetric(v, metric)
	})
}

// BenchmarkFig4aReadOpenTime regenerates Figure 4a (read open time).
func BenchmarkFig4aReadOpenTime(b *testing.B) {
	benchFig4(b, 0, "original-open-sec", "original")
}

// BenchmarkFig4bReadBandwidth regenerates Figure 4b (effective read
// bandwidth).
func BenchmarkFig4bReadBandwidth(b *testing.B) {
	benchFig4(b, 1, "flatten-read-MBps", "index-flatten")
}

// BenchmarkFig4cWriteCloseTime regenerates Figure 4c (write close time).
func BenchmarkFig4cWriteCloseTime(b *testing.B) {
	benchFig4(b, 2, "flatten-close-sec", "index-flatten")
}

// BenchmarkFig4dWriteBandwidth regenerates Figure 4d (effective write
// bandwidth).
func BenchmarkFig4dWriteBandwidth(b *testing.B) {
	benchFig4(b, 3, "flatten-write-MBps", "index-flatten")
}

// benchFig5 regenerates one Figure 5 kernel panel and reports the PLFS
// over direct read-bandwidth ratio at the largest process count.
func benchFig5(b *testing.B, id string) {
	runFigure(b, id, func(b *testing.B, tabs []*stats.Table) {
		x, plfsBW := lastX(tabs[0], "plfs")
		if p, ok := tabs[0].Lookup("direct", x); ok && p.Mean > 0 {
			b.ReportMetric(plfsBW/p.Mean, "plfs-vs-direct-x")
		}
	})
}

// BenchmarkFig5aPixie3D regenerates Figure 5a.
func BenchmarkFig5aPixie3D(b *testing.B) { benchFig5(b, "fig5a") }

// BenchmarkFig5bAramco regenerates Figure 5b.
func BenchmarkFig5bAramco(b *testing.B) { benchFig5(b, "fig5b") }

// BenchmarkFig5cIOR regenerates Figure 5c.
func BenchmarkFig5cIOR(b *testing.B) { benchFig5(b, "fig5c") }

// BenchmarkFig5dMadbench regenerates Figure 5d.
func BenchmarkFig5dMadbench(b *testing.B) { benchFig5(b, "fig5d") }

// BenchmarkFig5eLANL1 regenerates Figure 5e.
func BenchmarkFig5eLANL1(b *testing.B) { benchFig5(b, "fig5e") }

// BenchmarkFig5fLANL3 regenerates Figure 5f.
func BenchmarkFig5fLANL3(b *testing.B) { benchFig5(b, "fig5f") }

// BenchmarkFig7aNNOpenTime regenerates Figure 7a (N-N open time vs MDS
// count).
func BenchmarkFig7aNNOpenTime(b *testing.B) {
	runFigure(b, "fig7", func(b *testing.B, tabs []*stats.Table) {
		x, direct := lastX(tabs[0], "w/o-plfs")
		if p, ok := tabs[0].Lookup("plfs-9", x); ok && p.Mean > 0 {
			b.ReportMetric(direct/p.Mean, "plfs9-open-speedup-x")
		}
	})
}

// BenchmarkFig7bNNCloseTime regenerates Figure 7b (N-N close time).
func BenchmarkFig7bNNCloseTime(b *testing.B) {
	runFigure(b, "fig7", func(b *testing.B, tabs []*stats.Table) {
		_, v := lastX(tabs[1], "w/o-plfs")
		b.ReportMetric(v, "direct-close-sec")
	})
}

// BenchmarkFig8aLargeScaleRead regenerates Figure 8a (large-scale read
// bandwidth on the Cielo profile).
func BenchmarkFig8aLargeScaleRead(b *testing.B) {
	runFigure(b, "fig8a", func(b *testing.B, tabs []*stats.Table) {
		_, v := lastX(tabs[0], "n-1 plfs")
		b.ReportMetric(v, "n1-plfs-MBps")
	})
}

// BenchmarkFig8bLargeNNOpen regenerates Figure 8b (PLFS-1/10/20 N-N open).
func BenchmarkFig8bLargeNNOpen(b *testing.B) {
	runFigure(b, "fig8b", func(b *testing.B, tabs []*stats.Table) {
		x, one := lastX(tabs[0], "plfs-1")
		if p, ok := tabs[0].Lookup("plfs-10", x); ok && p.Mean > 0 {
			b.ReportMetric(one/p.Mean, "plfs10-vs-plfs1-x")
		}
	})
}

// BenchmarkFig8cLargeN1Open regenerates Figure 8c (N-1 open time).
func BenchmarkFig8cLargeN1Open(b *testing.B) {
	runFigure(b, "fig8c", func(b *testing.B, tabs []*stats.Table) {
		_, v := lastX(tabs[0], "plfs-10")
		b.ReportMetric(v, "plfs10-open-sec")
	})
}

// BenchmarkFig8dOpenSpeedup regenerates Figure 8d (the 17x claim).
func BenchmarkFig8dOpenSpeedup(b *testing.B) {
	runFigure(b, "fig8d", func(b *testing.B, tabs []*stats.Table) {
		_, v := lastX(tabs[0], "speedup")
		b.ReportMetric(v, "open-speedup-x")
	})
}

// BenchmarkAblationFlattenThreshold sweeps the Index Flatten threshold.
func BenchmarkAblationFlattenThreshold(b *testing.B) {
	runFigure(b, "ablation-flatten", nil)
}

// BenchmarkAblationGroupCount sweeps the Parallel Index Read group size.
func BenchmarkAblationGroupCount(b *testing.B) {
	runFigure(b, "ablation-groups", nil)
}

// BenchmarkAblationDecodeWorkers A/Bs the index-aggregation worker pool
// (simulated results identical; host wall-clock is the payoff).
func BenchmarkAblationDecodeWorkers(b *testing.B) {
	runFigure(b, "ablation-workers", nil)
}

// BenchmarkAblationLockUnit sweeps the range-lock granularity.
func BenchmarkAblationLockUnit(b *testing.B) {
	runFigure(b, "ablation-lockunit", nil)
}

// BenchmarkAblationSpreadMode compares federation spread modes.
func BenchmarkAblationSpreadMode(b *testing.B) {
	runFigure(b, "ablation-spread", nil)
}

// Example of the figure registry (keeps the doc honest).
func Example() {
	for _, f := range harness.Figures() {
		_ = fmt.Sprintf("%s: %s", f.ID, f.Title)
	}
	fmt.Println(len(harness.Figures()) > 0)
	// Output: true
}

// BenchmarkAblationDegradedOST measures resilience to a degraded disk group.
func BenchmarkAblationDegradedOST(b *testing.B) {
	runFigure(b, "ablation-degraded", nil)
}

// BenchmarkAblationChecksum measures the cost of checksummed framing
// (Options.Checksum) on an N-1 write: CRC32C trailers on index metadata
// plus per-extent data checksums in the recovery footer.
func BenchmarkAblationChecksum(b *testing.B) {
	runFigure(b, "ablation-checksum", nil)
}

// BenchmarkAblationIndexCompress A/Bs run-compressed index records,
// reporting the index-byte shrink factor the compression buys.
func BenchmarkAblationIndexCompress(b *testing.B) {
	runFigure(b, "ablation-index-compress", func(b *testing.B, tabs []*stats.Table) {
		_, off := lastX(tabs[1], "index-bytes") // x=1 is compression on
		if p, ok := tabs[1].Lookup("index-bytes", 0); ok && off > 0 {
			b.ReportMetric(p.Mean/off, "index-shrink-x")
		}
	})
}

// BenchmarkAblationIndexCache A/Bs the cross-open index cache on the
// reopen kernel, reporting the total-open-time speedup.
func BenchmarkAblationIndexCache(b *testing.B) {
	runFigure(b, "ablation-index-cache", func(b *testing.B, tabs []*stats.Table) {
		_, on := lastX(tabs[0], "read-open-total")
		if p, ok := tabs[0].Lookup("read-open-total", 0); ok && on > 0 {
			b.ReportMetric(p.Mean/on, "reopen-speedup-x")
		}
	})
}

// BenchmarkAblationSieveGap sweeps the sieving read-coalescing gap on
// the checkpoint-restart kernel.
func BenchmarkAblationSieveGap(b *testing.B) {
	runFigure(b, "ablation-sieve-gap", nil)
}
