package mpi

import (
	"fmt"
	"testing"
	"time"

	"plfs/internal/sim"
)

// runWorld spawns fn on every rank of a fresh world and runs the engine.
func runWorld(t *testing.T, n int, fn func(*Rank)) *sim.Engine {
	t.Helper()
	eng := sim.NewEngine(1)
	w := NewWorld(eng, n, 16, DefaultNet())
	w.SpawnAll(fn)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// worldSizes exercises non-trivial, non-power-of-two cases.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 33}

func TestSendRecv(t *testing.T) {
	runWorld(t, 2, func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 5, 100, "hello")
		} else {
			m := r.Recv(0, 5)
			if m.Val.(string) != "hello" || m.Bytes != 100 {
				t.Errorf("got %+v", m)
			}
		}
	})
}

func TestSendRecvOrderingPerTag(t *testing.T) {
	runWorld(t, 2, func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 9, 8, i)
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := r.Recv(0, 9).Val.(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
				}
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range worldSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var minAfter, maxBefore sim.Time = 1 << 62, -1
			runWorld(t, n, func(r *Rank) {
				// Stagger arrivals.
				r.Proc().Sleep(time.Duration(r.Rank()) * time.Millisecond)
				if now := r.Proc().Now(); now > maxBefore {
					maxBefore = now
				}
				r.Comm().Barrier()
				if now := r.Proc().Now(); now < minAfter {
					minAfter = now
				}
			})
			if minAfter < maxBefore {
				t.Fatalf("a rank left the barrier at %v before the last arrived at %v", minAfter, maxBefore)
			}
		})
	}
}

func TestBcastAllSizesAllRoots(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n; root += 1 + n/3 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d/root=%d", n, root), func(t *testing.T) {
				runWorld(t, n, func(r *Rank) {
					var v any
					if r.Rank() == root {
						v = "val"
					}
					if got := r.Comm().Bcast(root, 64, v); got.(string) != "val" {
						t.Errorf("rank %d got %v", r.Rank(), got)
					}
				})
			})
		}
	}
}

func TestGatherAllSizes(t *testing.T) {
	for _, n := range worldSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			root := n / 2
			runWorld(t, n, func(r *Rank) {
				vals := r.Comm().Gather(root, 8, r.Rank()*3)
				if r.Rank() == root {
					if len(vals) != n {
						t.Errorf("gather len = %d", len(vals))
						return
					}
					for i, v := range vals {
						if v.(int) != i*3 {
							t.Errorf("gather[%d] = %v", i, v)
						}
					}
				} else if vals != nil {
					t.Errorf("non-root got %v", vals)
				}
			})
		})
	}
}

func TestScatterAllSizes(t *testing.T) {
	for _, n := range worldSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			root := (n - 1) / 2
			runWorld(t, n, func(r *Rank) {
				var vs []any
				if r.Rank() == root {
					vs = make([]any, n)
					for i := range vs {
						vs[i] = i * 7
					}
				}
				got := r.Comm().Scatter(root, 8, vs)
				if got.(int) != r.Rank()*7 {
					t.Errorf("rank %d scatter got %v", r.Rank(), got)
				}
			})
		})
	}
}

func TestAllgatherAllSizes(t *testing.T) {
	for _, n := range worldSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			runWorld(t, n, func(r *Rank) {
				vals := r.Comm().Allgather(8, r.Rank()+100)
				for i, v := range vals {
					if v.(int) != i+100 {
						t.Errorf("allgather[%d] = %v at rank %d", i, v, r.Rank())
					}
				}
			})
		})
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	sum := func(a, b any) any { return a.(int) + b.(int) }
	for _, n := range worldSizes {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			want := n * (n - 1) / 2
			runWorld(t, n, func(r *Rank) {
				c := r.Comm()
				got := c.Reduce(0, 8, r.Rank(), sum)
				if r.Rank() == 0 && got.(int) != want {
					t.Errorf("reduce = %v, want %d", got, want)
				}
				all := c.Allreduce(8, r.Rank(), sum)
				if all.(int) != want {
					t.Errorf("allreduce = %v at rank %d", all, r.Rank())
				}
			})
		})
	}
}

func TestAlltoall(t *testing.T) {
	const n = 5
	runWorld(t, n, func(r *Rank) {
		vs := make([]any, n)
		nb := make([]int64, n)
		for i := range vs {
			vs[i] = r.Rank()*100 + i // value destined for rank i
			nb[i] = 16
		}
		got := r.Comm().Alltoall(nb, vs)
		for src, v := range got {
			if v.(int) != src*100+r.Rank() {
				t.Errorf("alltoall[%d] = %v at rank %d", src, v, r.Rank())
			}
		}
	})
}

func TestSplitAndSubCollectives(t *testing.T) {
	const n = 12
	runWorld(t, n, func(r *Rank) {
		c := r.Comm()
		sub := c.Split(r.Rank()%3, r.Rank())
		if sub.Size() != 4 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// Group members share a color; gather world ranks at sub-root.
		vals := sub.Gather(0, 8, r.Rank())
		if sub.Rank() == 0 {
			for i, v := range vals {
				if v.(int)%3 != r.Rank()%3 {
					t.Errorf("member %d has wrong color: %v", i, v)
				}
			}
		}
		// The parent communicator still works after splitting.
		c.Barrier()
	})
}

func TestConsecutiveCollectivesNoCrosstalk(t *testing.T) {
	runWorld(t, 9, func(r *Rank) {
		c := r.Comm()
		for i := 0; i < 30; i++ {
			root := i % 9
			var v any
			if r.Rank() == root {
				v = i
			}
			if got := c.Bcast(root, 8, v); got.(int) != i {
				t.Errorf("iter %d got %v", i, got)
				return
			}
		}
	})
}

// TestBcastScalesLogarithmically checks the cost model: broadcasting to 4x
// the ranks must cost far less than 4x the time (binomial tree).
func TestBcastScalesLogarithmically(t *testing.T) {
	cost := func(n int) sim.Time {
		eng := sim.NewEngine(1)
		w := NewWorld(eng, n, 16, DefaultNet())
		w.SpawnAll(func(r *Rank) {
			var v any
			if r.Rank() == 0 {
				v = 1
			}
			r.Comm().Bcast(0, 1<<20, v)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	t64, t256 := cost(64), cost(256)
	if ratio := float64(t256) / float64(t64); ratio > 2.5 {
		t.Fatalf("bcast 256/64 cost ratio = %.2f, want logarithmic (<2.5)", ratio)
	}
}

// TestSameNodeTransfersCheaper checks that intra-node messages use memory
// bandwidth, not the NIC.
func TestSameNodeTransfersCheaper(t *testing.T) {
	cost := func(procsPerNode int) sim.Time {
		eng := sim.NewEngine(1)
		w := NewWorld(eng, 2, procsPerNode, NetConfig{NICBW: 1e9, Latency: time.Microsecond, MemBW: 100e9})
		w.Spawn(0, func(r *Rank) { r.Send(1, 1, 100<<20, nil) })
		w.Spawn(1, func(r *Rank) { r.Recv(0, 1) })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	same := cost(2)  // both ranks on one node
	cross := cost(1) // one rank per node
	if same*10 > cross {
		t.Fatalf("same-node %v not much cheaper than cross-node %v", same, cross)
	}
}

func TestGatherVolumeGrowsUpTree(t *testing.T) {
	// Total NIC traffic for a gather should exceed n×nbytes (interior
	// forwarding) but stay well under n²×nbytes.
	const n, nb = 32, 1 << 10
	eng := sim.NewEngine(1)
	w := NewWorld(eng, n, 1, DefaultNet()) // 1 proc/node: all traffic on NICs
	w.SpawnAll(func(r *Rank) { r.Comm().Gather(0, nb, r.Rank()) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var moved int64
	for _, nic := range w.nics {
		moved += nic.Moved
	}
	moved /= 2 // counted at both sender and receiver NIC
	if moved < (n-1)*nb || moved > n*n*nb/2 {
		t.Fatalf("gather moved %d bytes, outside tree bounds", moved)
	}
}
