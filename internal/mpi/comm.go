package mpi

import (
	"plfs/internal/comm"
	"plfs/internal/sim"
)

// Comm is a communicator over a subset of world ranks.  It implements
// comm.Comm.  members holds world ranks in communicator-rank order;
// me is this process's communicator rank.
type Comm struct {
	r       *Rank
	id      int
	members []int
	me      int
	seq     int // collective sequence number (advances in lockstep)
}

var _ comm.Comm = (*Comm)(nil)

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.me }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank returns the world rank of communicator rank i.
func (c *Comm) WorldRank(i int) int { return c.members[i] }

// tag builds a collision-free message tag from (comm, collective instance,
// round).  Collectives advance seq in lockstep on every member, so a tag
// uniquely identifies one round of one collective on one communicator.
// Field widths: 16 bits of round (Alltoall uses one round per shift),
// 24 bits of sequence, the rest comm id; offset clear of user tags.
func (c *Comm) tag(round int) int {
	return (c.id<<40 | c.seq<<16 | round) + 1<<62
}

func (c *Comm) send(dst, round int, nbytes int64, val any) {
	c.r.Send(c.members[dst], c.tag(round), nbytes, val)
}

func (c *Comm) recv(src, round int) sim.Msg {
	return c.r.Recv(c.members[src], c.tag(round))
}

// Barrier uses the dissemination algorithm: ceil(log2 n) rounds of
// shifted pairwise notifications.
func (c *Comm) Barrier() {
	defer func() { c.seq++ }()
	n := len(c.members)
	round := 0
	for k := 1; k < n; k <<= 1 {
		dst := (c.me + k) % n
		src := (c.me - k + n) % n
		c.send(dst, round, 0, nil)
		c.recv(src, round)
		round++
	}
}

// Bcast distributes root's v along a binomial tree.
func (c *Comm) Bcast(root int, nbytes int64, v any) any {
	defer func() { c.seq++ }()
	n := len(c.members)
	if n == 1 {
		return v
	}
	rel := (c.me - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (c.me - mask + n) % n
			v = c.recv(src, 0).Val
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (c.me + mask) % n
			c.send(dst, 0, nbytes, v)
		}
		mask >>= 1
	}
	return v
}

// gatherTree runs a binomial gather of per-rank values toward root and
// returns the full slice (indexed by comm rank) at root, nil elsewhere.
// Interior nodes forward their accumulated subtree, so message sizes grow
// up the tree exactly as in MPICH's binomial gather.
func (c *Comm) gatherTree(root int, nbytes int64, v any) []any {
	defer func() { c.seq++ }()
	n := len(c.members)
	acc := map[int]any{c.me: v} // comm rank -> value
	rel := (c.me - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			if rel+mask < n {
				src := (c.me + mask) % n
				m := c.recv(src, 0)
				for k, val := range m.Val.(map[int]any) {
					acc[k] = val
				}
			}
		} else {
			dst := (c.me - mask + n) % n
			c.send(dst, 0, int64(len(acc))*nbytes, acc)
			return nil
		}
		mask <<= 1
	}
	out := make([]any, n)
	for k, val := range acc {
		out[k] = val
	}
	return out
}

// Gather collects each rank's v at root.
func (c *Comm) Gather(root int, nbytes int64, v any) []any {
	return c.gatherTree(root, nbytes, v)
}

// Allgather collects every rank's v onto every rank (gather + bcast).
func (c *Comm) Allgather(nbytes int64, v any) []any {
	all := c.gatherTree(0, nbytes, v)
	got := c.Bcast(0, nbytes*int64(len(c.members)), all)
	return got.([]any)
}

// Scatter distributes vs (significant at root) down a binomial tree; each
// rank returns vs[commRank].
func (c *Comm) Scatter(root int, nbytesEach int64, vs []any) any {
	defer func() { c.seq++ }()
	n := len(c.members)
	if n == 1 {
		return vs[0]
	}
	rel := (c.me - root + n) % n
	// blocks holds the values for relative ranks [rel, rel+span).
	var blocks map[int]any
	if rel == 0 {
		blocks = make(map[int]any, n)
		for i, v := range vs {
			blocks[(i-root+n)%n] = v // keyed by relative rank
		}
	}
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (c.me - mask + n) % n
			blocks = c.recv(src, 0).Val.(map[int]any)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			// Hand off the upper half of our block range.
			sub := make(map[int]any)
			for k := rel + mask; k < rel+2*mask && k < n; k++ {
				if v, ok := blocks[k]; ok {
					sub[k] = v
					delete(blocks, k)
				}
			}
			dst := (c.me + mask) % n
			c.send(dst, 0, int64(len(sub))*nbytesEach, sub)
		}
		mask >>= 1
	}
	return blocks[rel]
}

// Reduce combines every rank's value at root with fn (associative,
// commutative).  Non-roots return nil.
func (c *Comm) Reduce(root int, nbytes int64, v any, fn func(a, b any) any) any {
	defer func() { c.seq++ }()
	n := len(c.members)
	rel := (c.me - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask == 0 {
			if rel+mask < n {
				src := (c.me + mask) % n
				m := c.recv(src, 0)
				v = fn(v, m.Val)
			}
		} else {
			dst := (c.me - mask + n) % n
			c.send(dst, 0, nbytes, v)
			return nil
		}
		mask <<= 1
	}
	return v
}

// Allreduce combines every rank's value on every rank.
func (c *Comm) Allreduce(nbytes int64, v any, fn func(a, b any) any) any {
	out := c.Reduce(0, nbytes, v, fn)
	return c.Bcast(0, nbytes, out)
}

// Alltoall performs a pairwise exchange: every rank sends vs[i] to rank i
// and returns the values received, indexed by source.  nbytes[i] is the
// size sent to rank i.  It is O(n) rounds, so use it on small
// communicators (e.g. group leaders).
func (c *Comm) Alltoall(nbytes []int64, vs []any) []any {
	defer func() { c.seq++ }()
	n := len(c.members)
	out := make([]any, n)
	out[c.me] = vs[c.me]
	for shift := 1; shift < n; shift++ {
		dst := (c.me + shift) % n
		src := (c.me - shift + n) % n
		c.send(dst, shift, nbytes[dst], vs[dst])
		out[src] = c.recv(src, shift).Val
	}
	return out
}

type splitInfo struct {
	groups map[int][]int // parent comm rank -> member list
	colors []int
	ids    map[int]int // color -> new comm id
}

// Split partitions the communicator by color, ordered by (key, rank).
func (c *Comm) Split(color, key int) comm.Comm {
	vals := c.Gather(0, 16, [2]int{color, key})
	var info splitInfo
	if c.me == 0 {
		n := len(c.members)
		colors := make([]int, n)
		keys := make([]int, n)
		for i, v := range vals {
			ck := v.([2]int)
			colors[i], keys[i] = ck[0], ck[1]
		}
		groups := comm.SplitGroups(colors, keys)
		ids := make(map[int]int)
		// Assign comm ids in deterministic (first-member) order.
		for i := 0; i < n; i++ {
			cg := colors[i]
			if _, ok := ids[cg]; !ok {
				c.r.w.nextCommID++
				ids[cg] = c.r.w.nextCommID
			}
		}
		info = splitInfo{groups: groups, colors: colors, ids: ids}
	}
	got := c.Bcast(0, 16*int64(len(c.members)), info).(splitInfo)
	members := got.groups[c.me] // parent comm ranks
	world := make([]int, len(members))
	me := 0
	for i, pr := range members {
		world[i] = c.members[pr]
		if pr == c.me {
			me = i
		}
	}
	return &Comm{r: c.r, id: got.ids[got.colors[c.me]], members: world, me: me}
}
