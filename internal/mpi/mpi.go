// Package mpi implements an MPI-like runtime on the discrete-event
// simulator: ranks are simulated processes, point-to-point messages are
// tag-matched and pay modeled interconnect costs, and the collectives use
// the standard binomial-tree / dissemination algorithms so that their
// simulated cost scales like a real MPI's (O(log N) rounds).
//
// It implements comm.Comm, so the PLFS middleware and the MPI-IO layer run
// unchanged on top of it.  The paper's two index-aggregation techniques
// are exactly such collective programs; this package is what makes their
// simulated open times meaningful.
package mpi

import (
	"fmt"
	"time"

	"plfs/internal/sim"
)

// NetConfig models the cluster's high-speed interconnect — the resource
// the paper notes is "largely idle during I/O phases" and that PLFS's
// collective optimizations exploit.
type NetConfig struct {
	NICBW   float64       // per-node injection/ejection bandwidth, bytes/sec
	Latency time.Duration // per-message latency
	MemBW   float64       // same-node transfer bandwidth, bytes/sec
}

// DefaultNet approximates a QDR InfiniBand / Gemini class network.
func DefaultNet() NetConfig {
	return NetConfig{NICBW: 3e9, Latency: 2 * time.Microsecond, MemBW: 6e9}
}

// World is a set of ranks placed onto compute nodes.
type World struct {
	eng          *sim.Engine
	cfg          NetConfig
	n            int
	procsPerNode int
	nics         []*sim.PSLink
	boxes        []*sim.Mailbox
	nextCommID   int
	allMembers   []int // shared world-rank list, built once
}

// NewWorld creates a world of n ranks packed procsPerNode to a node.
func NewWorld(eng *sim.Engine, n, procsPerNode int, cfg NetConfig) *World {
	if n < 1 || procsPerNode < 1 {
		panic("mpi: invalid world size")
	}
	w := &World{eng: eng, cfg: cfg, n: n, procsPerNode: procsPerNode, nextCommID: 1}
	nodes := (n + procsPerNode - 1) / procsPerNode
	for i := 0; i < nodes; i++ {
		w.nics = append(w.nics, sim.NewPSLink(eng, fmt.Sprintf("nic%d", i), cfg.NICBW))
	}
	for i := 0; i < n; i++ {
		w.boxes = append(w.boxes, sim.NewMailbox())
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// NodeOf returns the compute node hosting a rank.
func (w *World) NodeOf(rank int) int { return rank / w.procsPerNode }

// Nodes returns the number of compute nodes in use.
func (w *World) Nodes() int { return len(w.nics) }

// Rank is one MPI process.
type Rank struct {
	w    *World
	rank int
	p    *sim.Proc
}

// Spawn starts fn as rank's process; typically called for every rank
// before eng.Run.
func (w *World) Spawn(rank int, fn func(*Rank)) {
	w.eng.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
		fn(&Rank{w: w, rank: rank, p: p})
	})
}

// SpawnAll starts fn on every rank.
func (w *World) SpawnAll(fn func(*Rank)) {
	for r := 0; r < w.n; r++ {
		w.Spawn(r, fn)
	}
}

// Rank returns this process's world rank.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Node returns the compute node this rank runs on.
func (r *Rank) Node() int { return r.w.NodeOf(r.rank) }

// Proc returns the underlying simulated process.
func (r *Rank) Proc() *sim.Proc { return r.p }

// World returns the world.
func (r *Rank) World() *World { return r.w }

// Send transmits a message to dst.  The call blocks for the modeled
// transfer time (eager protocol: it does not wait for the receiver).
// val is shared by reference; nbytes drives the cost model.
func (r *Rank) Send(dst, tag int, nbytes int64, val any) {
	w := r.w
	if dst < 0 || dst >= w.n {
		panic("mpi: send to invalid rank")
	}
	r.p.Sleep(w.cfg.Latency)
	if nbytes > 0 {
		sn, dn := w.NodeOf(r.rank), w.NodeOf(dst)
		if sn == dn {
			if w.cfg.MemBW > 0 {
				r.p.Sleep(time.Duration(float64(nbytes) / w.cfg.MemBW * 1e9))
			}
		} else {
			var wg sim.WaitGroup
			wg.Add(2)
			w.nics[sn].TransferAsync(nbytes, wg.Done)
			w.nics[dn].TransferAsync(nbytes, wg.Done)
			wg.Wait(r.p)
		}
	}
	w.boxes[dst].Put(sim.Msg{Src: r.rank, Tag: tag, Bytes: nbytes, Val: val})
}

// Recv blocks until a message with the given source and tag arrives.
func (r *Rank) Recv(src, tag int) sim.Msg {
	return r.w.boxes[r.rank].Get(r.p, src, tag)
}

// Comm returns the world communicator for this rank (comm id 0).  The
// member list is shared across ranks (it is immutable), so building a
// communicator is O(1).
func (r *Rank) Comm() *Comm {
	if r.w.allMembers == nil {
		members := make([]int, r.w.n)
		for i := range members {
			members[i] = i
		}
		r.w.allMembers = members
	}
	return &Comm{r: r, id: 0, members: r.w.allMembers, me: r.rank}
}
