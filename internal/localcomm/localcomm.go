// Package localcomm implements comm.Comm for real goroutines.
//
// It lets PLFS run as an actual concurrent middleware library on a local
// machine: each "rank" is a goroutine, and the collectives synchronize
// through a shared generation barrier.  This is the binding used by the
// real-filesystem examples and the POSIX-equivalence tests; the simulated
// binding lives in internal/mpi.
package localcomm

import (
	"sync"

	"plfs/internal/comm"
)

// group is the shared state of one communicator.
type group struct {
	size int

	mu        sync.Mutex
	cond      *sync.Cond
	arrived   int
	gen       uint64
	slots     []any // deposit area for the in-progress collective
	published []any // immutable snapshot of the last completed collective
}

// Comm is one rank's handle on a local communicator.
type Comm struct {
	g    *group
	rank int
}

var _ comm.Comm = (*Comm)(nil)

// New returns n communicator handles for a fresh group, one per rank.
// Each handle must be used by exactly one goroutine.
func New(n int) []*Comm {
	cs := make([]*Comm, n)
	for i, c := range newGroup(n) {
		cs[i] = c
	}
	return cs
}

func newGroup(n int) []*Comm {
	if n < 1 {
		panic("localcomm: size must be >= 1")
	}
	g := &group{size: n, slots: make([]any, n)}
	g.cond = sync.NewCond(&g.mu)
	cs := make([]*Comm, n)
	for i := range cs {
		cs[i] = &Comm{g: g, rank: i}
	}
	return cs
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the group size.
func (c *Comm) Size() int { return c.g.size }

// sync is a phase barrier: deposit v in this rank's slot, wait for all
// ranks, and return an immutable snapshot of every rank's deposit.  The
// snapshot is never written again, so readers cannot race the next
// collective's deposits.
func (c *Comm) sync(v any) []any {
	g := c.g
	g.mu.Lock()
	defer g.mu.Unlock()
	g.slots[c.rank] = v
	g.arrived++
	if g.arrived == g.size {
		g.arrived = 0
		g.gen++
		g.published = append([]any(nil), g.slots...)
		for i := range g.slots {
			g.slots[i] = nil
		}
		g.cond.Broadcast()
		return g.published
	}
	gen := g.gen
	for g.gen == gen {
		g.cond.Wait()
	}
	return g.published
}

// Barrier blocks until all ranks arrive.
func (c *Comm) Barrier() { c.sync(nil) }

// Bcast returns root's v on every rank.
func (c *Comm) Bcast(root int, nbytes int64, v any) any {
	return c.sync(v)[root]
}

// Gather returns the per-rank values at root, nil elsewhere.
func (c *Comm) Gather(root int, nbytes int64, v any) []any {
	slots := c.sync(v)
	if c.rank == root {
		return slots
	}
	return nil
}

// Scatter returns vs[rank] from root's vs on every rank.
func (c *Comm) Scatter(root int, nbytesEach int64, vs []any) any {
	var dep any
	if c.rank == root {
		dep = vs
	}
	slots := c.sync(dep)
	return slots[root].([]any)[c.rank]
}

// Allgather returns every rank's value on every rank.
func (c *Comm) Allgather(nbytes int64, v any) []any {
	return c.sync(v)
}

// Alltoall sends vs[i] to rank i; the result is indexed by source rank.
func (c *Comm) Alltoall(nbytes []int64, vs []any) []any {
	slots := c.sync(vs)
	out := make([]any, c.g.size)
	for src, v := range slots {
		out[src] = v.([]any)[c.rank]
	}
	return out
}

type splitArg struct{ color, key int }

type splitResult struct {
	groups map[int][]int   // parent rank -> member list (new-rank order)
	comms  map[int][]*Comm // color -> child handles indexed by new rank
	colors []int
}

// Split partitions the communicator by color, ordering by (key, rank).
func (c *Comm) Split(color, key int) comm.Comm {
	slots := c.sync(splitArg{color, key})
	// Every rank deterministically computes the same partition; rank 0's
	// construction of the child groups is then broadcast.
	var res splitResult
	if c.rank == 0 {
		colors := make([]int, len(slots))
		keys := make([]int, len(slots))
		for r, v := range slots {
			a := v.(splitArg)
			colors[r], keys[r] = a.color, a.key
		}
		groups := comm.SplitGroups(colors, keys)
		comms := make(map[int][]*Comm)
		for r, members := range groups {
			cg := colors[r]
			if _, ok := comms[cg]; !ok {
				comms[cg] = newGroup(len(members))
			}
		}
		res = splitResult{groups: groups, comms: comms, colors: colors}
	}
	got := c.sync(res)[0].(splitResult)
	members := got.groups[c.rank]
	newRank := 0
	for i, r := range members {
		if r == c.rank {
			newRank = i
		}
	}
	return got.comms[got.colors[c.rank]][newRank]
}
