package localcomm

import (
	"sync"
	"testing"

	"plfs/internal/comm"
)

// runAll drives one goroutine per communicator handle.
func runAll(cs []*Comm, fn func(c *Comm)) {
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			fn(c)
		}(c)
	}
	wg.Wait()
}

func TestRankAndSize(t *testing.T) {
	cs := New(5)
	seen := make([]bool, 5)
	var mu sync.Mutex
	runAll(cs, func(c *Comm) {
		if c.Size() != 5 {
			t.Errorf("size = %d", c.Size())
		}
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
	})
	for r, ok := range seen {
		if !ok {
			t.Fatalf("rank %d missing", r)
		}
	}
}

func TestBcast(t *testing.T) {
	cs := New(7)
	runAll(cs, func(c *Comm) {
		var v any
		if c.Rank() == 3 {
			v = "payload"
		}
		got := c.Bcast(3, 10, v)
		if got != "payload" {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	cs := New(6)
	runAll(cs, func(c *Comm) {
		vals := c.Gather(0, 8, c.Rank()*10)
		if c.Rank() == 0 {
			for r, v := range vals {
				if v.(int) != r*10 {
					t.Errorf("gather[%d] = %v", r, v)
				}
			}
			out := make([]any, c.Size())
			for i := range out {
				out[i] = i * 100
			}
			if got := c.Scatter(0, 8, out); got.(int) != 0 {
				t.Errorf("root scatter got %v", got)
			}
		} else {
			if vals != nil {
				t.Errorf("non-root gather returned %v", vals)
			}
			if got := c.Scatter(0, 8, nil); got.(int) != c.Rank()*100 {
				t.Errorf("rank %d scatter got %v", c.Rank(), got)
			}
		}
	})
}

func TestAllgather(t *testing.T) {
	cs := New(4)
	runAll(cs, func(c *Comm) {
		vals := c.Allgather(4, c.Rank())
		for r, v := range vals {
			if v.(int) != r {
				t.Errorf("allgather[%d] = %v at rank %d", r, v, c.Rank())
			}
		}
	})
}

func TestBackToBackCollectivesDoNotRace(t *testing.T) {
	// A sequence of collectives with no pauses; catches snapshot reuse bugs.
	cs := New(8)
	runAll(cs, func(c *Comm) {
		for i := 0; i < 200; i++ {
			got := c.Bcast(i%8, 8, func() any {
				if c.Rank() == i%8 {
					return i
				}
				return nil
			}())
			if got.(int) != i {
				t.Errorf("iter %d rank %d got %v", i, c.Rank(), got)
				return
			}
		}
	})
}

func TestSplit(t *testing.T) {
	cs := New(9)
	runAll(cs, func(c *Comm) {
		// Three groups of three by color = rank % 3; key reverses order.
		sub := c.Split(c.Rank()%3, -c.Rank())
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		// key = -rank, so highest parent rank gets new rank 0.
		wantRank := map[int]int{0: 2, 3: 1, 6: 0, 1: 2, 4: 1, 7: 0, 2: 2, 5: 1, 8: 0}[c.Rank()]
		if sub.Rank() != wantRank {
			t.Errorf("parent %d new rank = %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// The subcommunicator must work: gather parent ranks at sub-root.
		vals := sub.Gather(0, 8, c.Rank())
		if sub.Rank() == 0 {
			if len(vals) != 3 {
				t.Errorf("sub gather len = %d", len(vals))
			}
		}
	})
}

func TestSplitGroupsSemantics(t *testing.T) {
	colors := []int{0, 1, 0, 1, 0}
	keys := []int{5, 0, 3, 1, 3}
	g := comm.SplitGroups(colors, keys)
	// color 0: ranks {0(k5), 2(k3), 4(k3)} -> order by (key, rank): 2, 4, 0
	want0 := []int{2, 4, 0}
	for i, r := range g[0] {
		if r != want0[i] {
			t.Fatalf("group of rank 0 = %v, want %v", g[0], want0)
		}
	}
	// color 1: ranks {1(k0), 3(k1)} -> 1, 3
	if g[1][0] != 1 || g[1][1] != 3 {
		t.Fatalf("group of rank 1 = %v", g[1])
	}
}

func TestSingleRankComm(t *testing.T) {
	cs := New(1)
	runAll(cs, func(c *Comm) {
		c.Barrier()
		if got := c.Bcast(0, 1, 42); got.(int) != 42 {
			t.Errorf("bcast = %v", got)
		}
		if got := c.Allgather(1, 7); len(got) != 1 || got[0].(int) != 7 {
			t.Errorf("allgather = %v", got)
		}
		sub := c.Split(0, 0)
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("split = %d/%d", sub.Rank(), sub.Size())
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 5
	cs := New(n)
	runAll(cs, func(c *Comm) {
		vs := make([]any, n)
		nb := make([]int64, n)
		for i := range vs {
			vs[i] = c.Rank()*100 + i
			nb[i] = 8
		}
		got := c.Alltoall(nb, vs)
		for src, v := range got {
			if v.(int) != src*100+c.Rank() {
				t.Errorf("alltoall[%d] = %v at rank %d", src, v, c.Rank())
			}
		}
	})
}
