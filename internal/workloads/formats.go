package workloads

import (
	"fmt"

	"plfs/internal/adio"
	"plfs/internal/hdf"
	"plfs/internal/payload"
	"plfs/internal/pnetcdf"
)

// Pixie3D reproduces the §IV.D.1 kernel: the Pixie3D MHD code doing its
// I/O through Parallel-NetCDF.  Weak scaling — every process contributes
// BytesPerRank across Vars field variables; every process reads its slab
// back from the shared file.
type Pixie3D struct {
	BytesPerRank int64
	Vars         int
}

// Name implements Kernel.
func (Pixie3D) Name() string { return "pixie3d" }

// Run implements Kernel.
func (p Pixie3D) Run(env *Env, readBack bool) (Result, error) {
	if p.Vars <= 0 {
		p.Vars = 8
	}
	n := env.Ranks()
	rank := env.Rank()
	const elem = 8
	perVar := p.BytesPerRank / int64(p.Vars) / elem // elements per rank per var
	if perVar < 1 {
		perVar = 1
	}
	res := Result{BytesPerRank: perVar * elem * int64(p.Vars)}

	f, d, err := env.openWrite()
	res.WriteOpen = d
	if err != nil {
		return res, err
	}
	var nc *pnetcdf.File
	var vars []pnetcdf.VarID
	res.Write, err = env.phase(func() error {
		nc = pnetcdf.CreateFile(env.Ctx.Comm, f)
		dx, err := nc.DefDim("x", int64(n))
		if err != nil {
			return err
		}
		de, err := nc.DefDim("elem", perVar)
		if err != nil {
			return err
		}
		for v := 0; v < p.Vars; v++ {
			id, err := nc.DefVar(fmt.Sprintf("field%d", v), elem, []pnetcdf.DimID{dx, de})
			if err != nil {
				return err
			}
			vars = append(vars, id)
		}
		if err := nc.EndDef(); err != nil {
			return err
		}
		for _, id := range vars {
			pay := payload.Synthetic(tag(rank), int64(id)*perVar*elem, perVar*elem)
			if err := nc.PutVara(id, []int64{int64(rank), 0}, []int64{1, perVar}, pay); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.closeFile(f); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()

	r, d, err := env.openRead()
	res.ReadOpen = d
	if err != nil {
		return res, err
	}
	res.Read, err = env.phase(func() error {
		nc2, err := pnetcdf.Open(env.Ctx.Comm, r)
		if err != nil {
			return err
		}
		for v := 0; v < p.Vars; v++ {
			id, err := nc2.InqVarID(fmt.Sprintf("field%d", v))
			if err != nil {
				return err
			}
			got, err := nc2.GetVara(id, []int64{int64(rank), 0}, []int64{1, perVar})
			if err != nil {
				return err
			}
			if err := verifyPiece(env, got, tag(rank), int64(id)*perVar*elem, perVar*elem); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.closeFile(r)
	return res, err
}

// Aramco reproduces the §IV.D.2 kernel: a seismic processing application
// using MPI-IO and HDF5.  Strong scaling — the dataset is TotalBytes
// regardless of process count; each rank writes and reads its shrinking
// share.
type Aramco struct {
	TotalBytes int64
	// OpSize is the access granularity (default 1 MiB): seismic traces are
	// processed in chunks, not slurped whole.
	OpSize int64
}

// Name implements Kernel.
func (Aramco) Name() string { return "aramco" }

// Run implements Kernel.
func (a Aramco) Run(env *Env, readBack bool) (Result, error) {
	n := env.Ranks()
	rank := env.Rank()
	const elem = 4
	op := a.OpSize
	if op <= 0 {
		op = 1 << 20
	}
	opElems := op / elem
	per := a.TotalBytes / elem / int64(n)
	if per < opElems {
		per = opElems
	}
	per = per / opElems * opElems // whole chunks
	res := Result{BytesPerRank: per * elem}
	defs := []hdf.DatasetDef{{Name: "traces", Dims: []int64{per * int64(n)}, ElemSize: elem}}
	base := int64(rank) * per

	f, d, err := env.openWrite()
	res.WriteOpen = d
	if err != nil {
		return res, err
	}
	res.Write, err = env.phase(func() error {
		h, err := hdf.Create(hdf.CommCtx{Comm: env.Ctx.Comm}, f, defs)
		if err != nil {
			return err
		}
		ds, err := h.Dataset("traces")
		if err != nil {
			return err
		}
		for o := int64(0); o < per; o += opElems {
			off := base + o
			if err := ds.WriteSlab([]int64{off}, []int64{opElems},
				payload.Synthetic(tag(rank), off*elem, op)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.closeFile(f); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()

	r, d, err := env.openRead()
	res.ReadOpen = d
	if err != nil {
		return res, err
	}
	res.Read, err = env.phase(func() error {
		h, err := hdf.Open(r)
		if err != nil {
			return err
		}
		ds, err := h.Dataset("traces")
		if err != nil {
			return err
		}
		for o := int64(0); o < per; o += opElems {
			off := base + o
			got, err := ds.ReadSlab([]int64{off}, []int64{opElems})
			if err != nil {
				return err
			}
			if err := verifyPiece(env, got, tag(rank), off*elem, op); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.closeFile(r)
	return res, err
}

// NNFiles is the N-N data workload: every rank writes BytesPerRank into
// its own file in OpSize sequential increments and reads it back — the
// pattern parallel file systems love, used as the "N-N without PLFS"
// series of the large-scale read experiment (Fig. 8a).
type NNFiles struct {
	BytesPerRank int64
	OpSize       int64
}

// Name implements Kernel.
func (NNFiles) Name() string { return "n-n" }

// Run implements Kernel.
func (k NNFiles) Run(env *Env, readBack bool) (Result, error) {
	rank := env.Rank()
	ops := int(k.BytesPerRank / k.OpSize)
	res := Result{BytesPerRank: k.OpSize * int64(ops)}
	serial := env.Ctx
	serial.Comm = nil // private files: uncoordinated opens
	path := fmt.Sprintf("%s.%d", env.Path, rank)

	var f adio.File
	var err error
	res.WriteOpen, err = env.phase(func() (e error) {
		f, e = env.Driver.Open(serial, path, adio.WriteCreate, env.Hints)
		return e
	})
	if err != nil {
		return res, err
	}
	res.Write, err = env.phase(func() error {
		for i := 0; i < ops; i++ {
			off := int64(i) * k.OpSize
			if err := f.WriteAt(off, payload.Synthetic(tag(rank), off, k.OpSize)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.phase(f.Close); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()
	var r adio.File
	res.ReadOpen, err = env.phase(func() (e error) {
		r, e = env.Driver.Open(serial, path, adio.ReadOnly, env.Hints)
		return e
	})
	if err != nil {
		return res, err
	}
	res.Read, err = env.phase(func() error {
		for i := 0; i < ops; i++ {
			off := int64(i) * k.OpSize
			got, rerr := r.ReadAt(off, k.OpSize)
			if rerr != nil {
				return rerr
			}
			if err := verifyPiece(env, got, tag(rank), off, k.OpSize); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.phase(r.Close)
	return res, err
}

// CreateStorm is the N-N metadata workload of §V: every rank creates,
// opens, and closes FilesPerRank unique files.  Open time includes file
// creation, as in the paper's Fig. 7/8 methodology.  It runs uncoordinated
// (each file is private), so the env's communicator is used only for
// phase timing.
type CreateStorm struct {
	FilesPerRank int
}

// Name implements Kernel.
func (CreateStorm) Name() string { return "create-storm" }

// Run implements Kernel.  readBack is ignored (metadata only); the open
// time lands in WriteOpen and the close time in WriteClose.
func (c CreateStorm) Run(env *Env, readBack bool) (Result, error) {
	rank := env.Rank()
	serial := env.Ctx
	serial.Comm = nil // N-N: uncoordinated creates
	files := make([]adio.File, 0, c.FilesPerRank)
	var res Result
	var err error
	res.WriteOpen, err = env.phase(func() error {
		for k := 0; k < c.FilesPerRank; k++ {
			f, err := env.Driver.Open(serial, fmt.Sprintf("%s.%d.%d", env.Path, rank, k), adio.WriteCreate, env.Hints)
			if err != nil {
				return err
			}
			files = append(files, f)
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.WriteClose, err = env.phase(func() error {
		for _, f := range files {
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	return res, err
}
