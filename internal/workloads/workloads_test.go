package workloads_test

import (
	"fmt"
	"testing"

	"plfs/internal/adio"
	"plfs/internal/mpi"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
	"plfs/internal/simfs"
	"plfs/internal/workloads"
)

// runKernel executes a kernel on a fresh simulated cluster and returns
// rank 0's Result (identical on all ranks: phases are barrier-bracketed).
func runKernel(t *testing.T, k workloads.Kernel, ranks int, driver string, hints adio.Hints, readBack bool) workloads.Result {
	t.Helper()
	eng := sim.NewEngine(11)
	cfg := pfs.SmallCluster()
	cfg.JitterFrac = 0
	cfg.Volumes = 2
	fs := pfs.New(eng, cfg)
	world := mpi.NewWorld(eng, ranks, cfg.ProcsPerNode, mpi.DefaultNet())
	roots := make([]string, fs.Volumes())
	for i := range roots {
		roots[i] = fs.VolumeRoot(i)
	}
	mount := plfs.NewMount(roots, plfs.Options{
		IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4,
		SpreadContainers: true, SpreadSubdirs: true,
	})
	var res workloads.Result
	world.SpawnAll(func(r *mpi.Rank) {
		ctx := simfs.Ctx(fs, r.Node(), r.Proc(), r.Rank(), cfg.ProcsPerNode)
		ctx.Comm = r.Comm()
		var drv adio.Driver
		if driver == "plfs" {
			drv = adio.PLFS{Mount: mount}
		} else {
			drv = adio.UFS{}
		}
		path := k.Name()
		if driver != "plfs" {
			path = "/vol0/" + path
		}
		env := &workloads.Env{Ctx: ctx, Driver: drv, Hints: hints, Path: path, Verify: true}
		out, err := k.Run(env, readBack)
		if err != nil {
			t.Errorf("rank %d: %v", r.Rank(), err)
			return
		}
		if r.Rank() == 0 {
			res = out
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllKernelsVerifyOnBothDrivers(t *testing.T) {
	const ranks = 8
	kernels := []workloads.Kernel{
		workloads.MPIIOTest(400<<10, 50<<10),
		workloads.IOR(512<<10, 128<<10),
		workloads.LANL1(1 << 20),
		workloads.Madbench{Matrices: 3, MatrixBytes: 128 << 10},
		workloads.Pixie3D{BytesPerRank: 256 << 10, Vars: 4},
		workloads.Aramco{TotalBytes: 2 << 20},
	}
	for _, k := range kernels {
		for _, drv := range []string{"plfs", "ufs"} {
			k, drv := k, drv
			t.Run(fmt.Sprintf("%s/%s", k.Name(), drv), func(t *testing.T) {
				res := runKernel(t, k, ranks, drv, adio.Hints{}, true)
				if res.BytesPerRank == 0 {
					t.Fatal("no bytes accounted")
				}
				if res.Write <= 0 || res.Read <= 0 {
					t.Fatalf("phases not timed: %+v", res)
				}
				if res.ReadBW(ranks) <= 0 || res.WriteBW(ranks) <= 0 {
					t.Fatalf("bandwidths not computed: %+v", res)
				}
			})
		}
	}
}

// TestNoncontigQuadrantsVerify runs the four-quadrant taxonomy (file
// contiguity × memory contiguity) through every I/O method on both
// drivers with verification on: whatever path the method takes — per-op
// naive, locked sieve RMW over neighbours' in-flight data, one vectored
// list call, or two-phase redistribution — the bytes that come back must
// be the bytes each rank wrote.
func TestNoncontigQuadrantsVerify(t *testing.T) {
	const ranks = 4
	for _, access := range []workloads.Access{workloads.AccessContig, workloads.AccessStrided, workloads.AccessIrregular} {
		for _, mem := range []bool{true, false} {
			for _, m := range []adio.IOMethod{adio.MethodNaive, adio.MethodSieve, adio.MethodList, adio.MethodTwoPhase} {
				for _, drv := range []string{"ufs", "plfs"} {
					access, mem, m, drv := access, mem, m, drv
					t.Run(fmt.Sprintf("%s/mem=%v/%s/%s", access, mem, m, drv), func(t *testing.T) {
						k := workloads.Noncontig{
							Access: access, BlockSize: 1 << 10, BlocksPerRank: 6,
							Steps: 2, MemContig: mem, Seed: 3,
						}
						res := runKernel(t, k, ranks, drv, adio.Hints{IOMethod: m, ProcsPerNode: 4}, true)
						if want := int64(6*2) << 10; res.BytesPerRank != want {
							t.Fatalf("bytes per rank = %d, want %d", res.BytesPerRank, want)
						}
					})
				}
			}
		}
	}
}

func TestParseAccess(t *testing.T) {
	for _, s := range []string{"contig", "strided", "irregular"} {
		a, err := workloads.ParseAccess(s)
		if err != nil || a.String() != s {
			t.Fatalf("ParseAccess(%q) = %v, %v", s, a, err)
		}
	}
	if _, err := workloads.ParseAccess("random"); err == nil {
		t.Fatal("ParseAccess accepted garbage")
	}
}

func TestLANL3WithCollectiveBuffering(t *testing.T) {
	const ranks = 8
	hints := adio.Hints{CollectiveBuffering: true, ProcsPerNode: 4}
	for _, drv := range []string{"plfs", "ufs"} {
		drv := drv
		t.Run(drv, func(t *testing.T) {
			res := runKernel(t, workloads.LANL3(32<<20, ranks), ranks, drv, hints, true)
			if res.BytesPerRank != 4<<20 {
				t.Fatalf("bytes per rank = %d", res.BytesPerRank)
			}
		})
	}
}

func TestCreateStormTimesOpensAndCloses(t *testing.T) {
	res := runKernel(t, workloads.CreateStorm{FilesPerRank: 4}, 8, "plfs", adio.Hints{}, false)
	if res.WriteOpen <= 0 || res.WriteClose <= 0 {
		t.Fatalf("storm not timed: %+v", res)
	}
	if res.Read != 0 || res.ReadOpen != 0 {
		t.Fatalf("storm should not read: %+v", res)
	}
}

// TestEffectiveBandwidthDefinition checks the §IV note-2 semantics: the
// effective read bandwidth denominator includes open and close time.
func TestEffectiveBandwidthDefinition(t *testing.T) {
	res := workloads.Result{
		ReadOpen: 1e9, Read: 2e9, ReadClose: 1e9, BytesPerRank: 100,
	}
	if got := res.ReadBW(4); got != 100.0 {
		t.Fatalf("effective read bw = %v, want 100 B/s (400 bytes / 4 s)", got)
	}
	if res.ReadTotal().Seconds() != 4 {
		t.Fatalf("read total = %v", res.ReadTotal())
	}
}

// TestStrongVsWeakScalingVolumes checks the scaling semantics the paper
// relies on: ARAMCO and LANL3 are strong scaling (per-rank bytes shrink
// with N); MPI-IO Test, Pixie3D, and LANL1 are weak scaling (constant per
// rank).
func TestStrongVsWeakScalingVolumes(t *testing.T) {
	a4 := runKernel(t, workloads.Aramco{TotalBytes: 64 << 20}, 4, "plfs", adio.Hints{}, false)
	a8 := runKernel(t, workloads.Aramco{TotalBytes: 64 << 20}, 8, "plfs", adio.Hints{}, false)
	if a8.BytesPerRank*2 != a4.BytesPerRank {
		t.Fatalf("aramco not strong scaling: %d vs %d", a4.BytesPerRank, a8.BytesPerRank)
	}
	w4 := runKernel(t, workloads.MPIIOTest(256<<10, 64<<10), 4, "plfs", adio.Hints{}, false)
	w8 := runKernel(t, workloads.MPIIOTest(256<<10, 64<<10), 8, "plfs", adio.Hints{}, false)
	if w4.BytesPerRank != w8.BytesPerRank {
		t.Fatalf("mpi-io-test not weak scaling: %d vs %d", w4.BytesPerRank, w8.BytesPerRank)
	}
}
