// Package workloads implements the I/O kernels of the paper's evaluation:
// the LANL MPI-IO Test synthetic generator, IOR, MADbench, Pixie3D
// (through the mini Parallel-NetCDF library), the ARAMCO seismic kernel
// (through the mini HDF library), the LANL 1 and LANL 3 application
// kernels, and the N-N create storm used for the metadata experiments.
//
// Every kernel runs against any adio.Driver, so each workload can be
// driven through PLFS or directly against the underlying parallel file
// system — the comparison every figure in the paper draws.
package workloads

import (
	"fmt"
	"time"

	"plfs/internal/adio"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Env is one rank's execution environment for a kernel run.
type Env struct {
	Ctx    plfs.Ctx
	Driver adio.Driver
	Hints  adio.Hints
	Path   string
	Verify bool
	// InvalidateCaches, when set, is called between the write and read
	// phases (the drop_caches benchmarking hygiene); it must be safe to
	// call from every rank.
	InvalidateCaches func()
}

// dropCaches invalidates caches between phases, if configured.
func (e *Env) dropCaches() {
	if e.InvalidateCaches != nil {
		e.Ctx.Comm.Barrier()
		e.InvalidateCaches()
		e.Ctx.Comm.Barrier()
	}
}

// Rank returns the caller's rank.
func (e *Env) Rank() int { return e.Ctx.Comm.Rank() }

// Ranks returns the job size.
func (e *Env) Ranks() int { return e.Ctx.Comm.Size() }

func (e *Env) now() time.Duration { return time.Duration(e.Ctx.Clock.Now()) }

// phase brackets fn with barriers and returns the job-wide duration (all
// ranks leave the trailing barrier together, so every rank measures the
// same span a bulk-synchronous job would report).
func (e *Env) phase(fn func() error) (time.Duration, error) {
	e.Ctx.Comm.Barrier()
	start := e.now()
	err := fn()
	e.Ctx.Comm.Barrier()
	return e.now() - start, err
}

// Result reports job-level phase times and per-rank volumes.
type Result struct {
	WriteOpen    time.Duration
	Write        time.Duration
	WriteClose   time.Duration
	ReadOpen     time.Duration
	Read         time.Duration
	ReadClose    time.Duration
	BytesPerRank int64
}

// WriteTotal is open+write+close — the span effective write bandwidth
// divides by.
func (r Result) WriteTotal() time.Duration { return r.WriteOpen + r.Write + r.WriteClose }

// ReadTotal is open+read+close — the paper's "effective read bandwidth"
// denominator (§IV note 2).
func (r Result) ReadTotal() time.Duration { return r.ReadOpen + r.Read + r.ReadClose }

// WriteBW returns effective write bandwidth in bytes/sec for a job of n
// ranks.
func (r Result) WriteBW(n int) float64 {
	if r.WriteTotal() <= 0 {
		return 0
	}
	return float64(r.BytesPerRank) * float64(n) / r.WriteTotal().Seconds()
}

// ReadBW returns effective read bandwidth in bytes/sec.
func (r Result) ReadBW(n int) float64 {
	if r.ReadTotal() <= 0 {
		return 0
	}
	return float64(r.BytesPerRank) * float64(n) / r.ReadTotal().Seconds()
}

// Kernel is a runnable workload: a write pass producing a dataset and a
// read pass consuming it.
type Kernel interface {
	Name() string
	// Run executes the write phase and then, if readBack, the read phase,
	// filling in the Result.  Collective: every rank calls Run.
	Run(env *Env, readBack bool) (Result, error)
}

// tag derives the synthetic content tag for a writer rank.
func tag(rank int) uint64 { return uint64(rank) + 1 }

// verifyPiece checks that a read range carries the expected writer's
// pattern.
func verifyPiece(env *Env, got payload.List, wantTag uint64, off, n int64) error {
	if !env.Verify {
		return nil
	}
	want := payload.List{payload.Synthetic(wantTag, off, n)}
	if !payload.ContentEqual(got, want) {
		return fmt.Errorf("workload %s: data mismatch at [%d,%d)", env.Path, off, off+n)
	}
	return nil
}

// openWrite/openRead wrap driver opens with phase timing.
func (e *Env) openWrite() (adio.File, time.Duration, error) {
	var f adio.File
	d, err := e.phase(func() (err error) {
		f, err = e.Driver.Open(e.Ctx, e.Path, adio.WriteCreate, e.Hints)
		return err
	})
	return f, d, err
}

func (e *Env) openRead() (adio.File, time.Duration, error) {
	var f adio.File
	d, err := e.phase(func() (err error) {
		f, err = e.Driver.Open(e.Ctx, e.Path, adio.ReadOnly, e.Hints)
		return err
	})
	return f, d, err
}

func (e *Env) closeFile(f adio.File) (time.Duration, error) {
	return e.phase(f.Close)
}
