package workloads

import "fmt"

// CreateStorm100k is the collective create storm behind the
// metadata-at-scale experiments (the regime past the paper's Fig 7/8,
// where per-op metadata RPCs dominate): every round, all ranks
// collectively create-open and close each of Containers containers,
// writing no data.  Unlike CreateStorm (N-N, uncoordinated private
// files), the opens here are collective N-1 creates, which is exactly
// the path the mount's bulk-create batching accelerates — with batching
// off the storm degenerates to one metadata RPC per rank per container.
//
// Open time accumulates in Result.WriteOpen and close time in
// Result.WriteClose; readBack is ignored (metadata only).
type CreateStorm100k struct {
	// Containers is the number of containers hit each round (each is a
	// separate collective create; containers persist across rounds, so
	// later rounds reopen them).
	Containers int
	// Rounds repeats the storm; must be >= 1.  Repeated rounds give a
	// rebalancing pass something to act on: round k+1's dropping creates
	// land wherever round k's hostdirs live now.
	Rounds int
	// AfterRound, if set, runs collectively after each round's closes,
	// outside the timed open/close phases and bracketed by barriers.
	// Every rank calls it; the metadata harness uses it to trigger a
	// rank-0 rebalancing pass between rounds.
	AfterRound func(round int)
}

// Name implements Kernel.
func (CreateStorm100k) Name() string { return "meta-storm" }

// Creates returns the total create count a full run issues, the
// numerator of the per-op open rate.
func (s CreateStorm100k) Creates(ranks int) int64 {
	return int64(ranks) * int64(s.Containers) * int64(s.Rounds)
}

// Run implements Kernel.
func (s CreateStorm100k) Run(env *Env, readBack bool) (Result, error) {
	base := env.Path
	defer func() { env.Path = base }()
	var res Result
	for r := 0; r < s.Rounds; r++ {
		for c := 0; c < s.Containers; c++ {
			env.Path = fmt.Sprintf("%s-c%d", base, c)
			f, d, err := env.openWrite()
			res.WriteOpen += d
			if err != nil {
				return res, err
			}
			d, err = env.closeFile(f)
			res.WriteClose += d
			if err != nil {
				return res, err
			}
		}
		if s.AfterRound != nil {
			env.Ctx.Comm.Barrier()
			s.AfterRound(r)
			env.Ctx.Comm.Barrier()
		}
	}
	return res, nil
}
