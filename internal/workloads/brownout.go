package workloads

import (
	"fmt"

	"plfs/internal/payload"
)

// Brownout is the self-healing ablation kernel: a sequence of Steps
// identical write+verify-read rounds, each against a fresh container, so
// per-step aggregate bandwidth becomes a time series the harness can
// plot while it degrades and restores a volume between steps.
//
// The harness drives the fault schedule through Control: rank 0 calls
// it at the top of every step (before any I/O), a barrier aligns the
// job, and only then does the round run — so injector toggles land on
// deterministic step boundaries.  Observe hands every rank the step's
// Result after its trailing barrier; phase durations are job-wide, so
// all ranks report identical numbers and the harness reads rank 0's.
type Brownout struct {
	// Steps is the number of write+read rounds (one container each).
	Steps int
	// OpsPerRank and OpSize shape each round's strided N-1 pattern.
	OpsPerRank int
	OpSize     int64
	// Control, when set, runs on rank 0 at each step boundary.
	Control func(step int)
	// Observe, when set, receives each completed step's Result.
	Observe func(step int, res Result)
}

// Name implements Kernel.
func (b Brownout) Name() string { return "brownout" }

// Run implements Kernel.
func (b Brownout) Run(env *Env, readBack bool) (Result, error) {
	n := env.Ranks()
	rank := env.Rank()
	base := env.Path
	defer func() { env.Path = base }()
	var total Result

	for s := 0; s < b.Steps; s++ {
		if b.Control != nil && rank == 0 {
			b.Control(s)
		}
		env.Ctx.Comm.Barrier()
		env.Path = fmt.Sprintf("%s-s%d", base, s)
		var step Result

		f, d, err := env.openWrite()
		step.WriteOpen = d
		if err != nil {
			return total, err
		}
		d, err = env.phase(func() error {
			for k := 0; k < b.OpsPerRank; k++ {
				off := int64(k*n+rank) * b.OpSize
				if err := f.WriteAt(off, payload.Synthetic(tag(rank), off, b.OpSize)); err != nil {
					return err
				}
			}
			return nil
		})
		step.Write = d
		if err != nil {
			return total, err
		}
		d, err = env.closeFile(f)
		step.WriteClose = d
		if err != nil {
			return total, err
		}
		step.BytesPerRank = b.OpSize * int64(b.OpsPerRank)

		if readBack {
			env.dropCaches()
			r, d, err := env.openRead()
			step.ReadOpen = d
			if err != nil {
				return total, err
			}
			// Verify the neighbor rank's stripe: cross-rank traffic
			// through the aggregated index, not an echo of local writes.
			peer := (rank + 1) % n
			d, err = env.phase(func() error {
				for k := 0; k < b.OpsPerRank; k++ {
					off := int64(k*n+peer) * b.OpSize
					got, rerr := r.ReadAt(off, b.OpSize)
					if rerr != nil {
						return rerr
					}
					if err := verifyPiece(env, got, tag(peer), off, b.OpSize); err != nil {
						return err
					}
				}
				return nil
			})
			step.Read = d
			if err != nil {
				return total, err
			}
			d, err = env.closeFile(r)
			step.ReadClose = d
			if err != nil {
				return total, err
			}

			// Every later step also re-reads the first piece of the
			// step-0 container — the shared-input-deck pattern.  New
			// steps' droppings are steered away from a browned-out
			// volume at write time, so this pre-brownout container is
			// the traffic that actually exercises hedged index reads
			// and replica failover mid-window.
			if s > 0 {
				env.Path = fmt.Sprintf("%s-s0", base)
				w, d, err := env.openRead()
				step.ReadOpen += d
				if err != nil {
					return total, err
				}
				d, err = env.phase(func() error {
					got, rerr := w.ReadAt(0, b.OpSize)
					if rerr != nil {
						return rerr
					}
					return verifyPiece(env, got, tag(0), 0, b.OpSize)
				})
				step.Read += d
				if err != nil {
					return total, err
				}
				d, err = env.closeFile(w)
				step.ReadClose += d
				if err != nil {
					return total, err
				}
				env.Path = fmt.Sprintf("%s-s%d", base, s)
			}
		}

		if b.Observe != nil {
			b.Observe(s, step)
		}
		total.WriteOpen += step.WriteOpen
		total.Write += step.Write
		total.WriteClose += step.WriteClose
		total.ReadOpen += step.ReadOpen
		total.Read += step.Read
		total.ReadClose += step.ReadClose
		total.BytesPerRank += step.BytesPerRank
	}
	return total, nil
}
