package workloads

import (
	"errors"
	"fmt"

	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Saturation is the mount-service tenant kernel: one tenant job writes
// Containers separate N-1 files under its own path prefix and, on
// read-back, reopens and verifies each.  Every container's job-wide open
// duration is recorded by the tenant root into the context's obs registry
// (histograms "saturation.open_write_ns" / "saturation.open_read_ns"),
// which is where the saturation harness takes its p99 open-latency signal.
//
// A container whose create or read-open the service's admission gate
// rejects is skipped, not failed: the collective admission protocol
// delivers the same verdict to every rank, so the job stays aligned and
// simply completes less work — the throughput collapse the ablation
// figure is there to show.  Any other error aborts the run.
type Saturation struct {
	// Containers is the number of files this tenant writes (and reads).
	Containers int
	// OpsPerRank and OpSize shape each container's strided N-1 pattern.
	OpsPerRank int
	OpSize     int64
}

// Name implements Kernel.
func (s Saturation) Name() string { return "saturation" }

// Run implements Kernel.
func (s Saturation) Run(env *Env, readBack bool) (Result, error) {
	n := env.Ranks()
	rank := env.Rank()
	base := env.Path
	defer func() { env.Path = base }()
	var res Result
	written := make([]bool, s.Containers)

	observe := func(name string, d int64) {
		if env.Ctx.Obs != nil && rank == 0 {
			env.Ctx.Obs.Histogram(name).ObserveNanos(d)
		}
	}

	for c := 0; c < s.Containers; c++ {
		env.Path = fmt.Sprintf("%s-c%d", base, c)
		f, d, err := env.openWrite()
		if errors.Is(err, plfs.ErrAdmission) {
			continue
		}
		res.WriteOpen += d
		observe("saturation.open_write_ns", int64(d))
		if err != nil {
			return res, err
		}
		d, err = env.phase(func() error {
			for k := 0; k < s.OpsPerRank; k++ {
				off := int64(k*n+rank) * s.OpSize
				if err := f.WriteAt(off, payload.Synthetic(tag(rank), off, s.OpSize)); err != nil {
					return err
				}
			}
			return nil
		})
		res.Write += d
		if err != nil {
			return res, err
		}
		d, err = env.closeFile(f)
		res.WriteClose += d
		if err != nil {
			return res, err
		}
		written[c] = true
		res.BytesPerRank += s.OpSize * int64(s.OpsPerRank)
	}
	if !readBack {
		return res, nil
	}

	for c := 0; c < s.Containers; c++ {
		if !written[c] {
			continue
		}
		env.Path = fmt.Sprintf("%s-c%d", base, c)
		r, d, err := env.openRead()
		if errors.Is(err, plfs.ErrAdmission) {
			continue
		}
		res.ReadOpen += d
		observe("saturation.open_read_ns", int64(d))
		if err != nil {
			return res, err
		}
		// Read the neighbor rank's stripe: cross-rank traffic through the
		// aggregated index, not an echo of the local write path.
		peer := (rank + 1) % n
		d, err = env.phase(func() error {
			for k := 0; k < s.OpsPerRank; k++ {
				off := int64(k*n+peer) * s.OpSize
				got, rerr := r.ReadAt(off, s.OpSize)
				if rerr != nil {
					return rerr
				}
				if err := verifyPiece(env, got, tag(peer), off, s.OpSize); err != nil {
					return err
				}
			}
			return nil
		})
		res.Read += d
		if err != nil {
			return res, err
		}
		d, err = env.closeFile(r)
		res.ReadClose += d
		if err != nil {
			return res, err
		}
	}
	return res, nil
}
