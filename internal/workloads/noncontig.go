package workloads

import (
	"fmt"

	"plfs/internal/adio"
	"plfs/internal/payload"
)

// Access names the file-side contiguity of a noncontiguous kernel — the
// file axis of the four-quadrant taxonomy (memory × file) of Thakur et
// al.'s datatype studies.
type Access int

const (
	// AccessContig gives each rank one contiguous block per step.
	AccessContig Access = iota
	// AccessStrided is the structured-mesh quadrant: a row-decomposed 2-D
	// array, each rank owning one column of blocks (a Vector datatype).
	AccessStrided
	// AccessIrregular is the irregular quadrant: each rank's blocks land
	// at permuted, non-monotonic displacements (an Indexed datatype).
	AccessIrregular
)

// String implements fmt.Stringer (also the -access flag syntax).
func (a Access) String() string {
	switch a {
	case AccessContig:
		return "contig"
	case AccessStrided:
		return "strided"
	case AccessIrregular:
		return "irregular"
	}
	return fmt.Sprintf("Access(%d)", int(a))
}

// ParseAccess parses the -access flag syntax.
func ParseAccess(s string) (Access, error) {
	for _, a := range []Access{AccessContig, AccessStrided, AccessIrregular} {
		if s == a.String() {
			return a, nil
		}
	}
	return AccessContig, fmt.Errorf("workloads: unknown access pattern %q (want contig|strided|irregular)", s)
}

// Noncontig is the noncontiguous-access kernel: Steps bulk-synchronous
// steps, each writing BlocksPerRank blocks of BlockSize bytes per rank
// with the file layout Access selects, through one datatype-driven
// WriteAll per step.  MemContig picks the memory axis of the taxonomy:
// true hands the layer one contiguous buffer per step (sliced across the
// file segments); false hands it one piece per block, as a strided
// in-memory layout would.  The read phase replays the same pattern with
// ReadAll and verifies content.
type Noncontig struct {
	Access        Access
	BlockSize     int64
	BlocksPerRank int
	Steps         int
	MemContig     bool
	Seed          int64 // irregular permutation seed (shared by all ranks)
}

// Name implements Kernel.
func (k Noncontig) Name() string {
	mem := "memstrided"
	if k.MemContig {
		mem = "memcontig"
	}
	return fmt.Sprintf("noncontig-%s-%s", k.Access, mem)
}

// datatype builds the step's access pattern and base offset for a rank.
// Each step owns the file region [stepBytes*step, stepBytes*(step+1)),
// tiled by n*BlocksPerRank blocks; ranks own disjoint block slots.
func (k Noncontig) datatype(step, rank, n int) (int64, *adio.Datatype) {
	stepBase := int64(step) * k.BlockSize * int64(k.BlocksPerRank) * int64(n)
	switch k.Access {
	case AccessStrided:
		// Column rank of a BlocksPerRank × n block mesh.
		base := stepBase + int64(rank)*k.BlockSize
		return base, adio.Vector(k.BlocksPerRank, k.BlockSize, k.BlockSize*int64(n))
	case AccessIrregular:
		perm := permute(k.BlocksPerRank*n, k.Seed+int64(step))
		disps := make([]int64, k.BlocksPerRank)
		for b := 0; b < k.BlocksPerRank; b++ {
			disps[b] = int64(perm[b*n+rank]) * k.BlockSize
		}
		return stepBase, adio.IndexedOf(disps, adio.Contig(k.BlockSize))
	default:
		base := stepBase + int64(rank)*k.BlockSize*int64(k.BlocksPerRank)
		return base, adio.Contig(k.BlockSize * int64(k.BlocksPerRank))
	}
}

// data builds the step's in-memory payload for a rank: one piece when
// MemContig, one per block otherwise.  Content is keyed by (rank tag,
// logical position within the rank's stream), so it is independent of
// where the blocks land in the file and round-trips through any driver.
func (k Noncontig) data(step, rank int) payload.List {
	total := k.BlockSize * int64(k.BlocksPerRank)
	phase := int64(step) * total
	if k.MemContig {
		return payload.List{payload.Synthetic(tag(rank), phase, total)}
	}
	var out payload.List
	for b := 0; b < k.BlocksPerRank; b++ {
		out = out.Append(payload.Synthetic(tag(rank), phase+int64(b)*k.BlockSize, k.BlockSize))
	}
	return out
}

// permute returns a deterministic permutation of [0, n) derived from
// seed — the shared irregular-access map every rank computes.
func permute(n int, seed int64) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Run implements Kernel.
func (k Noncontig) Run(env *Env, readBack bool) (Result, error) {
	n := env.Ranks()
	rank := env.Rank()
	res := Result{BytesPerRank: k.BlockSize * int64(k.BlocksPerRank) * int64(k.Steps)}

	f, d, err := env.openWrite()
	res.WriteOpen = d
	if err != nil {
		return res, err
	}
	res.Write, err = env.phase(func() error {
		for s := 0; s < k.Steps; s++ {
			base, dt := k.datatype(s, rank, n)
			if err := f.WriteAll(base, dt, k.data(s, rank)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.closeFile(f); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()

	r, d, err := env.openRead()
	res.ReadOpen = d
	if err != nil {
		return res, err
	}
	res.Read, err = env.phase(func() error {
		for s := 0; s < k.Steps; s++ {
			base, dt := k.datatype(s, rank, n)
			got, rerr := r.ReadAll(base, dt)
			if rerr != nil {
				return rerr
			}
			if env.Verify && !payload.ContentEqual(got, k.data(s, rank)) {
				return fmt.Errorf("workload %s: data mismatch at step %d rank %d", env.Path, s, rank)
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.closeFile(r)
	return res, err
}
