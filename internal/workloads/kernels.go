package workloads

import (
	"time"

	"plfs/internal/payload"
)

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// stridedN1 is the common engine for strided N-1 kernels: rank i's k-th
// operation targets offset (k*N + i) * opSize, contents pattern-tagged by
// rank, read pattern matching the write pattern.
type stridedN1 struct {
	name       string
	opSize     int64
	opsPerRank int
	collective bool // use WriteAtAll/ReadAtAll (collective buffering path)
}

func (s stridedN1) Name() string { return s.name }

// Run implements Kernel.
func (s stridedN1) Run(env *Env, readBack bool) (Result, error) {
	n := env.Ranks()
	rank := env.Rank()
	res := Result{BytesPerRank: s.opSize * int64(s.opsPerRank)}

	f, d, err := env.openWrite()
	res.WriteOpen = d
	if err != nil {
		return res, err
	}
	res.Write, err = env.phase(func() error {
		for k := 0; k < s.opsPerRank; k++ {
			off := int64(k*n+rank) * s.opSize
			p := payload.Synthetic(tag(rank), off, s.opSize)
			var werr error
			if s.collective {
				werr = f.WriteAtAll(off, p)
			} else {
				werr = f.WriteAt(off, p)
			}
			if werr != nil {
				return werr
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.closeFile(f); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()

	r, d, err := env.openRead()
	res.ReadOpen = d
	if err != nil {
		return res, err
	}
	res.Read, err = env.phase(func() error {
		for k := 0; k < s.opsPerRank; k++ {
			off := int64(k*n+rank) * s.opSize
			var got payload.List
			var rerr error
			if s.collective {
				got, rerr = r.ReadAtAll(off, s.opSize)
			} else {
				got, rerr = r.ReadAt(off, s.opSize)
			}
			if rerr != nil {
				return rerr
			}
			if err := verifyPiece(env, got, tag(rank), off, s.opSize); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.closeFile(r)
	return res, err
}

// segmentedN1 writes each rank's data as one contiguous block (IOR's
// default "segmented" layout): rank i owns [i*B, (i+1)*B).
type segmentedN1 struct {
	name       string
	opSize     int64
	opsPerRank int
}

func (s segmentedN1) Name() string { return s.name }

// Run implements Kernel.
func (s segmentedN1) Run(env *Env, readBack bool) (Result, error) {
	rank := env.Rank()
	block := s.opSize * int64(s.opsPerRank)
	base := int64(rank) * block
	res := Result{BytesPerRank: block}

	f, d, err := env.openWrite()
	res.WriteOpen = d
	if err != nil {
		return res, err
	}
	res.Write, err = env.phase(func() error {
		for k := 0; k < s.opsPerRank; k++ {
			off := base + int64(k)*s.opSize
			if err := f.WriteAt(off, payload.Synthetic(tag(rank), off, s.opSize)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.closeFile(f); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()
	r, d, err := env.openRead()
	res.ReadOpen = d
	if err != nil {
		return res, err
	}
	res.Read, err = env.phase(func() error {
		for k := 0; k < s.opsPerRank; k++ {
			off := base + int64(k)*s.opSize
			got, rerr := r.ReadAt(off, s.opSize)
			if rerr != nil {
				return rerr
			}
			if err := verifyPiece(env, got, tag(rank), off, s.opSize); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.closeFile(r)
	return res, err
}

// restartN1 models a checkpoint-restart cycle: a segmented N-1
// checkpoint (each rank writes one contiguous slab, so its data dropping
// is physically dense) plus a partial overwrite round that rewrites
// every other block into a second dropping.  The survivors of the first
// dropping are then one block apart physically — exactly the
// near-adjacent gaps read sieving coalesces across when the restart read
// pulls a slab back in large chunks.
type restartN1 struct {
	opSize     int64
	opsPerRank int
}

func (restartN1) Name() string { return "restart-n1" }

// Run implements Kernel.
func (s restartN1) Run(env *Env, readBack bool) (Result, error) {
	rank := env.Rank()
	res := Result{BytesPerRank: s.opSize * int64(s.opsPerRank)}
	slab := s.opSize * int64(s.opsPerRank)
	base := int64(rank) * slab

	writeRound := func(every int) (time.Duration, time.Duration, time.Duration, error) {
		f, od, err := env.openWrite()
		if err != nil {
			return od, 0, 0, err
		}
		wd, err := env.phase(func() error {
			for k := 0; k < s.opsPerRank; k += every {
				off := base + int64(k)*s.opSize
				if err := f.WriteAt(off, payload.Synthetic(tag(rank), off, s.opSize)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return od, wd, 0, err
		}
		cd, err := env.closeFile(f)
		return od, wd, cd, err
	}
	od, wd, cd, err := writeRound(1) // the checkpoint
	res.WriteOpen, res.Write, res.WriteClose = od, wd, cd
	if err != nil {
		return res, err
	}
	od, wd, cd, err = writeRound(2) // overwrite every other block
	res.WriteOpen += od
	res.Write += wd
	res.WriteClose += cd
	if err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()

	r, d, err := env.openRead()
	res.ReadOpen = d
	if err != nil {
		return res, err
	}
	// Restart read: each rank pulls its neighbor's slab in large chunks,
	// so one ReadAt resolves to many pieces alternating between that
	// writer's two droppings — the lookup shape read sieving coalesces.
	// Each opSize piece inside a chunk belongs to writer off/slab.
	n := env.Ranks()
	base = int64((rank+1)%n) * slab
	chunk := 16 * s.opSize
	res.Read, err = env.phase(func() error {
		for o := int64(0); o < slab; o += chunk {
			sz := min64(chunk, slab-o)
			got, rerr := r.ReadAt(base+o, sz)
			if rerr != nil {
				return rerr
			}
			for p := int64(0); p < sz; p += s.opSize {
				off := base + o + p
				owner := int(off / slab)
				piece := got.Slice(p, min64(s.opSize, sz-p))
				if err := verifyPiece(env, piece, tag(owner), off, piece.Len()); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.closeFile(r)
	return res, err
}

// RestartN1 builds the checkpoint-restart kernel: bytesPerRank written
// as one contiguous slab per rank in opSize increments, half of it
// overwritten into a second dropping, then read back in large chunks.
func RestartN1(bytesPerRank, opSize int64) Kernel {
	return restartN1{opSize: opSize, opsPerRank: int(bytesPerRank / opSize)}
}

// reopenN1 writes one strided N-1 checkpoint and then opens it for read
// `reopens` times, touching one block per open.  Open cost dominates
// by design: the kernel isolates what the cross-open index cache
// eliminates for analysis tools that revisit an unchanged file.
type reopenN1 struct {
	opSize     int64
	opsPerRank int
	reopens    int
}

func (reopenN1) Name() string { return "reopen-n1" }

// Run implements Kernel.
func (s reopenN1) Run(env *Env, readBack bool) (Result, error) {
	n := env.Ranks()
	rank := env.Rank()
	res := Result{BytesPerRank: s.opSize * int64(s.opsPerRank)}

	f, d, err := env.openWrite()
	res.WriteOpen = d
	if err != nil {
		return res, err
	}
	res.Write, err = env.phase(func() error {
		for k := 0; k < s.opsPerRank; k++ {
			off := int64(k*n+rank) * s.opSize
			if err := f.WriteAt(off, payload.Synthetic(tag(rank), off, s.opSize)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.closeFile(f); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	// One cache drop after the write — the reopen cycles that follow are
	// exactly the repeated-open pattern the index cache exists for.
	env.dropCaches()
	for c := 0; c < s.reopens; c++ {
		r, d, err := env.openRead()
		res.ReadOpen += d
		if err != nil {
			return res, err
		}
		off := int64(rank) * s.opSize
		rd, err := env.phase(func() error {
			got, rerr := r.ReadAt(off, s.opSize)
			if rerr != nil {
				return rerr
			}
			return verifyPiece(env, got, tag(rank), off, s.opSize)
		})
		res.Read += rd
		if err != nil {
			return res, err
		}
		cd, err := env.closeFile(r)
		res.ReadClose += cd
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// ReopenN1 builds the repeated-open kernel: one strided checkpoint, then
// `reopens` open/read-one-block/close cycles against the unchanged file.
func ReopenN1(bytesPerRank, opSize int64, reopens int) Kernel {
	return reopenN1{opSize: opSize, opsPerRank: int(bytesPerRank / opSize), reopens: reopens}
}

// MPIIOTest reproduces the LANL MPI-IO Test configuration of §IV.C: each
// concurrent I/O stream moves BytesPerRank in OpSize increments, N-1
// strided, with the read pattern matching the write pattern.
func MPIIOTest(bytesPerRank, opSize int64) Kernel {
	return stridedN1{
		name:       "mpi-io-test",
		opSize:     opSize,
		opsPerRank: int(bytesPerRank / opSize),
	}
}

// IOR reproduces the §IV.D.3 configuration: 50 MB per process in 1 MB
// increments to a shared file, segmented layout, read-write mode opens
// converted to read-only (PLFS's restriction — handled by adio).
func IOR(bytesPerRank, opSize int64) Kernel {
	return segmentedN1{
		name:       "ior",
		opSize:     opSize,
		opsPerRank: int(bytesPerRank / opSize),
	}
}

// LANL1 is the §IV.D.5 kernel: a weak-scaling mission application writing
// and reading in ~500 KB strided increments.
func LANL1(bytesPerRank int64) Kernel {
	const op = 500 << 10
	return stridedN1{
		name:       "lanl1",
		opSize:     op,
		opsPerRank: int(bytesPerRank / op),
	}
}

// LANL2 is the write-workload proxy for the paper's worst-case Fig. 2
// application: small (16 KiB), lock-unit-unaligned, strided records — the
// pattern that collapses shared-file write bandwidth hardest and gives
// PLFS its largest speedups.
func LANL2(bytesPerRank int64) Kernel {
	const op = 16<<10 + 512 // unaligned with every power-of-two lock unit
	return stridedN1{
		name:       "lanl2",
		opSize:     op,
		opsPerRank: int(bytesPerRank / op),
	}
}

// LANL3 is the §IV.D.6 kernel: strong scaling to a shared file, tiny
// (1024 B) accesses aggregated by collective buffering (enable it in
// Env.Hints).  The simulated kernel issues one collective call per
// aggregation round: with two-phase I/O the wire and disk traffic of the
// tiny interleaved accesses is identical to the contiguous per-round
// exchange, and the constant round geometry is what keeps the PLFS index
// size flat, as the paper observes.
func LANL3(totalBytes int64, ranks int) Kernel {
	per := totalBytes / int64(ranks)
	const round = 1 << 20 // per-rank bytes contributed per collective round
	ops := int(per / round)
	if ops < 1 {
		ops = 1
	}
	return stridedN1{
		name:       "lanl3",
		opSize:     round,
		opsPerRank: ops,
		collective: true,
	}
}

// Madbench reproduces the §IV.D.4 I/O phases of the MADspec cosmic
// microwave background code: each rank writes its share of M matrices
// sequentially, then reads them all back (opens converted to read-only).
type Madbench struct {
	Matrices    int
	MatrixBytes int64 // per rank, per matrix
	// OpSize is the access granularity within a matrix (default 1 MiB).
	OpSize int64
}

// Name implements Kernel.
func (Madbench) Name() string { return "madbench" }

// Run implements Kernel.
func (m Madbench) Run(env *Env, readBack bool) (Result, error) {
	n := env.Ranks()
	rank := env.Rank()
	res := Result{BytesPerRank: m.MatrixBytes * int64(m.Matrices)}
	stride := m.MatrixBytes * int64(n) // one matrix spans all ranks

	f, d, err := env.openWrite()
	res.WriteOpen = d
	if err != nil {
		return res, err
	}
	op := m.OpSize
	if op <= 0 {
		op = 1 << 20
	}
	if op > m.MatrixBytes {
		op = m.MatrixBytes
	}
	res.Write, err = env.phase(func() error {
		for mt := 0; mt < m.Matrices; mt++ {
			base := int64(mt)*stride + int64(rank)*m.MatrixBytes
			for o := int64(0); o < m.MatrixBytes; o += op {
				n := min64(op, m.MatrixBytes-o)
				if err := f.WriteAt(base+o, payload.Synthetic(tag(rank), base+o, n)); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	if res.WriteClose, err = env.closeFile(f); err != nil {
		return res, err
	}
	if !readBack {
		return res, nil
	}
	env.dropCaches()
	r, d, err := env.openRead()
	res.ReadOpen = d
	if err != nil {
		return res, err
	}
	res.Read, err = env.phase(func() error {
		// Read back in its entirety, matrices in reverse (the S-W-C
		// pattern re-reads the most recent first).
		for mt := m.Matrices - 1; mt >= 0; mt-- {
			base := int64(mt)*stride + int64(rank)*m.MatrixBytes
			for o := int64(0); o < m.MatrixBytes; o += op {
				n := min64(op, m.MatrixBytes-o)
				got, rerr := r.ReadAt(base+o, n)
				if rerr != nil {
					return rerr
				}
				if err := verifyPiece(env, got, tag(rank), base+o, n); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}
	res.ReadClose, err = env.closeFile(r)
	return res, err
}
