package payload

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// Property: ResolveSorted on a Start-sorted copy of the input equals
// Resolve on the unsorted input — the two entry points compute the same
// cover from the same span multiset.
func TestResolveSortedMatchesResolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		spans := make([]Span, n)
		for i := range spans {
			start := int64(rng.Intn(1000))
			spans[i] = Span{
				Start: start,
				End:   start + int64(rng.Intn(50)), // sometimes empty
				Seq:   uint64(rng.Intn(16)),        // force seq ties
				Ref:   int32(i),
			}
		}
		want := Resolve(spans)
		sorted := append([]Span(nil), spans...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		got := ResolveSorted(sorted)
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResolveSortedEdgeCases(t *testing.T) {
	if got := ResolveSorted(nil); got != nil {
		t.Fatalf("ResolveSorted(nil) = %v", got)
	}
	// All-empty spans resolve to nothing.
	if got := ResolveSorted([]Span{{Start: 5, End: 5}, {Start: 9, End: 3}}); got != nil {
		t.Fatalf("all-empty = %v", got)
	}
	// Empty spans interleaved with real ones are filtered without
	// disturbing order; the input slice must not be mutated.
	in := []Span{
		{Start: 0, End: 10, Seq: 1, Ref: 0},
		{Start: 5, End: 5, Seq: 9, Ref: 1}, // empty
		{Start: 10, End: 20, Seq: 1, Ref: 2},
	}
	orig := append([]Span(nil), in...)
	got := ResolveSorted(in)
	want := []Span{{Start: 0, End: 10, Seq: 1, Ref: 0}, {Start: 10, End: 20, Seq: 1, Ref: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !reflect.DeepEqual(in, orig) {
		t.Fatal("ResolveSorted mutated its input")
	}
}

func TestMergeSortedInt64(t *testing.T) {
	got := mergeSortedInt64([]int64{1, 3, 3, 7}, []int64{0, 3, 8})
	want := []int64{0, 1, 3, 7, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	if got := mergeSortedInt64(nil, nil); len(got) != 0 {
		t.Fatalf("merge(nil,nil) = %v", got)
	}
}
