package payload

import (
	"container/heap"
	"sort"
)

// Span is a half-open byte range [Start, End) carrying a resolution
// sequence number and an opaque reference into caller-owned storage.  It is
// the common currency of overwrite resolution: both the simulated file
// store and the PLFS global index resolve overlapping writes with the same
// sweep (highest Seq wins), exactly mirroring PLFS's use of timestamps to
// order writes to the same offset.
type Span struct {
	Start, End int64
	Seq        uint64
	Ref        int32
}

// Resolve flattens possibly-overlapping spans into a sorted, disjoint
// cover in which, at every byte, the span with the highest Seq wins
// (ties broken toward the later Ref).  Adjacent pieces of the same Ref are
// merged.  The result references the same Refs, clipped.
func Resolve(spans []Span) []Span {
	in := make([]Span, 0, len(spans))
	for _, s := range spans {
		if s.End <= s.Start {
			continue
		}
		in = append(in, s)
	}
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Start < in[j].Start })
	return resolveSweep(in)
}

// ResolveSorted is Resolve for spans already sorted by Start (ascending):
// it skips the global re-sort, so callers that merge pre-sorted runs — the
// parallel index builder's per-shard sorts plus k-way merge — pay only the
// linear sweep plus one sort of the End bounds.  The output is identical
// to Resolve on the same multiset of spans.  Empty spans (End <= Start)
// are dropped; out-of-order input is a contract violation and produces an
// unspecified cover.
func ResolveSorted(spans []Span) []Span {
	in := spans
	for i, s := range in {
		if s.End <= s.Start {
			// Rare path: compact the empties away, preserving order.
			in = append(make([]Span, 0, len(spans)), spans[:i]...)
			for _, s := range spans[i:] {
				if s.End > s.Start {
					in = append(in, s)
				}
			}
			break
		}
	}
	if len(in) == 0 {
		return nil
	}
	return resolveSweep(in)
}

// resolveSweep runs the boundary sweep over spans sorted by Start.  The
// result is a pure function of the span multiset: equal-Start spans all
// activate at the same boundary, and the winner at each cell is picked by
// (Seq, Ref) alone, so any valid sort order yields the same cover.
func resolveSweep(in []Span) []Span {
	// Bounds are every distinct Start and End.  Starts arrive sorted; only
	// the Ends need sorting, then a linear merge of the two runs.
	starts := make([]int64, len(in))
	ends := make([]int64, len(in))
	for i, s := range in {
		starts[i] = s.Start
		ends[i] = s.End
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	bounds := mergeSortedInt64(starts, ends)

	var out []Span
	var active spanHeap
	next := 0 // next span (by Start) to activate
	for bi := 0; bi+1 < len(bounds); bi++ {
		lo, hi := bounds[bi], bounds[bi+1]
		for next < len(in) && in[next].Start <= lo {
			heap.Push(&active, in[next])
			next++
		}
		for active.Len() > 0 && active[0].End <= lo {
			heap.Pop(&active)
		}
		if active.Len() == 0 {
			continue
		}
		w := active[0]
		if n := len(out); n > 0 && out[n-1].Ref == w.Ref && out[n-1].End == lo &&
			out[n-1].Seq == w.Seq {
			out[n-1].End = hi
		} else {
			out = append(out, Span{Start: lo, End: hi, Seq: w.Seq, Ref: w.Ref})
		}
	}
	return out
}

// mergeSortedInt64 merges two sorted runs into one sorted, deduplicated
// slice.
func mergeSortedInt64(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var x int64
		switch {
		case j >= len(b) || (i < len(a) && a[i] <= b[j]):
			x = a[i]
			i++
		default:
			x = b[j]
			j++
		}
		if n := len(out); n == 0 || out[n-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// spanHeap orders active spans by descending (Seq, Ref): the winner is at
// the top.  Dead spans (End <= cursor) are lazily removed.
type spanHeap []Span

func (h spanHeap) Len() int { return len(h) }
func (h spanHeap) Less(i, j int) bool {
	if h[i].Seq != h[j].Seq {
		return h[i].Seq > h[j].Seq
	}
	return h[i].Ref > h[j].Ref
}
func (h spanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *spanHeap) Push(x any)   { *h = append(*h, x.(Span)) }
func (h *spanHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// File is a sparse byte store built from payload extents.  Writes are
// buffered and consolidated lazily (on the first read after a write), so a
// write-heavy phase costs O(1) amortized per write and a consolidation
// costs O(n log n) — matching how the simulator's workloads behave
// (bulk-synchronous write phase, then read phase).
//
// Overlapping writes resolve to the latest (highest write sequence), like
// a POSIX file written without concurrent overlap guarantees.
type File struct {
	resolved []fext   // sorted, disjoint
	pending  []pwrite // unconsolidated writes, in arrival order
	seq      uint64
	size     int64
}

type fext struct {
	off int64
	p   Payload
}

type pwrite struct {
	off int64
	seq uint64
	p   Payload
}

// Size returns the file size (highest written byte + 1).
func (f *File) Size() int64 { return f.size }

// WriteAt records a write of p at offset off.
func (f *File) WriteAt(off int64, p Payload) {
	if p.Length == 0 {
		return
	}
	f.seq++
	f.pending = append(f.pending, pwrite{off: off, seq: f.seq, p: p})
	if end := off + p.Length; end > f.size {
		f.size = end
	}
}

// Append writes p at the current end of file and returns the offset it
// landed at.
func (f *File) Append(p Payload) int64 {
	off := f.size
	f.WriteAt(off, p)
	return off
}

// consolidate folds pending writes into the resolved extent list.
func (f *File) consolidate() {
	if len(f.pending) == 0 {
		return
	}
	spans := make([]Span, 0, len(f.resolved)+len(f.pending))
	store := make([]Payload, 0, cap(spans))
	add := func(off int64, seq uint64, p Payload) {
		store = append(store, p)
		spans = append(spans, Span{Start: off, End: off + p.Length, Seq: seq, Ref: int32(len(store) - 1)})
	}
	for _, e := range f.resolved {
		add(e.off, 0, e.p) // already-resolved extents never overlap; seq 0 is safe
	}
	for _, w := range f.pending {
		add(w.off, w.seq, w.p)
	}
	f.pending = f.pending[:0]
	res := Resolve(spans)
	f.resolved = f.resolved[:0]
	for _, s := range res {
		src := spans[findSpanRef(spans, s.Ref)]
		p := store[s.Ref].Slice(s.Start-src.Start, s.End-s.Start)
		if n := len(f.resolved); n > 0 {
			last := &f.resolved[n-1]
			if last.off+last.p.Length == s.Start && last.p.canCoalesce(p) {
				last.p.Length += p.Length
				continue
			}
		}
		f.resolved = append(f.resolved, fext{off: s.Start, p: p})
	}
}

// findSpanRef locates the original span for a ref; Refs are assigned as
// indices, so this is a direct lookup.
func findSpanRef(spans []Span, ref int32) int { return int(ref) }

// ReadAt returns the byte range [off, off+length), with holes reading as
// zeros.  Reading past EOF returns zeros for the overhang (the simulated
// store is a sparse object store, not a POSIX fd; EOF handling lives in
// the filesystem layer above).
func (f *File) ReadAt(off, length int64) List {
	if length <= 0 {
		return nil
	}
	f.consolidate()
	var out List
	end := off + length
	// Find the first extent ending after off.
	i := sort.Search(len(f.resolved), func(i int) bool {
		e := f.resolved[i]
		return e.off+e.p.Length > off
	})
	cur := off
	for ; i < len(f.resolved) && cur < end; i++ {
		e := f.resolved[i]
		if e.off > cur {
			gap := e.off - cur
			if gap > end-cur {
				gap = end - cur
			}
			out = out.Append(Zeros(gap))
			cur += gap
			if cur >= end {
				break
			}
		}
		lo := cur - e.off
		take := e.p.Length - lo
		if take > end-cur {
			take = end - cur
		}
		out = out.Append(e.p.Slice(lo, take))
		cur += take
	}
	if cur < end {
		out = out.Append(Zeros(end - cur))
	}
	return out
}

// Extents returns the number of resolved extents (after consolidation),
// a memory/diagnostic metric.
func (f *File) Extents() int {
	f.consolidate()
	return len(f.resolved)
}

// Truncate resets the file to empty if n == 0; partial truncation clips
// extents.  (Checkpoint workloads only ever truncate to zero on recreate,
// but the general form is cheap to support.)
func (f *File) Truncate(n int64) {
	f.consolidate()
	if n <= 0 {
		f.resolved = f.resolved[:0]
		f.size = 0
		return
	}
	out := f.resolved[:0]
	for _, e := range f.resolved {
		if e.off >= n {
			break
		}
		if e.off+e.p.Length > n {
			e.p = e.p.Slice(0, n-e.off)
		}
		out = append(out, e)
	}
	f.resolved = out
	if f.size > n {
		f.size = n
	}
}
