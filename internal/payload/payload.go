// Package payload represents file contents that may be either materialized
// bytes or synthetic pattern-generated extents.
//
// The simulator replays workloads that logically move terabytes (65,536
// processes × tens of MB each).  Storing those bytes is impossible, but the
// reproduction still has to prove that PLFS's index machinery returns the
// *right* bytes.  A synthetic payload carries (Tag, Phase, Len): the byte at
// stream position i is the deterministic PatternByte(Tag, Phase+i).  Slicing,
// concatenation, and storage preserve the algebra, so a reader can verify
// that the bytes that come back are exactly the bytes some writer put in —
// at any scale, in O(extents) memory.  Small-scale tests materialize real
// bytes through the same code paths to anchor the equivalence.
package payload

import "fmt"

// PatternByte is the deterministic synthetic content function: the byte at
// pattern position pos of the stream identified by tag.
func PatternByte(tag uint64, pos int64) byte {
	x := tag ^ (uint64(pos)+0x9E3779B97F4A7C15)*0xBF58476D1CE4E5B9
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 29
	return byte(x)
}

// Payload is a contiguous run of bytes.  Exactly one of three forms:
//
//   - materialized: Bytes != nil (Tag/Phase ignored)
//   - synthetic:    Bytes == nil, Tag != 0
//   - zeros:        Bytes == nil, Tag == 0 (unwritten holes)
type Payload struct {
	Bytes  []byte
	Tag    uint64
	Phase  int64
	Length int64
}

// FromBytes returns a materialized payload backed by b (not copied).
func FromBytes(b []byte) Payload {
	return Payload{Bytes: b, Length: int64(len(b))}
}

// Synthetic returns a pattern payload.  tag must be nonzero (zero is
// reserved for holes).
func Synthetic(tag uint64, phase, length int64) Payload {
	if tag == 0 {
		panic("payload: synthetic tag must be nonzero")
	}
	if length < 0 {
		panic("payload: negative length")
	}
	return Payload{Tag: tag, Phase: phase, Length: length}
}

// Zeros returns a hole payload of the given length.
func Zeros(length int64) Payload {
	if length < 0 {
		panic("payload: negative length")
	}
	return Payload{Length: length}
}

// Len returns the payload length in bytes.
func (p Payload) Len() int64 { return p.Length }

// IsZeros reports whether p is a hole (all-zero) payload.
func (p Payload) IsZeros() bool { return p.Bytes == nil && p.Tag == 0 }

// At returns the byte at index i (0 <= i < Len).
func (p Payload) At(i int64) byte {
	if i < 0 || i >= p.Length {
		panic(fmt.Sprintf("payload: index %d out of range [0,%d)", i, p.Length))
	}
	switch {
	case p.Bytes != nil:
		return p.Bytes[i]
	case p.Tag != 0:
		return PatternByte(p.Tag, p.Phase+i)
	default:
		return 0
	}
}

// Slice returns the sub-payload [off, off+length).
func (p Payload) Slice(off, length int64) Payload {
	if off < 0 || length < 0 || off+length > p.Length {
		panic(fmt.Sprintf("payload: slice [%d,%d) of %d", off, off+length, p.Length))
	}
	if p.Bytes != nil {
		return Payload{Bytes: p.Bytes[off : off+length], Length: length}
	}
	return Payload{Tag: p.Tag, Phase: p.Phase + off, Length: length}
}

// Materialize returns the payload contents as a fresh byte slice.
func (p Payload) Materialize() []byte {
	out := make([]byte, p.Length)
	if p.Bytes != nil {
		copy(out, p.Bytes)
		return out
	}
	if p.Tag != 0 {
		for i := range out {
			out[i] = PatternByte(p.Tag, p.Phase+int64(i))
		}
	}
	return out
}

// canCoalesce reports whether q directly continues p as one payload.
func (p Payload) canCoalesce(q Payload) bool {
	if p.Bytes != nil || q.Bytes != nil {
		return false // materialized slices are not merged (avoids copies)
	}
	if p.Tag != q.Tag {
		return false
	}
	if p.Tag == 0 {
		return true // holes always merge
	}
	return p.Phase+p.Length == q.Phase
}

// List is a concatenation of payloads.
type List []Payload

// Len returns the total byte length.
func (l List) Len() int64 {
	var n int64
	for _, p := range l {
		n += p.Length
	}
	return n
}

// Append appends p to l, coalescing with the tail when possible.
func (l List) Append(p Payload) List {
	if p.Length == 0 {
		return l
	}
	if n := len(l); n > 0 && l[n-1].canCoalesce(p) {
		l[n-1].Length += p.Length
		return l
	}
	return append(l, p)
}

// Concat appends every payload of other to l.
func (l List) Concat(other List) List {
	for _, p := range other {
		l = l.Append(p)
	}
	return l
}

// Slice returns the byte range [off, off+length) of the concatenation.
func (l List) Slice(off, length int64) List {
	if off < 0 || length < 0 || off+length > l.Len() {
		panic(fmt.Sprintf("payload: list slice [%d,%d) of %d", off, off+length, l.Len()))
	}
	var out List
	for _, p := range l {
		if length == 0 {
			break
		}
		if off >= p.Length {
			off -= p.Length
			continue
		}
		take := p.Length - off
		if take > length {
			take = length
		}
		out = out.Append(p.Slice(off, take))
		off = 0
		length -= take
	}
	return out
}

// At returns the byte at index i of the concatenation.
func (l List) At(i int64) byte {
	for _, p := range l {
		if i < p.Length {
			return p.At(i)
		}
		i -= p.Length
	}
	panic("payload: list index out of range")
}

// Materialize returns the full concatenated contents.
func (l List) Materialize() []byte {
	out := make([]byte, 0, l.Len())
	for _, p := range l {
		out = append(out, p.Materialize()...)
	}
	return out
}

// ContentEqual reports whether two lists describe identical byte streams.
func ContentEqual(a, b List) bool {
	if a.Len() != b.Len() {
		return false
	}
	// Walk both lists in lockstep comparing aligned chunks.
	ai, bi := 0, 0
	var ao, bo int64
	remaining := a.Len()
	for remaining > 0 {
		pa, pb := a[ai], b[bi]
		n := pa.Length - ao
		if m := pb.Length - bo; m < n {
			n = m
		}
		if !chunkEqual(pa, ao, pb, bo, n) {
			return false
		}
		ao += n
		bo += n
		remaining -= n
		if ao == pa.Length {
			ai++
			ao = 0
		}
		if bo == pb.Length {
			bi++
			bo = 0
		}
	}
	return true
}

func chunkEqual(pa Payload, ao int64, pb Payload, bo int64, n int64) bool {
	// Fast path: same synthetic stream at the same phase.
	if pa.Bytes == nil && pb.Bytes == nil && pa.Tag == pb.Tag &&
		(pa.Tag == 0 || pa.Phase+ao == pb.Phase+bo) {
		return true
	}
	for i := int64(0); i < n; i++ {
		if pa.At(ao+i) != pb.At(bo+i) {
			return false
		}
	}
	return true
}
