package payload

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPatternByteDeterministic(t *testing.T) {
	if PatternByte(7, 100) != PatternByte(7, 100) {
		t.Fatal("pattern not deterministic")
	}
	// Different tags and positions should (almost always) differ; check a
	// couple of fixed pairs to catch degenerate mixing.
	if PatternByte(1, 0) == PatternByte(2, 0) && PatternByte(1, 1) == PatternByte(2, 1) &&
		PatternByte(1, 2) == PatternByte(2, 2) && PatternByte(1, 3) == PatternByte(2, 3) {
		t.Fatal("pattern ignores tag")
	}
}

func TestSyntheticSliceMatchesMaterialize(t *testing.T) {
	p := Synthetic(42, 100, 1000)
	whole := p.Materialize()
	sl := p.Slice(250, 300)
	if !bytes.Equal(sl.Materialize(), whole[250:550]) {
		t.Fatal("synthetic slice does not match materialized slice")
	}
}

func TestMaterializedPayload(t *testing.T) {
	b := []byte("hello, world")
	p := FromBytes(b)
	if p.Len() != int64(len(b)) {
		t.Fatalf("len = %d", p.Len())
	}
	if p.At(4) != 'o' {
		t.Fatalf("At(4) = %c", p.At(4))
	}
	if !bytes.Equal(p.Slice(7, 5).Materialize(), []byte("world")) {
		t.Fatal("slice wrong")
	}
}

func TestZerosPayload(t *testing.T) {
	z := Zeros(16)
	if !z.IsZeros() {
		t.Fatal("not zeros")
	}
	for _, b := range z.Materialize() {
		if b != 0 {
			t.Fatal("nonzero byte in hole")
		}
	}
}

func TestListAppendCoalesces(t *testing.T) {
	var l List
	l = l.Append(Synthetic(9, 0, 100))
	l = l.Append(Synthetic(9, 100, 50)) // contiguous phase: coalesce
	if len(l) != 1 || l[0].Length != 150 {
		t.Fatalf("coalesce failed: %+v", l)
	}
	l = l.Append(Synthetic(9, 500, 10)) // phase gap: no coalesce
	if len(l) != 2 {
		t.Fatalf("unexpected coalesce: %+v", l)
	}
	l = l.Append(Zeros(5))
	l = l.Append(Zeros(7)) // holes merge
	if len(l) != 3 || l[2].Length != 12 {
		t.Fatalf("hole merge failed: %+v", l)
	}
}

func TestListSliceAndAt(t *testing.T) {
	var l List
	l = l.Append(FromBytes([]byte{1, 2, 3}))
	l = l.Append(Synthetic(5, 0, 4))
	l = l.Append(Zeros(3))
	whole := l.Materialize()
	if l.Len() != 10 {
		t.Fatalf("len = %d", l.Len())
	}
	for off := int64(0); off <= 10; off++ {
		for n := int64(0); off+n <= 10; n++ {
			got := l.Slice(off, n).Materialize()
			if !bytes.Equal(got, whole[off:off+n]) {
				t.Fatalf("slice [%d,%d) mismatch", off, off+n)
			}
		}
	}
	for i := int64(0); i < 10; i++ {
		if l.At(i) != whole[i] {
			t.Fatalf("At(%d) mismatch", i)
		}
	}
}

func TestContentEqual(t *testing.T) {
	a := List{Synthetic(3, 0, 10)}
	b := List{Synthetic(3, 0, 4), Synthetic(3, 4, 6)}
	if !ContentEqual(a, b) {
		t.Fatal("split synthetic streams must be equal")
	}
	c := List{FromBytes(a.Materialize())}
	if !ContentEqual(a, c) {
		t.Fatal("materialized copy must be equal")
	}
	d := List{Synthetic(4, 0, 10)}
	if ContentEqual(a, d) {
		t.Fatal("different tags compared equal")
	}
	if ContentEqual(a, List{Synthetic(3, 0, 9)}) {
		t.Fatal("different lengths compared equal")
	}
}

func TestResolveLastWriterWins(t *testing.T) {
	spans := []Span{
		{Start: 0, End: 10, Seq: 1, Ref: 0},
		{Start: 5, End: 15, Seq: 2, Ref: 1},
		{Start: 8, End: 9, Seq: 3, Ref: 2},
	}
	res := Resolve(spans)
	// Expect: [0,5)->0, [5,8)->1, [8,9)->2, [9,15)->1
	want := []Span{
		{0, 5, 1, 0}, {5, 8, 2, 1}, {8, 9, 3, 2}, {9, 15, 2, 1},
	}
	if len(res) != len(want) {
		t.Fatalf("res = %+v", res)
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("res[%d] = %+v, want %+v", i, res[i], want[i])
		}
	}
}

func TestResolveEmptyAndDegenerate(t *testing.T) {
	if Resolve(nil) != nil {
		t.Fatal("nil input must resolve to nil")
	}
	if got := Resolve([]Span{{Start: 5, End: 5, Seq: 1}}); got != nil {
		t.Fatalf("empty span must vanish: %+v", got)
	}
}

// Property: Resolve produces a disjoint sorted cover of the union, and at
// every byte the winner has the max Seq among covering spans.
func TestResolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		spans := make([]Span, n)
		for i := range spans {
			start := int64(rng.Intn(200))
			spans[i] = Span{Start: start, End: start + int64(rng.Intn(50)), Seq: uint64(i + 1), Ref: int32(i)}
		}
		res := Resolve(spans)
		// Disjoint & sorted.
		for i := 1; i < len(res); i++ {
			if res[i].Start < res[i-1].End {
				return false
			}
		}
		// Oracle: byte map.
		var oracle [300]uint64
		for _, s := range spans {
			for b := s.Start; b < s.End; b++ {
				if s.Seq > oracle[b] {
					oracle[b] = s.Seq
				}
			}
		}
		var got [300]uint64
		for _, s := range res {
			for b := s.Start; b < s.End; b++ {
				got[b] = s.Seq
			}
		}
		return oracle == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileWriteReadRoundtrip(t *testing.T) {
	var f File
	f.WriteAt(0, FromBytes([]byte("aaaaaaaaaa")))
	f.WriteAt(5, FromBytes([]byte("BBB")))
	got := f.ReadAt(0, 10).Materialize()
	if string(got) != "aaaaaBBBaa" {
		t.Fatalf("got %q", got)
	}
	if f.Size() != 10 {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestFileHolesReadAsZeros(t *testing.T) {
	var f File
	f.WriteAt(10, FromBytes([]byte("xy")))
	got := f.ReadAt(0, 14).Materialize()
	want := append(make([]byte, 10), 'x', 'y', 0, 0)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFileAppend(t *testing.T) {
	var f File
	if off := f.Append(FromBytes([]byte("abc"))); off != 0 {
		t.Fatalf("first append off = %d", off)
	}
	if off := f.Append(FromBytes([]byte("de"))); off != 3 {
		t.Fatalf("second append off = %d", off)
	}
	if string(f.ReadAt(0, 5).Materialize()) != "abcde" {
		t.Fatal("append contents wrong")
	}
}

func TestFileTruncate(t *testing.T) {
	var f File
	f.WriteAt(0, FromBytes([]byte("0123456789")))
	f.Truncate(4)
	if f.Size() != 4 {
		t.Fatalf("size = %d", f.Size())
	}
	if string(f.ReadAt(0, 4).Materialize()) != "0123" {
		t.Fatal("truncate contents wrong")
	}
	f.Truncate(0)
	if f.Size() != 0 || f.Extents() != 0 {
		t.Fatal("truncate to zero failed")
	}
}

// Property: File matches a brute-force byte-array oracle under random
// overlapping writes interleaved with reads.
func TestFileMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var file File
		oracle := make([]byte, 0, 512)
		ops := 1 + rng.Intn(60)
		for k := 0; k < ops; k++ {
			if rng.Intn(3) > 0 { // write
				off := int64(rng.Intn(400))
				n := 1 + rng.Intn(60)
				data := make([]byte, n)
				rng.Read(data)
				file.WriteAt(off, FromBytes(data))
				if need := int(off) + n; need > len(oracle) {
					oracle = append(oracle, make([]byte, need-len(oracle))...)
				}
				copy(oracle[off:], data)
			} else { // read
				if file.Size() != int64(len(oracle)) {
					return false
				}
				off := int64(rng.Intn(480))
				n := int64(rng.Intn(80))
				got := file.ReadAt(off, n).Materialize()
				want := make([]byte, n)
				for i := int64(0); i < n; i++ {
					if idx := off + i; idx < int64(len(oracle)) {
						want[i] = oracle[idx]
					}
				}
				if !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a File written with synthetic payloads returns extents whose
// contents verify against the pattern function — the mechanism the
// large-scale benchmarks use to validate reads without materializing data.
func TestFileSyntheticVerification(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var file File
		type w struct {
			off, n int64
			tag    uint64
		}
		var writes []w
		for k := 0; k < 30; k++ {
			wr := w{off: int64(rng.Intn(1000)), n: 1 + int64(rng.Intn(100)), tag: uint64(k + 1)}
			writes = append(writes, wr)
			// Phase convention: pattern position == logical offset.
			file.WriteAt(wr.off, Synthetic(wr.tag, wr.off, wr.n))
		}
		// Read everything back; every byte must match the *last* writer's
		// pattern at that absolute position.
		last := make(map[int64]uint64)
		for _, wr := range writes {
			for b := wr.off; b < wr.off+wr.n; b++ {
				last[b] = wr.tag
			}
		}
		got := file.ReadAt(0, file.Size())
		var pos int64
		for _, p := range got {
			for i := int64(0); i < p.Length; i++ {
				tag, written := last[pos]
				want := byte(0)
				if written {
					want = PatternByte(tag, pos)
				}
				if p.At(i) != want {
					return false
				}
				pos++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFileExtentsCoalesce(t *testing.T) {
	var f File
	for i := int64(0); i < 100; i++ {
		f.WriteAt(i*10, Synthetic(1, i*10, 10))
	}
	if got := f.Extents(); got != 1 {
		t.Fatalf("contiguous same-tag writes produced %d extents, want 1", got)
	}
}
