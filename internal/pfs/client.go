package pfs

import (
	"time"

	"plfs/internal/payload"
	"plfs/internal/sim"
)

// Client is one compute process's view of the file system.  All operations
// charge simulated time against the caller's process and the shared
// metadata/data resources.
type Client struct {
	fs   *FS
	node int
	p    *sim.Proc
}

// Client returns a client bound to the given compute node and process.
func (fs *FS) Client(node int, p *sim.Proc) *Client {
	if node < 0 || node >= len(fs.nodes) {
		panic("pfs: node out of range")
	}
	return &Client{fs: fs, node: node, p: p}
}

// Node returns the compute node this client runs on.
func (c *Client) Node() int { return c.node }

// FS returns the underlying file system.
func (c *Client) FS() *FS { return c.fs }

func (c *Client) jit(d time.Duration) time.Duration {
	return c.fs.Eng.Jitter(d, c.fs.Cfg.JitterFrac)
}

// mdsService charges one read-path metadata RPC on the volume: network
// round trip plus service through the wide read pool.
func (c *Client) mdsService(vol int, d time.Duration) {
	c.fs.MetaOps++
	c.p.Sleep(c.jit(c.fs.Cfg.StorageRTT))
	c.fs.vols[vol].mdsRead.Use(c.p, c.jit(d))
}

// nsMutate charges a namespace mutation in dir: the MDS service plus the
// per-directory critical section, whose cost grows with the number of
// queued mutators (a hot-directory lock convoy).
func (c *Client) nsMutate(dir *fnode, d time.Duration) {
	cfg := &c.fs.Cfg
	c.fs.MetaOps++
	c.p.Sleep(c.jit(cfg.StorageRTT))
	waiters := dir.dirMu.Waiters()
	if dir.dirMu.Locked() {
		waiters++
	}
	dir.dirMu.Lock(c.p)
	crit := cfg.DirCritical
	if waiters > 0 {
		w := waiters
		if cfg.DirWaiterCap > 0 && w > cfg.DirWaiterCap {
			w = cfg.DirWaiterCap
		}
		crit += time.Duration(w) * cfg.DirPerWaiter
	}
	c.p.Sleep(c.jit(crit))
	dir.dirMu.Unlock()
	c.fs.vols[dir.vol].mds.Use(c.p, c.jit(d))
}

// createUnder inserts a new child into parent via mk, paying the full
// namespace-mutation cost (directory critical section + mutation service)
// only when this caller actually performs the insert.  Racers that find
// the entry already present — before or after queueing on the directory
// lock — resolve with a cheap lookup, as a real metadata server resolves
// EEXIST under a briefly-held lock.  The insert happens inside the
// critical section, so a convoy of racers behind the winner drains
// instantly rather than each paying the mutation cost.
func (c *Client) createUnder(parent *fnode, name string, mk func() *fnode) (*fnode, error) {
	cfg := &c.fs.Cfg
	c.fs.MetaOps++
	if existing, ok := parent.children[name]; ok {
		// Resolved from the client's dentry knowledge + one lookup RPC.
		c.p.Sleep(c.jit(cfg.StorageRTT))
		c.fs.vols[parent.vol].mdsRead.Use(c.p, c.jit(cfg.LookupOp))
		return existing, ErrExist
	}
	c.p.Sleep(c.jit(cfg.StorageRTT))
	waiters := parent.dirMu.Waiters()
	if parent.dirMu.Locked() {
		waiters++
	}
	parent.dirMu.Lock(c.p)
	if existing, ok := parent.children[name]; ok {
		parent.dirMu.Unlock()
		c.fs.vols[parent.vol].mdsRead.Use(c.p, c.jit(cfg.LookupOp))
		return existing, ErrExist
	}
	crit := cfg.DirCritical
	if waiters > 0 {
		w := waiters
		if cfg.DirWaiterCap > 0 && w > cfg.DirWaiterCap {
			w = cfg.DirWaiterCap
		}
		crit += time.Duration(w) * cfg.DirPerWaiter
	}
	c.p.Sleep(c.jit(crit))
	node := mk()
	parent.dirMu.Unlock()
	c.fs.vols[parent.vol].mds.Use(c.p, c.jit(cfg.CreateOp))
	return node, nil
}

// Mkdir creates a directory.  The new directory inherits its parent's
// volume (directories cannot straddle metadata domains — the "rigid
// realms" the paper describes for PanFS).
func (c *Client) Mkdir(path string) error {
	parent, name, err := c.fs.lookupParent(path)
	if err != nil {
		return err
	}
	if !parent.dir {
		return ErrNotDir
	}
	_, err = c.createUnder(parent, name, func() *fnode { return c.fs.newDir(parent, name) })
	return err
}

// Create creates a new file and opens it for writing.
func (c *Client) Create(path string) (*Handle, error) {
	parent, name, err := c.fs.lookupParent(path)
	if err != nil {
		return nil, err
	}
	if !parent.dir {
		return nil, ErrNotDir
	}
	node, err := c.createUnder(parent, name, func() *fnode { return c.fs.newFile(parent, name) })
	if err != nil {
		if node != nil && node.dir {
			return nil, ErrIsDir
		}
		return nil, err
	}
	node.writeOpeners++
	return &Handle{c: c, f: node, writing: true}, nil
}

// OpenRead opens an existing file for reading.
func (c *Client) OpenRead(path string) (*Handle, error) {
	n, err := c.fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, ErrIsDir
	}
	c.mdsService(n.vol, c.fs.Cfg.LookupOp)
	return &Handle{c: c, f: n}, nil
}

// OpenWrite opens an existing file for writing (no truncation).
func (c *Client) OpenWrite(path string) (*Handle, error) {
	n, err := c.fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, ErrIsDir
	}
	c.mdsService(n.vol, c.fs.Cfg.LookupOp)
	n.writeOpeners++
	return &Handle{c: c, f: n, writing: true}, nil
}

// Stat returns metadata for path.
func (c *Client) Stat(path string) (FileInfo, error) {
	n, err := c.fs.lookup(path)
	if err != nil {
		return FileInfo{}, err
	}
	c.mdsService(n.vol, c.fs.Cfg.StatOp)
	return n.info(), nil
}

// ReadDir lists a directory in lexical order.
func (c *Client) ReadDir(path string) ([]FileInfo, error) {
	n, err := c.fs.lookup(path)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, ErrNotDir
	}
	c.mdsService(n.vol, c.fs.Cfg.ReadDirOp+time.Duration(len(n.children))*c.fs.Cfg.ReadDirEnt)
	out := make([]FileInfo, 0, len(n.children))
	for _, name := range n.sortedChildren() {
		out = append(out, n.children[name].info())
	}
	return out, nil
}

// Remove unlinks a file or empty directory.
func (c *Client) Remove(path string) error {
	n, err := c.fs.lookup(path)
	if err != nil {
		return err
	}
	if n.parent == nil {
		return ErrNotEmpty
	}
	if n.dir && len(n.children) > 0 {
		return ErrNotEmpty
	}
	c.nsMutate(n.parent, c.fs.Cfg.CreateOp)
	delete(n.parent.children, n.name)
	if !n.dir {
		for _, ns := range c.fs.nodes {
			ns.cache.drop(n.obj)
		}
	}
	return nil
}

// Rename moves a file or directory within the same volume.
func (c *Client) Rename(oldPath, newPath string) error {
	n, err := c.fs.lookup(oldPath)
	if err != nil {
		return err
	}
	parent, name, err := c.fs.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, ok := parent.children[name]; ok {
		return ErrExist
	}
	if parent.vol != n.vol {
		return ErrNotDir // cross-volume renames are not supported, like rigid realms
	}
	c.nsMutate(n.parent, c.fs.Cfg.CreateOp)
	c.nsMutate(parent, c.fs.Cfg.CreateOp)
	delete(n.parent.children, n.name)
	n.parent = parent
	n.name = name
	parent.children[name] = n
	return nil
}

// Handle is an open file.
type Handle struct {
	c       *Client
	f       *fnode
	writing bool
	closed  bool
}

// Size returns the file size as known to the client (no charged RPC; the
// client caches attributes from open).
func (h *Handle) Size() int64 { return h.f.data.Size() }

// Object returns the file's storage object id (diagnostics).
func (h *Handle) Object() uint64 { return h.f.obj }

// Path-free name of the file (diagnostics).
func (h *Handle) Name() string { return h.f.name }

// WriteAt writes p at the given offset, paying range-lock costs when the
// file has multiple concurrent write openers.
func (h *Handle) WriteAt(off int64, p payload.Payload) error {
	if h.closed {
		return ErrClosed
	}
	if !h.writing {
		return ErrReadOnly
	}
	n := p.Len()
	if n == 0 {
		return nil
	}
	cfg := &h.c.fs.Cfg
	if h.f.writeOpeners > 1 && cfg.LockUnit > 0 {
		lo := off / cfg.LockUnit
		hi := (off + n + cfg.LockUnit - 1) / cfg.LockUnit
		rpcs := h.f.locks.acquire(lo, hi, h.c.node)
		if rpcs > 0 {
			h.c.fs.LockOps += int64(rpcs)
			// Lock traffic serializes through the file's lock manager.
			h.f.lockMgr.Use(h.c.p, h.c.jit(time.Duration(rpcs)*cfg.LockRPC))
		}
	}
	seq := h.f.streamSeq(off, n, cfg.StreamSlots)
	h.transfer(off, n, n, seq, false)
	h.f.data.WriteAt(off, p)
	h.c.fs.nodes[h.c.node].cache.insert(h.f.obj, off, n)
	return nil
}

// Append writes p at the current end of file and returns the offset it
// landed at.  Appends to single-writer files (PLFS droppings) are the
// fast path: sequential, lock-free.
func (h *Handle) Append(p payload.Payload) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	off := h.f.data.Size()
	return off, h.WriteAt(off, p)
}

// ReadAt returns the byte range [off, off+n), serving cached bytes at
// memory speed and the rest through the storage network and disks.
func (h *Handle) ReadAt(off, n int64) (payload.List, error) {
	if h.closed {
		return nil, ErrClosed
	}
	if n <= 0 {
		return nil, nil
	}
	c := h.c
	cfg := &c.fs.Cfg
	cache := c.fs.nodes[c.node].cache
	hit := cache.hitBytes(h.f.obj, off, n)
	miss := n - hit
	c.fs.CacheHitB += hit
	c.fs.CacheMisB += miss
	// The access advances the object's readahead stream over its full
	// range whether or not parts were served from cache, so sequential
	// scans stay sequential across hit/miss boundaries.
	seq := h.f.streamSeq(off, n, cfg.StreamSlots)
	if hit > 0 && cfg.MemBW > 0 {
		c.p.Sleep(time.Duration(float64(hit) / cfg.MemBW * 1e9))
	}
	if miss > 0 {
		// Insert the range before the transfer completes: concurrent
		// readers of the same range on this node coalesce onto the
		// in-flight fill instead of issuing a thundering herd of disk
		// reads (they may observe completion slightly early — an
		// approximation of page-cache request coalescing).
		cache.insert(h.f.obj, off, n)
		h.transfer(off, n, miss, seq, true)
	}
	return h.f.data.ReadAt(off, n), nil
}

// transfer models moving n bytes at file offset off between the client
// and the storage system: one flow across the shared storage network and
// one flow per involved OST group, pipelined (the slowest stage governs).
// Non-sequential requests charge each involved group a positioning
// penalty, expressed as seek-equivalent bytes so that it composes with
// fair sharing.
// Reads served from the storage servers' cache skip the disk stage.
// off/n describe the logical access; disk is the portion that must come
// from (or go to) the disks; seq is the object-level stream verdict
// computed by the caller (sequentiality is a property of the shared
// object, not the handle: concurrent streams into one file compete for
// the object's readahead slots).
func (h *Handle) transfer(off, n, disk int64, seq, isRead bool) {
	c := h.c
	cfg := &c.fs.Cfg
	c.p.Sleep(c.jit(cfg.StorageRTT))

	if isRead {
		if svrHit := c.fs.svrCache.hitBytes(h.f.obj, off, n); disk > n-svrHit {
			disk = n - svrHit
		}
	}
	c.fs.svrCache.insert(h.f.obj, off, n)

	var wg sim.WaitGroup
	wg.Add(1)
	c.fs.snet.TransferAsync(n, wg.Done)
	if disk > 0 {
		shares := ostShares(h.f.obj, off, disk, cfg.StripeUnit, len(c.fs.groups))
		for g, bytes := range shares {
			if bytes == 0 {
				continue
			}
			if !seq && cfg.SeekTime > 0 {
				c.fs.SeekOps++
				bytes += int64(cfg.SeekTime.Seconds() * cfg.OSTGroupBW)
			}
			wg.Add(1)
			c.fs.groups[g].TransferAsync(bytes, wg.Done)
		}
	}
	wg.Wait(c.p)
}

// ostShares distributes a transfer of n bytes at offset off across the
// OST groups according to round-robin striping.  Each object's stripe 0
// starts at a different group (obj % groups), as real layouts randomize
// the starting OST so small files spread across the disk pool.
func ostShares(obj uint64, off, n int64, stripe int64, groups int) []int64 {
	shares := make([]int64, groups)
	if stripe <= 0 || groups == 1 {
		shares[int(obj)%groups] = n
		return shares
	}
	base := int(obj % uint64(groups))
	if n >= stripe*int64(groups) {
		// Large transfer: essentially even across all groups.
		each := n / int64(groups)
		rem := n - each*int64(groups)
		for i := range shares {
			shares[i] = each
		}
		shares[(base+int(off/stripe))%groups] += rem
		return shares
	}
	// Small transfer: walk the stripe units it touches.
	for n > 0 {
		g := (base + int(off/stripe)) % groups
		take := stripe - off%stripe
		if take > n {
			take = n
		}
		shares[g] += take
		off += take
		n -= take
	}
	return shares
}

// Close releases the handle.  Closing a written file charges a metadata
// update (size/attributes); read closes are free, as on real clients.
func (h *Handle) Close() error {
	if h.closed {
		return ErrClosed
	}
	h.closed = true
	if h.writing {
		h.f.writeOpeners--
		h.c.mdsService(h.f.vol, h.c.fs.Cfg.CloseOp)
	}
	return nil
}
