package pfs

// cache is a block-granular cache over (object, byte-range) extents with
// FIFO eviction.  It models both the per-node client cache (the page/
// DirectFlow cache that lets a process re-read recently written data at
// memory speed — the effect the paper credits for measured read bandwidth
// exceeding the storage network's peak at 1024 streams) and the shared
// storage-server cache.
//
// Presence is tracked per fixed-size block, so inserts and lookups are
// O(blocks touched) regardless of how fragmented the access pattern is —
// a strided checkpoint inserting half a million extents stays O(1) per
// operation.  A partially-written block counts as present (the usual
// page-cache rounding).
type cache struct {
	capacity int64
	block    int64
	used     int64
	present  map[blockKey]bool
	fifo     []blockKey
	head     int
	objBlks  map[uint64]int
}

type blockKey struct {
	obj uint64
	idx int64
}

func newCache(capacity, block int64) *cache {
	if block <= 0 {
		block = 64 << 10
	}
	return &cache{
		capacity: capacity,
		block:    block,
		present:  map[blockKey]bool{},
		objBlks:  map[uint64]int{},
	}
}

// insert records [off, off+n) of obj as cached, evicting the oldest
// blocks to stay under capacity.  A zero-capacity cache ignores inserts.
func (c *cache) insert(obj uint64, off, n int64) {
	if c.capacity <= 0 || n <= 0 {
		return
	}
	lo := off / c.block
	hi := (off + n - 1) / c.block
	// Oversized inserts keep only the tail that fits.
	if total := (hi - lo + 1) * c.block; total > c.capacity {
		lo = hi - c.capacity/c.block + 1
		if lo < 0 {
			lo = 0
		}
	}
	for idx := lo; idx <= hi; idx++ {
		k := blockKey{obj, idx}
		if c.present[k] {
			continue
		}
		c.present[k] = true
		c.objBlks[obj]++
		c.fifo = append(c.fifo, k)
		c.used += c.block
	}
	for c.used > c.capacity && c.head < len(c.fifo) {
		k := c.fifo[c.head]
		c.head++
		if c.present[k] {
			delete(c.present, k)
			c.objBlks[k.obj]--
			if c.objBlks[k.obj] == 0 {
				delete(c.objBlks, k.obj)
			}
			c.used -= c.block
		}
	}
	c.compact()
}

// compact reclaims the consumed fifo prefix once it dominates the slice.
func (c *cache) compact() {
	if c.head > 4096 && c.head*2 > len(c.fifo) {
		n := copy(c.fifo, c.fifo[c.head:])
		c.fifo = c.fifo[:n]
		c.head = 0
	}
}

// hitBytes returns how many bytes of [off, off+n) of obj are cached.
func (c *cache) hitBytes(obj uint64, off, n int64) int64 {
	if c.capacity <= 0 || n <= 0 || c.objBlks[obj] == 0 {
		return 0
	}
	var hit int64
	end := off + n
	for idx := off / c.block; idx*c.block < end; idx++ {
		if !c.present[blockKey{obj, idx}] {
			continue
		}
		blo, bhi := idx*c.block, (idx+1)*c.block
		if blo < off {
			blo = off
		}
		if bhi > end {
			bhi = end
		}
		hit += bhi - blo
	}
	return hit
}

// drop forgets every cached block of obj (e.g. after a remove).
func (c *cache) drop(obj uint64) {
	if c.objBlks[obj] == 0 {
		return
	}
	for k := range c.present {
		if k.obj == obj {
			delete(c.present, k)
			c.used -= c.block
		}
	}
	delete(c.objBlks, obj)
}
