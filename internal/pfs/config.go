// Package pfs implements a discrete-event simulated parallel file system.
//
// It models the mechanisms the paper identifies as the sources of N-1
// slowness and PLFS speedups on GPFS/Lustre/PanFS-class systems:
//
//   - a pool of metadata servers (volumes), each with parallel service
//     capacity but *per-directory serialization* of namespace mutations —
//     the single-directory create storm and N² index-open bottlenecks;
//   - striped object storage, modeled as fair-share OST groups with a
//     positioning (seek) penalty for non-sequential streams — why
//     decoupled, log-structured PLFS streams read fast and strided N-1
//     streams read slow;
//   - a byte-range write lock manager per shared file — why concurrent
//     N-1 writes serialize and PLFS's decoupled appends do not;
//   - a shared storage-network pipe (the cluster-to-storage bottleneck);
//   - a per-node client cache, which lets re-reads of recently written
//     data exceed the storage network's nominal peak, as the paper
//     observes at 1024 streams.
//
// Everything is calibrated by Config; the defaults approximate the paper's
// 64-node / 1024-core cluster with a 551 TB PanFS behind a 10 GigE storage
// network (about 1.25 GB/s of theoretical peak bandwidth).
package pfs

import "time"

// Config describes one simulated cluster + parallel file system.
type Config struct {
	// Cluster geometry.
	Nodes        int // compute nodes
	ProcsPerNode int // cores (ranks) per node

	// Per-node memory bandwidth used to serve client-cache hits.
	MemBW float64 // bytes/sec

	// Metadata service.  Namespace mutations funnel through a narrow
	// server pool (MDSServers) plus per-directory serialization; metadata
	// reads (lookups, opens, stats) are served by a much wider pool
	// (MDSReadServers), as real systems replicate and cache read-mostly
	// metadata across director blades.
	Volumes        int           // metadata domains ("realms"); directories are pinned to one
	MDSServers     int           // parallel mutation servers per volume
	MDSReadServers int           // parallel read-path servers per volume
	CreateOp       time.Duration // service time: create/mkdir/remove
	LookupOp       time.Duration // service time: open/lookup
	// Bulk-create RPC (Client.CreateBulk): one batch pays BulkCreateOp of
	// mutation service plus BulkCreateItem per entry, instead of CreateOp
	// per entry — the Li/Latham amortization of per-op serialization.
	BulkCreateOp   time.Duration // service time: bulk-create batch base
	BulkCreateItem time.Duration // additional bulk-create time per entry
	StatOp         time.Duration // service time: stat
	CloseOp        time.Duration // service time: close of a written file
	ReadDirOp      time.Duration // service time: readdir base
	ReadDirEnt     time.Duration // additional readdir time per entry

	// Per-directory serialization of namespace mutations.  Each mutation
	// holds the directory for DirCritical + DirPerWaiter×waiters (capped),
	// modeling lock convoys on hot directories.
	DirCritical  time.Duration
	DirPerWaiter time.Duration
	DirWaiterCap int

	// Data path.
	OSTGroups  int           // fair-share disk groups
	OSTGroupBW float64       // bytes/sec per group
	SeekTime   time.Duration // positioning penalty per non-sequential request per group
	// StreamSlots is the number of concurrent access streams per object
	// whose sequentiality the storage system can track (readahead
	// contexts).  More concurrent streams than slots thrash each other.
	StreamSlots int
	StripeUnit  int64         // bytes per stripe unit
	StorageBW   float64       // shared storage network, bytes/sec (the "theoretical peak")
	StorageRTT  time.Duration // request round-trip latency

	// Byte-range write locking on shared files (files with >1 concurrent
	// write opener).  Lock operations serialize through a per-file manager.
	LockUnit int64
	LockRPC  time.Duration

	// Client cache per node; zero disables caching.
	ClientCacheBytes int64

	// Server-side cache across the storage servers (OST RAM under shared
	// production load): read hits skip the disks (but still cross the
	// storage network).  Small relative to checkpoint datasets, large
	// relative to index files — which is why the Original design's N²
	// re-reads of the same index droppings stop paying disk seeks after
	// the first pass while bulk data does not.  Zero disables it.
	ServerCacheBytes int64

	// JitterFrac perturbs every service time by ±frac (uniform), giving
	// run-to-run variance under different seeds.
	JitterFrac float64

	// DegradedGroup, when >= 0, injects a failure: that OST group runs at
	// DegradedFactor of its bandwidth (a rebuilding RAID set or a sick
	// disk).  Used by the degradation ablation.
	DegradedGroup  int
	DegradedFactor float64
}

// SmallCluster returns a configuration approximating the paper's
// production cluster: 64 nodes × 16 cores, InfiniBand interconnect, and a
// Panasas system behind a 10 GigE storage network with a 1.25 GB/s peak.
func SmallCluster() Config {
	return Config{
		Nodes:        64,
		ProcsPerNode: 16,
		MemBW:        3e9,

		Volumes:        1,
		MDSServers:     4,
		MDSReadServers: 64,
		CreateOp:       1200 * time.Microsecond,
		LookupOp:       150 * time.Microsecond,
		BulkCreateOp:   1500 * time.Microsecond,
		BulkCreateItem: 2 * time.Microsecond,
		StatOp:         100 * time.Microsecond,
		CloseOp:        150 * time.Microsecond,
		ReadDirOp:      200 * time.Microsecond,
		ReadDirEnt:     2 * time.Microsecond,

		DirCritical:  600 * time.Microsecond,
		DirPerWaiter: 2 * time.Microsecond,
		DirWaiterCap: 4096,

		OSTGroups:   8,
		OSTGroupBW:  300e6,
		SeekTime:    4 * time.Millisecond,
		StreamSlots: 4,
		StripeUnit:  64 << 10,
		StorageBW:   1.25e9,
		StorageRTT:  200 * time.Microsecond,

		LockUnit: 64 << 10,
		LockRPC:  1 * time.Millisecond,

		ClientCacheBytes: 4 << 30, // nodes have 32 GB; the page cache holds recent checkpoints
		ServerCacheBytes: 512 << 20,
		JitterFrac:       0.05,

		DegradedGroup: -1,
	}
}

// Cielo returns a configuration approximating Cielo, the paper's Cray XE6:
// 8,894 nodes × 16 cores (142k cores), Gemini interconnect, and a 10 PB
// Panasas system with a much larger storage network.
func Cielo() Config {
	c := SmallCluster()
	c.Nodes = 8894
	c.ProcsPerNode = 16
	c.Volumes = 1
	c.MDSServers = 16
	c.MDSReadServers = 128
	c.DirCritical = 1500 * time.Microsecond
	c.DirPerWaiter = 150 * time.Nanosecond
	c.DirWaiterCap = 1 << 20
	c.OSTGroups = 16
	c.OSTGroupBW = 6e9
	c.SeekTime = 4 * time.Millisecond
	c.StorageBW = 80e9
	c.ClientCacheBytes = 4 << 30
	c.ServerCacheBytes = 4 << 30
	return c
}
