package pfs

import (
	"fmt"
	"testing"

	"plfs/internal/sim"
)

func TestCreateBulkSemantics(t *testing.T) {
	eng, fs := testFS(1, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		if errs := c.CreateBulk(nil); len(errs) != 0 {
			t.Errorf("empty batch: %v", errs)
		}
		if _, err := c.Create("/vol0/taken"); err != nil {
			t.Fatal(err)
		}
		errs := c.CreateBulk([]BulkOp{
			{Path: "/vol0/d", Dir: true}, // fresh dir
			{Path: "/vol0/d/f"},          // file under the dir made above
			{Path: "/vol0/taken"},        // name already exists
			{Path: "/vol0/missing/f"},    // parent does not exist
			{Path: "/vol0/d/g"},          // second file, same parent
			{Path: "/vol0/taken/child"},  // parent is a file
		})
		want := []error{nil, nil, ErrExist, ErrNotExist, nil, ErrNotDir}
		for i, e := range errs {
			if e != want[i] {
				t.Errorf("entry %d: got %v, want %v", i, e, want[i])
			}
		}
		for _, path := range []string{"/vol0/d/f", "/vol0/d/g"} {
			if fi, err := c.Stat(path); err != nil || fi.Dir {
				t.Errorf("stat %s: %+v %v", path, fi, err)
			}
		}
		// Created files are not opened; OpenWrite attaches to them.
		h, err := c.OpenWrite("/vol0/d/f")
		if err != nil {
			t.Fatalf("open bulk-created file: %v", err)
		}
		h.Close()
	})
	if fs.BulkBatches != 1 || fs.BulkOps != 6 {
		t.Fatalf("bulk counters = %d batches / %d ops", fs.BulkBatches, fs.BulkOps)
	}
}

// TestCreateBulkAmortizesSerialization is the Li/Latham claim in miniature:
// shipping N creates as one RPC costs far less than N create RPCs, because
// the round trip, the directory critical section, and the per-op mutation
// service are paid once per batch rather than once per entry.
func TestCreateBulkAmortizesSerialization(t *testing.T) {
	const n = 1024
	run := func(bulk bool) sim.Time {
		eng, fs := testFS(3, nil)
		return runOne(t, eng, func(p *sim.Proc) {
			c := fs.Client(0, p)
			if bulk {
				ops := make([]BulkOp, n)
				for i := range ops {
					ops[i] = BulkOp{Path: fmt.Sprintf("/vol0/f%d", i)}
				}
				for i, err := range c.CreateBulk(ops) {
					if err != nil {
						t.Errorf("bulk entry %d: %v", i, err)
					}
				}
			} else {
				for i := 0; i < n; i++ {
					h, err := c.Create(fmt.Sprintf("/vol0/f%d", i))
					if err != nil {
						t.Error(err)
					} else {
						h.Close()
					}
				}
			}
		})
	}
	serial := run(false)
	bulk := run(true)
	if ratio := float64(serial) / float64(bulk); ratio < 5 {
		t.Fatalf("serial/bulk create ratio = %.2f, want amortization (>5x)", ratio)
	}
}

// TestCreateBulkMultiVolume verifies the per-volume service charge: a batch
// spanning volumes posts one amortized mutation charge on each.
func TestCreateBulkMultiVolume(t *testing.T) {
	eng, fs := testFS(1, func(c *Config) { c.Volumes = 4 })
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		var ops []BulkOp
		for v := 0; v < 4; v++ {
			for i := 0; i < 8; i++ {
				ops = append(ops, BulkOp{Path: fmt.Sprintf("/vol%d/f%d", v, i)})
			}
		}
		for i, err := range c.CreateBulk(ops) {
			if err != nil {
				t.Errorf("entry %d: %v", i, err)
			}
		}
	})
	for v := 0; v < 4; v++ {
		if fs.vols[v].mds.Busy == 0 {
			t.Errorf("volume %d mutation pool saw no bulk service", v)
		}
	}
}

func BenchmarkBulkCreate(b *testing.B) {
	const n = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i + 1))
		cfg := SmallCluster()
		cfg.JitterFrac = 0
		fs := New(eng, cfg)
		eng.Spawn("bench", func(p *sim.Proc) {
			c := fs.Client(0, p)
			ops := make([]BulkOp, n)
			for k := range ops {
				ops[k] = BulkOp{Path: fmt.Sprintf("/vol0/f%d", k)}
			}
			for k, err := range c.CreateBulk(ops) {
				if err != nil {
					b.Errorf("entry %d: %v", k, err)
				}
			}
		})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
