package pfs

import (
	"fmt"
	"testing"
	"time"

	"plfs/internal/payload"
	"plfs/internal/sim"
)

// testFS builds an engine + FS with mild, deterministic parameters.
func testFS(seed int64, mutate func(*Config)) (*sim.Engine, *FS) {
	eng := sim.NewEngine(seed)
	cfg := SmallCluster()
	cfg.JitterFrac = 0
	if mutate != nil {
		mutate(&cfg)
	}
	return eng, New(eng, cfg)
}

// runOne runs fn as a single simulated process and returns its duration.
func runOne(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) sim.Time {
	t.Helper()
	var took sim.Time
	eng.Spawn("test", func(p *sim.Proc) {
		start := p.Now()
		fn(p)
		took = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return took
}

func TestNamespaceSemantics(t *testing.T) {
	eng, fs := testFS(1, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		if err := c.Mkdir("/vol0/a"); err != nil {
			t.Errorf("mkdir: %v", err)
		}
		if err := c.Mkdir("/vol0/a"); err != ErrExist {
			t.Errorf("duplicate mkdir: %v", err)
		}
		if err := c.Mkdir("/vol0/missing/b"); err != ErrNotExist {
			t.Errorf("mkdir under missing: %v", err)
		}
		h, err := c.Create("/vol0/a/f")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if _, err := c.Create("/vol0/a/f"); err != ErrExist {
			t.Errorf("duplicate create: %v", err)
		}
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := h.Close(); err != ErrClosed {
			t.Errorf("double close: %v", err)
		}
		if _, err := c.OpenRead("/vol0/a"); err != ErrIsDir {
			t.Errorf("open dir: %v", err)
		}
		if _, err := c.OpenRead("/vol0/a/nope"); err != ErrNotExist {
			t.Errorf("open missing: %v", err)
		}
		fi, err := c.Stat("/vol0/a/f")
		if err != nil || fi.Dir {
			t.Errorf("stat: %+v %v", fi, err)
		}
		ents, err := c.ReadDir("/vol0/a")
		if err != nil || len(ents) != 1 || ents[0].Name != "f" {
			t.Errorf("readdir: %+v %v", ents, err)
		}
		if err := c.Remove("/vol0/a"); err != ErrNotEmpty {
			t.Errorf("remove non-empty: %v", err)
		}
		if err := c.Remove("/vol0/a/f"); err != nil {
			t.Errorf("remove: %v", err)
		}
		if err := c.Remove("/vol0/a"); err != nil {
			t.Errorf("remove dir: %v", err)
		}
	})
}

func TestRename(t *testing.T) {
	eng, fs := testFS(1, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/x")
		h.WriteAt(0, payload.FromBytes([]byte("data")))
		h.Close()
		if err := c.Rename("/vol0/x", "/vol0/y"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := c.Stat("/vol0/x"); err != ErrNotExist {
			t.Errorf("old name lives: %v", err)
		}
		r, err := c.OpenRead("/vol0/y")
		if err != nil {
			t.Fatalf("open renamed: %v", err)
		}
		got, _ := r.ReadAt(0, 4)
		if string(got.Materialize()) != "data" {
			t.Error("renamed contents wrong")
		}
	})
}

func TestDataRoundtrip(t *testing.T) {
	eng, fs := testFS(1, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/f")
		h.WriteAt(0, payload.Synthetic(7, 0, 1<<20))
		h.WriteAt(1<<20, payload.FromBytes([]byte("tail")))
		got, err := h.ReadAt(0, 1<<20+4)
		if err != nil {
			t.Fatal(err)
		}
		want := payload.List{payload.Synthetic(7, 0, 1<<20), payload.FromBytes([]byte("tail"))}
		if !payload.ContentEqual(got, want) {
			t.Error("roundtrip mismatch")
		}
		if h.Size() != 1<<20+4 {
			t.Errorf("size = %d", h.Size())
		}
	})
}

func TestAppendReturnsOffsets(t *testing.T) {
	eng, fs := testFS(1, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/log")
		o1, _ := h.Append(payload.Synthetic(1, 0, 100))
		o2, _ := h.Append(payload.Synthetic(1, 100, 50))
		if o1 != 0 || o2 != 100 {
			t.Errorf("append offsets = %d, %d", o1, o2)
		}
	})
}

func TestReadOnlyHandleRejectsWrites(t *testing.T) {
	eng, fs := testFS(1, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/f")
		h.WriteAt(0, payload.Zeros(10))
		h.Close()
		r, _ := c.OpenRead("/vol0/f")
		if err := r.WriteAt(0, payload.Zeros(1)); err != ErrReadOnly {
			t.Errorf("write on read handle: %v", err)
		}
	})
}

// TestN1SharedWriteSlowerThanNN verifies the paper's core premise: the
// same aggregate volume written by concurrent processes is far slower
// into one shared file (range-lock ping-pong) than into unique files.
func TestN1SharedWriteSlowerThanNN(t *testing.T) {
	const procs = 32
	const writes = 20
	const wsize = 47 << 10 // unaligned with the 64K lock unit

	run := func(shared bool) sim.Time {
		eng, fs := testFS(7, nil)
		var ready sim.Gate
		created := false
		for i := 0; i < procs; i++ {
			i := i
			eng.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				c := fs.Client(i%fs.Cfg.Nodes, p)
				var h *Handle
				var err error
				if shared {
					// Rank 0 creates the shared file; the rest open it.
					if i == 0 {
						h, err = c.Create("/vol0/shared")
						created = true
						ready.OpenAll()
					} else {
						if !created {
							ready.Wait(p)
						}
						h, err = c.OpenWrite("/vol0/shared")
					}
				} else {
					h, err = c.Create(fmt.Sprintf("/vol0/f%d", i))
				}
				if err != nil {
					t.Error(err)
					return
				}
				for k := 0; k < writes; k++ {
					var off int64
					if shared {
						// N-1 strided: interleaved offsets.
						off = int64(k*procs+i) * wsize
					} else {
						off = int64(k) * wsize
					}
					if err := h.WriteAt(off, payload.Synthetic(uint64(i+1), off, wsize)); err != nil {
						t.Error(err)
					}
				}
				h.Close()
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}

	tShared := run(true)
	tUnique := run(false)
	if ratio := float64(tShared) / float64(tUnique); ratio < 3 {
		t.Fatalf("shared/unique write time ratio = %.2f, want the N-1 penalty (>3x)", ratio)
	}
}

// TestSequentialReadFasterThanStrided verifies the prefetch model: reading
// a file sequentially avoids the positioning penalty that strided reads
// pay per request.
func TestSequentialReadFasterThanStrided(t *testing.T) {
	const n = 64
	const rsize = 50 << 10
	prep := func(fs *FS, p *sim.Proc) *Handle {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/f")
		h.WriteAt(0, payload.Synthetic(1, 0, n*rsize))
		h.Close()
		r, _ := c.OpenRead("/vol0/f")
		return r
	}
	runPattern := func(strided bool) sim.Time {
		eng, fs := testFS(3, func(c *Config) { c.ClientCacheBytes = 0; c.ServerCacheBytes = 0 })
		return runOne(t, eng, func(p *sim.Proc) {
			r := prep(fs, p)
			for k := 0; k < n; k++ {
				idx := k
				if strided {
					idx = (k * 7) % n // jump around
				}
				if _, err := r.ReadAt(int64(idx)*rsize, rsize); err != nil {
					t.Error(err)
				}
			}
		})
	}
	seq := runPattern(false)
	str := runPattern(true)
	if ratio := float64(str) / float64(seq); ratio < 2 {
		t.Fatalf("strided/sequential read ratio = %.2f, want seek penalty (>2x)", ratio)
	}
}

// TestCacheMakesRereadFast verifies that re-reading recently written data
// is served from the node cache at memory speed.
func TestCacheMakesRereadFast(t *testing.T) {
	const size = 64 << 20
	eng, fs := testFS(3, nil)
	var writeT, rereadT sim.Time
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/f")
		start := p.Now()
		h.WriteAt(0, payload.Synthetic(1, 0, size))
		writeT = p.Now() - start
		start = p.Now()
		h.ReadAt(0, size)
		rereadT = p.Now() - start
	})
	if rereadT*2 > writeT {
		t.Fatalf("cached re-read %v not much faster than write %v", rereadT, writeT)
	}
	if fs.CacheHitB != size {
		t.Fatalf("cache hit bytes = %d, want %d", fs.CacheHitB, size)
	}
}

// TestHotDirectoryContention verifies that creating many files in one
// directory is slower than creating them spread over many directories —
// the single-directory metadata bottleneck of N-N workloads.
func TestHotDirectoryContention(t *testing.T) {
	const procs = 64
	run := func(spread bool) sim.Time {
		eng, fs := testFS(5, nil)
		var storm sim.Time // duration of the create storm only, not setup
		eng.Spawn("setup", func(p *sim.Proc) {
			c := fs.Client(0, p)
			if spread {
				for i := 0; i < procs; i++ {
					if err := c.Mkdir(fmt.Sprintf("/vol0/d%d", i)); err != nil {
						t.Error(err)
					}
				}
			}
			start := p.Now()
			var wg sim.WaitGroup
			wg.Add(procs)
			for i := 0; i < procs; i++ {
				i := i
				eng.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
					cc := fs.Client(i%fs.Cfg.Nodes, p)
					path := fmt.Sprintf("/vol0/f%d", i)
					if spread {
						path = fmt.Sprintf("/vol0/d%d/f", i)
					}
					h, err := cc.Create(path)
					if err != nil {
						t.Error(err)
					} else {
						h.Close()
					}
					wg.Done()
				})
			}
			wg.Wait(p)
			storm = p.Now() - start
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return storm
	}
	hot := run(false)
	cold := run(true)
	if ratio := float64(hot) / float64(cold); ratio < 1.5 {
		t.Fatalf("hot/spread create ratio = %.2f, want directory serialization (>1.5x)", ratio)
	}
}

// TestVolumesParallelizeMetadata verifies that spreading create load over
// multiple volumes scales metadata throughput — the mechanism behind
// PLFS federated metadata.
func TestVolumesParallelizeMetadata(t *testing.T) {
	const procs = 64
	run := func(vols int) sim.Time {
		eng, fs := testFS(5, func(c *Config) { c.Volumes = vols })
		eng.Spawn("root", func(p *sim.Proc) {
			var wg sim.WaitGroup
			wg.Add(procs)
			for i := 0; i < procs; i++ {
				i := i
				eng.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
					cc := fs.Client(i%fs.Cfg.Nodes, p)
					h, err := cc.Create(fmt.Sprintf("%s/f%d", fs.VolumeRoot(i%vols), i))
					if err != nil {
						t.Error(err)
					} else {
						h.Close()
					}
					wg.Done()
				})
			}
			wg.Wait(p)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	one := run(1)
	eight := run(8)
	if ratio := float64(one) / float64(eight); ratio < 3 {
		t.Fatalf("1-vol/8-vol create ratio = %.2f, want metadata scaling (>3x)", ratio)
	}
}

// TestStorageNetworkCapsBandwidth verifies aggregate write bandwidth is
// bounded by the storage network peak.
func TestStorageNetworkCapsBandwidth(t *testing.T) {
	const procs = 16
	const size = 32 << 20
	eng, fs := testFS(5, nil)
	eng.Spawn("root", func(p *sim.Proc) {
		var wg sim.WaitGroup
		wg.Add(procs)
		for i := 0; i < procs; i++ {
			i := i
			eng.Spawn(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
				c := fs.Client(i%fs.Cfg.Nodes, p)
				h, err := c.Create(fmt.Sprintf("/vol0/f%d", i))
				if err != nil {
					t.Error(err)
				}
				h.WriteAt(0, payload.Synthetic(uint64(i+1), 0, size))
				h.Close()
				wg.Done()
			})
		}
		wg.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(procs*size) / eng.Now().Seconds()
	if bw > fs.StoragePeak()*1.05 {
		t.Fatalf("aggregate bw %.0f exceeds peak %.0f", bw, fs.StoragePeak())
	}
	if bw < fs.StoragePeak()*0.5 {
		t.Fatalf("aggregate bw %.0f far below peak %.0f (model too slow)", bw, fs.StoragePeak())
	}
}

func TestJitterProducesVariance(t *testing.T) {
	run := func(seed int64) sim.Time {
		eng := sim.NewEngine(seed)
		cfg := SmallCluster() // default jitter
		fs := New(eng, cfg)
		eng.Spawn("p", func(p *sim.Proc) {
			c := fs.Client(0, p)
			for i := 0; i < 10; i++ {
				h, _ := c.Create(fmt.Sprintf("/vol0/f%d", i))
				h.WriteAt(0, payload.Zeros(1<<20))
				h.Close()
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds gave identical times despite jitter")
	}
	if run(3) != run(3) {
		t.Fatal("same seed gave different times")
	}
}

func TestMkdirVolumeInheritance(t *testing.T) {
	eng, fs := testFS(1, func(c *Config) { c.Volumes = 4 })
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		if err := c.Mkdir("/vol2/d"); err != nil {
			t.Fatal(err)
		}
		n, err := fs.lookup("/vol2/d")
		if err != nil || n.vol != 2 {
			t.Fatalf("vol = %d, err = %v", n.vol, err)
		}
	})
}

func TestTransferTouchesOSTsAndNet(t *testing.T) {
	eng, fs := testFS(1, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/f")
		h.WriteAt(0, payload.Zeros(8<<20))
	})
	if fs.snet.Moved != 8<<20 {
		t.Fatalf("storage net moved %d", fs.snet.Moved)
	}
	var ost int64
	for _, g := range fs.groups {
		ost += g.Moved
	}
	if ost < 8<<20 {
		t.Fatalf("ost groups moved %d", ost)
	}
}

func TestReadDirCostScalesWithEntries(t *testing.T) {
	mk := func(entries int) sim.Time {
		eng, fs := testFS(1, func(c *Config) { c.ReadDirEnt = 100 * time.Microsecond })
		return runOne(t, eng, func(p *sim.Proc) {
			c := fs.Client(0, p)
			for i := 0; i < entries; i++ {
				h, _ := c.Create(fmt.Sprintf("/vol0/f%d", i))
				h.Close()
			}
			start := p.Now()
			c.ReadDir("/vol0")
			if d := p.Now() - start; d <= 0 {
				t.Error("free readdir")
			}
		})
	}
	if mk(100) <= mk(2) {
		t.Fatal("readdir cost did not scale with entries")
	}
}

func TestReportSummarizesActivity(t *testing.T) {
	eng, fs := testFS(2, nil)
	runOne(t, eng, func(p *sim.Proc) {
		c := fs.Client(0, p)
		h, _ := c.Create("/vol0/r")
		h.WriteAt(0, payload.Synthetic(1, 0, 1<<20))
		h.ReadAt(0, 1<<20)
		h.Close()
	})
	rep := fs.Report()
	if rep.MetaOps == 0 || rep.NetBytes < 1<<20 || rep.DiskBytes == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CacheHitPct != 100 {
		t.Fatalf("reread of own write should hit: %+v", rep)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}
