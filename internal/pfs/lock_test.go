package pfs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLockTableFirstAcquire(t *testing.T) {
	var lt lockTable
	if got := lt.acquire(0, 10, 1); got != 1 {
		t.Fatalf("fresh acquire rpcs = %d, want 1", got)
	}
	// Re-acquire of an owned range is free.
	if got := lt.acquire(0, 10, 1); got != 0 {
		t.Fatalf("re-acquire rpcs = %d, want 0", got)
	}
}

func TestLockTableSteal(t *testing.T) {
	var lt lockTable
	lt.acquire(0, 10, 1)
	// Node 2 steals the middle: revoke+grant = 2 RPCs.
	if got := lt.acquire(4, 6, 2); got != 2 {
		t.Fatalf("steal rpcs = %d, want 2", got)
	}
	if lt.ownerAt(5) != 2 || lt.ownerAt(3) != 1 || lt.ownerAt(7) != 1 {
		t.Fatalf("ownership wrong: %+v", lt.segs)
	}
}

func TestLockTableMixedRuns(t *testing.T) {
	var lt lockTable
	lt.acquire(0, 4, 1)  // [0,4) owned by 1
	lt.acquire(8, 12, 2) // [8,12) owned by 2
	// Node 3 takes [2, 10): runs are [2,4) foreign, [4,8) unowned,
	// [8,10) foreign -> 2 + 1 + 2 = 5 RPCs.
	if got := lt.acquire(2, 10, 3); got != 5 {
		t.Fatalf("mixed rpcs = %d, want 5", got)
	}
}

func TestLockTablePingPong(t *testing.T) {
	// Two nodes alternately writing the same unit: every write after the
	// first costs a steal — the paper's N-1 serialization mechanism.
	var lt lockTable
	total := 0
	for i := 0; i < 10; i++ {
		total += lt.acquire(0, 1, i%2)
	}
	if total != 1+9*2 {
		t.Fatalf("ping-pong rpcs = %d, want 19", total)
	}
}

// Property: the lock table matches a brute-force per-unit ownership map,
// and RPC counts equal the number of maximal non-owned runs (+1 for each
// stolen run).
func TestLockTableMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var lt lockTable
		oracle := make([]int, 64)
		for i := range oracle {
			oracle[i] = -1
		}
		for k := 0; k < 50; k++ {
			lo := int64(rng.Intn(60))
			hi := lo + 1 + int64(rng.Intn(int(64-lo)))
			node := rng.Intn(4)
			// Oracle RPC count.
			want := 0
			run := 0 // 0 none, 1 unowned, 2 foreign
			for u := lo; u < hi; u++ {
				switch {
				case oracle[u] == node:
					run = 0
				case oracle[u] == -1:
					if run != 1 {
						want++
						run = 1
					}
				default:
					if run != 2 {
						want += 2
						run = 2
					}
				}
				oracle[u] = node
			}
			if got := lt.acquire(lo, hi, node); got != want {
				return false
			}
			for u := range oracle {
				if lt.ownerAt(int64(u)) != oracle[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRunBoundaries(t *testing.T) {
	// A foreign run followed by an unowned run must count separately.
	var lt lockTable
	lt.acquire(0, 2, 1)
	if got := lt.acquire(0, 4, 2); got != 3 { // steal [0,2) + grant [2,4)
		t.Fatalf("rpcs = %d, want 3", got)
	}
}
