package pfs

import "time"

// BulkOp is one entry in a bulk-create batch: a file or directory to be
// created at Path.  Entries are applied in order, so a directory created
// early in a batch can parent files created later in the same batch.
type BulkOp struct {
	Path string
	Dir  bool
}

// CreateBulk ships a batch of namespace creates to the metadata service
// as a single RPC and returns one error slot per entry (nil on success,
// ErrExist/ErrNotExist/ErrNotDir otherwise; existing entries are left
// untouched).  Created files are not opened — pair with OpenWrite, which
// rides the wide read pool.
//
// Cost model (the Li/Latham "Parallel Data Object Creation" shape): one
// storage round trip for the whole batch, one per-directory critical
// section per run of entries sharing a parent — callers should group
// entries by parent to coalesce the convoy — and, per volume touched,
// BulkCreateOp + items×BulkCreateItem of mutation service instead of
// CreateOp per item.  The batch counts as one metadata op.
func (c *Client) CreateBulk(ops []BulkOp) []error {
	errs := make([]error, len(ops))
	if len(ops) == 0 {
		return errs
	}
	cfg := &c.fs.Cfg
	c.fs.MetaOps++
	c.fs.BulkBatches++
	c.fs.BulkOps += int64(len(ops))
	c.p.Sleep(c.jit(cfg.StorageRTT))

	// Per-volume item tallies for the amortized service charge.
	volItems := map[int]int{}
	var locked *fnode
	unlock := func() {
		if locked != nil {
			locked.dirMu.Unlock()
			locked = nil
		}
	}
	for i, op := range ops {
		parent, name, err := c.fs.lookupParent(op.Path)
		if err != nil {
			errs[i] = err
			continue
		}
		if !parent.dir {
			errs[i] = ErrNotDir
			continue
		}
		volItems[parent.vol]++
		if parent != locked {
			unlock()
			waiters := parent.dirMu.Waiters()
			if parent.dirMu.Locked() {
				waiters++
			}
			parent.dirMu.Lock(c.p)
			locked = parent
			crit := cfg.DirCritical
			if waiters > 0 {
				w := waiters
				if cfg.DirWaiterCap > 0 && w > cfg.DirWaiterCap {
					w = cfg.DirWaiterCap
				}
				crit += time.Duration(w) * cfg.DirPerWaiter
			}
			c.p.Sleep(c.jit(crit))
		}
		if _, ok := parent.children[name]; ok {
			errs[i] = ErrExist
			continue
		}
		if op.Dir {
			c.fs.newDir(parent, name)
		} else {
			c.fs.newFile(parent, name)
		}
	}
	unlock()
	for vol, n := range sortedVolItems(volItems) {
		if n == 0 {
			continue
		}
		c.fs.vols[vol].mds.Use(c.p, c.jit(cfg.BulkCreateOp+time.Duration(n)*cfg.BulkCreateItem))
	}
	return errs
}

// sortedVolItems returns the tally as a dense slice indexed by volume so
// the service charges replay in a deterministic order.
func sortedVolItems(m map[int]int) []int {
	maxVol := -1
	for v := range m {
		if v > maxVol {
			maxVol = v
		}
	}
	out := make([]int, maxVol+1)
	for v, n := range m {
		out[v] = n
	}
	return out
}
