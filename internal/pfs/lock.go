package pfs

import "sort"

// lockTable tracks byte-range write-token ownership on a shared file.  It
// stores a sorted list of disjoint owned ranges (owner = node id).  The
// interesting quantity for cost modeling is how many *ownership changes* a
// write causes: each contiguous run of units that must be (re)acquired is
// one lock RPC, and stealing a token held by another node costs a revoke.
//
// Once the table fragments past fragmentedCap segments, the file has
// reached the fully-interleaved steady state: essentially every acquire
// from a strided writer steals from a neighbour.  From then on acquires
// are charged the steal cost (2 RPCs) without tracking exact ownership,
// keeping the model O(1) at any scale.
type lockTable struct {
	segs      []lockSeg
	saturated bool
}

// fragmentedCap bounds exact ownership tracking.
const fragmentedCap = 1 << 14

type lockSeg struct {
	start, end int64 // unit numbers, half-open
	owner      int
}

// acquire makes node the owner of units [lo, hi) and returns the number of
// lock RPCs required: one per maximal run of units not already owned by
// node, plus one extra per run stolen from a different owner (revoke +
// grant).
func (t *lockTable) acquire(lo, hi int64, node int) (rpcs int) {
	if hi <= lo {
		return 0
	}
	if t.saturated {
		return 2
	}
	if len(t.segs) >= fragmentedCap {
		t.saturated = true
		t.segs = nil
		return 2
	}
	// Count runs not owned by node.
	cur := lo
	i := sort.Search(len(t.segs), func(i int) bool { return t.segs[i].end > lo })
	inForeign := false
	inUnowned := false
	for cur < hi {
		if i < len(t.segs) && t.segs[i].start <= cur {
			s := t.segs[i]
			end := min64(s.end, hi)
			if s.owner == node {
				inForeign, inUnowned = false, false
			} else {
				if !inForeign {
					rpcs += 2 // revoke + grant
					inForeign, inUnowned = true, false
				}
			}
			cur = end
			if s.end <= hi {
				i++
			}
		} else {
			// Unowned gap up to the next segment or hi.
			end := hi
			if i < len(t.segs) && t.segs[i].start < hi {
				end = t.segs[i].start
			}
			if !inUnowned {
				rpcs++ // simple grant
				inUnowned, inForeign = true, false
			}
			cur = end
		}
	}
	t.setOwner(lo, hi, node)
	return rpcs
}

// setOwner rewrites the table so [lo, hi) is owned by node.
func (t *lockTable) setOwner(lo, hi int64, node int) {
	out := t.segs[:0:0]
	inserted := false
	insert := func() {
		if inserted {
			return
		}
		inserted = true
		if n := len(out); n > 0 && out[n-1].owner == node && out[n-1].end == lo {
			out[n-1].end = hi
		} else {
			out = append(out, lockSeg{lo, hi, node})
		}
	}
	for _, s := range t.segs {
		if s.end <= lo {
			out = append(out, s)
			continue
		}
		if s.start >= hi {
			insert()
			if n := len(out); n > 0 && out[n-1].owner == s.owner && out[n-1].end == s.start {
				out[n-1].end = s.end
			} else {
				out = append(out, s)
			}
			continue
		}
		// Overlap: keep the non-overlapped fringes.
		if s.start < lo {
			out = append(out, lockSeg{s.start, lo, s.owner})
		}
		insert()
		if s.end > hi {
			if n := len(out); n > 0 && out[n-1].owner == s.owner && out[n-1].end == hi {
				out[n-1].end = s.end
			} else {
				out = append(out, lockSeg{hi, s.end, s.owner})
			}
		}
	}
	insert()
	t.segs = out
}

// ownerAt returns the owner of the unit, or -1 if unowned.
func (t *lockTable) ownerAt(unit int64) int {
	for _, s := range t.segs {
		if unit >= s.start && unit < s.end {
			return s.owner
		}
	}
	return -1
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
