package pfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"sort"
	"strings"
	"time"

	"plfs/internal/obs"
	"plfs/internal/payload"
	"plfs/internal/sim"
)

// Errors returned by filesystem operations.  ErrExist and ErrNotExist wrap
// the io/fs sentinels so layers above can test them without knowing which
// backend produced them.
var (
	ErrExist    = fmt.Errorf("pfs: %w", iofs.ErrExist)
	ErrNotExist = fmt.Errorf("pfs: %w", iofs.ErrNotExist)
	ErrIsDir    = errors.New("pfs: is a directory")
	ErrNotDir   = errors.New("pfs: not a directory")
	ErrNotEmpty = errors.New("pfs: directory not empty")
	ErrClosed   = errors.New("pfs: handle closed")
	ErrReadOnly = errors.New("pfs: handle not open for writing")
)

// FS is one simulated parallel file system instance attached to an engine.
type FS struct {
	Eng *sim.Engine
	Cfg Config

	vols     []*volume
	groups   []*sim.PSLink
	snet     *sim.PSLink
	nodes    []*nodeState
	svrCache *cache
	root     *fnode

	nextObj uint64

	// Counters for diagnostics and tests.
	MetaOps     int64
	LockOps     int64
	SeekOps     int64
	CacheHitB   int64
	CacheMisB   int64
	BulkBatches int64 // bulk-create RPCs (each counts once in MetaOps)
	BulkOps     int64 // entries shipped inside bulk-create RPCs
}

type volume struct {
	mds     *sim.Resource // namespace mutations
	mdsRead *sim.Resource // lookups, opens, stats, readdirs
}

type nodeState struct {
	cache *cache
}

// fnode is a namespace node (file or directory).
type fnode struct {
	name   string
	parent *fnode
	vol    int
	dir    bool

	// Directory state.
	children map[string]*fnode
	dirMu    *sim.Mutex

	// File state.
	obj          uint64
	data         payload.File
	writeOpeners int
	lockMgr      *sim.Resource
	locks        lockTable
	// fileMu is the advisory whole-file write lock behind
	// Handle.LockRange — real mutual exclusion for RMW writers, distinct
	// from the lockTable, which only *costs* lock traffic.
	fileMu *sim.Mutex

	// streams is the object's readahead/allocation stream table: the file
	// positions of the most recent access streams (LRU order, bounded by
	// Config.StreamSlots).  It is shared by every handle on the file, so
	// concurrent readers of one shared object thrash each other's
	// sequentiality — the reason decoupled PLFS droppings prefetch well
	// and N-1 shared files do not.
	streams []int64
}

// streamSeq reports whether an access at off continues one of the
// object's active streams, and records the stream position for the next
// access.
func (n *fnode) streamSeq(off, length int64, slots int) bool {
	if slots < 1 {
		slots = 1
	}
	for i, pos := range n.streams {
		if pos == off {
			// Continue this stream; move it to the MRU position.
			copy(n.streams[1:i+1], n.streams[:i])
			n.streams[0] = off + length
			return true
		}
	}
	// New stream: evict the LRU slot if full.
	if len(n.streams) < slots {
		n.streams = append(n.streams, 0)
	}
	copy(n.streams[1:], n.streams[:len(n.streams)-1])
	n.streams[0] = off + length
	return false
}

// New creates a file system on the engine.  The namespace root exists and
// lives on volume 0; use VolumeRoot to obtain per-volume top directories.
func New(eng *sim.Engine, cfg Config) *FS {
	if cfg.Volumes < 1 {
		cfg.Volumes = 1
	}
	if cfg.OSTGroups < 1 {
		cfg.OSTGroups = 1
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	fs := &FS{Eng: eng, Cfg: cfg}
	for i := 0; i < cfg.Volumes; i++ {
		fs.vols = append(fs.vols, &volume{
			mds:     sim.NewResource(eng, max(1, cfg.MDSServers)),
			mdsRead: sim.NewResource(eng, max(1, cfg.MDSReadServers)),
		})
	}
	for i := 0; i < cfg.OSTGroups; i++ {
		bw := cfg.OSTGroupBW
		if i == cfg.DegradedGroup && cfg.DegradedFactor > 0 && cfg.DegradedFactor < 1 {
			bw *= cfg.DegradedFactor
		}
		fs.groups = append(fs.groups, sim.NewPSLink(eng, fmt.Sprintf("ost%d", i), bw))
	}
	fs.snet = sim.NewPSLink(eng, "storage-net", cfg.StorageBW)
	fs.svrCache = newCache(cfg.ServerCacheBytes, cfg.StripeUnit)
	for i := 0; i < cfg.Nodes; i++ {
		fs.nodes = append(fs.nodes, &nodeState{cache: newCache(cfg.ClientCacheBytes, cfg.StripeUnit)})
	}
	fs.root = &fnode{name: "/", dir: true, children: map[string]*fnode{}, dirMu: sim.NewMutex(eng)}
	// Pre-create the per-volume top directories: /vol0 .. /volN-1.
	for i := 0; i < cfg.Volumes; i++ {
		d := &fnode{
			name: fmt.Sprintf("vol%d", i), parent: fs.root, vol: i, dir: true,
			children: map[string]*fnode{}, dirMu: sim.NewMutex(eng),
		}
		fs.root.children[d.name] = d
	}
	return fs
}

// VolumeRoot returns the path of volume i's top directory.
func (fs *FS) VolumeRoot(i int) string { return fmt.Sprintf("/vol%d", i) }

// Report summarizes resource usage over the simulation so far: where the
// time went and which stage was the bottleneck.
type Report struct {
	MetaOps     int64
	LockOps     int64
	SeekOps     int64
	BulkBatches int64
	BulkOps     int64
	NetBytes    int64   // through the storage network
	DiskBytes   int64   // through the OST groups (includes seek-equivalents)
	CacheHitPct float64 // client-cache read hit ratio
	MDSBusy     []time.Duration
	MDSReadBusy []time.Duration
}

// DropCaches empties every node's client cache and the storage servers'
// cache — the benchmarking hygiene (drop_caches, remounts) used between
// the write and read phases of kernel studies so reads measure the
// storage system rather than local memory.
func (fs *FS) DropCaches() {
	for _, ns := range fs.nodes {
		ns.cache = newCache(fs.Cfg.ClientCacheBytes, fs.Cfg.StripeUnit)
	}
	fs.svrCache = newCache(fs.Cfg.ServerCacheBytes, fs.Cfg.StripeUnit)
}

// Report builds a usage summary.
func (fs *FS) Report() Report {
	r := Report{
		MetaOps:     fs.MetaOps,
		LockOps:     fs.LockOps,
		SeekOps:     fs.SeekOps,
		BulkBatches: fs.BulkBatches,
		BulkOps:     fs.BulkOps,
		NetBytes:    fs.snet.Moved,
	}
	for _, g := range fs.groups {
		r.DiskBytes += g.Moved
	}
	if tot := fs.CacheHitB + fs.CacheMisB; tot > 0 {
		r.CacheHitPct = 100 * float64(fs.CacheHitB) / float64(tot)
	}
	for _, v := range fs.vols {
		r.MDSBusy = append(r.MDSBusy, v.mds.Busy)
		r.MDSReadBusy = append(r.MDSReadBusy, v.mdsRead.Busy)
	}
	return r
}

// String renders the report.
func (r Report) String() string {
	var mb, rb time.Duration
	for _, d := range r.MDSBusy {
		mb += d
	}
	for _, d := range r.MDSReadBusy {
		rb += d
	}
	return fmt.Sprintf(
		"meta ops %d (mutate busy %.1fs, read busy %.1fs across %d volume(s)); lock rpcs %d; seeks %d; "+
			"net %.1f GB; disk %.1f GB (incl. seek-equivalents); client-cache hit %.0f%%",
		r.MetaOps, mb.Seconds(), rb.Seconds(), len(r.MDSBusy), r.LockOps, r.SeekOps,
		float64(r.NetBytes)/1e9, float64(r.DiskBytes)/1e9, r.CacheHitPct)
}

// Volumes returns the number of metadata domains.
func (fs *FS) Volumes() int { return fs.Cfg.Volumes }

// StoragePeak returns the storage network capacity in bytes per second
// (the cluster's "theoretical peak" I/O bandwidth).
func (fs *FS) StoragePeak() float64 { return fs.Cfg.StorageBW }

func splitPath(path string) []string {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	return strings.Split(path, "/")
}

// lookup resolves path to a node without charging simulation cost.
func (fs *FS) lookup(path string) (*fnode, error) {
	n := fs.root
	for _, part := range splitPath(path) {
		if !n.dir {
			return nil, ErrNotDir
		}
		c, ok := n.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		n = c
	}
	return n, nil
}

// lookupParent resolves the parent directory of path and returns it with
// the final path element.
func (fs *FS) lookupParent(path string) (*fnode, string, error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", ErrExist
	}
	dir := fs.root
	for _, part := range parts[:len(parts)-1] {
		c, ok := dir.children[part]
		if !ok {
			return nil, "", ErrNotExist
		}
		if !c.dir {
			return nil, "", ErrNotDir
		}
		dir = c
	}
	return dir, parts[len(parts)-1], nil
}

func (fs *FS) newDir(parent *fnode, name string) *fnode {
	d := &fnode{
		name: name, parent: parent, vol: parent.vol, dir: true,
		children: map[string]*fnode{}, dirMu: sim.NewMutex(fs.Eng),
	}
	parent.children[name] = d
	return d
}

func (fs *FS) newFile(parent *fnode, name string) *fnode {
	fs.nextObj++
	f := &fnode{
		name: name, parent: parent, vol: parent.vol,
		obj: fs.nextObj, lockMgr: sim.NewResource(fs.Eng, 1),
		fileMu: sim.NewMutex(fs.Eng),
	}
	parent.children[name] = f
	return f
}

// FileInfo describes a namespace entry.
type FileInfo struct {
	Name  string
	Dir   bool
	Size  int64
	Bytes int64 // alias of Size for files
}

func (n *fnode) info() FileInfo {
	fi := FileInfo{Name: n.name, Dir: n.dir}
	if !n.dir {
		fi.Size = n.data.Size()
		fi.Bytes = fi.Size
	}
	return fi
}

// sortedChildren returns child names in lexical order (deterministic).
func (n *fnode) sortedChildren() []string {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PublishObs copies the file system's cumulative service metrics into
// reg as gauges — aggregate op counters plus per-volume MDS busy time
// and per-OST-group bytes moved (see internal/obs and DESIGN.md §11).
// It snapshots current totals; call it after the workload completes (or
// periodically) rather than once up front.  Nil-safe.
func (fs *FS) PublishObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r := fs.Report()
	reg.Gauge("pfs.meta_ops").Set(float64(r.MetaOps))
	reg.Gauge("pfs.lock_rpcs").Set(float64(r.LockOps))
	reg.Gauge("pfs.seeks").Set(float64(r.SeekOps))
	reg.Gauge("pfs.bulk_batches").Set(float64(r.BulkBatches))
	reg.Gauge("pfs.bulk_ops").Set(float64(r.BulkOps))
	reg.Gauge("pfs.net_bytes").Set(float64(r.NetBytes))
	reg.Gauge("pfs.disk_bytes").Set(float64(r.DiskBytes))
	reg.Gauge("pfs.cache_hit_pct").Set(r.CacheHitPct)
	for i, v := range fs.vols {
		reg.Gauge(fmt.Sprintf("pfs.vol%d.mds_busy_seconds", i)).Set(v.mds.Busy.Seconds())
		reg.Gauge(fmt.Sprintf("pfs.vol%d.mdsread_busy_seconds", i)).Set(v.mdsRead.Busy.Seconds())
	}
	for i, g := range fs.groups {
		reg.Gauge(fmt.Sprintf("pfs.ost%d.bytes_moved", i)).Set(float64(g.Moved))
	}
}

// TraceProbes exposes the file system's shared resources as trace probes
// for time-series sampling (see internal/trace): in-flight flow counts,
// metadata queue depths, and cumulative byte/op counters.
func (fs *FS) TraceProbes() []struct {
	Name string
	Fn   func() float64
} {
	type probe = struct {
		Name string
		Fn   func() float64
	}
	ps := []probe{
		{"snet_flows", func() float64 { return float64(fs.snet.Active()) }},
		{"net_bytes", func() float64 { return float64(fs.snet.Moved) }},
		{"meta_ops", func() float64 { return float64(fs.MetaOps) }},
		{"lock_rpcs", func() float64 { return float64(fs.LockOps) }},
		{"seeks", func() float64 { return float64(fs.SeekOps) }},
		{"cache_hit_bytes", func() float64 { return float64(fs.CacheHitB) }},
	}
	ps = append(ps, probe{"ost_flows", func() float64 {
		n := 0
		for _, g := range fs.groups {
			n += g.Active()
		}
		return float64(n)
	}})
	ps = append(ps, probe{"mds_queue", func() float64 {
		n := 0
		for _, v := range fs.vols {
			n += v.mds.QueueLen()
		}
		return float64(n)
	}})
	ps = append(ps, probe{"mdsread_queue", func() float64 {
		n := 0
		for _, v := range fs.vols {
			n += v.mdsRead.QueueLen()
		}
		return float64(n)
	}})
	return ps
}
