package pfs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := newCache(1000, 1)
	if c.hitBytes(1, 0, 100) != 0 {
		t.Fatal("empty cache hit")
	}
	c.insert(1, 0, 100)
	if got := c.hitBytes(1, 0, 100); got != 100 {
		t.Fatalf("hit = %d, want 100", got)
	}
	if got := c.hitBytes(1, 50, 100); got != 50 {
		t.Fatalf("partial hit = %d, want 50", got)
	}
	if c.hitBytes(2, 0, 100) != 0 {
		t.Fatal("wrong-object hit")
	}
}

func TestCacheEviction(t *testing.T) {
	c := newCache(100, 1)
	c.insert(1, 0, 60)
	c.insert(2, 0, 60) // evicts obj 1's extent
	if c.used > 100 {
		t.Fatalf("used = %d over capacity", c.used)
	}
	if got := c.hitBytes(2, 0, 60); got != 60 {
		t.Fatalf("recent insert evicted: hit = %d", got)
	}
	// Block-granular FIFO eviction trims exactly back to capacity: the
	// oldest 20 bytes of obj 1 are gone, the rest survive.
	if got := c.hitBytes(1, 0, 60); got != 40 {
		t.Fatalf("oldest blocks not evicted: hit = %d, want 40", got)
	}
	if got := c.hitBytes(1, 20, 40); got != 40 {
		t.Fatalf("surviving tail wrong: hit = %d, want 40", got)
	}
}

func TestCacheOversizedInsertKeepsTail(t *testing.T) {
	c := newCache(100, 1)
	c.insert(1, 0, 1000)
	if c.used > 100 {
		t.Fatalf("used = %d", c.used)
	}
	// Only the tail of the stream fits.
	if got := c.hitBytes(1, 900, 100); got != 100 {
		t.Fatalf("tail hit = %d, want 100", got)
	}
}

func TestCacheZeroCapacityDisabled(t *testing.T) {
	c := newCache(0, 1)
	c.insert(1, 0, 10)
	if c.hitBytes(1, 0, 10) != 0 {
		t.Fatal("zero-capacity cache stored data")
	}
}

func TestCacheDrop(t *testing.T) {
	c := newCache(1000, 1)
	c.insert(1, 0, 100)
	c.insert(2, 0, 100)
	c.drop(1)
	if c.hitBytes(1, 0, 100) != 0 {
		t.Fatal("dropped object still cached")
	}
	if c.hitBytes(2, 0, 100) != 100 {
		t.Fatal("drop removed wrong object")
	}
	if c.used != 100 {
		t.Fatalf("used = %d, want 100", c.used)
	}
}

// Property: cache accounting matches a brute-force byte-set oracle and
// never exceeds capacity.
func TestCacheMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const capacity = 200
		c := newCache(capacity, 1)
		type key struct {
			obj uint64
			b   int64
		}
		// The oracle only checks subset consistency: every byte the cache
		// claims as hit must have been inserted at some point (no phantom
		// hits), and used == sum of interval lengths <= capacity.
		inserted := map[key]bool{}
		for k := 0; k < 200; k++ {
			obj := uint64(rng.Intn(3) + 1)
			off := int64(rng.Intn(300))
			n := int64(rng.Intn(80) + 1)
			if rng.Intn(2) == 0 {
				c.insert(obj, off, n)
				start := off
				if n > capacity {
					start = off + n - capacity
				}
				for b := start; b < off+n; b++ {
					inserted[key{obj, b}] = true
				}
			} else {
				hits := c.hitBytes(obj, off, n)
				// Count bytes that were ever inserted; hits must not exceed.
				var everIn int64
				for b := off; b < off+n; b++ {
					if inserted[key{obj, b}] {
						everIn++
					}
				}
				if hits > everIn {
					return false
				}
			}
			// Accounting invariants: used equals the number of present
			// blocks (block size 1 -> bytes) and never exceeds capacity;
			// the per-object block counts sum to the total.
			if int64(len(c.present)) != c.used || c.used > capacity {
				return false
			}
			perObj := 0
			for _, n := range c.objBlks {
				if n <= 0 {
					return false
				}
				perObj += n
			}
			if perObj != len(c.present) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOSTSharesConservation(t *testing.T) {
	f := func(off, n uint32, stripeSel, groupSel uint8) bool {
		stripe := int64(1) << (10 + stripeSel%8) // 1K..128K
		groups := int(groupSel%16) + 1
		o, sz := int64(off), int64(n%10_000_000)+1
		shares := ostShares(uint64(off)*7, o, sz, stripe, groups)
		var sum int64
		for _, s := range shares {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == sz && len(shares) == groups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOSTSharesSmallTransferSingleGroup(t *testing.T) {
	shares := ostShares(3, 0, 100, 64<<10, 8)
	nonzero := 0
	for _, s := range shares {
		if s > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("small transfer touched %d groups", nonzero)
	}
}
