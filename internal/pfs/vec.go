package pfs

import (
	"time"

	"plfs/internal/extent"
	"plfs/internal/payload"
	"plfs/internal/sim"
)

// This file models the vectored (list-I/O) fast paths of the storage
// client: many extents shipped in one request, batched appends, and the
// advisory write lock RMW-style writers need.  The costs differ from a
// loop of single ops in exactly the ways list I/O differs on real
// systems: one network round trip instead of K, one batched lock-RPC
// train instead of K, and one positioning sweep per involved OST group
// instead of one seek per extent (the server services the sorted extent
// list in a single pass, as PVFS listio and ROMIO's listless servers do).
// Per-byte transfer costs are unchanged — list I/O batches requests, it
// does not shrink them.

// WritevAt writes many extents in one request.  data carries the bytes,
// concatenated in segment order; its piece boundaries need not align with
// the segments.
func (h *Handle) WritevAt(segs []extent.Ext, data payload.List) error {
	if h.closed {
		return ErrClosed
	}
	if !h.writing {
		return ErrReadOnly
	}
	var total int64
	for _, e := range segs {
		total += e.Len
	}
	if total == 0 {
		return nil
	}
	cfg := &h.c.fs.Cfg
	if h.f.writeOpeners > 1 && cfg.LockUnit > 0 {
		// One batched lock acquisition covering every extent.
		rpcs := 0
		for _, e := range segs {
			lo := e.Off / cfg.LockUnit
			hi := (e.Off + e.Len + cfg.LockUnit - 1) / cfg.LockUnit
			rpcs += h.f.locks.acquire(lo, hi, h.c.node)
		}
		if rpcs > 0 {
			h.c.fs.LockOps += int64(rpcs)
			h.f.lockMgr.Use(h.c.p, h.c.jit(time.Duration(rpcs)*cfg.LockRPC))
		}
	}
	disks := make([]int64, len(segs))
	for i, e := range segs {
		disks[i] = e.Len
	}
	h.transferv(segs, disks, total, false)
	var pos int64
	for _, e := range segs {
		off := e.Off
		for _, p := range data.Slice(pos, e.Len) {
			h.f.data.WriteAt(off, p)
			off += p.Len()
		}
		pos += e.Len
		h.c.fs.nodes[h.c.node].cache.insert(h.f.obj, e.Off, e.Len)
	}
	return nil
}

// ReadvAt reads many extents in one request, returning their bytes
// concatenated in segment order.
func (h *Handle) ReadvAt(segs []extent.Ext) (payload.List, error) {
	if h.closed {
		return nil, ErrClosed
	}
	c := h.c
	cfg := &c.fs.Cfg
	cache := c.fs.nodes[c.node].cache
	var total, hit int64
	disks := make([]int64, len(segs))
	for i, e := range segs {
		if e.Len <= 0 {
			continue
		}
		total += e.Len
		segHit := cache.hitBytes(h.f.obj, e.Off, e.Len)
		miss := e.Len - segHit
		c.fs.CacheHitB += segHit
		c.fs.CacheMisB += miss
		hit += segHit
		disks[i] = miss
		// Insert before the transfer completes, coalescing concurrent
		// readers onto the in-flight fill (see Handle.ReadAt).
		cache.insert(h.f.obj, e.Off, e.Len)
	}
	if total == 0 {
		return nil, nil
	}
	if hit > 0 && cfg.MemBW > 0 {
		c.p.Sleep(time.Duration(float64(hit) / cfg.MemBW * 1e9))
	}
	h.transferv(segs, disks, total, true)
	var out payload.List
	for _, e := range segs {
		if e.Len <= 0 {
			continue
		}
		out = out.Concat(h.f.data.ReadAt(e.Off, e.Len))
	}
	return out, nil
}

// Appendv appends many payload pieces as one backend operation at the
// current end of file and returns the offset the batch landed at — the
// entry point PLFS data droppings use to turn K logged extents into a
// single sequential append.
func (h *Handle) Appendv(pl payload.List) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if !h.writing {
		return 0, ErrReadOnly
	}
	off := h.f.data.Size()
	total := pl.Len()
	if total == 0 {
		return off, nil
	}
	cfg := &h.c.fs.Cfg
	if h.f.writeOpeners > 1 && cfg.LockUnit > 0 {
		lo := off / cfg.LockUnit
		hi := (off + total + cfg.LockUnit - 1) / cfg.LockUnit
		if rpcs := h.f.locks.acquire(lo, hi, h.c.node); rpcs > 0 {
			h.c.fs.LockOps += int64(rpcs)
			h.f.lockMgr.Use(h.c.p, h.c.jit(time.Duration(rpcs)*cfg.LockRPC))
		}
	}
	seq := h.f.streamSeq(off, total, cfg.StreamSlots)
	h.transfer(off, total, total, seq, false)
	cur := off
	for _, p := range pl {
		h.f.data.WriteAt(cur, p)
		cur += p.Len()
	}
	h.c.fs.nodes[h.c.node].cache.insert(h.f.obj, off, total)
	return off, nil
}

// transferv models moving a batch of extents in one request: one round
// trip, one storage-network flow of the combined size, and per-OST-group
// flows.  When any extent breaks the object's access streams, each
// involved group is charged a single positioning penalty for the whole
// request — the one-sweep servicing of a sorted extent list — rather
// than one per extent as a loop of independent ops would pay.
// disks gives the portion of each extent that must touch the disks
// (reads adjust it by the server cache below).
func (h *Handle) transferv(segs []extent.Ext, disks []int64, total int64, isRead bool) {
	c := h.c
	cfg := &c.fs.Cfg
	c.p.Sleep(c.jit(cfg.StorageRTT))

	shares := make([]int64, len(c.fs.groups))
	seek := false
	for i, e := range segs {
		if e.Len <= 0 {
			continue
		}
		if !h.f.streamSeq(e.Off, e.Len, cfg.StreamSlots) {
			seek = true
		}
		disk := disks[i]
		if isRead {
			if svrHit := c.fs.svrCache.hitBytes(h.f.obj, e.Off, e.Len); disk > e.Len-svrHit {
				disk = e.Len - svrHit
			}
		}
		c.fs.svrCache.insert(h.f.obj, e.Off, e.Len)
		if disk > 0 {
			for g, b := range ostShares(h.f.obj, e.Off, disk, cfg.StripeUnit, len(c.fs.groups)) {
				shares[g] += b
			}
		}
	}
	var wg sim.WaitGroup
	wg.Add(1)
	c.fs.snet.TransferAsync(total, wg.Done)
	for g, bytes := range shares {
		if bytes == 0 {
			continue
		}
		if seek && cfg.SeekTime > 0 {
			c.fs.SeekOps++
			bytes += int64(cfg.SeekTime.Seconds() * cfg.OSTGroupBW)
		}
		wg.Add(1)
		c.fs.groups[g].TransferAsync(bytes, wg.Done)
	}
	wg.Wait(c.p)
}

// LockRange takes the file's advisory write lock, the mutual-exclusion
// story for read-modify-write data sieving: ROMIO requires concurrent
// writers of a sieved file to serialize their RMW windows, and this is
// the fcntl byte-range lock standing in for that contract.  The grant is
// conservative — whole-file, ignoring off/n — and charges one lock-server
// RPC; the wait for a holder rides the simulated clock (the lock is a
// discrete-event mutex, so blocked writers cost virtual time, not
// wall-clock spin).
func (h *Handle) LockRange(off, n int64) error {
	if h.closed {
		return ErrClosed
	}
	cfg := &h.c.fs.Cfg
	if cfg.LockRPC > 0 {
		h.c.fs.LockOps++
		h.f.lockMgr.Use(h.c.p, h.c.jit(cfg.LockRPC))
	}
	h.f.fileMu.Lock(h.c.p)
	return nil
}

// UnlockRange releases the advisory lock taken by LockRange.
func (h *Handle) UnlockRange(off, n int64) error {
	if h.closed {
		return ErrClosed
	}
	h.f.fileMu.Unlock()
	return nil
}
