package obs

import "sync/atomic"

// Span is one in-flight timed operation.  Spans form explicit trees:
// create roots with Registry.StartSpan and nest with Span.Child — there
// is no ambient (goroutine-local) current span, so concurrent ranks and
// worker pools can not corrupt each other's ancestry.  A nil *Span is
// fully usable: Child returns nil and End does nothing, which is how the
// disabled fast path stays allocation-free.
type Span struct {
	r      *Registry
	name   string
	id     uint64
	parent uint64
	start  int64
}

// StartSpan opens a root span (nil-safe: returns nil on a nil registry).
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, id: atomic.AddUint64(&r.lastID, 1), start: r.now()}
}

// Child opens a sub-span of s (nil-safe: returns nil on a nil span).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.r.StartSpan(name)
	c.parent = s.id
	return c
}

// End closes the span: its duration feeds the "span.<name>" histogram
// and, retention permitting, a SpanRecord is kept for breakdowns.  End
// a span exactly once.  Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.r.now()
	s.r.Histogram("span." + s.name).ObserveNanos(end - s.start)
	s.r.mu.Lock()
	if len(s.r.spans) < s.r.spanLimit {
		s.r.spans = append(s.r.spans, SpanRecord{
			Name: s.name, ID: s.id, Parent: s.parent, Start: s.start, End: end,
		})
	} else {
		s.r.dropped++
	}
	s.r.mu.Unlock()
}
