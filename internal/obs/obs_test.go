package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a manually advanced clock.
type testClock struct{ now int64 }

func (c *testClock) clock() Clock { return func() int64 { return c.now } }

func newTestRegistry() (*Registry, *testClock) {
	c := &testClock{}
	r := New()
	r.SetClock(c.clock())
	return r, c
}

func TestCountersAndGauges(t *testing.T) {
	r := New()
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	r.Gauge("g").Set(1.5)
	r.Gauge("g").Set(2.5)
	if got := r.Counter("a").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.Gauge("g").Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	snap := r.Snapshot()
	if snap.Counters["a"] != 5 || snap.Gauges["g"] != 2.5 {
		t.Errorf("snapshot mismatch: %+v", snap)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %v, want 0", q)
	}
	st := h.Stats()
	if st.Count != 0 || st.SumSeconds != 0 || st.P99Seconds != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	// Quantiles of a one-observation histogram must clamp to that value
	// exactly, at every q, including values below the first bucket bound
	// and in the overflow bucket.
	for _, v := range []time.Duration{0, time.Nanosecond, time.Microsecond,
		3 * time.Millisecond, 5 * time.Hour} {
		var h Histogram
		h.Observe(v)
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("single %v: q%.2f = %v, want %v", v, q, got, v)
			}
		}
		if h.Max() != v || h.Sum() != v || h.Count() != 1 {
			t.Errorf("single %v: max/sum/count = %v/%v/%d", v, h.Max(), h.Sum(), h.Count())
		}
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.ObserveNanos(-5)
	if h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative observation: max %v count %d", h.Max(), h.Count())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Exact powers of two land in the bucket they bound, one more nanosecond
	// moves to the next.
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {int64(time.Microsecond), 0},
		{int64(time.Microsecond) + 1, 1},
		{2 * int64(time.Microsecond), 1},
		{2*int64(time.Microsecond) + 1, 2},
		{4 * int64(time.Microsecond), 2},
		{1 << 62, histBuckets},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramPercentilesOrdered(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= h.Max()) {
		t.Errorf("quantiles out of order: p50 %v p95 %v p99 %v max %v", p50, p95, p99, h.Max())
	}
	// Bucket estimation is coarse (doubling buckets), but the median of a
	// uniform 1µs..1ms population must land within its population range
	// and the same power-of-two bucket as the true median.
	if p50 < 256*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Errorf("p50 = %v, want within (256µs, 1024µs] bucket of true median 500µs", p50)
	}
	if h.Count() != 1000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.SetClock(func() int64 { return 0 })
	r.SetSpanLimit(10)
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(time.Second)
	r.Timer("x")()
	sp := r.StartSpan("root")
	if sp != nil {
		t.Fatal("nil registry returned non-nil span")
	}
	sp.Child("c").End()
	sp.End()
	if got := r.Spans(); got != nil {
		t.Errorf("nil registry spans = %v", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", snap)
	}
	if rows := r.Breakdown(); rows != nil {
		t.Errorf("nil registry breakdown = %v", rows)
	}
}

func TestSpanTreeAndBreakdown(t *testing.T) {
	r, c := newTestRegistry()
	open := r.StartSpan("open")
	c.now += 10
	agg := open.Child("aggregate")
	c.now += 5
	dec := agg.Child("decode")
	c.now += 7
	dec.End()
	mrg := agg.Child("merge")
	c.now += 3
	mrg.End()
	agg.End()
	open.End()

	rows := r.Breakdown()
	want := map[string]time.Duration{
		"open":                  25,
		"open/aggregate":        15,
		"open/aggregate/decode": 7,
		"open/aggregate/merge":  3,
	}
	if len(rows) != len(want) {
		t.Fatalf("breakdown rows = %d, want %d: %+v", len(rows), len(want), rows)
	}
	for _, row := range rows {
		if row.Total != want[row.Path] {
			t.Errorf("path %s total = %v, want %v", row.Path, row.Total, want[row.Path])
		}
	}
	// Parents sort before children.
	for i := 1; i < len(rows); i++ {
		if rows[i-1].Path >= rows[i].Path {
			t.Errorf("rows not sorted: %q then %q", rows[i-1].Path, rows[i].Path)
		}
	}
	// Span durations feed histograms too.
	if got := r.Histogram("span.decode").Max(); got != 7 {
		t.Errorf("span.decode hist max = %v, want 7", got)
	}
	txt := RenderBreakdown(rows)
	if !strings.Contains(txt, "decode") || !strings.Contains(txt, "open") {
		t.Errorf("rendered breakdown missing rows:\n%s", txt)
	}
}

func TestSpanLimitDropsButStillCounts(t *testing.T) {
	r, c := newTestRegistry()
	r.SetSpanLimit(2)
	for i := 0; i < 5; i++ {
		sp := r.StartSpan("op")
		c.now += 100
		sp.End()
	}
	if got := len(r.Spans()); got != 2 {
		t.Errorf("retained spans = %d, want 2", got)
	}
	if got := r.Snapshot().SpansDropped; got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	if got := r.Histogram("span.op").Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5 (drops must still feed histograms)", got)
	}
}

func TestOrphanSpanTreatedAsRoot(t *testing.T) {
	r, c := newTestRegistry()
	r.SetSpanLimit(1)
	parent := r.StartSpan("parent")
	child := parent.Child("child")
	c.now += 4
	child.End()  // retained
	parent.End() // dropped (limit 1)
	rows := r.Breakdown()
	if len(rows) != 1 || rows[0].Path != "child" {
		t.Errorf("breakdown = %+v, want one root row 'child'", rows)
	}
}

func TestWriteJSONDeterministicAndValid(t *testing.T) {
	r, c := newTestRegistry()
	r.Counter("b.ops").Add(3)
	r.Counter("a.ops").Add(1)
	r.Gauge("z").Set(9)
	sp := r.StartSpan("op")
	c.now += 1e6
	sp.End()

	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("WriteJSON is not deterministic")
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Counters["b.ops"] != 3 || snap.Histograms["span.op"].Count != 1 {
		t.Errorf("round-tripped snapshot wrong: %+v", snap)
	}
}

func TestWriteSpansCSV(t *testing.T) {
	r, c := newTestRegistry()
	root := r.StartSpan("root")
	c.now += 2e9
	root.End()
	var b bytes.Buffer
	if err := r.WriteSpansCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2:\n%s", len(lines), b.String())
	}
	if lines[0] != "name,id,parent,start_seconds,duration_seconds" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "root,") || !strings.Contains(lines[1], "2.000000000") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestConcurrentUse(t *testing.T) {
	// Counters, histograms, and spans from many goroutines; run under
	// -race in CI.
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("ops").Add(1)
				r.Histogram("lat").Observe(time.Microsecond)
				sp := r.StartSpan("op")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("ops").Value(); got != 1600 {
		t.Errorf("ops = %d, want 1600", got)
	}
	if got := len(r.Spans()); got != 3200 {
		t.Errorf("spans = %d, want 3200", got)
	}
}

// BenchmarkDisabled measures the no-op fast path: instrumented code with
// observability off must cost only nil checks (the ≤2% overhead budget;
// see DESIGN.md §11).
func BenchmarkDisabled(b *testing.B) {
	var r *Registry
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := r.StartSpan("op")
			sp.Child("inner").End()
			sp.End()
		}
	})
	b.Run("counter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Counter("ops").Add(1)
		}
	})
	b.Run("timer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Timer("op")()
		}
	})
}

// BenchmarkEnabled is the paired cost with observability on.
func BenchmarkEnabled(b *testing.B) {
	r := New()
	r.SetSpanLimit(0) // steady state: histograms only
	b.Run("span", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := r.StartSpan("op")
			sp.Child("inner").End()
			sp.End()
		}
	})
	b.Run("counter", func(b *testing.B) {
		c := r.Counter("ops")
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
}
