// Package obs is the zero-dependency observability layer: a metrics
// registry (counters, gauges, fixed-bucket latency histograms with
// percentile estimation) plus hierarchical span tracing.  It is the
// substrate that makes every reproduced shape attributable to its
// mechanism — where internal/trace samples resource time series on a
// fixed schedule, obs attributes time to *operations*: each open,
// aggregate, decode, merge, flush, or commit is bracketed and its
// duration binned.
//
// Time semantics: a Registry reads "now" through a single Clock.  Under
// the simulator the harness binds it to the engine's virtual clock, so
// span durations and latency histograms report simulated time — the
// quantity the figures plot.  Over a real backend (osfs, the CLIs) the
// default wall clock applies.  Counters and gauges are clock-free.
//
// Disabled fast path: a nil *Registry is fully usable.  Every method is
// nil-safe and returns immediately, spans come back as nil *Span whose
// methods are also nil-safe, and no allocation happens anywhere on the
// path.  Instrumented hot paths therefore cost a pointer test when
// observability is off.
//
// Span retention is bounded (SetSpanLimit): beyond the limit, completed
// spans still feed their duration histograms but the per-span records
// are dropped and counted in the snapshot's spans_dropped — sampling
// that keeps long runs from accumulating unbounded span memory.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Clock reads the registry's notion of "now" in nanoseconds.  The origin
// is arbitrary; only differences are used.
type Clock func() int64

const (
	// histBase is the upper bound of the first histogram bucket (values
	// at or below it land in bucket 0).
	histBase = int64(time.Microsecond)
	// histBuckets is the number of doubling buckets after the first;
	// the last regular bucket tops out at 1µs << 33 ≈ 2.4 h, and
	// anything beyond lands in the overflow bucket.
	histBuckets = 34
	// DefaultSpanLimit bounds retained span records per registry.
	DefaultSpanLimit = 1 << 16
)

// Registry holds one run's metrics and spans.  All methods are safe for
// concurrent use, and all are no-ops on a nil receiver.
type Registry struct {
	clock atomic.Value // Clock

	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	spans     []SpanRecord
	spanLimit int
	dropped   int64
	lastID    uint64
}

// New returns an empty registry reading the wall clock.  Bind a virtual
// clock with SetClock before the run when simulated time is wanted.
func New() *Registry {
	r := &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		spanLimit: DefaultSpanLimit,
	}
	r.clock.Store(Clock(func() int64 { return time.Now().UnixNano() }))
	return r
}

// SetClock rebinds the registry's time source (e.g. to a simulation
// engine's virtual clock).  Call it before instrumented work begins;
// spans already in flight keep their old start times.
func (r *Registry) SetClock(c Clock) {
	if r == nil || c == nil {
		return
	}
	r.clock.Store(c)
}

// SetSpanLimit bounds the number of retained span records (0 or negative
// keeps none; histograms still accumulate).
func (r *Registry) SetSpanLimit(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spanLimit = n
	r.mu.Unlock()
}

func (r *Registry) now() int64 { return r.clock.Load().(Clock)() }

// Counter returns the named monotone counter, creating it on first use.
// Returns nil (a usable no-op) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.  Returns nil
// (a usable no-op) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use.  Returns nil (a usable no-op) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

var nop = func() {}

// Timer starts timing an operation; the returned stop function records
// the elapsed time into the named histogram.  On a nil registry the
// shared no-op function is returned (no allocation).
func (r *Registry) Timer(name string) func() {
	if r == nil {
		return nop
	}
	start := r.now()
	return func() { r.Histogram(name).ObserveNanos(r.now() - start) }
}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (nil-safe).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (nil-safe).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float64 metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set records the gauge's current value (nil-safe).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the last value set (nil-safe).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram bins durations into fixed log-spaced buckets: bucket 0 holds
// values ≤ 1µs, each following bucket doubles the upper bound, and an
// overflow bucket catches the rest.  Percentiles interpolate within the
// crossing bucket and clamp to the observed min/max, so single-value
// histograms report that value exactly.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [histBuckets + 1]int64
}

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v <= histBase {
		return 0
	}
	b := bits.Len64(uint64((v - 1) / histBase))
	if b > histBuckets {
		return histBuckets
	}
	return b
}

// bucketBounds returns bucket i's (lower, upper] nanosecond bounds; the
// overflow bucket's upper bound is its lower bound (callers clamp to the
// observed max).
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, histBase
	}
	if i >= histBuckets {
		lo = histBase << (histBuckets - 1)
		return lo, lo
	}
	return histBase << (i - 1), histBase << i
}

// Observe records one duration (nil-safe).
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(int64(d)) }

// ObserveNanos records one duration given in nanoseconds (nil-safe).
// Negative values clamp to zero.
func (h *Histogram) ObserveNanos(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
	h.mu.Unlock()
}

// Count returns the number of observations (nil-safe).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total observed time (nil-safe).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.sum)
}

// Max returns the largest observation (nil-safe).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile estimates the q-th quantile (q in [0,1]) from the buckets:
// linear interpolation inside the crossing bucket, clamped to the
// observed min/max.  An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.quantileLocked(q))
}

func (h *Histogram) quantileLocked(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketBounds(i)
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			v := int64(float64(lo) + frac*float64(hi-lo))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// HistogramStats is one histogram's snapshot, in seconds.
type HistogramStats struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// SumSeconds is the total observed time.
	SumSeconds float64 `json:"sum_seconds"`
	// MinSeconds and MaxSeconds bound the observations.
	MinSeconds float64 `json:"min_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	// P50Seconds, P95Seconds, P99Seconds are bucket-estimated quantiles.
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// Stats snapshots the histogram (nil-safe: zero stats).
func (h *Histogram) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sec := func(ns int64) float64 { return float64(ns) / 1e9 }
	return HistogramStats{
		Count:      h.count,
		SumSeconds: sec(h.sum),
		MinSeconds: sec(h.min),
		MaxSeconds: sec(h.max),
		P50Seconds: sec(h.quantileLocked(0.50)),
		P95Seconds: sec(h.quantileLocked(0.95)),
		P99Seconds: sec(h.quantileLocked(0.99)),
	}
}

// Snapshot is a registry's full metrics state, JSON-stable (map keys are
// marshaled sorted, so equal states produce byte-equal documents).
type Snapshot struct {
	// Counters maps counter name to its count.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to its last value.
	Gauges map[string]float64 `json:"gauges"`
	// Histograms maps histogram name to its summary stats.
	Histograms map[string]HistogramStats `json:"histograms"`
	// SpansDropped counts span records lost to the retention limit.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// Snapshot captures the registry's current metrics (nil-safe: empty
// snapshot with non-nil maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	s.SpansDropped = r.dropped
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Stats()
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.  Output is
// deterministic for a deterministic run (virtual clock, fixed seed).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// SpanRecord is one completed span.
type SpanRecord struct {
	// Name is the span's operation name (e.g. "open", "decode").
	Name string
	// ID is unique within the registry; Parent is the enclosing span's
	// ID (0 for a root span).
	ID, Parent uint64
	// Start and End are clock readings in nanoseconds.
	Start, End int64
}

// Spans returns a copy of the retained span records in completion order
// (nil-safe).
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// WriteSpansCSV renders the retained spans: one row per span with its
// name, id, parent id, start, and duration in seconds.
func (r *Registry) WriteSpansCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "name,id,parent,start_seconds,duration_seconds"); err != nil {
		return err
	}
	for _, s := range r.Spans() {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.9f,%.9f\n",
			s.Name, s.ID, s.Parent, float64(s.Start)/1e9, float64(s.End-s.Start)/1e9); err != nil {
			return err
		}
	}
	return nil
}

// BreakdownRow aggregates every span sharing one ancestry path.
type BreakdownRow struct {
	// Path is the slash-joined span ancestry, e.g. "open/aggregate/decode".
	Path string
	// Depth is the nesting level (0 for roots) — Path's separator count.
	Depth int
	// Count is the number of spans on this path.
	Count int64
	// Total sums their durations; Max is the longest single span —
	// for collective phases entered by every rank, Max approximates the
	// job-critical-path time while Total/Count is the per-rank mean.
	Total, Max time.Duration
}

// Breakdown aggregates retained spans by ancestry path, sorted so each
// parent precedes its children (lexicographic on path).  A span whose
// parent record was dropped by the retention limit is treated as a root.
func (r *Registry) Breakdown() []BreakdownRow {
	spans := r.Spans()
	if len(spans) == 0 {
		return nil
	}
	byID := make(map[uint64]*SpanRecord, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &spans[i]
	}
	paths := make(map[uint64]string, len(spans))
	var pathOf func(s *SpanRecord) string
	pathOf = func(s *SpanRecord) string {
		if p, ok := paths[s.ID]; ok {
			return p
		}
		p := s.Name
		if par, ok := byID[s.Parent]; ok && s.Parent != 0 {
			p = pathOf(par) + "/" + s.Name
		}
		paths[s.ID] = p
		return p
	}
	rows := map[string]*BreakdownRow{}
	for i := range spans {
		s := &spans[i]
		p := pathOf(s)
		row, ok := rows[p]
		if !ok {
			row = &BreakdownRow{Path: p, Depth: strings.Count(p, "/")}
			rows[p] = row
		}
		d := time.Duration(s.End - s.Start)
		row.Count++
		row.Total += d
		if d > row.Max {
			row.Max = d
		}
	}
	out := make([]BreakdownRow, 0, len(rows))
	for _, row := range rows {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// RenderBreakdown formats the breakdown as an indented text table:
// one line per path with span count, total, mean, and max durations.
func RenderBreakdown(rows []BreakdownRow) string {
	if len(rows) == 0 {
		return "(no spans recorded)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %8s %12s %12s %12s\n", "phase", "count", "total", "mean", "max")
	for _, row := range rows {
		name := strings.Repeat("  ", row.Depth) + row.Path[strings.LastIndex(row.Path, "/")+1:]
		mean := time.Duration(0)
		if row.Count > 0 {
			mean = row.Total / time.Duration(row.Count)
		}
		fmt.Fprintf(&b, "%-42s %8d %12.6fs %12.6fs %12.6fs\n",
			name, row.Count, row.Total.Seconds(), mean.Seconds(), row.Max.Seconds())
	}
	return b.String()
}
