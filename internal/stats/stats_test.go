package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	// Sample stddev of the classic set: sqrt(32/7).
	if got, want := s.Stddev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
}

func TestEmptySampleIsZero(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSingleObservationStddevZero(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Stddev() != 0 {
		t.Fatalf("stddev of one obs = %v", s.Stddev())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", got)
	}
}

// Property: mean is within [min, max] and stddev is non-negative.
func TestSampleProperties(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// quick generates huge magnitudes; scale into a sane range to
			// avoid float overflow in the sum-of-squares.
			s.Add(math.Mod(x, 1e6))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.Stddev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{Title: "Fig X", XLabel: "procs", YLabel: "seconds"}
	var s1, s2 Sample
	s1.Add(1.0)
	s1.Add(1.2)
	s2.Add(9.5)
	tab.AddSample("plfs", 64, &s1)
	tab.AddSample("direct", 64, &s2)
	tab.Add(Point{Series: "plfs", X: 128, Mean: 2, Stddev: 0.1, N: 3})
	out := tab.Render()
	for _, want := range []string{"Fig X", "procs", "plfs", "direct", "seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// The 128 row has no direct point: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing placeholder for absent point:\n%s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "series,x,mean,stddev,n\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if got := strings.Count(csv, "\n"); got != 4 {
		t.Fatalf("csv rows = %d, want 4", got)
	}
}

func TestTableSeriesOrderAndLookup(t *testing.T) {
	tab := &Table{}
	tab.Add(Point{Series: "b", X: 1, Mean: 10})
	tab.Add(Point{Series: "a", X: 1, Mean: 20})
	tab.Add(Point{Series: "b", X: 2, Mean: 30})
	s := tab.Series()
	if len(s) != 2 || s[0] != "b" || s[1] != "a" {
		t.Fatalf("series = %v, want [b a] (insertion order)", s)
	}
	p, ok := tab.Lookup("b", 2)
	if !ok || p.Mean != 30 {
		t.Fatalf("lookup = %+v, %v", p, ok)
	}
	if _, ok := tab.Lookup("c", 1); ok {
		t.Fatal("lookup of absent series succeeded")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(150, 10); got != 15 {
		t.Fatalf("speedup = %v", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("speedup over zero must be +Inf")
	}
}

func TestFormatSig(t *testing.T) {
	if got := FormatSig(0, 3); got != "0" {
		t.Fatalf("FormatSig(0) = %q", got)
	}
	if got := FormatSig(123.456, 4); got != "123.5" {
		t.Fatalf("FormatSig = %q", got)
	}
}
