// Package stats provides the small statistical and tabulation utilities the
// benchmark harness uses to aggregate repeated simulation runs into the
// mean ± stddev series the paper's figures report.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and reports summary statistics.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) by linear interpolation,
// or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	pos := p / 100 * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Point is one (x, series) cell of a figure: the aggregate of repeated runs.
type Point struct {
	Series string
	X      float64
	Mean   float64
	Stddev float64
	N      int
}

// Table collects Points and renders figure-style text output.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	points []Point
}

// Add records an aggregated point.
func (t *Table) Add(p Point) { t.points = append(t.points, p) }

// AddSample aggregates a Sample into a point.
func (t *Table) AddSample(series string, x float64, s *Sample) {
	t.Add(Point{Series: series, X: x, Mean: s.Mean(), Stddev: s.Stddev(), N: s.N()})
}

// Points returns the recorded points in insertion order.
func (t *Table) Points() []Point { return append([]Point(nil), t.points...) }

// Series returns the distinct series names in first-appearance order.
func (t *Table) Series() []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range t.points {
		if !seen[p.Series] {
			seen[p.Series] = true
			names = append(names, p.Series)
		}
	}
	return names
}

// Lookup returns the point for (series, x), if present.
func (t *Table) Lookup(series string, x float64) (Point, bool) {
	for _, p := range t.points {
		if p.Series == series && p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

// xs returns the distinct X values in ascending order.
func (t *Table) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, p := range t.points {
		if !seen[p.X] {
			seen[p.X] = true
			xs = append(xs, p.X)
		}
	}
	sort.Float64s(xs)
	return xs
}

// Render formats the table as aligned text: one row per X, one
// mean±stddev column per series.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	series := t.Series()
	xl := t.XLabel
	if xl == "" {
		xl = "x"
	}
	header := []string{xl}
	header = append(header, series...)
	rows := [][]string{header}
	for _, x := range t.xs() {
		row := []string{formatX(x)}
		for _, s := range series {
			if p, ok := t.Lookup(s, x); ok {
				row = append(row, fmt.Sprintf("%s ± %s", FormatSig(p.Mean, 4), FormatSig(p.Stddev, 2)))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	if t.YLabel != "" {
		fmt.Fprintf(&b, "(values: %s)\n", t.YLabel)
	}
	return b.String()
}

// CSV renders the points as series,x,mean,stddev,n lines with a header.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,mean,stddev,n\n")
	for _, p := range t.points {
		fmt.Fprintf(&b, "%s,%v,%v,%v,%d\n", p.Series, p.X, p.Mean, p.Stddev, p.N)
	}
	return b.String()
}

func formatX(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// FormatSig formats v with the given number of significant digits.
func FormatSig(v float64, sig int) string {
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.*g", sig, v)
}

// Speedup returns base/over, or +Inf when over is zero; it is the paper's
// "Nx faster" metric for times, and over/base for bandwidths.
func Speedup(base, over float64) float64 {
	if over == 0 {
		return math.Inf(1)
	}
	return base / over
}
