package hdf_test

import (
	"sync"
	"testing"

	"plfs/internal/adio"
	"plfs/internal/hdf"
	"plfs/internal/localcomm"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

func runRanks(t *testing.T, n int, fn func(ctx plfs.Ctx, rank int)) {
	t.Helper()
	comms := localcomm.New(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(plfs.Ctx{
				Vols: []plfs.Backend{osfs.New()}, Rank: i,
				Host: i / 2, HostLeader: i%2 == 0, Comm: comms[i],
			}, i)
		}(i)
	}
	wg.Wait()
}

func TestHDFRoundtripOverUFSAndPLFS(t *testing.T) {
	for _, driver := range []string{"ufs", "plfs"} {
		driver := driver
		t.Run(driver, func(t *testing.T) {
			dir := t.TempDir()
			mount := plfs.NewMount([]string{t.TempDir()}, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 2})
			const n = 4
			const rows, cols = 8, 16 // per-rank slab: 2 rows
			defs := []hdf.DatasetDef{
				{Name: "pressure", Dims: []int64{rows, cols}, ElemSize: 8},
				{Name: "velocity", Dims: []int64{rows * cols}, ElemSize: 4},
			}
			open := func(ctx plfs.Ctx, mode adio.Mode) (adio.File, error) {
				if driver == "ufs" {
					return adio.UFS{}.Open(ctx, dir+"/data.mhdf", mode, adio.Hints{})
				}
				return adio.PLFS{Mount: mount}.Open(ctx, "data.mhdf", mode, adio.Hints{})
			}
			runRanks(t, n, func(ctx plfs.Ctx, rank int) {
				f, err := open(ctx, adio.WriteCreate)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				h, err := hdf.Create(hdf.CommCtx{Comm: ctx.Comm}, f, defs)
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				ds, err := h.Dataset("pressure")
				if err != nil {
					t.Error(err)
					return
				}
				// Rank r writes rows [2r, 2r+2).
				start := []int64{int64(rank) * 2, 0}
				count := []int64{2, cols}
				nbytes := 2 * cols * 8
				if err := ds.WriteSlab(start, count, payload.Synthetic(uint64(rank+1), 0, int64(nbytes))); err != nil {
					t.Error(err)
				}
				if err := f.Close(); err != nil {
					t.Error(err)
				}

				rf, err := open(ctx, adio.ReadOnly)
				if err != nil {
					t.Errorf("reopen: %v", err)
					return
				}
				defer rf.Close()
				h2, err := hdf.Open(rf)
				if err != nil {
					t.Errorf("hdf open: %v", err)
					return
				}
				if got := len(h2.Datasets()); got != 2 {
					t.Errorf("datasets = %d", got)
				}
				ds2, err := h2.Dataset("pressure")
				if err != nil {
					t.Error(err)
					return
				}
				// Read a neighbor's slab and verify its pattern.
				peer := (rank + 1) % n
				got, err := ds2.ReadSlab([]int64{int64(peer) * 2, 0}, []int64{2, cols})
				if err != nil {
					t.Error(err)
					return
				}
				want := payload.List{payload.Synthetic(uint64(peer+1), 0, int64(nbytes))}
				if !payload.ContentEqual(got, want) {
					t.Errorf("rank %d read of peer %d slab mismatch", rank, peer)
				}
			})
		})
	}
}

func TestHDFNonContiguousSlab(t *testing.T) {
	dir := t.TempDir()
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		f, _ := adio.UFS{}.Open(ctx, dir+"/s.mhdf", adio.WriteCreate, adio.Hints{})
		h, err := hdf.Create(hdf.CommCtx{}, f, []hdf.DatasetDef{{Name: "m", Dims: []int64{4, 8}, ElemSize: 1}})
		if err != nil {
			t.Fatal(err)
		}
		ds, _ := h.Dataset("m")
		// Column slab: 4 rows × 2 cols at col 3 — 4 separate runs.
		pay := payload.Synthetic(9, 0, 8)
		if err := ds.WriteSlab([]int64{0, 3}, []int64{4, 2}, pay); err != nil {
			t.Fatal(err)
		}
		got, err := ds.ReadSlab([]int64{0, 3}, []int64{4, 2})
		if err != nil {
			t.Fatal(err)
		}
		if !payload.ContentEqual(got, payload.List{pay}) {
			t.Fatal("column slab roundtrip mismatch")
		}
		// The untouched region must read as zeros.
		z, _ := ds.ReadSlab([]int64{0, 0}, []int64{4, 3})
		for _, b := range z.Materialize() {
			if b != 0 {
				t.Fatal("untouched region nonzero")
			}
		}
		f.Close()
	})
}

func TestHDFErrors(t *testing.T) {
	dir := t.TempDir()
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		f, _ := adio.UFS{}.Open(ctx, dir+"/e.mhdf", adio.WriteCreate, adio.Hints{})
		h, _ := hdf.Create(hdf.CommCtx{}, f, []hdf.DatasetDef{{Name: "d", Dims: []int64{4}, ElemSize: 4}})
		ds, _ := h.Dataset("d")
		if _, err := h.Dataset("missing"); err == nil {
			t.Error("missing dataset lookup succeeded")
		}
		if err := ds.WriteSlab([]int64{2}, []int64{4}, payload.Zeros(16)); err == nil {
			t.Error("out-of-bounds slab accepted")
		}
		if err := ds.WriteSlab([]int64{0}, []int64{2}, payload.Zeros(4)); err == nil {
			t.Error("wrong payload size accepted")
		}
		f.Close()
		// Reading a non-HDF file must fail cleanly.
		g, _ := adio.UFS{}.Open(ctx, dir+"/junk", adio.WriteCreate, adio.Hints{})
		g.WriteAt(0, payload.Zeros(hdf.HeaderSize))
		g.Close()
		r, _ := adio.UFS{}.Open(ctx, dir+"/junk", adio.ReadOnly, adio.Hints{})
		defer r.Close()
		if _, err := hdf.Open(r); err == nil {
			t.Error("opened junk as HDF")
		}
	})
}
