// Package hdf is a minimal self-describing array-file format in the
// spirit of HDF5, implemented over the MPI-IO (adio) layer.
//
// The paper's ARAMCO seismic kernel "uses MPI-IO and HDF5"; what matters
// for I/O behaviour is the access pattern a formatting library dictates:
// a header region at the front of the file that every process reads at
// open, and per-process hyperslab accesses into row-major dataset extents
// behind it.  This package produces exactly those patterns while being a
// real, round-trippable format.
//
// Layout: a 4 KiB header (magic, dataset table) followed by each
// dataset's elements packed row-major, datasets in definition order.
package hdf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"plfs/internal/adio"
	"plfs/internal/payload"
	"plfs/internal/slab"
)

// Magic identifies mini-HDF files.
const Magic = 0x4D484446 // "MHDF"

// HeaderSize is the reserved header region.
const HeaderSize = 4096

// DatasetDef declares one dataset at file creation.
type DatasetDef struct {
	Name     string
	Dims     []int64 // row-major extents
	ElemSize int64   // bytes per element
}

// elements returns the total element count.
func (d DatasetDef) elements() int64 {
	n := int64(1)
	for _, x := range d.Dims {
		n *= x
	}
	return n
}

// Bytes returns the dataset's byte size.
func (d DatasetDef) Bytes() int64 { return d.elements() * d.ElemSize }

// File is an open mini-HDF file.
type File struct {
	f       adio.File
	defs    []DatasetDef
	offsets []int64 // file offset of each dataset
	writing bool
}

// Create initializes a new mini-HDF file on f with the given datasets.
// Collective when ctx.Comm is set: rank 0 writes the header, everyone
// else synchronizes — the "shared header" pattern of real formatting
// libraries.
func Create(ctx CommCtx, f adio.File, defs []DatasetDef) (*File, error) {
	if len(defs) == 0 {
		return nil, errors.New("hdf: no datasets")
	}
	h := &File{f: f, defs: defs, writing: true}
	h.computeOffsets()
	hdr := encodeHeader(defs)
	if len(hdr) > HeaderSize {
		return nil, fmt.Errorf("hdf: header overflow (%d datasets)", len(defs))
	}
	if ctx.Comm == nil || ctx.Comm.Rank() == 0 {
		if err := f.WriteAt(0, payload.FromBytes(hdr)); err != nil {
			return nil, err
		}
	}
	if ctx.Comm != nil {
		ctx.Comm.Barrier()
	}
	return h, nil
}

// CommCtx carries the (optional) communicator for collective header
// handling; adio files already hold their own context for data.
type CommCtx struct {
	Comm interface {
		Rank() int
		Size() int
		Barrier()
	}
}

// Open reads an existing mini-HDF file's header.  Every caller reads the
// header region (the pattern that makes shared-header formats
// metadata-hot at scale).
func Open(f adio.File) (*File, error) {
	pl, err := f.ReadAt(0, HeaderSize)
	if err != nil {
		return nil, err
	}
	defs, err := decodeHeader(pl.Materialize())
	if err != nil {
		return nil, err
	}
	h := &File{f: f, defs: defs}
	h.computeOffsets()
	return h, nil
}

func (h *File) computeOffsets() {
	h.offsets = make([]int64, len(h.defs))
	off := int64(HeaderSize)
	for i, d := range h.defs {
		h.offsets[i] = off
		off += d.Bytes()
	}
}

// Datasets lists the dataset definitions.
func (h *File) Datasets() []DatasetDef { return append([]DatasetDef(nil), h.defs...) }

// Dataset returns a handle by name.
func (h *File) Dataset(name string) (*Dataset, error) {
	for i, d := range h.defs {
		if d.Name == name {
			return &Dataset{file: h, def: d, base: h.offsets[i]}, nil
		}
	}
	return nil, fmt.Errorf("hdf: no dataset %q", name)
}

// Dataset is a handle on one array.
type Dataset struct {
	file *File
	def  DatasetDef
	base int64
}

// Def returns the dataset definition.
func (d *Dataset) Def() DatasetDef { return d.def }

// slabRuns decomposes the hyperslab [start, start+count) into contiguous
// file runs (byte offset, elements).
func (d *Dataset) slabRuns(start, count []int64, emit func(off, elems int64)) error {
	return slab.Runs(d.def.Dims, start, count, func(off, elems int64) {
		emit(d.base+off*d.def.ElemSize, elems)
	})
}

// WriteSlab writes the hyperslab [start, start+count) from p (row-major).
func (d *Dataset) WriteSlab(start, count []int64, p payload.Payload) error {
	if !d.file.writing {
		return errors.New("hdf: file opened read-only")
	}
	var need int64 = d.def.ElemSize
	for _, c := range count {
		need *= c
	}
	if p.Len() != need {
		return fmt.Errorf("hdf: slab payload is %d bytes, want %d", p.Len(), need)
	}
	var pos int64
	var werr error
	err := d.slabRuns(start, count, func(off, elems int64) {
		if werr != nil {
			return
		}
		n := elems * d.def.ElemSize
		werr = d.file.f.WriteAt(off, p.Slice(pos, n))
		pos += n
	})
	if err != nil {
		return err
	}
	return werr
}

// ReadSlab reads the hyperslab [start, start+count).
func (d *Dataset) ReadSlab(start, count []int64) (payload.List, error) {
	var out payload.List
	var rerr error
	err := d.slabRuns(start, count, func(off, elems int64) {
		if rerr != nil {
			return
		}
		pl, err := d.file.f.ReadAt(off, elems*d.def.ElemSize)
		if err != nil {
			rerr = err
			return
		}
		out = out.Concat(pl)
	})
	if err != nil {
		return nil, err
	}
	return out, rerr
}

// TotalBytes returns the file's data size (header excluded).
func (h *File) TotalBytes() int64 {
	var n int64
	for _, d := range h.defs {
		n += d.Bytes()
	}
	return n
}

func encodeHeader(defs []DatasetDef) []byte {
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], Magic)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(defs)))
	buf = append(buf, tmp[:4]...)
	for _, d := range defs {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(d.Name)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, d.Name...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(d.ElemSize))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(d.Dims)))
		buf = append(buf, tmp[:4]...)
		for _, x := range d.Dims {
			binary.LittleEndian.PutUint64(tmp[:], uint64(x))
			buf = append(buf, tmp[:]...)
		}
	}
	return buf
}

func decodeHeader(data []byte) ([]DatasetDef, error) {
	bad := errors.New("hdf: corrupt header")
	u32 := func() (uint32, bool) {
		if len(data) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data)
		data = data[4:]
		return v, true
	}
	magic, ok := u32()
	if !ok || magic != Magic {
		return nil, fmt.Errorf("hdf: bad magic %#x", magic)
	}
	n, ok := u32()
	if !ok || n > 4096 {
		return nil, bad
	}
	defs := make([]DatasetDef, 0, n)
	for i := uint32(0); i < n; i++ {
		nl, ok := u32()
		if !ok || int(nl) > len(data) {
			return nil, bad
		}
		name := string(data[:nl])
		data = data[nl:]
		es, ok1 := u32()
		nd, ok2 := u32()
		if !ok1 || !ok2 || int(nd)*8 > len(data) {
			return nil, bad
		}
		dims := make([]int64, nd)
		for j := range dims {
			dims[j] = int64(binary.LittleEndian.Uint64(data))
			data = data[8:]
		}
		defs = append(defs, DatasetDef{Name: name, Dims: dims, ElemSize: int64(es)})
	}
	return defs, nil
}
