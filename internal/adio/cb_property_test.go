package adio_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"plfs/internal/adio"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestCollectiveBufferingMatchesOracle drives random collective write
// rounds through the two-phase layer and checks the final file against a
// byte oracle: whatever the exchange/aggregation does internally, the
// bytes must land exactly where each rank logically wrote them.
func TestCollectiveBufferingMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)      // ranks
		ppn := 1 + rng.Intn(n)    // node width
		rounds := 1 + rng.Intn(5) // collective rounds
		const fileMax = 1 << 14
		dir := t.TempDir()
		hints := adio.Hints{CollectiveBuffering: true, ProcsPerNode: ppn}

		// Precompute each rank's write plan: one (offset, block) per round,
		// disjoint across (rank, round) pairs.
		blockSize := int64(32 + rng.Intn(100))
		nBlocks := fileMax / int(blockSize)
		if nBlocks < n*rounds {
			return true // degenerate geometry; skip
		}
		perm := rng.Perm(nBlocks)
		offs := make([][]int64, n)
		data := make([][][]byte, n)
		oracle := make([]byte, fileMax)
		var size int64
		k := 0
		for r := 0; r < n; r++ {
			offs[r] = make([]int64, rounds)
			data[r] = make([][]byte, rounds)
			for q := 0; q < rounds; q++ {
				off := int64(perm[k]) * blockSize
				k++
				b := make([]byte, blockSize)
				rng.Read(b)
				offs[r][q], data[r][q] = off, b
				copy(oracle[off:], b)
				if off+blockSize > size {
					size = off + blockSize
				}
			}
		}
		ok := true
		runRanks(t, n, func(ctx plfs.Ctx, rank int) {
			ctx.Host = rank / ppn
			ctx.HostLeader = rank%ppn == 0
			fh, err := adio.UFS{}.Open(ctx, dir+"/cbprop", adio.WriteCreate, hints)
			if err != nil {
				t.Error(err)
				ok = false
				return
			}
			for q := 0; q < rounds; q++ {
				if err := fh.WriteAtAll(offs[rank][q], payload.FromBytes(data[rank][q])); err != nil {
					t.Error(err)
					ok = false
				}
			}
			if err := fh.Close(); err != nil {
				t.Error(err)
				ok = false
			}
		})
		if !ok {
			return false
		}
		// Verify with a plain reader.
		var match bool
		runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
			r, err := adio.UFS{}.Open(ctx, dir+"/cbprop", adio.ReadOnly, adio.Hints{})
			if err != nil {
				t.Error(err)
				return
			}
			defer r.Close()
			got, err := r.ReadAt(0, size)
			if err != nil {
				t.Error(err)
				return
			}
			match = bytes.Equal(got.Materialize(), oracle[:size])
		})
		return match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
