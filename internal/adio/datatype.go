package adio

import (
	"fmt"

	"plfs/internal/extent"
)

// Seg is one contiguous (offset, length) extent of a flattened access —
// the currency of list I/O.  It aliases extent.Ext so adio, plfs, and the
// backends exchange segment lists without conversion.
type Seg = extent.Ext

// Datatype describes a (possibly noncontiguous) file access pattern, after
// MPI derived datatypes: a tree of contiguous runs, strided vectors, and
// irregular indexed blocks, nestable to any depth.  Callers hand a whole
// pattern to WriteAll/ReadAll in one call; the layer flattens it once and
// chooses a transformation (naive, data sieving, list I/O, two-phase)
// according to the open hints.
//
// A Datatype is immutable after construction and safe to share between
// ranks and goroutines.
type Datatype struct {
	kind   dtKind
	length int64     // contig: byte count; vector/indexed blocklen when elem == nil
	count  int64     // vector: replication count
	stride int64     // vector: displacement between consecutive blocks
	elem   *Datatype // vector/indexed element type (nil = raw bytes)
	segs   []Seg     // indexed: displacements (+ lengths when elem == nil)

	size    int64 // total data bytes
	extent  int64 // span from relative offset 0 to the last byte + 1
	maxSegs int   // flattened segment count before adjacency merging
}

type dtKind uint8

const (
	dtContig dtKind = iota
	dtVector
	dtIndexed
)

// Contig describes n contiguous bytes.
func Contig(n int64) *Datatype {
	if n < 0 {
		panic("adio: negative datatype length")
	}
	return &Datatype{kind: dtContig, length: n, size: n, extent: n, maxSegs: 1}
}

// Vector describes count blocks of blocklen bytes whose starts are stride
// bytes apart — the strided access of row/column-decomposed arrays.
// stride may equal blocklen (degenerating to a contiguous run) but must
// not be negative.
func Vector(count int, blocklen, stride int64) *Datatype {
	return VectorOf(count, Contig(blocklen), stride)
}

// VectorOf is Vector with an arbitrary element type: count copies of elem
// placed stride bytes apart.  Nesting VectorOf builds multi-dimensional
// block decompositions.
func VectorOf(count int, elem *Datatype, stride int64) *Datatype {
	if count < 0 || stride < 0 {
		panic("adio: negative vector count or stride")
	}
	if elem == nil {
		elem = Contig(0)
	}
	t := &Datatype{kind: dtVector, count: int64(count), stride: stride, elem: elem}
	t.size = int64(count) * elem.size
	if count > 0 {
		t.extent = int64(count-1)*stride + elem.extent
	}
	t.maxSegs = count * elem.maxSegs
	return t
}

// Indexed describes an irregular pattern: explicit (displacement, length)
// blocks of raw bytes, in the order given.  Blocks may appear in any
// offset order and may overlap; flattening preserves the given order, so
// overlap semantics match issuing the blocks as successive writes.
func Indexed(blocks []Seg) *Datatype {
	t := &Datatype{kind: dtIndexed, segs: append([]Seg(nil), blocks...)}
	for _, s := range blocks {
		if s.Off < 0 || s.Len < 0 {
			panic("adio: negative indexed block")
		}
		t.size += s.Len
		if end := s.End(); end > t.extent {
			t.extent = end
		}
		t.maxSegs++
	}
	return t
}

// IndexedOf places one copy of elem at each displacement, in the order
// given — an irregular pattern of structured elements.
func IndexedOf(disps []int64, elem *Datatype) *Datatype {
	if elem == nil {
		elem = Contig(0)
	}
	t := &Datatype{kind: dtIndexed, elem: elem, segs: make([]Seg, len(disps))}
	for i, d := range disps {
		if d < 0 {
			panic("adio: negative indexed displacement")
		}
		t.segs[i] = Seg{Off: d}
		t.size += elem.size
		if end := d + elem.extent; end > t.extent {
			t.extent = end
		}
		t.maxSegs += elem.maxSegs
	}
	return t
}

// Size returns the number of data bytes the datatype selects.
func (t *Datatype) Size() int64 { return t.size }

// Extent returns the span the datatype covers, from relative offset 0 to
// one past its last byte — the placement footprint, gaps included.
func (t *Datatype) Extent() int64 { return t.extent }

// MaxSegs bounds the flattened segment count (before adjacency merging);
// callers preallocate AppendSegs buffers with it.
func (t *Datatype) MaxSegs() int { return t.maxSegs }

// Contiguous reports whether the datatype selects one gap-free run — the
// (contig file) half of the four-quadrant taxonomy.  It is a hint: the
// flattened form of a contiguous datatype is a single segment either way.
func (t *Datatype) Contiguous() bool { return t.size == t.extent }

// AppendSegs appends the datatype's flattened (offset, length) segments,
// each displaced by base, to dst and returns it.  Exactly-adjacent
// neighbors merge as they are emitted, so a contiguous datatype flattens
// to one segment.  The append order is the datatype's definition order —
// the order the equivalent naive per-block accesses would issue in.
//
// The flattener allocates nothing when dst has capacity (callers reuse
// buffers across calls; see BenchmarkFlatten).
func (t *Datatype) AppendSegs(dst []Seg, base int64) []Seg {
	switch t.kind {
	case dtContig:
		dst = appendSeg(dst, base, t.length)
	case dtVector:
		off := base
		for i := int64(0); i < t.count; i++ {
			dst = t.elem.AppendSegs(dst, off)
			off += t.stride
		}
	case dtIndexed:
		for _, s := range t.segs {
			if t.elem != nil {
				dst = t.elem.AppendSegs(dst, base+s.Off)
			} else {
				dst = appendSeg(dst, base+s.Off, s.Len)
			}
		}
	}
	return dst
}

// Segs is AppendSegs into a fresh, rightsized buffer.
func (t *Datatype) Segs(base int64) []Seg {
	return t.AppendSegs(make([]Seg, 0, t.maxSegs), base)
}

// appendSeg appends one segment, merging it into the previous segment
// when exactly adjacent.
func appendSeg(dst []Seg, off, n int64) []Seg {
	if n <= 0 {
		return dst
	}
	if k := len(dst) - 1; k >= 0 && dst[k].Off+dst[k].Len == off {
		dst[k].Len += n
		return dst
	}
	return append(dst, Seg{Off: off, Len: n})
}

// String renders a compact description for diagnostics.
func (t *Datatype) String() string {
	switch t.kind {
	case dtContig:
		return fmt.Sprintf("contig(%d)", t.length)
	case dtVector:
		return fmt.Sprintf("vector(%d x %s @ %d)", t.count, t.elem, t.stride)
	default:
		return fmt.Sprintf("indexed(%d blocks, %dB over %dB)", t.maxSegs, t.size, t.extent)
	}
}
