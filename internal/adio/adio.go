// Package adio implements an MPI-IO style abstract device interface
// (after ROMIO's ADIO): a uniform File API over interchangeable drivers,
// with hints and two-phase collective buffering.
//
// The paper adds a PLFS driver to MPI-IO's ADIO layer ("MPI provides an
// abstract device interface, ADIO, that we leverage to reroute I/O calls
// to the PLFS library"), which is what lets PLFS inherit communicators
// and run its collective index optimizations.  This package provides:
//
//   - the UFS driver: direct access to the underlying parallel file
//     system (the paper's "direct access" baseline);
//   - the PLFS driver: logical files routed through plfs.Mount;
//   - collective buffering (two-phase I/O): tiny strided accesses are
//     exchanged over the interconnect and issued as large contiguous
//     transfers by per-node aggregators, as the paper enables for the
//     LANL 3 kernel.
package adio

import (
	"errors"
	"fmt"
	"sort"

	"plfs/internal/comm"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Mode selects open semantics.
type Mode int

const (
	// ReadOnly opens an existing file for reading.
	ReadOnly Mode = iota
	// WriteCreate creates the file (rank 0) and opens it for writing
	// everywhere.  PLFS files do not support concurrent read-write access
	// (the paper modified IOR and MADbench accordingly).
	WriteCreate
)

// Hints mirror the MPI-IO info keys the paper's experiments use.
type Hints struct {
	// CollectiveBuffering enables two-phase I/O on the *AtAll calls.
	CollectiveBuffering bool
	// CBBufferSize caps each aggregator's per-round buffer (default 16 MiB).
	CBBufferSize int64
	// ProcsPerNode tells the layer how ranks map to nodes so aggregators
	// can be placed one per node (default 16).
	ProcsPerNode int
}

func (h Hints) withDefaults() Hints {
	if h.CBBufferSize <= 0 {
		h.CBBufferSize = 16 << 20
	}
	if h.ProcsPerNode <= 0 {
		h.ProcsPerNode = 16
	}
	return h
}

// File is an open MPI-IO file.
type File interface {
	// WriteAt / ReadAt are independent (non-collective) operations.
	WriteAt(off int64, p payload.Payload) error
	ReadAt(off, n int64) (payload.List, error)
	// WriteAtAll / ReadAtAll are collective: every rank of the opening
	// communicator must call them together.
	WriteAtAll(off int64, p payload.Payload) error
	ReadAtAll(off, n int64) (payload.List, error)
	// Size returns the file size (write handles report bytes seen so far).
	Size() int64
	// Close releases the file; collective when opened with a communicator.
	Close() error
}

// Driver opens files for a particular file system binding.
type Driver interface {
	Name() string
	Open(ctx plfs.Ctx, path string, mode Mode, hints Hints) (File, error)
}

// ---------------------------------------------------------------------
// UFS driver: direct access to the underlying parallel file system.

// UFS is the direct-access driver; vol selects which backend volume the
// path lives on.
type UFS struct {
	Vol int
}

// Name implements Driver.
func (UFS) Name() string { return "ufs" }

// Open implements Driver.
func (u UFS) Open(ctx plfs.Ctx, path string, mode Mode, hints Hints) (File, error) {
	hints = hints.withDefaults()
	b := ctx.Vols[u.Vol]
	var f plfs.File
	var err error
	switch mode {
	case ReadOnly:
		f, err = b.OpenRead(path)
	case WriteCreate:
		if ctx.Comm != nil {
			// Rank 0 creates; everyone else opens after the broadcast.
			var msg any
			if ctx.Comm.Rank() == 0 {
				f, err = b.Create(path)
				msg = errString(err)
			}
			if s := ctx.Comm.Bcast(0, 16, msg); s != nil {
				return nil, errors.New(s.(string))
			}
			if ctx.Comm.Rank() != 0 {
				f, err = b.OpenWrite(path)
			}
		} else {
			f, err = b.Create(path)
		}
	default:
		return nil, fmt.Errorf("adio: bad mode %d", mode)
	}
	if err != nil {
		return nil, err
	}
	base := &ufsFile{ctx: ctx, f: f, writable: mode == WriteCreate}
	return maybeCB(ctx, base, hints), nil
}

func errString(err error) any {
	if err == nil {
		return nil
	}
	return err.Error()
}

type ufsFile struct {
	ctx      plfs.Ctx
	f        plfs.File
	writable bool
	closed   bool
}

func (u *ufsFile) WriteAt(off int64, p payload.Payload) error {
	if !u.writable {
		return errors.New("adio: file opened read-only")
	}
	return u.f.WriteAt(off, p)
}

func (u *ufsFile) ReadAt(off, n int64) (payload.List, error) { return u.f.ReadAt(off, n) }

func (u *ufsFile) WriteAtAll(off int64, p payload.Payload) error {
	err := u.WriteAt(off, p)
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return err
}

func (u *ufsFile) ReadAtAll(off, n int64) (payload.List, error) {
	pl, err := u.ReadAt(off, n)
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return pl, err
}

func (u *ufsFile) Size() int64 { return u.f.Size() }

func (u *ufsFile) Close() error {
	if u.closed {
		return errors.New("adio: double close")
	}
	u.closed = true
	err := u.f.Close()
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return err
}

// ---------------------------------------------------------------------
// PLFS driver.

// PLFS routes logical files through a PLFS mount — the paper's ADIO
// driver contribution.
type PLFS struct {
	Mount *plfs.Mount
}

// Name implements Driver.
func (PLFS) Name() string { return "plfs" }

// Open implements Driver.
func (d PLFS) Open(ctx plfs.Ctx, path string, mode Mode, hints Hints) (File, error) {
	hints = hints.withDefaults()
	switch mode {
	case ReadOnly:
		r, err := d.Mount.OpenReader(ctx, path)
		if err != nil {
			return nil, err
		}
		return maybeCB(ctx, &plfsFile{ctx: ctx, r: r}, hints), nil
	case WriteCreate:
		w, err := d.Mount.Create(ctx, path)
		if err != nil {
			return nil, err
		}
		return maybeCB(ctx, &plfsFile{ctx: ctx, w: w}, hints), nil
	}
	return nil, fmt.Errorf("adio: bad mode %d", mode)
}

type plfsFile struct {
	ctx    plfs.Ctx
	w      *plfs.Writer
	r      *plfs.Reader
	size   int64
	closed bool
}

func (p *plfsFile) WriteAt(off int64, pl payload.Payload) error {
	if p.w == nil {
		return errors.New("adio: PLFS file not open for write")
	}
	if end := off + pl.Len(); end > p.size {
		p.size = end
	}
	return p.w.Write(off, pl)
}

func (p *plfsFile) ReadAt(off, n int64) (payload.List, error) {
	if p.r == nil {
		// PLFS does not support read-write mode on shared files (§IV.C.3).
		return nil, errors.New("adio: PLFS file not open for read")
	}
	return p.r.ReadAt(off, n)
}

func (p *plfsFile) WriteAtAll(off int64, pl payload.Payload) error {
	err := p.WriteAt(off, pl)
	if p.ctx.Comm != nil {
		p.ctx.Comm.Barrier()
	}
	return err
}

func (p *plfsFile) ReadAtAll(off, n int64) (payload.List, error) {
	out, err := p.ReadAt(off, n)
	if p.ctx.Comm != nil {
		p.ctx.Comm.Barrier()
	}
	return out, err
}

func (p *plfsFile) Size() int64 {
	if p.r != nil {
		return p.r.Size()
	}
	return p.size
}

func (p *plfsFile) Close() error {
	if p.closed {
		return errors.New("adio: double close")
	}
	p.closed = true
	if p.w != nil {
		return p.w.Close()
	}
	return p.r.Close()
}

// ---------------------------------------------------------------------
// Collective buffering (two-phase I/O).

func maybeCB(ctx plfs.Ctx, f File, hints Hints) File {
	if !hints.CollectiveBuffering || ctx.Comm == nil || ctx.Comm.Size() == 1 {
		return f
	}
	return newCBFile(ctx, f, hints)
}

// cbFile layers two-phase collective buffering over any driver file.
// Aggregators are the lowest rank on each node; collective accesses are
// exchanged over the interconnect (node-local gather, then an aggregator
// alltoall) and issued to the file system as large contiguous operations
// on per-aggregator file domains.
type cbFile struct {
	ctx   plfs.Ctx
	inner File
	hints Hints

	nodeComm comm.Comm // ranks sharing my node
	aggComm  comm.Comm // aggregators (node leaders)
	isAgg    bool
	nAggs    int
	size     int64
}

func newCBFile(ctx plfs.Ctx, inner File, hints Hints) *cbFile {
	c := ctx.Comm
	node := c.Rank() / hints.ProcsPerNode
	nodeComm := c.Split(node, c.Rank())
	isAgg := nodeComm.Rank() == 0
	color := 0
	if !isAgg {
		color = 1 + node
	}
	aggComm := c.Split(color, c.Rank())
	nAggs := (c.Size() + hints.ProcsPerNode - 1) / hints.ProcsPerNode
	return &cbFile{
		ctx: ctx, inner: inner, hints: hints,
		nodeComm: nodeComm, aggComm: aggComm, isAgg: isAgg, nAggs: nAggs,
	}
}

type cbPiece struct {
	Off int64
	P   payload.Payload
}

// domains partitions [lo, hi) evenly across aggregators.
func domains(lo, hi int64, n int) []int64 {
	bounds := make([]int64, n+1)
	span := hi - lo
	for i := 0; i <= n; i++ {
		bounds[i] = lo + span*int64(i)/int64(n)
	}
	return bounds
}

func (f *cbFile) WriteAt(off int64, p payload.Payload) error { return f.inner.WriteAt(off, p) }
func (f *cbFile) ReadAt(off, n int64) (payload.List, error)  { return f.inner.ReadAt(off, n) }

// WriteAtAll performs a two-phase collective write.
func (f *cbFile) WriteAtAll(off int64, p payload.Payload) error {
	if end := off + p.Len(); end > f.size {
		f.size = end
	}
	// Phase 0: node-local gather of pieces to the node aggregator.
	pieces := f.nodeComm.Gather(0, p.Len()+16, cbPiece{off, p})
	if !f.isAgg {
		f.nodeComm.Barrier() // wait for aggregators to finish the round
		return nil
	}
	// Compute the global extent among aggregators.
	var lo, hi int64 = 1 << 62, -1
	mine := make([]cbPiece, 0, len(pieces))
	for _, v := range pieces {
		pc := v.(cbPiece)
		mine = append(mine, pc)
		if pc.Off < lo {
			lo = pc.Off
		}
		if end := pc.Off + pc.P.Len(); end > hi {
			hi = end
		}
	}
	exts := f.aggComm.Allgather(16, [2]int64{lo, hi})
	for _, v := range exts {
		e := v.([2]int64)
		if e[0] < lo {
			lo = e[0]
		}
		if e[1] > hi {
			hi = e[1]
		}
	}
	if hi <= lo {
		f.nodeComm.Barrier()
		return nil
	}
	// Phase 1: exchange pieces so each aggregator holds its file domain.
	bounds := domains(lo, hi, f.nAggs)
	na := f.aggComm.Size()
	outgoing := make([][]cbPiece, na)
	var outBytes []int64 = make([]int64, na)
	for _, pc := range mine {
		splitPieceByDomain(pc, bounds, func(d int, sub cbPiece) {
			if d >= na {
				d = na - 1
			}
			outgoing[d] = append(outgoing[d], sub)
			outBytes[d] += sub.P.Len() + 16
		})
	}
	vs := make([]any, na)
	for i := range vs {
		vs[i] = outgoing[i]
	}
	recv := f.aggComm.Alltoall(outBytes, vs)
	// Phase 2: issue large contiguous writes for my domain.
	var domainPieces []cbPiece
	for _, v := range recv {
		domainPieces = append(domainPieces, v.([]cbPiece)...)
	}
	if err := f.writeCoalesced(domainPieces); err != nil {
		f.nodeComm.Barrier()
		return err
	}
	f.nodeComm.Barrier()
	return nil
}

// writeCoalesced sorts the domain's pieces and issues them as maximal
// contiguous runs, respecting the CB buffer size.
func (f *cbFile) writeCoalesced(pieces []cbPiece) error {
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].Off < pieces[j].Off })
	var runStart int64
	var run payload.List
	flush := func() error {
		if run.Len() == 0 {
			return nil
		}
		for _, seg := range run {
			if err := f.inner.WriteAt(runStart, seg); err != nil {
				return err
			}
			runStart += seg.Len()
		}
		run = nil
		return nil
	}
	for _, pc := range pieces {
		end := runStart + run.Len()
		if run.Len() == 0 || pc.Off != end || run.Len()+pc.P.Len() > f.hints.CBBufferSize {
			if err := flush(); err != nil {
				return err
			}
			runStart = pc.Off
		}
		run = run.Append(pc.P)
	}
	return flush()
}

// ReadAtAll performs a two-phase collective read.
func (f *cbFile) ReadAtAll(off, n int64) (payload.List, error) {
	// Phase 0: gather requests at the node aggregator.
	reqs := f.nodeComm.Gather(0, 16, [2]int64{off, n})
	var err error
	if f.isAgg {
		// Aggregators compute the global extent.
		var lo, hi int64 = 1 << 62, -1
		for _, v := range reqs {
			r := v.([2]int64)
			if r[0] < lo {
				lo = r[0]
			}
			if end := r[0] + r[1]; end > hi {
				hi = end
			}
		}
		exts := f.aggComm.Allgather(16, [2]int64{lo, hi})
		for _, v := range exts {
			e := v.([2]int64)
			if e[0] < lo {
				lo = e[0]
			}
			if e[1] > hi {
				hi = e[1]
			}
		}
		if hi > lo {
			// Phase 1: read my domain contiguously.
			bounds := domains(lo, hi, f.nAggs)
			me := f.aggComm.Rank()
			dlo, dhi := bounds[me], bounds[min(me+1, len(bounds)-1)]
			var domain payload.List
			if dhi > dlo {
				domain, err = f.inner.ReadAt(dlo, dhi-dlo)
			}
			// Phase 2: aggregator alltoall so each aggregator holds the
			// bytes its node's ranks asked for.
			type domainChunk struct {
				Lo int64
				Pl payload.List
			}
			na := f.aggComm.Size()
			vs := make([]any, na)
			nb := make([]int64, na)
			// Every aggregator needs the slices of my domain overlapping
			// its node's requests; send the whole domain (requests are
			// typically dense in checkpoint restores).
			for i := range vs {
				vs[i] = domainChunk{dlo, domain}
				nb[i] = domain.Len()
			}
			recv := f.aggComm.Alltoall(nb, vs)
			// Assemble the file range needed by my node's ranks.
			assembled := make(map[int]payload.List, len(reqs))
			for ri, v := range reqs {
				r := v.([2]int64)
				var out payload.List
				cur := r[0]
				for cur < r[0]+r[1] {
					found := false
					for _, dv := range recv {
						dc := dv.(domainChunk)
						dEnd := dc.Lo + dc.Pl.Len()
						if cur >= dc.Lo && cur < dEnd {
							take := min64(dEnd-cur, r[0]+r[1]-cur)
							out = out.Concat(dc.Pl.Slice(cur-dc.Lo, take))
							cur += take
							found = true
							break
						}
					}
					if !found {
						out = out.Append(payload.Zeros(r[0] + r[1] - cur))
						cur = r[0] + r[1]
					}
				}
				assembled[ri] = out
			}
			// Phase 3: scatter results back within the node.
			outs := make([]any, f.nodeComm.Size())
			var per int64
			for ri := range outs {
				outs[ri] = assembled[ri]
				per += assembled[ri].Len()
			}
			got := f.nodeComm.Scatter(0, per/int64(len(outs))+1, outs)
			return got.(payload.List), err
		}
	}
	if !f.isAgg {
		got := f.nodeComm.Scatter(0, n, nil)
		return got.(payload.List), nil
	}
	// Degenerate empty extent.
	outs := make([]any, f.nodeComm.Size())
	for i := range outs {
		outs[i] = payload.List(nil)
	}
	got := f.nodeComm.Scatter(0, 0, outs)
	return got.(payload.List), nil
}

func (f *cbFile) Size() int64 {
	if s := f.inner.Size(); s > f.size {
		return s
	}
	return f.size
}

func (f *cbFile) Close() error { return f.inner.Close() }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// splitPieceByDomain cuts a piece at domain boundaries.
func splitPieceByDomain(pc cbPiece, bounds []int64, emit func(d int, sub cbPiece)) {
	off, p := pc.Off, pc.P
	for p.Len() > 0 {
		// Find the domain containing off.
		d := sort.Search(len(bounds)-1, func(i int) bool { return bounds[i+1] > off })
		if d >= len(bounds)-1 {
			d = len(bounds) - 2
		}
		end := bounds[d+1]
		take := p.Len()
		if off+take > end && end > off {
			take = end - off
		}
		emit(d, cbPiece{off, p.Slice(0, take)})
		p = p.Slice(take, p.Len()-take)
		off += take
	}
}
