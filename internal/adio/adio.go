// Package adio implements an MPI-IO style abstract device interface
// (after ROMIO's ADIO): a uniform File API over interchangeable drivers,
// with hints and two-phase collective buffering.
//
// The paper adds a PLFS driver to MPI-IO's ADIO layer ("MPI provides an
// abstract device interface, ADIO, that we leverage to reroute I/O calls
// to the PLFS library"), which is what lets PLFS inherit communicators
// and run its collective index optimizations.  This package provides:
//
//   - the UFS driver: direct access to the underlying parallel file
//     system (the paper's "direct access" baseline);
//   - the PLFS driver: logical files routed through plfs.Mount;
//   - collective buffering (two-phase I/O): tiny strided accesses are
//     exchanged over the interconnect and issued as large contiguous
//     transfers by per-node aggregators, as the paper enables for the
//     LANL 3 kernel.
package adio

import (
	"errors"
	"fmt"

	"plfs/internal/comm"
	"plfs/internal/extent"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Mode selects open semantics.
type Mode int

const (
	// ReadOnly opens an existing file for reading.
	ReadOnly Mode = iota
	// WriteCreate creates the file (rank 0) and opens it for writing
	// everywhere.  PLFS files do not support concurrent read-write access
	// (the paper modified IOR and MADbench accordingly).
	WriteCreate
)

// Hints mirror the MPI-IO info keys the paper's experiments use.
type Hints struct {
	// CollectiveBuffering enables two-phase I/O on the *AtAll calls.
	// It is normalized against IOMethod by withDefaults; after opening,
	// it is true exactly when the effective method is MethodTwoPhase.
	CollectiveBuffering bool
	// CBBufferSize caps each aggregator's per-round buffer (default 16 MiB).
	CBBufferSize int64
	// ProcsPerNode tells the layer how ranks map to nodes so aggregators
	// can be placed one per node (default 16).
	ProcsPerNode int
	// IOMethod picks the noncontiguous transformation (default MethodAuto:
	// two-phase when CollectiveBuffering is set, list I/O otherwise).
	IOMethod IOMethod
	// SieveGap is the largest gap (bytes) data sieving bridges when
	// coalescing segments into one RMW window (default 64 KiB).
	SieveGap int64
	// SieveBuf caps a sieving window's covering extent (default 4 MiB).
	SieveBuf int64
}

// withDefaults is the single place hints are normalized — every driver
// calls it exactly once at Open, so no other code may reinterpret raw
// hint values.  Resolution order: explicit IOMethod wins; MethodAuto
// derives from CollectiveBuffering; then CollectiveBuffering is rewritten
// to agree with the method, which is what maybeCB keys on.
func (h Hints) withDefaults() Hints {
	if h.CBBufferSize <= 0 {
		h.CBBufferSize = 16 << 20
	}
	if h.ProcsPerNode <= 0 {
		h.ProcsPerNode = 16
	}
	if h.IOMethod == MethodAuto {
		if h.CollectiveBuffering {
			h.IOMethod = MethodTwoPhase
		} else {
			h.IOMethod = MethodList
		}
	}
	h.CollectiveBuffering = h.IOMethod == MethodTwoPhase
	if h.SieveGap <= 0 {
		h.SieveGap = 64 << 10
	}
	if h.SieveBuf <= 0 {
		h.SieveBuf = 4 << 20
	}
	return h
}

// File is an open MPI-IO file.
type File interface {
	// WriteAt / ReadAt are independent (non-collective) operations.
	WriteAt(off int64, p payload.Payload) error
	ReadAt(off, n int64) (payload.List, error)
	// WriteAtv / ReadAtv are independent vectored operations: a whole
	// flattened access in one call, transformed per Hints.IOMethod.
	// data carries the segments' bytes concatenated in segment order;
	// ReadAtv returns them the same way (holes as zeros).
	WriteAtv(segs []Seg, data payload.List) error
	ReadAtv(segs []Seg) (payload.List, error)
	// WriteAtAll / ReadAtAll are collective: every rank of the opening
	// communicator must call them together.
	WriteAtAll(off int64, p payload.Payload) error
	ReadAtAll(off, n int64) (payload.List, error)
	// WriteAll / ReadAll are the collective datatype-driven forms: each
	// rank describes its whole access pattern (t placed at base) in one
	// call, enabling the two-phase exchange across pattern pieces.
	WriteAll(base int64, t *Datatype, data payload.List) error
	ReadAll(base int64, t *Datatype) (payload.List, error)
	// Size returns the file size (write handles report bytes seen so far).
	Size() int64
	// Close releases the file; collective when opened with a communicator.
	Close() error
}

// Driver opens files for a particular file system binding.
type Driver interface {
	Name() string
	Open(ctx plfs.Ctx, path string, mode Mode, hints Hints) (File, error)
}

// ---------------------------------------------------------------------
// UFS driver: direct access to the underlying parallel file system.

// UFS is the direct-access driver; vol selects which backend volume the
// path lives on.
type UFS struct {
	Vol int
}

// Name implements Driver.
func (UFS) Name() string { return "ufs" }

// Open implements Driver.
func (u UFS) Open(ctx plfs.Ctx, path string, mode Mode, hints Hints) (File, error) {
	hints = hints.withDefaults()
	b := ctx.Vols[u.Vol]
	var f plfs.File
	var err error
	switch mode {
	case ReadOnly:
		f, err = b.OpenRead(path)
	case WriteCreate:
		if ctx.Comm != nil {
			// Rank 0 creates; everyone else opens after the broadcast.
			var msg any
			if ctx.Comm.Rank() == 0 {
				f, err = b.Create(path)
				msg = errString(err)
			}
			if s := ctx.Comm.Bcast(0, 16, msg); s != nil {
				return nil, errors.New(s.(string))
			}
			if ctx.Comm.Rank() != 0 {
				f, err = b.OpenWrite(path)
			}
		} else {
			f, err = b.Create(path)
		}
	default:
		return nil, fmt.Errorf("adio: bad mode %d", mode)
	}
	if err != nil {
		return nil, err
	}
	base := &ufsFile{ctx: ctx, f: f, hints: hints, writable: mode == WriteCreate}
	return maybeCB(ctx, base, hints), nil
}

func errString(err error) any {
	if err == nil {
		return nil
	}
	return err.Error()
}

var (
	errNotWritable  = errors.New("adio: file opened read-only")
	errNotWriteOpen = errors.New("adio: PLFS file not open for write")
	errNotReadOpen  = errors.New("adio: PLFS file not open for read")
)

type ufsFile struct {
	ctx      plfs.Ctx
	f        plfs.File
	hints    Hints
	stats    IOStats
	writable bool
	closed   bool
}

func (u *ufsFile) WriteAt(off int64, p payload.Payload) error {
	if !u.writable {
		return errNotWritable
	}
	return u.f.WriteAt(off, p)
}

func (u *ufsFile) ReadAt(off, n int64) (payload.List, error) { return u.f.ReadAt(off, n) }

func (u *ufsFile) WriteAtAll(off int64, p payload.Payload) error {
	err := u.WriteAt(off, p)
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return err
}

func (u *ufsFile) ReadAtAll(off, n int64) (payload.List, error) {
	pl, err := u.ReadAt(off, n)
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return pl, err
}

func (u *ufsFile) Size() int64 { return u.f.Size() }

func (u *ufsFile) Close() error {
	if u.closed {
		return errors.New("adio: double close")
	}
	u.closed = true
	err := u.f.Close()
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return err
}

// ---------------------------------------------------------------------
// PLFS driver.

// PLFS routes logical files through a PLFS mount — the paper's ADIO
// driver contribution.
type PLFS struct {
	Mount *plfs.Mount
}

// Name implements Driver.
func (PLFS) Name() string { return "plfs" }

// Open implements Driver.
func (d PLFS) Open(ctx plfs.Ctx, path string, mode Mode, hints Hints) (File, error) {
	hints = hints.withDefaults()
	switch mode {
	case ReadOnly:
		r, err := d.Mount.OpenReader(ctx, path)
		if err != nil {
			return nil, err
		}
		return maybeCB(ctx, &plfsFile{ctx: ctx, r: r, hints: hints}, hints), nil
	case WriteCreate:
		w, err := d.Mount.Create(ctx, path)
		if err != nil {
			return nil, err
		}
		return maybeCB(ctx, &plfsFile{ctx: ctx, w: w, hints: hints}, hints), nil
	}
	return nil, fmt.Errorf("adio: bad mode %d", mode)
}

type plfsFile struct {
	ctx    plfs.Ctx
	w      *plfs.Writer
	r      *plfs.Reader
	hints  Hints
	stats  IOStats
	size   int64
	closed bool
}

func (p *plfsFile) WriteAt(off int64, pl payload.Payload) error {
	if p.w == nil {
		return errNotWriteOpen
	}
	if end := off + pl.Len(); end > p.size {
		p.size = end
	}
	return p.w.Write(off, pl)
}

func (p *plfsFile) ReadAt(off, n int64) (payload.List, error) {
	if p.r == nil {
		// PLFS does not support read-write mode on shared files (§IV.C.3).
		return nil, errNotReadOpen
	}
	return p.r.ReadAt(off, n)
}

func (p *plfsFile) WriteAtAll(off int64, pl payload.Payload) error {
	err := p.WriteAt(off, pl)
	if p.ctx.Comm != nil {
		p.ctx.Comm.Barrier()
	}
	return err
}

func (p *plfsFile) ReadAtAll(off, n int64) (payload.List, error) {
	out, err := p.ReadAt(off, n)
	if p.ctx.Comm != nil {
		p.ctx.Comm.Barrier()
	}
	return out, err
}

func (p *plfsFile) Size() int64 {
	if p.r != nil {
		return p.r.Size()
	}
	return p.size
}

func (p *plfsFile) Close() error {
	if p.closed {
		return errors.New("adio: double close")
	}
	p.closed = true
	if p.w != nil {
		return p.w.Close()
	}
	return p.r.Close()
}

// ---------------------------------------------------------------------
// Collective buffering (two-phase I/O).

func maybeCB(ctx plfs.Ctx, f File, hints Hints) File {
	if !hints.CollectiveBuffering || ctx.Comm == nil || ctx.Comm.Size() == 1 {
		return f
	}
	return newCBFile(ctx, f, hints)
}

// cbFile layers two-phase collective buffering over any driver file.
// Aggregators are the lowest rank on each node; collective accesses are
// exchanged over the interconnect (node-local gather, then an aggregator
// alltoall) and issued to the file system as large contiguous operations
// on per-aggregator file domains.
type cbFile struct {
	ctx   plfs.Ctx
	inner File
	hints Hints

	nodeComm comm.Comm // ranks sharing my node
	aggComm  comm.Comm // aggregators (node leaders)
	isAgg    bool
	nAggs    int
	size     int64
}

func newCBFile(ctx plfs.Ctx, inner File, hints Hints) *cbFile {
	c := ctx.Comm
	node := c.Rank() / hints.ProcsPerNode
	nodeComm := c.Split(node, c.Rank())
	isAgg := nodeComm.Rank() == 0
	color := 0
	if !isAgg {
		color = 1 + node
	}
	aggComm := c.Split(color, c.Rank())
	nAggs := (c.Size() + hints.ProcsPerNode - 1) / hints.ProcsPerNode
	return &cbFile{
		ctx: ctx, inner: inner, hints: hints,
		nodeComm: nodeComm, aggComm: aggComm, isAgg: isAgg, nAggs: nAggs,
	}
}

type cbPiece struct {
	Off int64
	P   payload.Payload
}

// domains partitions [lo, hi) evenly across aggregators.
func domains(lo, hi int64, n int) []int64 {
	bounds := make([]int64, n+1)
	span := hi - lo
	for i := 0; i <= n; i++ {
		bounds[i] = lo + span*int64(i)/int64(n)
	}
	return bounds
}

func (f *cbFile) WriteAt(off int64, p payload.Payload) error { return f.inner.WriteAt(off, p) }
func (f *cbFile) ReadAt(off, n int64) (payload.List, error)  { return f.inner.ReadAt(off, n) }

// WriteAtAll performs a two-phase collective write of one contiguous
// piece per rank.
func (f *cbFile) WriteAtAll(off int64, p payload.Payload) error {
	if end := off + p.Len(); end > f.size {
		f.size = end
	}
	return f.writeAllPieces([]cbPiece{{off, p}})
}

// writeAllPieces is the two-phase collective write over each rank's
// (possibly noncontiguous) piece list.
func (f *cbFile) writeAllPieces(rankPieces []cbPiece) error {
	var sendBytes int64 = 16
	for _, pc := range rankPieces {
		sendBytes += pc.P.Len() + 16
	}
	// Phase 0: node-local gather of pieces to the node aggregator.
	pieces := f.nodeComm.Gather(0, sendBytes, rankPieces)
	if !f.isAgg {
		f.nodeComm.Barrier() // wait for aggregators to finish the round
		return nil
	}
	// Compute the global extent among aggregators.
	var lo, hi int64 = 1 << 62, -1
	var mine []cbPiece
	for _, v := range pieces {
		for _, pc := range v.([]cbPiece) {
			mine = append(mine, pc)
			if pc.Off < lo {
				lo = pc.Off
			}
			if end := pc.Off + pc.P.Len(); end > hi {
				hi = end
			}
		}
	}
	exts := f.aggComm.Allgather(16, [2]int64{lo, hi})
	for _, v := range exts {
		e := v.([2]int64)
		if e[0] < lo {
			lo = e[0]
		}
		if e[1] > hi {
			hi = e[1]
		}
	}
	if hi <= lo {
		f.nodeComm.Barrier()
		return nil
	}
	// Phase 1: exchange pieces so each aggregator holds its file domain.
	bounds := domains(lo, hi, f.nAggs)
	na := f.aggComm.Size()
	outgoing := make([][]cbPiece, na)
	var outBytes []int64 = make([]int64, na)
	for _, pc := range mine {
		splitPieceByDomain(pc, bounds, func(d int, sub cbPiece) {
			if d >= na {
				d = na - 1
			}
			outgoing[d] = append(outgoing[d], sub)
			outBytes[d] += sub.P.Len() + 16
		})
	}
	vs := make([]any, na)
	for i := range vs {
		vs[i] = outgoing[i]
	}
	recv := f.aggComm.Alltoall(outBytes, vs)
	// Phase 2: issue large contiguous writes for my domain.
	var domainPieces []cbPiece
	for _, v := range recv {
		domainPieces = append(domainPieces, v.([]cbPiece)...)
	}
	if err := f.writeCoalesced(domainPieces); err != nil {
		f.nodeComm.Barrier()
		return err
	}
	f.nodeComm.Barrier()
	return nil
}

// writeCoalesced plans the domain's pieces into maximal contiguous runs
// (extent.Plan with gap 0, capped at the CB buffer size) and issues each
// run as one vectored write to the base file.  Overlapping pieces stay
// in one run and resolve through the overlay in ascending gather order.
func (f *cbFile) writeCoalesced(pieces []cbPiece) error {
	ext := func(i int) extent.Ext {
		return extent.Ext{Off: pieces[i].Off, Len: pieces[i].P.Len()}
	}
	for _, b := range extent.Plan(len(pieces), nil, ext, 0, f.hints.CBBufferSize) {
		var win payload.File
		for _, it := range b.Items {
			win.WriteAt(pieces[it].Off, pieces[it].P)
		}
		if err := f.inner.WriteAtv([]Seg{{Off: b.Off, Len: b.Len}}, win.ReadAt(b.Off, b.Len)); err != nil {
			return err
		}
	}
	return nil
}

// ReadAtAll performs a two-phase collective read of one contiguous
// extent per rank.
func (f *cbFile) ReadAtAll(off, n int64) (payload.List, error) {
	return f.readAllSegs([]Seg{{Off: off, Len: n}})
}

// readAllSegs is the two-phase collective read over each rank's
// (possibly noncontiguous) segment list; the result concatenates the
// rank's segments in order, holes as zeros.
func (f *cbFile) readAllSegs(segs []Seg) (payload.List, error) {
	// Phase 0: gather requests at the node aggregator.
	reqs := f.nodeComm.Gather(0, int64(len(segs))*16+16, segs)
	var err error
	if f.isAgg {
		// Aggregators compute the global extent.
		var lo, hi int64 = 1 << 62, -1
		for _, v := range reqs {
			for _, e := range v.([]Seg) {
				if e.Len <= 0 {
					continue
				}
				if e.Off < lo {
					lo = e.Off
				}
				if e.End() > hi {
					hi = e.End()
				}
			}
		}
		exts := f.aggComm.Allgather(16, [2]int64{lo, hi})
		for _, v := range exts {
			e := v.([2]int64)
			if e[0] < lo {
				lo = e[0]
			}
			if e[1] > hi {
				hi = e[1]
			}
		}
		if hi > lo {
			// Phase 1: read my domain contiguously.
			bounds := domains(lo, hi, f.nAggs)
			me := f.aggComm.Rank()
			dlo, dhi := bounds[me], bounds[min(me+1, len(bounds)-1)]
			var domain payload.List
			if dhi > dlo {
				domain, err = f.inner.ReadAt(dlo, dhi-dlo)
			}
			// Phase 2: aggregator alltoall so each aggregator holds the
			// bytes its node's ranks asked for.
			type domainChunk struct {
				Lo int64
				Pl payload.List
			}
			na := f.aggComm.Size()
			vs := make([]any, na)
			nb := make([]int64, na)
			// Every aggregator needs the slices of my domain overlapping
			// its node's requests; send the whole domain (requests are
			// typically dense in checkpoint restores).
			for i := range vs {
				vs[i] = domainChunk{dlo, domain}
				nb[i] = domain.Len()
			}
			recv := f.aggComm.Alltoall(nb, vs)
			// Assemble each segment a rank asked for from the domains.
			assemble := func(e Seg) payload.List {
				var out payload.List
				cur := e.Off
				for cur < e.End() {
					found := false
					for _, dv := range recv {
						dc := dv.(domainChunk)
						dEnd := dc.Lo + dc.Pl.Len()
						if cur >= dc.Lo && cur < dEnd {
							take := min64(dEnd-cur, e.End()-cur)
							out = out.Concat(dc.Pl.Slice(cur-dc.Lo, take))
							cur += take
							found = true
							break
						}
					}
					if !found {
						out = out.Append(payload.Zeros(e.End() - cur))
						cur = e.End()
					}
				}
				return out
			}
			assembled := make(map[int]payload.List, len(reqs))
			for ri, v := range reqs {
				var out payload.List
				for _, e := range v.([]Seg) {
					if e.Len <= 0 {
						continue
					}
					out = out.Concat(assemble(e))
				}
				assembled[ri] = out
			}
			// Phase 3: scatter results back within the node.
			outs := make([]any, f.nodeComm.Size())
			var per int64
			for ri := range outs {
				outs[ri] = assembled[ri]
				per += assembled[ri].Len()
			}
			got := f.nodeComm.Scatter(0, per/int64(len(outs))+1, outs)
			return got.(payload.List), err
		}
	}
	if !f.isAgg {
		got := f.nodeComm.Scatter(0, segTotal(segs), nil)
		return got.(payload.List), nil
	}
	// Degenerate empty extent.
	outs := make([]any, f.nodeComm.Size())
	for i := range outs {
		outs[i] = payload.List(nil)
	}
	got := f.nodeComm.Scatter(0, 0, outs)
	return got.(payload.List), nil
}

func (f *cbFile) Size() int64 {
	if s := f.inner.Size(); s > f.size {
		return s
	}
	return f.size
}

func (f *cbFile) Close() error { return f.inner.Close() }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// splitPieceByDomain cuts a piece at domain boundaries (extent.Split
// carries the clamping semantics; this only slices the payload along).
func splitPieceByDomain(pc cbPiece, bounds []int64, emit func(d int, sub cbPiece)) {
	extent.Split(extent.Ext{Off: pc.Off, Len: pc.P.Len()}, bounds, func(d int, sub extent.Ext) {
		emit(d, cbPiece{sub.Off, pc.P.Slice(sub.Off-pc.Off, sub.Len)})
	})
}
