package adio_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"plfs/internal/adio"
	"plfs/internal/obs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// randPattern builds a random datatype whose extent fits in region and
// whose flattened segments are pairwise disjoint (overlap semantics are
// pinned separately in TestSieveOverlapMatchesNaive).
func randPattern(rng *rand.Rand, region int64) *adio.Datatype {
	switch rng.Intn(4) {
	case 0: // contiguous run
		return adio.Contig(1 + rng.Int63n(region))
	case 1: // strided vector
		count := 1 + rng.Intn(8)
		stride := region / int64(count)
		bl := 1 + rng.Int63n(stride)
		return adio.Vector(count, bl, stride)
	case 2: // nested vector: rows of a 2-D tile
		outer := 1 + rng.Intn(4)
		ostride := region / int64(outer)
		inner := 1 + rng.Intn(3)
		istride := ostride / int64(inner)
		bl := 1 + rng.Int63n(max64(istride/2, 1))
		return adio.VectorOf(outer, adio.Vector(inner, bl, istride), ostride)
	default: // irregular: disjoint slots visited in shuffled order
		slots := 2 + rng.Intn(7)
		slot := region / int64(slots)
		blocks := make([]adio.Seg, 0, slots)
		for _, s := range rng.Perm(slots) {
			if rng.Intn(3) == 0 {
				continue // leave some slots empty
			}
			blocks = append(blocks, adio.Seg{Off: int64(s) * slot, Len: 1 + rng.Int63n(slot)})
		}
		if len(blocks) == 0 {
			blocks = append(blocks, adio.Seg{Off: 0, Len: 1})
		}
		return adio.Indexed(blocks)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// chop splits raw bytes into a payload list with random piece boundaries,
// so vectored paths see multi-piece data.
func chop(rng *rand.Rand, b []byte) payload.List {
	var out payload.List
	for len(b) > 0 {
		n := 1 + rng.Intn(len(b))
		out = out.Append(payload.FromBytes(append([]byte(nil), b[:n]...)))
		b = b[n:]
	}
	return out
}

// TestVectoredMatchesNaiveProperty is the round-trip property test of the
// noncontiguous engine: for random datatypes and payloads, WriteAll
// through every transformation (sieve, list, two-phase) must leave the
// file byte-identical to the naive per-segment writes, and ReadAtv must
// hand back exactly the written bytes — across {ufs, plfs} x {serial,
// collective} x {sieve on/off}, with ranks as goroutines (run under
// -race).
func TestVectoredMatchesNaiveProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const region = int64(4096)
		ok := true
		for _, n := range []int{1, 4} { // serial, collective
			// Per-rank patterns and payloads, disjoint regions across ranks.
			pats := make([]*adio.Datatype, n)
			raws := make([][]byte, n)
			oracle := make([]byte, int64(n)*region)
			var span int64
			for r := 0; r < n; r++ {
				pats[r] = randPattern(rng, region)
				raws[r] = make([]byte, pats[r].Size())
				rng.Read(raws[r])
				base := int64(r) * region
				var pos int64
				for _, e := range pats[r].Segs(base) {
					copy(oracle[e.Off:e.End()], raws[r][pos:pos+e.Len])
					pos += e.Len
					if e.End() > span {
						span = e.End()
					}
				}
			}
			for _, driver := range []string{"ufs", "plfs"} {
				for _, method := range []adio.IOMethod{adio.MethodSieve, adio.MethodList, adio.MethodTwoPhase} {
					if !checkOneCombo(t, rng, driver, method, n, region, span, pats, raws, oracle) {
						ok = false
					}
				}
			}
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// checkOneCombo writes the ranks' patterns twice — once through method,
// once naively — and checks both files against the byte oracle, plus the
// per-rank ReadAtv round-trip through the same method.
func checkOneCombo(t *testing.T, rng *rand.Rand, driver string, method adio.IOMethod,
	n int, region, span int64, pats []*adio.Datatype, raws [][]byte, oracle []byte) bool {
	t.Helper()
	var drv adio.Driver
	var methodPath, naivePath string
	switch driver {
	case "ufs":
		dir := t.TempDir()
		drv = adio.UFS{}
		methodPath, naivePath = dir+"/m", dir+"/naive"
	default:
		mount := plfs.NewMount([]string{t.TempDir()}, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 2})
		drv = adio.PLFS{Mount: mount}
		methodPath, naivePath = "m", "naive"
	}
	// Chop payloads up front: rand.Rand is not goroutine-safe, and the
	// per-rank goroutines below must not share it.
	chopped := make([]payload.List, n)
	for r := 0; r < n; r++ {
		chopped[r] = chop(rng, raws[r])
	}
	write := func(path string, h adio.Hints) bool {
		good := true
		runRanks(t, n, func(ctx plfs.Ctx, rank int) {
			f, err := drv.Open(ctx, path, adio.WriteCreate, h)
			if err != nil {
				t.Errorf("%s/%s n=%d open: %v", driver, h.IOMethod, n, err)
				good = false
				return
			}
			data := chopped[rank]
			if err := f.WriteAll(int64(rank)*region, pats[rank], data); err != nil {
				t.Errorf("%s/%s n=%d write: %v", driver, h.IOMethod, n, err)
				good = false
			}
			if err := f.Close(); err != nil {
				t.Errorf("%s/%s n=%d close: %v", driver, h.IOMethod, n, err)
				good = false
			}
		})
		return good
	}
	hints := adio.Hints{IOMethod: method, ProcsPerNode: 2, SieveGap: 256}
	if !write(methodPath, hints) || !write(naivePath, adio.Hints{IOMethod: adio.MethodNaive}) {
		return false
	}
	// Whole-file compare: method file == naive file == oracle.
	match := true
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		read := func(path string, h adio.Hints) []byte {
			f, err := drv.Open(ctx, path, adio.ReadOnly, h)
			if err != nil {
				t.Errorf("%s read open %s: %v", driver, path, err)
				return nil
			}
			defer f.Close()
			pl, err := f.ReadAt(0, span)
			if err != nil {
				t.Errorf("%s read %s: %v", driver, path, err)
				return nil
			}
			return pl.Materialize()
		}
		got := read(methodPath, hints)
		want := read(naivePath, adio.Hints{IOMethod: adio.MethodNaive})
		if got == nil || want == nil {
			match = false
			return
		}
		if !bytes.Equal(got, want) || !bytes.Equal(got, oracle[:span]) {
			t.Errorf("%s/%s n=%d: file diverges from naive/oracle", driver, method, n)
			match = false
		}
	})
	if !match {
		return false
	}
	// Per-rank vectored read round-trip through the same method.
	runRanks(t, n, func(ctx plfs.Ctx, rank int) {
		f, err := drv.Open(ctx, methodPath, adio.ReadOnly, hints)
		if err != nil {
			t.Errorf("%s/%s readv open: %v", driver, method, err)
			match = false
			return
		}
		defer f.Close()
		got, err := f.ReadAtv(pats[rank].Segs(int64(rank) * region))
		if err != nil {
			t.Errorf("%s/%s readv: %v", driver, method, err)
			match = false
			return
		}
		if !bytes.Equal(got.Materialize(), raws[rank]) {
			t.Errorf("%s/%s n=%d rank %d: ReadAtv round-trip mismatch", driver, method, n, rank)
			match = false
		}
	})
	return match
}

// TestSieveOverlapMatchesNaive pins the overlap semantics of write-side
// sieving: overlapping segments in one vectored call must resolve exactly
// as the equivalent naive write sequence (later segments win).
func TestSieveOverlapMatchesNaive(t *testing.T) {
	dir := t.TempDir()
	segs := []adio.Seg{{Off: 0, Len: 8}, {Off: 4, Len: 8}, {Off: 2, Len: 4}, {Off: 20, Len: 6}}
	raw := make([]byte, 26)
	for i := range raw {
		raw[i] = byte(i + 1)
	}
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		for _, v := range []struct {
			path string
			h    adio.Hints
		}{
			{"sieve", adio.Hints{IOMethod: adio.MethodSieve, SieveGap: 1 << 20}},
			{"naive", adio.Hints{IOMethod: adio.MethodNaive}},
		} {
			f, err := adio.UFS{}.Open(ctx, dir+"/"+v.path, adio.WriteCreate, v.h)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.WriteAtv(segs, payload.List{payload.FromBytes(raw)}); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		read := func(path string) []byte {
			f, err := adio.UFS{}.Open(ctx, dir+"/"+path, adio.ReadOnly, adio.Hints{})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			pl, err := f.ReadAt(0, 26)
			if err != nil {
				t.Fatal(err)
			}
			return pl.Materialize()
		}
		if got, want := read("sieve"), read("naive"); !bytes.Equal(got, want) {
			t.Errorf("sieved overlaps diverge from naive order:\n got %v\nwant %v", got, want)
		}
	})
}

// TestWriteSieveRMWPreservesGaps drives the write-sieving RMW directly:
// gap bytes inside a coalesced window must be reread and written back
// unchanged below EOF, must come back as zeros past EOF, and the
// amplification must be charged to IOStats and the obs counters.
func TestWriteSieveRMWPreservesGaps(t *testing.T) {
	dir := t.TempDir()
	reg := obs.New()
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		ctx.Obs = reg
		f, err := adio.UFS{}.Open(ctx, dir+"/rmw", adio.WriteCreate,
			adio.Hints{IOMethod: adio.MethodSieve, SieveGap: 4096})
		if err != nil {
			t.Fatal(err)
		}
		// Background bytes the RMW must preserve.
		bg := bytes.Repeat([]byte{0xAA}, 1000)
		if err := f.WriteAt(0, payload.FromBytes(bg)); err != nil {
			t.Fatal(err)
		}
		// Two segments 200 bytes apart coalesce into one RMW window
		// [100,350); the gap [150,300) is live file data.
		segs := []adio.Seg{{Off: 100, Len: 50}, {Off: 300, Len: 50}}
		if err := f.WriteAtv(segs, payload.List{payload.Synthetic(9, 0, 100)}); err != nil {
			t.Fatal(err)
		}
		st := adio.Stats(f)
		if st.SieveRMW != 1 {
			t.Errorf("SieveRMW = %d, want 1", st.SieveRMW)
		}
		if st.SieveReadBytes != 250 {
			t.Errorf("SieveReadBytes = %d, want 250", st.SieveReadBytes)
		}
		if st.SieveWasted != 150 {
			t.Errorf("SieveWasted = %d, want 150", st.SieveWasted)
		}
		// A window wholly past EOF: the gap is a hole and must stay zeros.
		past := []adio.Seg{{Off: 2000, Len: 50}, {Off: 2300, Len: 50}}
		if err := f.WriteAtv(past, payload.List{payload.Synthetic(9, 100, 100)}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if got, want := reg.Counter("plfs.write.sieve_rmw").Value(), int64(2); got != want {
			t.Errorf("obs sieve_rmw = %d, want %d", got, want)
		}
		if got := reg.Counter("plfs.write.sieve_read_bytes").Value(); got != 250+350 {
			t.Errorf("obs sieve_read_bytes = %d, want %d", got, 250+350)
		}
		r, err := adio.UFS{}.Open(ctx, dir+"/rmw", adio.ReadOnly, adio.Hints{})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		pl, err := r.ReadAt(0, 2350)
		if err != nil {
			t.Fatal(err)
		}
		got := pl.Materialize()
		for i := 150; i < 300; i++ {
			if got[i] != 0xAA {
				t.Fatalf("RMW clobbered live byte %d: %#x", i, got[i])
			}
		}
		for i := 2050; i < 2300; i++ {
			if got[i] != 0 {
				t.Fatalf("sieving invented nonzero data at %d: %#x", i, got[i])
			}
		}
	})
}

// TestListIOSingleBackendBatch asserts the O(1)-requests property of list
// I/O on a vectored-capable backend: K segments, one backend batch per
// call — against the naive baseline's K.
func TestListIOSingleBackendBatch(t *testing.T) {
	dir := t.TempDir()
	const k = 8
	segs := make([]adio.Seg, k)
	for i := range segs {
		segs[i] = adio.Seg{Off: int64(i) * 128, Len: 32}
	}
	data := payload.List{payload.Synthetic(3, 0, k*32)}
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		for _, v := range []struct {
			method      adio.IOMethod
			wantBatches int
		}{
			{adio.MethodList, 1},
			{adio.MethodNaive, k},
		} {
			f, err := adio.UFS{}.Open(ctx, fmt.Sprintf("%s/%s", dir, v.method), adio.WriteCreate,
				adio.Hints{IOMethod: v.method})
			if err != nil {
				t.Fatal(err)
			}
			if err := f.WriteAtv(segs, data); err != nil {
				t.Fatal(err)
			}
			st := adio.Stats(f)
			if st.Batches != v.wantBatches {
				t.Errorf("%s: write batches = %d, want %d", v.method, st.Batches, v.wantBatches)
			}
			if st.VecWrites != 1 || st.Segs != k {
				t.Errorf("%s: stats = %+v", v.method, st)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := adio.UFS{}.Open(ctx, fmt.Sprintf("%s/%s", dir, v.method), adio.ReadOnly,
				adio.Hints{IOMethod: v.method})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.ReadAtv(segs); err != nil {
				t.Fatal(err)
			}
			if st := adio.Stats(r); st.Batches != v.wantBatches || st.VecReads != 1 {
				t.Errorf("%s: read stats = %+v, want %d batches", v.method, st, v.wantBatches)
			}
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
