package adio_test

import (
	"reflect"
	"testing"

	"plfs/internal/adio"
)

func TestDatatypeFlatten(t *testing.T) {
	cases := []struct {
		name string
		t    *adio.Datatype
		base int64
		want []adio.Seg
		size int64
		ext  int64
	}{
		{
			name: "contig",
			t:    adio.Contig(10), base: 5,
			want: []adio.Seg{{Off: 5, Len: 10}}, size: 10, ext: 10,
		},
		{
			name: "vector strided",
			t:    adio.Vector(3, 4, 10),
			want: []adio.Seg{{Off: 0, Len: 4}, {Off: 10, Len: 4}, {Off: 20, Len: 4}},
			size: 12, ext: 24,
		},
		{
			name: "vector stride==blocklen merges to one run",
			t:    adio.Vector(3, 4, 4), base: 100,
			want: []adio.Seg{{Off: 100, Len: 12}}, size: 12, ext: 12,
		},
		{
			name: "nested vector (2-D tile)",
			t:    adio.VectorOf(2, adio.Vector(2, 2, 6), 24),
			want: []adio.Seg{{Off: 0, Len: 2}, {Off: 6, Len: 2}, {Off: 24, Len: 2}, {Off: 30, Len: 2}},
			size: 8, ext: 32,
		},
		{
			name: "indexed preserves definition order",
			t:    adio.Indexed([]adio.Seg{{Off: 10, Len: 4}, {Off: 0, Len: 4}, {Off: 12, Len: 4}}),
			want: []adio.Seg{{Off: 10, Len: 4}, {Off: 0, Len: 4}, {Off: 12, Len: 4}},
			size: 12, ext: 16,
		},
		{
			name: "indexed merges exact adjacency",
			t:    adio.Indexed([]adio.Seg{{Off: 0, Len: 4}, {Off: 4, Len: 4}, {Off: 16, Len: 4}}),
			want: []adio.Seg{{Off: 0, Len: 8}, {Off: 16, Len: 4}},
			size: 12, ext: 20,
		},
		{
			name: "indexed of structured elements",
			t:    adio.IndexedOf([]int64{32, 0}, adio.Vector(2, 2, 4)),
			want: []adio.Seg{{Off: 32, Len: 2}, {Off: 36, Len: 2}, {Off: 0, Len: 2}, {Off: 4, Len: 2}},
			size: 8, ext: 38,
		},
		{
			name: "empty contig flattens to nothing",
			t:    adio.Contig(0),
			want: []adio.Seg{}, size: 0, ext: 0,
		},
		{
			name: "empty vector",
			t:    adio.Vector(0, 8, 16),
			want: []adio.Seg{}, size: 0, ext: 0,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := c.t.Segs(c.base)
			if len(got) != 0 || len(c.want) != 0 {
				if !reflect.DeepEqual(got, c.want) {
					t.Errorf("Segs(%d) = %v, want %v", c.base, got, c.want)
				}
			}
			if c.t.Size() != c.size {
				t.Errorf("Size = %d, want %d", c.t.Size(), c.size)
			}
			if c.t.Extent() != c.ext {
				t.Errorf("Extent = %d, want %d", c.t.Extent(), c.ext)
			}
			if len(got) > c.t.MaxSegs() {
				t.Errorf("MaxSegs = %d but flattened to %d segments", c.t.MaxSegs(), len(got))
			}
			if want := c.size == c.ext; c.t.Contiguous() != want {
				t.Errorf("Contiguous = %v, want %v", c.t.Contiguous(), want)
			}
		})
	}
}

func TestDatatypePanicsOnNegative(t *testing.T) {
	for name, fn := range map[string]func(){
		"contig":  func() { adio.Contig(-1) },
		"vector":  func() { adio.Vector(2, 4, -1) },
		"indexed": func() { adio.Indexed([]adio.Seg{{Off: -1, Len: 4}}) },
		"of":      func() { adio.IndexedOf([]int64{-2}, adio.Contig(4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on negative geometry", name)
				}
			}()
			fn()
		}()
	}
}

// TestFlattenZeroAlloc pins the flattener's zero-allocation contract:
// AppendSegs into a buffer with capacity must not allocate (ranks reuse
// one buffer per open across every collective call).
func TestFlattenZeroAlloc(t *testing.T) {
	dt := adio.VectorOf(64, adio.Vector(4, 512, 4096), 1<<20)
	buf := make([]adio.Seg, 0, dt.MaxSegs())
	if n := testing.AllocsPerRun(100, func() {
		buf = dt.AppendSegs(buf[:0], 0)
	}); n != 0 {
		t.Errorf("AppendSegs allocated %.1f times per run, want 0", n)
	}
}

// BenchmarkFlatten is the CI allocation guard (0 allocs/op) and measures
// flattening throughput for a nested 256-segment pattern.
func BenchmarkFlatten(b *testing.B) {
	dt := adio.VectorOf(64, adio.Vector(4, 512, 4096), 1<<20)
	buf := make([]adio.Seg, 0, dt.MaxSegs())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = dt.AppendSegs(buf[:0], 0)
	}
	if len(buf) == 0 {
		b.Fatal("no segments")
	}
}
