package adio

import (
	"fmt"
	"sort"

	"plfs/internal/extent"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// IOMethod selects how the layer transforms a noncontiguous access
// (Thakur et al.'s taxonomy): one backend operation per segment, a
// read-modify-write of covering extents, a batched extent list, or the
// two-phase collective exchange.
type IOMethod int

const (
	// MethodAuto derives the method from the other hints (see
	// Hints.withDefaults): two-phase when collective buffering is
	// requested, list I/O otherwise.
	MethodAuto IOMethod = iota
	// MethodNaive issues one backend operation per flattened segment —
	// the POSIX baseline every optimization is measured against.
	MethodNaive
	// MethodSieve coalesces nearby segments into covering extents and
	// read-modify-writes each window (data sieving); reads simply fetch
	// the covering extent and discard the gaps.
	MethodSieve
	// MethodList ships the flattened segment list as one batched backend
	// request (list I/O) when the backend supports it.
	MethodList
	// MethodTwoPhase exchanges pieces over the interconnect so per-node
	// aggregators issue large contiguous file-domain accesses (collective
	// buffering); it applies to the *All calls, independent vectored
	// calls fall back to list I/O.
	MethodTwoPhase
)

// String implements fmt.Stringer (also the -io-method flag syntax).
func (m IOMethod) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodNaive:
		return "naive"
	case MethodSieve:
		return "sieve"
	case MethodList:
		return "list"
	case MethodTwoPhase:
		return "twophase"
	}
	return fmt.Sprintf("IOMethod(%d)", int(m))
}

// ParseIOMethod parses the -io-method flag syntax.
func ParseIOMethod(s string) (IOMethod, error) {
	for _, m := range []IOMethod{MethodAuto, MethodNaive, MethodSieve, MethodList, MethodTwoPhase} {
		if s == m.String() {
			return m, nil
		}
	}
	return MethodAuto, fmt.Errorf("adio: unknown io method %q (want auto|naive|sieve|list|twophase)", s)
}

// IOStats reports what a file's vectored accesses did (tests and the
// harness read it through Stats).
type IOStats struct {
	Method    IOMethod // effective noncontiguous method after hint defaults
	VecWrites int      // WriteAtv calls (including those behind WriteAll)
	VecReads  int      // ReadAtv calls
	Segs      int      // flattened segments across those calls
	Batches   int      // backend requests the vectored paths issued
	// SieveRMW counts write-side read-modify-write windows;
	// SieveReadBytes the bytes reread to fill them, and SieveWasted the
	// gap bytes transferred (either direction) that no segment asked for
	// — the amplification cost of Hints.SieveGap.
	SieveRMW       int
	SieveReadBytes int64
	SieveWasted    int64
}

// statser is the internal accessor behind Stats.
type statser interface{ ioStats() IOStats }

// Stats returns the vectored-access statistics of a file opened by this
// package (zero for foreign File implementations).
func Stats(f File) IOStats {
	if s, ok := f.(statser); ok {
		return s.ioStats()
	}
	return IOStats{}
}

// segTotal returns the byte count a segment list selects.
func segTotal(segs []Seg) int64 {
	var n int64
	for _, e := range segs {
		n += e.Len
	}
	return n
}

// segEnd returns one past the last byte any segment touches.
func segEnd(segs []Seg) int64 {
	var end int64
	for _, e := range segs {
		if e.End() > end {
			end = e.End()
		}
	}
	return end
}

// ---------------------------------------------------------------------
// UFS vectored paths: naive, list I/O, and write-side data sieving over
// a flat file.

// WriteAtv writes the flattened segments of one access, taking each
// segment's bytes from data in order, transformed per Hints.IOMethod.
func (u *ufsFile) WriteAtv(segs []Seg, data payload.List) error {
	if !u.writable {
		return errNotWritable
	}
	u.stats.VecWrites++
	u.stats.Segs += len(segs)
	switch u.hints.IOMethod {
	case MethodNaive:
		return u.writeEach(segs, data)
	case MethodSieve:
		return u.writeSievev(segs, data)
	default: // List; also TwoPhase (independent calls) and normalized Auto.
		return u.writeListv(segs, data)
	}
}

// ReadAtv reads the flattened segments of one access, returning their
// bytes concatenated in segment order.
func (u *ufsFile) ReadAtv(segs []Seg) (payload.List, error) {
	u.stats.VecReads++
	u.stats.Segs += len(segs)
	switch u.hints.IOMethod {
	case MethodNaive:
		return u.readEach(segs)
	case MethodSieve:
		return u.readSievev(segs)
	default:
		return u.readListv(segs)
	}
}

// writeEach is the naive transformation: one backend write per segment.
func (u *ufsFile) writeEach(segs []Seg, data payload.List) error {
	var pos int64
	for _, e := range segs {
		off := e.Off
		for _, p := range data.Slice(pos, e.Len) {
			u.stats.Batches++
			if err := u.f.WriteAt(off, p); err != nil {
				return err
			}
			off += p.Len()
		}
		pos += e.Len
	}
	return nil
}

// readEach is the naive read: one backend read per segment.
func (u *ufsFile) readEach(segs []Seg) (payload.List, error) {
	var out payload.List
	for _, e := range segs {
		if e.Len <= 0 {
			continue
		}
		u.stats.Batches++
		pl, err := u.f.ReadAt(e.Off, e.Len)
		if err != nil {
			return nil, err
		}
		out = out.Concat(pl)
	}
	return out, nil
}

// writeListv ships the whole segment list as one batched request when
// the backend supports it (list I/O); otherwise it degrades to the
// naive loop — batching is a backend capability, not an emulation.
func (u *ufsFile) writeListv(segs []Seg, data payload.List) error {
	vio, ok := u.f.(plfs.VectoredIO)
	if !ok {
		return u.writeEach(segs, data)
	}
	u.stats.Batches++
	return vio.WritevAt(segs, data)
}

// readListv is writeListv's read side.
func (u *ufsFile) readListv(segs []Seg) (payload.List, error) {
	vio, ok := u.f.(plfs.VectoredIO)
	if !ok {
		return u.readEach(segs)
	}
	u.stats.Batches++
	return vio.ReadvAt(segs)
}

// writeSievev is write-side data sieving: segments within SieveGap bytes
// of each other merge into covering windows (capped at SieveBuf, except
// across overlaps), and each window with gaps is read-modify-written
// under the file's range lock — ROMIO's correctness contract for
// concurrent writers of a sieved file.  Gap bytes below EOF are reread
// and written back unchanged; gaps past EOF are holes and come back as
// zeros, so sieving never invents nonzero data.  The reread and wasted
// bytes are charged to IOStats and the plfs.write.sieve_* counters.
func (u *ufsFile) writeSievev(segs []Seg, data payload.List) error {
	offs := make([]int64, len(segs))
	var pos int64
	for i, e := range segs {
		offs[i] = pos
		pos += e.Len
	}
	ext := func(i int) extent.Ext { return segs[i] }
	batches := extent.Plan(len(segs), nil, ext, u.hints.SieveGap, u.hints.SieveBuf)
	rl, _ := u.f.(plfs.RangeLocker)
	for _, b := range batches {
		live := b.Live(ext)
		rmw := live != b.Len
		var win payload.File
		if rmw {
			// The RMW window must be atomic against concurrent writers:
			// lock, reread, overlay, write back, unlock.
			if rl != nil {
				if err := rl.LockRange(b.Off, b.Len); err != nil {
					return err
				}
			}
			u.stats.SieveRMW++
			u.stats.SieveReadBytes += b.Len
			u.stats.SieveWasted += b.Len - live
			if obs := u.ctx.Obs; obs != nil {
				obs.Counter("plfs.write.sieve_rmw").Add(1)
				obs.Counter("plfs.write.sieve_read_bytes").Add(b.Len)
				obs.Counter("plfs.write.sieve_wasted").Add(b.Len - live)
			}
			u.stats.Batches++
			old, err := u.f.ReadAt(b.Off, b.Len)
			if err != nil {
				if rl != nil {
					rl.UnlockRange(b.Off, b.Len)
				}
				return err
			}
			cur := b.Off
			for _, p := range old {
				win.WriteAt(cur, p)
				cur += p.Len()
			}
		}
		// Overlay the window's segments in their original issue order, so
		// overlapping segments resolve exactly as the naive loop would.
		items := append([]int32(nil), b.Items...)
		sort.Slice(items, func(a, c int) bool { return items[a] < items[c] })
		for _, it := range items {
			e := segs[it]
			cur := e.Off
			for _, p := range data.Slice(offs[it], e.Len) {
				win.WriteAt(cur, p)
				cur += p.Len()
			}
		}
		err := u.writeListv([]Seg{{Off: b.Off, Len: b.Len}}, win.ReadAt(b.Off, b.Len))
		if rmw && rl != nil {
			if uerr := rl.UnlockRange(b.Off, b.Len); err == nil {
				err = uerr
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// readSievev is read-side data sieving: fetch each covering window with
// one backend read and slice the requested segments out, discarding the
// gaps.
func (u *ufsFile) readSievev(segs []Seg) (payload.List, error) {
	ext := func(i int) extent.Ext { return segs[i] }
	batches := extent.Plan(len(segs), nil, ext, u.hints.SieveGap, u.hints.SieveBuf)
	parts := make([]payload.List, len(batches))
	batchOf := make([]int, len(segs))
	for bi, b := range batches {
		u.stats.Batches++
		u.stats.SieveWasted += b.Len - b.Live(ext)
		if obs := u.ctx.Obs; obs != nil {
			obs.Counter("plfs.read.sieve_wasted").Add(b.Len - b.Live(ext))
		}
		pl, err := u.f.ReadAt(b.Off, b.Len)
		if err != nil {
			return nil, err
		}
		parts[bi] = pl
		for _, it := range b.Items {
			batchOf[it] = bi
		}
	}
	var out payload.List
	for i, e := range segs {
		if e.Len <= 0 {
			continue
		}
		b := batches[batchOf[i]]
		out = out.Concat(parts[batchOf[i]].Slice(e.Off-b.Off, e.Len))
	}
	return out, nil
}

// WriteAll is the collective datatype-driven write: each rank hands its
// whole access pattern (t placed at base) in one call.  Without the
// two-phase wrapper the pattern flattens into this rank's vectored
// write; a barrier keeps the collective contract.
func (u *ufsFile) WriteAll(base int64, t *Datatype, data payload.List) error {
	err := u.WriteAtv(t.Segs(base), data)
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return err
}

// ReadAll is WriteAll's read side.
func (u *ufsFile) ReadAll(base int64, t *Datatype) (payload.List, error) {
	pl, err := u.ReadAtv(t.Segs(base))
	if u.ctx.Comm != nil {
		u.ctx.Comm.Barrier()
	}
	return pl, err
}

func (u *ufsFile) ioStats() IOStats {
	st := u.stats
	st.Method = u.hints.IOMethod
	return st
}

// ---------------------------------------------------------------------
// PLFS vectored paths.  The log structure collapses the classic
// trade-offs: every write is an append, so data sieving's RMW buys
// nothing and degrades to list I/O — K extents become K index entries
// (run-compressed) and one batched append.  Naive stays a per-segment
// loop for the baseline comparison.

// WriteAtv implements the vectored write on the PLFS driver.
func (p *plfsFile) WriteAtv(segs []Seg, data payload.List) error {
	if p.w == nil {
		return errNotWriteOpen
	}
	p.stats.VecWrites++
	p.stats.Segs += len(segs)
	if end := segEnd(segs); end > p.size {
		p.size = end
	}
	if p.hints.IOMethod == MethodNaive {
		var pos int64
		for _, e := range segs {
			off := e.Off
			for _, pl := range data.Slice(pos, e.Len) {
				p.stats.Batches++
				if err := p.w.Write(off, pl); err != nil {
					return err
				}
				off += pl.Len()
			}
			pos += e.Len
		}
		return nil
	}
	p.stats.Batches++
	return p.w.Writev(segs, data)
}

// ReadAtv implements the vectored read on the PLFS driver: the reader's
// sieving coalescer plans all segments' index pieces together.
func (p *plfsFile) ReadAtv(segs []Seg) (payload.List, error) {
	if p.r == nil {
		return nil, errNotReadOpen
	}
	p.stats.VecReads++
	p.stats.Segs += len(segs)
	if p.hints.IOMethod == MethodNaive {
		var out payload.List
		for _, e := range segs {
			if e.Len <= 0 {
				continue
			}
			p.stats.Batches++
			pl, err := p.r.ReadAt(e.Off, e.Len)
			if err != nil {
				return nil, err
			}
			out = out.Concat(pl)
		}
		return out, nil
	}
	p.stats.Batches++
	return p.r.ReadAtv(segs)
}

// WriteAll implements the collective datatype-driven write (see
// ufsFile.WriteAll).
func (p *plfsFile) WriteAll(base int64, t *Datatype, data payload.List) error {
	err := p.WriteAtv(t.Segs(base), data)
	if p.ctx.Comm != nil {
		p.ctx.Comm.Barrier()
	}
	return err
}

// ReadAll implements the collective datatype-driven read.
func (p *plfsFile) ReadAll(base int64, t *Datatype) (payload.List, error) {
	pl, err := p.ReadAtv(t.Segs(base))
	if p.ctx.Comm != nil {
		p.ctx.Comm.Barrier()
	}
	return pl, err
}

func (p *plfsFile) ioStats() IOStats {
	st := p.stats
	st.Method = p.hints.IOMethod
	return st
}

// ---------------------------------------------------------------------
// Two-phase collective vectored paths.

// WriteAtv on a collective-buffered file is an independent operation and
// forwards to the base file (which applies list I/O).
func (f *cbFile) WriteAtv(segs []Seg, data payload.List) error { return f.inner.WriteAtv(segs, data) }

// ReadAtv forwards like WriteAtv.
func (f *cbFile) ReadAtv(segs []Seg) (payload.List, error) { return f.inner.ReadAtv(segs) }

// WriteAll runs the two-phase exchange over the whole flattened access:
// each rank's pattern is split at aggregator-domain boundaries, shipped
// to the owning aggregators, and issued as large contiguous writes.
func (f *cbFile) WriteAll(base int64, t *Datatype, data payload.List) error {
	segs := t.Segs(base)
	if end := segEnd(segs); end > f.size {
		f.size = end
	}
	pieces := make([]cbPiece, 0, len(segs))
	var pos int64
	for _, e := range segs {
		off := e.Off
		for _, p := range data.Slice(pos, e.Len) {
			pieces = append(pieces, cbPiece{off, p})
			off += p.Len()
		}
		pos += e.Len
	}
	return f.writeAllPieces(pieces)
}

// ReadAll runs the two-phase exchange for reads of a whole flattened
// access pattern.
func (f *cbFile) ReadAll(base int64, t *Datatype) (payload.List, error) {
	return f.readAllSegs(t.Segs(base))
}

func (f *cbFile) ioStats() IOStats { return Stats(f.inner) }
