package adio_test

import (
	"fmt"
	"sync"
	"testing"

	"plfs/internal/adio"
	"plfs/internal/localcomm"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

func runRanks(t *testing.T, n int, fn func(ctx plfs.Ctx, rank int)) {
	t.Helper()
	comms := localcomm.New(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(plfs.Ctx{
				Vols:       []plfs.Backend{osfs.New()},
				Rank:       i,
				Host:       i / 2,
				HostLeader: i%2 == 0,
				Comm:       comms[i],
			}, i)
		}(i)
	}
	wg.Wait()
}

func TestUFSWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	runRanks(t, n, func(ctx plfs.Ctx, rank int) {
		drv := adio.UFS{Vol: 0}
		f, err := drv.Open(ctx, dir+"/shared", adio.WriteCreate, adio.Hints{})
		if err != nil {
			t.Errorf("rank %d open: %v", rank, err)
			return
		}
		data := []byte(fmt.Sprintf("rank-%d-data", rank))
		if err := f.WriteAt(int64(rank)*64, payload.FromBytes(data)); err != nil {
			t.Error(err)
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		r, err := drv.Open(ctx, dir+"/shared", adio.ReadOnly, adio.Hints{})
		if err != nil {
			t.Error(err)
			return
		}
		defer r.Close()
		for i := 0; i < n; i++ {
			want := fmt.Sprintf("rank-%d-data", i)
			got, err := r.ReadAt(int64(i)*64, int64(len(want)))
			if err != nil {
				t.Error(err)
				continue
			}
			if string(got.Materialize()) != want {
				t.Errorf("slot %d = %q", i, got.Materialize())
			}
		}
	})
}

func TestUFSReadOnlyRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		drv := adio.UFS{}
		f, _ := drv.Open(ctx, dir+"/f", adio.WriteCreate, adio.Hints{})
		f.WriteAt(0, payload.FromBytes([]byte("x")))
		f.Close()
		r, _ := drv.Open(ctx, dir+"/f", adio.ReadOnly, adio.Hints{})
		defer r.Close()
		if err := r.WriteAt(0, payload.FromBytes([]byte("y"))); err == nil {
			t.Error("read-only file accepted a write")
		}
	})
}

func TestPLFSDriverRoundtrip(t *testing.T) {
	mount := plfs.NewMount([]string{t.TempDir()}, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 2})
	const n, bs = 6, int64(1024)
	runRanks(t, n, func(ctx plfs.Ctx, rank int) {
		drv := adio.PLFS{Mount: mount}
		f, err := drv.Open(ctx, "ckpt", adio.WriteCreate, adio.Hints{})
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		off := int64(rank) * bs
		if err := f.WriteAt(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
			t.Error(err)
		}
		// PLFS write handles must reject reads (no read-write mode).
		if _, err := f.ReadAt(0, 1); err == nil {
			t.Error("PLFS write handle accepted a read")
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		r, err := drv.Open(ctx, "ckpt", adio.ReadOnly, adio.Hints{})
		if err != nil {
			t.Errorf("read open: %v", err)
			return
		}
		defer r.Close()
		if r.Size() != n*bs {
			t.Errorf("size = %d", r.Size())
		}
		got, err := r.ReadAt(0, n*bs)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < n; i++ {
			o := int64(i) * bs
			if !payload.ContentEqual(got.Slice(o, bs), payload.List{payload.Synthetic(uint64(i+1), o, bs)}) {
				t.Errorf("slot %d mismatch", i)
			}
		}
	})
}

func TestCollectiveBufferingCorrectness(t *testing.T) {
	// 8 ranks, 2 per "node": tiny strided collective writes through CB
	// must land exactly where independent writes would, and collective
	// reads must return them.
	dir := t.TempDir()
	const n = 8
	const rounds = 16
	const bs = int64(1 << 10) // 1 KiB strided ops, like LANL 3
	hints := adio.Hints{CollectiveBuffering: true, ProcsPerNode: 2}
	runRanks(t, n, func(ctx plfs.Ctx, rank int) {
		drv := adio.UFS{}
		f, err := drv.Open(ctx, dir+"/cb", adio.WriteCreate, hints)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for k := 0; k < rounds; k++ {
			off := int64(k*n+rank) * bs
			if err := f.WriteAtAll(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
				t.Error(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		// Collective read back through CB.
		r, err := drv.Open(ctx, dir+"/cb", adio.ReadOnly, hints)
		if err != nil {
			t.Errorf("read open: %v", err)
			return
		}
		defer r.Close()
		for k := 0; k < rounds; k++ {
			off := int64(k*n+rank) * bs
			got, err := r.ReadAtAll(off, bs)
			if err != nil {
				t.Error(err)
				return
			}
			if !payload.ContentEqual(got, payload.List{payload.Synthetic(uint64(rank+1), off, bs)}) {
				t.Errorf("rank %d round %d CB read mismatch", rank, k)
				return
			}
		}
	})
	// Verify the final file byte-for-byte with a plain reader.
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		r, err := adio.UFS{}.Open(ctx, dir+"/cb", adio.ReadOnly, adio.Hints{})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		total := int64(rounds*n) * bs
		got, err := r.ReadAt(0, total)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < rounds; k++ {
			for i := 0; i < n; i++ {
				off := int64(k*n+i) * bs
				want := payload.List{payload.Synthetic(uint64(i+1), off, bs)}
				if !payload.ContentEqual(got.Slice(off, bs), want) {
					t.Fatalf("final file wrong at (k=%d, rank=%d)", k, i)
				}
			}
		}
	})
}

func TestCollectiveBufferingThroughPLFS(t *testing.T) {
	// The paper runs LANL 3 with collective buffering *through PLFS*; the
	// stack must compose.
	mount := plfs.NewMount([]string{t.TempDir()}, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 2})
	const n, rounds, bs = 4, 8, int64(512)
	hints := adio.Hints{CollectiveBuffering: true, ProcsPerNode: 2}
	runRanks(t, n, func(ctx plfs.Ctx, rank int) {
		drv := adio.PLFS{Mount: mount}
		f, err := drv.Open(ctx, "lanl3", adio.WriteCreate, hints)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for k := 0; k < rounds; k++ {
			off := int64(k*n+rank) * bs
			if err := f.WriteAtAll(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
				t.Error(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Error(err)
		}
		r, err := drv.Open(ctx, "lanl3", adio.ReadOnly, hints)
		if err != nil {
			t.Errorf("read open: %v", err)
			return
		}
		defer r.Close()
		for k := 0; k < rounds; k++ {
			off := int64(k*n+rank) * bs
			got, err := r.ReadAtAll(off, bs)
			if err != nil {
				t.Error(err)
				return
			}
			if !payload.ContentEqual(got, payload.List{payload.Synthetic(uint64(rank+1), off, bs)}) {
				t.Errorf("rank %d round %d mismatch", rank, k)
				return
			}
		}
	})
}

func TestHintsDefaults(t *testing.T) {
	// Zero-valued hints must not enable CB and must be safe on size-1 comms.
	mount := plfs.NewMount([]string{t.TempDir()}, plfs.Options{})
	runRanks(t, 1, func(ctx plfs.Ctx, rank int) {
		f, err := adio.PLFS{Mount: mount}.Open(ctx, "x", adio.WriteCreate,
			adio.Hints{CollectiveBuffering: true}) // size-1 comm: CB skipped
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteAt(0, payload.FromBytes([]byte("ok"))); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
