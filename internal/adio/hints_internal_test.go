package adio

import "testing"

// TestHintsNormalization tables every (CollectiveBuffering, IOMethod)
// combination through withDefaults — the single normalization point —
// and checks the invariants the rest of the layer assumes: the method is
// never Auto afterwards, CollectiveBuffering agrees with the method
// (maybeCB keys on it), and the sizing knobs are always positive.
func TestHintsNormalization(t *testing.T) {
	cases := []struct {
		cb         bool
		method     IOMethod
		wantMethod IOMethod
		wantCB     bool
	}{
		{false, MethodAuto, MethodList, false},
		{true, MethodAuto, MethodTwoPhase, true},
		{false, MethodNaive, MethodNaive, false},
		{true, MethodNaive, MethodNaive, false}, // explicit method wins over the cb flag
		{false, MethodSieve, MethodSieve, false},
		{true, MethodSieve, MethodSieve, false},
		{false, MethodList, MethodList, false},
		{true, MethodList, MethodList, false},
		{false, MethodTwoPhase, MethodTwoPhase, true}, // method implies cb
		{true, MethodTwoPhase, MethodTwoPhase, true},
	}
	for _, c := range cases {
		h := Hints{CollectiveBuffering: c.cb, IOMethod: c.method}.withDefaults()
		if h.IOMethod != c.wantMethod {
			t.Errorf("cb=%v %v: method = %v, want %v", c.cb, c.method, h.IOMethod, c.wantMethod)
		}
		if h.CollectiveBuffering != c.wantCB {
			t.Errorf("cb=%v %v: CollectiveBuffering = %v, want %v", c.cb, c.method, h.CollectiveBuffering, c.wantCB)
		}
		if h.CBBufferSize <= 0 || h.ProcsPerNode <= 0 || h.SieveGap <= 0 || h.SieveBuf <= 0 {
			t.Errorf("cb=%v %v: unnormalized sizing knobs: %+v", c.cb, c.method, h)
		}
	}
	// Explicit sizes survive normalization.
	h := Hints{CBBufferSize: 123, ProcsPerNode: 7, SieveGap: 11, SieveBuf: 22}.withDefaults()
	if h.CBBufferSize != 123 || h.ProcsPerNode != 7 || h.SieveGap != 11 || h.SieveBuf != 22 {
		t.Errorf("explicit sizes rewritten: %+v", h)
	}
	// Normalization is idempotent — applying it twice changes nothing.
	if again := h.withDefaults(); again != h {
		t.Errorf("withDefaults not idempotent: %+v vs %+v", again, h)
	}
}
