package plfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"

	"plfs/internal/extent"
	"plfs/internal/payload"
)

// Writer is one process's write handle on a logical PLFS file.  All data
// goes to a private data dropping as sequential appends; index records
// accumulate and are persisted according to the mount's index mode.
type Writer struct {
	m   *Mount
	ctx Ctx
	rel string
	st  *containerState // pinned for the session (Create..Close)

	vc        int // canonical container volume
	subdir    int
	subVol    int
	stamp     string
	dataPath  string
	indexPath string
	dataFile  File

	buf      payload.List
	bufBytes int64
	written  int64 // bytes flushed to the data dropping

	entries    []Entry
	sums       []uint32 // per-entry CRC32C of data extents (Options.Checksum)
	spilledAll bool     // entries already persisted to the index dropping
	overflowed bool     // exceeded the flatten threshold

	maxLogical int64
	closed     bool

	// Stats accumulates what this writer's Write/Writev calls did (for
	// tests and the harness).
	Stats WriteStats
}

// WriteStats reports the work a writer performed.
type WriteStats struct {
	Ops     int   // Write calls
	VecOps  int   // Writev calls
	Segs    int   // extents logged across all Writev calls
	Bytes   int64 // logical bytes written
	Appends int   // backend append operations issued for data
}

// Create opens the logical file rel for writing, creating the container
// if needed.  With a communicator this is collective: rank 0 creates the
// container skeleton and the rest attach after a barrier — the paper's
// MPI-IO open.  Without one, every caller races politely (mkdir with
// EEXIST tolerated), as through FUSE.
func (m *Mount) Create(ctx Ctx, rel string) (*Writer, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	csp := ctx.Obs.StartSpan("create")
	defer csp.End()
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.create.ops").Add(1)
	}
	admitted, err := m.admit(ctx, "create")
	if err != nil {
		return nil, err
	}
	defer admitted()
	if m.opt.BulkCreate && ctx.Comm != nil && bulkCapable(ctx.Vols) {
		return m.createBatched(ctx, rel)
	}
	if ctx.Comm != nil {
		var res any
		if ctx.Comm.Rank() == 0 {
			res = errToStr(m.createSkeleton(ctx, rel))
		}
		if s := ctx.Comm.Bcast(0, 16, res); s != nil {
			return nil, errors.New(s.(string))
		}
	} else {
		if err := m.createSkeleton(ctx, rel); err != nil {
			return nil, err
		}
	}

	// Pin the container state for the whole write session: a pinned
	// state cannot be evicted, so the generation sequence this writer
	// advances stays monotone until Close.
	st := m.pin(rel, ctx.Tenant)
	ok := false
	defer func() {
		if !ok {
			m.unpin(st)
		}
	}()
	st.mu.Lock()
	st.gen++
	st.builtKey, st.built = "", nil
	st.mu.Unlock()

	w := &Writer{m: m, ctx: ctx, rel: rel, st: st}
	w.vc = m.containerVol(rel)
	w.subdir = m.placeSubdir(ctx, rel, ctx.Host)
	if err := w.ensureHostdir(); err != nil {
		return nil, err
	}
	if ctx.HostLeader {
		// Register this host in openhosts (ignored if a sibling won).
		cpath, _ := m.containerPath(rel)
		f, err := ctx.createRetried(ctx.Vols[w.vc], path.Join(cpath, openHostsDir, fmt.Sprintf("host.%d", ctx.Host)), m.opt.Retry)
		if err == nil {
			f.Close()
		} else if !errors.Is(err, iofs.ErrExist) {
			return nil, err
		}
	}
	// Create this writer's droppings.
	w.stamp = fmt.Sprintf("%d.%d", ctx.now(), ctx.Rank)
	hpath, hv := m.hostdirPath(rel, w.subdir)
	w.subVol = hv
	w.dataPath = path.Join(hpath, dataPrefix+w.stamp)
	w.indexPath = path.Join(hpath, indexPrefix+w.stamp)
	df, err := ctx.createRetried(ctx.Vols[hv], w.dataPath, m.opt.Retry)
	if err != nil {
		return nil, err
	}
	w.dataFile = df
	ok = true
	return w, nil
}

func errToStr(err error) any {
	if err == nil {
		return nil
	}
	return err.Error()
}

// createSkeleton builds the container directory structure, tolerating
// pieces that already exist (another writer got there first).
func (m *Mount) createSkeleton(ctx Ctx, rel string) error {
	cpath, vc := m.containerPath(rel)
	b := ctx.Vols[vc]
	if err := ctx.mkdirRetried(b, cpath, m.opt.Retry); err != nil && !errors.Is(err, iofs.ErrExist) {
		return err
	}
	err := ctx.retry(m.opt.Retry, func() error {
		f, e := b.Create(path.Join(cpath, accessFile))
		if e == nil {
			f.Close()
		}
		return e
	})
	if err != nil && !errors.Is(err, iofs.ErrExist) {
		return err
	}
	for _, sub := range []string{metaDir, openHostsDir} {
		if err := ctx.mkdirRetried(b, path.Join(cpath, sub), m.opt.Retry); err != nil && !errors.Is(err, iofs.ErrExist) {
			return err
		}
	}
	return nil
}

// ensureHostdir creates the writer's hostdir (and, when subdirs are
// spread, the shadow container and the canonical metalink marker).
func (w *Writer) ensureHostdir() error {
	m, ctx := w.m, w.ctx
	hpath, hv := m.hostdirPath(w.rel, w.subdir)
	if hv != m.containerVol(w.rel) {
		// Shadow container directory on the remote volume.
		shadow := path.Join(m.roots[hv], w.rel)
		if err := ctx.mkdirRetried(ctx.Vols[hv], shadow, m.opt.Retry); err != nil && !errors.Is(err, iofs.ErrExist) {
			return err
		}
	}
	err := ctx.mkdirRetried(ctx.Vols[hv], hpath, m.opt.Retry)
	switch {
	case err == nil:
		if hv != m.containerVol(w.rel) {
			// First creator leaves a metalink marker in the canonical
			// container so uncoordinated readers can find the hostdir.
			cpath, vc := m.containerPath(w.rel)
			ml := path.Join(cpath, fmt.Sprintf("%s%d%s", hostdirPrefix, w.subdir, metalinkSufx))
			err := ctx.retry(m.opt.Retry, func() error {
				f, e := ctx.Vols[vc].Create(ml)
				if e == nil {
					f.Close()
				}
				return e
			})
			if err != nil && !errors.Is(err, iofs.ErrExist) {
				return err
			}
		}
		return nil
	case errors.Is(err, iofs.ErrExist):
		return nil
	default:
		return err
	}
}

// Write records p at logical offset off.  The data is appended (buffered)
// to the private data dropping — always sequential regardless of off, the
// core log-structured transform.
func (w *Writer) Write(off int64, p payload.Payload) error {
	if w.closed {
		return errors.New("plfs: writer closed")
	}
	n := p.Len()
	if n == 0 {
		return nil
	}
	if obs := w.ctx.Obs; obs != nil {
		defer obs.Timer("plfs.write.append")()
		obs.Counter("plfs.write.ops").Add(1)
		obs.Counter("plfs.write.bytes").Add(n)
	}
	w.Stats.Ops++
	w.Stats.Bytes += n
	w.record(off, p)
	return w.afterRecord()
}

// Writev records every extent of a flattened access in one call: segs[i]
// gets the next segs[i].Len bytes of data.  K extents cost K index
// entries (run-compressed like everything else) but the data is buffered
// as one batch and lands with a single backend append — the O(1)
// backend-operation contract list I/O buys on a log-structured driver,
// versus the K appends a per-extent loop would issue.
func (w *Writer) Writev(segs []extent.Ext, data payload.List) error {
	if w.closed {
		return errors.New("plfs: writer closed")
	}
	var total int64
	for _, e := range segs {
		total += e.Len
	}
	if total == 0 {
		return nil
	}
	if obs := w.ctx.Obs; obs != nil {
		defer obs.Timer("plfs.write.append")()
		obs.Counter("plfs.write.vec_ops").Add(1)
		obs.Counter("plfs.write.vec_segs").Add(int64(len(segs)))
		obs.Counter("plfs.write.bytes").Add(total)
	}
	w.Stats.VecOps++
	w.Stats.Bytes += total
	var pos int64
	for _, e := range segs {
		if e.Len == 0 {
			continue
		}
		w.Stats.Segs++
		off := e.Off
		for _, p := range data.Slice(pos, e.Len) {
			w.record(off, p)
			off += p.Len()
		}
		pos += e.Len
	}
	return w.afterRecord()
}

// record books one logical extent: an index entry (extended in place when
// index compression applies) and the payload appended to the data buffer.
func (w *Writer) record(off int64, p payload.Payload) {
	n := p.Len()
	phys := w.written + w.bufBytes
	extend := false
	if last := len(w.entries) - 1; last >= 0 && !w.m.opt.NoIndexCompression {
		e := &w.entries[last]
		if e.LogicalOff+e.Length == off && e.PhysOff+e.Length == phys {
			// Index compression: the write continues the previous record.
			e.Length += n
			e.Timestamp = w.ctx.now()
			extend = true
		}
	}
	if !extend {
		w.entries = append(w.entries, Entry{
			LogicalOff: off,
			Length:     n,
			PhysOff:    phys,
			Timestamp:  w.ctx.now(),
			Rank:       int32(w.ctx.Rank),
		})
	}
	w.noteChecksum(p, extend)
	w.buf = w.buf.Append(p)
	w.bufBytes += n
	if end := off + n; end > w.maxLogical {
		w.maxLogical = end
	}
}

// afterRecord applies the post-write policies: the data-flush threshold
// (DataFlushBytes == 0 means write-through) and the flatten-overflow
// check.
func (w *Writer) afterRecord() error {
	if w.bufBytes >= w.m.opt.DataFlushBytes {
		if err := w.flushData(); err != nil {
			return err
		}
	}
	if w.m.opt.IndexMode == IndexFlatten && !w.overflowed && len(w.entries) > w.m.opt.FlattenThreshold {
		w.overflowed = true
	}
	return nil
}

// noteChecksum maintains the per-entry data CRCs alongside w.entries:
// a new entry starts a fresh CRC, a compression-extended entry rolls the
// appended payload into the last one.  The hashing cost is charged to
// the virtual clock so the ablation figure sees it.
func (w *Writer) noteChecksum(p payload.Payload, extend bool) {
	if !w.m.opt.Checksum {
		return
	}
	if extend {
		w.sums[len(w.sums)-1] = payloadCRC(w.sums[len(w.sums)-1], p)
	} else {
		w.sums = append(w.sums, payloadCRC(0, p))
	}
	w.ctx.sleep(w.m.opt.ChecksumCPUPerMB * timeDuration(int(p.Len())) / (1 << 20))
}

// flushData appends buffered payloads to the data dropping.  Transient
// append errors are retried (the injector guarantees a transiently
// failed append landed no bytes, so a reissue is clean); torn writes
// are permanent and surface immediately.
//
// When the handle batches appends (BatchAppender) and more than one
// piece is buffered, the whole buffer lands in one backend operation —
// the fault wrapper deliberately hides the capability, so batches only
// form where the per-piece retry/torn contracts cannot be weakened.
func (w *Writer) flushData() error {
	pol := w.m.opt.Retry
	if len(w.buf) > 1 {
		if ba, ok := w.dataFile.(BatchAppender); ok {
			pl := w.buf
			err := w.ctx.retry(pol, func() error {
				_, e := ba.Appendv(pl)
				return e
			})
			if err != nil {
				return err
			}
			w.Stats.Appends++
			w.written += w.bufBytes
			w.buf, w.bufBytes = w.buf[:0], 0
			return nil
		}
	}
	for len(w.buf) > 0 {
		p := w.buf[0]
		err := w.ctx.retry(pol, func() error {
			_, e := w.dataFile.Append(p)
			return e
		})
		if err != nil {
			return err
		}
		w.Stats.Appends++
		w.buf = w.buf[1:]
		w.written += p.Len()
		w.bufBytes -= p.Len()
	}
	w.buf, w.bufBytes = w.buf[:0], 0
	return nil
}

// Sync flushes buffered data to the backing store.
func (w *Writer) Sync() error {
	if w.closed {
		return errors.New("plfs: writer closed")
	}
	return w.flushData()
}

// ownRecs is this writer's index in record form: run-compressed unless
// Options.NoRunCompression.  Run detection happens here, at flush time,
// where the writer's entries are still in append order — the order run
// structure appears in.
func (w *Writer) ownRecs() []Rec {
	if w.m.opt.NoRunCompression {
		return recsOf(w.entries)
	}
	return compressRecs(w.entries)
}

// writeOwnIndex persists this writer's index dropping.
func (w *Writer) writeOwnIndex() error {
	if w.spilledAll || len(w.entries) == 0 {
		return nil
	}
	buf := encodeRecs(w.ownRecs())
	if w.m.opt.Checksum {
		buf = appendSumTrailer(buf, idxSumMagic)
	}
	if err := w.m.commitReplicated(w.ctx, w.indexPath, buf, w.m.opt.Retry, false); err != nil {
		return err
	}
	w.spilledAll = true
	return nil
}

// flattenShard is what each writer contributes to Index Flatten at close.
type flattenShard struct {
	DataPath string
	Recs     []Rec
	Size     int64
	Overflow bool
}

// Close flushes data, persists index information according to the index
// mode, records the logical size in the metadir, and deregisters the
// host.  With a communicator it is collective; under IndexFlatten this is
// where the global index is gathered and written — the cost visible in
// the paper's Fig. 4c/4d.
//
// On the collective paths every rank reaches every collective call even
// when its local I/O failed — a rank that bailed early would leave its
// peers blocked in Gather/Barrier forever — and host deregistration is
// always attempted, so a failed close cannot leak openhosts records.
// All failures are collected and returned joined.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("plfs: writer closed")
	}
	w.closed = true
	m, ctx := w.m, w.ctx
	sp := ctx.Obs.StartSpan("close")
	defer sp.End()
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.close.ops").Add(1)
	}
	var errs []error
	fail := func(err error) {
		if err != nil {
			errs = append(errs, err)
		}
	}

	fsp := sp.Child("flush")
	flushErr := w.flushData()
	fsp.End()
	fail(flushErr)
	if flushErr == nil && !m.opt.NoDataFraming && len(w.entries) > 0 {
		// Recovery footer: a self-describing copy of this writer's index
		// appended to the data dropping, written before the index dropping
		// so a crash in between leaves a recoverable file (see Recover).
		ftsp := sp.Child("footer")
		fail(w.writeFrameFooter())
		ftsp.End()
	}
	fail(w.dataFile.Close())

	flatten := m.opt.IndexMode == IndexFlatten && ctx.Comm != nil
	if flatten {
		isp := sp.Child("index")
		sh := flattenShard{DataPath: w.dataPath, Recs: w.ownRecs(), Size: w.maxLogical, Overflow: w.overflowed}
		if flushErr != nil {
			// Unflushed bytes must not enter the global index; contribute
			// only the dropping path so the canonical ordering holds.
			sh.Recs, sh.Size = nil, 0
		}
		shards := ctx.Comm.Gather(0, recsWireLen(sh.Recs)+64, sh)
		anyOverflow := false
		var maxSize int64
		if ctx.Comm.Rank() == 0 {
			for _, v := range shards {
				s := v.(flattenShard)
				anyOverflow = anyOverflow || s.Overflow
				if s.Size > maxSize {
					maxSize = s.Size
				}
			}
		}
		st := ctx.Comm.Bcast(0, 16, [2]any{anyOverflow, maxSize}).([2]any)
		anyOverflow = st[0].(bool)
		if anyOverflow {
			// Threshold exceeded somewhere: everyone keeps a private index.
			if flushErr == nil {
				fail(w.writeOwnIndex())
			}
		} else if ctx.Comm.Rank() == 0 {
			fail(w.writeGlobalIndex(shards))
		}
		isp.End()
		csp := sp.Child("commit")
		if ctx.Comm.Rank() == 0 {
			fail(w.writeSizeRecord(st[1].(int64)))
		}
		ctx.Comm.Barrier()
		csp.End()
	} else {
		isp := sp.Child("index")
		if flushErr == nil {
			fail(w.writeOwnIndex())
		}
		isp.End()
		csp := sp.Child("commit")
		if ctx.Comm != nil {
			size := w.maxLogical
			if flushErr != nil {
				size = 0
			}
			sz := ctx.Comm.Allgather(8, size)
			if ctx.Comm.Rank() == 0 {
				var maxSize int64
				for _, v := range sz {
					if s := v.(int64); s > maxSize {
						maxSize = s
					}
				}
				fail(w.writeSizeRecord(maxSize))
			}
			ctx.Comm.Barrier()
		} else if flushErr == nil {
			fail(w.writeSizeRecord(w.maxLogical))
		}
		csp.End()
	}

	if ctx.HostLeader {
		cpath, _ := m.containerPath(w.rel)
		hostRec := path.Join(cpath, openHostsDir, fmt.Sprintf("host.%d", ctx.Host))
		err := ctx.retry(m.opt.Retry, func() error {
			return ctx.Vols[w.vc].Remove(hostRec)
		})
		if err != nil && !errors.Is(err, iofs.ErrNotExist) {
			fail(err)
		}
	}

	// The container's content just changed: advance its generation so the
	// cross-open index cache can never serve a pre-close aggregation, and
	// drop the per-container built-index memo.  This runs after the
	// collective barrier, so by the time any opener observes the new
	// generation every rank's droppings are durable.  A fresh lookup (not
	// w.st) deliberately targets whatever state is live — an explicit
	// rename/unlink during the session orphans w.st, and readers resolve
	// the replacement.
	st := m.stateOf(w.rel, ctx.Tenant)
	st.mu.Lock()
	st.gen++
	st.builtKey, st.built = "", nil
	st.mu.Unlock()
	m.unpin(w.st)
	return errors.Join(errs...)
}

// writeFrameFooter appends the recovery footer to the data dropping:
// this writer's index entries, an entry count, and a magic trailer.
// Physical offsets are unaffected — the footer lands past every data
// extent — and Recover can rebuild the index dropping from it.
func (w *Writer) writeFrameFooter() error {
	var buf []byte
	if w.m.opt.Checksum {
		buf = encodeFrameFooterSums(w.entries, w.sums)
	} else {
		buf = encodeFrameFooter(w.entries)
	}
	return w.ctx.retry(w.m.opt.Retry, func() error {
		_, err := w.dataFile.Append(payload.FromBytes(buf))
		return err
	})
}

// writeSizeRecord caches the logical size in the metadir, stamped with
// the container's current truncation generation.  Records left behind
// by earlier generations (a truncation whose removals partially failed)
// are removed here — self-healing — so a stale larger size can never
// win over the current one.
func (w *Writer) writeSizeRecord(size int64) error {
	cpath, vc := w.m.containerPath(w.rel)
	b := w.ctx.Vols[vc]
	meta := path.Join(cpath, metaDir)
	pol := w.m.opt.Retry
	var ents []Info
	if err := w.ctx.retry(pol, func() error {
		var e error
		ents, e = b.ReadDir(meta)
		return e
	}); err != nil {
		return err
	}
	gen := metaGen(ents)
	var errs []error
	for _, e := range ents {
		if _, g, ok := parseSizeRecord(e.Name); ok && g != gen {
			if err := b.Remove(path.Join(meta, e.Name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
				errs = append(errs, err)
			}
		}
	}
	// Atomic publish: the record appears under its final name or not at
	// all, so a crash here cannot leave a half-created size record.
	name := path.Join(meta, fmt.Sprintf("%s%d.%d.%d", sizePrefix, size, gen, w.ctx.Rank))
	if err := w.ctx.writeFileAtomic(b, name, nil, pol, false); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// writeGlobalIndex persists the flattened global index to the metadir.
// Format: header with the canonical dropping paths, then every shard's
// records with dropping ids rewritten to the canonical order.
func (w *Writer) writeGlobalIndex(shardVals []any) error {
	shards := make([]flattenShard, 0, len(shardVals))
	for _, v := range shardVals {
		shards = append(shards, v.(flattenShard))
	}
	// Canonical order: sorted by data path (matches listDroppings).
	order := make([]int, len(shards))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return shards[order[i]].DataPath < shards[order[j]].DataPath
	})
	paths := make([]string, len(order))
	var all []Rec
	var total int
	for _, s := range shards {
		total += len(s.Recs)
	}
	all = make([]Rec, 0, total)
	for id, si := range order {
		paths[id] = shards[si].DataPath
		for _, rec := range shards[si].Recs {
			rec.Dropping = int32(id)
			all = append(all, rec)
		}
	}
	w.ctx.sleep(w.m.opt.ParseCPUPerEntry * timeDuration(len(all)))
	buf := encodeGlobalIndexRecs(paths, all)
	if w.m.opt.Checksum {
		buf = appendSumTrailer(buf, gidxSumMagic)
	}
	// Atomic temp+rename commit: readers can never decode a half-written
	// global index, and a retried append cannot duplicate entries (each
	// attempt starts from a fresh temp file).
	cpath, _ := w.m.containerPath(w.rel)
	return w.m.commitReplicated(w.ctx, path.Join(cpath, metaDir, globalIndex), buf, w.m.opt.Retry, false)
}
