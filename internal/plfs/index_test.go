package plfs

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEntryCodecRoundtrip(t *testing.T) {
	in := []Entry{
		{LogicalOff: 0, Length: 100, PhysOff: 0, Timestamp: 42, Dropping: 3, Rank: 7},
		{LogicalOff: 1 << 40, Length: 1 << 20, PhysOff: 100, Timestamp: 43, Dropping: 3, Rank: 7},
	}
	buf := encodeEntries(in)
	if len(buf) != 2*EntryBytes {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	out, err := decodeEntries(buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", in, out)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := decodeEntries(make([]byte, EntryBytes+1), 0); err == nil {
		t.Fatal("accepted truncated index")
	}
}

func TestDecodeRewritesDroppingID(t *testing.T) {
	buf := encodeEntries([]Entry{{Length: 1, Dropping: 99}})
	out, err := decodeEntries(buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Dropping != 5 {
		t.Fatalf("dropping id = %d, want reader-assigned 5", out[0].Dropping)
	}
}

func TestGlobalIndexCodec(t *testing.T) {
	paths := []string{"/a/dropping.data.1.0", "/b/dropping.data.1.1"}
	entries := []Entry{
		{LogicalOff: 10, Length: 5, PhysOff: 0, Timestamp: 1, Dropping: 1, Rank: 1},
		{LogicalOff: 0, Length: 10, PhysOff: 0, Timestamp: 2, Dropping: 0, Rank: 0},
	}
	p2, e2, err := decodeGlobalIndex(encodeGlobalIndex(paths, entries))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, p2) || !reflect.DeepEqual(entries, e2) {
		t.Fatal("global index roundtrip mismatch")
	}
	if _, _, err := decodeGlobalIndex([]byte{1, 2}); err == nil {
		t.Fatal("accepted corrupt global index")
	}
}

func TestBuildIndexResolvesByTimestamp(t *testing.T) {
	// Two writers hit the same logical range; the later timestamp wins.
	shards := [][]Entry{
		{{LogicalOff: 0, Length: 100, PhysOff: 0, Timestamp: 10, Dropping: 0, Rank: 0}},
		{{LogicalOff: 50, Length: 100, PhysOff: 0, Timestamp: 20, Dropping: 1, Rank: 1}},
	}
	ix := BuildIndex(shards, []string{"d0", "d1"})
	if ix.Size() != 150 {
		t.Fatalf("size = %d", ix.Size())
	}
	pieces := ix.Lookup(0, 150)
	if len(pieces) != 2 {
		t.Fatalf("pieces = %+v", pieces)
	}
	if pieces[0].Dropping != 0 || pieces[0].Length != 50 {
		t.Fatalf("piece 0 = %+v", pieces[0])
	}
	if pieces[1].Dropping != 1 || pieces[1].Length != 100 || pieces[1].PhysOff != 0 {
		t.Fatalf("piece 1 = %+v", pieces[1])
	}
}

func TestBuildIndexTieBrokenByRank(t *testing.T) {
	shards := [][]Entry{
		{{LogicalOff: 0, Length: 10, Timestamp: 5, Dropping: 0, Rank: 2}},
		{{LogicalOff: 0, Length: 10, Timestamp: 5, Dropping: 1, Rank: 9}},
	}
	ix := BuildIndex(shards, []string{"d0", "d1"})
	pieces := ix.Lookup(0, 10)
	if len(pieces) != 1 || pieces[0].Dropping != 1 {
		t.Fatalf("tie not broken by higher rank: %+v", pieces)
	}
}

func TestLookupHoles(t *testing.T) {
	shards := [][]Entry{
		{{LogicalOff: 100, Length: 50, PhysOff: 7, Timestamp: 1, Dropping: 0}},
	}
	ix := BuildIndex(shards, []string{"d0"})
	pieces := ix.Lookup(50, 150)
	// [50,100) hole, [100,150) data, [150,200) hole.
	if len(pieces) != 3 {
		t.Fatalf("pieces = %+v", pieces)
	}
	if pieces[0].Dropping != -1 || pieces[0].Length != 50 {
		t.Fatalf("lead hole = %+v", pieces[0])
	}
	if pieces[1].PhysOff != 7 || pieces[1].Length != 50 {
		t.Fatalf("data = %+v", pieces[1])
	}
	if pieces[2].Dropping != -1 || pieces[2].Length != 50 {
		t.Fatalf("tail hole = %+v", pieces[2])
	}
}

func TestLookupPhysOffsetWithinSplitEntry(t *testing.T) {
	// One 100-byte write at logical 0, physical 1000.  Reading [30,60)
	// must map to physical [1030,1060).
	ix := BuildIndex([][]Entry{{{LogicalOff: 0, Length: 100, PhysOff: 1000, Timestamp: 1}}}, []string{"d"})
	p := ix.Lookup(30, 30)
	if len(p) != 1 || p[0].PhysOff != 1030 || p[0].Length != 30 {
		t.Fatalf("pieces = %+v", p)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := BuildIndex(nil, nil)
	if ix.Size() != 0 || ix.Segments() != 0 {
		t.Fatal("empty index not empty")
	}
	p := ix.Lookup(0, 10)
	if len(p) != 1 || p[0].Dropping != -1 {
		t.Fatalf("lookup on empty = %+v", p)
	}
}

// Property: the index resolves exactly like a brute-force byte oracle:
// every byte belongs to the write with the highest (timestamp, rank).
func TestIndexMatchesByteOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const fileMax = 2000
		nWriters := 1 + rng.Intn(6)
		type byteOwner struct {
			drop int32
			phys int64
		}
		var oracle [fileMax]*byteOwner
		oracleSeq := make([]uint64, fileMax)
		shards := make([][]Entry, nWriters)
		paths := make([]string, nWriters)
		for w := 0; w < nWriters; w++ {
			paths[w] = "d"
			var phys int64
			for k := 0; k < 1+rng.Intn(20); k++ {
				off := int64(rng.Intn(fileMax - 100))
				n := int64(1 + rng.Intn(100))
				ts := int64(rng.Intn(50)) // deliberately collide timestamps
				e := Entry{LogicalOff: off, Length: n, PhysOff: phys,
					Timestamp: ts, Dropping: int32(w), Rank: int32(w)}
				shards[w] = append(shards[w], e)
				seq := seqOf(e)
				// >= : a same-seq later write by the same rank wins, matching
				// the resolver's later-entry tiebreak.
				for b := off; b < off+n; b++ {
					if seq >= oracleSeq[b] {
						oracleSeq[b] = seq
						oracle[b] = &byteOwner{drop: int32(w), phys: phys + (b - off)}
					}
				}
				phys += n
			}
		}
		ix := BuildIndex(shards, paths)
		// Check a sampling of ranges against the oracle.
		for trial := 0; trial < 20; trial++ {
			off := int64(rng.Intn(fileMax))
			n := int64(1 + rng.Intn(fileMax-int(off)))
			cur := off
			for _, p := range ix.Lookup(off, n) {
				for i := int64(0); i < p.Length; i++ {
					b := cur + i
					o := oracle[b]
					if p.Dropping < 0 {
						if o != nil {
							return false
						}
						continue
					}
					if o == nil || o.drop != p.Dropping || o.phys != p.PhysOff+i {
						return false
					}
				}
				cur += p.Length
			}
			if cur != off+n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkPartition(t *testing.T) {
	// chunk must partition [0,total) exactly across buckets.
	for _, tc := range []struct{ total, nb int }{{10, 3}, {7, 7}, {3, 5}, {0, 4}, {100, 1}} {
		seen := map[int]int{}
		for b := 0; b < tc.nb; b++ {
			for _, i := range chunk(tc.total, tc.nb, b) {
				seen[i]++
			}
		}
		if len(seen) != tc.total {
			t.Fatalf("chunk(%d,%d) covered %d items", tc.total, tc.nb, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("chunk(%d,%d): item %d assigned %d times", tc.total, tc.nb, i, c)
			}
		}
	}
}
