package plfs

// Background repair (DESIGN.md §15).  The repair pass walks containers
// and fixes what it finds, reusing the recovery machinery:
//
//   - an index dropping whose primary is lost or undecodable is restored
//     from a live replica, or rebuilt from the data dropping's recovery
//     footer when no replica survives;
//   - an under-replicated index dropping or global index (primary fine,
//     replica missing/corrupt) is re-replicated from the primary;
//   - a corrupt global index whose replica decodes is restored from it;
//   - orphaned commit temp files are swept.
//
// Every problem found ends as exactly one of repaired or unrepairable,
// so the ledger invariant found = repaired + unrepairable holds over
// any quiescent window; the Service accumulates the ledger across ticks
// and publishes it through obs (plfs.repair.*).  The same per-container
// pass backs `plfsctl scrub -repair`.

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"
	"strings"
	"time"
)

// RepairReport summarizes one repair pass.
type RepairReport struct {
	Containers   int      `json:"containers"`   // containers walked
	Deferred     int      `json:"deferred"`     // work skipped: volume breaker not closed
	Found        int      `json:"found"`        // problems found
	Repaired     int      `json:"repaired"`     // problems fixed
	Unrepairable int      `json:"unrepairable"` // problems that remain
	Rebuilt      []string `json:"rebuilt"`      // indexes rebuilt from footers
	ReReplicated []string `json:"rereplicated"` // files re-replicated / restored
	RemovedTmp   []string `json:"removed_tmp"`  // orphaned commit temps swept
	Problems     []string `json:"problems"`     // detail per unrepairable problem
}

// OK reports whether everything found was repaired.
func (r RepairReport) OK() bool { return r.Unrepairable == 0 }

// String renders a human-readable summary.
func (r RepairReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "containers %d: found %d = repaired %d + unrepairable %d",
		r.Containers, r.Found, r.Repaired, r.Unrepairable)
	for _, p := range r.RemovedTmp {
		b.WriteString("\nREMOVED TMP: " + p)
	}
	for _, p := range r.Rebuilt {
		b.WriteString("\nREBUILT: " + p)
	}
	for _, p := range r.ReReplicated {
		b.WriteString("\nRE-REPLICATED: " + p)
	}
	for _, p := range r.Problems {
		b.WriteString("\nUNREPAIRABLE: " + p)
	}
	return b.String()
}

// merge folds one container's findings into an aggregate report.
func (r *RepairReport) merge(c RepairReport) {
	r.Deferred += c.Deferred
	r.Found += c.Found
	r.Repaired += c.Repaired
	r.Unrepairable += c.Unrepairable
	r.Rebuilt = append(r.Rebuilt, c.Rebuilt...)
	r.ReReplicated = append(r.ReReplicated, c.ReReplicated...)
	r.RemovedTmp = append(r.RemovedTmp, c.RemovedTmp...)
	r.Problems = append(r.Problems, c.Problems...)
}

// found books one problem that was fixed.
func (r *RepairReport) fixed() { r.Found++; r.Repaired++ }

// failed books one problem that could not be fixed.
func (r *RepairReport) failed(format string, args ...any) {
	r.Found++
	r.Unrepairable++
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// listContainers walks the mount's logical namespace and returns every
// container's relative path, sorted (the union across volumes; shadow
// and replica directories resolve to the same logical name).
func (m *Mount) listContainers(ctx Ctx) ([]string, error) {
	seen := map[string]bool{}
	var walk func(rel string) error
	walk = func(rel string) error {
		for v, root := range m.roots {
			if m.health != nil && m.health.Avoid(root, ctx.now()) {
				// Open breaker mid-cooldown: grinding a degraded-latency
				// ReadDir every tick would tax the scrub, and the subtree
				// resurfaces next pass.  When the cooldown HAS elapsed,
				// Avoid admits this listing as the half-open probe — the
				// periodic scrub doubles as the breaker's prober even when
				// steering keeps the workload itself off the volume.
				continue
			}
			ents, err := ctx.Vols[v].ReadDir(path.Join(root, rel))
			if err != nil {
				// A transiently failing volume hides its subtree for this
				// pass only — the scrubber is periodic, so the next tick
				// picks the containers up.  Anything else aborts.
				if errors.Is(err, iofs.ErrNotExist) || Retryable(err) {
					continue
				}
				return err
			}
			for _, e := range ents {
				if !e.Dir {
					continue
				}
				sub := path.Join(rel, e.Name)
				if seen[sub] {
					continue
				}
				if m.volDegraded(ctx, m.containerVol(sub)) {
					// Examining this entry means degraded-latency canonical
					// lookups; the periodic scrubber catches it next pass.
					continue
				}
				ok, err := m.IsContainer(ctx, sub)
				if err != nil {
					if Retryable(err) {
						continue
					}
					return err
				}
				if ok {
					seen[sub] = true
					continue
				}
				if err := walk(sub); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(""); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for rel := range seen {
		out = append(out, rel)
	}
	sort.Strings(out)
	return out, nil
}

// decodableIndex reads and decodes an index file copy, returning its
// bytes when healthy.
func (m *Mount) decodableIndex(ctx Ctx, v int, p string) ([]byte, bool) {
	pl, _, err := ctx.readAllRetried(ctx.Vols[v], p, m.opt.Retry)
	if err != nil {
		return nil, false
	}
	buf := pl.Materialize()
	if _, derr := decodeIndexDropping(buf, 0); derr != nil {
		return nil, false
	}
	return buf, true
}

// RepairContainer runs one container's repair pass (the daemon's and
// `plfsctl scrub -repair`'s shared path).  It returns an error only
// when the container itself cannot be examined; per-file outcomes land
// in the report's ledger.
func (m *Mount) RepairContainer(ctx Ctx, rel string) (RepairReport, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	rep := RepairReport{Containers: 1}
	if ok, err := m.IsContainer(ctx, rel); err != nil {
		return rep, err
	} else if !ok {
		return rep, fmt.Errorf("plfs: repair %s: not a container: %w", rel, iofs.ErrNotExist)
	}
	pol := m.opt.Retry
	changed := false

	// Orphaned commit temps (crashed atomic commits) sweep clean.
	removed, err := m.sweepTmpFiles(ctx, rel)
	if err != nil {
		return rep, err
	}
	rep.RemovedTmp = removed

	// Global index: primary must decode; a corrupt or lost primary is
	// restored from the first healthy replica; healthy primaries heal
	// their replicas.
	cpath, vc := m.containerPath(rel)
	gp := path.Join(cpath, metaDir, globalIndex)
	gbuf, gstate := m.globalIndexState(ctx, vc, gp)
	switch gstate {
	case fileHealthy:
		if m.repairReplicasOf(ctx, gp, gbuf, pol, &rep) {
			changed = true
		}
	case fileBad:
		if rbuf, ok := m.anyReplica(ctx, gp, true); ok {
			if err := ctx.writeFileAtomic(ctx.Vols[vc], gp, rbuf, pol, true); err != nil {
				rep.failed("%s: restoring global index from replica: %v", gp, err)
			} else {
				rep.fixed()
				rep.ReReplicated = append(rep.ReReplicated, gp)
				changed = true
			}
		} else {
			// No replica can restore it; drop the corrupt file (readers
			// re-aggregate from the per-writer indexes) and count the loss
			// as repaired-by-removal only if the remove lands.
			if err := ctx.Vols[vc].Remove(gp); err != nil && !errors.Is(err, iofs.ErrNotExist) {
				rep.failed("%s: dropping corrupt global index: %v", gp, err)
			} else {
				m.removeReplicas(ctx, gp)
				rep.fixed()
				changed = true
			}
		}
	}

	// Per-dropping walk.
	drops, err := m.listDroppings(ctx, rel)
	if err != nil {
		return rep, err
	}
	for _, d := range drops {
		if m.volDegraded(ctx, d.Vol) {
			// The dropping's volume is browned out or down: examining it
			// now would misread transient sickness as data loss (and every
			// probe costs a degraded-latency op).  The periodic scrubber
			// returns once the breaker closes.
			rep.Deferred++
			continue
		}
		ipath := d.Index
		if ipath == "" {
			dir, base := path.Split(d.Data)
			ipath = dir + indexPrefix + strings.TrimPrefix(base, dataPrefix)
		}
		buf, ok := m.decodableIndex(ctx, d.Vol, ipath)
		if ok {
			// Primary healthy: heal any missing/corrupt replicas.
			if m.repairReplicasOf(ctx, ipath, buf, pol, &rep) {
				changed = true
			}
			continue
		}
		// Primary lost or torn: restore from a replica, else rebuild from
		// the data dropping's recovery footer.
		if rbuf, rok := m.anyReplica(ctx, ipath, false); rok {
			if err := ctx.writeFileAtomic(ctx.Vols[d.Vol], ipath, rbuf, pol, true); err != nil {
				rep.failed("%s: restoring index from replica: %v", ipath, err)
				continue
			}
			rep.fixed()
			rep.ReReplicated = append(rep.ReReplicated, ipath)
			changed = true
			continue
		}
		entries, _, _, footErr := m.readFrameFooter(ctx, d)
		if footErr != nil {
			if fi, serr := ctx.Vols[d.Vol].Stat(d.Data); serr == nil && fi.Size == 0 && d.Index == "" {
				continue // empty dropping: nothing to lose, nothing to repair
			}
			rep.failed("%s: no healthy index, no replica, no usable footer: %v", d.Data, footErr)
			continue
		}
		rb, err := m.rebuildIndex(ctx, droppingRef{Data: d.Data, Index: ipath, Vol: d.Vol}, entries)
		if err != nil {
			rep.failed("%s: rebuilding index from footer: %v", d.Data, err)
			continue
		}
		rep.fixed()
		rep.Rebuilt = append(rep.Rebuilt, rb)
		changed = true
	}
	if changed {
		m.invalidateState(rel, ctx.Tenant)
	}
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.repair.found").Add(int64(rep.Found))
		ctx.Obs.Counter("plfs.repair.repaired").Add(int64(rep.Repaired))
		ctx.Obs.Counter("plfs.repair.unrepairable").Add(int64(rep.Unrepairable))
	}
	return rep, nil
}

type fileState int

const (
	fileMissing fileState = iota
	fileHealthy
	fileBad
)

// globalIndexState classifies the container's flattened global index.
func (m *Mount) globalIndexState(ctx Ctx, vc int, gp string) ([]byte, fileState) {
	pl, _, err := ctx.readAllRetried(ctx.Vols[vc], gp, m.opt.Retry)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			// Missing is only a problem if a replica exists (a lost primary);
			// classify by replica presence.
			if _, ok := m.anyReplica(ctx, gp, true); ok {
				return nil, fileBad
			}
			return nil, fileMissing
		}
		return nil, fileBad
	}
	buf := pl.Materialize()
	if _, _, derr := decodeGlobalIndexAuto(buf); derr != nil {
		return nil, fileBad
	}
	return buf, fileHealthy
}

// anyReplica returns the first replica copy of primary that decodes
// (global selects the global-index decoder).
func (m *Mount) anyReplica(ctx Ctx, primary string, global bool) ([]byte, bool) {
	for k := 1; k < m.replicas(); k++ {
		rp, rv := m.replicaPath(primary, k)
		pl, _, err := ctx.readAllRetried(ctx.Vols[rv], rp, m.opt.Retry)
		if err != nil {
			continue
		}
		buf := pl.Materialize()
		if global {
			if _, _, derr := decodeGlobalIndexAuto(buf); derr == nil {
				return buf, true
			}
		} else if _, derr := decodeIndexDropping(buf, 0); derr == nil {
			return buf, true
		}
	}
	return nil, false
}

// repairReplicasOf re-replicates primary's healthy bytes over any
// replica slot that is missing or fails to byte-match, reporting
// whether anything changed.
func (m *Mount) repairReplicasOf(ctx Ctx, primary string, buf []byte, pol RetryPolicy, rep *RepairReport) bool {
	changed := false
	for k := 1; k < m.replicas(); k++ {
		rp, rv := m.replicaPath(primary, k)
		if m.volDegraded(ctx, rv) {
			rep.Deferred++
			continue
		}
		if pl, _, err := ctx.readAllRetried(ctx.Vols[rv], rp, pol); err == nil {
			if string(pl.Materialize()) == string(buf) {
				continue // replica healthy
			}
		}
		err := m.ensureDirs(ctx, rv, path.Dir(rp))
		if err == nil {
			err = ctx.writeFileAtomic(ctx.Vols[rv], rp, buf, pol, true)
		}
		if err != nil {
			rep.failed("%s: re-replicating to %s: %v", primary, rp, err)
			continue
		}
		rep.fixed()
		rep.ReReplicated = append(rep.ReReplicated, rp)
		changed = true
	}
	return changed
}

// RepairTick runs one repair pass over every container of m, folding
// the outcome into the service's repair ledger and obs counters.
func (s *Service) RepairTick(ctx Ctx, m *Mount) (RepairReport, error) {
	rep := RepairReport{}
	rels, err := m.listContainers(ctx)
	if err != nil {
		return rep, err
	}
	rep.Containers = 0
	for _, rel := range rels {
		if m.volDegraded(ctx, m.containerVol(rel)) {
			// Canonical volume sick: defer the whole container rather than
			// grind degraded-latency ops and misdiagnose transient errors.
			rep.Deferred++
			continue
		}
		c, err := m.RepairContainer(ctx, rel)
		if err != nil {
			rep.failed("%s: %v", rel, err)
			continue
		}
		rep.Containers++
		rep.merge(c)
	}
	s.repairTicks.Add(1)
	s.repairFound.Add(int64(rep.Found))
	s.repairRepaired.Add(int64(rep.Repaired))
	s.repairUnrepairable.Add(int64(rep.Unrepairable))
	s.repairDeferred.Add(int64(rep.Deferred))
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.repair.ticks").Add(1)
	}
	return rep, nil
}

// RepairDaemon runs ticks repair passes, interval apart, each sleep
// charged through ctx's Sleeper — virtual time under the simulator, so
// the scrub cadence is deterministic in the seed; real sleep over osfs.
// Run it as its own simulator proc (or goroutine).  It returns the
// merged report.
func (s *Service) RepairDaemon(ctx Ctx, m *Mount, interval time.Duration, ticks int) RepairReport {
	all := RepairReport{}
	for i := 0; i < ticks; i++ {
		ctx.sleep(interval)
		rep, err := s.RepairTick(ctx, m)
		if err != nil {
			all.failed("tick %d: %v", i, err)
			continue
		}
		all.Containers = rep.Containers
		all.merge(rep)
	}
	return all
}
