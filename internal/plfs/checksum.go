package plfs

// Checksummed framing (Options.Checksum).  When enabled, every piece of
// index metadata the reader trusts — per-rank index droppings, the
// flattened global index, and the recovery footer — is written with a
// CRC32C (Castagnoli) trailer, and the recovery footer additionally
// carries one CRC32C per data extent so Scrub and Options.VerifyData can
// detect silently corrupted data bytes, not just torn metadata.
//
// The trailers are self-describing: each has a distinct magic and a
// length that cannot collide with the raw encodings (an index dropping
// is a multiple of EntryBytes=40; the 16-byte trailer shifts it to
// 16 mod 40), so readers accept checksummed and legacy files
// interchangeably.  Options.Checksum therefore only controls what gets
// written; verification always happens when a trailer is present.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"plfs/internal/payload"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// sumTrailerLen is the length of the metadata checksum trailer:
	// [uint32 crc32c][uint32 reserved=0][uint64 magic].
	sumTrailerLen = 16
	// idxSumMagic marks a checksummed index dropping ("PLFS_ICX").
	idxSumMagic = uint64(0x504c46535f494358)
	// gidxSumMagic marks a checksummed global index ("PLFS_GCX").
	gidxSumMagic = uint64(0x504c46535f474358)
)

// appendSumTrailer appends the CRC32C trailer for body to body.
func appendSumTrailer(body []byte, magic uint64) []byte {
	crc := crc32.Checksum(body, castagnoli)
	var tr [sumTrailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:], crc)
	binary.LittleEndian.PutUint64(tr[8:], magic)
	return append(body, tr[:]...)
}

// splitSumTrailer detects, verifies, and strips a checksum trailer.  It
// returns the body (data itself when no trailer is present — legacy
// files stay readable) and whether a trailer was found; a trailer whose
// checksum does not match the body is a hard error.
func splitSumTrailer(data []byte, magic uint64) ([]byte, bool, error) {
	if len(data) < sumTrailerLen {
		return data, false, nil
	}
	tr := data[len(data)-sumTrailerLen:]
	if binary.LittleEndian.Uint64(tr[8:]) != magic {
		return data, false, nil
	}
	body := data[:len(data)-sumTrailerLen]
	if binary.LittleEndian.Uint32(tr[4:]) != 0 {
		return nil, true, fmt.Errorf("checksum trailer corrupt (reserved field %08x)",
			binary.LittleEndian.Uint32(tr[4:]))
	}
	want := binary.LittleEndian.Uint32(tr[0:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, true, fmt.Errorf("checksum mismatch (crc32c %08x, trailer says %08x)", got, want)
	}
	return body, true, nil
}

// decodeIndexDropping decodes one index dropping (either record-format
// generation), verifying and stripping its checksum trailer when present.
func decodeIndexDropping(data []byte, droppingID int32) ([]Rec, error) {
	body, _, err := splitSumTrailer(data, idxSumMagic)
	if err != nil {
		return nil, fmt.Errorf("index dropping %v", err)
	}
	return decodeRecs(body, droppingID)
}

// decodeGlobalIndexAuto decodes a global index (either record-format
// generation), verifying and stripping its checksum trailer when present.
func decodeGlobalIndexAuto(data []byte) ([]string, []Rec, error) {
	body, _, err := splitSumTrailer(data, gidxSumMagic)
	if err != nil {
		return nil, nil, fmt.Errorf("global index %v", err)
	}
	return decodeGlobalIndexRecs(body)
}

// payloadCRC extends sum with the payload's content.  Synthetic and zero
// payloads are streamed through a small pattern buffer rather than
// materialized, so the writer-side cost is CPU only and the resulting
// CRC matches what a reader computes from the stored bytes, whether the
// backend materializes them (osfs) or replays the algebra (simfs).
func payloadCRC(sum uint32, p payload.Payload) uint32 {
	if p.Bytes != nil {
		return crc32.Update(sum, castagnoli, p.Bytes)
	}
	const chunk = 32 << 10
	n := p.Len()
	buf := make([]byte, min64(chunk, n))
	for off := int64(0); off < n; {
		m := min64(chunk, n-off)
		b := buf[:m]
		if p.Tag == 0 {
			for i := range b {
				b[i] = 0
			}
		} else {
			for i := range b {
				b[i] = payload.PatternByte(p.Tag, p.Phase+off+int64(i))
			}
		}
		sum = crc32.Update(sum, castagnoli, b)
		off += m
	}
	return sum
}

// listCRC extends sum with every payload in the list, in order.
func listCRC(sum uint32, pl payload.List) uint32 {
	for _, p := range pl {
		sum = payloadCRC(sum, p)
	}
	return sum
}

// extentSums caches one dropping's per-extent data checksums for
// Options.VerifyData, with a verified bit per extent so each extent is
// read and hashed at most once per reader.
type extentSums struct {
	entries  []Entry
	sums     []uint32
	verified []bool
	absent   bool // no checksummed footer: nothing to verify
}

// loadSums lazily reads the checksummed recovery footer of dropping id.
// Droppings without one (legacy, unframed, or unchecksummed) are marked
// absent and served unverified.
func (r *Reader) loadSums(id int32) *extentSums {
	if es, ok := r.vsums[id]; ok {
		return es
	}
	if r.vsums == nil {
		r.vsums = map[int32]*extentSums{}
	}
	p := r.ix.Droppings()[id]
	ref := droppingRef{Data: p, Vol: r.m.volOfPath(p)}
	entries, sums, _, err := r.m.readFrameFooter(r.ctx, ref)
	es := &extentSums{}
	if err != nil || sums == nil {
		es.absent = true
	} else {
		es.entries, es.sums, es.verified = entries, sums, make([]bool, len(entries))
	}
	r.vsums[id] = es
	return es
}

// verifyPiece checks every footer extent overlapping the piece's
// physical range against its recorded CRC32C, reading the extent's
// stored bytes.  Extents are verified whole (the CRC covers the full
// extent) and at most once per reader.
func (r *Reader) verifyPiece(piece Piece) error {
	es := r.loadSums(piece.Dropping)
	if es.absent {
		return nil
	}
	lo, hi := piece.PhysOff, piece.PhysOff+piece.Length
	for i, e := range es.entries {
		if e.PhysOff+e.Length <= lo || e.PhysOff >= hi || es.verified[i] {
			continue
		}
		f, err := r.handle(piece.Dropping)
		if err != nil {
			return err
		}
		var pl payload.List
		if err := r.ctx.retry(r.m.opt.Retry, func() error {
			var e2 error
			pl, e2 = f.ReadAt(e.PhysOff, e.Length)
			return e2
		}); err != nil {
			return err
		}
		if got := listCRC(0, pl); got != es.sums[i] {
			return fmt.Errorf("plfs: data checksum mismatch: %s extent [%d,%d) (crc32c %08x, footer says %08x)",
				r.ix.Droppings()[piece.Dropping], e.PhysOff, e.PhysOff+e.Length, got, es.sums[i])
		}
		es.verified[i] = true
	}
	return nil
}
