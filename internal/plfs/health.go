package plfs

// Per-volume health: the failure-domain layer of the self-healing
// service (DESIGN.md §15).  Every backend operation's outcome — error
// or latency — feeds a per-volume circuit breaker:
//
//	closed ──(threshold consecutive failures/slow ops)──> open
//	open ──(probe cooldown elapses; next caller probes)──> half-open
//	half-open ──(probe succeeds)──> closed
//	half-open ──(probe fails/slow)──> open, cooldown doubled
//
// An open breaker tells writers to place new droppings elsewhere and
// readers to hedge index reads to replicas.  Foreground operations only
// ever steer (they ask State and route around anything not closed);
// the half-open probe budget is spent by the periodic repair scrub via
// Avoid, whose per-volume listing becomes the probe — one cheap
// operation off the workload's critical path, instead of a step's worth
// of foreground I/O stampeding into a still-sick volume.  Operations
// that cannot steer (a canonical-volume lookup has exactly one home)
// still land, and their outcomes resolve a pending probe the same way.
// All timing comes from the context's Clock and all waiting is the
// caller's own Sleeper-charged backoff, which keeps the state machine
// fully deterministic under the discrete-event virtual clock.
//
// The table is owned by the Service and shared across all of its
// mounts and tenants (one browned-out OST is everyone's problem); a
// standalone mount that enables HedgedReads or IndexReplicas gets a
// private table.

import (
	"errors"
	"sort"
	"sync"
	"time"

	"plfs/internal/obs"
	"plfs/internal/payload"

	"plfs/internal/extent"
)

// BreakerState is one volume's circuit-breaker position.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: healthy; operations flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the volume is presumed down or degraded; placement
	// avoids it and index reads prefer replicas until the probe cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the next operation is the
	// probe whose outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// HealthConfig tunes the per-volume breakers.
type HealthConfig struct {
	// FailureThreshold is how many consecutive failed or slow operations
	// open a closed breaker (default 4).
	FailureThreshold int
	// ProbeAfter is the first cooldown before an open breaker lets a
	// half-open probe through (default 25ms of Clock time); every failed
	// probe doubles it up to MaxProbeAfter (default 400ms).
	ProbeAfter    time.Duration
	MaxProbeAfter time.Duration
	// SlowFactor declares an operation slow when it exceeds this multiple
	// of the volume's rolling p99 (default 4), with a floor of MinSlow
	// (default 1ms) so near-instant healthy baselines don't flag noise.
	SlowFactor float64
	MinSlow    time.Duration
	// MinSamples is how many healthy latency samples the rolling window
	// needs before slowness detection activates (default 8).
	MinSamples int
	// HedgeAfter is the absolute latency beyond which a small index read
	// is hedged to a replica while the statistical baseline is still
	// unwarmed (default 20ms).
	HedgeAfter time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 4
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 25 * time.Millisecond
	}
	if c.MaxProbeAfter <= 0 {
		c.MaxProbeAfter = 400 * time.Millisecond
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 4
	}
	if c.MinSlow <= 0 {
		c.MinSlow = time.Millisecond
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 20 * time.Millisecond
	}
	return c
}

// latencyWindow is the rolling healthy-latency sample count per volume
// and op class.
const latencyWindow = 64

// opClass separates the latency baselines: metadata operations (mkdir,
// create, stat, readdir, remove, rename, open) complete in microseconds
// while data transfers scale with payload size.  Pooling them in one
// window would let the data tail hide a browned-out volume's metadata
// slowness (and flag healthy transfers as slow against a
// metadata-dominated p99), so each class keeps its own ring.
type opClass int

const (
	classMeta opClass = iota
	classData
	numClasses
)

// latRing is one class's rolling healthy-latency window.
type latRing struct {
	ring [latencyWindow]int64 // healthy latency samples, ns
	n    int                  // samples resident (<= latencyWindow)
	i    int                  // next write position
}

// Health is the per-volume breaker table, keyed by volume root path so
// mounts sharing backing volumes share their health view.
type Health struct {
	cfg HealthConfig

	mu   sync.Mutex
	vols map[string]*volBreaker
}

type volBreaker struct {
	state BreakerState
	// consec counts consecutive failures/slow ops while closed, per op
	// class: a healthy bulk transfer must not reset a metadata slowness
	// streak (brownouts often tax the metadata path while leaving
	// transfer bandwidth mostly intact).
	consec    [numClasses]int
	probeAt   int64 // Clock ns at which an open breaker admits a probe
	cooldown  time.Duration
	probeLeft int // half-open trial admissions remaining this cooldown

	rings [numClasses]latRing

	opens   int64 // closed->open transitions
	probes  int64 // open->half-open transitions
	probeOK int64 // half-open->closed transitions
	fails   int64 // observed failures (all states)
	slows   int64 // observed slow successes
}

// NewHealth builds a breaker table.
func NewHealth(cfg HealthConfig) *Health {
	return &Health{cfg: cfg.withDefaults(), vols: map[string]*volBreaker{}}
}

func (h *Health) vol(root string) *volBreaker {
	b := h.vols[root]
	if b == nil {
		b = &volBreaker{cooldown: h.cfg.ProbeAfter}
		h.vols[root] = b
	}
	return b
}

// p99Locked returns the rolling p99 of b's healthy samples in one op
// class (0 with too few samples).  Call with h.mu held.
func (h *Health) p99Locked(b *volBreaker, cls opClass) time.Duration {
	r := &b.rings[cls]
	if r.n < h.cfg.MinSamples {
		return 0
	}
	tmp := make([]int64, r.n)
	copy(tmp, r.ring[:r.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := (99*r.n + 99) / 100
	if idx >= r.n {
		idx = r.n - 1
	}
	return time.Duration(tmp[idx])
}

// baselineLocked is the healthy-latency reference for one op class: the
// median of the per-volume rolling p99s across every volume with a
// warmed window.  Peer comparison, not self comparison — a volume whose
// own window filled while it was already degraded would otherwise grade
// its slowness against a poisoned baseline and never flag, while its
// healthy peers pin the median to what the hardware actually delivers.
func (h *Health) baselineLocked(cls opClass) time.Duration {
	ps := make([]int64, 0, len(h.vols))
	for _, b := range h.vols {
		if p := h.p99Locked(b, cls); p > 0 {
			ps = append(ps, int64(p))
		}
	}
	if len(ps) == 0 {
		return 0
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return time.Duration(ps[(len(ps)-1)/2])
}

// slowCutoffLocked is the duration beyond which a cls operation counts
// as slow (0 = detection inactive).
func (h *Health) slowCutoffLocked(cls opClass) time.Duration {
	p := h.baselineLocked(cls)
	if p == 0 {
		return 0
	}
	cut := time.Duration(float64(p) * h.cfg.SlowFactor)
	if cut < h.cfg.MinSlow {
		cut = h.cfg.MinSlow
	}
	return cut
}

// Observe feeds one metadata operation's outcome into root's breaker.
// Failure means an error the retry policy would classify as worth
// retrying (transient faults, EIO-shaped errors); namespace verdicts
// like ErrNotExist are neutral.  now is Clock ns at completion, d the
// operation's duration.
func (h *Health) Observe(root string, now int64, d time.Duration, err error) {
	h.observe(root, now, d, err, classMeta)
}

// ObserveData is Observe for data-transfer operations (reads, writes,
// appends), whose latency baseline is kept separate from metadata.
// Only small transfers (<= dataGradeMax) are latency-graded: a bulk
// transfer's duration is dominated by payload size and volume queuing,
// which drowns the fixed per-op overhead a brownout adds, so grading it
// against small-op baselines produces false alarms under healthy
// contention.  Index appends and index reads — the small, frequent ops
// — carry the undiluted signal.  Bulk successes are neutral; failures
// of any size count.
func (h *Health) ObserveData(root string, now int64, d time.Duration, bytes int64, err error) {
	if bytes > dataGradeMax && err == nil {
		return
	}
	h.observe(root, now, d, err, classData)
}

// dataGradeMax is the largest data transfer whose latency feeds the
// breaker's slowness detector.
const dataGradeMax = 16 << 10

func (h *Health) observe(root string, now int64, d time.Duration, err error, cls opClass) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.vol(root)
	failed := err != nil && Retryable(err)
	slow := false
	if !failed {
		// Latency grades every completed operation, including neutral
		// namespace verdicts (ErrNotExist etc.): a lookup that took 64ms
		// to say "not found" is still evidence of a sick volume, and a
		// probe must not be winnable by a slow miss.
		if cut := h.slowCutoffLocked(cls); cut > 0 && d > cut {
			slow = true
		}
	}
	if failed {
		b.fails++
	}
	if slow {
		b.slows++
	}
	bad := failed || slow
	switch b.state {
	case BreakerHalfOpen:
		if bad {
			// Probe lost: back to open with a doubled cooldown.
			b.state = BreakerOpen
			b.cooldown *= 2
			if b.cooldown > h.cfg.MaxProbeAfter {
				b.cooldown = h.cfg.MaxProbeAfter
			}
			b.probeAt = now + int64(b.cooldown)
			b.opens++
			return
		}
		// Probe won: healthy again.
		b.state = BreakerClosed
		b.consec = [numClasses]int{}
		b.cooldown = h.cfg.ProbeAfter
		b.probeOK++
		if err == nil {
			h.pushLocked(b, cls, d)
		}
	case BreakerOpen:
		// Stragglers finishing against an open breaker carry no new
		// information; the half-open probe decides.
	default: // closed
		if bad {
			b.consec[cls]++
			if b.consec[cls] >= h.cfg.FailureThreshold {
				b.state = BreakerOpen
				b.probeAt = now + int64(b.cooldown)
				b.opens++
			}
			return
		}
		b.consec[cls] = 0
		if err == nil {
			h.pushLocked(b, cls, d)
		}
	}
}

// pushLocked records a healthy latency sample.
func (h *Health) pushLocked(b *volBreaker, cls opClass, d time.Duration) {
	if d < 0 {
		d = 0
	}
	r := &b.rings[cls]
	r.ring[r.i] = int64(d)
	r.i = (r.i + 1) % latencyWindow
	if r.n < latencyWindow {
		r.n++
	}
}

// State returns root's breaker state at Clock time now, transitioning
// an open breaker to half-open when its cooldown has elapsed — the
// caller asking is the probe, so route its operation to the volume.
func (h *Health) State(root string, now int64) BreakerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.vols[root]
	if b == nil {
		return BreakerClosed
	}
	if b.state == BreakerOpen && now >= b.probeAt {
		b.state = BreakerHalfOpen
		b.probes++
		b.probeLeft = 1
		b.probeAt = now + int64(b.cooldown)
	}
	return b.state
}

// Avoid reports whether deferrable background work should steer around
// root right now, spending the half-open probe budget: one caller per
// cooldown interval gets false on a not-yet-closed breaker and becomes
// the probe.  The repair scrub is the intended caller — foreground
// reads and placement use State and never probe — so a still-sick
// volume sees one cheap listing per cooldown instead of the full
// workload stampeding back the moment the cooldown elapses.
func (h *Health) Avoid(root string, now int64) bool {
	if h.State(root, now) == BreakerOpen {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.vols[root]
	if b == nil || b.state != BreakerHalfOpen {
		return false
	}
	if b.probeLeft > 0 {
		b.probeLeft--
		return false
	}
	if now >= b.probeAt {
		// The previous trial resolved nothing (a neutral bulk transfer,
		// or a caller that checked and never issued the op).  Re-arm with
		// a doubled interval so unresolved trials thin out exponentially
		// instead of admitting every caller whose arrival outruns a
		// fixed cooldown.
		b.cooldown *= 2
		if b.cooldown > h.cfg.MaxProbeAfter {
			b.cooldown = h.cfg.MaxProbeAfter
		}
		b.probeAt = now + int64(b.cooldown)
		return false
	}
	return true
}

// Slow reports whether a d-long, bytes-sized data read exceeded the
// fleet's rolling small-op baseline — the hedging trigger.  Bulk
// transfers are never graded (see ObserveData).
func (h *Health) Slow(root string, d time.Duration, bytes int64) bool {
	if bytes > dataGradeMax {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.vols[root] == nil {
		return false
	}
	cut := h.slowCutoffLocked(classData)
	if cut == 0 {
		// Baseline not warmed yet: fall back to the absolute hedge
		// threshold so a browned-out primary is still escaped early on.
		cut = h.cfg.HedgeAfter
	}
	return d > cut
}

// VolHealth is one volume's health snapshot.
type VolHealth struct {
	Root        string
	State       BreakerState
	Consecutive int           // consecutive failures/slow ops while closed
	P99         time.Duration // rolling healthy p99, small data ops
	MetaP99     time.Duration // rolling healthy p99, metadata ops
	Opens       int64         // closed/half-open -> open transitions
	Probes      int64         // open -> half-open transitions
	ProbeOK     int64         // successful probes (breaker closed again)
	Failures    int64
	SlowOps     int64
}

// Snapshot returns every observed volume's health, sorted by root.
func (h *Health) Snapshot() []VolHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]VolHealth, 0, len(h.vols))
	for root, b := range h.vols {
		// Report the data-class baseline when it has samples (the number
		// hedging decisions key off); otherwise the metadata one.
		p99 := h.p99Locked(b, classData)
		if p99 == 0 {
			p99 = h.p99Locked(b, classMeta)
		}
		consec := b.consec[classMeta]
		if b.consec[classData] > consec {
			consec = b.consec[classData]
		}
		out = append(out, VolHealth{
			Root: root, State: b.state, Consecutive: consec,
			P99: p99, MetaP99: h.p99Locked(b, classMeta),
			Opens: b.opens, Probes: b.probes,
			ProbeOK: b.probeOK, Failures: b.fails, SlowOps: b.slows,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Root < out[j].Root })
	return out
}

// Publish writes the health table into a registry as gauges (Set, so it
// is idempotent per snapshot) under plfs.health.<root>.* — what
// plfsctl health renders.
func (h *Health) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, v := range h.Snapshot() {
		p := "plfs.health." + v.Root + "."
		reg.Gauge(p + "state").Set(float64(v.State))
		reg.Gauge(p + "p99_ns").Set(float64(v.P99))
		reg.Gauge(p + "opens").Set(float64(v.Opens))
		reg.Gauge(p + "probes").Set(float64(v.Probes))
		reg.Gauge(p + "probe_ok").Set(float64(v.ProbeOK))
		reg.Gauge(p + "failures").Set(float64(v.Failures))
		reg.Gauge(p + "slow_ops").Set(float64(v.SlowOps))
	}
}

// ---- outcome-observing backend wrapper ----------------------------------

// healthCtx returns ctx with every volume backend wrapped to time
// operations and feed their outcomes into the mount's health table.
// Idempotent: an already-wrapped context passes through.
func (m *Mount) healthCtx(ctx Ctx) Ctx {
	if m.health == nil || len(ctx.Vols) == 0 {
		return ctx
	}
	if _, done := ctx.Vols[0].(*healthBackend); done {
		return ctx
	}
	wrapped := make([]Backend, len(ctx.Vols))
	for i, b := range ctx.Vols {
		root := ""
		if i < len(m.roots) {
			root = m.roots[i]
		}
		wrapped[i] = &healthBackend{b: b, h: m.health, root: root, clock: ctx.Clock}
	}
	ctx.Vols = wrapped
	return ctx
}

type healthBackend struct {
	b     Backend
	h     *Health
	root  string
	clock Clock
}

// ConcurrentIO forwards the wrapped backend's advertisement (the health
// table is mutex-protected, so fan-out safety is the store's own).
func (hb *healthBackend) ConcurrentIO() bool {
	c, ok := hb.b.(ConcurrentIO)
	return ok && c.ConcurrentIO()
}

func (hb *healthBackend) now() int64 {
	if hb.clock != nil {
		return hb.clock.Now()
	}
	return time.Now().UnixNano()
}

// observe times one metadata operation and feeds the breaker.
func (hb *healthBackend) observe(t0 int64, err error) {
	t1 := hb.now()
	hb.h.Observe(hb.root, t1, time.Duration(t1-t0), err)
}

// observeData is observe for data-transfer operations of a given byte
// count (the breaker normalizes latency by size).
func (hb *healthBackend) observeData(t0, bytes int64, err error) {
	t1 := hb.now()
	hb.h.ObserveData(hb.root, t1, time.Duration(t1-t0), bytes, err)
}

// Mkdir implements Backend.
func (hb *healthBackend) Mkdir(path string) error {
	t0 := hb.now()
	err := hb.b.Mkdir(path)
	hb.observe(t0, err)
	return err
}

// Create implements Backend.
func (hb *healthBackend) Create(path string) (File, error) {
	t0 := hb.now()
	f, err := hb.b.Create(path)
	hb.observe(t0, err)
	if err != nil {
		return nil, err
	}
	return &healthFile{f: f, hb: hb}, nil
}

// OpenRead implements Backend.
func (hb *healthBackend) OpenRead(path string) (File, error) {
	t0 := hb.now()
	f, err := hb.b.OpenRead(path)
	hb.observe(t0, err)
	if err != nil {
		return nil, err
	}
	return &healthFile{f: f, hb: hb}, nil
}

// OpenWrite implements Backend.
func (hb *healthBackend) OpenWrite(path string) (File, error) {
	t0 := hb.now()
	f, err := hb.b.OpenWrite(path)
	hb.observe(t0, err)
	if err != nil {
		return nil, err
	}
	return &healthFile{f: f, hb: hb}, nil
}

// Stat implements Backend.
func (hb *healthBackend) Stat(path string) (Info, error) {
	t0 := hb.now()
	fi, err := hb.b.Stat(path)
	hb.observe(t0, err)
	return fi, err
}

// ReadDir implements Backend.
func (hb *healthBackend) ReadDir(path string) ([]Info, error) {
	t0 := hb.now()
	ents, err := hb.b.ReadDir(path)
	hb.observe(t0, err)
	return ents, err
}

// Remove implements Backend.
func (hb *healthBackend) Remove(path string) error {
	t0 := hb.now()
	err := hb.b.Remove(path)
	hb.observe(t0, err)
	return err
}

// Rename implements Backend.
func (hb *healthBackend) Rename(oldPath, newPath string) error {
	t0 := hb.now()
	err := hb.b.Rename(oldPath, newPath)
	hb.observe(t0, err)
	return err
}

// PutIfAbsent implements CondPutter.  The inner backend is probed first,
// and an errors.ErrUnsupported outcome — from the assertion here or from
// a deeper wrapper's probe — never feeds the breaker: capability
// discovery is not a health signal.
func (hb *healthBackend) PutIfAbsent(path string, data []byte) error {
	cp, ok := hb.b.(CondPutter)
	if !ok {
		return errors.ErrUnsupported
	}
	t0 := hb.now()
	err := cp.PutIfAbsent(path, data)
	if !errors.Is(err, errors.ErrUnsupported) {
		hb.observeData(t0, int64(len(data)), err)
	}
	return err
}

// PutReplace implements CondPutter (see PutIfAbsent).
func (hb *healthBackend) PutReplace(path string, data []byte) error {
	cp, ok := hb.b.(CondPutter)
	if !ok {
		return errors.ErrUnsupported
	}
	t0 := hb.now()
	err := cp.PutReplace(path, data)
	if !errors.Is(err, errors.ErrUnsupported) {
		hb.observeData(t0, int64(len(data)), err)
	}
	return err
}

// CreateBulk implements BulkCreator (probe-first, like PutIfAbsent).
// One batch feeds the breaker one observation — the first entry error if
// any, else success: the batch is one RPC to the volume, and counting it
// per entry would let a single bulk storm trip a breaker that saw only
// one slow round trip.
func (hb *healthBackend) CreateBulk(ops []BulkOp) []error {
	bc, ok := hb.b.(BulkCreator)
	if !ok {
		errs := make([]error, len(ops))
		for i := range errs {
			errs[i] = errors.ErrUnsupported
		}
		return errs
	}
	t0 := hb.now()
	errs := bc.CreateBulk(ops)
	var first error
	for _, err := range errs {
		if err != nil && !errors.Is(err, errors.ErrUnsupported) {
			first = err
			break
		}
	}
	hb.observe(t0, first)
	return errs
}

// healthFile times the data-path operations of an open handle.  The
// optional capabilities are forwarded with delegate-or-fallback
// semantics so wrapping never hides what the store can do (the same
// contract the fault wrapper keeps).
type healthFile struct {
	f  File
	hb *healthBackend
}

// WriteAt implements File.
func (f *healthFile) WriteAt(off int64, p payload.Payload) error {
	t0 := f.hb.now()
	err := f.f.WriteAt(off, p)
	f.hb.observeData(t0, p.Len(), err)
	return err
}

// Append implements File.
func (f *healthFile) Append(p payload.Payload) (int64, error) {
	t0 := f.hb.now()
	off, err := f.f.Append(p)
	f.hb.observeData(t0, p.Len(), err)
	return off, err
}

// ReadAt implements File.
func (f *healthFile) ReadAt(off, n int64) (payload.List, error) {
	t0 := f.hb.now()
	pl, err := f.f.ReadAt(off, n)
	f.hb.observeData(t0, n, err)
	return pl, err
}

// Size implements File.
func (f *healthFile) Size() int64 { return f.f.Size() }

// Close implements File (not a health signal; close is bookkeeping).
func (f *healthFile) Close() error { return f.f.Close() }

// WritevAt implements VectoredIO.
func (f *healthFile) WritevAt(segs []extent.Ext, data payload.List) error {
	t0 := f.hb.now()
	bytes := data.Len()
	var err error
	if vio, ok := f.f.(VectoredIO); ok {
		err = vio.WritevAt(segs, data)
	} else {
		pos := int64(0)
		for _, s := range segs {
			off := s.Off
			for _, p := range data.Slice(pos, s.Len) {
				if err = f.f.WriteAt(off, p); err != nil {
					break
				}
				off += p.Len()
			}
			if err != nil {
				break
			}
			pos += s.Len
		}
	}
	f.hb.observeData(t0, bytes, err)
	return err
}

// ReadvAt implements VectoredIO.
func (f *healthFile) ReadvAt(segs []extent.Ext) (payload.List, error) {
	t0 := f.hb.now()
	var bytes int64
	for _, s := range segs {
		bytes += s.Len
	}
	var out payload.List
	var err error
	if vio, ok := f.f.(VectoredIO); ok {
		out, err = vio.ReadvAt(segs)
	} else {
		for _, s := range segs {
			var pl payload.List
			if pl, err = f.f.ReadAt(s.Off, s.Len); err != nil {
				out = nil
				break
			}
			out = out.Concat(pl)
		}
	}
	f.hb.observeData(t0, bytes, err)
	return out, err
}

// Appendv implements BatchAppender.
func (f *healthFile) Appendv(pl payload.List) (int64, error) {
	t0 := f.hb.now()
	bytes := pl.Len()
	var off int64
	var err error
	if ba, ok := f.f.(BatchAppender); ok {
		off, err = ba.Appendv(pl)
	} else {
		for i, p := range pl {
			var o int64
			if o, err = f.f.Append(p); err != nil {
				break
			}
			if i == 0 {
				off = o
			}
		}
	}
	f.hb.observeData(t0, bytes, err)
	return off, err
}

// LockRange implements RangeLocker (forwarded untimed: locks guard
// middleware RMW windows, not stored bytes).
func (f *healthFile) LockRange(off, n int64) error {
	if rl, ok := f.f.(RangeLocker); ok {
		return rl.LockRange(off, n)
	}
	return nil
}

// UnlockRange implements RangeLocker (see LockRange).
func (f *healthFile) UnlockRange(off, n int64) error {
	if rl, ok := f.f.(RangeLocker); ok {
		return rl.UnlockRange(off, n)
	}
	return nil
}
