package plfs

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines, returning when all calls have finished.  Work is handed out
// by an atomic counter, so uneven item costs balance themselves.  With
// workers <= 1 (or when there is nothing to share) it degenerates to a
// plain loop on the caller's goroutine — the serial baseline costs no
// synchronization at all.
//
// fn must be safe to call concurrently with itself for distinct i; panics
// inside fn propagate to the caller like in any goroutine (they crash).
func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// defaultWorkers resolves a worker-count option: 0 means "one per
// available CPU", anything else is clamped to at least 1.
func defaultWorkers(opt int) int {
	if opt == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if opt < 1 {
		return 1
	}
	return opt
}

// ConcurrentIO is an optional marker interface for Backends whose handles
// tolerate concurrent use from multiple goroutines (positional ReadAt on
// distinct or shared handles, concurrent Open/Close).  The real-OS backend
// qualifies (pread is thread-safe); the simulated backend does not — its
// discrete-event engine requires all blocking calls on the rank's own
// goroutine — so the reader's I/O fan-out degrades to serial there
// automatically.
type ConcurrentIO interface {
	ConcurrentIO() bool
}

// backendsConcurrent reports whether every volume advertises
// goroutine-safe I/O.
func backendsConcurrent(vols []Backend) bool {
	for _, v := range vols {
		c, ok := v.(ConcurrentIO)
		if !ok || !c.ConcurrentIO() {
			return false
		}
	}
	return len(vols) > 0
}
