package plfs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// economy is the cache budget shared by everything a mount service keeps
// resident on behalf of its tenants: built global indexes (the cross-open
// index cache) and parsed index shards plus per-container bookkeeping
// (containerState).  One byte budget covers them all, so a tenant that
// touches ten thousand containers squeezes cold state out instead of
// growing the process without bound.
//
// Charging is cheap (one mutex, two map updates); reclaiming is the rare
// path.  When a charge pushes usage over budget, the charger calls
// rebalance, which asks each registered cache to shed least-recently-used
// idle entries until usage fits again.  Charges are attributed to the
// tenant that caused the bytes to become resident, so per-tenant usage
// is visible to plfsctl and the saturation harness.
type economy struct {
	budget int64
	tick   atomic.Uint64 // shared LRU clock across all member caches

	mu      sync.Mutex
	used    int64
	tenants map[string]int64

	// Eviction-pressure counters: entries and bytes shed by rebalance.
	evictions    atomic.Int64
	evictedBytes atomic.Int64

	rmu        sync.Mutex
	reclaimers []reclaimer
}

// reclaimer is a cache that can shed idle resident bytes on demand.
type reclaimer interface {
	// reclaim frees up to need bytes of unpinned cached state (releasing
	// the economy charges as it goes) and returns the bytes freed.
	reclaim(need int64) int64
}

// defaultTenant labels charges from contexts that carry no tenant.
const defaultTenant = "default"

func tenantName(t string) string {
	if t == "" {
		return defaultTenant
	}
	return t
}

func newEconomy(budget int64) *economy {
	return &economy{budget: budget, tenants: map[string]int64{}}
}

// register adds a cache to the reclaim rotation.
func (e *economy) register(r reclaimer) {
	e.rmu.Lock()
	e.reclaimers = append(e.reclaimers, r)
	e.rmu.Unlock()
}

// next advances the shared LRU clock.
func (e *economy) next() uint64 { return e.tick.Add(1) }

// charge attributes n resident bytes to tenant.  Callers holding cache
// locks may charge freely; they must call rebalance only after releasing
// them (reclaimers re-enter member caches).
func (e *economy) charge(tenant string, n int64) {
	if n == 0 {
		return
	}
	tenant = tenantName(tenant)
	e.mu.Lock()
	e.used += n
	e.tenants[tenant] += n
	e.mu.Unlock()
}

// release returns n resident bytes previously charged to tenant.
func (e *economy) release(tenant string, n int64) {
	if n == 0 {
		return
	}
	tenant = tenantName(tenant)
	e.mu.Lock()
	e.used -= n
	if v := e.tenants[tenant] - n; v > 0 {
		e.tenants[tenant] = v
	} else {
		delete(e.tenants, tenant)
	}
	e.mu.Unlock()
}

// noteEvicted records reclaim pressure: entries evicted to fit the budget.
func (e *economy) noteEvicted(entries int, bytes int64) {
	e.evictions.Add(int64(entries))
	e.evictedBytes.Add(bytes)
}

// overBy returns how many bytes usage exceeds the budget (<= 0 = fits).
func (e *economy) overBy() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used - e.budget
}

// rebalance sheds idle cached state until usage fits the budget again.
// It must be called without any member cache's lock held.  Rotation is
// bounded: a pass over every reclaimer that frees nothing ends the loop
// (everything left is pinned or already gone).
func (e *economy) rebalance() {
	e.rmu.Lock()
	rs := append([]reclaimer(nil), e.reclaimers...)
	e.rmu.Unlock()
	for {
		over := e.overBy()
		if over <= 0 {
			return
		}
		progress := false
		for _, r := range rs {
			if freed := r.reclaim(over); freed > 0 {
				progress = true
			}
			if over = e.overBy(); over <= 0 {
				return
			}
		}
		if !progress {
			return
		}
	}
}

// EconomyStats is a point-in-time snapshot of the shared cache economy.
type EconomyStats struct {
	BudgetBytes  int64
	UsedBytes    int64
	Evictions    int64 // entries shed under budget pressure
	EvictedBytes int64
	// TenantBytes holds resident bytes attributed to each tenant, in
	// tenant-name order.
	TenantBytes []TenantBytes
}

// TenantBytes is one tenant's resident-byte attribution.
type TenantBytes struct {
	Tenant string
	Bytes  int64
}

func (e *economy) stats() EconomyStats {
	s := EconomyStats{
		BudgetBytes:  e.budget,
		Evictions:    e.evictions.Load(),
		EvictedBytes: e.evictedBytes.Load(),
	}
	e.mu.Lock()
	s.UsedBytes = e.used
	for t, b := range e.tenants {
		s.TenantBytes = append(s.TenantBytes, TenantBytes{Tenant: t, Bytes: b})
	}
	e.mu.Unlock()
	sort.Slice(s.TenantBytes, func(i, j int) bool { return s.TenantBytes[i].Tenant < s.TenantBytes[j].Tenant })
	return s
}
