// Package plfs implements the Parallel Log-structured File System — the
// paper's transformative I/O middleware.
//
// PLFS preserves an application's logical view of a shared file while
// physically decoupling it: the logical file becomes a *container*
// directory on an underlying parallel file system; each writing process
// appends its data to a private *data dropping* and records where each
// write logically belongs in a private *index dropping*.  N-1 workloads
// (N processes, one file) become N-N on the backing store, eliminating
// write serialization; the deferred work of resolving logical offsets is
// paid when the file is opened for reading.
//
// This package contains everything the paper describes:
//
//   - the container structure (access file, metadir, openhosts, hostdir
//     subdirs holding data/index droppings) — §II, Fig. 1;
//   - timestamp-resolved index aggregation into a global offset map;
//   - the three read-open strategies — Original (uncoordinated N² opens),
//     Index Flatten (aggregate at write close), and Parallel Index Read
//     (two-level group/leader aggregation at read open) — §IV, Fig. 3;
//   - federated metadata: static hashing of containers and of subdirs
//     across multiple metadata volumes — §V, Fig. 6.
//
// PLFS is written against the small Backend/Clock/Sleeper interfaces below
// and the comm.Comm collectives, so the identical middleware runs over a
// real directory tree with goroutine writers (internal/osfs +
// internal/localcomm) and inside the simulated cluster (internal/simfs +
// internal/mpi), where the paper's performance claims are reproduced.
package plfs

import (
	"time"

	"plfs/internal/extent"
	"plfs/internal/payload"
)

// Backend is the slice of an underlying (parallel) file system PLFS needs.
// Implementations must return errors satisfying errors.Is(err,
// io/fs.ErrExist) and io/fs.ErrNotExist where applicable.  A Backend
// handle is private to one process/goroutine unless the implementation
// also satisfies ConcurrentIO, in which case the reader may fan out I/O
// calls across its worker pool.
type Backend interface {
	Mkdir(path string) error
	Create(path string) (File, error)
	OpenRead(path string) (File, error)
	OpenWrite(path string) (File, error)
	Stat(path string) (Info, error)
	ReadDir(path string) ([]Info, error)
	Remove(path string) error
	Rename(oldPath, newPath string) error
}

// File is an open backend file.
type File interface {
	// WriteAt writes p at the given offset.
	WriteAt(off int64, p payload.Payload) error
	// Append writes p at end-of-file and returns the offset it landed at.
	Append(p payload.Payload) (int64, error)
	// ReadAt returns the byte range [off, off+n).
	ReadAt(off, n int64) (payload.List, error)
	// Size returns the current file size.
	Size() int64
	// Close releases the file.
	Close() error
}

// VectoredIO is an optional File capability: many (offset, length)
// extents shipped as one backend request — list I/O.  data carries the
// bytes concatenated in segment order (piece boundaries need not align
// with segments); ReadvAt returns the extents' bytes concatenated the
// same way.  Callers fall back to per-extent WriteAt/ReadAt loops when a
// handle does not advertise it.
type VectoredIO interface {
	WritevAt(segs []extent.Ext, data payload.List) error
	ReadvAt(segs []extent.Ext) (payload.List, error)
}

// BatchAppender is an optional File capability: append many payload
// pieces in one backend operation.  PLFS data droppings use it to land a
// vectored write's K extents with a single append.
type BatchAppender interface {
	Appendv(pl payload.List) (int64, error)
}

// RangeLocker is an optional File capability: an advisory write lock for
// read-modify-write windows (the fcntl byte-range lock of ROMIO's data
// sieving contract).  Implementations may be conservative — whole-file —
// but must provide real mutual exclusion among the backend's writers.
type RangeLocker interface {
	LockRange(off, n int64) error
	UnlockRange(off, n int64) error
}

// Info describes a backend namespace entry.
type Info struct {
	Name string
	Dir  bool
	Size int64
}

// Clock provides timestamps for index records.  PLFS resolves writes to
// the same logical offset by timestamp (the paper assumes synchronized
// cluster clocks; ties are broken deterministically by rank).
type Clock interface {
	Now() int64 // nanoseconds
}

// ClockFunc adapts a function to a Clock.
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

// Sleeper charges CPU time for index parsing/merging.  The simulator binds
// this to the calling process so large index merges cost simulated time; a
// real deployment uses NopSleeper (the CPU time is spent for real).
type Sleeper interface {
	Sleep(d time.Duration)
}

// NopSleeper ignores sleep requests.
type NopSleeper struct{}

// Sleep implements Sleeper.
func (NopSleeper) Sleep(time.Duration) {}
