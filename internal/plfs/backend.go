// Package plfs implements the Parallel Log-structured File System — the
// paper's transformative I/O middleware.
//
// PLFS preserves an application's logical view of a shared file while
// physically decoupling it: the logical file becomes a *container*
// directory on an underlying parallel file system; each writing process
// appends its data to a private *data dropping* and records where each
// write logically belongs in a private *index dropping*.  N-1 workloads
// (N processes, one file) become N-N on the backing store, eliminating
// write serialization; the deferred work of resolving logical offsets is
// paid when the file is opened for reading.
//
// This package contains everything the paper describes:
//
//   - the container structure (access file, metadir, openhosts, hostdir
//     subdirs holding data/index droppings) — §II, Fig. 1;
//   - timestamp-resolved index aggregation into a global offset map;
//   - the three read-open strategies — Original (uncoordinated N² opens),
//     Index Flatten (aggregate at write close), and Parallel Index Read
//     (two-level group/leader aggregation at read open) — §IV, Fig. 3;
//   - federated metadata: static hashing of containers and of subdirs
//     across multiple metadata volumes — §V, Fig. 6.
//
// PLFS is written against the small Backend/Clock/Sleeper interfaces below
// and the comm.Comm collectives, so the identical middleware runs over any
// store that implements them.  Five implementations exist today: a real
// directory tree with goroutine writers (internal/osfs + internal/localcomm),
// the simulated POSIX cluster (internal/simfs + internal/mpi) where the
// paper's performance claims are reproduced, the fault-injection wrapper
// (internal/fault) that decorates either, the health-tracking wrapper this
// package's self-healing service interposes, and a simulated flat object
// store (internal/objfs) where droppings become objects and commits become
// conditional PUTs.  DESIGN.md §16 is the authoritative guide for writing
// a sixth; internal/plfs/backendtest is its executable form.
package plfs

import (
	"time"

	"plfs/internal/extent"
	"plfs/internal/payload"
)

// Backend is the slice of an underlying storage system PLFS needs.  The
// full contract an implementation must honor — error sentinels, atomicity,
// concurrency, and the optional capabilities below — is documented in
// DESIGN.md §16 and asserted executably by internal/plfs/backendtest.
//
// Error sentinels (checked with errors.Is, so wrapping is fine):
//
//   - Mkdir and Create on a taken name fail with io/fs.ErrExist — the
//     container protocol's open races resolve on that verdict.
//   - OpenRead, OpenWrite, Stat, ReadDir, and Remove of a missing name
//     fail with io/fs.ErrNotExist.
//   - Rename onto an existing target either replaces it atomically
//     (os.Rename) or fails with io/fs.ErrExist leaving both names intact
//     (the simulated stores); callers must tolerate both, and the commit
//     protocol does — it treats ErrExist-without-replace as "already
//     published".
//
// A Backend value and its Files are private to one process/goroutine
// unless the implementation also satisfies ConcurrentIO, in which case
// the reader may fan I/O calls out across its worker pool.  Transient
// failures should implement `Transient() bool` so Retryable can tell
// them from permanent namespace verdicts.
type Backend interface {
	// Mkdir creates a directory.  Parent-existence requirements are
	// backend-specific (a flat object store has no parents); PLFS always
	// creates ancestors first, so portable callers should too.
	Mkdir(path string) error
	// Create creates a file exclusively (O_EXCL): ErrExist if taken.
	Create(path string) (File, error)
	// OpenRead opens an existing file read-only.
	OpenRead(path string) (File, error)
	// OpenWrite opens an existing file for writing without truncation.
	OpenWrite(path string) (File, error)
	// Stat describes a name (file size; directory flag).
	Stat(path string) (Info, error)
	// ReadDir returns the directory's entries sorted by Name (ascending,
	// byte order) — dropping discovery depends on the ordering.
	ReadDir(path string) ([]Info, error)
	// Remove deletes a file or an empty directory.
	Remove(path string) error
	// Rename moves oldPath to newPath (see the contract above for the
	// existing-target cases).
	Rename(oldPath, newPath string) error
}

// File is an open backend file.  Offsets never carry a cursor: every
// method is positional, and reads past the written size return zeros for
// the overhang (PLFS bounds reads by the logical size it tracks itself).
type File interface {
	// WriteAt writes p at the given offset.
	WriteAt(off int64, p payload.Payload) error
	// Append writes p at end-of-file and returns the offset it landed at.
	// The returned offset is load-bearing: index records point at it.
	Append(p payload.Payload) (int64, error)
	// ReadAt returns the byte range [off, off+n), zero-filled past EOF.
	ReadAt(off, n int64) (payload.List, error)
	// Size returns the current file size.
	Size() int64
	// Close releases the file.
	Close() error
}

// CondPutter is an optional Backend capability: conditional whole-object
// publication, the native commit primitive of object stores.  When a
// backend advertises it, the commit protocol (writeFileAtomic) skips the
// create-temp/append/rename dance entirely and publishes with one call —
// index replication and background repair inherit the switch for free.
//
//   - PutIfAbsent atomically creates path with data; if the key is
//     already taken it fails with io/fs.ErrExist and writes nothing.
//     No reader may ever observe a partial object.
//   - PutReplace atomically replaces path with data (creating it if
//     absent).  Implementations typically condition on a generation
//     read immediately beforehand; losing a race fails with a transient
//     error (Transient() == true) and writes nothing, and the caller
//     retries.
//
// Wrappers (fault injection, health tracking) forward the capability
// only when their inner backend has it, so a type assertion on the
// outermost backend always tells the truth.
type CondPutter interface {
	PutIfAbsent(path string, data []byte) error
	PutReplace(path string, data []byte) error
}

// BulkOp is one entry in a bulk-create batch: a file or directory to be
// created at Path.  Entries apply in order, so a directory created early
// in a batch can parent files created later in the same batch.
type BulkOp struct {
	Path string
	Dir  bool
}

// BulkCreator is an optional Backend capability: many namespace creates
// shipped to the metadata service as one RPC whose cost amortizes the
// per-operation serialization (Li/Latham's bulk object creation).  It
// returns one error slot per entry — io/fs.ErrExist for taken names
// (the entry is left untouched), io/fs.ErrNotExist for missing parents —
// and created files are not opened; callers pair it with OpenWrite.
// Entries should be grouped by parent directory (directories before the
// files under them) so the server coalesces per-directory locking.
//
// Wrappers forward the capability only when their inner backend has it
// (the fault wrapper gates each entry individually, so a crash point
// mid-batch applies a prefix — the server-side bulk commit a real MDS
// performs).  A type assertion on the outermost backend tells the truth.
type BulkCreator interface {
	CreateBulk(ops []BulkOp) []error
}

// VectoredIO is an optional File capability: many (offset, length)
// extents shipped as one backend request — list I/O.  data carries the
// bytes concatenated in segment order (piece boundaries need not align
// with segments); ReadvAt returns the extents' bytes concatenated the
// same way.  Callers fall back to per-extent WriteAt/ReadAt loops when a
// handle does not advertise it.
type VectoredIO interface {
	WritevAt(segs []extent.Ext, data payload.List) error
	ReadvAt(segs []extent.Ext) (payload.List, error)
}

// BatchAppender is an optional File capability: append many payload
// pieces in one backend operation.  PLFS data droppings use it to land a
// vectored write's K extents with a single append.
type BatchAppender interface {
	Appendv(pl payload.List) (int64, error)
}

// RangeLocker is an optional File capability: an advisory write lock for
// read-modify-write windows (the fcntl byte-range lock of ROMIO's data
// sieving contract).  Implementations may be conservative — whole-file —
// but must provide real mutual exclusion among the backend's writers.
type RangeLocker interface {
	LockRange(off, n int64) error
	UnlockRange(off, n int64) error
}

// Info describes a backend namespace entry.
type Info struct {
	Name string
	Dir  bool
	Size int64
}

// Clock provides timestamps for index records.  PLFS resolves writes to
// the same logical offset by timestamp (the paper assumes synchronized
// cluster clocks; ties are broken deterministically by rank).
type Clock interface {
	Now() int64 // nanoseconds
}

// ClockFunc adapts a function to a Clock.
type ClockFunc func() int64

// Now implements Clock.
func (f ClockFunc) Now() int64 { return f() }

// Sleeper charges CPU time for index parsing/merging.  The simulator binds
// this to the calling process so large index merges cost simulated time; a
// real deployment uses NopSleeper (the CPU time is spent for real).
type Sleeper interface {
	Sleep(d time.Duration)
}

// NopSleeper ignores sleep requests.
type NopSleeper struct{}

// Sleep implements Sleeper.
func (NopSleeper) Sleep(time.Duration) {}
