package plfs_test

// Tests for the batched collective create (Options.BulkCreate) and the
// rebalance migration protocol, including the crash-torture sweep over
// every migration-op boundary (ISSUE 10 satellite: every k must leave
// the container openable and byte-identical after Recover).

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"plfs/internal/fault"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestBatchedCreateRoundtrip drives the bulk-create collective open over
// the POSIX rig (osfs advertises BulkCreator) and verifies the written
// data reads back exactly as under the classic per-rank path.
func TestBatchedCreateRoundtrip(t *testing.T) {
	const n, blocks, bs = 8, 3, int64(1024)
	r := newRig(t, 2, plfs.Options{
		NumSubdirs: 2, SpreadContainers: true, SpreadSubdirs: true, BulkCreate: true,
	})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "batched")
	})
	ctx := serialCtx(r, 0)
	rd, err := r.m.OpenReader(ctx, "batched")
	if err != nil {
		t.Fatalf("open after batched create: %v", err)
	}
	defer rd.Close()
	verifyN1(t, rd, n, blocks, bs)
	srep, err := r.m.Scrub(ctx, "batched")
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if !srep.OK() {
		t.Errorf("scrub after batched create:\n%s", srep)
	}
}

// TestBatchedCreateFollowsMigration is the composition claim: after a
// hostdir migrates, batched writers resolve the forwarding marker and
// place new droppings at the destination — the hash location is never
// recreated by the batched path.
func TestBatchedCreateFollowsMigration(t *testing.T) {
	const n, blocks, bs = 4, 2, int64(512)
	const name = "followme"
	r := newRig(t, 2, plfs.Options{NumSubdirs: 2, BulkCreate: true})
	// Round 1: all four ranks share host 0, so everything lands in
	// hostdir.0 on the canonical volume 0.
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, name)
	})
	ctx := serialCtx(r, 0)
	if err := r.m.MigrateHostdir(ctx, name, 0, 1); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// Round 2: another batched session extends the same container.
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		w, err := r.m.Create(ctx, name)
		if err != nil {
			t.Errorf("rank %d reopen: %v", rank, err)
			return
		}
		off := int64(n*blocks)*bs + int64(rank)*bs
		if err := w.Write(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
			t.Errorf("rank %d write: %v", rank, err)
		}
		if err := w.Close(); err != nil {
			t.Errorf("rank %d close: %v", rank, err)
		}
	})
	// The hash location must not have been recreated; the moved location
	// must hold both rounds' droppings.
	if _, err := os.Stat(filepath.Join(r.roots[0], name, "hostdir.0")); !os.IsNotExist(err) {
		t.Errorf("hash-located hostdir recreated after migration (err=%v)", err)
	}
	ents, err := os.ReadDir(filepath.Join(r.roots[1], name, "hostdir.0"))
	if err != nil || len(ents) < 2*n {
		t.Errorf("moved hostdir has %d entries, err %v (want >= %d)", len(ents), err, 2*n)
	}
	rd, err := r.m.OpenReader(ctx, name)
	if err != nil {
		t.Fatalf("open after round 2: %v", err)
	}
	defer rd.Close()
	if want := int64(n*blocks)*bs + int64(n)*bs; rd.Size() != want {
		t.Errorf("size %d, want %d", rd.Size(), want)
	}
	for rank := 0; rank < n; rank++ {
		off := int64(n*blocks)*bs + int64(rank)*bs
		got, err := rd.ReadAt(off, bs)
		if err != nil {
			t.Fatalf("read round-2 block: %v", err)
		}
		if !payload.ContentEqual(got, payload.List{payload.Synthetic(uint64(rank+1), off, bs)}) {
			t.Errorf("round-2 block of rank %d corrupt after migration", rank)
		}
	}
}

// buildQuiescent writes a small N-1 container with serial sessions and
// returns its total byte size.
func buildQuiescent(t testing.TB, r *rig, name string, n, blocks int, bs int64) int64 {
	for i := 0; i < n; i++ {
		ctx := serialCtx(r, i)
		w, err := r.m.Create(ctx, name)
		if err != nil {
			t.Fatalf("writer %d create: %v", i, err)
		}
		for k := 0; k < blocks; k++ {
			off := int64(k*n+i) * bs
			if err := w.Write(off, payload.Synthetic(uint64(i+1), off, bs)); err != nil {
				t.Fatalf("writer %d write: %v", i, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("writer %d close: %v", i, err)
		}
	}
	return int64(n*blocks) * bs
}

// verifyIntact fails unless the container reads back byte-identical to
// the build pattern and Scrub reports at worst the allowed residue.
func verifyIntact(t *testing.T, r *rig, name string, n, blocks int, bs int64, allowed map[string]bool) {
	t.Helper()
	ctx := serialCtx(r, 0)
	if _, err := r.m.Recover(ctx, name); err != nil {
		t.Fatalf("recover: %v", err)
	}
	srep, err := r.m.Scrub(ctx, name)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	for _, p := range srep.Problems {
		if !allowed[p.Kind] {
			t.Errorf("scrub: %s", p)
		}
	}
	rd, err := r.m.OpenReader(ctx, name)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer rd.Close()
	total := int64(n*blocks) * bs
	if rd.Size() != total {
		t.Fatalf("size %d, want %d", rd.Size(), total)
	}
	got, err := rd.ReadAt(0, total)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	for k := 0; k < blocks; k++ {
		for i := 0; i < n; i++ {
			off := int64(k*n+i) * bs
			want := payload.List{payload.Synthetic(uint64(i+1), off, bs)}
			if !payload.ContentEqual(got.Slice(off, bs), want) {
				t.Errorf("block (k=%d, rank=%d) corrupt", k, i)
			}
		}
	}
}

// TestMigrateHostdir covers the happy path: move, verify, move again
// (idempotent no-op), move back.
func TestMigrateHostdir(t *testing.T) {
	const n, blocks, bs = 4, 3, int64(512)
	const name = "mig"
	r := newRig(t, 3, plfs.Options{NumSubdirs: 2, Checksum: true})
	buildQuiescent(t, r, name, n, blocks, bs)
	ctx := serialCtx(r, 0)

	if err := r.m.MigrateHostdir(ctx, name, 0, 2); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	verifyIntact(t, r, name, n, blocks, bs, nil)
	if _, err := os.Stat(filepath.Join(r.roots[0], name, "hostdir.0")); !os.IsNotExist(err) {
		t.Errorf("source hostdir survived the move (err=%v)", err)
	}

	// Same destination again: a no-op, not an error.
	if err := r.m.MigrateHostdir(ctx, name, 0, 2); err != nil {
		t.Fatalf("re-migrate: %v", err)
	}
	verifyIntact(t, r, name, n, blocks, bs, nil)

	// And home again (back to the hash volume).
	if err := r.m.MigrateHostdir(ctx, name, 0, 0); err != nil {
		t.Fatalf("migrate home: %v", err)
	}
	verifyIntact(t, r, name, n, blocks, bs, nil)

	// Unlink must clean moved locations and markers completely.
	if err := r.m.MigrateHostdir(ctx, name, 1, 1); err != nil {
		t.Fatalf("migrate for unlink: %v", err)
	}
	if err := r.m.Unlink(ctx, name); err != nil {
		t.Fatalf("unlink with moved hostdir: %v", err)
	}
	for v, root := range r.roots {
		if _, err := os.Stat(filepath.Join(root, name)); !os.IsNotExist(err) {
			t.Errorf("vol %d: container residue after unlink (err=%v)", v, err)
		}
	}
}

// TestMigrateRefusesActiveWriters: quiescence is a hard precondition.
func TestMigrateRefusesActiveWriters(t *testing.T) {
	const name = "busy"
	r := newRig(t, 2, plfs.Options{NumSubdirs: 2})
	ctx := serialCtx(r, 0)
	w, err := r.m.Create(ctx, name)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.m.MigrateHostdir(ctx, name, 0, 1); err == nil {
		t.Error("migration proceeded under an active writer")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.m.MigrateHostdir(ctx, name, 0, 1); err != nil {
		t.Errorf("migration after close: %v", err)
	}
}

// TestRebalancePass drives the greedy policy: all hostdirs start on the
// canonical volume, loads say it is hot, and a pass spreads them to the
// cold volumes (deterministically) without disturbing the data.
func TestRebalancePass(t *testing.T) {
	const n, blocks, bs = 4, 2, int64(512)
	const name = "skewed"
	r := newRig(t, 4, plfs.Options{NumSubdirs: 4})
	buildQuiescent(t, r, name, n, blocks, bs)
	ctx := serialCtx(r, 0)

	loads := []float64{9, 1, 1, 1} // volume 0 is hot
	pol := plfs.RebalancePolicy{Load: func(v int) float64 { return loads[v] }}
	rep, err := r.m.Rebalance(ctx, name, pol)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if rep.Skew < 1.5 {
		t.Fatalf("skew %.2f, want the injected 9x", rep.Skew)
	}
	if len(rep.Moves) == 0 {
		t.Fatal("no moves despite 9x skew")
	}
	for _, mv := range rep.Moves {
		if mv.From != 0 {
			t.Errorf("moved hostdir.%d from volume %d, want 0", mv.Subdir, mv.From)
		}
	}
	verifyIntact(t, r, name, n, blocks, bs, nil)

	// Determinism: the same inputs replay to the same plan.
	r2 := newRig(t, 4, plfs.Options{NumSubdirs: 4})
	buildQuiescent(t, r2, name, n, blocks, bs)
	rep2, err := r2.m.Rebalance(serialCtx(r2, 0), name, pol)
	if err != nil {
		t.Fatalf("rebalance replay: %v", err)
	}
	if fmt.Sprint(rep2.Moves) != fmt.Sprint(rep.Moves) {
		t.Errorf("replay diverged: %v vs %v", rep2.Moves, rep.Moves)
	}

	// Balanced loads: a pass is a no-op.
	loads = []float64{2, 2, 2, 2}
	rep3, err := r.m.Rebalance(ctx, name, pol)
	if err != nil {
		t.Fatalf("balanced rebalance: %v", err)
	}
	if len(rep3.Moves) != 0 {
		t.Errorf("moves under balanced load: %v", rep3.Moves)
	}
}

// TestCrashTortureMigration sweeps a crash through every mutating-op
// boundary of a hostdir migration.  At every k the container must stay
// openable, Recover must succeed, and the data must read back
// byte-identical — the migration never holds the only copy of anything.
// A fault-free re-run of the same migration must then converge.
func TestCrashTortureMigration(t *testing.T) {
	const n, blocks, bs = 3, 2, int64(512)
	const name = "migtorture"
	opts := plfs.Options{NumSubdirs: 2, Checksum: true, Retry: fastRetry(2)}
	// The crash sweep's verifier tolerates the residue a crashed
	// migration legitimately leaves: orphaned atomic-copy temps (swept by
	// Scrub) in either location.
	allowed := map[string]bool{"orphan-tmp": true}

	// Counting run bounds the sweep.
	count := fault.New(fault.Spec{})
	r := newRig(t, 3, opts)
	buildQuiescent(t, r, name, n, blocks, bs)
	if err := r.m.MigrateHostdir(faulty(serialCtx(r, 0), count), name, 0, 2); err != nil {
		t.Fatalf("fault-free migration: %v", err)
	}
	verifyIntact(t, r, name, n, blocks, bs, nil)
	total := count.MutatingOps()
	if total < 5 {
		t.Fatalf("suspiciously few migration ops: %d", total)
	}

	for k := int64(1); k <= total; k += crashStride(total) {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			inj := fault.New(mustSpec(t, fmt.Sprintf("crashat=%d", k)))
			r := newRig(t, 3, opts)
			buildQuiescent(t, r, name, n, blocks, bs)
			err := r.m.MigrateHostdir(faulty(serialCtx(r, 0), inj), name, 0, 2)
			if !inj.Crashed() {
				t.Fatalf("crash point %d never fired (err=%v; sweep is vacuous)", k, err)
			}
			// Invariant 1: the interrupted state is fully readable.
			verifyIntact(t, r, name, n, blocks, bs, allowed)
			// Invariant 2: re-running the migration converges.
			if err := r.m.MigrateHostdir(serialCtx(r, 0), name, 0, 2); err != nil {
				t.Fatalf("resumed migration: %v", err)
			}
			verifyIntact(t, r, name, n, blocks, bs, nil)
		})
	}
}
