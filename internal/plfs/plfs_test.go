package plfs_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"plfs/internal/comm"
	"plfs/internal/localcomm"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// fakeClock hands out strictly increasing timestamps (safe across
// goroutines), standing in for the paper's synchronized cluster clocks.
type fakeClock struct{ t atomic.Int64 }

func (c *fakeClock) Now() int64 { return c.t.Add(1) }

// rig is an engineless PLFS test rig: one mount over temp-dir osfs
// volumes by default, contexts built per rank.  newVols overrides the
// per-context volume set (the objfs crash tests route everything to one
// shared object store).
type rig struct {
	m       *Mountish
	roots   []string
	clock   *fakeClock
	newVols func() []plfs.Backend
}

// Mountish aliases to keep call sites short.
type Mountish = plfs.Mount

func newRig(t testing.TB, volumes int, opt plfs.Options) *rig {
	t.Helper()
	roots := make([]string, volumes)
	for i := range roots {
		roots[i] = t.TempDir()
	}
	return &rig{m: plfs.NewMount(roots, opt), roots: roots, clock: &fakeClock{}}
}

func (r *rig) ctx(rank int, c comm.Comm) plfs.Ctx {
	var vols []plfs.Backend
	if r.newVols != nil {
		vols = r.newVols()
	} else {
		vols = make([]plfs.Backend, len(r.roots))
		for i := range vols {
			vols[i] = osfs.New()
		}
	}
	return plfs.Ctx{
		Vols:       vols,
		Rank:       rank,
		Host:       rank / 4, // 4 "ranks" per fake host
		HostLeader: rank%4 == 0,
		Clock:      r.clock,
		Comm:       c,
	}
}

// runRanks drives n concurrent goroutine ranks through fn.
func runRanks(t testing.TB, r *rig, n int, fn func(ctx plfs.Ctx, rank int)) {
	t.Helper()
	comms := localcomm.New(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(r.ctx(i, comms[i]), i)
		}(i)
	}
	wg.Wait()
}

// writeN1 writes a strided N-1 pattern: rank i writes blocks at offsets
// (k*n + i) * bs, contents pattern-tagged by rank.
func writeN1(t testing.TB, m *plfs.Mount, ctx plfs.Ctx, rank, n, blocks int, bs int64, name string) {
	t.Helper()
	w, err := m.Create(ctx, name)
	if err != nil {
		t.Errorf("rank %d create: %v", rank, err)
		return
	}
	for k := 0; k < blocks; k++ {
		off := int64(k*n+rank) * bs
		if err := w.Write(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
			t.Errorf("rank %d write: %v", rank, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Errorf("rank %d close: %v", rank, err)
	}
}

// verifyN1 checks the full strided file contents.
func verifyN1(t *testing.T, rd *plfs.Reader, n, blocks int, bs int64) {
	t.Helper()
	total := int64(n*blocks) * bs
	if rd.Size() != total {
		t.Errorf("size = %d, want %d", rd.Size(), total)
	}
	got, err := rd.ReadAt(0, total)
	if err != nil {
		t.Errorf("read: %v", err)
		return
	}
	for k := 0; k < blocks; k++ {
		for i := 0; i < n; i++ {
			off := int64(k*n+i) * bs
			want := payload.List{payload.Synthetic(uint64(i+1), off, bs)}
			if !payload.ContentEqual(got.Slice(off, bs), want) {
				t.Errorf("block (k=%d, rank=%d) content wrong", k, i)
				return
			}
		}
	}
}

func modes() []plfs.Mode {
	return []plfs.Mode{plfs.Original, plfs.IndexFlatten, plfs.ParallelIndexRead}
}

func TestN1WriteReadAllModes(t *testing.T) {
	for _, mode := range modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const n, blocks, bs = 8, 5, int64(512)
			r := newRig(t, 1, plfs.Options{IndexMode: mode, NumSubdirs: 4})
			runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
				writeN1(t, r.m, ctx, rank, n, blocks, bs, "ckpt")
				rd, err := r.m.OpenReader(ctx, "ckpt")
				if err != nil {
					t.Errorf("rank %d open: %v", rank, err)
					return
				}
				verifyN1(t, rd, n, blocks, bs)
				rd.Close()
			})
		})
	}
}

func TestModesSeeIdenticalBytes(t *testing.T) {
	// Write once (no flatten), then read with Original and ParallelIndexRead
	// mounts over the same backing store; contents must match exactly.
	const n, blocks, bs = 6, 4, int64(256)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 4})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "f")
	})
	m2 := plfs.NewMount(r.roots, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4})
	var ref []byte
	runRanks(t, r, 1, func(ctx plfs.Ctx, rank int) {
		rd, err := r.m.OpenReader(ctx, "f")
		if err != nil {
			t.Error(err)
			return
		}
		pl, _ := rd.ReadAt(0, rd.Size())
		ref = pl.Materialize()
		rd.Close()
	})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		rd, err := m2.OpenReader(ctx, "f")
		if err != nil {
			t.Errorf("parallel open: %v", err)
			return
		}
		pl, _ := rd.ReadAt(0, rd.Size())
		if !bytes.Equal(pl.Materialize(), ref) {
			t.Error("parallel-index-read returned different bytes")
		}
		rd.Close()
	})
}

func TestSerialModeNoComm(t *testing.T) {
	// The FUSE-style path: no communicator, one writer, one reader.
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.ParallelIndexRead})
	ctx := r.ctx(0, nil)
	w, err := r.m.Create(ctx, "solo")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("hello transformative I/O")
	if err := w.Write(0, payload.FromBytes(data)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := r.m.OpenReader(ctx, "solo")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Stats.Mode != plfs.Original {
		t.Fatalf("serial open used %v, want original", rd.Stats.Mode)
	}
	got, err := rd.ReadAt(0, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Materialize(), data) {
		t.Fatalf("got %q", got.Materialize())
	}
}

func TestFlattenWritesGlobalIndexAndSkipsPrivate(t *testing.T) {
	const n = 4
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.IndexFlatten, NumSubdirs: 2})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, 3, 128, "flat")
	})
	gi := filepath.Join(r.roots[0], "flat", "meta", "global.index")
	if _, err := os.Stat(gi); err != nil {
		t.Fatalf("global index missing: %v", err)
	}
	// No private index droppings should exist.
	matches, _ := filepath.Glob(filepath.Join(r.roots[0], "flat", "hostdir.*", "dropping.index.*"))
	if len(matches) != 0 {
		t.Fatalf("private index droppings written despite flatten: %v", matches)
	}
	// Readers must report serving from the global index.
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		rd, err := r.m.OpenReader(ctx, "flat")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if !rd.Stats.UsedGlobal {
			t.Error("reader did not use the global index")
		}
		verifyN1(t, rd, n, 3, 128)
		rd.Close()
	})
}

func TestFlattenOverflowFallsBack(t *testing.T) {
	const n = 4
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.IndexFlatten, FlattenThreshold: 2, NumSubdirs: 2})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, 5, 64, "big") // 5 entries > threshold 2
	})
	if _, err := os.Stat(filepath.Join(r.roots[0], "big", "meta", "global.index")); err == nil {
		t.Fatal("global index written despite overflow")
	}
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		rd, err := r.m.OpenReader(ctx, "big")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if rd.Stats.UsedGlobal {
			t.Error("claims global index after overflow")
		}
		if rd.Stats.Mode != plfs.ParallelIndexRead {
			t.Errorf("fallback mode = %v", rd.Stats.Mode)
		}
		verifyN1(t, rd, n, 5, 64)
		rd.Close()
	})
}

func TestContainerLayoutOnDisk(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 2})
	runRanks(t, r, 4, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, 4, 2, 64, "file1")
	})
	// All 4 ranks share host 0 (4 ranks per fake host), so exactly one
	// hostdir is created lazily.
	c := filepath.Join(r.roots[0], "file1")
	for _, p := range []string{".plfsaccess", "meta", "openhosts", "hostdir.0"} {
		if _, err := os.Stat(filepath.Join(c, p)); err != nil {
			t.Errorf("container piece %s missing: %v", p, err)
		}
	}
	if hd, _ := filepath.Glob(filepath.Join(c, "hostdir.*")); len(hd) != 1 {
		t.Fatalf("hostdirs = %v, want exactly one (one host)", hd)
	}
	data, _ := filepath.Glob(filepath.Join(c, "hostdir.*", "dropping.data.*"))
	idx, _ := filepath.Glob(filepath.Join(c, "hostdir.*", "dropping.index.*"))
	if len(data) != 4 || len(idx) != 4 {
		t.Fatalf("droppings: %d data, %d index, want 4 each", len(data), len(idx))
	}
	// openhosts must be empty after closes.
	ents, _ := os.ReadDir(filepath.Join(c, "openhosts"))
	if len(ents) != 0 {
		t.Fatalf("openhosts not cleaned: %v", ents)
	}
}

func TestStatAndReadDir(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	const n, blocks, bs = 4, 3, int64(100)
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "ck")
	})
	ctx := r.ctx(0, nil)
	fi, err := r.m.Stat(ctx, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != int64(n*blocks)*bs {
		t.Fatalf("stat size = %d, want %d", fi.Size, int64(n*blocks)*bs)
	}
	if fi.Dir {
		t.Fatal("container statted as directory")
	}
	ents, err := r.m.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "ck" || ents[0].Dir {
		t.Fatalf("readdir = %+v", ents)
	}
	ok, err := r.m.IsContainer(ctx, "ck")
	if err != nil || !ok {
		t.Fatalf("IsContainer = %v, %v", ok, err)
	}
}

func TestUnlinkRemovesEverything(t *testing.T) {
	r := newRig(t, 3, plfs.Options{
		IndexMode: plfs.Original, NumSubdirs: 4,
		SpreadContainers: true, SpreadSubdirs: true,
	})
	runRanks(t, r, 4, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, 4, 2, 64, "gone")
	})
	ctx := r.ctx(0, nil)
	if ok, _ := r.m.IsContainer(ctx, "gone"); !ok {
		t.Fatal("container not created")
	}
	if err := r.m.Unlink(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.m.IsContainer(ctx, "gone"); ok {
		t.Fatal("container survives unlink")
	}
	for _, root := range r.roots {
		ents, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("volume %s not empty after unlink: %v", root, ents)
		}
	}
}

func TestSpreadSubdirsPlacesShadowContainers(t *testing.T) {
	const vols = 3
	r := newRig(t, vols, plfs.Options{
		IndexMode: plfs.Original, NumSubdirs: vols, SpreadSubdirs: true,
	})
	runRanks(t, r, 6, func(ctx plfs.Ctx, rank int) {
		// Hosts 0 and 1 (ranks 0-3 on host 0, 4-5 on host 1) -> two hostdirs.
		writeN1(t, r.m, ctx, rank, 6, 2, 64, "spread")
	})
	// hostdir.i lives on volume (0+i)%vols; hostdir.0 is canonical.
	foundShadow := false
	for v := 1; v < vols; v++ {
		if matches, _ := filepath.Glob(filepath.Join(r.roots[v], "spread", "hostdir.*")); len(matches) > 0 {
			foundShadow = true
		}
	}
	if !foundShadow {
		t.Fatal("no shadow hostdirs on non-canonical volumes")
	}
	// Metalink markers must exist in the canonical container.
	ml, _ := filepath.Glob(filepath.Join(r.roots[0], "spread", "hostdir.*.metalink"))
	if len(ml) == 0 {
		t.Fatal("no metalink markers in canonical container")
	}
	// And readers must still find everything.
	runRanks(t, r, 6, func(ctx plfs.Ctx, rank int) {
		rd, err := r.m.OpenReader(ctx, "spread")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		verifyN1(t, rd, 6, 2, 64)
		rd.Close()
	})
}

func TestSpreadContainersHashAcrossVolumes(t *testing.T) {
	const vols = 4
	r := newRig(t, vols, plfs.Options{IndexMode: plfs.Original, SpreadContainers: true})
	runRanks(t, r, 1, func(ctx plfs.Ctx, rank int) {
		for i := 0; i < 16; i++ {
			writeN1(t, r.m, ctx, 0, 1, 1, 64, fmt.Sprintf("f%d", i))
		}
	})
	used := 0
	for _, root := range r.roots {
		ents, _ := os.ReadDir(root)
		if len(ents) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("16 containers landed on %d volume(s); hashing broken", used)
	}
	// ReadDir of the mount root must union all volumes.
	ents, err := r.m.ReadDir(r.ctx(0, nil), "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 16 {
		t.Fatalf("readdir found %d containers, want 16", len(ents))
	}
}

func TestOverwriteLastWriterWins(t *testing.T) {
	// Sequential overwrites through separate serial writers: the second
	// write (later timestamp) must win.
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	ctx := r.ctx(0, nil)
	w1, err := r.m.Create(ctx, "ow")
	if err != nil {
		t.Fatal(err)
	}
	w1.Write(0, payload.FromBytes(bytes.Repeat([]byte{'a'}, 100)))
	w1.Close()
	ctx2 := r.ctx(1, nil)
	w2, err := r.m.Create(ctx2, "ow")
	if err != nil {
		t.Fatal(err)
	}
	w2.Write(50, payload.FromBytes(bytes.Repeat([]byte{'B'}, 10)))
	w2.Close()
	rd, err := r.m.OpenReader(ctx, "ow")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got, _ := rd.ReadAt(45, 20)
	want := append(bytes.Repeat([]byte{'a'}, 5), bytes.Repeat([]byte{'B'}, 10)...)
	want = append(want, bytes.Repeat([]byte{'a'}, 5)...)
	if !bytes.Equal(got.Materialize(), want) {
		t.Fatalf("got %q, want %q", got.Materialize(), want)
	}
}

func TestWriterSyncFlushes(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, DataFlushBytes: 1 << 30})
	ctx := r.ctx(0, nil)
	w, err := r.m.Create(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	w.Write(0, payload.FromBytes([]byte("buffered")))
	// Before sync, the data dropping should be empty (write-behind).
	dd, _ := filepath.Glob(filepath.Join(r.roots[0], "s", "hostdir.*", "dropping.data.*"))
	if len(dd) != 1 {
		t.Fatalf("droppings: %v", dd)
	}
	fi, _ := os.Stat(dd[0])
	if fi.Size() != 0 {
		t.Fatal("data flushed before Sync")
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	fi, _ = os.Stat(dd[0])
	if fi.Size() != 8 {
		t.Fatalf("after Sync size = %d", fi.Size())
	}
	w.Close()
}

// TestRandomPatternsMatchOracle is the POSIX-equivalence property test:
// arbitrary concurrent-rank write patterns (assigned non-overlapping per
// round, like real checkpoints) must read back exactly like an in-memory
// byte array written in timestamp order.
func TestRandomPatternsMatchOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		mode := modes()[rng.Intn(3)]
		r := newRig(t, 1+rng.Intn(3), plfs.Options{
			IndexMode:        mode,
			NumSubdirs:       1 + rng.Intn(4),
			SpreadContainers: rng.Intn(2) == 0,
			SpreadSubdirs:    rng.Intn(2) == 0,
		})
		// Precompute per-rank write plans (disjoint across ranks).
		const fileMax = 1 << 14
		type wr struct {
			off int64
			b   []byte
		}
		plans := make([][]wr, n)
		oracle := make([]byte, fileMax)
		var size int64
		blockSize := int64(64 + rng.Intn(192))
		nBlocks := fileMax / int(blockSize)
		perm := rng.Perm(nBlocks)
		k := 0
		for ri := 0; ri < n; ri++ {
			for j := 0; j < 1+rng.Intn(8) && k < len(perm); j++ {
				off := int64(perm[k]) * blockSize
				k++
				b := make([]byte, blockSize)
				rng.Read(b)
				plans[ri] = append(plans[ri], wr{off, b})
				copy(oracle[off:], b)
				if off+blockSize > size {
					size = off + blockSize
				}
			}
		}
		okAll := true
		runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
			w, err := r.m.Create(ctx, "prop")
			if err != nil {
				t.Error(err)
				okAll = false
				return
			}
			for _, p := range plans[rank] {
				if err := w.Write(p.off, payload.FromBytes(p.b)); err != nil {
					t.Error(err)
					okAll = false
				}
			}
			if err := w.Close(); err != nil {
				t.Error(err)
				okAll = false
				return
			}
			rd, err := r.m.OpenReader(ctx, "prop")
			if err != nil {
				t.Error(err)
				okAll = false
				return
			}
			defer rd.Close()
			if rd.Size() != size {
				t.Errorf("size %d want %d", rd.Size(), size)
				okAll = false
			}
			got, err := rd.ReadAt(0, size)
			if err != nil {
				t.Error(err)
				okAll = false
				return
			}
			if !bytes.Equal(got.Materialize(), oracle[:size]) {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFileFails(t *testing.T) {
	r := newRig(t, 1, plfs.Options{})
	if _, err := r.m.OpenReader(r.ctx(0, nil), "nope"); err == nil {
		t.Fatal("open of missing container succeeded")
	}
	if _, err := r.m.Stat(r.ctx(0, nil), "nope"); err == nil {
		t.Fatal("stat of missing container succeeded")
	}
}

func TestMkdirAndNestedContainers(t *testing.T) {
	r := newRig(t, 2, plfs.Options{IndexMode: plfs.Original, SpreadContainers: true})
	ctx := r.ctx(0, nil)
	if err := r.m.Mkdir(ctx, "sub/dir"); err == nil {
		t.Fatal("mkdir of nested path without parent succeeded")
	}
	if err := r.m.Mkdir(ctx, "sub"); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Mkdir(ctx, "sub/dir"); err != nil {
		t.Fatal(err)
	}
	writeN1(t, r.m, ctx, 0, 1, 2, 64, "sub/dir/ck")
	rd, err := r.m.OpenReader(ctx, "sub/dir/ck")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	verifyN1(t, rd, 1, 2, 64)
	ents, err := r.m.ReadDir(ctx, "sub/dir")
	if err != nil || len(ents) != 1 || ents[0].Name != "ck" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
}
