package plfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"math"
	"path"
	"strings"

	"plfs/internal/payload"
)

// Reader is a read handle on a logical PLFS file.  Opening a reader pays
// the deferred cost of PLFS's write optimization: aggregating every
// writer's index records into a global offset map, using the mount's
// aggregation mode.
type Reader struct {
	m   *Mount
	ctx Ctx
	rel string

	ix      *Index
	handles map[int32]File
	closed  bool

	// Stats describes what this open did (for tests and the harness).
	Stats OpenStats
}

// OpenStats reports the work an OpenReader performed.
type OpenStats struct {
	Mode       Mode  // effective aggregation mode
	UsedGlobal bool  // served from a flattened global index
	Droppings  int   // droppings in the container
	RawEntries int   // raw index records aggregated
	IndexReads int   // index files this process read
	IndexBytes int64 // index bytes this process read
}

// OpenReader opens the logical file rel for reading.  With a communicator
// the configured collective aggregation runs; without one (serial/FUSE
// mode) the Original uncoordinated design is used.
func (m *Mount) OpenReader(ctx Ctx, rel string) (*Reader, error) {
	rel = clean(rel)
	r := &Reader{m: m, ctx: ctx, rel: rel, handles: map[int32]File{}}
	mode := m.opt.IndexMode
	if ctx.Comm == nil {
		mode = Original
	}
	r.Stats.Mode = mode

	var err error
	switch mode {
	case Original:
		err = r.aggregateOriginal()
	case IndexFlatten:
		err = r.aggregateFlatten()
	case ParallelIndexRead:
		err = r.aggregateParallel()
	}
	if err != nil {
		return nil, err
	}
	r.Stats.Droppings = len(r.ix.Droppings())
	r.Stats.RawEntries = r.ix.RawEntries()
	return r, nil
}

// volOfPath maps a backend path to its volume by root prefix.
func (m *Mount) volOfPath(p string) int {
	best, bestLen := 0, -1
	for v, root := range m.roots {
		if strings.HasPrefix(p, root+"/") || p == root {
			if len(root) > bestLen {
				best, bestLen = v, len(root)
			}
		}
	}
	return best
}

// tryGlobalIndex attempts to read the flattened global index; it returns
// (nil, nil) when none exists.
func (r *Reader) tryGlobalIndex() (*Index, error) {
	m, ctx := r.m, r.ctx
	cpath, vc := m.containerPath(r.rel)
	gp := path.Join(cpath, metaDir, globalIndex)
	f, err := ctx.Vols[vc].OpenRead(gp)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	size := f.Size()
	pl, err := f.ReadAt(0, size)
	f.Close()
	if err != nil {
		return nil, err
	}
	r.Stats.IndexReads++
	r.Stats.IndexBytes += size
	paths, entries, err := decodeGlobalIndex(pl.Materialize())
	if err != nil {
		return nil, err
	}
	ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(len(entries)))
	return r.buildCached([][]Entry{entries}, paths), nil
}

// indexOf builds (with caching) the resolved index from raw shards.
func (r *Reader) buildCached(shards [][]Entry, dataPaths []string) *Index {
	st := r.m.stateOf(r.rel)
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	last := ""
	if len(dataPaths) > 0 {
		last = dataPaths[len(dataPaths)-1]
	}
	key := fmt.Sprintf("%d/%d/%d/%s", st.gen, len(dataPaths), total, last)
	r.ctx.sleep(r.m.opt.MergeCPUPerEntry * timeDuration(total))
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.builtKey == key && st.built != nil {
		return st.built
	}
	ix := BuildIndex(shards, dataPaths)
	st.builtKey, st.built = key, ix
	return ix
}

// readShard reads and parses one index dropping, assigning it the
// canonical dropping id.  Parsed entries are cached per path (droppings
// are immutable), so repeated opens decode once per process group.
func (r *Reader) readShard(ref droppingRef, id int32) ([]Entry, error) {
	m, ctx := r.m, r.ctx
	st := m.stateOf(r.rel)
	f, err := ctx.Vols[ref.Vol].OpenRead(ref.Index)
	if err != nil {
		return nil, err
	}
	size := f.Size()
	pl, err := f.ReadAt(0, size)
	f.Close()
	if err != nil {
		return nil, err
	}
	r.Stats.IndexReads++
	r.Stats.IndexBytes += size
	ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(int(size/EntryBytes)))

	st.mu.Lock()
	cached, ok := st.parsed[ref.Index]
	st.mu.Unlock()
	if ok {
		return withDropping(cached, id), nil
	}
	entries, err := decodeEntries(pl.Materialize(), id)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", ref.Index, err)
	}
	st.mu.Lock()
	st.parsed[ref.Index] = entries
	st.mu.Unlock()
	return entries, nil
}

// withDropping returns entries with the given dropping id (copying only
// when the cached id differs).
func withDropping(entries []Entry, id int32) []Entry {
	if len(entries) == 0 || entries[0].Dropping == id {
		return entries
	}
	out := make([]Entry, len(entries))
	copy(out, entries)
	for i := range out {
		out[i].Dropping = id
	}
	return out
}

// aggregateOriginal is the paper's original design: this process alone
// lists the container and reads every index dropping (N readers each
// doing this produce the N² open storm of Fig. 3a).
func (r *Reader) aggregateOriginal() error {
	if ix, err := r.tryGlobalIndex(); err != nil || ix != nil {
		r.ix = ix
		r.Stats.UsedGlobal = ix != nil
		return err
	}
	drops, err := r.m.listDroppings(r.ctx, r.rel)
	if err != nil {
		return err
	}
	shards := make([][]Entry, 0, len(drops))
	paths := make([]string, len(drops))
	for i, d := range drops {
		paths[i] = d.Data
		if d.Index == "" {
			continue
		}
		sh, err := r.readShard(d, int32(i))
		if err != nil {
			return err
		}
		shards = append(shards, sh)
	}
	r.ix = r.buildCached(shards, paths)
	return nil
}

// aggregateFlatten reads the global index at rank 0 and broadcasts it
// (Fig. 3b).  If no global index exists (a writer overflowed the
// threshold, or the file was written without flattening), it falls back
// to Parallel Index Read.
func (r *Reader) aggregateFlatten() error {
	c := r.ctx.Comm
	type hdr struct {
		errs    string
		missing bool
		nbytes  int64
	}
	type material struct {
		paths   []string
		entries []Entry
	}
	var hv, mv any
	if c.Rank() == 0 {
		ix, err := r.tryGlobalIndex()
		switch {
		case err != nil:
			hv = hdr{errs: err.Error()}
		case ix == nil:
			hv = hdr{missing: true}
		default:
			entries := flattenEntriesOf(ix)
			hv = hdr{nbytes: int64(len(entries)) * EntryBytes}
			mv = material{paths: ix.Droppings(), entries: entries}
		}
	}
	h := c.Bcast(0, 24, hv).(hdr)
	if h.errs != "" {
		return errors.New(h.errs)
	}
	if h.missing {
		r.Stats.Mode = ParallelIndexRead
		return r.aggregateParallel()
	}
	r.Stats.UsedGlobal = true
	got := c.Bcast(0, h.nbytes, mv).(material)
	r.ix = r.buildCached([][]Entry{got.entries}, got.paths)
	return nil
}

// flattenEntriesOf reconstructs raw-entry form from a built index (used
// to transport the global index without keeping the original bytes).
func flattenEntriesOf(ix *Index) []Entry {
	out := make([]Entry, len(ix.segs))
	for i, s := range ix.segs {
		out[i] = Entry{
			LogicalOff: s.logical, Length: s.length, PhysOff: s.physOff,
			Dropping: s.drop, Rank: s.rank,
		}
	}
	return out
}

// parallel-read shard transport.
type shardMsg struct {
	ID      int32
	Entries []Entry
}

// aggregateParallel implements Parallel Index Read (Fig. 3c): ranks are
// partitioned into groups; members read disjoint subsets of the index
// droppings; group leaders merge, exchange with the other leaders, and
// broadcast the global set within their groups.  The container is opened
// N times instead of N².
func (r *Reader) aggregateParallel() error {
	m, ctx := r.m, r.ctx
	c := ctx.Comm

	// Rank 0 lists the container (and checks for a flattened index).
	type hdr struct {
		global bool
		errs   string
		ndrops int
	}
	var hv, dv any
	if c.Rank() == 0 {
		if ix, err := r.tryGlobalIndex(); err != nil {
			hv = hdr{errs: err.Error()}
		} else if ix != nil {
			hv = hdr{global: true}
		} else if drops, err := m.listDroppings(ctx, r.rel); err != nil {
			hv = hdr{errs: err.Error()}
		} else {
			hv = hdr{ndrops: len(drops)}
			dv = drops
		}
	}
	first := c.Bcast(0, 24, hv).(hdr)
	if first.errs != "" {
		return errors.New(first.errs)
	}
	if first.global {
		// A flattened index exists: serve everyone from it.
		r.Stats.Mode = IndexFlatten
		return r.aggregateFlatten()
	}
	drops, _ := c.Bcast(0, int64(first.ndrops)*96, dv).([]droppingRef)

	n := c.Size()
	groupSize := m.opt.GroupSize
	if groupSize <= 0 {
		groupSize = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if groupSize > n {
		groupSize = n
	}
	group := c.Split(c.Rank()/groupSize, c.Rank())
	numGroups := (n + groupSize - 1) / groupSize
	myGroup := c.Rank() / groupSize
	isLeader := group.Rank() == 0

	// The leaders form their own communicator; everyone else gets a
	// private color (their comm is unused).
	leaderColor := 0
	if !isLeader {
		leaderColor = 1 + myGroup
	}
	leaders := c.Split(leaderColor, c.Rank())

	// Leader assigns members their subset of this group's droppings.
	var assignment []shardRef
	if isLeader {
		mine := chunk(len(drops), numGroups, myGroup)
		members := group.Size()
		lists := make([][]shardRef, members)
		for k, di := range mine {
			w := k % members
			lists[w] = append(lists[w], shardRef{Ref: drops[di], ID: int32(di)})
		}
		vs := make([]any, members)
		for i := range vs {
			vs[i] = lists[i]
		}
		assignment = group.Scatter(0, 32, vs).([]shardRef)
	} else {
		assignment = group.Scatter(0, 32, nil).([]shardRef)
	}

	// Members read their assigned subindices.
	var mine []shardMsg
	var mineBytes int64
	for _, a := range assignment {
		if a.Ref.Index == "" {
			continue
		}
		sh, err := r.readShard(a.Ref, a.ID)
		if err != nil {
			return err
		}
		mine = append(mine, shardMsg{ID: a.ID, Entries: sh})
		mineBytes += int64(len(sh)) * EntryBytes
	}

	// Members return subindices to their leader; leaders exchange and
	// broadcast the merged global set within their groups.
	gathered := group.Gather(0, mineBytes+32, mine)
	var all []shardMsg
	if isLeader {
		var groupShards []shardMsg
		var groupBytes int64
		for _, gv := range gathered {
			for _, sm := range gv.([]shardMsg) {
				groupShards = append(groupShards, sm)
				groupBytes += int64(len(sm.Entries)) * EntryBytes
			}
		}
		exchanged := leaders.Allgather(groupBytes+32, groupShards)
		for _, ev := range exchanged {
			all = append(all, ev.([]shardMsg)...)
		}
	}
	// Leader first announces the merged size so every forwarding hop in
	// the broadcast tree charges the true volume.
	var allBytes int64
	for _, sm := range all {
		allBytes += int64(len(sm.Entries)) * EntryBytes
	}
	allBytes = group.Bcast(0, 8, allBytes).(int64)
	all = group.Bcast(0, allBytes, all).([]shardMsg)

	shards := make([][]Entry, 0, len(all))
	paths := make([]string, len(drops))
	for i, d := range drops {
		paths[i] = d.Data
	}
	for _, sm := range all {
		shards = append(shards, sm.Entries)
	}
	r.ix = r.buildCached(shards, paths)
	return nil
}

type shardRef struct {
	Ref droppingRef
	ID  int32
}

// chunk returns the indices [0,total) assigned to bucket b of nb buckets
// (contiguous blocks, remainder to the low buckets).
func chunk(total, nb, b int) []int {
	base := total / nb
	rem := total % nb
	start := b*base + min(b, rem)
	count := base
	if b < rem {
		count++
	}
	out := make([]int, 0, count)
	for i := start; i < start+count; i++ {
		out = append(out, i)
	}
	return out
}

// Size returns the logical file size.
func (r *Reader) Size() int64 { return r.ix.Size() }

// Index exposes the resolved global index (diagnostics and tests).
func (r *Reader) Index() *Index { return r.ix }

// handle lazily opens the data dropping with the given id.
func (r *Reader) handle(id int32) (File, error) {
	if f, ok := r.handles[id]; ok {
		return f, nil
	}
	p := r.ix.Droppings()[id]
	f, err := r.ctx.Vols[r.m.volOfPath(p)].OpenRead(p)
	if err != nil {
		return nil, err
	}
	r.handles[id] = f
	return f, nil
}

// ReadAt returns the logical byte range [off, off+n), with holes reading
// as zeros.  When the read pattern matches the write pattern, each piece
// is a sequential read of one log-structured dropping — the prefetch-
// friendly pattern the paper credits for PLFS read speedups.
func (r *Reader) ReadAt(off, n int64) (payload.List, error) {
	if r.closed {
		return nil, errors.New("plfs: reader closed")
	}
	var out payload.List
	for _, piece := range r.ix.Lookup(off, n) {
		if piece.Dropping < 0 {
			out = out.Append(payload.Zeros(piece.Length))
			continue
		}
		f, err := r.handle(piece.Dropping)
		if err != nil {
			return nil, err
		}
		pl, err := f.ReadAt(piece.PhysOff, piece.Length)
		if err != nil {
			return nil, err
		}
		out = out.Concat(pl)
	}
	return out, nil
}

// Close releases the reader's dropping handles.
func (r *Reader) Close() error {
	if r.closed {
		return errors.New("plfs: reader closed")
	}
	r.closed = true
	for _, f := range r.handles {
		f.Close()
	}
	r.handles = nil
	return nil
}

// aggregateSerial is the Mount-level helper used by Stat when no size
// record exists: an Original-style aggregation without a Reader.
func (m *Mount) aggregateSerial(ctx Ctx, rel string, drops []droppingRef) (*Index, error) {
	r := &Reader{m: m, ctx: ctx, rel: rel, handles: map[int32]File{}}
	shards := make([][]Entry, 0, len(drops))
	paths := make([]string, len(drops))
	for i, d := range drops {
		paths[i] = d.Data
		if d.Index == "" {
			continue
		}
		sh, err := r.readShard(d, int32(i))
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
	}
	return r.buildCached(shards, paths), nil
}

// Flatten aggregates an existing container's index droppings into a
// persistent global index (the plfs_flatten_index administrative tool):
// subsequent read opens, in any mode, serve from the single flattened
// file instead of re-aggregating — useful for write-once, read-many
// data.  It is idempotent; a second call is a cheap no-op.
func (m *Mount) Flatten(ctx Ctx, rel string) error {
	rel = clean(rel)
	r := &Reader{m: m, ctx: ctx, rel: rel, handles: map[int32]File{}}
	if ix, err := r.tryGlobalIndex(); err != nil {
		return err
	} else if ix != nil {
		return nil // already flattened
	}
	drops, err := m.listDroppings(ctx, rel)
	if err != nil {
		return err
	}
	ix, err := m.aggregateSerial(ctx, rel, drops)
	if err != nil {
		return err
	}
	entries := flattenEntriesOf(ix)
	ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(len(entries)))
	buf := encodeGlobalIndex(ix.Droppings(), entries)
	cpath, vc := m.containerPath(rel)
	f, err := ctx.Vols[vc].Create(path.Join(cpath, metaDir, globalIndex))
	if err != nil {
		if errors.Is(err, iofs.ErrExist) {
			return nil // raced with another flattener
		}
		return err
	}
	defer f.Close()
	_, err = f.Append(payload.FromBytes(buf))
	return err
}
