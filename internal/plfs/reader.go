package plfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"math"
	"path"
	"strings"
	"sync/atomic"

	"plfs/internal/extent"
	"plfs/internal/obs"
	"plfs/internal/payload"
)

// Reader is a read handle on a logical PLFS file.  Opening a reader pays
// the deferred cost of PLFS's write optimization: aggregating every
// writer's index records into a global offset map, using the mount's
// aggregation mode.
type Reader struct {
	m   *Mount
	ctx Ctx
	rel string

	ix        *Index
	gen       uint64 // container generation captured at open
	skipCache bool   // index cache already consulted this open
	handles   map[int32]File
	vsums     map[int32]*extentSums // lazy per-dropping checksums (VerifyData)
	pbuf      []Piece               // reused Lookup buffer (alloc-free ReadAt)
	closed    bool
	sp        *obs.Span // the enclosing "open" span (nil when obs is off)

	// Stats describes what this open did (for tests and the harness).
	Stats OpenStats
	// ReadStats accumulates what this reader's ReadAt calls did.
	ReadStats ReadStats
}

// OpenStats reports the work an OpenReader performed.
type OpenStats struct {
	Mode          Mode  // effective aggregation mode
	UsedGlobal    bool  // served from a flattened global index
	CacheHit      bool  // served from the cross-open index cache
	Droppings     int   // droppings in the container
	RawEntries    int   // raw index records aggregated
	IndexReads    int   // index files this process read
	IndexBytes    int64 // index bytes this process read
	DecodeWorkers int   // worker-pool width used for decode/build
	// SkippedShards lists index droppings this process could not read
	// or parse and skipped under Options.AllowPartial; their extents
	// read as holes.
	SkippedShards []string
}

// ReadStats reports the work a reader's ReadAt calls performed.
type ReadStats struct {
	Ops     int // ReadAt calls served
	VecOps  int // ReadAtv calls served
	VecSegs int // logical extents covered across all ReadAtv calls
	Pieces  int // index pieces covered, including holes
	Holes   int // hole pieces (zeros, no I/O)
	Batches int // physical dropping reads issued after sieving coalescing
	Workers int // fan-out width of the last ReadAt (1 = serial)
	// PhysBytes counts bytes fetched from droppings, including sieving
	// gap bytes; SieveWasted is the gap-only portion (PhysBytes minus the
	// bytes callers asked for), the read-amplification cost of
	// Options.SieveGap.
	PhysBytes   int64
	SieveWasted int64
	// ChecksumErrors counts extents whose data failed VerifyData
	// verification and were served as zeros under Options.AllowPartial.
	ChecksumErrors int
}

// OpenReader opens the logical file rel for reading.  With a communicator
// the configured collective aggregation runs; without one (serial/FUSE
// mode) the Original uncoordinated design is used.
func (m *Mount) OpenReader(ctx Ctx, rel string) (*Reader, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	admitted, aerr := m.admit(ctx, "open")
	if aerr != nil {
		return nil, aerr
	}
	defer admitted()
	r := &Reader{m: m, ctx: ctx, rel: rel, handles: map[int32]File{}}
	// Pin the state for the aggregation window: the generation captured
	// here must still be current when maybeCachePut publishes under it,
	// and eviction (which restarts the sequence at zero) would break that.
	st := m.pin(rel, ctx.Tenant)
	defer m.unpin(st)
	r.gen = st.curGen()
	mode := m.opt.IndexMode
	if ctx.Comm == nil {
		mode = Original
	}
	r.Stats.Mode = mode
	r.Stats.DecodeWorkers = m.opt.decodeWorkers()

	r.sp = ctx.Obs.StartSpan("open")
	defer r.sp.End()
	var err error
	switch mode {
	case Original:
		err = r.aggregateOriginal()
	case IndexFlatten:
		err = r.aggregateFlatten()
	case ParallelIndexRead:
		err = r.aggregateParallel()
	}
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.open.ops").Add(1)
		ctx.Obs.Counter("plfs.open.index_reads").Add(int64(r.Stats.IndexReads))
		ctx.Obs.Counter("plfs.open.index_bytes").Add(r.Stats.IndexBytes)
		if err != nil {
			ctx.Obs.Counter("plfs.open.errors").Add(1)
		}
	}
	if err != nil {
		return nil, err
	}
	r.Stats.Droppings = len(r.ix.Droppings())
	r.Stats.RawEntries = r.ix.RawEntries()
	r.maybeCachePut()
	return r, nil
}

// cacheGet consults the mount's cross-open index cache at the generation
// captured when this open started.  Exactly one hit or miss is counted
// per open regardless of how many aggregation strategies consult the
// cache on the way (flatten falling back to parallel, parallel deferring
// to flatten).
func (r *Reader) cacheGet() *Index {
	if r.m.ixc == nil || r.m.opt.NoIndexCache {
		return nil
	}
	count := !r.skipCache
	r.skipCache = true
	ix := r.m.ixc.get(r.m.ckey(r.rel), r.gen)
	if count && r.ctx.Obs != nil {
		if ix != nil {
			r.ctx.Obs.Counter("plfs.index.cache.hit").Add(1)
		} else {
			r.ctx.Obs.Counter("plfs.index.cache.miss").Add(1)
		}
	}
	if ix != nil {
		r.Stats.CacheHit = true
	}
	return ix
}

// maybeCachePut publishes the built index to the mount's cross-open
// cache.  Only the process that aggregated publishes — a serial opener,
// or rank 0 of a collective flatten/parallel open.  Collective Original
// opens stay entirely cache-free (every rank aggregates independently;
// the N² baseline must keep its uncoordinated cost), and partial opens
// are never published: their skipped shards read as holes, which is not
// the container's true content.
func (r *Reader) maybeCachePut() {
	m := r.m
	if m.ixc == nil || m.opt.NoIndexCache || m.opt.AllowPartial || r.Stats.CacheHit {
		return
	}
	if r.ctx.Comm != nil && (r.Stats.Mode == Original || r.ctx.Comm.Rank() != 0) {
		return
	}
	if ev := m.ixc.put(m.ckey(r.rel), r.gen, r.ix, r.ctx.Tenant); ev > 0 && r.ctx.Obs != nil {
		r.ctx.Obs.Counter("plfs.index.cache.evict").Add(int64(ev))
	}
}

// volOfPath maps a backend path to its volume by root prefix.
func (m *Mount) volOfPath(p string) int {
	best, bestLen := 0, -1
	for v, root := range m.roots {
		if strings.HasPrefix(p, root+"/") || p == root {
			if len(root) > bestLen {
				best, bestLen = v, len(root)
			}
		}
	}
	return best
}

// tryGlobalIndex attempts to read the flattened global index; it returns
// (nil, nil) when none exists.
func (r *Reader) tryGlobalIndex() (*Index, error) {
	m, ctx := r.m, r.ctx
	cpath, _ := m.containerPath(r.rel)
	gp := path.Join(cpath, metaDir, globalIndex)
	// Existence probe: most containers have no flattened index, so a
	// degraded replica slot must not charge its browned-out latency just
	// to confirm a miss a healthy volume already reported.
	pl, size, err := m.readIndexReplicatedOpt(ctx, gp, m.opt.Retry, true)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	r.Stats.IndexReads++
	r.Stats.IndexBytes += size
	paths, recs, err := decodeGlobalIndexAuto(pl.Materialize())
	if err != nil {
		return nil, err
	}
	ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(len(recs)))
	return r.buildCached([][]Rec{recs}, paths), nil
}

// indexOf builds (with caching) the resolved index from raw shards.
func (r *Reader) buildCached(shards [][]Rec, dataPaths []string) *Index {
	msp := r.sp.Child("merge")
	defer msp.End()
	st := r.m.stateOf(r.rel, r.ctx.Tenant)
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	last := ""
	if len(dataPaths) > 0 {
		last = dataPaths[len(dataPaths)-1]
	}
	r.ctx.sleep(r.m.opt.MergeCPUPerEntry * timeDuration(total))
	st.mu.Lock()
	defer st.mu.Unlock()
	key := fmt.Sprintf("%d/%d/%d/%s", st.gen, len(dataPaths), total, last)
	if st.builtKey == key && st.built != nil {
		return st.built
	}
	w := r.m.opt.decodeWorkers()
	if r.m.opt.SerialResolve {
		w = 1
	}
	ix := BuildIndexRecs(shards, dataPaths, w)
	st.builtKey, st.built = key, ix
	return ix
}

// readShards reads and parses the given index droppings, collecting one
// error per failed shard (joined) instead of failing on the first.  The
// returned slice is aligned with refs.
//
// Two execution plans preserve the simulator's invariants.  When every
// volume advertises ConcurrentIO, whole shards — open, read, decode —
// fan out across the worker pool and the virtual-time parse charge is
// applied once, summed, on the caller's goroutine.  Otherwise backend
// calls and per-shard charges stay on the caller's goroutine (the
// discrete-event engine requires blocking operations there) and only the
// pure-CPU decode of uncached shards fans out.  Either way the total
// virtual time charged is identical to the serial baseline.
func (r *Reader) readShards(refs []shardRef) ([][]Rec, error) {
	dsp := r.sp.Child("decode")
	defer dsp.End()
	m, ctx := r.m, r.ctx
	st := m.stateOf(r.rel, ctx.Tenant)
	w := m.opt.decodeWorkers()
	pol := m.opt.Retry
	out := make([][]Rec, len(refs))
	errs := make([]error, len(refs))

	if w > 1 && backendsConcurrent(ctx.Vols) {
		var reads, bytes, entries int64
		parallelFor(w, len(refs), func(i int) {
			ref := refs[i]
			pl, size, err := m.readIndexReplicated(ctx, ref.Ref.Index, pol)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", ref.Ref.Index, err)
				return
			}
			atomic.AddInt64(&reads, 1)
			atomic.AddInt64(&bytes, size)
			atomic.AddInt64(&entries, size/EntryBytes)
			st.mu.Lock()
			cached, ok := st.parsed[ref.Ref.Index]
			st.mu.Unlock()
			if ok {
				out[i] = withDropping(cached, ref.ID)
				return
			}
			es, err := decodeIndexDropping(pl.Materialize(), ref.ID)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", ref.Ref.Index, err)
				return
			}
			m.storeParsed(st, ref.Ref.Index, es)
			out[i] = es
		})
		r.Stats.IndexReads += int(reads)
		r.Stats.IndexBytes += bytes
		ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(int(entries)))
	} else {
		raw := make([][]byte, len(refs))
		for i, ref := range refs {
			pl, size, err := m.readIndexReplicated(ctx, ref.Ref.Index, pol)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", ref.Ref.Index, err)
				continue
			}
			r.Stats.IndexReads++
			r.Stats.IndexBytes += size
			ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(int(size/EntryBytes)))
			st.mu.Lock()
			cached, ok := st.parsed[ref.Ref.Index]
			st.mu.Unlock()
			if ok {
				out[i] = withDropping(cached, ref.ID)
				continue
			}
			if raw[i] = pl.Materialize(); raw[i] == nil {
				raw[i] = []byte{}
			}
		}
		parallelFor(w, len(refs), func(i int) {
			if raw[i] == nil || errs[i] != nil {
				return
			}
			es, err := decodeIndexDropping(raw[i], refs[i].ID)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", refs[i].Ref.Index, err)
				return
			}
			out[i] = es
		})
		for i, es := range out {
			if es != nil && raw[i] != nil {
				m.storeParsed(st, refs[i].Ref.Index, es)
			}
		}
	}
	if m.opt.AllowPartial {
		// Graceful degradation: shards that stayed unreadable after
		// retries are dropped from the aggregation — their extents read
		// as holes — and recorded so callers can see what's missing.
		for i, e := range errs {
			if e == nil {
				continue
			}
			r.Stats.SkippedShards = append(r.Stats.SkippedShards, refs[i].Ref.Index)
			if ctx.Obs != nil {
				// Per-volume visibility for degraded reads (plfsctl top).
				ctx.Obs.Counter("plfs.read.skipped_shards").Add(1)
				ctx.Obs.Counter("plfs.read.skipped_shards." + m.roots[refs[i].Ref.Vol]).Add(1)
			}
			errs[i], out[i] = nil, nil
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// readShard reads and parses one index dropping, assigning it the
// canonical dropping id.  Parsed records are cached per path (droppings
// are immutable), so repeated opens decode once per process group.
func (r *Reader) readShard(ref droppingRef, id int32) ([]Rec, error) {
	m, ctx := r.m, r.ctx
	st := m.stateOf(r.rel, ctx.Tenant)
	pl, size, err := m.readIndexReplicated(ctx, ref.Index, m.opt.Retry)
	if err != nil {
		return nil, err
	}
	r.Stats.IndexReads++
	r.Stats.IndexBytes += size
	ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(int(size/EntryBytes)))

	st.mu.Lock()
	cached, ok := st.parsed[ref.Index]
	st.mu.Unlock()
	if ok {
		return withDropping(cached, id), nil
	}
	recs, err := decodeIndexDropping(pl.Materialize(), id)
	if err != nil {
		// The sole caller (Check) prefixes the dropping path itself.
		return nil, err
	}
	m.storeParsed(st, ref.Index, recs)
	return recs, nil
}

// withDropping returns records with the given dropping id (copying only
// when the cached id differs).
func withDropping(recs []Rec, id int32) []Rec {
	if len(recs) == 0 || recs[0].Dropping == id {
		return recs
	}
	out := make([]Rec, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Dropping = id
	}
	return out
}

// aggregateOriginal is the paper's original design: this process alone
// lists the container and reads every index dropping (N readers each
// doing this produce the N² open storm of Fig. 3a).  Only the serial
// (no-communicator) path consults the cross-open cache; collective
// Original opens model the paper's uncoordinated baseline and must not
// share state between ranks.
func (r *Reader) aggregateOriginal() error {
	if r.ctx.Comm == nil {
		if ix := r.cacheGet(); ix != nil {
			r.ix = ix
			return nil
		}
	}
	lsp := r.sp.Child("list")
	if ix, err := r.tryGlobalIndex(); err != nil || ix != nil {
		lsp.End()
		r.ix = ix
		r.Stats.UsedGlobal = ix != nil
		return err
	}
	drops, err := r.m.listDroppings(r.ctx, r.rel)
	lsp.End()
	if err != nil {
		return err
	}
	paths := make([]string, len(drops))
	refs := make([]shardRef, 0, len(drops))
	for i, d := range drops {
		paths[i] = d.Data
		if d.Index == "" && !r.m.fillMissingIndex(r.ctx, &d) {
			continue
		}
		refs = append(refs, shardRef{Ref: d, ID: int32(i)})
	}
	shards, err := r.readShards(refs)
	if err != nil {
		return err
	}
	r.ix = r.buildCached(shards, paths)
	return nil
}

// aggregateFlatten reads the global index at rank 0 and broadcasts it
// (Fig. 3b).  If no global index exists (a writer overflowed the
// threshold, or the file was written without flattening), it falls back
// to Parallel Index Read.  A rank-0 hit in the cross-open cache rides
// the existing header broadcast: the mount cache is process-shared
// memory, so handing peers the pointer costs no modeled transport.
func (r *Reader) aggregateFlatten() error {
	c := r.ctx.Comm
	type hdr struct {
		errs    string
		missing bool
		nbytes  int64
		cached  *Index
	}
	type material struct {
		paths []string
		recs  []Rec
	}
	var hv, mv any
	lsp := r.sp.Child("list")
	if c.Rank() == 0 {
		if ix := r.cacheGet(); ix != nil {
			hv = hdr{cached: ix}
		} else {
			ix, err := r.tryGlobalIndex()
			switch {
			case err != nil:
				hv = hdr{errs: err.Error()}
			case ix == nil:
				hv = hdr{missing: true}
			default:
				recs := flattenRecsOf(ix)
				hv = hdr{nbytes: recsWireLen(recs)}
				mv = material{paths: ix.Droppings(), recs: recs}
			}
		}
	}
	lsp.End()
	xsp := r.sp.Child("exchange")
	h := c.Bcast(0, 24, hv).(hdr)
	if h.errs != "" {
		xsp.End()
		return errors.New(h.errs)
	}
	if h.cached != nil {
		xsp.End()
		r.ix = h.cached
		r.Stats.CacheHit = true
		return nil
	}
	if h.missing {
		xsp.End()
		r.Stats.Mode = ParallelIndexRead
		return r.aggregateParallel()
	}
	r.Stats.UsedGlobal = true
	got := c.Bcast(0, h.nbytes, mv).(material)
	xsp.End()
	r.ix = r.buildCached([][]Rec{got.recs}, got.paths)
	return nil
}

// parallel-read shard transport.
type shardMsg struct {
	ID   int32
	Recs []Rec
}

// aggregateParallel implements Parallel Index Read (Fig. 3c): ranks are
// partitioned into groups; members read disjoint subsets of the index
// droppings; group leaders merge, exchange with the other leaders, and
// broadcast the global set within their groups.  The container is opened
// N times instead of N².
func (r *Reader) aggregateParallel() error {
	m, ctx := r.m, r.ctx
	c := ctx.Comm

	// Rank 0 lists the container (and checks the cross-open cache and
	// for a flattened index).
	type hdr struct {
		global bool
		errs   string
		ndrops int
		cached *Index
	}
	var hv, dv any
	lsp := r.sp.Child("list")
	if c.Rank() == 0 {
		if ix := r.cacheGet(); ix != nil {
			hv = hdr{cached: ix}
		} else if ix, err := r.tryGlobalIndex(); err != nil {
			hv = hdr{errs: err.Error()}
		} else if ix != nil {
			hv = hdr{global: true}
		} else if drops, err := m.listDroppings(ctx, r.rel); err != nil {
			hv = hdr{errs: err.Error()}
		} else {
			hv = hdr{ndrops: len(drops)}
			dv = drops
		}
	}
	lsp.End()
	xsp := r.sp.Child("exchange")
	first := c.Bcast(0, 24, hv).(hdr)
	if first.errs != "" {
		xsp.End()
		return errors.New(first.errs)
	}
	if first.cached != nil {
		xsp.End()
		r.ix = first.cached
		r.Stats.CacheHit = true
		return nil
	}
	if first.global {
		xsp.End()
		// A flattened index exists: serve everyone from it.
		r.Stats.Mode = IndexFlatten
		return r.aggregateFlatten()
	}
	drops, _ := c.Bcast(0, int64(first.ndrops)*96, dv).([]droppingRef)
	xsp.End()

	n := c.Size()
	groupSize := m.opt.GroupSize
	if groupSize <= 0 {
		groupSize = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if groupSize > n {
		groupSize = n
	}
	group := c.Split(c.Rank()/groupSize, c.Rank())
	numGroups := (n + groupSize - 1) / groupSize
	myGroup := c.Rank() / groupSize
	isLeader := group.Rank() == 0

	// The leaders form their own communicator; everyone else gets a
	// private color (their comm is unused).
	leaderColor := 0
	if !isLeader {
		leaderColor = 1 + myGroup
	}
	leaders := c.Split(leaderColor, c.Rank())

	// Leader assigns members their subset of this group's droppings.
	xsp = r.sp.Child("exchange")
	var assignment []shardRef
	if isLeader {
		mine := chunk(len(drops), numGroups, myGroup)
		members := group.Size()
		lists := make([][]shardRef, members)
		for k, di := range mine {
			w := k % members
			lists[w] = append(lists[w], shardRef{Ref: drops[di], ID: int32(di)})
		}
		vs := make([]any, members)
		for i := range vs {
			vs[i] = lists[i]
		}
		assignment = group.Scatter(0, 32, vs).([]shardRef)
	} else {
		assignment = group.Scatter(0, 32, nil).([]shardRef)
	}
	xsp.End()

	// Members read their assigned subindices through the worker pool.
	refs := make([]shardRef, 0, len(assignment))
	for _, a := range assignment {
		if a.Ref.Index == "" && !r.m.fillMissingIndex(r.ctx, &a.Ref) {
			continue
		}
		refs = append(refs, a)
	}
	read, err := r.readShards(refs)
	if err != nil {
		return err
	}
	var mine []shardMsg
	var mineBytes int64
	for i, sh := range read {
		mine = append(mine, shardMsg{ID: refs[i].ID, Recs: sh})
		mineBytes += recsWireLen(sh)
	}

	// Members return subindices to their leader; leaders exchange and
	// broadcast the merged global set within their groups.
	xsp = r.sp.Child("exchange")
	gathered := group.Gather(0, mineBytes+32, mine)
	var all []shardMsg
	if isLeader {
		var groupShards []shardMsg
		var groupBytes int64
		for _, gv := range gathered {
			for _, sm := range gv.([]shardMsg) {
				groupShards = append(groupShards, sm)
				groupBytes += recsWireLen(sm.Recs)
			}
		}
		exchanged := leaders.Allgather(groupBytes+32, groupShards)
		for _, ev := range exchanged {
			all = append(all, ev.([]shardMsg)...)
		}
	}
	// Leader first announces the merged size so every forwarding hop in
	// the broadcast tree charges the true volume.
	var allBytes int64
	for _, sm := range all {
		allBytes += recsWireLen(sm.Recs)
	}
	allBytes = group.Bcast(0, 8, allBytes).(int64)
	all = group.Bcast(0, allBytes, all).([]shardMsg)
	xsp.End()

	shards := make([][]Rec, 0, len(all))
	paths := make([]string, len(drops))
	for i, d := range drops {
		paths[i] = d.Data
	}
	for _, sm := range all {
		shards = append(shards, sm.Recs)
	}
	r.ix = r.buildCached(shards, paths)
	return nil
}

type shardRef struct {
	Ref droppingRef
	ID  int32
}

// chunk returns the indices [0,total) assigned to bucket b of nb buckets
// (contiguous blocks, remainder to the low buckets).  Empty buckets get
// nil, so assignment fan-out allocates nothing for idle members.
func chunk(total, nb, b int) []int {
	base := total / nb
	rem := total % nb
	start := b*base + min(b, rem)
	count := base
	if b < rem {
		count++
	}
	if count == 0 {
		return nil
	}
	out := make([]int, 0, count)
	for i := start; i < start+count; i++ {
		out = append(out, i)
	}
	return out
}

// Size returns the logical file size.
func (r *Reader) Size() int64 { return r.ix.Size() }

// Index exposes the resolved global index (diagnostics and tests).
func (r *Reader) Index() *Index { return r.ix }

// handle lazily opens the data dropping with the given id.
func (r *Reader) handle(id int32) (File, error) {
	if f, ok := r.handles[id]; ok {
		return f, nil
	}
	p := r.ix.Droppings()[id]
	f, err := r.ctx.openReadRetried(r.ctx.Vols[r.m.volOfPath(p)], p, r.m.opt.Retry)
	if err != nil {
		return nil, err
	}
	r.handles[id] = f
	return f, nil
}

// ReadAt returns the logical byte range [off, off+n), with holes reading
// as zeros.  When the read pattern matches the write pattern, each piece
// is a sequential read of one log-structured dropping — the prefetch-
// friendly pattern the paper credits for PLFS read speedups.
//
// The physical reads are planned by sieving coalescing (planBatches):
// per dropping, pieces within Options.SieveGap bytes of each other merge
// into one backend read, and each piece's bytes are sliced back out of
// its batch during reassembly.  Over backends that advertise
// ConcurrentIO the batches fan out across the worker pool; under the
// simulator (or with Options.NoReadFanout) they issue serially on the
// caller's goroutine, as the discrete-event engine requires.  The plan
// itself is identical either way.
func (r *Reader) ReadAt(off, n int64) (payload.List, error) {
	if r.closed {
		return nil, errors.New("plfs: reader closed")
	}
	if obs := r.ctx.Obs; obs != nil {
		defer obs.Timer("plfs.readat")()
		obs.Counter("plfs.read.ops").Add(1)
		obs.Counter("plfs.read.bytes").Add(n)
	}
	r.pbuf = r.ix.AppendPieces(r.pbuf[:0], off, n)
	r.ReadStats.Ops++
	return r.readPieces(r.pbuf)
}

// ReadAtv reads many logical extents in one call, returning their bytes
// concatenated in segment order (holes as zeros).  All segments' index
// pieces enter one sieving/coalescing plan, so extents that resolve to
// nearby bytes of the same dropping share a physical read even across
// segment boundaries — the list-I/O read path.
func (r *Reader) ReadAtv(segs []extent.Ext) (payload.List, error) {
	if r.closed {
		return nil, errors.New("plfs: reader closed")
	}
	var total int64
	r.pbuf = r.pbuf[:0]
	for _, e := range segs {
		if e.Len <= 0 {
			continue
		}
		total += e.Len
		r.pbuf = r.ix.AppendPieces(r.pbuf, e.Off, e.Len)
		r.ReadStats.VecSegs++
	}
	if obs := r.ctx.Obs; obs != nil {
		defer obs.Timer("plfs.readat")()
		obs.Counter("plfs.read.vec_ops").Add(1)
		obs.Counter("plfs.read.vec_segs").Add(int64(len(segs)))
		obs.Counter("plfs.read.bytes").Add(total)
	}
	r.ReadStats.VecOps++
	return r.readPieces(r.pbuf)
}

// readPieces executes the lookup result of one ReadAt/ReadAtv call:
// plans physical batches, issues them (fanned out when the backend
// allows), and reassembles the pieces in order.
func (r *Reader) readPieces(pieces []Piece) (payload.List, error) {
	r.ReadStats.Pieces += len(pieces)
	for _, p := range pieces {
		if p.Dropping < 0 {
			r.ReadStats.Holes++
		}
	}
	if r.m.opt.VerifyData {
		// Verification reads each piece's extent individually (the footer
		// CRCs cover whole extents, not sieving batches).
		return r.readVerified(pieces)
	}

	batches := planBatches(pieces, r.m.opt.SieveGap)
	r.ReadStats.Batches += len(batches)
	var want, phys int64
	for _, p := range pieces {
		if p.Dropping >= 0 {
			want += p.Length
		}
	}
	for _, b := range batches {
		phys += b.length
	}
	r.ReadStats.PhysBytes += phys
	r.ReadStats.SieveWasted += phys - want
	if obs := r.ctx.Obs; obs != nil {
		obs.Counter("plfs.read.phys_bytes").Add(phys)
		obs.Counter("plfs.read.sieve_wasted").Add(phys - want)
	}

	// Open handles up front on this goroutine: the handle cache is not
	// goroutine-safe, and backend File handles are reused across batches.
	for _, b := range batches {
		if _, err := r.handle(b.drop); err != nil {
			return nil, err
		}
	}
	parts := make([]payload.List, len(batches))
	readBatchAt := func(i int) error {
		b := batches[i]
		var pl payload.List
		err := r.ctx.retry(r.m.opt.Retry, func() error {
			var e error
			pl, e = r.handles[b.drop].ReadAt(b.phys, b.length)
			return e
		})
		if err != nil {
			return fmt.Errorf("%s: %w", r.ix.Droppings()[b.drop], err)
		}
		parts[i] = pl
		return nil
	}
	w := r.m.opt.decodeWorkers()
	if r.m.opt.NoReadFanout || w <= 1 || !backendsConcurrent(r.ctx.Vols) {
		r.ReadStats.Workers = 1
		// Serial plan: consecutive batches against the same dropping (the
		// planner emits them sorted) collapse into one vectored backend
		// read when the handle supports it — list I/O on the read side.
		for i := 0; i < len(batches); {
			j := i + 1
			for j < len(batches) && batches[j].drop == batches[i].drop {
				j++
			}
			vio, ok := r.handles[batches[i].drop].(VectoredIO)
			if !ok || j-i == 1 {
				for k := i; k < j; k++ {
					if err := readBatchAt(k); err != nil {
						return nil, err
					}
				}
				i = j
				continue
			}
			segs := make([]extent.Ext, j-i)
			for k := i; k < j; k++ {
				segs[k-i] = extent.Ext{Off: batches[k].phys, Len: batches[k].length}
			}
			var pl payload.List
			err := r.ctx.retry(r.m.opt.Retry, func() error {
				var e error
				pl, e = vio.ReadvAt(segs)
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", r.ix.Droppings()[batches[i].drop], err)
			}
			var pos int64
			for k := i; k < j; k++ {
				parts[k] = pl.Slice(pos, batches[k].length)
				pos += batches[k].length
			}
			i = j
		}
	} else {
		r.ReadStats.Workers = w
		errs := make([]error, len(batches))
		parallelFor(w, len(batches), func(i int) { errs[i] = readBatchAt(i) })
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
	}

	// Reassemble in logical order, slicing each piece out of its batch.
	batchOf := make(map[int32]int32, len(pieces))
	for bi, b := range batches {
		for _, pi := range b.pieces {
			batchOf[pi] = int32(bi)
		}
	}
	var out payload.List
	for pi, p := range pieces {
		if p.Dropping < 0 {
			out = out.Append(payload.Zeros(p.Length))
			continue
		}
		bi := batchOf[int32(pi)]
		b := batches[bi]
		out = out.Concat(parts[bi].Slice(p.PhysOff-b.phys, p.Length))
	}
	return out, nil
}

// readVerified is the Options.VerifyData read plan: strictly serial,
// one backend read per piece, each verified against the checksummed
// recovery footer before its bytes are returned.
func (r *Reader) readVerified(pieces []Piece) (payload.List, error) {
	r.ReadStats.Workers = 1
	var out payload.List
	for _, piece := range pieces {
		if piece.Dropping < 0 {
			out = out.Append(payload.Zeros(piece.Length))
			continue
		}
		if err := r.verifyPiece(piece); err != nil {
			if !r.m.opt.AllowPartial {
				return nil, err
			}
			// Graceful degradation: the corrupt extent reads as a
			// hole rather than serving damaged bytes.
			r.ReadStats.ChecksumErrors++
			if obs := r.ctx.Obs; obs != nil {
				dp := r.ix.Droppings()[piece.Dropping]
				obs.Counter("plfs.read.checksum_zero_fill").Add(1)
				obs.Counter("plfs.read.checksum_zero_fill." + r.m.roots[r.m.volOfPath(dp)]).Add(1)
			}
			out = out.Append(payload.Zeros(piece.Length))
			continue
		}
		r.ReadStats.Batches++
		r.ReadStats.PhysBytes += piece.Length
		f, err := r.handle(piece.Dropping)
		if err != nil {
			return nil, err
		}
		var pl payload.List
		err = r.ctx.retry(r.m.opt.Retry, func() error {
			var e error
			pl, e = f.ReadAt(piece.PhysOff, piece.Length)
			return e
		})
		if err != nil {
			return nil, err
		}
		out = out.Concat(pl)
	}
	return out, nil
}

// readBatch is one planned physical read: length bytes at phys of
// dropping drop, covering the piece indices in pieces (ascending, into
// the Lookup result that produced the plan).
type readBatch struct {
	drop   int32
	phys   int64
	length int64
	pieces []int32
}

// planBatches coalesces the data pieces of one lookup into physical
// reads: per dropping, pieces sorted by physical offset merge into a
// single read whenever the gap between them is at most gap bytes — the
// data-sieving optimization of Thakur et al.  gap 0 still merges
// exactly-adjacent pieces (including logically distant ones that landed
// physically back-to-back in the same dropping).  Holes are excluded;
// assembly synthesizes their zeros.  The merge itself is extent.Plan,
// shared with adio's write-side sieve and collective coalescer.
func planBatches(pieces []Piece, gap int64) []readBatch {
	idx := make([]int32, 0, len(pieces))
	for i, p := range pieces {
		if p.Dropping >= 0 {
			idx = append(idx, int32(i))
		}
	}
	bs := extent.Plan(len(idx),
		func(i int) int64 { return int64(pieces[idx[i]].Dropping) },
		func(i int) extent.Ext {
			p := pieces[idx[i]]
			return extent.Ext{Off: p.PhysOff, Len: p.Length}
		},
		gap, 0)
	out := make([]readBatch, len(bs))
	for bi, b := range bs {
		rb := readBatch{drop: int32(b.Key), phys: b.Off, length: b.Len, pieces: make([]int32, len(b.Items))}
		for k, it := range b.Items {
			rb.pieces[k] = idx[it]
		}
		out[bi] = rb
	}
	return out
}

// Close releases the reader's dropping handles.
func (r *Reader) Close() error {
	if r.closed {
		return errors.New("plfs: reader closed")
	}
	r.closed = true
	for _, f := range r.handles {
		f.Close()
	}
	r.handles = nil
	return nil
}

// aggregateSerial is the Mount-level helper used by Stat when no size
// record exists: an Original-style aggregation without a Reader.
func (m *Mount) aggregateSerial(ctx Ctx, rel string, drops []droppingRef) (*Index, error) {
	r := &Reader{m: m, ctx: ctx, rel: rel, handles: map[int32]File{}}
	paths := make([]string, len(drops))
	refs := make([]shardRef, 0, len(drops))
	for i, d := range drops {
		paths[i] = d.Data
		if d.Index == "" && !m.fillMissingIndex(ctx, &d) {
			continue
		}
		refs = append(refs, shardRef{Ref: d, ID: int32(i)})
	}
	shards, err := r.readShards(refs)
	if err != nil {
		return nil, err
	}
	return r.buildCached(shards, paths), nil
}

// Flatten aggregates an existing container's index droppings into a
// persistent global index (the plfs_flatten_index administrative tool):
// subsequent read opens, in any mode, serve from the single flattened
// file instead of re-aggregating — useful for write-once, read-many
// data.  It is idempotent; a second call is a cheap no-op.
func (m *Mount) Flatten(ctx Ctx, rel string) error {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	r := &Reader{m: m, ctx: ctx, rel: rel, handles: map[int32]File{}}
	if ix, err := r.tryGlobalIndex(); err != nil {
		return err
	} else if ix != nil {
		return nil // already flattened
	}
	drops, err := m.listDroppings(ctx, rel)
	if err != nil {
		return err
	}
	ix, err := m.aggregateSerial(ctx, rel, drops)
	if err != nil {
		return err
	}
	recs := flattenRecsOf(ix)
	ctx.sleep(m.opt.ParseCPUPerEntry * timeDuration(len(recs)))
	buf := encodeGlobalIndexRecs(ix.Droppings(), recs)
	if m.opt.Checksum {
		buf = appendSumTrailer(buf, gidxSumMagic)
	}
	// Atomic commit; a rename refused because another flattener already
	// published is fine — same container, same flattened content.
	cpath, _ := m.containerPath(rel)
	if err := m.commitReplicated(ctx, path.Join(cpath, metaDir, globalIndex), buf, m.opt.Retry, false); err != nil {
		return err
	}
	// The flattened index changes what future opens should report
	// (UsedGlobal); drop any cached pre-flatten aggregation.
	m.ixc.drop(m.ckey(rel))
	return nil
}
