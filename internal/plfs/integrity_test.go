package plfs_test

// End-to-end integrity tests: checksummed framing detects silent
// corruption that the unchecksummed container serves back without
// complaint, VerifyData turns detection into read-time enforcement, and
// the atomic-commit machinery (temp sweep, torn-append retry) keeps
// metadata publication all-or-nothing.

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"plfs/internal/fault"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// flipByte XORs one byte of an on-disk file.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= int64(len(buf)) {
		t.Fatalf("flip offset %d beyond %d bytes", off, len(buf))
	}
	buf[off] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// globOne returns the single match of a glob pattern.
func globOne(t *testing.T, pattern string) string {
	t.Helper()
	matches, err := filepath.Glob(pattern)
	if err != nil || len(matches) == 0 {
		t.Fatalf("glob %s: %v (%d matches)", pattern, err, len(matches))
	}
	return matches[0]
}

// writeIntegrityFile writes a small strided N-1 file and returns the rig.
func writeIntegrityFile(t *testing.T, opt plfs.Options, name string) *rig {
	t.Helper()
	const n, blocks, bs = 2, 2, int64(256)
	r := newRig(t, 1, opt)
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, name)
	})
	return r
}

// TestChecksumDetectsBitFlip is the acceptance A/B: a flipped data byte
// is named by Scrub (with the dropping path and extent) when the
// container was written with Options.Checksum, and served back silently
// when it was not.
func TestChecksumDetectsBitFlip(t *testing.T) {
	const n, blocks, bs = 2, 2, int64(256)
	for _, checksum := range []bool{true, false} {
		name := "abflip"
		t.Run(map[bool]string{true: "on", false: "off"}[checksum], func(t *testing.T) {
			r := writeIntegrityFile(t, plfs.Options{IndexMode: plfs.Original, Checksum: checksum}, name)
			data := globOne(t, filepath.Join(r.roots[0], name, "hostdir.*", "dropping.data.*"))
			flipByte(t, data, 0) // physical offset 0: inside the first extent

			rep, err := r.m.Scrub(serialCtx(r, 0), name)
			if err != nil {
				t.Fatalf("scrub: %v", err)
			}
			if checksum {
				found := false
				for _, p := range rep.Problems {
					if p.Kind == "checksum-data" && strings.Contains(p.Path, "dropping.data") && p.Extent != "" {
						found = true
					}
				}
				if !found {
					t.Fatalf("scrub missed the flipped byte: %s", rep)
				}
			} else {
				if !rep.OK() {
					t.Fatalf("unchecksummed scrub reported: %s", rep)
				}
				// The corruption is served back without any error: silent.
				rd, err := r.m.OpenReader(serialCtx(r, 0), name)
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				defer rd.Close()
				got, err := rd.ReadAt(0, int64(n*blocks)*bs)
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				clean := true
				for k := 0; k < blocks && clean; k++ {
					for i := 0; i < n; i++ {
						off := int64(k*n+i) * bs
						want := payload.List{payload.Synthetic(uint64(i+1), off, bs)}
						if !payload.ContentEqual(got.Slice(off, bs), want) {
							clean = false
							break
						}
					}
				}
				if clean {
					t.Fatal("flipped byte did not surface in the read — flip missed the data?")
				}
			}
		})
	}
}

// TestVerifyDataEnforcesChecksums turns read-time verification on
// against a corrupted checksummed container: strict reads fail naming
// the extent, AllowPartial reads substitute zeros and count the error.
func TestVerifyDataEnforcesChecksums(t *testing.T) {
	const n, blocks, bs = 2, 2, int64(256)
	name := "verify"
	r := writeIntegrityFile(t, plfs.Options{IndexMode: plfs.Original, Checksum: true}, name)
	data := globOne(t, filepath.Join(r.roots[0], name, "hostdir.*", "dropping.data.*"))
	flipByte(t, data, 0)
	total := int64(n*blocks) * bs

	strict := plfs.NewMount(r.roots, plfs.Options{IndexMode: plfs.Original, VerifyData: true})
	rd, err := strict.OpenReader(serialCtx(r, 0), name)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := rd.ReadAt(0, total); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("strict read of corrupt data: err = %v, want checksum mismatch", err)
	}
	rd.Close()

	part := plfs.NewMount(r.roots, plfs.Options{IndexMode: plfs.Original, VerifyData: true, AllowPartial: true})
	rd, err = part.OpenReader(serialCtx(r, 0), name)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer rd.Close()
	got, err := rd.ReadAt(0, total)
	if err != nil {
		t.Fatalf("partial read: %v", err)
	}
	if rd.ReadStats.ChecksumErrors == 0 {
		t.Fatal("AllowPartial read did not count the checksum error")
	}
	zeros := payload.List{payload.Zeros(bs)}
	sawZeros := false
	for k := 0; k < blocks; k++ {
		for i := 0; i < n; i++ {
			off := int64(k*n+i) * bs
			b := got.Slice(off, bs)
			want := payload.List{payload.Synthetic(uint64(i+1), off, bs)}
			switch {
			case payload.ContentEqual(b, want):
			case payload.ContentEqual(b, zeros):
				sawZeros = true
			default:
				t.Errorf("block (k=%d, rank=%d): corrupt bytes leaked through AllowPartial", k, i)
			}
		}
	}
	if !sawZeros {
		t.Fatal("no block was zero-substituted despite a checksum error")
	}
}

// TestScrubDetectsCorruptIndexTrailer flips a byte inside a checksummed
// index dropping: Scrub reports index-corrupt, and readers refuse the
// shard.
func TestScrubDetectsCorruptIndexTrailer(t *testing.T) {
	name := "ixflip"
	r := writeIntegrityFile(t, plfs.Options{IndexMode: plfs.Original, Checksum: true}, name)
	ix := globOne(t, filepath.Join(r.roots[0], name, "hostdir.*", "dropping.index.*"))
	flipByte(t, ix, 3)

	rep, err := r.m.Scrub(serialCtx(r, 0), name)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	found := false
	for _, p := range rep.Problems {
		if p.Kind == "index-corrupt" && strings.Contains(p.Detail, "checksum mismatch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("scrub missed the corrupt index trailer: %s", rep)
	}
	if _, err := r.m.OpenReader(serialCtx(r, 0), name); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("open over corrupt index: err = %v, want checksum mismatch", err)
	}
}

// TestScrubAndRecoverSweepOrphanTmp plants stranded atomic-commit temp
// files (the residue of a crashed publish) and checks both Scrub and
// Recover delete and report them.
func TestScrubAndRecoverSweepOrphanTmp(t *testing.T) {
	for _, tool := range []string{"scrub", "recover"} {
		t.Run(tool, func(t *testing.T) {
			name := "orphans"
			r := writeIntegrityFile(t, plfs.Options{IndexMode: plfs.Original, Checksum: true}, name)
			hostdir := filepath.Dir(globOne(t, filepath.Join(r.roots[0], name, "hostdir.*", "dropping.index.*")))
			planted := []string{
				filepath.Join(r.roots[0], name, "meta", "global.index.tmp.0"),
				filepath.Join(hostdir, "dropping.index.9.9.tmp.3"),
			}
			for _, p := range planted {
				if err := os.WriteFile(p, []byte("stranded"), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			var removed []string
			switch tool {
			case "scrub":
				rep, err := r.m.Scrub(serialCtx(r, 0), name)
				if err != nil {
					t.Fatalf("scrub: %v", err)
				}
				removed = rep.RemovedTmp
				orphans := 0
				for _, p := range rep.Problems {
					if p.Kind == "orphan-tmp" {
						orphans++
					}
				}
				if orphans != len(planted) {
					t.Fatalf("scrub reported %d orphan-tmp problems, want %d: %s", orphans, len(planted), rep)
				}
			case "recover":
				rep, err := r.m.Recover(serialCtx(r, 0), name)
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				removed = rep.RemovedTmp
			}
			if len(removed) != len(planted) {
				t.Fatalf("%s removed %v, want %d temp files", tool, removed, len(planted))
			}
			for _, p := range planted {
				if _, err := os.Stat(p); !os.IsNotExist(err) {
					t.Errorf("%s left %s behind", tool, p)
				}
			}
			// The container itself is untouched and clean afterwards.
			rep, err := r.m.Scrub(serialCtx(r, 0), name)
			if err != nil {
				t.Fatalf("re-scrub: %v", err)
			}
			if !rep.OK() {
				t.Fatalf("container dirty after %s sweep: %s", tool, rep)
			}
		})
	}
}

// TestScrubCleanContainer asserts the no-findings path: a freshly
// written checksummed container scrubs clean with every extent verified.
func TestScrubCleanContainer(t *testing.T) {
	const n, blocks, bs = 2, 2, int64(256)
	name := "clean"
	r := writeIntegrityFile(t, plfs.Options{IndexMode: plfs.Original, Checksum: true}, name)
	rep, err := r.m.Scrub(serialCtx(r, 0), name)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("clean container reported problems: %s", rep)
	}
	if rep.Droppings == 0 || rep.IndexesChecked == 0 || rep.ExtentsChecked == 0 {
		t.Fatalf("scrub checked nothing: %+v", rep)
	}
	if want := int64(n*blocks) * bs; rep.BytesVerified != want {
		t.Fatalf("verified %d bytes, want %d", rep.BytesVerified, want)
	}
}

// tearingBackend tears the first Append to a file whose path contains
// match: half the payload lands, then the write fails Torn.  This is the
// regression harness for the writeGlobalIndex double-write bug — a
// retried commit must start over on a fresh temp, never append to the
// half-written one.
type tearingBackend struct {
	plfs.Backend
	match string
	fired atomic.Bool
}

func (b *tearingBackend) Create(p string) (plfs.File, error) {
	f, err := b.Backend.Create(p)
	if err == nil && strings.Contains(p, b.match) && b.fired.CompareAndSwap(false, true) {
		return &tearingFile{File: f, path: p}, nil
	}
	return f, err
}

type tearingFile struct {
	plfs.File
	path string
	torn bool
}

func (f *tearingFile) Append(p payload.Payload) (int64, error) {
	if f.torn {
		return 0, &fault.Error{Op: fault.OpAppend, Path: f.path, Kind: fault.Transient}
	}
	f.torn = true
	f.File.Append(p.Slice(0, p.Len()/2))
	return 0, &fault.Error{Op: fault.OpAppend, Path: f.path, Kind: fault.Torn}
}

// TestGlobalIndexTornAppendRetries injects one torn append on the
// global-index commit path and asserts the retried publish produces a
// complete, correctly sized global index (not a doubled or half file).
func TestGlobalIndexTornAppendRetries(t *testing.T) {
	const n, blocks, bs = 2, 3, int64(256)
	name := "tornflat"
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.IndexFlatten, NumSubdirs: 2, Retry: fastRetry(3)})
	tb := &tearingBackend{Backend: r.ctx(0, nil).Vols[0], match: "global.index" + ".tmp."}
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		ctx.Vols = []plfs.Backend{tb}
		writeN1(t, r.m, ctx, rank, n, blocks, bs, name)
	})
	if !tb.fired.Load() {
		t.Fatal("torn append never fired: the regression is not exercised")
	}
	rd, err := r.m.OpenReader(serialCtx(r, 0), name)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer rd.Close()
	if !rd.Stats.UsedGlobal {
		t.Fatal("reader did not use the global index")
	}
	if got, want := rd.Index().RawEntries(), n*blocks; got != want {
		t.Fatalf("global index has %d entries, want %d", got, want)
	}
	verifyN1(t, rd, n, blocks, bs)
}
