package plfs_test

import (
	"sync"
	"testing"

	"plfs/internal/obs"
	"plfs/internal/plfs"
)

// TestSpanNestingUnderConcurrentOpen opens one container from many
// goroutines sharing a single registry (the harness wiring: one registry,
// all ranks) and checks the span trees stay well-formed — every child
// phase span points at an "open" root from the same registry, and no
// rank's spans cross into another's tree.  Run under -race in CI.
func TestSpanNestingUnderConcurrentOpen(t *testing.T) {
	const ranks, blocks, readers = 8, 4, 8
	bs := int64(512)
	r := newRig(t, 2, plfs.Options{IndexMode: plfs.Original, DecodeWorkers: 4})
	runRanks(t, r, ranks, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, ranks, blocks, bs, "spans")
	})

	reg := obs.New()
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := r.ctx(g, nil)
			ctx.Obs = reg
			rd, err := r.m.OpenReader(ctx, "spans")
			if err != nil {
				t.Errorf("reader %d: %v", g, err)
				return
			}
			rd.Close()
		}(g)
	}
	wg.Wait()

	spans := reg.Spans()
	byID := map[uint64]obs.SpanRecord{}
	opens := 0
	for _, s := range spans {
		byID[s.ID] = s
		if s.Name == "open" {
			opens++
			if s.Parent != 0 {
				t.Errorf("open span %d has parent %d, want root", s.ID, s.Parent)
			}
		}
	}
	if opens != readers {
		t.Fatalf("open spans = %d, want %d", opens, readers)
	}
	for _, s := range spans {
		if s.Name == "open" {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("span %s (%d) has unknown parent %d", s.Name, s.ID, s.Parent)
			continue
		}
		if p.Name != "open" {
			t.Errorf("span %s (%d) nests under %q, want \"open\"", s.Name, s.ID, p.Name)
		}
		if s.Start < p.Start || s.End > p.End {
			t.Errorf("span %s [%d,%d] escapes its parent [%d,%d]", s.Name, s.Start, s.End, p.Start, p.End)
		}
	}
	if got := reg.Histogram("span.open").Count(); got != readers {
		t.Errorf("span.open histogram count = %d, want %d", got, readers)
	}
}
