package plfs

import (
	"strings"
	"sync"
	"sync/atomic"
)

// indexCache is the cross-open index cache: recently built global indexes
// keyed by container path, valid only at the exact generation they were
// built from.  The generation (containerState.gen) advances on every
// mutation — write open, write close, truncate, rename, recover — so a
// cached aggregation can never describe anything but the container's
// current content.  Resident bytes are charged to the shared cache
// economy; under budget pressure the economy reclaims from the cold end
// of the LRU list.
//
// A standalone Mount owns a private cache and economy; a Service shares
// one cache across every mount it serves (keys carry a per-mount prefix,
// see Mount.ckey).  The cache is deliberately conservative about who
// publishes: see Reader.maybeCachePut.  Lookups and inserts are cheap
// (one small mutex, O(1) list splices), and a miss costs one map probe
// on top of the full aggregation it fails to avoid.
type indexCache struct {
	econ *economy

	mu   sync.Mutex
	ents map[string]*ixCacheEnt
	lru  ixCacheEnt // sentinel of the intrusive LRU ring: next = MRU, prev = LRU

	evictions atomic.Int64 // entries evicted (pressure + older-gen sightings)
}

type ixCacheEnt struct {
	key        string
	tenant     string
	gen        uint64
	ix         *Index
	bytes      int64
	prev, next *ixCacheEnt
}

func newIndexCache(econ *economy) *indexCache {
	c := &indexCache{econ: econ, ents: map[string]*ixCacheEnt{}}
	c.lru.prev, c.lru.next = &c.lru, &c.lru
	return c
}

// list splices, all under c.mu.
func (c *indexCache) unlink(e *ixCacheEnt) {
	e.prev.next, e.next.prev = e.next, e.prev
	e.prev, e.next = nil, nil
}

func (c *indexCache) pushFront(e *ixCacheEnt) {
	e.prev, e.next = &c.lru, c.lru.next
	e.prev.next, e.next.prev = e, e
}

// get returns the cached index for key iff it was built at exactly gen.
// An entry from an older generation is deleted on sight — it can never
// become valid again (generations only advance).
func (c *indexCache) get(key string, gen uint64) *Index {
	c.mu.Lock()
	e, ok := c.ents[key]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	if e.gen != gen {
		var stale *ixCacheEnt
		if e.gen < gen {
			c.remove(e)
			stale = e
		}
		c.mu.Unlock()
		if stale != nil {
			c.econ.release(stale.tenant, stale.bytes)
		}
		return nil
	}
	c.unlink(e)
	c.pushFront(e)
	c.mu.Unlock()
	return e.ix
}

// put caches ix for key at gen on behalf of tenant, returning how many
// entries this cache evicted to fit the economy's budget.  An existing
// entry at a newer generation wins; an index larger than the whole
// budget is not cached at all.
func (c *indexCache) put(key string, gen uint64, ix *Index, tenant string) int {
	if ix == nil {
		return 0
	}
	size := ix.residentBytes()
	if size > c.econ.budget {
		return 0
	}
	tenant = tenantName(tenant)
	c.mu.Lock()
	var replaced *ixCacheEnt
	if e, ok := c.ents[key]; ok {
		if e.gen > gen {
			c.mu.Unlock()
			return 0
		}
		c.remove(e)
		replaced = e
	}
	e := &ixCacheEnt{key: key, tenant: tenant, gen: gen, ix: ix, bytes: size}
	c.ents[key] = e
	c.pushFront(e)
	c.mu.Unlock()
	if replaced != nil {
		c.econ.release(replaced.tenant, replaced.bytes)
	}

	before := c.evictions.Load()
	c.econ.charge(tenant, size)
	c.econ.rebalance()
	return int(c.evictions.Load() - before)
}

// remove deletes e (which must be c.ents[e.key]) under c.mu; the caller
// releases its economy charge after dropping the lock.
func (c *indexCache) remove(e *ixCacheEnt) {
	c.unlink(e)
	delete(c.ents, e.key)
}

// reclaim implements reclaimer: evict from the cold end of the LRU list
// until need bytes are freed or the cache is empty.
func (c *indexCache) reclaim(need int64) int64 {
	var freed int64
	var entries int
	for freed < need {
		c.mu.Lock()
		e := c.lru.prev
		if e == &c.lru {
			c.mu.Unlock()
			break
		}
		c.remove(e)
		c.mu.Unlock()
		c.econ.release(e.tenant, e.bytes)
		freed += e.bytes
		entries++
	}
	if entries > 0 {
		c.evictions.Add(int64(entries))
		c.econ.noteEvicted(entries, freed)
	}
	return freed
}

// drop invalidates key's entry, if any.
func (c *indexCache) drop(key string) {
	c.mu.Lock()
	e, ok := c.ents[key]
	if ok {
		c.remove(e)
	}
	c.mu.Unlock()
	if ok {
		c.econ.release(e.tenant, e.bytes)
	}
}

// dropPrefix invalidates every entry whose key begins with prefix (a
// mount detaching from a shared service cache).
func (c *indexCache) dropPrefix(prefix string) {
	c.mu.Lock()
	var victims []*ixCacheEnt
	for k, e := range c.ents {
		if strings.HasPrefix(k, prefix) {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		c.remove(e)
	}
	c.mu.Unlock()
	for _, e := range victims {
		c.econ.release(e.tenant, e.bytes)
	}
}

// clear empties the cache.
func (c *indexCache) clear() {
	c.mu.Lock()
	old := c.ents
	c.ents = map[string]*ixCacheEnt{}
	c.lru.prev, c.lru.next = &c.lru, &c.lru
	c.mu.Unlock()
	for _, e := range old {
		c.econ.release(e.tenant, e.bytes)
	}
}
