package plfs

import "sync"

// indexCache is the mount's cross-open index cache: recently built global
// indexes keyed by container path, valid only at the exact generation
// they were built from.  The generation (containerState.gen) advances on
// every mutation — write open, write close, truncate, rename, recover —
// so a cached aggregation can never describe anything but the container's
// current content.  A byte budget (Options.IndexCacheBytes) bounds the
// resident cost, with least-recently-used eviction.
//
// The cache is deliberately conservative about who publishes: see
// Reader.maybeCachePut.  Lookups and inserts are cheap (one small mutex),
// and a miss costs one map probe on top of the full aggregation it fails
// to avoid.
type indexCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	tick   uint64 // monotone LRU clock
	ents   map[string]*ixCacheEnt
}

type ixCacheEnt struct {
	gen   uint64
	ix    *Index
	bytes int64
	last  uint64 // tick of last hit/insert
}

func newIndexCache(budget int64) *indexCache {
	return &indexCache{budget: budget, ents: map[string]*ixCacheEnt{}}
}

// get returns the cached index for rel iff it was built at exactly gen.
// An entry from an older generation is deleted on sight — it can never
// become valid again (generations only advance).
func (c *indexCache) get(rel string, gen uint64) *Index {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.ents[rel]
	if !ok {
		return nil
	}
	if e.gen != gen {
		if e.gen < gen {
			c.evict(rel, e)
		}
		return nil
	}
	c.tick++
	e.last = c.tick
	return e.ix
}

// put caches ix for rel at gen, returning how many entries were evicted
// to make room.  An existing entry at a newer generation wins; an index
// larger than the whole budget is not cached at all.
func (c *indexCache) put(rel string, gen uint64, ix *Index) int {
	if ix == nil {
		return 0
	}
	size := ix.residentBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return 0
	}
	if e, ok := c.ents[rel]; ok {
		if e.gen > gen {
			return 0
		}
		c.evict(rel, e)
	}
	evicted := 0
	for c.used+size > c.budget {
		var (
			lruRel string
			lru    *ixCacheEnt
		)
		for r, e := range c.ents {
			if lru == nil || e.last < lru.last {
				lruRel, lru = r, e
			}
		}
		if lru == nil {
			break
		}
		c.evict(lruRel, lru)
		evicted++
	}
	c.tick++
	c.ents[rel] = &ixCacheEnt{gen: gen, ix: ix, bytes: size, last: c.tick}
	c.used += size
	return evicted
}

// evict removes e (which must be c.ents[rel]) under c.mu.
func (c *indexCache) evict(rel string, e *ixCacheEnt) {
	c.used -= e.bytes
	delete(c.ents, rel)
}

// drop invalidates rel's entry, if any.
func (c *indexCache) drop(rel string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.ents[rel]; ok {
		c.evict(rel, e)
	}
}

// clear empties the cache.
func (c *indexCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ents = map[string]*ixCacheEnt{}
	c.used = 0
}
