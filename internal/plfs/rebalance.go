package plfs

// Dynamic volume rebalancing (the second half of the metadata-at-scale
// story).  Static hashing pins whole containers — and, without
// SpreadSubdirs, all their hostdirs — to one metadata volume, so a few
// hot containers can saturate one MDS while its peers idle.  When the
// per-volume load gauges show sustained skew, MigrateHostdir moves a hot
// container subdir to a cold volume with a crash-safe protocol built from
// the commit machinery this repo already trusts:
//
//   1. refuse unless the container is quiescent (no openhosts records);
//   2. create the destination shadow container + hostdir (idempotent);
//   3. copy every published dropping with writeFileAtomic — droppings are
//      immutable, so "same name means same content" holds and an ErrExist
//      verdict means an earlier (crashed) attempt already copied it;
//   4. remove the flattened global index and its replicas — it records
//      absolute dropping paths that are about to go stale;
//   5. publish the forwarding marker hostdir.<i>.moved.<seq>.v<vol>
//      atomically in the canonical container (highest seq wins);
//   6. retire superseded markers, then remove the source hostdir.
//
// Every crash point between those steps leaves the container openable:
// before the marker, readers resolve the untouched source copy; after
// it, they resolve the complete destination copy (listDroppings reads
// both locations and dedups by stamp).  Re-running the migration after
// a crash converges — every step tolerates its own completion.
//
// Rebalance wraps the protocol in a deterministic greedy policy driven
// by a caller-supplied per-volume load function (the harness feeds it
// the pfs per-volume MDS busy-time gauges).

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"
)

// RebalancePolicy controls one Rebalance pass.
type RebalancePolicy struct {
	// Load returns the recent load of volume v (any monotone measure;
	// the harness uses MDS busy seconds since the last pass).  Required.
	Load func(vol int) float64
	// SkewThreshold is the max/median load ratio above which migration
	// starts (default 1.5).  Below it the pass is a no-op.
	SkewThreshold float64
	// MaxMoves bounds migrations per pass (0 = no bound): each move is
	// real I/O, so callers may prefer several gentle passes to one big
	// reshuffle.
	MaxMoves int
}

// RebalanceMove records one migrated hostdir.
type RebalanceMove struct {
	Subdir int `json:"subdir"`
	From   int `json:"from"`
	To     int `json:"to"`
}

// RebalanceReport summarizes a Rebalance pass.
type RebalanceReport struct {
	Skew  float64         `json:"skew"` // max/median volume load going in
	Moves []RebalanceMove `json:"moves"`
}

// loadSkew is max/median of the volume loads; an idle or single-volume
// system reports 1 (no skew).
func loadSkew(loads []float64) float64 {
	if len(loads) < 2 {
		return 1
	}
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	maxL := sorted[len(sorted)-1]
	med := sorted[len(sorted)/2]
	if maxL <= 0 {
		return 1
	}
	if med <= 0 {
		// Load exists but the median volume is idle: maximal skew.
		return maxL / 1e-9
	}
	return maxL / med
}

// Rebalance runs one policy pass over a container: if the per-volume
// load skew exceeds the threshold, hostdirs migrate from overloaded
// volumes (more than their fair share of this container's hostdirs,
// lowest ids first — deterministic) to the coldest non-degraded volumes.
// The container must be quiescent; concurrent opens never 404 because
// every reader resolves the forwarding markers (see the file comment).
func (m *Mount) Rebalance(ctx Ctx, rel string, pol RebalancePolicy) (RebalanceReport, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	rep := RebalanceReport{Skew: 1}
	V := len(m.roots)
	if V < 2 || pol.Load == nil {
		return rep, nil
	}
	loads := make([]float64, V)
	for v := range loads {
		loads[v] = pol.Load(v)
	}
	rep.Skew = loadSkew(loads)
	thr := pol.SkewThreshold
	if thr <= 0 {
		thr = 1.5
	}
	if rep.Skew < thr {
		return rep, nil
	}
	ids, moved, err := m.hostdirIDs(ctx, rel)
	if err != nil {
		return rep, err
	}
	vc := m.containerVol(rel)
	perVol := make([][]int, V)
	for _, id := range ids {
		v := m.subdirVol(vc, id)
		if mv, ok := moved[id]; ok && mv < V {
			v = mv
		}
		perVol[v] = append(perVol[v], id)
	}
	fair := (len(ids) + V - 1) / V
	maxMoves := pol.MaxMoves
	if maxMoves <= 0 {
		maxMoves = len(ids)
	}
	// Hottest volumes first; ties break on index for determinism.
	order := make([]int, V)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		if loads[order[i]] != loads[order[j]] {
			return loads[order[i]] > loads[order[j]]
		}
		return order[i] < order[j]
	})
	for _, hot := range order {
		if loads[hot] <= 0 {
			break
		}
		for len(perVol[hot]) > fair && len(rep.Moves) < maxMoves {
			id := perVol[hot][0]
			dst := -1
			for v := 0; v < V; v++ {
				if v == hot || m.volDegraded(ctx, v) || len(perVol[v]) >= fair {
					continue
				}
				if dst == -1 || loads[v] < loads[dst] {
					dst = v
				}
			}
			if dst == -1 {
				break
			}
			if err := m.MigrateHostdir(ctx, rel, id, dst); err != nil {
				return rep, err
			}
			perVol[hot] = perVol[hot][1:]
			perVol[dst] = append(perVol[dst], id)
			rep.Moves = append(rep.Moves, RebalanceMove{Subdir: id, From: hot, To: dst})
		}
	}
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.rebalance.passes").Add(1)
		ctx.Obs.Counter("plfs.rebalance.moves").Add(int64(len(rep.Moves)))
	}
	return rep, nil
}

// MigrateHostdir moves one hostdir of container rel to volume dst using
// the crash-safe protocol in the file comment.  A no-op if the hostdir
// already lives on dst.  The container must be quiescent (no registered
// writers); readers may run concurrently throughout.
func (m *Mount) MigrateHostdir(ctx Ctx, rel string, id, dst int) error {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	if id < 0 || dst < 0 || dst >= len(m.roots) {
		return fmt.Errorf("plfs: migrate %s hostdir.%d to vol %d: %w", rel, id, dst, iofs.ErrInvalid)
	}
	pol := m.opt.Retry
	cpath, vc := m.containerPath(rel)
	sp := ctx.Obs.StartSpan("migrate")
	defer sp.End()

	// Quiescence: migrating under an active writer could strand droppings
	// created at the source after the copy loop passed it.
	if ents, err := ctx.readDirRetried(ctx.Vols[vc], path.Join(cpath, openHostsDir), pol); err == nil {
		if len(ents) > 0 {
			return fmt.Errorf("plfs: migrate %s hostdir.%d: container has %d active writer host(s)", rel, id, len(ents))
		}
	} else if !errors.Is(err, iofs.ErrNotExist) {
		return err
	}

	// Resolve the current location (forwarding markers win over the hash).
	ents, err := ctx.readDirRetried(ctx.Vols[vc], cpath, pol)
	if err != nil {
		return err
	}
	src := m.subdirVol(vc, id)
	seq := 0
	if t, ok := movedTargets(ents)[id]; ok {
		seq = t.Seq
		if t.Vol < len(m.roots) {
			src = t.Vol
		}
	}
	if src == dst {
		return nil
	}
	srcPath := path.Join(m.roots[src], rel, fmt.Sprintf("%s%d", hostdirPrefix, id))
	dstPath := path.Join(m.roots[dst], rel, fmt.Sprintf("%s%d", hostdirPrefix, id))

	// Destination landing zone (idempotent).
	if dst != vc {
		if err := ctx.mkdirRetried(ctx.Vols[dst], path.Join(m.roots[dst], rel), pol); err != nil && !errors.Is(err, iofs.ErrExist) {
			return err
		}
	}
	if err := ctx.mkdirRetried(ctx.Vols[dst], dstPath, pol); err != nil && !errors.Is(err, iofs.ErrExist) {
		return err
	}

	// Copy published droppings.  Atomic per file; ErrExist inside
	// writeFileAtomic reports success — a crashed earlier attempt already
	// landed this (immutable) file.
	srcEnts, err := ctx.readDirRetried(ctx.Vols[src], srcPath, pol)
	if err != nil {
		if !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
		srcEnts = nil // hostdir never materialized: nothing to copy
	}
	var copied int64
	var bytes int64
	for _, e := range srcEnts {
		if e.Dir || isTmpName(e.Name) {
			continue
		}
		pl, _, err := ctx.readAllRetried(ctx.Vols[src], path.Join(srcPath, e.Name), pol)
		if err != nil {
			return err
		}
		if err := ctx.writeFileAtomic(ctx.Vols[dst], path.Join(dstPath, e.Name), pl.Materialize(), pol, false); err != nil {
			return err
		}
		copied++
		bytes += e.Size
	}

	// The flattened global index records absolute dropping paths; it must
	// not outlive the move (its replicas neither).  Readers rebuild from
	// the droppings until the next flatten.
	gp := path.Join(cpath, metaDir, globalIndex)
	if err := ctx.retry(pol, func() error { return ctx.Vols[vc].Remove(gp) }); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	m.removeReplicas(ctx, gp)

	// Publish the forwarding marker: from this instant every reader (and
	// every batched writer) resolves the destination first.
	if err := ctx.writeFileAtomic(ctx.Vols[vc], path.Join(cpath, movedMarkerName(id, seq+1, dst)), nil, pol, false); err != nil {
		return err
	}
	// Retire superseded markers (lower seq for the same id).
	for _, e := range ents {
		mid, mseq, _, ok := parseMovedMarker(e.Name)
		if !ok || e.Dir || mid != id || mseq > seq {
			continue
		}
		if err := ctx.Vols[vc].Remove(path.Join(cpath, e.Name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
	}

	// Source cleanup.  Readers that listed the source a moment ago still
	// resolve its stamps — dedup prefers the destination copy — and ones
	// that list after see only the destination.
	if err := removeTree(ctx.Vols[src], srcPath); err != nil {
		return err
	}
	if src != vc {
		// Shadow container dir, if this was its last hostdir.
		_ = ctx.Vols[src].Remove(path.Join(m.roots[src], rel))
	}

	m.invalidateState(rel, ctx.Tenant)
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.rebalance.migrated_droppings").Add(copied)
		ctx.Obs.Counter("plfs.rebalance.migrated_bytes").Add(bytes)
	}
	return nil
}
