package plfs

import (
	"errors"
	iofs "io/fs"
	"time"

	"plfs/internal/payload"
)

// RetryPolicy retries transient backend errors at the dropping
// open/read/append call sites — the absorption layer for flaky backing
// stores (a rebuilding OST, an object store surfacing per-object EIO).
// Backoff grows exponentially with deterministic jitter and is charged
// through the context's Sleeper, so simulated retries cost virtual time
// while osfs deployments sleep for real.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first;
	// values <= 1 disable retrying.
	Attempts int
	// Backoff is the first retry's base delay (default 1ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
}

func (p RetryPolicy) enabled() bool { return p.Attempts > 1 }

// delay returns the backoff before retry attempt k (1-based), jittered
// deterministically by rank so a cohort of ranks retrying the same
// failure doesn't reissue in lockstep.
func (p RetryPolicy) delay(k, rank int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < k && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	// Deterministic jitter in [d/2, d): hash rank and attempt.
	h := uint64(rank)*0x9e3779b97f4a7c15 + uint64(k)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	frac := float64(h>>11) / float64(1<<53)
	return d/2 + time.Duration(float64(d/2)*frac)
}

// Retryable classifies an error for the retry policy: injected faults
// declare themselves via Transient(); namespace verdicts (not-exist,
// exist, permission, invalid) are permanent; anything else — the
// EIO-shaped remainder — is worth retrying.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	if errors.Is(err, iofs.ErrNotExist) || errors.Is(err, iofs.ErrExist) ||
		errors.Is(err, iofs.ErrPermission) || errors.Is(err, iofs.ErrInvalid) {
		return false
	}
	return true
}

// retry runs op under the policy, sleeping between attempts via the
// context's Sleeper (virtual time under the simulator) or real time
// when none is bound.
func (c Ctx) retry(p RetryPolicy, op func() error) error {
	err := op()
	if !p.enabled() {
		return err
	}
	for k := 1; k < p.Attempts && Retryable(err); k++ {
		if c.Obs != nil {
			c.Obs.Counter("plfs.retry.attempts").Add(1)
		}
		c.retrySleep(p.delay(k, c.Rank))
		err = op()
	}
	if err != nil && Retryable(err) && c.Obs != nil {
		// A transient error survived every attempt.
		c.Obs.Counter("plfs.retry.exhausted").Add(1)
	}
	return err
}

func (c Ctx) retrySleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.Sleep != nil {
		c.Sleep.Sleep(d)
		return
	}
	time.Sleep(d)
}

// mkdirRetried is Backend.Mkdir under the retry policy.  ErrExist is
// permanent (not retried) and surfaces to the caller, who typically
// tolerates it — another writer got there first.
func (c Ctx) mkdirRetried(b Backend, path string, p RetryPolicy) error {
	return c.retry(p, func() error { return b.Mkdir(path) })
}

// readDirRetried is Backend.ReadDir under the retry policy.
func (c Ctx) readDirRetried(b Backend, path string, p RetryPolicy) ([]Info, error) {
	var ents []Info
	err := c.retry(p, func() error {
		var e error
		ents, e = b.ReadDir(path)
		return e
	})
	return ents, err
}

// createRetried is Backend.Create under the retry policy.  If an earlier
// attempt failed after the backend created the file (a post-create
// transient), the retry would see ErrExist for a file this caller owns;
// in that case the existing file is reopened instead.
func (c Ctx) createRetried(b Backend, path string, p RetryPolicy) (File, error) {
	var f File
	failed := false
	err := c.retry(p, func() error {
		var e error
		f, e = b.Create(path)
		if e != nil && failed && errors.Is(e, iofs.ErrExist) {
			f, e = b.OpenWrite(path)
		}
		if e != nil {
			failed = true
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// openReadRetried is Backend.OpenRead under the retry policy.
func (c Ctx) openReadRetried(b Backend, path string, p RetryPolicy) (File, error) {
	var f File
	err := c.retry(p, func() error {
		var e error
		f, e = b.OpenRead(path)
		return e
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// readAllRetried opens path and reads its full contents, retrying the
// open+read as a unit (a failed read reopens, so a handle poisoned by a
// transient fault is not reused).
func (c Ctx) readAllRetried(b Backend, path string, p RetryPolicy) (payload.List, int64, error) {
	var pl payload.List
	var size int64
	err := c.retry(p, func() error {
		f, e := b.OpenRead(path)
		if e != nil {
			return e
		}
		size = f.Size()
		pl, e = f.ReadAt(0, size)
		f.Close()
		return e
	})
	if err != nil {
		return nil, 0, err
	}
	return pl, size, nil
}
