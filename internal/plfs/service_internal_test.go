package plfs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"plfs/internal/localcomm"
	"plfs/internal/obs"
)

// recSleeper records requested sleeps (the admission backoff is charged
// through the context's Sleeper, so the schedule is directly observable).
type recSleeper struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (s *recSleeper) Sleep(d time.Duration) {
	s.mu.Lock()
	s.slept = append(s.slept, d)
	s.mu.Unlock()
}

func TestAdmissionGateLedger(t *testing.T) {
	svc := NewService(ServiceOptions{
		Classes:     []ClassConfig{{Name: "batch", MaxInFlight: 2, Attempts: 3, Backoff: time.Millisecond}},
		TenantClass: map[string]string{"a": "batch"},
	})
	sl := &recSleeper{}
	ctx := Ctx{Tenant: "a", Sleep: sl}

	d1, err := svc.admit(ctx, "open")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := svc.admit(ctx, "open")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.admit(ctx, "open"); !errors.Is(err, ErrAdmission) {
		t.Fatalf("full gate: err = %v, want ErrAdmission", err)
	}
	// Attempts=3 means two retries, with doubled backoff between tries.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sl.slept) != len(want) || sl.slept[0] != want[0] || sl.slept[1] != want[1] {
		t.Fatalf("backoff schedule = %v, want %v", sl.slept, want)
	}

	d1()
	d3, err := svc.admit(ctx, "open")
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	d2()
	d3()

	st := svc.Stats()
	if len(st.Tenants) != 1 {
		t.Fatalf("tenants = %+v, want one", st.Tenants)
	}
	ta := st.Tenants[0]
	if ta.Tenant != "a" || ta.Admitted != 4 || ta.Completed != 3 || ta.Rejected != 1 || ta.Retries != 2 {
		t.Fatalf("ledger = %+v, want a/4/3/1/2", ta)
	}
	if ta.Admitted != ta.Completed+ta.Rejected {
		t.Fatalf("admitted %d != completed %d + rejected %d", ta.Admitted, ta.Completed, ta.Rejected)
	}
	if len(st.Classes) != 1 || st.Classes[0].InFlight != 0 || st.Classes[0].PeakInFlight != 2 {
		t.Fatalf("classes = %+v, want batch inflight 0 peak 2", st.Classes)
	}
}

func TestAdmissionUnmappedTenantUngated(t *testing.T) {
	// No "" class declared: tenants outside TenantClass run ungated.
	svc := NewService(ServiceOptions{
		Classes:     []ClassConfig{{Name: "batch", MaxInFlight: 1, Attempts: 1}},
		TenantClass: map[string]string{"a": "batch"},
	})
	sl := &recSleeper{}
	for i := 0; i < 10; i++ {
		d, err := svc.admit(Ctx{Tenant: "z", Sleep: sl}, "open")
		if err != nil {
			t.Fatalf("ungated admit %d: %v", i, err)
		}
		defer d()
	}
	if len(sl.slept) != 0 {
		t.Fatalf("ungated tenant slept: %v", sl.slept)
	}
}

func TestAdmissionDefaultClass(t *testing.T) {
	// A declared "" class catches every unmapped tenant.
	svc := NewService(ServiceOptions{
		Classes: []ClassConfig{{Name: "", MaxInFlight: 1, Attempts: 1}},
	})
	d, err := svc.admit(Ctx{Tenant: "z"}, "open")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.admit(Ctx{Tenant: "y"}, "open"); !errors.Is(err, ErrAdmission) {
		t.Fatalf("default class did not gate unmapped tenant: %v", err)
	}
	d()
}

// TestCollectiveAdmissionFailsTogether pins the collective protocol: rank
// 0 admits once and broadcasts the verdict, so either every rank proceeds
// or every rank returns ErrAdmission — no rank is left stranded in a
// collective because a peer was turned away.
func TestCollectiveAdmissionFailsTogether(t *testing.T) {
	svc := NewService(ServiceOptions{
		Classes:     []ClassConfig{{Name: "batch", MaxInFlight: 1, Attempts: 1}},
		TenantClass: map[string]string{"a": "batch"},
	})
	m := svc.Mount([]string{t.TempDir()}, Options{})
	reg := obs.New()

	hold, err := svc.admit(Ctx{Tenant: "a"}, "open")
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	run := func() []error {
		comms := localcomm.New(n)
		errs := make([]error, n)
		dones := make([]func(), n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				dones[i], errs[i] = m.admit(Ctx{Tenant: "a", Comm: comms[i], Obs: reg}, "open")
			}(i)
		}
		wg.Wait()
		for _, d := range dones {
			if d != nil {
				d()
			}
		}
		return errs
	}

	for i, err := range run() {
		if !errors.Is(err, ErrAdmission) {
			t.Fatalf("rank %d: err = %v, want ErrAdmission on every rank", i, err)
		}
	}
	hold()
	for i, err := range run() {
		if err != nil {
			t.Fatalf("rank %d after release: %v", i, err)
		}
	}

	// The collective counts once (rank 0), not once per rank: the held
	// ticket plus one rejected and one completed collective.
	st := svc.Stats()
	ta := st.Tenants[0]
	if ta.Admitted != 3 || ta.Completed != 2 || ta.Rejected != 1 {
		t.Fatalf("ledger = %+v, want admitted 3 completed 2 rejected 1", ta)
	}
	if got := reg.Counter("plfs.svc.tenant.a.rejected").Value(); got != 1 {
		t.Fatalf("obs rejected = %d, want 1", got)
	}
	if got := reg.Counter("plfs.svc.tenant.a.completed").Value(); got != 1 {
		t.Fatalf("obs completed = %d, want 1 (collectives count once)", got)
	}
}
