package plfs

// Atomic commit protocol.  Container metadata that must never be
// observed half-written — the flattened global index, metadir size and
// generation records, and Recover-rebuilt index droppings — is written
// to a "<final>.tmp.<rank>" name and published with a single Rename.
// Readers, listDroppings, and the metadir parsers all ignore temp
// names, so a crash mid-commit leaves at worst an orphaned temp file
// (swept by Scrub and Recover), never a consumable torn file.
//
// Backends that advertise CondPutter (object stores) take a shorter
// path: the whole record publishes as one conditional PUT — put-if-absent
// replacing the rename-no-replace, put-if-generation replacing the
// remove+rename — so there is no temp name, no rename, and nothing for a
// crash to orphan.  Both paths give the same guarantee: the final name
// only ever appears with complete content.

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"strings"

	"plfs/internal/payload"
)

// tmpSuffix marks an unpublished commit temp file.
const tmpSuffix = ".tmp."

// tmpName returns the per-rank temp name a commit of final stages into.
func tmpName(final string, rank int) string {
	return fmt.Sprintf("%s%s%d", final, tmpSuffix, rank)
}

// isTmpName reports whether a base name is an unpublished commit temp.
func isTmpName(name string) bool { return strings.Contains(name, tmpSuffix) }

// writeFileAtomic commits buf to final via create-temp, append, close,
// rename.  Every retry starts over from a fresh temp file, so an append
// that partially applied (a torn write, an ambiguous EIO) can never
// leave duplicated or truncated content under the final name — the
// damaged temp is discarded and final only ever appears complete.
//
// replace removes an existing final immediately before the rename (for
// rewriting a corrupt file in place, e.g. a Recover-rebuilt index).
// Without replace, a rename refused with ErrExist is reported as
// success: the publish already happened — by a racing peer committing
// the same record, or by an earlier attempt of ours whose rename
// applied despite an ambiguous error — and under this protocol same
// name means same committed content.  The duplicate temp is dropped.
func (c Ctx) writeFileAtomic(b Backend, final string, buf []byte, pol RetryPolicy, replace bool) error {
	if cp, ok := b.(CondPutter); ok {
		err := c.condPutLoop(cp, final, buf, pol, replace)
		if !errors.Is(err, errors.ErrUnsupported) {
			return err
		}
		// A wrapper advertised the capability but its inner backend lacks
		// it; fall through to the rename protocol.
	}
	tmp := tmpName(final, c.Rank)
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for k := 1; ; k++ {
		err = c.commitOnce(b, tmp, final, buf, replace)
		if err == nil || k >= attempts || !commitRetryable(err) {
			return err
		}
		c.retrySleep(pol.delay(k, c.Rank))
	}
}

func (c Ctx) commitOnce(b Backend, tmp, final string, buf []byte, replace bool) error {
	if err := b.Remove(tmp); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	f, err := b.Create(tmp)
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		if _, err := f.Append(payload.FromBytes(buf)); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if replace {
		if err := b.Remove(final); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
	}
	err = b.Rename(tmp, final)
	if err != nil && !replace && errors.Is(err, iofs.ErrExist) {
		b.Remove(tmp)
		return nil
	}
	return err
}

// condPutLoop is the commit protocol over a CondPutter backend: each
// attempt is one conditional PUT, atomic by the backend's contract.
// errors.ErrUnsupported is surfaced immediately (the wrapper's inner
// backend lacks the capability; the caller falls back to the rename
// protocol) — it must not reach commitRetryable, which would classify
// its EIO-shaped self as worth retrying.
func (c Ctx) condPutLoop(cp CondPutter, final string, buf []byte, pol RetryPolicy, replace bool) error {
	attempts := pol.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for k := 1; ; k++ {
		err = c.condPutOnce(cp, final, buf, replace)
		if err == nil || errors.Is(err, errors.ErrUnsupported) ||
			k >= attempts || !commitRetryable(err) {
			return err
		}
		c.retrySleep(pol.delay(k, c.Rank))
	}
}

func (c Ctx) condPutOnce(cp CondPutter, final string, buf []byte, replace bool) error {
	if replace {
		// Put-if-generation: a losing writer gets a transient conflict
		// and the loop above re-reads and reissues.
		return cp.PutReplace(final, buf)
	}
	err := cp.PutIfAbsent(final, buf)
	if err != nil && errors.Is(err, iofs.ErrExist) {
		// The rename protocol's ErrExist-without-replace verdict, one op
		// earlier: the record is already published — by a racing peer or
		// an earlier ambiguous attempt of ours — and under this protocol
		// same name means same committed content.
		return nil
	}
	return err
}

// commitRetryable extends the usual retry classification: a torn write
// is permanent for an in-place append but safe to retry here, because
// each attempt rebuilds the temp file from scratch.
func commitRetryable(err error) bool {
	if Retryable(err) {
		return true
	}
	var tw interface{ TornWrite() bool }
	return errors.As(err, &tw) && tw.TornWrite()
}
