package plfs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestStatFallsBackWhenSizeRecordLost simulates a job that died before
// recording the logical size in the metadir: Stat must rebuild the size
// from the index droppings (the slow path).
func TestStatFallsBackWhenSizeRecordLost(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 2})
	ctx := r.ctx(0, nil)
	w, err := r.m.Create(ctx, "crashed")
	if err != nil {
		t.Fatal(err)
	}
	w.Write(100, payload.FromBytes(bytes.Repeat([]byte{'x'}, 50)))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose the size record, as if the writer died mid-close.
	recs, _ := filepath.Glob(filepath.Join(r.roots[0], "crashed", "meta", "sz.*"))
	if len(recs) != 1 {
		t.Fatalf("size records = %v", recs)
	}
	if err := os.Remove(recs[0]); err != nil {
		t.Fatal(err)
	}
	fi, err := r.m.Stat(ctx, "crashed")
	if err != nil {
		t.Fatalf("stat fallback: %v", err)
	}
	if fi.Size != 150 {
		t.Fatalf("fallback size = %d, want 150", fi.Size)
	}
}

// TestCorruptIndexDroppingSurfacesError: a truncated index dropping must
// produce a decode error at read open, not silent data corruption.
func TestCorruptIndexDroppingSurfacesError(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 1})
	ctx := r.ctx(0, nil)
	w, _ := r.m.Create(ctx, "f")
	w.Write(0, payload.FromBytes([]byte("data")))
	w.Close()
	idx, _ := filepath.Glob(filepath.Join(r.roots[0], "f", "hostdir.*", "dropping.index.*"))
	if len(idx) != 1 {
		t.Fatalf("index droppings = %v", idx)
	}
	if err := os.Truncate(idx[0], plfs.EntryBytes-7); err != nil {
		t.Fatal(err)
	}
	if _, err := r.m.OpenReader(ctx, "f"); err == nil {
		t.Fatal("open of corrupt container succeeded")
	}
}

// TestReopenForWriteAppendsNewDroppings: a second write session on an
// existing container adds droppings rather than clobbering; later
// timestamps win overlaps and the logical size grows.
func TestReopenForWriteAppendsNewDroppings(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 1})
	ctx := r.ctx(0, nil)
	w1, err := r.m.Create(ctx, "multi")
	if err != nil {
		t.Fatal(err)
	}
	w1.Write(0, payload.FromBytes([]byte("aaaa")))
	w1.Close()
	w2, err := r.m.Create(ctx, "multi") // same logical file, new session
	if err != nil {
		t.Fatal(err)
	}
	w2.Write(2, payload.FromBytes([]byte("BBBB")))
	w2.Close()
	dd, _ := filepath.Glob(filepath.Join(r.roots[0], "multi", "hostdir.*", "dropping.data.*"))
	if len(dd) != 2 {
		t.Fatalf("data droppings = %d, want 2 (one per session)", len(dd))
	}
	rd, err := r.m.OpenReader(ctx, "multi")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got, _ := rd.ReadAt(0, 6)
	if string(got.Materialize()) != "aaBBBB" {
		t.Fatalf("got %q, want aaBBBB", got.Materialize())
	}
}

// TestUnlinkOfNonContainerFails: Unlink refuses paths that are not PLFS
// containers instead of deleting arbitrary directories.
func TestUnlinkOfNonContainerFails(t *testing.T) {
	r := newRig(t, 1, plfs.Options{})
	ctx := r.ctx(0, nil)
	if err := r.m.Mkdir(ctx, "plaindir"); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Unlink(ctx, "plaindir"); err == nil {
		t.Fatal("unlink of plain directory succeeded")
	}
	if err := r.m.Unlink(ctx, "missing"); err == nil {
		t.Fatal("unlink of missing path succeeded")
	}
}

// TestEmptyContainerReadsAsEmpty: a created-then-closed file with no
// writes has logical size zero and reads as holes.
func TestEmptyContainerReadsAsEmpty(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	ctx := r.ctx(0, nil)
	w, err := r.m.Create(ctx, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := r.m.Stat(ctx, "empty")
	if err != nil || fi.Size != 0 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	rd, err := r.m.OpenReader(ctx, "empty")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Size() != 0 {
		t.Fatalf("size = %d", rd.Size())
	}
	got, err := rd.ReadAt(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got.Materialize() {
		if b != 0 {
			t.Fatal("empty container returned nonzero bytes")
		}
	}
}

// TestZeroLengthWritesAreNoops: zero-length writes add no index entries
// and no bytes.
func TestZeroLengthWritesAreNoops(t *testing.T) {
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	ctx := r.ctx(0, nil)
	w, _ := r.m.Create(ctx, "z")
	if err := w.Write(100, payload.FromBytes(nil)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	rd, _ := r.m.OpenReader(ctx, "z")
	defer rd.Close()
	if rd.Size() != 0 || rd.Stats.RawEntries != 0 {
		t.Fatalf("size=%d entries=%d after zero-length write", rd.Size(), rd.Stats.RawEntries)
	}
}

// TestDoubleCloseAndUseAfterClose: lifecycle errors are reported.
func TestDoubleCloseAndUseAfterClose(t *testing.T) {
	r := newRig(t, 1, plfs.Options{})
	ctx := r.ctx(0, nil)
	w, _ := r.m.Create(ctx, "lc")
	w.Write(0, payload.FromBytes([]byte("x")))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
	if err := w.Write(0, payload.FromBytes([]byte("y"))); err == nil {
		t.Fatal("write after close succeeded")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync after close succeeded")
	}
	rd, _ := r.m.OpenReader(ctx, "lc")
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err == nil {
		t.Fatal("reader double close succeeded")
	}
	if _, err := rd.ReadAt(0, 1); err == nil {
		t.Fatal("read after close succeeded")
	}
}
