package plfs_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"plfs/internal/obs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestIndexCacheSecondOpenHits: the headline cross-open cache property —
// a second serial open of an unchanged container reads zero index bytes
// and is visible as a hit on the obs counters.
func TestIndexCacheSecondOpenHits(t *testing.T) {
	const n, blocks, bs = 4, 3, int64(256)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "cached")
	})
	reg := obs.New()
	ctx := r.ctx(0, nil)
	ctx.Obs = reg

	rd, err := r.m.OpenReader(ctx, "cached")
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.CacheHit {
		t.Fatal("first open reported a cache hit")
	}
	if rd.Stats.IndexReads == 0 {
		t.Fatal("first open read no index droppings")
	}
	verifyN1(t, rd, n, blocks, bs)
	rd.Close()

	rd, err = r.m.OpenReader(ctx, "cached")
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Stats.CacheHit {
		t.Fatal("second open missed the index cache")
	}
	if rd.Stats.IndexReads != 0 || rd.Stats.IndexBytes != 0 {
		t.Fatalf("cache hit still read %d index files (%d bytes)",
			rd.Stats.IndexReads, rd.Stats.IndexBytes)
	}
	verifyN1(t, rd, n, blocks, bs)
	rd.Close()

	if h := reg.Counter("plfs.index.cache.hit").Value(); h != 1 {
		t.Fatalf("cache.hit = %d, want 1", h)
	}
	if m := reg.Counter("plfs.index.cache.miss").Value(); m != 1 {
		t.Fatalf("cache.miss = %d, want 1", m)
	}
}

// TestIndexCacheCollectiveModes: rank 0's cache hit rides the header
// broadcast, so a second collective open does zero index reads on every
// rank, in both coordinated modes.
func TestIndexCacheCollectiveModes(t *testing.T) {
	const n, blocks, bs = 6, 4, int64(128)
	for _, mode := range []plfs.Mode{plfs.IndexFlatten, plfs.ParallelIndexRead} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, 1, plfs.Options{IndexMode: mode})
			runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
				writeN1(t, r.m, ctx, rank, n, blocks, bs, "coll")
			})
			open := func(wantHit bool) {
				runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
					rd, err := r.m.OpenReader(ctx, "coll")
					if err != nil {
						t.Errorf("rank %d open: %v", rank, err)
						return
					}
					defer rd.Close()
					if rd.Stats.CacheHit != wantHit {
						t.Errorf("rank %d CacheHit = %v, want %v", rank, rd.Stats.CacheHit, wantHit)
					}
					if wantHit && (rd.Stats.IndexReads != 0 || rd.Stats.IndexBytes != 0) {
						t.Errorf("rank %d cache hit read %d index files (%d bytes)",
							rank, rd.Stats.IndexReads, rd.Stats.IndexBytes)
					}
					verifyN1(t, rd, n, blocks, bs)
				})
			}
			open(false)
			open(true)
		})
	}
}

// TestOriginalCollectiveNeverCaches: the collective Original baseline is
// the paper's uncoordinated N² design; ranks must not share aggregation
// state through the cache in either direction.
func TestOriginalCollectiveNeverCaches(t *testing.T) {
	const n, blocks, bs = 4, 2, int64(128)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "orig")
	})
	for round := 0; round < 2; round++ {
		runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
			rd, err := r.m.OpenReader(ctx, "orig")
			if err != nil {
				t.Errorf("rank %d open: %v", rank, err)
				return
			}
			defer rd.Close()
			if rd.Stats.CacheHit {
				t.Errorf("round %d rank %d: collective Original hit the cache", round, rank)
			}
			if rd.Stats.IndexReads == 0 {
				t.Errorf("round %d rank %d: collective Original read no indexes", round, rank)
			}
		})
	}
}

// TestIndexCacheDisabled: NoIndexCache restores re-aggregation per open.
func TestIndexCacheDisabled(t *testing.T) {
	const n, blocks, bs = 3, 2, int64(128)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NoIndexCache: true})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "nocache")
	})
	ctx := r.ctx(0, nil)
	for i := 0; i < 2; i++ {
		rd, err := r.m.OpenReader(ctx, "nocache")
		if err != nil {
			t.Fatal(err)
		}
		if rd.Stats.CacheHit {
			t.Fatalf("open %d hit a disabled cache", i)
		}
		if rd.Stats.IndexReads == 0 {
			t.Fatalf("open %d read no index droppings", i)
		}
		rd.Close()
	}
}

// TestIndexCacheInvalidation: every mutation — rewrite, truncate, rename
// — must advance the generation so the next open re-aggregates.
func TestIndexCacheInvalidation(t *testing.T) {
	const bs = int64(512)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	ctx := r.ctx(0, nil)
	writeTag := func(name string, tag uint64) {
		w, err := r.m.Create(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(0, payload.Synthetic(tag, 0, bs)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(name string, tag uint64, wantHit bool) {
		t.Helper()
		rd, err := r.m.OpenReader(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		if rd.Stats.CacheHit != wantHit {
			t.Fatalf("%s: CacheHit = %v, want %v", name, rd.Stats.CacheHit, wantHit)
		}
		got, err := rd.ReadAt(0, bs)
		if err != nil {
			t.Fatal(err)
		}
		if !payload.ContentEqual(got, payload.List{payload.Synthetic(tag, 0, bs)}) {
			t.Fatalf("%s: content is not tag %d", name, tag)
		}
	}

	writeTag("inv", 1)
	expect("inv", 1, false) // populate
	expect("inv", 1, true)  // hit

	writeTag("inv", 2)      // rewrite: generation advanced at close
	expect("inv", 2, false) // must re-aggregate, not serve tag 1
	expect("inv", 2, true)

	if err := r.m.Truncate(ctx, "inv"); err != nil {
		t.Fatal(err)
	}
	rd, err := r.m.OpenReader(ctx, "inv")
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.CacheHit || rd.Size() != 0 {
		t.Fatalf("post-truncate open: CacheHit=%v size=%d", rd.Stats.CacheHit, rd.Size())
	}
	rd.Close()

	writeTag("inv", 3)
	expect("inv", 3, false)
	expect("inv", 3, true)
	if err := r.m.Rename(ctx, "inv", "inv2"); err != nil {
		t.Fatal(err)
	}
	expect("inv2", 3, false) // new name: no cached aggregation
	if _, err := r.m.OpenReader(ctx, "inv"); err == nil {
		t.Fatal("old name still opens after rename")
	}
}

// TestIndexCacheConcurrentRewrite is the -race stress: readers loop
// OpenReader while a writer rewrites the container; every read must see
// one complete write generation (uniform content), and an open issued
// after a Close returns must see that close's data — never a stale
// cached generation.
func TestIndexCacheConcurrentRewrite(t *testing.T) {
	const rounds, bs = 6, int64(1024)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	wctx := r.ctx(0, nil)

	writeTag := func(tag uint64) {
		w, err := r.m.Create(wctx, "hot")
		if err != nil {
			t.Error(err)
			return
		}
		if err := w.Write(0, payload.Synthetic(tag, 0, bs)); err != nil {
			t.Error(err)
		}
		if err := w.Close(); err != nil {
			t.Error(err)
		}
	}
	writeTag(1)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := r.ctx(g+1, nil)
			for {
				select {
				case <-done:
					return
				default:
				}
				rd, err := r.m.OpenReader(ctx, "hot")
				if err != nil {
					continue // mid-truncate windows can race the reader
				}
				if rd.Size() == bs {
					got, err := rd.ReadAt(0, bs)
					if err != nil {
						t.Errorf("reader %d: %v", g, err)
					} else {
						ok := false
						for tag := uint64(1); tag <= rounds; tag++ {
							if payload.ContentEqual(got, payload.List{payload.Synthetic(tag, 0, bs)}) {
								ok = true
								break
							}
						}
						if !ok {
							t.Errorf("reader %d: torn content (no single write generation)", g)
						}
					}
				}
				rd.Close()
			}
		}(g)
	}
	for tag := uint64(2); tag <= rounds; tag++ {
		writeTag(tag)
		// The writer's own open after Close must see this generation.
		rd, err := r.m.OpenReader(wctx, "hot")
		if err != nil {
			t.Fatal(err)
		}
		got, err := rd.ReadAt(0, bs)
		if err != nil {
			t.Fatal(err)
		}
		if !payload.ContentEqual(got, payload.List{payload.Synthetic(tag, 0, bs)}) {
			t.Fatalf("open after close of generation %d served stale content", tag)
		}
		rd.Close()
	}
	close(done)
	wg.Wait()
}

// TestReadBackAcrossFeatureCombos: every combination of run compression
// × index cache × sieve gap must return byte-identical logical content,
// including overwrites and holes.
func TestReadBackAcrossFeatureCombos(t *testing.T) {
	const blocks, bs, stride = 10, int64(512), int64(1024)
	write := func(m *plfs.Mount, ctx plfs.Ctx) {
		w, err := m.Create(ctx, "combo")
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < blocks; k++ { // strided blocks with holes between
			off := int64(k) * stride
			if err := w.Write(off, payload.Synthetic(uint64(k+1), off, bs)); err != nil {
				t.Fatal(err)
			}
		}
		// Overwrite straddling block 3's interior (splits resolved pieces).
		if err := w.Write(3*stride+7, payload.Synthetic(99, 0, 100)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	var ref []byte
	var refStrided []byte
	for _, compressOff := range []bool{false, true} {
		for _, cacheOff := range []bool{false, true} {
			for _, gap := range []int64{0, 1 << 20} {
				name := fmt.Sprintf("compressOff=%v/cacheOff=%v/gap=%d", compressOff, cacheOff, gap)
				r := newRig(t, 1, plfs.Options{
					IndexMode:        plfs.Original,
					NoRunCompression: compressOff,
					NoIndexCache:     cacheOff,
					SieveGap:         gap,
				})
				ctx := r.ctx(0, nil)
				write(r.m, ctx)
				rd, err := r.m.OpenReader(ctx, "combo")
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				full, err := rd.ReadAt(0, rd.Size())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				var strided []byte
				for k := 0; k < blocks; k += 2 { // noncontiguous read pattern
					pl, err := rd.ReadAt(int64(k)*stride+3, bs/2)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					strided = append(strided, pl.Materialize()...)
				}
				rd.Close()
				if ref == nil {
					ref, refStrided = full.Materialize(), strided
					continue
				}
				if !bytes.Equal(full.Materialize(), ref) {
					t.Fatalf("%s: full read-back differs from reference", name)
				}
				if !bytes.Equal(strided, refStrided) {
					t.Fatalf("%s: strided read-back differs from reference", name)
				}
			}
		}
	}
}

// TestGlobalIndexCompressionShrinks: a strided N-1 checkpoint's global
// index must shrink at least 10x with run compression on (the O(1)-per-
// writer property), with read-back unchanged.
func TestGlobalIndexCompressionShrinks(t *testing.T) {
	const n, blocks, bs = 8, 40, int64(512)
	size := func(compress bool) int64 {
		r := newRig(t, 1, plfs.Options{IndexMode: plfs.IndexFlatten, NoRunCompression: !compress})
		runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
			writeN1(t, r.m, ctx, rank, n, blocks, bs, "fig5")
		})
		runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
			rd, err := r.m.OpenReader(ctx, "fig5")
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer rd.Close()
			if !rd.Stats.UsedGlobal {
				t.Error("flattened index not used")
			}
			verifyN1(t, rd, n, blocks, bs)
		})
		p := filepath.Join(r.roots[0], "fig5", "meta", "global.index")
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	compressed, uncompressed := size(true), size(false)
	if compressed*10 > uncompressed {
		t.Fatalf("global index %d bytes compressed vs %d uncompressed: shrink < 10x",
			compressed, uncompressed)
	}
}

// TestLookupAllocFree is the allocation-regression guard: lookups through
// a reused piece buffer must not allocate, on both the run-table path (a
// strided writer) and the segment path (irregular writes).
func TestLookupAllocFree(t *testing.T) {
	const blocks, bs, stride = 64, int64(256), int64(1024)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
	ctx := r.ctx(0, nil)
	w, err := r.m.Create(ctx, "alloc")
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < blocks; k++ {
		off := int64(k) * stride
		if err := w.Write(off, payload.Synthetic(1, off, bs)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	rd, err := r.m.OpenReader(ctx, "alloc")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	ix := rd.Index()
	if ix.Runs() == 0 {
		t.Fatal("strided container built no run records")
	}
	buf := make([]plfs.Piece, 0, 64)
	var off int64
	allocs := testing.AllocsPerRun(200, func() {
		buf = ix.AppendPieces(buf[:0], off%ix.Size(), 4*stride)
		off += stride + 13
	})
	if allocs != 0 {
		t.Fatalf("AppendPieces allocated %.1f times per lookup, want 0", allocs)
	}
}
