package plfs

import (
	"fmt"
	"testing"
)

// cacheTestIndex builds a small distinct index for cache tests: n segments,
// one dropping, disjoint extents so BuildIndex keeps every entry.
func cacheTestIndex(n int) *Index {
	ents := make([]Entry, n)
	for i := range ents {
		ents[i] = Entry{
			LogicalOff: int64(i) * 64,
			Length:     64,
			PhysOff:    int64(i) * 64,
			Timestamp:  int64(i),
			Rank:       0,
		}
	}
	return BuildIndex([][]Entry{ents}, []string{"d0"})
}

func TestIndexCacheLRUEviction(t *testing.T) {
	one := cacheTestIndex(8).residentBytes()
	econ := newEconomy(3 * one)
	c := newIndexCache(econ)
	econ.register(c)

	for i := 0; i < 3; i++ {
		if ev := c.put(fmt.Sprintf("k%d", i), 1, cacheTestIndex(8), "t"); ev != 0 {
			t.Fatalf("put k%d evicted %d entries under budget", i, ev)
		}
	}
	if got := econ.stats().UsedBytes; got != 3*one {
		t.Fatalf("used = %d, want %d", got, 3*one)
	}

	// Refresh k0 so k1 is the LRU tail, then overflow: k1 must go.
	if c.get("k0", 1) == nil {
		t.Fatal("k0 missing before eviction")
	}
	if ev := c.put("k3", 1, cacheTestIndex(8), "t"); ev != 1 {
		t.Fatalf("overflow put evicted %d entries, want 1", ev)
	}
	if c.get("k1", 1) != nil {
		t.Fatal("k1 survived eviction but was least recently used")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if c.get(k, 1) == nil {
			t.Fatalf("%s evicted, want k1 only", k)
		}
	}
	if got := econ.stats().UsedBytes; got != 3*one {
		t.Fatalf("used after eviction = %d, want %d", got, 3*one)
	}
	st := econ.stats()
	if st.Evictions != 1 || st.EvictedBytes != one {
		t.Fatalf("pressure counters = (%d, %d), want (1, %d)", st.Evictions, st.EvictedBytes, one)
	}

	c.clear()
	if got := econ.stats().UsedBytes; got != 0 {
		t.Fatalf("used after clear = %d, want 0", got)
	}
}

func TestIndexCacheGenerationRules(t *testing.T) {
	one := cacheTestIndex(8).residentBytes()
	econ := newEconomy(10 * one)
	c := newIndexCache(econ)
	econ.register(c)

	c.put("k", 3, cacheTestIndex(8), "t")
	if c.get("k", 2) != nil {
		t.Fatal("newer-gen entry served at an older generation")
	}
	if c.get("k", 3) == nil {
		t.Fatal("mismatched get at an older gen must not delete a newer entry")
	}

	// An older-gen put loses to the resident newer entry.
	c.put("k", 2, cacheTestIndex(8), "t")
	if c.get("k", 3) == nil {
		t.Fatal("older-gen put displaced a newer entry")
	}
	if got := econ.stats().UsedBytes; got != one {
		t.Fatalf("used = %d, want %d (refused put must not leak a charge)", got, one)
	}

	// A newer-gen get deletes the stale entry on sight and releases it.
	if c.get("k", 4) != nil {
		t.Fatal("stale entry served at a newer generation")
	}
	if c.get("k", 3) != nil {
		t.Fatal("stale entry survived delete-on-sight")
	}
	if got := econ.stats().UsedBytes; got != 0 {
		t.Fatalf("used after delete-on-sight = %d, want 0", got)
	}

	// An index larger than the whole budget is refused outright.
	tiny := newEconomy(1)
	tc := newIndexCache(tiny)
	tiny.register(tc)
	if ev := tc.put("k", 1, cacheTestIndex(8), "t"); ev != 0 {
		t.Fatalf("oversized put evicted %d entries", ev)
	}
	if tc.get("k", 1) != nil {
		t.Fatal("oversized index was cached")
	}
}

// BenchmarkIndexCachePut drives the cache at a budget that forces one
// eviction per insert — the regime where the old linear min-scan cost
// O(entries) per put and the intrusive LRU costs O(1).
func BenchmarkIndexCachePut(b *testing.B) {
	for _, resident := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("resident=%d", resident), func(b *testing.B) {
			ix := cacheTestIndex(8)
			one := ix.residentBytes()
			econ := newEconomy(int64(resident) * one)
			c := newIndexCache(econ)
			econ.register(c)
			keys := make([]string, resident+b.N)
			for i := range keys {
				keys[i] = fmt.Sprintf("c%07d", i)
			}
			for i := 0; i < resident; i++ {
				c.put(keys[i], 1, ix, "t")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.put(keys[resident+i], 1, ix, "t")
			}
		})
	}
}
