package plfs

import (
	"errors"
	"fmt"
	"hash/fnv"
	iofs "io/fs"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plfs/internal/comm"
	"plfs/internal/obs"
)

// Mode selects the index aggregation strategy (§IV of the paper).
type Mode int

const (
	// Original is the uncoordinated design: every reading process opens
	// and reads every index dropping itself (N² opens for N processes).
	Original Mode = iota
	// IndexFlatten aggregates the global index once, at write close:
	// writers buffer index entries, gather them to rank 0, and persist a
	// single global index that read-open merely broadcasts.
	IndexFlatten
	// ParallelIndexRead aggregates at read open with a two-level
	// group/leader hierarchy: members read disjoint subsets of the index
	// droppings, leaders merge and exchange, then broadcast (N opens).
	ParallelIndexRead
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Original:
		return "original"
	case IndexFlatten:
		return "index-flatten"
	case ParallelIndexRead:
		return "parallel-index-read"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Container layout names (Fig. 1 of the paper).
const (
	accessFile    = ".plfsaccess"
	metaDir       = "meta"
	openHostsDir  = "openhosts"
	hostdirPrefix = "hostdir."
	metalinkSufx  = ".metalink"
	globalIndex   = "global.index"
	dataPrefix    = "dropping.data."
	indexPrefix   = "dropping.index."
	sizePrefix    = "sz."
	genPrefix     = "gen."
)

// Options configure a PLFS mount.
type Options struct {
	// NumSubdirs is the number of hostdir subdirectories per container
	// (default 32).
	NumSubdirs int
	// SpreadContainers hashes each container onto one of the mount's
	// volumes (federated metadata technique 1, for N-N workloads).
	SpreadContainers bool
	// SpreadSubdirs hashes each container's hostdirs across volumes
	// (federated metadata technique 2, for the physical N-N created from
	// logical N-1 workloads; Fig. 6).
	SpreadSubdirs bool
	// IndexMode selects the read-open aggregation strategy.
	IndexMode Mode
	// FlattenThreshold is the per-process buffered-entry limit for
	// IndexFlatten (default 65536); if any process exceeds it, the global
	// index is not built and readers fall back.
	FlattenThreshold int
	// GroupSize is the member count per group for ParallelIndexRead;
	// 0 picks ~sqrt(N) for a balanced two-level hierarchy.
	GroupSize int
	// DataFlushBytes enables write-behind buffering: data payloads are
	// batched into sequential appends of this size.  Zero (the default)
	// writes through per operation, like real PLFS; buffering shifts the
	// tail flush into close time, so leave it off when close latency is
	// being measured.
	DataFlushBytes int64
	// NoIndexCompression disables write-side index compression.  By
	// default (like real PLFS) an index record that exactly continues the
	// previous one — logically and physically — extends it instead of
	// appending a new record, so segmented writers produce tiny indexes
	// while strided writers keep one record per operation.
	NoIndexCompression bool
	// NoRunCompression disables run detection at index flush.  By default
	// a writer's arithmetic runs — constant-stride sequences of entries
	// with equal lengths and contiguous physical placement, the shape of
	// strided checkpoints — are persisted as single run records, so a
	// K-operation strided phase costs O(1) index bytes instead of 40·K
	// (see DESIGN.md §12).  Disabling emits one v1-style record per entry.
	NoRunCompression bool
	// NoIndexCache disables the cross-open index cache.  By default each
	// Mount keeps recently built global indexes keyed by container
	// generation, so re-opening an unchanged container skips listing,
	// reading, and merging index droppings entirely; any mutation (write
	// open, write close, truncate, rename, recover) advances the
	// generation and the stale aggregation can never be served.
	NoIndexCache bool
	// IndexCacheBytes bounds the resident bytes of the cross-open index
	// cache (default 64 MiB); least-recently-used containers are evicted
	// to stay under budget.
	IndexCacheBytes int64
	// SieveGap is the data-sieving threshold for ReadAt coalescing: two
	// pieces of the same dropping whose physical extents are within this
	// many bytes merge into one backend read, trading wasted gap bytes
	// (tracked in ReadStats.SieveWasted) for fewer I/Os.  0, the default,
	// still merges exactly-adjacent pieces.
	SieveGap int64
	// ParseCPUPerEntry charges CPU for decoding index records from their
	// droppings (default 500ns/entry); MergeCPUPerEntry charges CPU for
	// resolving raw records into the global offset map (default 2µs/entry,
	// the dominant open-time CPU term at scale).  Both are charged through
	// the context's Sleeper.
	ParseCPUPerEntry time.Duration
	MergeCPUPerEntry time.Duration
	// DecodeWorkers bounds the worker pool used for real-CPU parallelism
	// on the read path: concurrent index-dropping decode during
	// aggregation, per-shard sorting in the index build, and fan-out of
	// ReadAt data fetches.  0 (the default) means one worker per available
	// CPU; 1 forces the serial baseline.  Simulated virtual time is
	// unaffected — the pool only changes wall-clock cost.
	DecodeWorkers int
	// SerialResolve forces the flatten-then-global-sort index build even
	// when DecodeWorkers would allow the merge-based parallel build (A/B
	// baseline for the harness).
	SerialResolve bool
	// NoReadFanout disables ReadAt's batched per-dropping read fan-out
	// (A/B baseline for the harness).  Fan-out also disables itself on
	// backends that don't advertise ConcurrentIO, such as the simulator.
	NoReadFanout bool
	// Retry reissues dropping opens/reads/appends that fail with
	// transient errors, with exponential backoff charged through the
	// context's Sleeper (virtual time under the simulator, real sleep
	// over osfs).  The zero value disables retrying.
	Retry RetryPolicy
	// AllowPartial lets OpenReader skip index shards that stay unreadable
	// after retries instead of failing the whole open; skipped shards are
	// recorded in OpenStats.SkippedShards and their extents read as holes.
	AllowPartial bool
	// NoDataFraming disables the recovery footer each writer appends to
	// its data dropping at close.  The footer is what lets Recover rebuild
	// a lost or corrupt index dropping from the data alone; disable it
	// only to produce byte-exact legacy (pre-framing) containers.
	NoDataFraming bool
	// Checksum enables checksummed framing: index droppings, the global
	// index, and the recovery footer are written with CRC32C trailers,
	// and the footer carries one CRC32C per data extent.  Verification is
	// automatic wherever a trailer is present (the formats are
	// self-describing), so this only selects what gets written.
	Checksum bool
	// VerifyData makes ReadAt verify the per-extent data checksums
	// recorded by Checksum writers before returning bytes (end-to-end
	// read integrity).  A mismatched extent fails the read — or, under
	// AllowPartial, reads as zeros and is counted in
	// ReadStats.ChecksumErrors.  Droppings without checksummed footers
	// are served unverified.
	VerifyData bool
	// ChecksumCPUPerMB charges CPU for checksumming written data
	// (default 1ms/MB, roughly memory-bandwidth CRC32C) through the
	// context's Sleeper, so the ablation figure sees the cost in
	// simulated mode.
	ChecksumCPUPerMB time.Duration
	// IndexReplicas commits each index dropping and global index to this
	// many distinct volumes (clamped to the volume count; 0 or 1 keeps a
	// single copy).  Replica k of a primary on volume v lands at the same
	// relative path on volume (v+k) mod V via the writeFileAtomic
	// protocol, primary first; readers fail over replica-by-replica
	// before AllowPartial gets to skip a shard.  See DESIGN.md §15.
	IndexReplicas int
	// BulkCreate coalesces the per-rank creates of a collective Create
	// into one bulk-create RPC per volume: rank 0 gathers every rank's
	// hostdir/dropping targets, ships them through the backend's
	// BulkCreator capability, and broadcasts the verdict; ranks then
	// attach to their pre-created droppings with OpenWrite (the wide
	// read-path pool) instead of Create (the narrow mutation pool).
	// Ignored when the backend lacks BulkCreator or there is no
	// communicator.  The batched path also honors rebalance forwarding
	// markers, so post-migration writers follow their hostdirs.
	BulkCreate bool
	// HedgedReads enables the self-healing read/placement policy: index
	// reads whose volume breaker is open go to a replica first, reads
	// slower than the volume's rolling p99 window reissue against a
	// replica and take the first success (plfs.read.hedged/hedge_wins
	// counters), and writers steer new droppings away from open-breaker
	// volumes.  Requires a health table (any Service mount has one).
	HedgedReads bool
}

// decodeWorkers resolves DecodeWorkers to an effective pool size.
func (o Options) decodeWorkers() int { return defaultWorkers(o.DecodeWorkers) }

func (o Options) withDefaults() Options {
	if o.NumSubdirs <= 0 {
		o.NumSubdirs = 32
	}
	if o.FlattenThreshold <= 0 {
		o.FlattenThreshold = 65536
	}
	if o.ParseCPUPerEntry <= 0 {
		o.ParseCPUPerEntry = 500 * time.Nanosecond
	}
	if o.MergeCPUPerEntry <= 0 {
		o.MergeCPUPerEntry = 2 * time.Microsecond
	}
	if o.ChecksumCPUPerMB <= 0 {
		o.ChecksumCPUPerMB = time.Millisecond
	}
	if o.IndexCacheBytes <= 0 {
		o.IndexCacheBytes = 64 << 20
	}
	return o
}

// Ctx carries one process's bindings: its backend handles (one per
// volume), identity, clock, and optional communicator.  Collective PLFS
// operations (Create, OpenReader, Writer.Close, Reader.Close) must be
// called by every rank of Ctx.Comm when it is non-nil.
type Ctx struct {
	// Vols holds this process's backend handle for each mount volume.
	Vols []Backend
	// Rank and Host identify the process; HostLeader marks the lowest
	// rank on its host (it maintains the openhosts record).
	Rank       int
	Host       int
	HostLeader bool
	// Clock stamps index records.
	Clock Clock
	// Sleep charges CPU time for index parsing (nil = no charge).
	Sleep Sleeper
	// Comm enables the collective optimizations; nil means serial mode
	// (the FUSE-style interface), which always uses Original aggregation.
	Comm comm.Comm
	// Tenant names the job this process belongs to when the mount is
	// served by a Service: cache charges are attributed to it and the
	// admission gate of its class bounds the ops it may have in flight.
	// Empty means the default tenant.
	Tenant string
	// Obs, when non-nil, receives op-level metrics and spans (see
	// internal/obs and DESIGN.md §11): open/close/recover/scrub phase
	// spans, per-op latency histograms, and retry counters.  Nil disables
	// all instrumentation at zero cost.
	Obs *obs.Registry
}

func (c Ctx) now() int64 {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return time.Now().UnixNano()
}

func (c Ctx) sleep(d time.Duration) {
	if c.Sleep != nil && d > 0 {
		c.Sleep.Sleep(d)
	}
}

// Mount is a PLFS mount point: shared configuration plus the cross-process
// index cache.  Backend handles live in Ctx, so one Mount serves any
// number of processes.  A standalone Mount (NewMount) owns a private
// cache economy; a Mount built by Service.Mount shares the service's
// economy, index cache, and admission gates with every other mount the
// service serves.
type Mount struct {
	roots  []string
	opt    Options
	svc    *Service    // non-nil when attached to a mount service
	econ   *economy    // cache budget (shared under a service)
	ixc    *indexCache // cross-open index cache (see ixcache.go)
	id     string      // cache-key prefix within a shared service cache
	health *Health     // per-volume breakers (shared under a service)

	// Per-container state lives in a sharded table so unrelated
	// containers never contend: steady-state lookups take only a shard's
	// read lock, and all heavy per-container work happens under that
	// container's own mutex.
	shards [stateShards]stateShard
}

const stateShards = 16

type stateShard struct {
	mu sync.RWMutex
	m  map[string]*containerState
}

// stateOverhead is the nominal resident charge for one containerState's
// fixed bookkeeping, so idle empty states participate in the budget and
// a long-lived service cannot leak the table itself.
const stateOverhead = 256

// recBytes approximates one parsed Rec's in-memory footprint.
const recBytes = 64

func recsResident(recs []Rec) int64 { return int64(len(recs))*recBytes + 64 }

// containerState caches parsed index shards and built global indexes.
// Droppings are immutable once written (log structure), so cached shards
// never go stale; the generation invalidates built indexes when new
// writers attach.  Parsed bytes are charged to the economy; under budget
// pressure unpinned states are evicted wholesale (Mount.reclaim), which
// also invalidates the container's cross-open cache entry — a recreated
// state restarts at generation 0, so any entry published under the old
// generation sequence must not survive the reset.
type containerState struct {
	mu       sync.Mutex
	gen      uint64
	pins     int  // active writers/readers; pinned states are never evicted
	evicted  bool // no longer in the table; bytes already returned
	tenant   string
	bytes    int64 // parsed-shard bytes charged to the economy
	parsed   map[string][]Rec
	builtKey string
	built    *Index

	last atomic.Uint64 // economy tick of last touch (LRU for eviction)
}

// curGen returns the container's current in-memory generation.
func (st *containerState) curGen() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// NewMount creates a standalone mount over the given per-volume backend
// root paths, with a private cache economy budgeted by
// Options.IndexCacheBytes.
func NewMount(roots []string, opt Options) *Mount {
	return newMount(roots, opt, nil)
}

func newMount(roots []string, opt Options, svc *Service) *Mount {
	if len(roots) == 0 {
		panic("plfs: mount needs at least one volume root")
	}
	opt = opt.withDefaults()
	m := &Mount{roots: roots, opt: opt, svc: svc}
	for i := range m.shards {
		m.shards[i].m = map[string]*containerState{}
	}
	if svc != nil {
		m.econ, m.ixc = svc.econ, svc.ixc
		m.id = svc.nextMountID()
		m.health = svc.health
	} else {
		m.econ = newEconomy(opt.IndexCacheBytes)
		m.ixc = newIndexCache(m.econ)
		m.econ.register(m.ixc)
		if opt.HedgedReads || opt.IndexReplicas > 1 {
			m.health = NewHealth(HealthConfig{})
		}
	}
	m.econ.register(m)
	return m
}

// ckey is rel's key in the (possibly shared) cross-open index cache.
func (m *Mount) ckey(rel string) string {
	if m.id == "" {
		return rel
	}
	return m.id + rel
}

// DropIndexCache empties the mount's cross-open index cache (harness
// cold-start control; the next open of any container re-aggregates).
// Under a service only this mount's entries are dropped.
func (m *Mount) DropIndexCache() {
	if m.id == "" {
		m.ixc.clear()
	} else {
		m.ixc.dropPrefix(m.id)
	}
}

// EconomyStats reports the cache economy's usage (shared when the mount
// is served by a Service).
func (m *Mount) EconomyStats() EconomyStats { return m.econ.stats() }

// Volumes returns the number of metadata volumes behind the mount.
func (m *Mount) Volumes() int { return len(m.roots) }

// Root returns volume i's backend root path.
func (m *Mount) Root(i int) string { return m.roots[i] }

// Options returns the mount options (with defaults applied).
func (m *Mount) Options() Options { return m.opt }

func (m *Mount) shard(rel string) *stateShard {
	return &m.shards[hashStr(rel)%stateShards]
}

// stateOf returns rel's container state, creating it on first touch.
// The fast path takes only the shard's read lock, so lookups for
// unrelated containers never serialize.
func (m *Mount) stateOf(rel, tenant string) *containerState {
	sh := m.shard(rel)
	sh.mu.RLock()
	st := sh.m[rel]
	sh.mu.RUnlock()
	if st != nil {
		st.last.Store(m.econ.next())
		return st
	}
	sh.mu.Lock()
	st = sh.m[rel]
	created := st == nil
	if created {
		st = &containerState{parsed: map[string][]Rec{}, tenant: tenantName(tenant)}
		sh.m[rel] = st
	}
	st.last.Store(m.econ.next())
	sh.mu.Unlock()
	if created {
		m.econ.charge(st.tenant, stateOverhead)
		// Rebalance only when already over budget, so a create storm of
		// idle containers cannot grow the table without bound while the
		// hot path stays charge-only.
		if m.econ.overBy() > 0 {
			m.econ.rebalance()
		}
	}
	return st
}

// pin returns rel's state with its pin count raised: a pinned state is
// never evicted, which keeps the container's generation sequence
// monotone across an open or write session — the invariant the
// cross-open index cache's exact-generation check relies on.
func (m *Mount) pin(rel, tenant string) *containerState {
	for {
		st := m.stateOf(rel, tenant)
		st.mu.Lock()
		if st.evicted {
			st.mu.Unlock()
			continue // raced with eviction; the next lookup recreates it
		}
		st.pins++
		st.mu.Unlock()
		return st
	}
}

func (m *Mount) unpin(st *containerState) {
	st.mu.Lock()
	st.pins--
	st.mu.Unlock()
}

// storeParsed caches one shard's decoded records on the container state
// and charges the bytes to the economy.  An orphaned state (evicted
// while a slow aggregation still held it) is a plain scratch buffer;
// its bytes are not resident in any table, so nothing is charged.
// Call without st.mu held.
func (m *Mount) storeParsed(st *containerState, path string, recs []Rec) {
	st.mu.Lock()
	if _, dup := st.parsed[path]; dup || st.evicted {
		if !dup {
			st.parsed[path] = recs
		}
		st.mu.Unlock()
		return
	}
	st.parsed[path] = recs
	n := recsResident(recs)
	st.bytes += n
	tenant := st.tenant
	st.mu.Unlock()
	m.econ.charge(tenant, n)
	m.econ.rebalance()
}

// invalidateState advances rel's generation and drops every derived
// cache — parsed shards, built-index memo, cross-open entry — returning
// the parsed bytes to the economy (truncate, recover).
func (m *Mount) invalidateState(rel, tenant string) {
	st := m.stateOf(rel, tenant)
	st.mu.Lock()
	st.gen++
	st.builtKey, st.built = "", nil
	st.parsed = map[string][]Rec{}
	n := st.bytes
	st.bytes = 0
	evicted := st.evicted
	owner := st.tenant
	st.mu.Unlock()
	if !evicted {
		m.econ.release(owner, n)
	}
	m.ixc.drop(m.ckey(rel))
}

// dropState removes rel's state outright (rename, unlink) and returns
// its charges to the economy.
func (m *Mount) dropState(rel string) {
	sh := m.shard(rel)
	sh.mu.Lock()
	st, ok := sh.m[rel]
	if ok {
		delete(sh.m, rel)
	}
	sh.mu.Unlock()
	if ok {
		m.releaseState(st)
	}
}

// releaseState marks st evicted and returns its resident bytes.
func (m *Mount) releaseState(st *containerState) int64 {
	st.mu.Lock()
	if st.evicted {
		st.mu.Unlock()
		return 0
	}
	st.evicted = true
	n := st.bytes + stateOverhead
	tenant := st.tenant
	st.bytes = 0
	st.parsed = map[string][]Rec{}
	st.builtKey, st.built = "", nil
	st.mu.Unlock()
	m.econ.release(tenant, n)
	return n
}

// reclaim implements reclaimer: evict idle (unpinned) container states,
// least recently touched first, until need bytes are freed.  Eviction
// resets the container's generation sequence, so each victim's
// cross-open cache entry is dropped with it — an entry published under
// the old sequence must never be served against the new one.  The
// collection scan is O(states), acceptable on this rare path.
func (m *Mount) reclaim(need int64) int64 {
	type cand struct {
		rel  string
		st   *containerState
		last uint64
	}
	var cands []cand
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for rel, st := range sh.m {
			cands = append(cands, cand{rel, st, st.last.Load()})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].last < cands[j].last })
	var freed int64
	entries := 0
	for _, c := range cands {
		if freed >= need {
			break
		}
		sh := m.shard(c.rel)
		sh.mu.Lock()
		st, ok := sh.m[c.rel]
		if !ok || st != c.st {
			sh.mu.Unlock()
			continue
		}
		// The evicted mark must be set in the same st.mu critical section
		// as the pins check: a pinner blocked on st.mu would otherwise
		// pin a state this loop is about to release.
		st.mu.Lock()
		if st.pins > 0 {
			st.mu.Unlock()
			sh.mu.Unlock()
			continue
		}
		st.evicted = true
		n := st.bytes + stateOverhead
		tenant := st.tenant
		st.bytes = 0
		st.parsed = map[string][]Rec{}
		st.builtKey, st.built = "", nil
		st.mu.Unlock()
		delete(sh.m, c.rel)
		sh.mu.Unlock()
		m.econ.release(tenant, n)
		freed += n
		m.ixc.drop(m.ckey(c.rel))
		entries++
	}
	if entries > 0 {
		m.econ.noteEvicted(entries, freed)
	}
	return freed
}

func clean(rel string) string {
	rel = path.Clean("/" + rel)
	return strings.TrimPrefix(rel, "/")
}

func hashStr(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// containerVol returns the volume hosting the canonical container of rel.
func (m *Mount) containerVol(rel string) int {
	if !m.opt.SpreadContainers || len(m.roots) == 1 {
		return 0
	}
	return int(hashStr(rel)) % len(m.roots)
}

// subdirVol returns the volume hosting hostdir i of a container whose
// canonical volume is vc.
func (m *Mount) subdirVol(vc, i int) int {
	if !m.opt.SpreadSubdirs || len(m.roots) == 1 {
		return vc
	}
	return (vc + i) % len(m.roots)
}

// containerPath returns the canonical container directory path.
func (m *Mount) containerPath(rel string) (string, int) {
	vc := m.containerVol(rel)
	return path.Join(m.roots[vc], rel), vc
}

// hostdirPath returns the path and volume of hostdir i for container rel.
func (m *Mount) hostdirPath(rel string, i int) (string, int) {
	vc := m.containerVol(rel)
	v := m.subdirVol(vc, i)
	return path.Join(m.roots[v], rel, fmt.Sprintf("%s%d", hostdirPrefix, i)), v
}

// subdirFor maps a writer to its hostdir (real PLFS hashes by host).
func (m *Mount) subdirFor(host int) int { return host % m.opt.NumSubdirs }

// placeSubdir is subdirFor with breaker-aware placement: under
// HedgedReads a writer whose hash-assigned hostdir lands on an
// open-breaker volume walks forward to the first hostdir on a healthy
// volume, so new droppings steer around a browned-out target.  Readers
// discover droppings by listing, so placement is free to vary per open.
func (m *Mount) placeSubdir(ctx Ctx, rel string, host int) int {
	id := m.subdirFor(host)
	if m.health == nil || !m.opt.HedgedReads || len(m.roots) == 1 {
		return id
	}
	now := ctx.now()
	vc := m.containerVol(rel)
	for k := 0; k < m.opt.NumSubdirs; k++ {
		cand := (id + k) % m.opt.NumSubdirs
		// State, not Avoid: placement routes a whole dropping stream, so
		// it must never consume the half-open trial budget — a breaker
		// probe should be one cheap read, not a step's worth of writes.
		if m.health.State(m.roots[m.subdirVol(vc, cand)], now) == BreakerClosed {
			return cand
		}
	}
	return id // every volume unhealthy: original placement
}

// Health returns the mount's per-volume breaker table (nil when the
// self-healing layer is off: a standalone mount without HedgedReads or
// IndexReplicas).
func (m *Mount) Health() *Health { return m.health }

// volDegraded reports whether volume v's breaker is anything but closed
// — deferrable work (background repair, re-replication) should steer
// around it rather than grind degraded-latency operations.
func (m *Mount) volDegraded(ctx Ctx, v int) bool {
	return m.health != nil && v < len(m.roots) &&
		m.health.State(m.roots[v], ctx.now()) != BreakerClosed
}

// Mkdir creates a logical directory on every volume, so containers and
// shadow containers can be placed under it anywhere.
func (m *Mount) Mkdir(ctx Ctx, rel string) error {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	for v, root := range m.roots {
		if err := ctx.Vols[v].Mkdir(path.Join(root, rel)); err != nil && !errors.Is(err, iofs.ErrExist) {
			return err
		}
	}
	return nil
}

// IsContainer reports whether rel names a PLFS container.
func (m *Mount) IsContainer(ctx Ctx, rel string) (bool, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	cpath, vc := m.containerPath(rel)
	fi, err := ctx.Vols[vc].Stat(cpath)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	if !fi.Dir {
		return false, nil
	}
	_, err = ctx.Vols[vc].Stat(path.Join(cpath, accessFile))
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// metaGen returns a container's truncation generation: the highest
// gen.<N> marker among the metadir entries (0 when none — a container
// that was never truncated).  Size records from older generations are
// stale leftovers of a partially failed truncation and are ignored.
func metaGen(ents []Info) int64 {
	var gen int64
	for _, e := range ents {
		if !strings.HasPrefix(e.Name, genPrefix) {
			continue
		}
		if n, err := strconv.ParseInt(strings.TrimPrefix(e.Name, genPrefix), 10, 64); err == nil && n > gen {
			gen = n
		}
	}
	return gen
}

// parseSizeRecord parses a metadir size-record name.  Current records
// are sz.<size>.<gen>.<rank>; legacy two-part sz.<size>.<rank> records
// parse as generation 0.
func parseSizeRecord(name string) (size, gen int64, ok bool) {
	if !strings.HasPrefix(name, sizePrefix) {
		return 0, 0, false
	}
	parts := strings.Split(strings.TrimPrefix(name, sizePrefix), ".")
	if len(parts) != 2 && len(parts) != 3 {
		return 0, 0, false
	}
	size, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || size < 0 {
		return 0, 0, false
	}
	if len(parts) == 3 {
		if gen, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return 0, 0, false
		}
	}
	return size, gen, true
}

// cachedSize extracts the logical size from metadir entries: the max
// over size records of the current generation only.
func cachedSize(ents []Info) (int64, bool) {
	gen := metaGen(ents)
	var size int64
	found := false
	for _, e := range ents {
		if n, g, ok := parseSizeRecord(e.Name); ok && g == gen {
			found = true
			if n > size {
				size = n
			}
		}
	}
	return size, found
}

// Stat returns the logical file info for a container: its name and the
// logical size cached in the metadir by writers at close.
func (m *Mount) Stat(ctx Ctx, rel string) (Info, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	cpath, vc := m.containerPath(rel)
	if _, err := ctx.Vols[vc].Stat(cpath); err != nil {
		return Info{}, err
	}
	ents, err := ctx.readDirRetried(ctx.Vols[vc], path.Join(cpath, metaDir), m.opt.Retry)
	if err != nil {
		return Info{}, err
	}
	size, found := cachedSize(ents)
	if !found {
		// No cached size (e.g. writers died before close): aggregate the
		// index the slow way.
		drops, err := m.listDroppings(ctx, rel)
		if err != nil {
			return Info{}, err
		}
		ix, err := m.aggregateSerial(ctx, rel, drops)
		if err != nil {
			return Info{}, err
		}
		size = ix.Size()
	}
	return Info{Name: path.Base(rel), Dir: false, Size: size}, nil
}

// ReadDir lists the logical directory rel: the union across volumes, with
// containers presented as logical files.
func (m *Mount) ReadDir(ctx Ctx, rel string) ([]Info, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	seen := map[string]Info{}
	found := false
	for v, root := range m.roots {
		ents, err := ctx.Vols[v].ReadDir(path.Join(root, rel))
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		found = true
		for _, e := range ents {
			if _, dup := seen[e.Name]; dup {
				continue
			}
			if e.Dir {
				isC, err := m.IsContainer(ctx, path.Join(rel, e.Name))
				if err != nil {
					return nil, err
				}
				if isC {
					seen[e.Name] = Info{Name: e.Name, Dir: false}
					continue
				}
			}
			seen[e.Name] = e
		}
	}
	if !found {
		return nil, fmt.Errorf("plfs: readdir %s: %w", rel, iofs.ErrNotExist)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Info, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out, nil
}

// Rename moves a container to a new logical name.  It renames the
// container directory on every volume it touches (canonical and shadow).
// With SpreadContainers the canonical volume is a pure function of the
// name, so renames that would change the hash placement are refused —
// the same restriction rigid metadata realms impose.
func (m *Mount) Rename(ctx Ctx, oldRel, newRel string) error {
	ctx = m.healthCtx(ctx)
	oldRel, newRel = clean(oldRel), clean(newRel)
	if ok, err := m.IsContainer(ctx, oldRel); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("plfs: rename %s: not a container: %w", oldRel, iofs.ErrNotExist)
	}
	if m.containerVol(oldRel) != m.containerVol(newRel) {
		return fmt.Errorf("plfs: rename %s -> %s: names hash to different metadata volumes", oldRel, newRel)
	}
	// A federated container spans volumes (canonical + shadows); the
	// volume-by-volume rename is not atomic, so a mid-sequence failure
	// must roll back the volumes already renamed or the container is left
	// split across two logical names.
	type renamedVol struct {
		v          int
		oldP, newP string
	}
	var done []renamedVol
	for v, root := range m.roots {
		oldP, newP := path.Join(root, oldRel), path.Join(root, newRel)
		if _, err := ctx.Vols[v].Stat(oldP); err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				continue // no shadow container on this volume
			}
			return err
		}
		if err := ctx.Vols[v].Rename(oldP, newP); err != nil {
			errs := []error{fmt.Errorf("plfs: rename %s -> %s: volume %d: %w", oldRel, newRel, v, err)}
			for i := len(done) - 1; i >= 0; i-- {
				d := done[i]
				if rbErr := ctx.Vols[d.v].Rename(d.newP, d.oldP); rbErr != nil {
					errs = append(errs, fmt.Errorf("plfs: rename rollback: volume %d: %w", d.v, rbErr))
				}
			}
			return errors.Join(errs...)
		}
		done = append(done, renamedVol{v: v, oldP: oldP, newP: newP})
	}
	// A flattened global index records absolute dropping paths under the
	// old name; drop it so readers re-aggregate from the moved droppings.
	vc := m.containerVol(newRel)
	gp := path.Join(m.roots[vc], newRel, metaDir, globalIndex)
	if err := ctx.Vols[vc].Remove(gp); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	m.removeReplicas(ctx, gp)
	m.dropState(oldRel)
	m.dropState(newRel)
	m.ixc.drop(m.ckey(oldRel))
	m.ixc.drop(m.ckey(newRel))
	return nil
}

// Truncate resets a container's logical contents to empty (the O_TRUNC
// open path): droppings, size records, and any flattened index are
// removed; the container skeleton stays so open handles' paths remain
// valid namespaces.
func (m *Mount) Truncate(ctx Ctx, rel string) error {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	if ok, err := m.IsContainer(ctx, rel); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("plfs: truncate %s: not a container: %w", rel, iofs.ErrNotExist)
	}
	drops, err := m.listDroppings(ctx, rel)
	if err != nil {
		return err
	}
	for _, d := range drops {
		if err := ctx.Vols[d.Vol].Remove(d.Data); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
		if d.Index != "" {
			if err := ctx.Vols[d.Vol].Remove(d.Index); err != nil && !errors.Is(err, iofs.ErrNotExist) {
				return err
			}
			m.removeReplicas(ctx, d.Index)
		}
	}
	cpath, vc := m.containerPath(rel)
	meta := path.Join(cpath, metaDir)
	ents, err := ctx.Vols[vc].ReadDir(meta)
	if err != nil {
		return err
	}
	gen := metaGen(ents)
	for _, e := range ents {
		if err := ctx.Vols[vc].Remove(path.Join(meta, e.Name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
	}
	// Replicas of the flattened global index must not outlive it: a
	// failover read after truncate would serve the pre-truncate index.
	m.removeReplicas(ctx, path.Join(meta, globalIndex))
	// Bump the truncation generation so size records that escape the
	// removals above (or race in from a closing writer of the previous
	// session) are recognizably stale: writers stamp new records with the
	// current generation, and Stat only believes the current one.  The
	// marker is published atomically so a crash here leaves either the
	// old generation or the new one, never a torn marker.
	if err := ctx.writeFileAtomic(ctx.Vols[vc], path.Join(meta, fmt.Sprintf("%s%d", genPrefix, gen+1)), nil, m.opt.Retry, false); err != nil {
		return err
	}
	m.invalidateState(rel, ctx.Tenant)
	return nil
}

// Unlink removes a container: droppings, hostdirs (canonical and shadow),
// metadata, and the container directories themselves.
func (m *Mount) Unlink(ctx Ctx, rel string) error {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	cpath, vc := m.containerPath(rel)
	b := ctx.Vols[vc]
	if _, err := b.Stat(path.Join(cpath, accessFile)); err != nil {
		return fmt.Errorf("plfs: unlink %s: not a container: %w", rel, err)
	}
	// Rebalance forwarding entries: remove the moved hostdir trees they
	// point at, then the marker files themselves (they are plain files in
	// the canonical container dir and would block its final Remove).
	if ents, err := b.ReadDir(cpath); err == nil {
		for _, e := range ents {
			id, _, mv, ok := parseMovedMarker(e.Name)
			if !ok || e.Dir {
				continue
			}
			if mv < len(m.roots) {
				mpath := path.Join(m.roots[mv], rel, fmt.Sprintf("%s%d", hostdirPrefix, id))
				if err := removeTree(ctx.Vols[mv], mpath); err != nil {
					return err
				}
				if mv != vc {
					_ = ctx.Vols[mv].Remove(path.Join(m.roots[mv], rel))
				}
			}
			if err := b.Remove(path.Join(cpath, e.Name)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
				return err
			}
		}
	} else if !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	// Remove hostdirs on every volume they may live on.
	for i := 0; i < m.opt.NumSubdirs; i++ {
		hpath, hv := m.hostdirPath(rel, i)
		if err := removeTree(ctx.Vols[hv], hpath); err != nil {
			return err
		}
		if hv != vc {
			// Shadow container dir, if now empty, and the metalink marker.
			_ = ctx.Vols[hv].Remove(path.Join(m.roots[hv], rel))
			_ = b.Remove(path.Join(cpath, fmt.Sprintf("%s%d%s", hostdirPrefix, i, metalinkSufx)))
		}
	}
	for _, sub := range []string{metaDir, openHostsDir} {
		if err := removeTree(b, path.Join(cpath, sub)); err != nil {
			return err
		}
	}
	if err := b.Remove(path.Join(cpath, accessFile)); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	if err := b.Remove(cpath); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	// Replica directories mirror the container tree on the other volumes;
	// they are invisible to dropping discovery but must not leak.
	if m.replicas() > 1 {
		for v, root := range m.roots {
			if err := removeTree(ctx.Vols[v], path.Join(root, rel)); err != nil {
				return err
			}
		}
	}
	m.dropState(rel)
	m.ixc.drop(m.ckey(rel))
	return nil
}

// removeTree removes a directory and its (flat) contents; missing paths
// are fine.
func removeTree(b Backend, dir string) error {
	ents, err := b.ReadDir(dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, e := range ents {
		sub := path.Join(dir, e.Name)
		if e.Dir {
			if err := removeTree(b, sub); err != nil {
				return err
			}
			continue
		}
		if err := b.Remove(sub); err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return err
		}
	}
	if err := b.Remove(dir); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return err
	}
	return nil
}

// droppingRef locates one writer's pair of droppings.
type droppingRef struct {
	Data  string // data dropping path
	Index string // index dropping path ("" if the writer left none)
	Vol   int
}

// movedInfix is the middle of a rebalance forwarding entry's name:
// hostdir.<i>.moved.<seq>.v<vol>, a plain file in the canonical container
// recording that hostdir i now lives on volume vol.  seq increments per
// migration of the same hostdir; the highest seq wins, so a crash between
// publishing a new marker and removing the old one resolves correctly.
const movedInfix = ".moved."

// movedMarkerName renders the forwarding entry for hostdir id at seq
// pointing to vol.
func movedMarkerName(id, seq, vol int) string {
	return fmt.Sprintf("%s%d%s%d.v%d", hostdirPrefix, id, movedInfix, seq, vol)
}

// parseMovedMarker inverts movedMarkerName.
func parseMovedMarker(name string) (id, seq, vol int, ok bool) {
	if !strings.HasPrefix(name, hostdirPrefix) {
		return 0, 0, 0, false
	}
	rest := strings.TrimPrefix(name, hostdirPrefix)
	idS, rest, found := strings.Cut(rest, movedInfix)
	if !found {
		return 0, 0, 0, false
	}
	seqS, volS, found := strings.Cut(rest, ".v")
	if !found {
		return 0, 0, 0, false
	}
	var err error
	if id, err = strconv.Atoi(idS); err != nil || id < 0 {
		return 0, 0, 0, false
	}
	if seq, err = strconv.Atoi(seqS); err != nil || seq < 0 {
		return 0, 0, 0, false
	}
	if vol, err = strconv.Atoi(volS); err != nil || vol < 0 {
		return 0, 0, 0, false
	}
	return id, seq, vol, true
}

// movedTarget is the winning forwarding entry for one hostdir id.
type movedTarget struct {
	Vol int
	Seq int
}

// movedTargets reduces a canonical-container listing to the highest-seq
// forwarding entry per hostdir id.
func movedTargets(ents []Info) map[int]movedTarget {
	var out map[int]movedTarget
	for _, e := range ents {
		if e.Dir {
			continue
		}
		id, seq, vol, ok := parseMovedMarker(e.Name)
		if !ok {
			continue
		}
		if out == nil {
			out = map[int]movedTarget{}
		}
		if t, dup := out[id]; !dup || seq > t.Seq {
			out[id] = movedTarget{Vol: vol, Seq: seq}
		}
	}
	return out
}

// hostdirIDs enumerates the container's hostdir ids from one readdir of
// the canonical container (hostdir directories, metalink markers for
// spread hostdirs, and rebalance forwarding entries), sorted ascending.
// moved maps a migrated hostdir id to the volume now hosting it.
func (m *Mount) hostdirIDs(ctx Ctx, rel string) (ids []int, moved map[int]int, err error) {
	cpath, vc := m.containerPath(rel)
	ents, err := ctx.readDirRetried(ctx.Vols[vc], cpath, m.opt.Retry)
	if err != nil {
		return nil, nil, err
	}
	present := map[int]bool{}
	for id, t := range movedTargets(ents) {
		if moved == nil {
			moved = map[int]int{}
		}
		moved[id] = t.Vol
		present[id] = true
	}
	for _, e := range ents {
		name := e.Name
		if strings.HasSuffix(name, metalinkSufx) {
			name = strings.TrimSuffix(name, metalinkSufx)
		} else if !e.Dir {
			continue
		}
		if !strings.HasPrefix(name, hostdirPrefix) {
			continue
		}
		if i, err := strconv.Atoi(strings.TrimPrefix(name, hostdirPrefix)); err == nil {
			present[i] = true
		}
	}
	ids = make([]int, 0, len(present))
	for i := range present {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	return ids, moved, nil
}

// hostdirLoc is one candidate location of a hostdir.
type hostdirLoc struct {
	path string
	vol  int
}

// hostdirLocs returns the locations a hostdir's droppings may live at,
// forwarding target first: a migrated hostdir is read from its new volume,
// but the hash-placed location is still consulted — it holds the originals
// until the mover finishes cleanup, and uncoordinated (non-batched)
// writers may recreate it afterwards.  Duplicate stamps resolve to the
// forwarded copy; droppings are immutable, so the copies are identical.
func (m *Mount) hostdirLocs(rel string, i int, moved map[int]int) []hostdirLoc {
	hpath, hv := m.hostdirPath(rel, i)
	mv, ok := moved[i]
	if !ok || mv == hv || mv >= len(m.roots) {
		return []hostdirLoc{{hpath, hv}}
	}
	return []hostdirLoc{
		{path.Join(m.roots[mv], rel, fmt.Sprintf("%s%d", hostdirPrefix, i)), mv},
		{hpath, hv},
	}
}

// listDroppings enumerates the container's droppings in canonical (sorted
// by data path) order, resolving spread hostdirs.  Unpublished commit
// temp files (".tmp.<rank>" names) are invisible here — an atomic commit
// that crashed before its rename must never be consumed.  Cost: one
// readdir of the canonical container plus one readdir per existing
// hostdir.
func (m *Mount) listDroppings(ctx Ctx, rel string) ([]droppingRef, error) {
	ids, moved, err := m.hostdirIDs(ctx, rel)
	if err != nil {
		return nil, err
	}
	var refs []droppingRef
	for _, i := range ids {
		// Candidate locations in precedence order (forwarding target
		// first); a stamp claimed by an earlier location shadows the same
		// stamp at a later one — mid-migration both copies exist and are
		// byte-identical, so either answer is correct, but preferring the
		// forwarded copy keeps the listing stable across the cleanup.
		byStamp := map[string]*droppingRef{}
		for _, loc := range m.hostdirLocs(rel, i, moved) {
			if hedged, ok := m.listHostdirHedged(ctx, loc.path, loc.vol); ok {
				for _, r := range hedged {
					stamp := strings.TrimPrefix(path.Base(r.Data), dataPrefix)
					if _, dup := byStamp[stamp]; !dup {
						r := r
						byStamp[stamp] = &r
					}
				}
				continue
			}
			hents, err := ctx.readDirRetried(ctx.Vols[loc.vol], loc.path, m.opt.Retry)
			if err != nil {
				if errors.Is(err, iofs.ErrNotExist) {
					continue
				}
				return nil, err
			}
			claimed := func(stamp string) *droppingRef {
				r := byStamp[stamp]
				if r == nil {
					r = &droppingRef{Vol: loc.vol}
					byStamp[stamp] = r
				} else if r.Vol != loc.vol {
					return nil // claimed by an earlier (forwarded) location
				}
				return r
			}
			for _, e := range hents {
				switch {
				case isTmpName(e.Name):
				case strings.HasPrefix(e.Name, dataPrefix):
					stamp := strings.TrimPrefix(e.Name, dataPrefix)
					if r := claimed(stamp); r != nil {
						r.Data = path.Join(loc.path, e.Name)
					}
				case strings.HasPrefix(e.Name, indexPrefix):
					stamp := strings.TrimPrefix(e.Name, indexPrefix)
					if r := claimed(stamp); r != nil {
						r.Index = path.Join(loc.path, e.Name)
					}
				}
			}
		}
		stamps := make([]string, 0, len(byStamp))
		for s := range byStamp {
			stamps = append(stamps, s)
		}
		sort.Strings(stamps)
		for _, s := range stamps {
			if r := byStamp[s]; r.Data != "" {
				refs = append(refs, *r)
			}
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Data < refs[j].Data })
	return refs, nil
}

// listHostdirHedged is dropping discovery's hedge: when the volume
// hosting a hostdir has an open breaker, the readdir itself would grind
// at degraded latency — and unlike the index reads behind it, a readdir
// has no replica to fail over to.  But the hostdir's index-dropping
// replicas live at the same container-relative path on the replica
// volumes, so listing a healthy replica directory recovers the dropping
// names without touching the sick volume.  Paths are synthesized back
// to canonical: the index read downstream then hedges normally via
// readIndexReplicated, and the data path (never replicated) stays on
// the primary for the extents that truly need it.  Returns ok=false
// when the hedge does not apply (healthy volume, no replication, or no
// replica copy found) — the caller lists the primary as usual.
func (m *Mount) listHostdirHedged(ctx Ctx, hpath string, hv int) ([]droppingRef, bool) {
	R := m.replicas()
	if R <= 1 || !m.opt.HedgedReads || m.health == nil {
		return nil, false
	}
	// State, not Avoid: discovery steers without spending the half-open
	// probe budget (the periodic scrub probes; see Health.Avoid).
	now := ctx.now()
	if m.health.State(m.roots[hv], now) == BreakerClosed {
		return nil, false
	}
	relh := strings.TrimPrefix(hpath, m.roots[hv])
	for k := 1; k < R; k++ {
		rv := (hv + k) % len(m.roots)
		if m.health.State(m.roots[rv], now) != BreakerClosed {
			continue
		}
		ents, err := ctx.readDirRetried(ctx.Vols[rv], path.Join(m.roots[rv], relh), m.opt.Retry)
		if err != nil {
			// ErrNotExist is ambiguous here: an empty hostdir and a failed
			// replication look the same, so fall through to the primary
			// rather than silently dropping shards.
			continue
		}
		var refs []droppingRef
		for _, e := range ents {
			if e.Dir || isTmpName(e.Name) || !strings.HasPrefix(e.Name, indexPrefix) {
				continue
			}
			stamp := strings.TrimPrefix(e.Name, indexPrefix)
			refs = append(refs, droppingRef{
				Vol:   hv,
				Index: path.Join(hpath, e.Name),
				Data:  path.Join(hpath, dataPrefix+stamp),
			})
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].Data < refs[j].Data })
		return refs, true
	}
	return nil, false
}
