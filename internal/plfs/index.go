package plfs

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"plfs/internal/payload"
)

// Entry is one index record: "process wrote Length bytes that logically
// belong at LogicalOff; they physically live at PhysOff of dropping
// Dropping; resolved against other writes by Timestamp".
type Entry struct {
	// LogicalOff is the write's offset in the logical file.
	LogicalOff int64
	// Length is the write's byte count.
	Length int64
	// PhysOff is the offset within the data dropping.
	PhysOff int64
	// Timestamp orders overlapping writes (last writer wins).
	Timestamp int64
	// Dropping is an id into the container's canonical dropping order.
	Dropping int32
	// Rank is the writing process, the deterministic timestamp tiebreak.
	Rank int32
}

// EntryBytes is the serialized size of one Entry.
const EntryBytes = 40

// seqOf produces the resolution sequence for last-writer-wins: timestamp
// first, rank as the deterministic tiebreak (the paper's note 1: clocks
// are synchronized and checkpoints don't overwrite in practice, but the
// simulator produces exact ties).
func seqOf(e Entry) uint64 {
	return uint64(e.Timestamp)<<16 | uint64(uint16(e.Rank))
}

// encodeEntries serializes entries (little-endian, EntryBytes each).
func encodeEntries(entries []Entry) []byte {
	buf := make([]byte, len(entries)*EntryBytes)
	for i, e := range entries {
		b := buf[i*EntryBytes:]
		binary.LittleEndian.PutUint64(b[0:], uint64(e.LogicalOff))
		binary.LittleEndian.PutUint64(b[8:], uint64(e.Length))
		binary.LittleEndian.PutUint64(b[16:], uint64(e.PhysOff))
		binary.LittleEndian.PutUint64(b[24:], uint64(e.Timestamp))
		binary.LittleEndian.PutUint32(b[32:], uint32(e.Dropping))
		binary.LittleEndian.PutUint32(b[36:], uint32(e.Rank))
	}
	return buf
}

// decodeEntries parses an index dropping's bytes.  The dropping id of
// every decoded entry is rewritten to droppingID: ids are a property of
// the reader's canonical dropping ordering, not of the writer.
func decodeEntries(data []byte, droppingID int32) ([]Entry, error) {
	if len(data)%EntryBytes != 0 {
		return nil, fmt.Errorf("plfs: corrupt index: %d bytes is not a multiple of %d", len(data), EntryBytes)
	}
	out := make([]Entry, len(data)/EntryBytes)
	for i := range out {
		b := data[i*EntryBytes:]
		out[i] = Entry{
			LogicalOff: int64(binary.LittleEndian.Uint64(b[0:])),
			Length:     int64(binary.LittleEndian.Uint64(b[8:])),
			PhysOff:    int64(binary.LittleEndian.Uint64(b[16:])),
			Timestamp:  int64(binary.LittleEndian.Uint64(b[24:])),
			Dropping:   droppingID,
			Rank:       int32(binary.LittleEndian.Uint32(b[36:])),
		}
	}
	return out, nil
}

// Index is a resolved global offset map: a sorted, disjoint cover of the
// logical file mapping every byte to (dropping, physical offset).
type Index struct {
	segs      []indexSeg
	droppings []string // dropping data-file paths, indexed by Entry.Dropping
	rawCount  int      // total raw entries aggregated (cost accounting)
	size      int64    // logical file size
}

type indexSeg struct {
	logical int64
	length  int64
	physOff int64
	drop    int32
	rank    int32
}

// BuildIndex resolves raw entry shards (one per index dropping, any order)
// into a global index.  droppings maps dropping ids to data-file paths.
func BuildIndex(shards [][]Entry, droppings []string) *Index {
	return buildIndex(shards, droppings, 1)
}

// BuildIndexParallel is BuildIndex with the sort distributed over up to
// workers goroutines: each shard's spans are sorted independently, the
// sorted runs are k-way merged, and the merged run feeds
// payload.ResolveSorted (which skips the global re-sort).  The resulting
// Index is identical to BuildIndex's — the resolve sweep depends only on
// the span multiset, and Refs are assigned by flat position either way —
// so callers may switch freely between the two.
func BuildIndexParallel(shards [][]Entry, droppings []string, workers int) *Index {
	return buildIndex(shards, droppings, workers)
}

// parallelSortMin is the total entry count below which the parallel build
// falls back to the serial path: goroutine + merge overhead dominates
// under a few thousand records.
const parallelSortMin = 4096

func buildIndex(shards [][]Entry, droppings []string, workers int) *Index {
	var total int
	for _, s := range shards {
		total += len(s)
	}
	flat := make([]Entry, 0, total)
	for _, s := range shards {
		flat = append(flat, s...)
	}

	var res []payload.Span
	if workers > 1 && len(shards) > 1 && total >= parallelSortMin {
		res = payload.ResolveSorted(mergeShardSpans(shards, flat, workers))
	} else {
		spans := make([]payload.Span, len(flat))
		for i, e := range flat {
			spans[i] = payload.Span{Start: e.LogicalOff, End: e.LogicalOff + e.Length, Seq: seqOf(e), Ref: int32(i)}
		}
		res = payload.Resolve(spans)
	}

	ix := &Index{droppings: droppings, rawCount: total}
	for _, s := range res {
		e := flat[s.Ref]
		ix.segs = append(ix.segs, indexSeg{
			logical: s.Start,
			length:  s.End - s.Start,
			physOff: e.PhysOff + (s.Start - e.LogicalOff),
			drop:    e.Dropping,
			rank:    e.Rank,
		})
		if s.End > ix.size {
			ix.size = s.End
		}
	}
	return ix
}

// mergeShardSpans builds one span per entry (Ref = position in the
// flattened shard order, matching the serial path), sorts each shard's
// spans concurrently, and k-way merges the sorted runs into a single run
// sorted by Start.
func mergeShardSpans(shards [][]Entry, flat []Entry, workers int) []payload.Span {
	runs := make([][]payload.Span, len(shards))
	offsets := make([]int, len(shards))
	off := 0
	for k, s := range shards {
		offsets[k] = off
		off += len(s)
	}
	parallelFor(workers, len(shards), func(k int) {
		s := shards[k]
		run := make([]payload.Span, len(s))
		base := offsets[k]
		for i, e := range s {
			run[i] = payload.Span{Start: e.LogicalOff, End: e.LogicalOff + e.Length, Seq: seqOf(e), Ref: int32(base + i)}
		}
		sort.Slice(run, func(i, j int) bool {
			if run[i].Start != run[j].Start {
				return run[i].Start < run[j].Start
			}
			return run[i].Ref < run[j].Ref
		})
		runs[k] = run
	})

	out := make([]payload.Span, 0, len(flat))
	var h runHeap
	for _, run := range runs {
		if len(run) > 0 {
			h = append(h, run)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		run := h[0]
		out = append(out, run[0])
		if len(run) > 1 {
			h[0] = run[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// runHeap is a min-heap of sorted span runs keyed by their head span's
// (Start, Ref).
type runHeap [][]payload.Span

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	a, b := h[i][0], h[j][0]
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Ref < b.Ref
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.([]payload.Span)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

// Size returns the logical file size.
func (ix *Index) Size() int64 { return ix.size }

// RawEntries returns how many raw index records were aggregated.
func (ix *Index) RawEntries() int { return ix.rawCount }

// Segments returns the number of resolved segments.
func (ix *Index) Segments() int { return len(ix.segs) }

// Droppings returns the dropping data-file paths.
func (ix *Index) Droppings() []string { return ix.droppings }

// Piece is one contiguous portion of a logical read, mapped to physical
// storage.  A negative Dropping means a hole (read as zeros).
type Piece struct {
	// Logical is the piece's offset in the logical file.
	Logical int64
	// Length is the piece's byte count.
	Length int64
	// Dropping indexes the container's dropping order; negative = hole.
	Dropping int32
	// PhysOff is the offset within that dropping's data file.
	PhysOff int64
	// Rank is the rank whose write this piece resolves to.
	Rank int32
}

// Lookup maps the logical range [off, off+n) to physical pieces, including
// hole pieces for unwritten gaps.
func (ix *Index) Lookup(off, n int64) []Piece {
	if n <= 0 {
		return nil
	}
	end := off + n
	var out []Piece
	i := sort.Search(len(ix.segs), func(i int) bool {
		s := ix.segs[i]
		return s.logical+s.length > off
	})
	cur := off
	for ; i < len(ix.segs) && cur < end; i++ {
		s := ix.segs[i]
		if s.logical > cur {
			gap := min64(s.logical, end) - cur
			out = append(out, Piece{Logical: cur, Length: gap, Dropping: -1})
			cur += gap
			if cur >= end {
				break
			}
		}
		lo := cur - s.logical
		take := min64(s.length-lo, end-cur)
		out = append(out, Piece{
			Logical: cur, Length: take,
			Dropping: s.drop, PhysOff: s.physOff + lo, Rank: s.rank,
		})
		cur += take
	}
	if cur < end {
		out = append(out, Piece{Logical: cur, Length: end - cur, Dropping: -1})
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// timeDuration converts an entry count to a time.Duration multiplier.
func timeDuration(n int) time.Duration { return time.Duration(n) }

// encodeGlobalIndex serializes a flattened global index: a header listing
// the canonical dropping data paths, then the entries (whose Dropping ids
// reference the header order).
func encodeGlobalIndex(paths []string, entries []Entry) []byte {
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(paths)))
	buf = append(buf, tmp[:4]...)
	for _, p := range paths {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(p)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, p...)
	}
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(entries)))
	buf = append(buf, tmp[:]...)
	// encodeEntries already serialized the canonical Dropping ids.
	return append(buf, encodeEntries(entries)...)
}

// decodeGlobalIndex parses the output of encodeGlobalIndex.
func decodeGlobalIndex(data []byte) (paths []string, entries []Entry, err error) {
	bad := fmt.Errorf("plfs: corrupt global index")
	if len(data) < 4 {
		return nil, nil, bad
	}
	np := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < np; i++ {
		if len(data) < 4 {
			return nil, nil, bad
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < l {
			return nil, nil, bad
		}
		paths = append(paths, string(data[:l]))
		data = data[l:]
	}
	if len(data) < 8 {
		return nil, nil, bad
	}
	ne64 := binary.LittleEndian.Uint64(data)
	data = data[8:]
	// Bound before multiplying: a forged count can otherwise overflow
	// ne*EntryBytes into a value that passes the length check and then
	// over-allocates (or panics) in make.
	if ne64 > uint64(len(data))/EntryBytes {
		return nil, nil, bad
	}
	ne := int(ne64)
	if len(data) != ne*EntryBytes {
		return nil, nil, bad
	}
	entries = make([]Entry, ne)
	for i := range entries {
		b := data[i*EntryBytes:]
		entries[i] = Entry{
			LogicalOff: int64(binary.LittleEndian.Uint64(b[0:])),
			Length:     int64(binary.LittleEndian.Uint64(b[8:])),
			PhysOff:    int64(binary.LittleEndian.Uint64(b[16:])),
			Timestamp:  int64(binary.LittleEndian.Uint64(b[24:])),
			Dropping:   int32(binary.LittleEndian.Uint32(b[32:])),
			Rank:       int32(binary.LittleEndian.Uint32(b[36:])),
		}
	}
	return paths, entries, nil
}
