package plfs

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"plfs/internal/payload"
)

// Entry is one index record: "process wrote Length bytes that logically
// belong at LogicalOff; they physically live at PhysOff of dropping
// Dropping; resolved against other writes by Timestamp".
type Entry struct {
	// LogicalOff is the write's offset in the logical file.
	LogicalOff int64
	// Length is the write's byte count.
	Length int64
	// PhysOff is the offset within the data dropping.
	PhysOff int64
	// Timestamp orders overlapping writes (last writer wins).
	Timestamp int64
	// Dropping is an id into the container's canonical dropping order.
	Dropping int32
	// Rank is the writing process, the deterministic timestamp tiebreak.
	Rank int32
}

// EntryBytes is the serialized size of one Entry.
const EntryBytes = 40

// seqOf produces the resolution sequence for last-writer-wins: timestamp
// first, rank as the deterministic tiebreak (the paper's note 1: clocks
// are synchronized and checkpoints don't overwrite in practice, but the
// simulator produces exact ties).
func seqOf(e Entry) uint64 {
	return uint64(e.Timestamp)<<16 | uint64(uint16(e.Rank))
}

// encodeEntries serializes entries (little-endian, EntryBytes each).
func encodeEntries(entries []Entry) []byte {
	buf := make([]byte, len(entries)*EntryBytes)
	for i, e := range entries {
		b := buf[i*EntryBytes:]
		binary.LittleEndian.PutUint64(b[0:], uint64(e.LogicalOff))
		binary.LittleEndian.PutUint64(b[8:], uint64(e.Length))
		binary.LittleEndian.PutUint64(b[16:], uint64(e.PhysOff))
		binary.LittleEndian.PutUint64(b[24:], uint64(e.Timestamp))
		binary.LittleEndian.PutUint32(b[32:], uint32(e.Dropping))
		binary.LittleEndian.PutUint32(b[36:], uint32(e.Rank))
	}
	return buf
}

// decodeEntries parses an index dropping's bytes.  The dropping id of
// every decoded entry is rewritten to droppingID: ids are a property of
// the reader's canonical dropping ordering, not of the writer.
func decodeEntries(data []byte, droppingID int32) ([]Entry, error) {
	if len(data)%EntryBytes != 0 {
		return nil, fmt.Errorf("plfs: corrupt index: %d bytes is not a multiple of %d", len(data), EntryBytes)
	}
	out := make([]Entry, len(data)/EntryBytes)
	for i := range out {
		b := data[i*EntryBytes:]
		out[i] = Entry{
			LogicalOff: int64(binary.LittleEndian.Uint64(b[0:])),
			Length:     int64(binary.LittleEndian.Uint64(b[8:])),
			PhysOff:    int64(binary.LittleEndian.Uint64(b[16:])),
			Timestamp:  int64(binary.LittleEndian.Uint64(b[24:])),
			Dropping:   droppingID,
			Rank:       int32(binary.LittleEndian.Uint32(b[36:])),
		}
	}
	return out, nil
}

// Rec is one index record in run-compressed form.  Count <= 1 makes it a
// plain Entry.  Count >= 2 makes it an arithmetic run: Count writes of
// Length bytes each, the k-th at logical LogicalOff+k*Stride and physical
// PhysOff+k*Length (sequential appends), all by Rank.  Every element
// shares the run's first Timestamp; run detection requires monotone
// nondecreasing timestamps within the run, so this quantization can only
// reorder writes inside one writer's run window — the paper's note that
// checkpoints don't overwrite in practice (see DESIGN.md §12).
type Rec struct {
	Entry
	Count  int32
	Stride int64
}

// recsOf wraps raw entries as single-element records.
func recsOf(entries []Entry) []Rec {
	out := make([]Rec, len(entries))
	for i, e := range entries {
		out[i] = Rec{Entry: e, Count: 1}
	}
	return out
}

// expandedCount returns the raw-entry count a record list represents.
func expandedCount(recs []Rec) int {
	n := 0
	for _, r := range recs {
		if r.Count <= 1 {
			n++
		} else {
			n += int(r.Count)
		}
	}
	return n
}

// expandRecs expands records to raw entries (runs into their elements).
func expandRecs(recs []Rec) []Entry {
	out := make([]Entry, 0, expandedCount(recs))
	for _, r := range recs {
		if r.Count <= 1 {
			out = append(out, r.Entry)
			continue
		}
		e := r.Entry
		for k := int32(0); k < r.Count; k++ {
			out = append(out, e)
			e.LogicalOff += r.Stride
			e.PhysOff += r.Length
		}
	}
	return out
}

// compressRecs detects arithmetic runs in one writer's entries (in write
// order): equal Length and Rank, physical offsets advancing by exactly
// Length, logical offsets advancing by a constant stride >= Length (so
// run elements are disjoint), timestamps monotone nondecreasing.  Runs of
// at least two entries become one Rec; everything else passes through.
func compressRecs(entries []Entry) []Rec {
	recs := make([]Rec, 0, 8)
	i := 0
	for i < len(entries) {
		e := entries[i]
		j := i + 1
		var stride int64
		for e.Length > 0 && j < len(entries) {
			p, c := entries[j-1], entries[j]
			if c.Length != e.Length || c.Rank != e.Rank || c.Dropping != e.Dropping ||
				c.PhysOff != p.PhysOff+e.Length || c.Timestamp < p.Timestamp {
				break
			}
			s := c.LogicalOff - p.LogicalOff
			if s < e.Length {
				break
			}
			if j == i+1 {
				stride = s
			} else if s != stride {
				break
			}
			j++
		}
		if j-i >= 2 {
			recs = append(recs, Rec{Entry: e, Count: int32(j - i), Stride: stride})
		} else {
			recs = append(recs, Rec{Entry: e, Count: 1})
			j = i + 1
		}
		i = j
	}
	return recs
}

// v2 record framing.  An index dropping is either v1 — raw entries,
// EntryBytes each, byte-identical to the legacy format — or v2:
//
//	[ uint64 magic "PLFS_IX2" ][ uint32 nrecs ][ records ]
//
// where each record is a tag byte (1 = entry, 2 = run) followed by an
// EntryBytes entry, and tag-2 records append [uint32 count][int64 stride].
// The global index has the same two generations ("PLFS_GX2" for v2) with
// the dropping-path header in front of the record section.  Encoders emit
// v1 whenever every record is a single, so compression-off output stays
// byte-identical to the legacy format and the simulator models the same
// volumes.
const (
	ixV2Magic   = uint64(0x504c46535f495832) // "PLFS_IX2"
	gidxV2Magic = uint64(0x504c46535f475832) // "PLFS_GX2"
	recHdrLen   = 12                         // magic + record count
	recRunExtra = 12                         // count + stride
)

// allSingles reports whether no record is a run.
func allSingles(recs []Rec) bool {
	for _, r := range recs {
		if r.Count > 1 {
			return false
		}
	}
	return true
}

// recsWireLen returns exactly how many bytes encodeRecs(recs) produces —
// the figure the simulator charges for index transport.
func recsWireLen(recs []Rec) int64 {
	if allSingles(recs) {
		return int64(len(recs)) * EntryBytes
	}
	n := int64(recHdrLen)
	for _, r := range recs {
		n += 1 + EntryBytes
		if r.Count > 1 {
			n += recRunExtra
		}
	}
	return n
}

func appendEntry(buf []byte, e Entry) []byte {
	var b [EntryBytes]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(e.LogicalOff))
	binary.LittleEndian.PutUint64(b[8:], uint64(e.Length))
	binary.LittleEndian.PutUint64(b[16:], uint64(e.PhysOff))
	binary.LittleEndian.PutUint64(b[24:], uint64(e.Timestamp))
	binary.LittleEndian.PutUint32(b[32:], uint32(e.Dropping))
	binary.LittleEndian.PutUint32(b[36:], uint32(e.Rank))
	return append(buf, b[:]...)
}

func getEntry(b []byte) Entry {
	return Entry{
		LogicalOff: int64(binary.LittleEndian.Uint64(b[0:])),
		Length:     int64(binary.LittleEndian.Uint64(b[8:])),
		PhysOff:    int64(binary.LittleEndian.Uint64(b[16:])),
		Timestamp:  int64(binary.LittleEndian.Uint64(b[24:])),
		Dropping:   int32(binary.LittleEndian.Uint32(b[32:])),
		Rank:       int32(binary.LittleEndian.Uint32(b[36:])),
	}
}

// appendRecList serializes the v2 record section (no header).
func appendRecList(buf []byte, recs []Rec) []byte {
	var tmp [recRunExtra]byte
	for _, r := range recs {
		if r.Count <= 1 {
			buf = append(buf, 1)
			buf = appendEntry(buf, r.Entry)
			continue
		}
		buf = append(buf, 2)
		buf = appendEntry(buf, r.Entry)
		binary.LittleEndian.PutUint32(tmp[0:], uint32(r.Count))
		binary.LittleEndian.PutUint64(tmp[4:], uint64(r.Stride))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// decodeRecList parses n records from data, requiring exact consumption.
func decodeRecList(data []byte, n int) ([]Rec, error) {
	bad := fmt.Errorf("plfs: corrupt v2 index records")
	out := make([]Rec, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 1+EntryBytes {
			return nil, bad
		}
		tag := data[0]
		e := getEntry(data[1:])
		data = data[1+EntryBytes:]
		switch tag {
		case 1:
			out = append(out, Rec{Entry: e, Count: 1})
		case 2:
			if len(data) < recRunExtra {
				return nil, bad
			}
			cnt := int32(binary.LittleEndian.Uint32(data[0:]))
			stride := int64(binary.LittleEndian.Uint64(data[4:]))
			data = data[recRunExtra:]
			// Run sanity: counts and strides that could overflow the
			// expansion arithmetic (or describe overlapping elements) are
			// corruption, not data.
			if cnt < 2 || cnt > 1<<30 || e.Length < 0 || e.LogicalOff < 0 ||
				stride < e.Length || (stride > 0 && int64(cnt) > (1<<62)/stride) {
				return nil, bad
			}
			out = append(out, Rec{Entry: e, Count: cnt, Stride: stride})
		default:
			return nil, bad
		}
	}
	if len(data) != 0 {
		return nil, bad
	}
	return out, nil
}

// encodeRecs serializes an index dropping's records: legacy v1 bytes when
// every record is a single, the v2 framing otherwise.
func encodeRecs(recs []Rec) []byte {
	if allSingles(recs) {
		entries := make([]Entry, len(recs))
		for i, r := range recs {
			entries[i] = r.Entry
		}
		return encodeEntries(entries)
	}
	buf := make([]byte, 0, recsWireLen(recs))
	var tmp [recHdrLen]byte
	binary.LittleEndian.PutUint64(tmp[0:], ixV2Magic)
	binary.LittleEndian.PutUint32(tmp[8:], uint32(len(recs)))
	buf = append(buf, tmp[:]...)
	return appendRecList(buf, recs)
}

// decodeRecs parses an index dropping in either generation, rewriting
// dropping ids to droppingID (ids belong to the reader's canonical
// ordering, as in decodeEntries).
func decodeRecs(data []byte, droppingID int32) ([]Rec, error) {
	if len(data) >= recHdrLen && binary.LittleEndian.Uint64(data) == ixV2Magic {
		nr := uint64(binary.LittleEndian.Uint32(data[8:]))
		rest := data[recHdrLen:]
		// Bound before allocating: the smallest record is 1+EntryBytes.
		if nr > uint64(len(rest))/(1+EntryBytes) {
			return nil, fmt.Errorf("plfs: corrupt v2 index dropping (%d records in %d bytes)", nr, len(data))
		}
		recs, err := decodeRecList(rest, int(nr))
		if err != nil {
			return nil, err
		}
		for i := range recs {
			recs[i].Dropping = droppingID
		}
		return recs, nil
	}
	entries, err := decodeEntries(data, droppingID)
	if err != nil {
		return nil, err
	}
	return recsOf(entries), nil
}

// Index is a resolved global offset map: a sorted, disjoint cover of the
// logical file mapping every byte to (dropping, physical offset).
//
// The representation is columnar (structure of arrays) with two parts:
// an irregular segment table, sorted by logical offset, and an optional
// run table holding same-stride arithmetic runs that survived resolution
// intact.  A K-element run costs one row instead of K segment rows, and
// Lookup expands run elements lazily, so strided checkpoints stay O(runs)
// resident instead of O(writes).
type Index struct {
	// Segment table: disjoint resolved extents sorted by segLog.
	segLog, segLen, segPhys []int64
	segDrop, segRank        []int32

	// Run table: every run shares stride runStride (0 = no run table) and
	// is keyed by its phase — LogicalOff mod runStride — with phase
	// intervals [runPhase[j], runPhase[j]+runLen[j]) sorted and pairwise
	// disjoint, so at most one run covers any logical position.  Run j's
	// k-th element spans [runLog[j]+k*S, +runLen[j]) at physical
	// runPhys[j]+k*runLen[j].  Runs never overlap the segment table
	// (buildRunTable falls back to full expansion otherwise).
	runStride                         int64
	runPhase, runLog, runLen, runPhys []int64
	runCount                          []int32
	runDrop, runRank                  []int32
	runMin, runMax                    int64 // logical bounds of run coverage

	droppings []string // dropping data-file paths, indexed by Entry.Dropping
	rawCount  int      // total raw entries aggregated (cost accounting)
	size      int64    // logical file size
}

// BuildIndex resolves raw entry shards (one per index dropping, any order)
// into a global index.  droppings maps dropping ids to data-file paths.
func BuildIndex(shards [][]Entry, droppings []string) *Index {
	return buildIndex(shards, droppings, 1)
}

// BuildIndexParallel is BuildIndex with the sort distributed over up to
// workers goroutines: each shard's spans are sorted independently, the
// sorted runs are k-way merged, and the merged run feeds
// payload.ResolveSorted (which skips the global re-sort).  The resulting
// Index is identical to BuildIndex's — the resolve sweep depends only on
// the span multiset, and Refs are assigned by flat position either way —
// so callers may switch freely between the two.
func BuildIndexParallel(shards [][]Entry, droppings []string, workers int) *Index {
	return buildIndex(shards, droppings, workers)
}

// parallelSortMin is the total entry count below which the parallel build
// falls back to the serial path: goroutine + merge overhead dominates
// under a few thousand records.
const parallelSortMin = 4096

func buildIndex(shards [][]Entry, droppings []string, workers int) *Index {
	var total int
	for _, s := range shards {
		total += len(s)
	}
	flat := make([]Entry, 0, total)
	for _, s := range shards {
		flat = append(flat, s...)
	}

	var res []payload.Span
	if workers > 1 && len(shards) > 1 && total >= parallelSortMin {
		res = payload.ResolveSorted(mergeShardSpans(shards, flat, workers))
	} else {
		spans := make([]payload.Span, len(flat))
		for i, e := range flat {
			spans[i] = payload.Span{Start: e.LogicalOff, End: e.LogicalOff + e.Length, Seq: seqOf(e), Ref: int32(i)}
		}
		res = payload.Resolve(spans)
	}

	ix := &Index{droppings: droppings, rawCount: total}
	ix.appendResolved(res, flat)
	return ix
}

// appendResolved converts resolved spans to segment-table rows.
func (ix *Index) appendResolved(res []payload.Span, flat []Entry) {
	ix.segLog = make([]int64, 0, len(res))
	ix.segLen = make([]int64, 0, len(res))
	ix.segPhys = make([]int64, 0, len(res))
	ix.segDrop = make([]int32, 0, len(res))
	ix.segRank = make([]int32, 0, len(res))
	for _, s := range res {
		e := flat[s.Ref]
		ix.segLog = append(ix.segLog, s.Start)
		ix.segLen = append(ix.segLen, s.End-s.Start)
		ix.segPhys = append(ix.segPhys, e.PhysOff+(s.Start-e.LogicalOff))
		ix.segDrop = append(ix.segDrop, e.Dropping)
		ix.segRank = append(ix.segRank, e.Rank)
		if s.End > ix.size {
			ix.size = s.End
		}
	}
}

// BuildIndexRecs resolves run-compressed record shards into a global
// index.  When every run shares one stride and nothing overlaps, the runs
// go straight into the run table without expansion; any irregularity
// (mixed strides, overlapping writes, runs colliding with singles) falls
// back to expanding the runs and resolving raw entries — the always-
// correct path BuildIndex provides.
func BuildIndexRecs(shards [][]Rec, droppings []string, workers int) *Index {
	hasRun := false
	for _, sh := range shards {
		for _, r := range sh {
			if r.Count > 1 {
				hasRun = true
				break
			}
		}
		if hasRun {
			break
		}
	}
	if !hasRun {
		entryShards := make([][]Entry, len(shards))
		for k, sh := range shards {
			es := make([]Entry, len(sh))
			for i, r := range sh {
				es[i] = r.Entry
			}
			entryShards[k] = es
		}
		return buildIndex(entryShards, droppings, workers)
	}
	if ix := buildRunTable(shards, droppings, workers); ix != nil {
		return ix
	}
	entryShards := make([][]Entry, len(shards))
	for k, sh := range shards {
		entryShards[k] = expandRecs(sh)
	}
	return buildIndex(entryShards, droppings, workers)
}

// buildRunTable attempts the compact run-table representation.  It
// returns nil — caller falls back to full expansion — unless every run
// shares one stride, run phase intervals are pairwise disjoint (no run
// overlaps another), and no resolved single overlaps run coverage.
func buildRunTable(shards [][]Rec, droppings []string, workers int) *Index {
	var runs []Rec
	singles := make([][]Entry, len(shards))
	total := 0
	for k, sh := range shards {
		var es []Entry
		for _, r := range sh {
			if r.Count > 1 {
				runs = append(runs, r)
				total += int(r.Count)
			} else {
				es = append(es, r.Entry)
				total++
			}
		}
		singles[k] = es
	}
	s := runs[0].Stride
	if s <= 0 {
		return nil
	}
	for _, r := range runs {
		if r.Stride != s || r.Length <= 0 || r.Length > s || r.LogicalOff < 0 ||
			(r.LogicalOff%s)+r.Length > s {
			return nil
		}
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].LogicalOff%s < runs[j].LogicalOff%s })
	for i := 1; i < len(runs); i++ {
		if runs[i-1].LogicalOff%s+runs[i-1].Length > runs[i].LogicalOff%s {
			return nil
		}
	}

	base := buildIndex(singles, droppings, workers)
	ix := &Index{
		droppings: droppings, rawCount: total, size: base.size,
		segLog: base.segLog, segLen: base.segLen, segPhys: base.segPhys,
		segDrop: base.segDrop, segRank: base.segRank,
		runStride: s, runMin: int64(1)<<62 - 1,
	}
	ix.runPhase = make([]int64, len(runs))
	ix.runLog = make([]int64, len(runs))
	ix.runLen = make([]int64, len(runs))
	ix.runPhys = make([]int64, len(runs))
	ix.runCount = make([]int32, len(runs))
	ix.runDrop = make([]int32, len(runs))
	ix.runRank = make([]int32, len(runs))
	for j, r := range runs {
		ix.runPhase[j] = r.LogicalOff % s
		ix.runLog[j] = r.LogicalOff
		ix.runLen[j] = r.Length
		ix.runPhys[j] = r.PhysOff
		ix.runCount[j] = r.Count
		ix.runDrop[j] = r.Dropping
		ix.runRank[j] = r.Rank
		if r.LogicalOff < ix.runMin {
			ix.runMin = r.LogicalOff
		}
		end := r.LogicalOff + int64(r.Count-1)*r.Stride + r.Length
		if end > ix.runMax {
			ix.runMax = end
		}
		if end > ix.size {
			ix.size = end
		}
	}
	// Every resolved single must be disjoint from run coverage, or
	// last-writer-wins resolution would be needed between them.
	for i := range ix.segLog {
		if _, ok := ix.runNext(ix.segLog[i], ix.segLog[i]+ix.segLen[i]); ok {
			return nil
		}
	}
	return ix
}

// runNext returns the first run-covered piece at or after cur and before
// end, walking phases within the run period.  The piece's Length runs to
// its element's end; callers clip to their range.  Allocation-free.
func (ix *Index) runNext(cur, end int64) (Piece, bool) {
	if ix.runStride == 0 {
		return Piece{}, false
	}
	if cur < ix.runMin {
		cur = ix.runMin
	}
	if end > ix.runMax {
		end = ix.runMax
	}
	s := ix.runStride
	for cur < end {
		phi := cur % s
		// First run whose phase interval ends past phi.
		lo, hi := 0, len(ix.runPhase)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ix.runPhase[mid]+ix.runLen[mid] > phi {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		j := lo
		if j == len(ix.runPhase) {
			cur += s - phi // no phase left this period
			continue
		}
		if phi < ix.runPhase[j] {
			cur += ix.runPhase[j] - phi
			phi = ix.runPhase[j]
			if cur >= end {
				break
			}
		}
		if cur < ix.runLog[j] {
			cur += ix.runPhase[j] + ix.runLen[j] - phi // run starts in a later period
			continue
		}
		k := (cur - ix.runLog[j]) / s
		if k >= int64(ix.runCount[j]) {
			cur += ix.runPhase[j] + ix.runLen[j] - phi // run ended in an earlier period
			continue
		}
		elem := ix.runLog[j] + k*s
		return Piece{
			Logical:  cur,
			Length:   elem + ix.runLen[j] - cur,
			Dropping: ix.runDrop[j],
			PhysOff:  ix.runPhys[j] + k*ix.runLen[j] + (cur - elem),
			Rank:     ix.runRank[j],
		}, true
	}
	return Piece{}, false
}

// mergeShardSpans builds one span per entry (Ref = position in the
// flattened shard order, matching the serial path), sorts each shard's
// spans concurrently, and k-way merges the sorted runs into a single run
// sorted by Start.
func mergeShardSpans(shards [][]Entry, flat []Entry, workers int) []payload.Span {
	runs := make([][]payload.Span, len(shards))
	offsets := make([]int, len(shards))
	off := 0
	for k, s := range shards {
		offsets[k] = off
		off += len(s)
	}
	parallelFor(workers, len(shards), func(k int) {
		s := shards[k]
		run := make([]payload.Span, len(s))
		base := offsets[k]
		for i, e := range s {
			run[i] = payload.Span{Start: e.LogicalOff, End: e.LogicalOff + e.Length, Seq: seqOf(e), Ref: int32(base + i)}
		}
		sort.Slice(run, func(i, j int) bool {
			if run[i].Start != run[j].Start {
				return run[i].Start < run[j].Start
			}
			return run[i].Ref < run[j].Ref
		})
		runs[k] = run
	})

	out := make([]payload.Span, 0, len(flat))
	var h runHeap
	for _, run := range runs {
		if len(run) > 0 {
			h = append(h, run)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		run := h[0]
		out = append(out, run[0])
		if len(run) > 1 {
			h[0] = run[1:]
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return out
}

// runHeap is a min-heap of sorted span runs keyed by their head span's
// (Start, Ref).
type runHeap [][]payload.Span

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	a, b := h[i][0], h[j][0]
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Ref < b.Ref
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.([]payload.Span)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	*h = old[:n-1]
	return r
}

// Size returns the logical file size.
func (ix *Index) Size() int64 { return ix.size }

// RawEntries returns how many raw index records were aggregated.
func (ix *Index) RawEntries() int { return ix.rawCount }

// Segments returns the number of resolved segments, counting each run
// element (a run of K writes contributes K segments).
func (ix *Index) Segments() int {
	n := len(ix.segLog)
	for _, c := range ix.runCount {
		n += int(c)
	}
	return n
}

// Runs returns the number of run-table rows (0 when the index is purely
// segment-mapped).
func (ix *Index) Runs() int { return len(ix.runPhase) }

// Droppings returns the dropping data-file paths.
func (ix *Index) Droppings() []string { return ix.droppings }

// residentBytes estimates the in-memory footprint (cache accounting).
func (ix *Index) residentBytes() int64 {
	b := int64(len(ix.segLog))*(3*8+2*4) + int64(len(ix.runPhase))*(4*8+3*4)
	for _, d := range ix.droppings {
		b += int64(len(d)) + 16
	}
	return b + 160
}

// Piece is one contiguous portion of a logical read, mapped to physical
// storage.  A negative Dropping means a hole (read as zeros).
type Piece struct {
	// Logical is the piece's offset in the logical file.
	Logical int64
	// Length is the piece's byte count.
	Length int64
	// Dropping indexes the container's dropping order; negative = hole.
	Dropping int32
	// PhysOff is the offset within that dropping's data file.
	PhysOff int64
	// Rank is the rank whose write this piece resolves to.
	Rank int32
}

// Lookup maps the logical range [off, off+n) to physical pieces, including
// hole pieces for unwritten gaps.
func (ix *Index) Lookup(off, n int64) []Piece {
	return ix.AppendPieces(nil, off, n)
}

// AppendPieces appends the pieces covering [off, off+n) to dst and
// returns it.  The hot read path reuses dst across calls, so a lookup
// whose result fits the buffer performs no allocation; the segment cursor
// and run walk are binary searches over the columnar arrays.
func (ix *Index) AppendPieces(dst []Piece, off, n int64) []Piece {
	if n <= 0 {
		return dst
	}
	end := off + n
	// First segment whose end is past off (hand-rolled: no closure).
	lo, hi := 0, len(ix.segLog)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.segLog[mid]+ix.segLen[mid] > off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	si := lo
	cur := off
	for cur < end {
		segOK := si < len(ix.segLog) && ix.segLog[si] < end
		segStart := cur
		if segOK && ix.segLog[si] > cur {
			segStart = ix.segLog[si]
		}
		rp, runOK := ix.runNext(cur, end)
		switch {
		case runOK && (!segOK || rp.Logical < segStart):
			if rp.Logical > cur {
				dst = append(dst, Piece{Logical: cur, Length: rp.Logical - cur, Dropping: -1})
				cur = rp.Logical
			}
			take := min64(rp.Length, end-cur)
			rp.Length = take
			dst = append(dst, rp)
			cur += take
		case segOK:
			if segStart > cur {
				dst = append(dst, Piece{Logical: cur, Length: segStart - cur, Dropping: -1})
				cur = segStart
			}
			rel := cur - ix.segLog[si]
			take := min64(ix.segLen[si]-rel, end-cur)
			dst = append(dst, Piece{
				Logical: cur, Length: take,
				Dropping: ix.segDrop[si], PhysOff: ix.segPhys[si] + rel, Rank: ix.segRank[si],
			})
			cur += take
			si++
		default:
			dst = append(dst, Piece{Logical: cur, Length: end - cur, Dropping: -1})
			cur = end
		}
	}
	return dst
}

// flattenRecsOf reconstructs record form from a built index (used to
// transport or persist the global index without the original bytes):
// segment rows become singles, run rows become run records.  Resolution
// already happened, so timestamps are zero and nothing overlaps.
func flattenRecsOf(ix *Index) []Rec {
	out := make([]Rec, 0, len(ix.segLog)+len(ix.runPhase))
	for i := range ix.segLog {
		out = append(out, Rec{Entry: Entry{
			LogicalOff: ix.segLog[i], Length: ix.segLen[i], PhysOff: ix.segPhys[i],
			Dropping: ix.segDrop[i], Rank: ix.segRank[i],
		}, Count: 1})
	}
	for j := range ix.runPhase {
		out = append(out, Rec{Entry: Entry{
			LogicalOff: ix.runLog[j], Length: ix.runLen[j], PhysOff: ix.runPhys[j],
			Dropping: ix.runDrop[j], Rank: ix.runRank[j],
		}, Count: ix.runCount[j], Stride: ix.runStride})
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// timeDuration converts an entry count to a time.Duration multiplier.
func timeDuration(n int) time.Duration { return time.Duration(n) }

// encodeGlobalIndex serializes a flattened global index: a header listing
// the canonical dropping data paths, then the entries (whose Dropping ids
// reference the header order).
func encodeGlobalIndex(paths []string, entries []Entry) []byte {
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(paths)))
	buf = append(buf, tmp[:4]...)
	for _, p := range paths {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(p)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, p...)
	}
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(entries)))
	buf = append(buf, tmp[:]...)
	// encodeEntries already serialized the canonical Dropping ids.
	return append(buf, encodeEntries(entries)...)
}

// encodeGlobalIndexRecs serializes a global index in record form: legacy
// v1 bytes when every record is a single, the v2 framing otherwise.
func encodeGlobalIndexRecs(paths []string, recs []Rec) []byte {
	if allSingles(recs) {
		entries := make([]Entry, len(recs))
		for i, r := range recs {
			entries[i] = r.Entry
		}
		return encodeGlobalIndex(paths, entries)
	}
	return encodeGlobalIndexV2(paths, recs)
}

// encodeGlobalIndexV2 always emits the v2 framing:
// [magic][uint32 npaths][paths][uint32 nrecs][records].
func encodeGlobalIndexV2(paths []string, recs []Rec) []byte {
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], gidxV2Magic)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(paths)))
	buf = append(buf, tmp[:4]...)
	for _, p := range paths {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(p)))
		buf = append(buf, tmp[:4]...)
		buf = append(buf, p...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(recs)))
	buf = append(buf, tmp[:4]...)
	return appendRecList(buf, recs)
}

// globalIndexWireLen returns len(encodeGlobalIndexRecs(paths, recs)).
func globalIndexWireLen(paths []string, recs []Rec) int64 {
	var n int64
	if allSingles(recs) {
		n = 4 + 8 + int64(len(recs))*EntryBytes
	} else {
		n = 8 + 4 + 4
		for _, r := range recs {
			n += 1 + EntryBytes
			if r.Count > 1 {
				n += recRunExtra
			}
		}
	}
	for _, p := range paths {
		n += 4 + int64(len(p))
	}
	return n
}

// decodeGlobalIndexRecs parses a global index in either generation.
func decodeGlobalIndexRecs(data []byte) (paths []string, recs []Rec, err error) {
	if len(data) >= 8 && binary.LittleEndian.Uint64(data) == gidxV2Magic {
		bad := fmt.Errorf("plfs: corrupt global index")
		data = data[8:]
		if len(data) < 4 {
			return nil, nil, bad
		}
		np := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		for i := 0; i < np; i++ {
			if len(data) < 4 {
				return nil, nil, bad
			}
			l := int(binary.LittleEndian.Uint32(data))
			data = data[4:]
			if len(data) < l {
				return nil, nil, bad
			}
			paths = append(paths, string(data[:l]))
			data = data[l:]
		}
		if len(data) < 4 {
			return nil, nil, bad
		}
		nr := uint64(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if nr > uint64(len(data))/(1+EntryBytes) {
			return nil, nil, bad
		}
		recs, err = decodeRecList(data, int(nr))
		if err != nil {
			return nil, nil, err
		}
		return paths, recs, nil
	}
	ps, entries, err := decodeGlobalIndex(data)
	if err != nil {
		return nil, nil, err
	}
	return ps, recsOf(entries), nil
}

// decodeGlobalIndex parses the output of encodeGlobalIndex.
func decodeGlobalIndex(data []byte) (paths []string, entries []Entry, err error) {
	bad := fmt.Errorf("plfs: corrupt global index")
	if len(data) < 4 {
		return nil, nil, bad
	}
	np := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < np; i++ {
		if len(data) < 4 {
			return nil, nil, bad
		}
		l := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < l {
			return nil, nil, bad
		}
		paths = append(paths, string(data[:l]))
		data = data[l:]
	}
	if len(data) < 8 {
		return nil, nil, bad
	}
	ne64 := binary.LittleEndian.Uint64(data)
	data = data[8:]
	// Bound before multiplying: a forged count can otherwise overflow
	// ne*EntryBytes into a value that passes the length check and then
	// over-allocates (or panics) in make.
	if ne64 > uint64(len(data))/EntryBytes {
		return nil, nil, bad
	}
	ne := int(ne64)
	if len(data) != ne*EntryBytes {
		return nil, nil, bad
	}
	entries = make([]Entry, ne)
	for i := range entries {
		b := data[i*EntryBytes:]
		entries[i] = Entry{
			LogicalOff: int64(binary.LittleEndian.Uint64(b[0:])),
			Length:     int64(binary.LittleEndian.Uint64(b[8:])),
			PhysOff:    int64(binary.LittleEndian.Uint64(b[16:])),
			Timestamp:  int64(binary.LittleEndian.Uint64(b[24:])),
			Dropping:   int32(binary.LittleEndian.Uint32(b[32:])),
			Rank:       int32(binary.LittleEndian.Uint32(b[36:])),
		}
	}
	return paths, entries, nil
}
