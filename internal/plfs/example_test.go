package plfs_test

import (
	"fmt"
	"log"
	"os"

	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Example shows the serial (FUSE-style) PLFS lifecycle over a real
// directory: create, write at arbitrary logical offsets, close, stat,
// read back, inspect the resolved index, unlink.
func Example() {
	root, err := os.MkdirTemp("", "plfs-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	mount := plfs.NewMount([]string{root}, plfs.Options{NumSubdirs: 2})
	ctx := plfs.Ctx{Vols: []plfs.Backend{osfs.New()}, HostLeader: true}

	w, err := mount.Create(ctx, "ckpt")
	if err != nil {
		log.Fatal(err)
	}
	// Logical offsets are arbitrary; physically both land as sequential
	// appends in this writer's data dropping.
	w.Write(1024, payload.FromBytes([]byte("tail")))
	w.Write(0, payload.FromBytes([]byte("head")))
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	fi, err := mount.Stat(ctx, "ckpt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logical size:", fi.Size)

	r, err := mount.OpenReader(ctx, "ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	head, _ := r.ReadAt(0, 4)
	tail, _ := r.ReadAt(1024, 4)
	fmt.Printf("head=%s tail=%s\n", head.Materialize(), tail.Materialize())
	fmt.Println("segments:", r.Index().Segments())

	if err := mount.Unlink(ctx, "ckpt"); err != nil {
		log.Fatal(err)
	}
	// Output:
	// logical size: 1028
	// head=head tail=tail
	// segments: 2
}
