package plfs

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelFor(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {4, 10}, {16, 3}, {4, 0}, {0, 5}, {-1, 5}, {4, 1},
	} {
		var hits atomic.Int64
		seen := make([]atomic.Int32, tc.n)
		parallelFor(tc.workers, tc.n, func(i int) {
			hits.Add(1)
			seen[i].Add(1)
		})
		if hits.Load() != int64(tc.n) {
			t.Fatalf("parallelFor(%d,%d): %d calls", tc.workers, tc.n, hits.Load())
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("parallelFor(%d,%d): index %d visited %d times", tc.workers, tc.n, i, seen[i].Load())
			}
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if w := defaultWorkers(0); w < 1 {
		t.Fatalf("defaultWorkers(0) = %d", w)
	}
	if w := defaultWorkers(-3); w != 1 {
		t.Fatalf("defaultWorkers(-3) = %d, want 1", w)
	}
	if w := defaultWorkers(7); w != 7 {
		t.Fatalf("defaultWorkers(7) = %d", w)
	}
}

func TestChunkEdgeCases(t *testing.T) {
	// More buckets than items: the high buckets must be nil, not empty
	// non-nil slices (assignments stay allocation-free).
	for b := 0; b < 5; b++ {
		got := chunk(3, 5, b)
		if b < 3 {
			if len(got) != 1 || got[0] != b {
				t.Fatalf("chunk(3,5,%d) = %v", b, got)
			}
		} else if got != nil {
			t.Fatalf("chunk(3,5,%d) = %#v, want nil", b, got)
		}
	}
	// Zero items: every bucket is nil.
	for b := 0; b < 4; b++ {
		if got := chunk(0, 4, b); got != nil {
			t.Fatalf("chunk(0,4,%d) = %#v, want nil", b, got)
		}
	}
	// Uneven remainder: 10 items over 3 buckets goes 4/3/3 with the
	// remainder to the low buckets, contiguous and in order.
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for b := range want {
		if got := chunk(10, 3, b); !reflect.DeepEqual(got, want[b]) {
			t.Fatalf("chunk(10,3,%d) = %v, want %v", b, got, want[b])
		}
	}
}

// randomShards builds nShards droppings of random entries, dense enough
// that overlaps and timestamp ties are common.
func randomShards(rng *rand.Rand, nShards, perShard int) ([][]Entry, []string) {
	shards := make([][]Entry, nShards)
	paths := make([]string, nShards)
	for s := range shards {
		paths[s] = fmt.Sprintf("d%d", s)
		es := make([]Entry, perShard)
		var phys int64
		for i := range es {
			n := int64(1 + rng.Intn(512))
			es[i] = Entry{
				LogicalOff: int64(rng.Intn(1 << 16)),
				Length:     n,
				PhysOff:    phys,
				Timestamp:  int64(rng.Intn(64)), // force ties
				Dropping:   int32(s),
				Rank:       int32(s),
			}
			phys += n
		}
		shards[s] = es
	}
	return shards, paths
}

// Property: the merge-based parallel build produces an Index identical to
// the serial flatten-and-sort build — same segments, size, raw count —
// for any shard multiset, above and below the parallel threshold.
func TestBuildIndexParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nShards := 2 + rng.Intn(8)
		perShard := 16 + rng.Intn(1024)
		shards, paths := randomShards(rng, nShards, perShard)
		serial := BuildIndex(shards, paths)
		par := BuildIndexParallel(shards, paths, 4)
		return reflect.DeepEqual(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	// Force the merge path explicitly (total well above parallelSortMin).
	rng := rand.New(rand.NewSource(7))
	shards, paths := randomShards(rng, 64, 256)
	if !reflect.DeepEqual(BuildIndex(shards, paths), BuildIndexParallel(shards, paths, 8)) {
		t.Fatal("parallel build diverged from serial at 64 shards")
	}
}

// The flattened global index must preserve non-canonical dropping ids
// byte-for-byte through encode/decode (the encoder's old second pass that
// re-wrote ids was a no-op and has been removed).
func TestGlobalIndexPreservesDroppingIDs(t *testing.T) {
	paths := []string{"/v0/d0", "/v1/d1", "/v0/d2"}
	entries := []Entry{
		{LogicalOff: 0, Length: 4, PhysOff: 0, Timestamp: 3, Dropping: 2, Rank: 5},
		{LogicalOff: 4, Length: 4, PhysOff: 9, Timestamp: 1, Dropping: 0, Rank: 1},
		{LogicalOff: 8, Length: 4, PhysOff: 2, Timestamp: 2, Dropping: 1, Rank: 0},
	}
	p2, e2, err := decodeGlobalIndex(encodeGlobalIndex(paths, entries))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, p2) {
		t.Fatalf("paths changed: %v", p2)
	}
	for i := range entries {
		if e2[i].Dropping != entries[i].Dropping {
			t.Fatalf("entry %d dropping id %d -> %d", i, entries[i].Dropping, e2[i].Dropping)
		}
	}
	if !reflect.DeepEqual(entries, e2) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", entries, e2)
	}
}

func TestPlanBatches(t *testing.T) {
	pieces := []Piece{
		{Logical: 0, Length: 10, Dropping: 0, PhysOff: 0},
		{Logical: 10, Length: 10, Dropping: 0, PhysOff: 10}, // contiguous: merges
		{Logical: 20, Length: 10, Dropping: 0, PhysOff: 50}, // gap: new batch
		{Logical: 30, Length: 10, Dropping: 1, PhysOff: 60}, // new dropping
		{Logical: 40, Length: 10, Dropping: -1},             // hole: excluded
		{Logical: 50, Length: 10, Dropping: 1, PhysOff: 70}, // adjacent to piece 3
	}
	got := planBatches(pieces, 0)
	want := []readBatch{
		{drop: 0, phys: 0, length: 20, pieces: []int32{0, 1}},
		{drop: 0, phys: 50, length: 10, pieces: []int32{2}},
		{drop: 1, phys: 60, length: 20, pieces: []int32{3, 5}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batches = %+v, want %+v", got, want)
	}
}

func TestPlanBatchesEdgeCases(t *testing.T) {
	if got := planBatches(nil, 0); len(got) != 0 {
		t.Fatalf("empty lookup planned %d batches", len(got))
	}
	if got := planBatches([]Piece{{Logical: 3, Length: 7, Dropping: -1}}, 1<<20); len(got) != 0 {
		t.Fatalf("all-hole lookup planned %d batches", len(got))
	}
	single := []Piece{{Logical: 5, Length: 9, Dropping: 2, PhysOff: 100}}
	got := planBatches(single, 0)
	want := []readBatch{{drop: 2, phys: 100, length: 9, pieces: []int32{0}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single piece: %+v, want %+v", got, want)
	}

	// Exactly-adjacent pieces of the same dropping merge at gap 0 even
	// when they arrive out of physical order and are logically far apart
	// (a lookup split across segment boundaries).
	split := []Piece{
		{Logical: 9000, Length: 10, Dropping: 0, PhysOff: 10},
		{Logical: 0, Length: 10, Dropping: 0, PhysOff: 0},
	}
	got = planBatches(split, 0)
	want = []readBatch{{drop: 0, phys: 0, length: 20, pieces: []int32{1, 0}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-segment adjacency: %+v, want %+v", got, want)
	}

	// A piece overlapping the current batch boundary must extend to the
	// max end, not shrink the batch (overlap comes from overwrites whose
	// resolved pieces share physical bytes).
	overlap := []Piece{
		{Logical: 0, Length: 20, Dropping: 0, PhysOff: 0},
		{Logical: 20, Length: 5, Dropping: 0, PhysOff: 10}, // ends inside batch
		{Logical: 25, Length: 10, Dropping: 0, PhysOff: 18},
	}
	got = planBatches(overlap, 0)
	want = []readBatch{{drop: 0, phys: 0, length: 28, pieces: []int32{0, 1, 2}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overlap at boundary: %+v, want %+v", got, want)
	}
}

func TestPlanBatchesGapSweep(t *testing.T) {
	// Pieces 100 bytes apart in the same dropping: gap below 100 keeps
	// them separate, gap >= 100 sieves them into one read whose length
	// covers the holes between them.
	pieces := []Piece{
		{Logical: 0, Length: 10, Dropping: 0, PhysOff: 0},
		{Logical: 10, Length: 10, Dropping: 0, PhysOff: 110},
		{Logical: 20, Length: 10, Dropping: 0, PhysOff: 220},
	}
	for _, tc := range []struct {
		gap     int64
		batches int
		total   int64
	}{
		{0, 3, 30}, {99, 3, 30}, {100, 1, 230}, {1 << 20, 1, 230},
	} {
		got := planBatches(pieces, tc.gap)
		var total int64
		for _, b := range got {
			total += b.length
		}
		if len(got) != tc.batches || total != tc.total {
			t.Fatalf("gap %d: %d batches totalling %d bytes, want %d/%d",
				tc.gap, len(got), total, tc.batches, tc.total)
		}
	}
}
