package plfs

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestParallelFor(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {4, 10}, {16, 3}, {4, 0}, {0, 5}, {-1, 5}, {4, 1},
	} {
		var hits atomic.Int64
		seen := make([]atomic.Int32, tc.n)
		parallelFor(tc.workers, tc.n, func(i int) {
			hits.Add(1)
			seen[i].Add(1)
		})
		if hits.Load() != int64(tc.n) {
			t.Fatalf("parallelFor(%d,%d): %d calls", tc.workers, tc.n, hits.Load())
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("parallelFor(%d,%d): index %d visited %d times", tc.workers, tc.n, i, seen[i].Load())
			}
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	if w := defaultWorkers(0); w < 1 {
		t.Fatalf("defaultWorkers(0) = %d", w)
	}
	if w := defaultWorkers(-3); w != 1 {
		t.Fatalf("defaultWorkers(-3) = %d, want 1", w)
	}
	if w := defaultWorkers(7); w != 7 {
		t.Fatalf("defaultWorkers(7) = %d", w)
	}
}

func TestChunkEdgeCases(t *testing.T) {
	// More buckets than items: the high buckets must be nil, not empty
	// non-nil slices (assignments stay allocation-free).
	for b := 0; b < 5; b++ {
		got := chunk(3, 5, b)
		if b < 3 {
			if len(got) != 1 || got[0] != b {
				t.Fatalf("chunk(3,5,%d) = %v", b, got)
			}
		} else if got != nil {
			t.Fatalf("chunk(3,5,%d) = %#v, want nil", b, got)
		}
	}
	// Zero items: every bucket is nil.
	for b := 0; b < 4; b++ {
		if got := chunk(0, 4, b); got != nil {
			t.Fatalf("chunk(0,4,%d) = %#v, want nil", b, got)
		}
	}
	// Uneven remainder: 10 items over 3 buckets goes 4/3/3 with the
	// remainder to the low buckets, contiguous and in order.
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for b := range want {
		if got := chunk(10, 3, b); !reflect.DeepEqual(got, want[b]) {
			t.Fatalf("chunk(10,3,%d) = %v, want %v", b, got, want[b])
		}
	}
}

// randomShards builds nShards droppings of random entries, dense enough
// that overlaps and timestamp ties are common.
func randomShards(rng *rand.Rand, nShards, perShard int) ([][]Entry, []string) {
	shards := make([][]Entry, nShards)
	paths := make([]string, nShards)
	for s := range shards {
		paths[s] = fmt.Sprintf("d%d", s)
		es := make([]Entry, perShard)
		var phys int64
		for i := range es {
			n := int64(1 + rng.Intn(512))
			es[i] = Entry{
				LogicalOff: int64(rng.Intn(1 << 16)),
				Length:     n,
				PhysOff:    phys,
				Timestamp:  int64(rng.Intn(64)), // force ties
				Dropping:   int32(s),
				Rank:       int32(s),
			}
			phys += n
		}
		shards[s] = es
	}
	return shards, paths
}

// Property: the merge-based parallel build produces an Index identical to
// the serial flatten-and-sort build — same segments, size, raw count —
// for any shard multiset, above and below the parallel threshold.
func TestBuildIndexParallelMatchesSerial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nShards := 2 + rng.Intn(8)
		perShard := 16 + rng.Intn(1024)
		shards, paths := randomShards(rng, nShards, perShard)
		serial := BuildIndex(shards, paths)
		par := BuildIndexParallel(shards, paths, 4)
		return reflect.DeepEqual(serial, par)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	// Force the merge path explicitly (total well above parallelSortMin).
	rng := rand.New(rand.NewSource(7))
	shards, paths := randomShards(rng, 64, 256)
	if !reflect.DeepEqual(BuildIndex(shards, paths), BuildIndexParallel(shards, paths, 8)) {
		t.Fatal("parallel build diverged from serial at 64 shards")
	}
}

// The flattened global index must preserve non-canonical dropping ids
// byte-for-byte through encode/decode (the encoder's old second pass that
// re-wrote ids was a no-op and has been removed).
func TestGlobalIndexPreservesDroppingIDs(t *testing.T) {
	paths := []string{"/v0/d0", "/v1/d1", "/v0/d2"}
	entries := []Entry{
		{LogicalOff: 0, Length: 4, PhysOff: 0, Timestamp: 3, Dropping: 2, Rank: 5},
		{LogicalOff: 4, Length: 4, PhysOff: 9, Timestamp: 1, Dropping: 0, Rank: 1},
		{LogicalOff: 8, Length: 4, PhysOff: 2, Timestamp: 2, Dropping: 1, Rank: 0},
	}
	p2, e2, err := decodeGlobalIndex(encodeGlobalIndex(paths, entries))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, p2) {
		t.Fatalf("paths changed: %v", p2)
	}
	for i := range entries {
		if e2[i].Dropping != entries[i].Dropping {
			t.Fatalf("entry %d dropping id %d -> %d", i, entries[i].Dropping, e2[i].Dropping)
		}
	}
	if !reflect.DeepEqual(entries, e2) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", entries, e2)
	}
}

func TestBatchPieces(t *testing.T) {
	pieces := []Piece{
		{Logical: 0, Length: 10, Dropping: 0, PhysOff: 0},
		{Logical: 10, Length: 10, Dropping: 0, PhysOff: 10}, // contiguous: merges
		{Logical: 20, Length: 10, Dropping: 0, PhysOff: 50}, // gap: new batch
		{Logical: 30, Length: 10, Dropping: 1, PhysOff: 60}, // new dropping
		{Logical: 40, Length: 10, Dropping: -1},             // hole
		{Logical: 50, Length: 10, Dropping: 1, PhysOff: 70},
	}
	got := batchPieces(pieces)
	want := []readBatch{
		{drop: 0, phys: 0, length: 20},
		{drop: 0, phys: 50, length: 10},
		{drop: 1, phys: 60, length: 10},
		{drop: -1, phys: 0, length: 10},
		{drop: 1, phys: 70, length: 10},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batches = %+v, want %+v", got, want)
	}
}
