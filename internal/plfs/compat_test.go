package plfs_test

// Back-compat fixtures: containers laid out byte-by-byte in the v1
// formats — 40-byte raw index entries with no version magic, no checksum
// trailers, no recovery footers, and the v1 global index — must stay
// fully readable, checkable, scrubbable, and recoverable after the v2
// run-record framing.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"plfs/internal/plfs"
)

// v1Entry hand-encodes one legacy 40-byte little-endian index entry.
func v1Entry(logical, length, phys, ts int64, drop, rank int32) []byte {
	b := make([]byte, 40)
	binary.LittleEndian.PutUint64(b[0:], uint64(logical))
	binary.LittleEndian.PutUint64(b[8:], uint64(length))
	binary.LittleEndian.PutUint64(b[16:], uint64(phys))
	binary.LittleEndian.PutUint64(b[24:], uint64(ts))
	binary.LittleEndian.PutUint32(b[32:], uint32(drop))
	binary.LittleEndian.PutUint32(b[36:], uint32(rank))
	return b
}

// buildLegacyContainer writes a v1-era container for "legacy" under root
// by hand and returns the expected logical content.  Layout: a data
// dropping with no recovery footer, an index dropping of raw entries
// with no trailer, a legacy two-part size record, and optionally a v1
// global index.
func buildLegacyContainer(t *testing.T, root string, withGlobal bool) []byte {
	t.Helper()
	dir := filepath.Join(root, "legacy")
	for _, d := range []string{dir, filepath.Join(dir, "meta"),
		filepath.Join(dir, "openhosts"), filepath.Join(dir, "hostdir.0")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	index := append(v1Entry(0, 64, 0, 1, 0, 0), v1Entry(64, 64, 64, 2, 0, 0)...)
	files := map[string][]byte{
		filepath.Join(dir, ".plfsaccess"):                     nil,
		filepath.Join(dir, "meta", "sz.128.0"):                nil,
		filepath.Join(dir, "hostdir.0", "dropping.data.1.0"):  data,
		filepath.Join(dir, "hostdir.0", "dropping.index.1.0"): index,
	}
	if withGlobal {
		dp := filepath.Join(dir, "hostdir.0", "dropping.data.1.0")
		g := binary.LittleEndian.AppendUint32(nil, 1)
		g = binary.LittleEndian.AppendUint32(g, uint32(len(dp)))
		g = append(g, dp...)
		g = binary.LittleEndian.AppendUint64(g, 2)
		g = append(g, index...)
		files[filepath.Join(dir, "meta", "global.index")] = g
	}
	for p, b := range files {
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return data
}

func TestV1ContainerBackCompat(t *testing.T) {
	for _, withGlobal := range []bool{false, true} {
		name := "droppings-only"
		if withGlobal {
			name = "with-global-index"
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original})
			want := buildLegacyContainer(t, r.roots[0], withGlobal)
			ctx := r.ctx(0, nil)

			readBack := func() {
				t.Helper()
				rd, err := r.m.OpenReader(ctx, "legacy")
				if err != nil {
					t.Fatal(err)
				}
				defer rd.Close()
				if !rd.Stats.CacheHit && rd.Stats.UsedGlobal != withGlobal {
					t.Fatalf("UsedGlobal = %v, want %v", rd.Stats.UsedGlobal, withGlobal)
				}
				if rd.Size() != int64(len(want)) {
					t.Fatalf("size %d, want %d", rd.Size(), len(want))
				}
				got, err := rd.ReadAt(0, rd.Size())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Materialize(), want) {
					t.Fatal("v1 container read back wrong bytes")
				}
			}
			readBack()

			crep, err := r.m.Check(ctx, "legacy")
			if err != nil {
				t.Fatal(err)
			}
			if !crep.OK() || crep.RawEntries != 2 || crep.Logical != 128 {
				t.Fatalf("check: %s", crep)
			}
			srep, err := r.m.Scrub(ctx, "legacy")
			if err != nil {
				t.Fatal(err)
			}
			if !srep.OK() || srep.IndexesChecked != 1 {
				t.Fatalf("scrub: %s", srep)
			}
			rrep, err := r.m.Recover(ctx, "legacy")
			if err != nil {
				t.Fatal(err)
			}
			if rrep.Intact != 1 || len(rrep.Rebuilt) != 0 || len(rrep.Unrecoverable) != 0 {
				t.Fatalf("recover: %+v", rrep)
			}
			readBack() // still readable after the recovery pass
		})
	}
}
