package plfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	iofs "io/fs"
	"path"
	"strings"
)

// Data-dropping framing: at close, each writer appends a recovery footer
// to its data dropping — a self-describing copy of its index entries —
// so a lost or corrupt index dropping can be rebuilt from the data alone
// (the plfs_recover tool).  Layout, little-endian:
//
//	v1: [ data ][ entries: n × EntryBytes ][ uint64 n ][ uint64 magic ]
//	v2: [ data ][ entries: n × EntryBytes ][ crcs: n × uint32 ]
//	    [ uint32 footer crc32c ][ uint32 0 ][ uint64 n ][ uint64 magic2 ]
//
// v2 (written under Options.Checksum) adds one CRC32C per entry's data
// extent — the end-to-end integrity record Scrub and Options.VerifyData
// check — plus a CRC over the footer itself.  The footer sits past every
// data extent, so physical offsets in the index are unaffected.  Writers
// that recorded no entries skip the footer, keeping empty droppings zero
// bytes.
const (
	frameMagic       = uint64(0x504c46535f524543) // "CER_SFLP" backwards: "PLFS_REC"
	frameMagic2      = uint64(0x504c46535f524332) // "PLFS_RC2"
	frameTrailerLen  = 16
	frameTrailer2Len = 24
)

// frameFooterLen returns the v1 footer size for an index of n entries.
func frameFooterLen(n int) int64 { return int64(n)*EntryBytes + frameTrailerLen }

// frameFooterLen2 returns the v2 footer size for an index of n entries.
func frameFooterLen2(n int) int64 { return int64(n)*(EntryBytes+4) + frameTrailer2Len }

// encodeFrameFooter serializes the v1 (unchecksummed) recovery footer.
func encodeFrameFooter(entries []Entry) []byte {
	buf := encodeEntries(entries)
	out := make([]byte, len(buf)+frameTrailerLen)
	copy(out, buf)
	binary.LittleEndian.PutUint64(out[len(buf):], uint64(len(entries)))
	binary.LittleEndian.PutUint64(out[len(buf)+8:], frameMagic)
	return out
}

// encodeFrameFooterSums serializes the v2 recovery footer with per-extent
// data CRCs.
func encodeFrameFooterSums(entries []Entry, sums []uint32) []byte {
	if len(sums) != len(entries) {
		panic("plfs: entry/checksum count mismatch")
	}
	body := encodeEntries(entries)
	out := make([]byte, 0, frameFooterLen2(len(entries)))
	out = append(out, body...)
	var b4 [4]byte
	for _, s := range sums {
		binary.LittleEndian.PutUint32(b4[:], s)
		out = append(out, b4[:]...)
	}
	crc := crc32.Checksum(out, castagnoli)
	var tr [frameTrailer2Len]byte
	binary.LittleEndian.PutUint32(tr[0:], crc)
	binary.LittleEndian.PutUint64(tr[8:], uint64(len(entries)))
	binary.LittleEndian.PutUint64(tr[16:], frameMagic2)
	return append(out, tr[:]...)
}

// readFrameFooter reads and validates the recovery footer of the data
// dropping at ref, returning the reconstructed entries, the per-extent
// data CRCs (nil for a v1 footer), and the size of the data region (the
// dropping minus its footer).
func (m *Mount) readFrameFooter(ctx Ctx, ref droppingRef) ([]Entry, []uint32, int64, error) {
	pol := m.opt.Retry
	b := ctx.Vols[ref.Vol]
	var entries []Entry
	var sums []uint32
	var dataEnd int64
	err := ctx.retry(pol, func() error {
		f, e := b.OpenRead(ref.Data)
		if e != nil {
			return e
		}
		defer f.Close()
		size := f.Size()
		if size < frameTrailerLen {
			return fmt.Errorf("plfs: %s: no recovery footer (%d bytes)", ref.Data, size)
		}
		tn := int64(frameTrailer2Len)
		if size < tn {
			tn = frameTrailerLen
		}
		pl, e := f.ReadAt(size-tn, tn)
		if e != nil {
			return e
		}
		tail := pl.Materialize()
		magic := binary.LittleEndian.Uint64(tail[len(tail)-8:])
		n := binary.LittleEndian.Uint64(tail[len(tail)-16 : len(tail)-8])
		var flen, trailer int64
		switch magic {
		case frameMagic:
			trailer = frameTrailerLen
			if n > uint64(size/EntryBytes) {
				return fmt.Errorf("plfs: %s: corrupt recovery footer (%d entries in %d bytes)", ref.Data, n, size)
			}
			flen = int64(n) * EntryBytes
		case frameMagic2:
			trailer = frameTrailer2Len
			if size < frameTrailer2Len || n > uint64(size/(EntryBytes+4)) {
				return fmt.Errorf("plfs: %s: corrupt recovery footer (%d entries in %d bytes)", ref.Data, n, size)
			}
			flen = int64(n) * (EntryBytes + 4)
		default:
			return fmt.Errorf("plfs: %s: no recovery footer (bad magic)", ref.Data)
		}
		if flen+trailer > size {
			return fmt.Errorf("plfs: %s: corrupt recovery footer (%d entries in %d bytes)", ref.Data, n, size)
		}
		pl, e = f.ReadAt(size-trailer-flen, flen)
		if e != nil {
			return e
		}
		body := pl.Materialize()
		var ss []uint32
		if magic == frameMagic2 {
			if got, want := crc32.Checksum(body, castagnoli), binary.LittleEndian.Uint32(tail[len(tail)-24:len(tail)-20]); got != want {
				return fmt.Errorf("plfs: %s: recovery footer checksum mismatch (crc32c %08x, trailer says %08x)", ref.Data, got, want)
			}
			if r := binary.LittleEndian.Uint32(tail[len(tail)-20 : len(tail)-16]); r != 0 {
				return fmt.Errorf("plfs: %s: corrupt recovery footer (reserved field %08x)", ref.Data, r)
			}
			ss = make([]uint32, n)
			sb := body[int64(n)*EntryBytes:]
			for i := range ss {
				ss[i] = binary.LittleEndian.Uint32(sb[i*4:])
			}
			body = body[:int64(n)*EntryBytes]
		}
		es, e := decodeEntries(body, 0)
		if e != nil {
			return fmt.Errorf("plfs: %s: corrupt recovery footer: %w", ref.Data, e)
		}
		dataEnd = size - trailer - flen
		var covered int64
		for _, ent := range es {
			if ent.Length <= 0 || ent.PhysOff < 0 || ent.PhysOff+ent.Length > dataEnd {
				return fmt.Errorf("plfs: %s: corrupt recovery footer (extent [%d,%d) outside %d data bytes)",
					ref.Data, ent.PhysOff, ent.PhysOff+ent.Length, dataEnd)
			}
			covered += ent.Length
		}
		if covered != dataEnd {
			return fmt.Errorf("plfs: %s: corrupt data framing (footer covers %d of %d data bytes)",
				ref.Data, covered, dataEnd)
		}
		entries, sums = es, ss
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return entries, sums, dataEnd, nil
}

// RecoverReport summarizes a Recover pass over one container.
type RecoverReport struct {
	Droppings     int      `json:"droppings"`      // droppings examined
	Intact        int      `json:"intact"`         // index present and consistent (or nothing to lose)
	Rebuilt       []string `json:"rebuilt"`        // index droppings reconstructed from data framing
	Unrecoverable []string `json:"unrecoverable"`  // data droppings with neither index nor usable footer
	DroppedGlobal bool     `json:"dropped_global"` // a corrupt flattened global index was removed
	RemovedTmp    []string `json:"removed_tmp"`    // orphaned commit temp files deleted
	Problems      []string `json:"problems"`       // human-readable detail per unrecoverable dropping
}

// OK reports whether every dropping is now reachable through an index.
func (r RecoverReport) OK() bool { return len(r.Unrecoverable) == 0 }

// String renders a human-readable summary.
func (r RecoverReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "droppings %d: intact %d, rebuilt %d, unrecoverable %d",
		r.Droppings, r.Intact, len(r.Rebuilt), len(r.Unrecoverable))
	if r.DroppedGlobal {
		b.WriteString("\nremoved corrupt global index")
	}
	for _, p := range r.RemovedTmp {
		b.WriteString("\nREMOVED TMP: " + p)
	}
	for _, p := range r.Rebuilt {
		b.WriteString("\nREBUILT: " + p)
	}
	for _, p := range r.Problems {
		b.WriteString("\nUNRECOVERABLE: " + p)
	}
	return b.String()
}

// Recover reconstructs lost or corrupt index droppings from their data
// droppings' recovery footers — the plfs_recover administrative tool.
// For every dropping whose index is missing or unreadable, the footer is
// validated and an index dropping rewritten from it; droppings with
// neither a parseable index nor a usable footer are reported
// unrecoverable (their bytes stay unreachable).  A corrupt flattened
// global index, which would keep masking the repaired per-writer
// indexes, is removed.  Recover returns an error only when the container
// itself cannot be examined; per-dropping failures land in the report.
func (m *Mount) Recover(ctx Ctx, rel string) (RecoverReport, error) {
	ctx = m.healthCtx(ctx)
	rel = clean(rel)
	rep := RecoverReport{}
	if ok, err := m.IsContainer(ctx, rel); err != nil {
		return rep, err
	} else if !ok {
		return rep, fmt.Errorf("plfs: recover %s: not a container: %w", rel, iofs.ErrNotExist)
	}
	pol := m.opt.Retry
	sp := ctx.Obs.StartSpan("recover")
	defer sp.End()

	// A corrupt global index hides the per-writer indexes in every read
	// mode; validate it first and clear it if unreadable.
	gsp := sp.Child("global-index")
	cpath, vc := m.containerPath(rel)
	gp := path.Join(cpath, metaDir, globalIndex)
	if pl, _, err := ctx.readAllRetried(ctx.Vols[vc], gp, pol); err == nil {
		if _, _, derr := decodeGlobalIndexAuto(pl.Materialize()); derr != nil {
			if rmErr := ctx.Vols[vc].Remove(gp); rmErr != nil && !errors.Is(rmErr, iofs.ErrNotExist) {
				gsp.End()
				return rep, rmErr
			}
			// Replica copies must go with the primary, or a later
			// replicated read would resurrect the corrupt index.
			m.removeReplicas(ctx, gp)
			rep.DroppedGlobal = true
		}
	} else if !errors.Is(err, iofs.ErrNotExist) {
		gsp.End()
		return rep, err
	}
	gsp.End()

	// Sweep orphaned commit temp files: a crash between create and
	// rename leaves "<final>.tmp.<rank>" debris that no reader consumes
	// but that would otherwise accumulate on the backing volumes.
	ssp := sp.Child("sweep")
	removedTmp, err := m.sweepTmpFiles(ctx, rel)
	ssp.End()
	if err != nil {
		return rep, err
	}
	rep.RemovedTmp = removedTmp

	wsp := sp.Child("walk")
	defer wsp.End()
	drops, err := m.listDroppings(ctx, rel)
	if err != nil {
		return rep, err
	}
	rep.Droppings = len(drops)
	changed := rep.DroppedGlobal
	for _, d := range drops {
		indexOK, indexCount := false, -1
		if d.Index != "" {
			if pl, _, err := ctx.readAllRetried(ctx.Vols[d.Vol], d.Index, pol); err == nil {
				if recs, derr := decodeIndexDropping(pl.Materialize(), 0); derr == nil {
					// The footer stays per-entry; compare expanded counts so a
					// run-compressed index matches its uncompressed footer.
					indexOK, indexCount = true, expandedCount(recs)
				}
			}
		}
		entries, _, _, footErr := m.readFrameFooter(ctx, d)
		switch {
		case footErr == nil && indexOK && indexCount == len(entries):
			rep.Intact++
		case footErr == nil:
			ipath, err := m.rebuildIndex(ctx, d, entries)
			if err != nil {
				rep.Unrecoverable = append(rep.Unrecoverable, d.Data)
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: rebuilding index: %v", d.Data, err))
				continue
			}
			rep.Rebuilt = append(rep.Rebuilt, ipath)
			changed = true
		case indexOK:
			// Legacy (unframed) dropping with a healthy index.
			rep.Intact++
		default:
			if fi, err := ctx.Vols[d.Vol].Stat(d.Data); err == nil && fi.Size == 0 && d.Index == "" {
				rep.Intact++ // an empty dropping has nothing to lose
				continue
			}
			rep.Unrecoverable = append(rep.Unrecoverable, d.Data)
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: %v", d.Data, footErr))
		}
	}
	if changed {
		m.invalidateState(rel, ctx.Tenant)
	}
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.recover.ops").Add(1)
		ctx.Obs.Counter("plfs.recover.rebuilt").Add(int64(len(rep.Rebuilt)))
		ctx.Obs.Counter("plfs.recover.unrecoverable").Add(int64(len(rep.Unrecoverable)))
	}
	return rep, nil
}

// rebuildIndex replaces d's index dropping with one reconstructed from
// footer entries, returning the index path written.  The replacement is
// committed atomically (temp + rename over the corrupt original), so a
// crash mid-rebuild leaves either the old index or the new one — never a
// torn rebuild — and the container stays recoverable from the footer.
func (m *Mount) rebuildIndex(ctx Ctx, d droppingRef, entries []Entry) (string, error) {
	ipath := d.Index
	if ipath == "" {
		dir, base := path.Split(d.Data)
		ipath = dir + indexPrefix + strings.TrimPrefix(base, dataPrefix)
	}
	recs := compressRecs(entries)
	if m.opt.NoRunCompression {
		recs = recsOf(entries)
	}
	buf := encodeRecs(recs)
	if m.opt.Checksum {
		buf = appendSumTrailer(buf, idxSumMagic)
	}
	if err := ctx.writeFileAtomic(ctx.Vols[d.Vol], ipath, buf, m.opt.Retry, true); err != nil {
		return "", err
	}
	// A rebuilt index re-enters the replication contract immediately
	// (replace semantics: stale replicas of the torn original converge).
	m.replicateFile(ctx, ipath, buf, m.opt.Retry)
	return ipath, nil
}
