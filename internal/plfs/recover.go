package plfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"strings"

	"plfs/internal/payload"
)

// Data-dropping framing: at close, each writer appends a recovery footer
// to its data dropping — a self-describing copy of its index entries —
// so a lost or corrupt index dropping can be rebuilt from the data alone
// (the plfs_recover tool).  Layout, little-endian:
//
//	[ data bytes ][ entries: n × EntryBytes ][ uint64 n ][ uint64 magic ]
//
// The footer sits past every data extent, so physical offsets in the
// index are unaffected.  Writers that recorded no entries skip the
// footer, keeping empty droppings zero bytes.
const (
	frameMagic      = uint64(0x504c46535f524543) // "CER_SFLP" backwards: "PLFS_REC"
	frameTrailerLen = 16
)

// frameFooterLen returns the footer size for an index of n entries.
func frameFooterLen(n int) int64 { return int64(n)*EntryBytes + frameTrailerLen }

// encodeFrameFooter serializes the recovery footer.
func encodeFrameFooter(entries []Entry) []byte {
	buf := encodeEntries(entries)
	out := make([]byte, len(buf)+frameTrailerLen)
	copy(out, buf)
	binary.LittleEndian.PutUint64(out[len(buf):], uint64(len(entries)))
	binary.LittleEndian.PutUint64(out[len(buf)+8:], frameMagic)
	return out
}

// readFrameFooter reads and validates the recovery footer of the data
// dropping at ref, returning the reconstructed entries and the size of
// the data region (the dropping minus its footer).
func (m *Mount) readFrameFooter(ctx Ctx, ref droppingRef) ([]Entry, int64, error) {
	pol := m.opt.Retry
	b := ctx.Vols[ref.Vol]
	var entries []Entry
	var dataEnd int64
	err := ctx.retry(pol, func() error {
		f, e := b.OpenRead(ref.Data)
		if e != nil {
			return e
		}
		defer f.Close()
		size := f.Size()
		if size < frameTrailerLen {
			return fmt.Errorf("plfs: %s: no recovery footer (%d bytes)", ref.Data, size)
		}
		pl, e := f.ReadAt(size-frameTrailerLen, frameTrailerLen)
		if e != nil {
			return e
		}
		tail := pl.Materialize()
		if binary.LittleEndian.Uint64(tail[8:]) != frameMagic {
			return fmt.Errorf("plfs: %s: no recovery footer (bad magic)", ref.Data)
		}
		n := binary.LittleEndian.Uint64(tail[:8])
		flen := int64(n) * EntryBytes
		if n > uint64(size/EntryBytes) || flen+frameTrailerLen > size {
			return fmt.Errorf("plfs: %s: corrupt recovery footer (%d entries in %d bytes)", ref.Data, n, size)
		}
		pl, e = f.ReadAt(size-frameTrailerLen-flen, flen)
		if e != nil {
			return e
		}
		es, e := decodeEntries(pl.Materialize(), 0)
		if e != nil {
			return fmt.Errorf("plfs: %s: corrupt recovery footer: %w", ref.Data, e)
		}
		dataEnd = size - frameTrailerLen - flen
		var covered int64
		for _, ent := range es {
			if ent.Length <= 0 || ent.PhysOff < 0 || ent.PhysOff+ent.Length > dataEnd {
				return fmt.Errorf("plfs: %s: corrupt recovery footer (extent [%d,%d) outside %d data bytes)",
					ref.Data, ent.PhysOff, ent.PhysOff+ent.Length, dataEnd)
			}
			covered += ent.Length
		}
		if covered != dataEnd {
			return fmt.Errorf("plfs: %s: corrupt data framing (footer covers %d of %d data bytes)",
				ref.Data, covered, dataEnd)
		}
		entries = es
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return entries, dataEnd, nil
}

// RecoverReport summarizes a Recover pass over one container.
type RecoverReport struct {
	Droppings     int      // droppings examined
	Intact        int      // index present and consistent (or nothing to lose)
	Rebuilt       []string // index droppings reconstructed from data framing
	Unrecoverable []string // data droppings with neither index nor usable footer
	DroppedGlobal bool     // a corrupt flattened global index was removed
	Problems      []string // human-readable detail per unrecoverable dropping
}

// OK reports whether every dropping is now reachable through an index.
func (r RecoverReport) OK() bool { return len(r.Unrecoverable) == 0 }

// String renders a human-readable summary.
func (r RecoverReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "droppings %d: intact %d, rebuilt %d, unrecoverable %d",
		r.Droppings, r.Intact, len(r.Rebuilt), len(r.Unrecoverable))
	if r.DroppedGlobal {
		b.WriteString("\nremoved corrupt global index")
	}
	for _, p := range r.Rebuilt {
		b.WriteString("\nREBUILT: " + p)
	}
	for _, p := range r.Problems {
		b.WriteString("\nUNRECOVERABLE: " + p)
	}
	return b.String()
}

// Recover reconstructs lost or corrupt index droppings from their data
// droppings' recovery footers — the plfs_recover administrative tool.
// For every dropping whose index is missing or unreadable, the footer is
// validated and an index dropping rewritten from it; droppings with
// neither a parseable index nor a usable footer are reported
// unrecoverable (their bytes stay unreachable).  A corrupt flattened
// global index, which would keep masking the repaired per-writer
// indexes, is removed.  Recover returns an error only when the container
// itself cannot be examined; per-dropping failures land in the report.
func (m *Mount) Recover(ctx Ctx, rel string) (RecoverReport, error) {
	rel = clean(rel)
	rep := RecoverReport{}
	if ok, err := m.IsContainer(ctx, rel); err != nil {
		return rep, err
	} else if !ok {
		return rep, fmt.Errorf("plfs: recover %s: not a container: %w", rel, iofs.ErrNotExist)
	}
	pol := m.opt.Retry

	// A corrupt global index hides the per-writer indexes in every read
	// mode; validate it first and clear it if unreadable.
	cpath, vc := m.containerPath(rel)
	gp := path.Join(cpath, metaDir, globalIndex)
	if pl, _, err := ctx.readAllRetried(ctx.Vols[vc], gp, pol); err == nil {
		if _, _, derr := decodeGlobalIndex(pl.Materialize()); derr != nil {
			if rmErr := ctx.Vols[vc].Remove(gp); rmErr != nil && !errors.Is(rmErr, iofs.ErrNotExist) {
				return rep, rmErr
			}
			rep.DroppedGlobal = true
		}
	} else if !errors.Is(err, iofs.ErrNotExist) {
		return rep, err
	}

	drops, err := m.listDroppings(ctx, rel)
	if err != nil {
		return rep, err
	}
	rep.Droppings = len(drops)
	changed := rep.DroppedGlobal
	for _, d := range drops {
		indexOK, indexCount := false, -1
		if d.Index != "" {
			if pl, _, err := ctx.readAllRetried(ctx.Vols[d.Vol], d.Index, pol); err == nil {
				if es, derr := decodeEntries(pl.Materialize(), 0); derr == nil {
					indexOK, indexCount = true, len(es)
				}
			}
		}
		entries, _, footErr := m.readFrameFooter(ctx, d)
		switch {
		case footErr == nil && indexOK && indexCount == len(entries):
			rep.Intact++
		case footErr == nil:
			ipath, err := m.rebuildIndex(ctx, d, entries)
			if err != nil {
				rep.Unrecoverable = append(rep.Unrecoverable, d.Data)
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: rebuilding index: %v", d.Data, err))
				continue
			}
			rep.Rebuilt = append(rep.Rebuilt, ipath)
			changed = true
		case indexOK:
			// Legacy (unframed) dropping with a healthy index.
			rep.Intact++
		default:
			if fi, err := ctx.Vols[d.Vol].Stat(d.Data); err == nil && fi.Size == 0 && d.Index == "" {
				rep.Intact++ // an empty dropping has nothing to lose
				continue
			}
			rep.Unrecoverable = append(rep.Unrecoverable, d.Data)
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: %v", d.Data, footErr))
		}
	}
	if changed {
		st := m.stateOf(rel)
		st.mu.Lock()
		st.gen++
		st.builtKey, st.built = "", nil
		st.parsed = map[string][]Entry{}
		st.mu.Unlock()
	}
	return rep, nil
}

// rebuildIndex replaces d's index dropping with one reconstructed from
// footer entries, returning the index path written.
func (m *Mount) rebuildIndex(ctx Ctx, d droppingRef, entries []Entry) (string, error) {
	pol := m.opt.Retry
	ipath := d.Index
	if ipath == "" {
		dir, base := path.Split(d.Data)
		ipath = dir + indexPrefix + strings.TrimPrefix(base, dataPrefix)
	} else if err := ctx.Vols[d.Vol].Remove(ipath); err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return "", err
	}
	f, err := ctx.createRetried(ctx.Vols[d.Vol], ipath, pol)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := payload.FromBytes(encodeEntries(entries))
	if err := ctx.retry(pol, func() error {
		_, e := f.Append(buf)
		return e
	}); err != nil {
		return "", err
	}
	return ipath, nil
}
