package plfs

// Scrub is the full-container integrity walk (plfsctl scrub): it
// verifies every checksum the container carries (global index, index
// droppings, recovery footers, per-extent data CRCs), cross-checks each
// index against its dropping's extents and coverage, sweeps orphaned
// commit temp files, and flags stale openhosts records.  Unlike Check it
// reads data bytes (when checksummed footers are present), so it is the
// tool that catches silent corruption, not just structural damage.

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"
	"strings"
)

// ScrubProblem is one finding of a Scrub walk.
type ScrubProblem struct {
	// Kind is a machine-matchable class: "global-index", "orphan-tmp",
	// "stale-openhost", "orphan-index", "index-corrupt", "extent-bounds",
	// "coverage", "torn-tail", "index-footer-mismatch", "checksum-data",
	// "unreachable".
	Kind string `json:"kind"`
	// Path is the backend path the problem was found at.
	Path string `json:"path"`
	// Extent is the physical byte range "[lo,hi)" for extent-scoped
	// problems (checksum mismatches, out-of-bounds records).
	Extent string `json:"extent,omitempty"`
	// Detail is the human-readable description.
	Detail string `json:"detail"`
}

// String renders one problem line.
func (p ScrubProblem) String() string {
	s := p.Kind + ": " + p.Path
	if p.Extent != "" {
		s += " extent " + p.Extent
	}
	if p.Detail != "" {
		s += ": " + p.Detail
	}
	return s
}

// ScrubReport summarizes a Scrub walk over one container.
type ScrubReport struct {
	Droppings      int            `json:"droppings"`       // data droppings examined
	IndexesChecked int            `json:"indexes_checked"` // index droppings decoded
	ExtentsChecked int            `json:"extents_checked"` // data extents CRC-verified
	BytesVerified  int64          `json:"bytes_verified"`  // data bytes CRC-verified
	GlobalIndex    bool           `json:"global_index"`    // a flattened global index exists
	RemovedTmp     []string       `json:"removed_tmp"`     // orphaned commit temp files deleted
	StaleOpenHosts []string       `json:"stale_openhosts"` // openhosts records still present
	Problems       []ScrubProblem `json:"problems"`
}

// OK reports whether the walk found nothing wrong.
func (r ScrubReport) OK() bool { return len(r.Problems) == 0 }

// String renders a human-readable summary.
func (r ScrubReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "droppings %d, indexes %d, extents verified %d (%d bytes)",
		r.Droppings, r.IndexesChecked, r.ExtentsChecked, r.BytesVerified)
	if r.GlobalIndex {
		b.WriteString(", global index present")
	}
	for _, p := range r.RemovedTmp {
		b.WriteString("\nREMOVED TMP: " + p)
	}
	if r.OK() {
		b.WriteString("\nOK")
	} else {
		for _, p := range r.Problems {
			b.WriteString("\nPROBLEM: " + p.String())
		}
	}
	return b.String()
}

func (r *ScrubReport) problem(kind, path, extent, format string, args ...any) {
	r.Problems = append(r.Problems, ScrubProblem{
		Kind: kind, Path: path, Extent: extent, Detail: fmt.Sprintf(format, args...),
	})
}

// sweepTmpFiles removes orphaned atomic-commit temp files ("<final>.tmp.<rank>")
// from the container's metadir and hostdirs, returning the removed
// paths.  Temp files are invisible to every reader, so removal is always
// safe: any commit still in flight recreates its temp from scratch.
func (m *Mount) sweepTmpFiles(ctx Ctx, rel string) ([]string, error) {
	type dirRef struct {
		b   Backend
		dir string
	}
	cpath, vc := m.containerPath(rel)
	dirs := []dirRef{{ctx.Vols[vc], path.Join(cpath, metaDir)}}
	ids, moved, err := m.hostdirIDs(ctx, rel)
	if err != nil {
		return nil, err
	}
	for _, i := range ids {
		for _, loc := range m.hostdirLocs(rel, i, moved) {
			if m.volDegraded(ctx, loc.vol) {
				// Temp files are invisible to readers; sweeping this hostdir
				// can wait for the volume's breaker to close rather than
				// grinding a degraded-latency listing every pass.
				continue
			}
			dirs = append(dirs, dirRef{ctx.Vols[loc.vol], loc.path})
		}
	}
	var removed []string
	for _, d := range dirs {
		ents, err := d.b.ReadDir(d.dir)
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				continue
			}
			return removed, err
		}
		for _, e := range ents {
			if e.Dir || !isTmpName(e.Name) {
				continue
			}
			p := path.Join(d.dir, e.Name)
			if err := d.b.Remove(p); err != nil && !errors.Is(err, iofs.ErrNotExist) {
				return removed, err
			}
			removed = append(removed, p)
		}
	}
	sort.Strings(removed)
	return removed, nil
}

// Scrub walks one container end to end and returns an integrity report.
// It returns an error only when the container itself cannot be examined;
// individual findings land in the report.  Scrub deletes orphaned commit
// temp files as it goes (reported in RemovedTmp and as problems, since
// they indicate a crashed commit).  It is an offline tool: openhosts
// records are reported stale because no writer should be active while
// scrubbing.
func (m *Mount) Scrub(ctx Ctx, rel string) (ScrubReport, error) {
	rel = clean(rel)
	rep := ScrubReport{}
	if ok, err := m.IsContainer(ctx, rel); err != nil {
		return rep, err
	} else if !ok {
		return rep, fmt.Errorf("plfs: scrub %s: not a container: %w", rel, iofs.ErrNotExist)
	}
	pol := m.opt.Retry
	cpath, vc := m.containerPath(rel)
	sp := ctx.Obs.StartSpan("scrub")
	defer sp.End()
	defer func() {
		if ctx.Obs != nil {
			ctx.Obs.Counter("plfs.scrub.ops").Add(1)
			ctx.Obs.Counter("plfs.scrub.problems").Add(int64(len(rep.Problems)))
			ctx.Obs.Counter("plfs.scrub.bytes_verified").Add(rep.BytesVerified)
		}
	}()

	// Flattened global index: decode (verifying its trailer if present).
	gp := path.Join(cpath, metaDir, globalIndex)
	if pl, _, err := ctx.readAllRetried(ctx.Vols[vc], gp, pol); err == nil {
		rep.GlobalIndex = true
		if _, _, derr := decodeGlobalIndexAuto(pl.Materialize()); derr != nil {
			rep.problem("global-index", gp, "", "%v", derr)
		}
	} else if !errors.Is(err, iofs.ErrNotExist) {
		return rep, err
	}

	// Orphaned commit temps: delete and report.
	removed, err := m.sweepTmpFiles(ctx, rel)
	if err != nil {
		return rep, err
	}
	rep.RemovedTmp = removed
	for _, p := range removed {
		rep.problem("orphan-tmp", p, "", "orphaned commit temp file (removed)")
	}

	// Openhosts records left by writers that never deregistered.
	if ents, err := ctx.Vols[vc].ReadDir(path.Join(cpath, openHostsDir)); err == nil {
		for _, e := range ents {
			p := path.Join(cpath, openHostsDir, e.Name)
			rep.StaleOpenHosts = append(rep.StaleOpenHosts, p)
			rep.problem("stale-openhost", p, "", "writer registered but never closed")
		}
	} else if !errors.Is(err, iofs.ErrNotExist) {
		return rep, err
	}

	// Per-dropping walk: raw hostdir scan so orphan index droppings
	// (index without data) are visible too.
	wsp := sp.Child("walk")
	defer wsp.End()
	ids, moved, err := m.hostdirIDs(ctx, rel)
	if err != nil {
		return rep, err
	}
	for _, i := range ids {
		// Forwarded location first: mid-migration copies are byte-identical,
		// so a stamp seen at the forwarding target shadows the original.
		byStamp := map[string]*droppingRef{}
		for _, loc := range m.hostdirLocs(rel, i, moved) {
			hents, err := ctx.Vols[loc.vol].ReadDir(loc.path)
			if err != nil {
				if errors.Is(err, iofs.ErrNotExist) {
					continue
				}
				return rep, err
			}
			claimed := func(stamp string) *droppingRef {
				r := byStamp[stamp]
				if r == nil {
					r = &droppingRef{Vol: loc.vol}
					byStamp[stamp] = r
				} else if r.Vol != loc.vol {
					return nil
				}
				return r
			}
			for _, e := range hents {
				switch {
				case isTmpName(e.Name): // already swept above
				case strings.HasPrefix(e.Name, dataPrefix):
					stamp := strings.TrimPrefix(e.Name, dataPrefix)
					if r := claimed(stamp); r != nil {
						r.Data = path.Join(loc.path, e.Name)
					}
				case strings.HasPrefix(e.Name, indexPrefix):
					stamp := strings.TrimPrefix(e.Name, indexPrefix)
					if r := claimed(stamp); r != nil {
						r.Index = path.Join(loc.path, e.Name)
					}
				}
			}
		}
		stamps := make([]string, 0, len(byStamp))
		for s := range byStamp {
			stamps = append(stamps, s)
		}
		sort.Strings(stamps)
		for _, s := range stamps {
			d := byStamp[s]
			if d.Data == "" {
				rep.problem("orphan-index", d.Index, "", "index dropping with no data dropping")
				continue
			}
			rep.Droppings++
			m.scrubDropping(ctx, *d, &rep)
		}
	}
	return rep, nil
}

// scrubDropping runs the per-dropping checks: footer parse, index
// decode, extent bounds, coverage, index-vs-footer agreement, and (for
// checksummed footers) a CRC verification of every data extent.
func (m *Mount) scrubDropping(ctx Ctx, d droppingRef, rep *ScrubReport) {
	pol := m.opt.Retry
	fi, err := ctx.Vols[d.Vol].Stat(d.Data)
	if err != nil {
		rep.problem("unreachable", d.Data, "", "stat: %v", err)
		return
	}
	fentries, sums, dataEnd, footErr := m.readFrameFooter(ctx, d)
	if footErr != nil {
		dataEnd = fi.Size
	}

	var ientries []Entry
	indexOK := false
	if d.Index != "" {
		pl, _, err := ctx.readAllRetried(ctx.Vols[d.Vol], d.Index, pol)
		if err != nil {
			rep.problem("index-corrupt", d.Index, "", "read: %v", err)
		} else if irecs, derr := decodeIndexDropping(pl.Materialize(), 0); derr != nil {
			rep.problem("index-corrupt", d.Index, "", "%v", derr)
		} else {
			// Bounds, coverage, and footer checks work per entry; expand
			// run records so each element is checked individually.
			ientries = expandRecs(irecs)
			indexOK = true
			rep.IndexesChecked++
		}
	}

	switch {
	case indexOK:
		var covered int64
		for _, e := range ientries {
			if e.Length <= 0 || e.PhysOff < 0 || e.PhysOff+e.Length > dataEnd {
				rep.problem("extent-bounds", d.Index,
					fmt.Sprintf("[%d,%d)", e.PhysOff, e.PhysOff+e.Length),
					"index record outside %d data bytes", dataEnd)
				continue
			}
			covered += e.Length
		}
		if covered != dataEnd {
			if footErr != nil && covered < dataEnd {
				// Without a footer, trailing bytes beyond indexed coverage
				// are a torn append tail (e.g. a crash after Sync spilled
				// the index): invisible to readers, but worth reporting.
				rep.problem("torn-tail", d.Data, fmt.Sprintf("[%d,%d)", covered, dataEnd),
					"%d data bytes beyond indexed coverage", dataEnd-covered)
			} else {
				rep.problem("coverage", d.Data, "", "index covers %d of %d data bytes", covered, dataEnd)
			}
		}
		if footErr == nil && len(fentries) != len(ientries) {
			rep.problem("index-footer-mismatch", d.Index, "",
				"index has %d entries, recovery footer has %d", len(ientries), len(fentries))
		}
	case footErr == nil:
		// No usable index, but the footer can rebuild it.
		if fi.Size > 0 {
			rep.problem("unreachable", d.Data, "",
				"no index records (%d bytes; recoverable via plfsctl recover)", fi.Size)
		}
	default:
		if fi.Size > 0 {
			rep.problem("unreachable", d.Data, "", "no index records and no recovery footer (%d bytes)", fi.Size)
		}
	}

	// End-to-end data verification from the checksummed footer.
	if footErr != nil || sums == nil {
		return
	}
	f, err := ctx.openReadRetried(ctx.Vols[d.Vol], d.Data, pol)
	if err != nil {
		rep.problem("unreachable", d.Data, "", "open: %v", err)
		return
	}
	defer f.Close()
	for i, e := range fentries {
		var got uint32
		readErr := ctx.retry(pol, func() error {
			l, e2 := f.ReadAt(e.PhysOff, e.Length)
			if e2 != nil {
				return e2
			}
			got = listCRC(0, l)
			return nil
		})
		extent := fmt.Sprintf("[%d,%d)", e.PhysOff, e.PhysOff+e.Length)
		if readErr != nil {
			rep.problem("unreachable", d.Data, extent, "read: %v", readErr)
			continue
		}
		rep.ExtentsChecked++
		rep.BytesVerified += e.Length
		if got != sums[i] {
			rep.problem("checksum-data", d.Data, extent, "data crc32c %08x, footer says %08x", got, sums[i])
		}
	}
}
