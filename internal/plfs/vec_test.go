package plfs_test

import (
	"testing"

	"plfs/internal/extent"
	"plfs/internal/localcomm"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestWritevSingleBackendAppend pins the O(1)-backend-ops property of
// list I/O through PLFS: one Writev call with K strided extents must land
// as ONE data-dropping append (osfs implements BatchAppender) and K index
// entries — not K appends.  This is the whole point of pushing the
// vectored call down the stack instead of looping at the top.
func TestWritevSingleBackendAppend(t *testing.T) {
	const n, k = 4, 16
	const bs = int64(512)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		w, err := r.m.Create(ctx, "vec")
		if err != nil {
			t.Errorf("rank %d create: %v", rank, err)
			return
		}
		segs := make([]extent.Ext, k)
		var data payload.List
		for i := 0; i < k; i++ {
			off := int64(i*n+rank) * bs
			segs[i] = extent.Ext{Off: off, Len: bs}
			data = data.Append(payload.Synthetic(uint64(rank+1), off, bs))
		}
		if err := w.Writev(segs, data); err != nil {
			t.Errorf("rank %d writev: %v", rank, err)
		}
		if w.Stats.VecOps != 1 || w.Stats.Segs != k {
			t.Errorf("rank %d: VecOps=%d Segs=%d, want 1/%d", rank, w.Stats.VecOps, w.Stats.Segs, k)
		}
		if err := w.Close(); err != nil {
			t.Errorf("rank %d close: %v", rank, err)
		}
		// The acceptance criterion: K extents, one physical append.
		if w.Stats.Appends != 1 {
			t.Errorf("rank %d: %d backend appends for one Writev, want 1", rank, w.Stats.Appends)
		}
	})

	// Read side: one ReadAtv over the rank's extents is one vectored call,
	// content-verified per segment.
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		rd, err := r.m.OpenReader(ctx, "vec")
		if err != nil {
			t.Errorf("rank %d open: %v", rank, err)
			return
		}
		defer rd.Close()
		segs := make([]extent.Ext, k)
		var want payload.List
		for i := 0; i < k; i++ {
			off := int64(i*n+rank) * bs
			segs[i] = extent.Ext{Off: off, Len: bs}
			want = want.Append(payload.Synthetic(uint64(rank+1), off, bs))
		}
		got, err := rd.ReadAtv(segs)
		if err != nil {
			t.Errorf("rank %d readv: %v", rank, err)
			return
		}
		if !payload.ContentEqual(got, want) {
			t.Errorf("rank %d: ReadAtv content mismatch", rank)
		}
		if rd.ReadStats.VecOps != 1 || rd.ReadStats.VecSegs != k {
			t.Errorf("rank %d: VecOps=%d VecSegs=%d, want 1/%d",
				rank, rd.ReadStats.VecOps, rd.ReadStats.VecSegs, k)
		}
	})
}

// TestWritevMatchesWriteLoop checks that a vectored write produces a file
// byte-identical to the same extents written one at a time.
func TestWritevMatchesWriteLoop(t *testing.T) {
	const n, k = 2, 8
	const bs = int64(256)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		// Loop file.
		w, err := r.m.Create(ctx, "loop")
		if err != nil {
			t.Errorf("rank %d create: %v", rank, err)
			return
		}
		for i := 0; i < k; i++ {
			off := int64(i*n+rank) * bs
			if err := w.Write(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
				t.Errorf("rank %d write: %v", rank, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Errorf("rank %d close: %v", rank, err)
		}
		// Vectored file, same extents in one call.
		wv, err := r.m.Create(ctx, "vec")
		if err != nil {
			t.Errorf("rank %d create: %v", rank, err)
			return
		}
		segs := make([]extent.Ext, k)
		var data payload.List
		for i := 0; i < k; i++ {
			off := int64(i*n+rank) * bs
			segs[i] = extent.Ext{Off: off, Len: bs}
			data = data.Append(payload.Synthetic(uint64(rank+1), off, bs))
		}
		if err := wv.Writev(segs, data); err != nil {
			t.Errorf("rank %d writev: %v", rank, err)
		}
		if err := wv.Close(); err != nil {
			t.Errorf("rank %d close: %v", rank, err)
		}
	})
	ctx := r.ctx(0, localcomm.New(1)[0])
	for _, name := range []string{"loop", "vec"} {
		rd, err := r.m.OpenReader(ctx, name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		verifyN1(t, rd, n, k, bs)
		rd.Close()
	}
}
