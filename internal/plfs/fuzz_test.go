package plfs

// Fuzz targets for every parser that consumes bytes a crash or bit rot
// may have mangled: index droppings, the global index, and the recovery
// footer.  The contract under arbitrary input is: return an error —
// never panic, never allocate proportionally to a forged count field,
// never silently yield entries that disagree with the input.  Seeds are
// exercised by plain `go test` too, so the corpus doubles as a
// regression suite.

import (
	"bytes"
	"encoding/binary"
	iofs "io/fs"
	"testing"

	"plfs/internal/payload"
)

// memFS is a tiny in-memory Backend so footer parsing can be fuzzed
// without touching disk (and without importing osfs, which would cycle).
type memFS struct{ files map[string][]byte }

func newMemFS() *memFS { return &memFS{files: map[string][]byte{}} }

func (m *memFS) Mkdir(string) error { return nil }

func (m *memFS) Create(p string) (File, error) {
	m.files[p] = nil
	return &memFile{fs: m, p: p}, nil
}

func (m *memFS) OpenRead(p string) (File, error) {
	if _, ok := m.files[p]; !ok {
		return nil, iofs.ErrNotExist
	}
	return &memFile{fs: m, p: p}, nil
}

func (m *memFS) OpenWrite(p string) (File, error) { return m.Create(p) }

func (m *memFS) Stat(p string) (Info, error) {
	b, ok := m.files[p]
	if !ok {
		return Info{}, iofs.ErrNotExist
	}
	return Info{Name: p, Size: int64(len(b))}, nil
}

func (m *memFS) ReadDir(string) ([]Info, error) { return nil, nil }

func (m *memFS) Remove(p string) error {
	delete(m.files, p)
	return nil
}

func (m *memFS) Rename(a, b string) error {
	m.files[b] = m.files[a]
	delete(m.files, a)
	return nil
}

type memFile struct {
	fs *memFS
	p  string
}

func (f *memFile) WriteAt(off int64, pl payload.Payload) error {
	b := f.fs.files[f.p]
	end := off + pl.Len()
	for int64(len(b)) < end {
		b = append(b, 0)
	}
	copy(b[off:end], pl.Materialize())
	f.fs.files[f.p] = b
	return nil
}

func (f *memFile) Append(pl payload.Payload) (int64, error) {
	off := int64(len(f.fs.files[f.p]))
	f.fs.files[f.p] = append(f.fs.files[f.p], pl.Materialize()...)
	return off, nil
}

func (f *memFile) ReadAt(off, n int64) (payload.List, error) {
	b := f.fs.files[f.p]
	if off < 0 || off+n > int64(len(b)) {
		return nil, iofs.ErrNotExist
	}
	out := make([]byte, n)
	copy(out, b[off:off+n])
	return payload.List{payload.FromBytes(out)}, nil
}

func (f *memFile) Size() int64  { return int64(len(f.fs.files[f.p])) }
func (f *memFile) Close() error { return nil }

// fuzzEntries is a small well-formed entry set shared by the seeds.
func fuzzEntries() []Entry {
	return []Entry{
		{LogicalOff: 0, Length: 64, PhysOff: 0, Timestamp: 1, Dropping: 0, Rank: 0},
		{LogicalOff: 128, Length: 64, PhysOff: 64, Timestamp: 2, Dropping: 0, Rank: 1},
	}
}

// fuzzRecs is a mixed record set — a plain entry plus a strided run — so
// the seeds exercise the v2 run-record framing.
func fuzzRecs() []Rec {
	return []Rec{
		{Entry: Entry{LogicalOff: 0, Length: 64, PhysOff: 0, Timestamp: 1}},
		{Entry: Entry{LogicalOff: 1 << 10, Length: 64, PhysOff: 64, Timestamp: 2}, Count: 8, Stride: 512},
	}
}

func flipped(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i%len(out)] ^= 0x40
	return out
}

func FuzzDecodeIndexDropping(f *testing.F) {
	raw := encodeEntries(fuzzEntries())
	sum := appendSumTrailer(raw, idxSumMagic)
	v2 := encodeRecs(fuzzRecs())
	v2sum := appendSumTrailer(v2, idxSumMagic)
	f.Add([]byte{})
	f.Add(raw)
	f.Add(sum)
	f.Add(v2)
	f.Add(v2sum)
	f.Add(flipped(sum, 3))
	f.Add(flipped(v2, 11))
	f.Add(raw[:len(raw)-1])
	f.Add(sum[:len(sum)-8])
	f.Add(v2[:len(v2)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeIndexDropping(data, 7)
		if err != nil {
			return
		}
		// Every record costs at least EntryBytes on the wire in either
		// format generation, so this bounds allocation from forged counts.
		if len(recs)*EntryBytes > len(data) {
			t.Fatalf("%d records from %d bytes: over-allocated", len(recs), len(data))
		}
		for _, rec := range recs {
			if rec.Dropping != 7 {
				t.Fatalf("dropping id not rewritten: %d", rec.Dropping)
			}
		}
	})
}

func FuzzDecodeGlobalIndex(f *testing.F) {
	raw := encodeGlobalIndex([]string{"hostdir.0/dropping.data.1.0"}, fuzzEntries())
	sum := appendSumTrailer(raw, gidxSumMagic)
	v2 := encodeGlobalIndexV2([]string{"hostdir.0/dropping.data.1.0"}, fuzzRecs())
	v2sum := appendSumTrailer(v2, gidxSumMagic)
	// Regression: a forged entry count of 2^63 made ne*EntryBytes wrap to
	// 0, pass the length check, and panic in make.
	forged := make([]byte, 12)
	binary.LittleEndian.PutUint64(forged[4:], 1<<63)
	f.Add([]byte{})
	f.Add(raw)
	f.Add(sum)
	f.Add(v2)
	f.Add(v2sum)
	f.Add(forged)
	f.Add(flipped(sum, 9))
	f.Add(flipped(v2, 17))
	f.Add(raw[:len(raw)-5])
	f.Add(v2[:len(v2)-7])
	f.Fuzz(func(t *testing.T, data []byte) {
		paths, recs, err := decodeGlobalIndexAuto(data)
		if err != nil {
			return
		}
		if len(recs)*EntryBytes > len(data) || len(paths) > len(data) {
			t.Fatalf("%d records, %d paths from %d bytes: over-allocated",
				len(recs), len(paths), len(data))
		}
		// Successful decodes must round-trip bit-exactly: anything else
		// means the parser silently reinterpreted mangled input.  Re-encode
		// in whichever format generation the input was framed as.
		body, _, _ := splitSumTrailer(data, gidxSumMagic)
		var re []byte
		if len(body) >= 8 && binary.LittleEndian.Uint64(body) == gidxV2Magic {
			re = encodeGlobalIndexV2(paths, recs)
		} else {
			re = encodeGlobalIndex(paths, expandRecs(recs))
		}
		if !bytes.Equal(re, body) {
			t.Fatal("decode/encode round trip changed the global index")
		}
	})
}

// fuzzFooterRead parses data as a data-dropping file through the real
// footer reader.
func fuzzFooterRead(data []byte) ([]Entry, []uint32, int64, error) {
	fs := newMemFS()
	fs.files["d"] = data
	m := NewMount([]string{"/"}, Options{})
	ctx := Ctx{Vols: []Backend{fs}}
	return m.readFrameFooter(ctx, droppingRef{Data: "d", Vol: 0})
}

func FuzzFrameFooter(f *testing.F) {
	entries := fuzzEntries()
	body := make([]byte, 128) // the 128 data bytes the entries cover
	for i := range body {
		body[i] = byte(i)
	}
	v1 := append(append([]byte(nil), body...), encodeFrameFooter(entries)...)
	v2 := append(append([]byte(nil), body...),
		encodeFrameFooterSums(entries, []uint32{0xdead, 0xbeef})...)
	f.Add([]byte{})
	f.Add(body)
	f.Add(v1)
	f.Add(v2)
	f.Add(v1[:len(v1)-3])
	f.Add(v2[:len(v2)-9])
	f.Add(flipped(v2, len(v2)-5))
	f.Add(flipped(v2, len(body)+2))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, sums, dataEnd, err := fuzzFooterRead(data)
		if err != nil {
			return
		}
		if len(entries)*EntryBytes > len(data) {
			t.Fatalf("%d entries from %d bytes: over-allocated", len(entries), len(data))
		}
		if sums != nil && len(sums) != len(entries) {
			t.Fatalf("%d sums for %d entries", len(sums), len(entries))
		}
		if dataEnd < 0 || dataEnd > int64(len(data)) {
			t.Fatalf("dataEnd %d outside [0,%d]", dataEnd, len(data))
		}
		for _, e := range entries {
			if e.Length <= 0 || e.PhysOff < 0 || e.PhysOff+e.Length > dataEnd {
				t.Fatalf("accepted extent [%d,%d) outside %d data bytes",
					e.PhysOff, e.PhysOff+e.Length, dataEnd)
			}
		}
	})
}

// TestEveryFooterBitFlipRejected proves the checksummed (v2) footer has
// no silently-accepted corruption: flipping any single byte of the
// footer region makes the parse fail (data-region flips are the data
// checksums' job, covered by the scrub tests).
func TestEveryFooterBitFlipRejected(t *testing.T) {
	entries := fuzzEntries()
	body := make([]byte, 128)
	foot := encodeFrameFooterSums(entries, []uint32{1, 2})
	file := append(append([]byte(nil), body...), foot...)
	for i := len(body); i < len(file); i++ {
		mangled := append([]byte(nil), file...)
		mangled[i] ^= 0x10
		if _, _, _, err := fuzzFooterRead(mangled); err == nil {
			t.Fatalf("flip at byte %d (footer offset %d) parsed cleanly", i, i-len(body))
		}
	}
}

// TestEveryIndexTrailerBitFlipRejected is the same property for
// checksummed index droppings: every single-byte flip must error.
func TestEveryIndexTrailerBitFlipRejected(t *testing.T) {
	file := appendSumTrailer(encodeEntries(fuzzEntries()), idxSumMagic)
	for i := range file {
		mangled := append([]byte(nil), file...)
		mangled[i] ^= 0x10
		if _, err := decodeIndexDropping(mangled, 0); err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", i)
		}
	}
}
