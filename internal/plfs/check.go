package plfs

import (
	"fmt"
	"path"
	"strings"
)

// CheckReport summarizes a container integrity check (the plfs_check
// administrative tool): structural problems found in the container's
// droppings and metadata.
type CheckReport struct {
	Droppings  int      `json:"droppings"`
	RawEntries int      `json:"raw_entries"`
	Segments   int      `json:"segments"`
	Logical    int64    `json:"logical"`   // logical size from the index
	MetaSize   int64    `json:"meta_size"` // logical size cached in the metadir (-1 if absent)
	Problems   []string `json:"problems"`
}

// OK reports whether the container passed every check.
func (r CheckReport) OK() bool { return len(r.Problems) == 0 }

// String renders a human-readable summary.
func (r CheckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "droppings %d, raw entries %d, resolved segments %d, logical %d",
		r.Droppings, r.RawEntries, r.Segments, r.Logical)
	if r.MetaSize >= 0 {
		fmt.Fprintf(&b, ", meta size %d", r.MetaSize)
	}
	if r.OK() {
		b.WriteString("\nOK")
	} else {
		for _, p := range r.Problems {
			b.WriteString("\nPROBLEM: " + p)
		}
	}
	return b.String()
}

// Check verifies a container's structural integrity: every index record
// must point inside its data dropping, orphaned index droppings are
// flagged, and the cached logical size must match the index.
func (m *Mount) Check(ctx Ctx, rel string) (CheckReport, error) {
	rel = clean(rel)
	rep := CheckReport{MetaSize: -1}
	if ok, err := m.IsContainer(ctx, rel); err != nil {
		return rep, err
	} else if !ok {
		return rep, fmt.Errorf("plfs: check %s: not a container", rel)
	}
	drops, err := m.listDroppings(ctx, rel)
	if err != nil {
		return rep, err
	}
	rep.Droppings = len(drops)

	r := &Reader{m: m, ctx: ctx, rel: rel, handles: map[int32]File{}}
	shards := make([][]Entry, 0, len(drops))
	paths := make([]string, len(drops))
	sizes := make([]int64, len(drops))
	for i, d := range drops {
		paths[i] = d.Data
		fi, err := ctx.Vols[d.Vol].Stat(d.Data)
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("data dropping unreadable: %s: %v", d.Data, err))
			continue
		}
		sizes[i] = fi.Size
		if d.Index == "" {
			if fi.Size > 0 {
				note := "unreachable"
				if _, _, _, ferr := m.readFrameFooter(ctx, d); ferr == nil {
					note = "recoverable via plfsctl recover"
				}
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("data dropping with no index records: %s (%d bytes %s)", d.Data, fi.Size, note))
			}
			continue
		}
		recs, err := r.readShard(d, int32(i))
		if err != nil {
			rep.Problems = append(rep.Problems, fmt.Sprintf("index dropping corrupt: %s: %v", d.Index, err))
			continue
		}
		// Per-entry structural checks: expand run records so every element
		// is bounds-checked, and so the footer-length arithmetic below sees
		// the same entry count the recovery footer records.
		sh := expandRecs(recs)
		var covered int64
		for _, e := range sh {
			if e.Length < 0 || e.PhysOff < 0 || e.PhysOff+e.Length > fi.Size {
				rep.Problems = append(rep.Problems, fmt.Sprintf(
					"index record out of bounds: %s: phys [%d,%d) beyond %d bytes",
					d.Index, e.PhysOff, e.PhysOff+e.Length, fi.Size))
			}
			covered += e.Length
		}
		// Framed droppings carry a recovery footer past the data extents,
		// so the index legitimately covers size minus the footer; a parsed
		// footer gives the exact data region, legacy sizes are inferred.
		expect := fi.Size
		if _, _, dataEnd, ferr := m.readFrameFooter(ctx, d); ferr == nil {
			expect = dataEnd
		}
		if covered != expect && covered != fi.Size &&
			covered+frameFooterLen(len(sh)) != fi.Size && covered+frameFooterLen2(len(sh)) != fi.Size {
			rep.Problems = append(rep.Problems, fmt.Sprintf(
				"dropping coverage mismatch: %s: index covers %d of %d bytes", d.Data, covered, fi.Size))
		}
		rep.RawEntries += len(sh)
		shards = append(shards, sh)
	}
	ix := BuildIndex(shards, paths)
	rep.Segments = ix.Segments()
	rep.Logical = ix.Size()

	// Compare against the cached size records.
	cpath, vc := m.containerPath(rel)
	ents, err := ctx.Vols[vc].ReadDir(path.Join(cpath, metaDir))
	if err == nil {
		if n, ok := cachedSize(ents); ok {
			rep.MetaSize = n
		}
	}
	if rep.MetaSize >= 0 && rep.MetaSize != rep.Logical {
		rep.Problems = append(rep.Problems, fmt.Sprintf(
			"size record %d disagrees with index logical size %d", rep.MetaSize, rep.Logical))
	}
	return rep, nil
}
