package plfs_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestServiceRaceStress drives one mount service from many tenants at
// once — mixed creates, writes, reads, cache drops — under a cache budget
// small enough to keep the economy evicting throughout.  It checks the
// service's two end-to-end promises: every successfully written container
// reads back byte-identical (whatever the cache shed meanwhile), and the
// admission ledger balances (admitted = completed + rejected per tenant).
// CI runs it under -race.
func TestServiceRaceStress(t *testing.T) {
	const (
		tenants    = 3
		perTenant  = 4 // goroutines per tenant
		containers = 8 // containers per tenant, one writer goroutine each
		blocks     = 4
		bs         = int64(1024)
	)
	classes := map[string]string{}
	for i := 0; i < tenants; i++ {
		classes[fmt.Sprintf("t%d", i)] = "work"
	}
	svc := plfs.NewService(plfs.ServiceOptions{
		CacheBudgetBytes: 8 << 10, // tiny: force evictions under load
		Classes:          []plfs.ClassConfig{{Name: "work", MaxInFlight: 6, Attempts: 64, Backoff: 10 * time.Microsecond}},
		TenantClass:      classes,
	})
	roots := []string{t.TempDir(), t.TempDir()}
	m := svc.Mount(roots, plfs.Options{NumSubdirs: 2, SpreadContainers: true})
	clock := &fakeClock{}
	ctxFor := func(tenant string) plfs.Ctx {
		vols := make([]plfs.Backend, len(roots))
		for i := range vols {
			vols[i] = osfs.New()
		}
		return plfs.Ctx{Vols: vols, HostLeader: true, Clock: clock, Tenant: tenant}
	}
	name := func(tn, c int) string { return fmt.Sprintf("t%d-c%d", tn, c) }
	tag := func(tn, c int) uint64 { return uint64(tn*1000 + c + 1) }

	var rejected atomic.Int64
	written := make([]atomic.Bool, tenants*containers)

	write := func(ctx plfs.Ctx, tn, c int) {
		w, err := m.Create(ctx, name(tn, c))
		if errors.Is(err, plfs.ErrAdmission) {
			rejected.Add(1)
			return
		}
		if err != nil {
			t.Errorf("create %s: %v", name(tn, c), err)
			return
		}
		for k := 0; k < blocks; k++ {
			off := int64(k) * bs
			if err := w.Write(off, payload.Synthetic(tag(tn, c), off, bs)); err != nil {
				t.Errorf("write %s: %v", name(tn, c), err)
			}
		}
		if err := w.Close(); err != nil {
			t.Errorf("close %s: %v", name(tn, c), err)
			return
		}
		written[tn*containers+c].Store(true)
	}
	read := func(ctx plfs.Ctx, tn, c int) {
		if !written[tn*containers+c].Load() {
			return
		}
		r, err := m.OpenReader(ctx, name(tn, c))
		if errors.Is(err, plfs.ErrAdmission) {
			rejected.Add(1)
			return
		}
		if err != nil {
			t.Errorf("open %s: %v", name(tn, c), err)
			return
		}
		defer r.Close()
		total := int64(blocks) * bs
		if r.Size() != total {
			t.Errorf("%s: size %d, want %d", name(tn, c), r.Size(), total)
			return
		}
		got, err := r.ReadAt(0, total)
		if err != nil {
			t.Errorf("read %s: %v", name(tn, c), err)
			return
		}
		want := payload.List{payload.Synthetic(tag(tn, c), 0, total)}
		if !payload.ContentEqual(got, want) {
			t.Errorf("%s: read-back not byte-identical", name(tn, c))
		}
	}

	// Phase 1: every container written by its own goroutine, with
	// interleaved reads of whatever its tenant finished so far and
	// occasional service-wide cache drops.
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		for g := 0; g < perTenant; g++ {
			wg.Add(1)
			go func(tn, g int) {
				defer wg.Done()
				ctx := ctxFor(fmt.Sprintf("t%d", tn))
				for c := g; c < containers; c += perTenant {
					write(ctx, tn, c)
					read(ctx, tn, (c+perTenant)%containers)
					if c%5 == 0 {
						m.DropIndexCache()
					}
				}
			}(tn, g)
		}
	}
	wg.Wait()

	// Phase 2: cross-tenant read-back of every written container.
	for tn := 0; tn < tenants; tn++ {
		for g := 0; g < perTenant; g++ {
			wg.Add(1)
			go func(tn, g int) {
				defer wg.Done()
				ctx := ctxFor(fmt.Sprintf("t%d", tn))
				other := (tn + 1) % tenants
				for c := g; c < containers; c += perTenant {
					read(ctx, tn, c)
					read(ctx, other, c)
				}
			}(tn, g)
		}
	}
	wg.Wait()

	st := svc.Stats()
	var admitted, completed int64
	for _, ta := range st.Tenants {
		if ta.Admitted != ta.Completed+ta.Rejected {
			t.Errorf("tenant %s: admitted %d != completed %d + rejected %d",
				ta.Tenant, ta.Admitted, ta.Completed, ta.Rejected)
		}
		admitted += ta.Admitted
		completed += ta.Completed
	}
	if admitted == 0 || completed == 0 {
		t.Fatalf("no operations recorded: %+v", st.Tenants)
	}
	var totalRejected int64
	for _, ta := range st.Tenants {
		totalRejected += ta.Rejected
	}
	if totalRejected != rejected.Load() {
		t.Errorf("ledger rejected %d, observed %d ErrAdmission returns", totalRejected, rejected.Load())
	}
	eco := st.Economy
	if eco.UsedBytes < 0 {
		t.Errorf("economy used %d < 0", eco.UsedBytes)
	}
	var tenantSum int64
	for _, tb := range eco.TenantBytes {
		if tb.Bytes <= 0 {
			t.Errorf("tenant %s attribution %d, want > 0", tb.Tenant, tb.Bytes)
		}
		tenantSum += tb.Bytes
	}
	if tenantSum != eco.UsedBytes {
		t.Errorf("tenant bytes sum %d != used %d", tenantSum, eco.UsedBytes)
	}
	if eco.Evictions == 0 {
		t.Errorf("no evictions under a %d-byte budget; pressure counters dead?", eco.BudgetBytes)
	}
	for _, cl := range st.Classes {
		if cl.InFlight != 0 {
			t.Errorf("class %q still has %d in flight after quiescence", cl.Name, cl.InFlight)
		}
		if cl.PeakInFlight > cl.MaxInFlight {
			t.Errorf("class %q peak %d exceeded cap %d", cl.Name, cl.PeakInFlight, cl.MaxInFlight)
		}
	}
}
