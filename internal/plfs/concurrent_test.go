package plfs_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestConcurrentOpenReaderSharedContainer opens the same container from
// many goroutines at once with the worker pool enabled, exercising the
// per-container parsed/built caches under the race detector.  Every
// reader must see identical, correct bytes.
func TestConcurrentOpenReaderSharedContainer(t *testing.T) {
	const ranks, blocks, readers = 8, 4, 8
	bs := int64(512)
	r := newRig(t, 2, plfs.Options{IndexMode: plfs.Original, DecodeWorkers: 4})
	runRanks(t, r, ranks, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, ranks, blocks, bs, "shared")
	})

	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := r.ctx(g, nil)
			rd, err := r.m.OpenReader(ctx, "shared")
			if err != nil {
				t.Errorf("reader %d: %v", g, err)
				return
			}
			defer rd.Close()
			if rd.Stats.DecodeWorkers != 4 {
				t.Errorf("reader %d: DecodeWorkers = %d, want 4", g, rd.Stats.DecodeWorkers)
			}
			verifyN1(t, rd, ranks, blocks, bs)
		}(g)
	}
	wg.Wait()
}

// TestCorruptDroppingAggregatedErrorNamesPath corrupts one index dropping
// out of several and asserts the aggregated (joined) open error names the
// bad file — per-shard error collection must not lose the path, and the
// healthy shards must not mask the failure.
func TestCorruptDroppingAggregatedErrorNamesPath(t *testing.T) {
	const ranks = 4
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 1, DecodeWorkers: 4})
	runRanks(t, r, ranks, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, ranks, 2, 256, "mixed")
	})
	idx, _ := filepath.Glob(filepath.Join(r.roots[0], "mixed", "hostdir.*", "dropping.index.*"))
	if len(idx) != ranks {
		t.Fatalf("index droppings = %d, want %d", len(idx), ranks)
	}
	bad := idx[1]
	if err := os.Truncate(bad, plfs.EntryBytes-3); err != nil {
		t.Fatal(err)
	}
	_, err := r.m.OpenReader(r.ctx(0, nil), "mixed")
	if err == nil {
		t.Fatal("open of corrupt container succeeded")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("aggregated error does not name the corrupt dropping %q:\n%v", bad, err)
	}
	for i, p := range idx {
		if i != 1 && strings.Contains(err.Error(), p) {
			t.Fatalf("error blames healthy dropping %q:\n%v", p, err)
		}
	}
}

// TestReadFanoutMatchesSerial reads the same container through the
// fan-out and serial plans and requires byte-identical results, plus
// sane ReadStats from both.
func TestReadFanoutMatchesSerial(t *testing.T) {
	const ranks, blocks = 8, 4
	bs := int64(512)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, DecodeWorkers: 4})
	runRanks(t, r, ranks, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, ranks, blocks, bs, "fan")
	})

	serialM := plfs.NewMount(r.roots, plfs.Options{IndexMode: plfs.Original, DecodeWorkers: 4, NoReadFanout: true})
	for name, m := range map[string]*plfs.Mount{"fanout": r.m, "serial": serialM} {
		rd, err := m.OpenReader(r.ctx(0, nil), "fan")
		if err != nil {
			t.Fatalf("%s open: %v", name, err)
		}
		verifyN1(t, rd, ranks, blocks, bs)
		wantWorkers := 4
		if name == "serial" {
			wantWorkers = 1
		}
		if rd.ReadStats.Workers != wantWorkers {
			t.Errorf("%s: ReadStats.Workers = %d, want %d", name, rd.ReadStats.Workers, wantWorkers)
		}
		if rd.ReadStats.Ops == 0 || rd.ReadStats.Pieces == 0 || rd.ReadStats.Batches == 0 {
			t.Errorf("%s: empty ReadStats %+v", name, rd.ReadStats)
		}
		rd.Close()
	}
}

// BenchmarkReadAtFanout compares the serial per-piece read plan against
// the batched fan-out plan on a real-filesystem container whose strided
// layout produces one piece per (rank, block).
func BenchmarkReadAtFanout(b *testing.B) {
	const ranks, blocks = 16, 8
	bs := int64(16 << 10)
	total := int64(ranks*blocks) * bs
	r := newRig(b, 1, plfs.Options{IndexMode: plfs.Original, DecodeWorkers: 1})
	runRanks(b, r, ranks, func(ctx plfs.Ctx, rank int) {
		writeN1(b, r.m, ctx, rank, ranks, blocks, bs, "bench")
	})
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // fan-out overlaps I/O waits even on few cores
	}
	run := func(b *testing.B, opt plfs.Options) {
		m := plfs.NewMount(r.roots, opt)
		rd, err := m.OpenReader(r.ctx(0, nil), "bench")
		if err != nil {
			b.Fatal(err)
		}
		defer rd.Close()
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pl, err := rd.ReadAt(0, total)
			if err != nil {
				b.Fatal(err)
			}
			if got := pl.Len(); got != total {
				b.Fatalf("read %d bytes, want %d", got, total)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		run(b, plfs.Options{IndexMode: plfs.Original, NoReadFanout: true})
	})
	b.Run("parallel", func(b *testing.B) {
		run(b, plfs.Options{IndexMode: plfs.Original, DecodeWorkers: workers})
	})
}

// BenchmarkReadAtStrided measures a contiguous read over a container
// whose live extents alternate between two droppings (a checkpoint plus
// a partial overwrite), so each dropping's surviving pieces sit one
// block apart physically.  gap0 issues one read per live piece run;
// sieve coalesces each dropping into a single large read that spans the
// dead bytes in between.
func BenchmarkReadAtStrided(b *testing.B) {
	const blocks = 64
	bs := int64(8 << 10)
	total := int64(blocks) * bs
	r := newRig(b, 1, plfs.Options{IndexMode: plfs.Original})
	ctx := r.ctx(0, nil)
	w, err := r.m.Create(ctx, "strided")
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < blocks; k++ {
		if err := w.Write(int64(k)*bs, payload.Synthetic(1, int64(k)*bs, bs)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	w, err = r.m.Create(ctx, "strided") // overwrite every other block
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < blocks; k += 2 {
		if err := w.Write(int64(k)*bs, payload.Synthetic(2, int64(k)*bs, bs)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, gap int64) {
		m := plfs.NewMount(r.roots, plfs.Options{IndexMode: plfs.Original, SieveGap: gap})
		rd, err := m.OpenReader(r.ctx(0, nil), "strided")
		if err != nil {
			b.Fatal(err)
		}
		defer rd.Close()
		b.ReportAllocs()
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pl, err := rd.ReadAt(0, total)
			if err != nil {
				b.Fatal(err)
			}
			if got := pl.Len(); got != total {
				b.Fatalf("read %d bytes, want %d", got, total)
			}
		}
	}
	b.Run("gap0", func(b *testing.B) { run(b, 0) })
	b.Run("sieve", func(b *testing.B) { run(b, bs) })
}
