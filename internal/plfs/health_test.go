package plfs_test

// Tests for the self-healing layer: per-volume circuit breakers, hedged
// index reads with replica failover, and the background repair path.

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"plfs/internal/obs"
	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestBreakerLifecycle drives one volume's breaker through the full
// state machine: closed -> open after the failure threshold, half-open
// once the cooldown elapses, back to open (doubled cooldown) on a lost
// probe, and closed again on a won probe.
func TestBreakerLifecycle(t *testing.T) {
	h := plfs.NewHealth(plfs.HealthConfig{
		FailureThreshold: 3,
		ProbeAfter:       10 * time.Millisecond,
		MaxProbeAfter:    40 * time.Millisecond,
	})
	const vol = "/vol0"
	boom := errors.New("io error")
	var now int64

	if got := h.State(vol, now); got != plfs.BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}

	// Namespace errors are neutral: they never trip the breaker.
	for i := 0; i < 5; i++ {
		h.Observe(vol, now, 0, fs.ErrNotExist)
	}
	if got := h.State(vol, now); got != plfs.BreakerClosed {
		t.Fatalf("state after ErrNotExist = %v, want closed", got)
	}

	// Two failures: still under threshold.
	h.Observe(vol, now, 0, boom)
	h.Observe(vol, now, 0, boom)
	if got := h.State(vol, now); got != plfs.BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	// A success resets the consecutive count.
	h.Observe(vol, now, time.Microsecond, nil)
	h.Observe(vol, now, 0, boom)
	h.Observe(vol, now, 0, boom)
	if got := h.State(vol, now); got != plfs.BreakerClosed {
		t.Fatalf("success did not reset consecutive failures")
	}

	// Third consecutive failure opens the breaker.
	h.Observe(vol, now, 0, boom)
	if got := h.State(vol, now); got != plfs.BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if !h.Avoid(vol, now) {
		t.Fatalf("open breaker should be avoided")
	}

	// Before the cooldown: still open.
	if got := h.State(vol, now+int64(5*time.Millisecond)); got != plfs.BreakerOpen {
		t.Fatalf("state mid-cooldown = %v, want open", got)
	}
	// Cooldown elapsed: the asking caller becomes the probe.
	now += int64(10 * time.Millisecond)
	if got := h.State(vol, now); got != plfs.BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if h.Avoid(vol, now) {
		t.Fatalf("half-open breaker must not be avoided (probe has to land)")
	}

	// Lost probe: reopen with doubled cooldown (20ms).
	h.Observe(vol, now, 0, boom)
	if got := h.State(vol, now+int64(10*time.Millisecond)); got != plfs.BreakerOpen {
		t.Fatalf("doubled cooldown not honored: half-open too early")
	}
	now += int64(20 * time.Millisecond)
	if got := h.State(vol, now); got != plfs.BreakerHalfOpen {
		t.Fatalf("state after doubled cooldown = %v, want half-open", got)
	}

	// Won probe: closed, counters tally the whole journey.
	h.Observe(vol, now, time.Microsecond, nil)
	if got := h.State(vol, now); got != plfs.BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	snap := h.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d vols, want 1", len(snap))
	}
	v := snap[0]
	if v.Opens != 2 || v.Probes != 2 || v.ProbeOK != 1 {
		t.Errorf("counters = opens %d probes %d probeOK %d, want 2/2/1",
			v.Opens, v.Probes, v.ProbeOK)
	}
	if v.Failures != 6 {
		t.Errorf("failures = %d, want 6", v.Failures)
	}

	// Publish renders gauges for the volume.
	reg := obs.New()
	h.Publish(reg)
	if g := reg.Gauge("plfs.health." + vol + ".probe_ok").Value(); g != 1 {
		t.Errorf("published probe_ok gauge = %v, want 1", g)
	}
}

// TestBreakerSlowOps checks that successful-but-slow operations count
// toward opening once the rolling window has enough healthy samples.
func TestBreakerSlowOps(t *testing.T) {
	h := plfs.NewHealth(plfs.HealthConfig{
		FailureThreshold: 2,
		SlowFactor:       2,
		MinSlow:          time.Millisecond,
		MinSamples:       4,
	})
	const vol = "/vol0"
	// Warm the data-class window with healthy 1ms samples; p99 ~ 1ms so
	// the slow cutoff becomes max(2*1ms, 1ms) = 2ms.  Slow() consults the
	// data class (hedging decisions are about index reads).
	for i := 0; i < 8; i++ {
		h.ObserveData(vol, 0, time.Millisecond, 0, nil)
	}
	if h.Slow(vol, time.Millisecond, 0) {
		t.Fatalf("1ms should not be slow against a 1ms baseline")
	}
	if !h.Slow(vol, 5*time.Millisecond, 0) {
		t.Fatalf("5ms should be slow against a 1ms baseline")
	}
	h.ObserveData(vol, 0, 5*time.Millisecond, 0, nil)
	h.ObserveData(vol, 0, 5*time.Millisecond, 0, nil)
	if got := h.State(vol, 0); got != plfs.BreakerOpen {
		t.Fatalf("state after 2 slow ops = %v, want open", got)
	}
	snap := h.Snapshot()
	if snap[0].SlowOps != 2 {
		t.Errorf("slow ops = %d, want 2", snap[0].SlowOps)
	}
}

// replicatedRig writes a known single-writer container under
// IndexReplicas: 2 on two volumes and returns the rig plus the
// canonical (primary) root — the one holding the container skeleton.
func replicatedRig(t *testing.T, opt plfs.Options, name string) (*rig, string) {
	t.Helper()
	opt.IndexReplicas = 2
	r := newRig(t, 2, opt)
	ctx := r.ctx(0, nil)
	writeN1(t, r.m, ctx, 0, 1, 4, 1024, name)
	primary := ""
	for _, root := range r.roots {
		if _, err := os.Stat(filepath.Join(root, name, ".plfsaccess")); err == nil {
			primary = root
		}
	}
	if primary == "" {
		t.Fatalf("no volume holds the container skeleton")
	}
	return r, primary
}

// TestIndexReplicaFailover is the acceptance check: losing the primary
// index dropping with IndexReplicas: 2 must be invisible — the read
// fails over to the replica, returns byte-identical data, and skips no
// shards even with AllowPartial enabled.
func TestIndexReplicaFailover(t *testing.T) {
	r, primary := replicatedRig(t, plfs.Options{AllowPartial: true}, "f")
	ix := globOne(t, filepath.Join(primary, "f", "hostdir.*", "dropping.index.*"))
	if err := os.Remove(ix); err != nil {
		t.Fatalf("remove primary index: %v", err)
	}

	ctx := r.ctx(0, nil)
	ctx.Obs = obs.New()
	rd, err := r.m.OpenReader(ctx, "f")
	if err != nil {
		t.Fatalf("open after primary index loss: %v", err)
	}
	defer rd.Close()
	if len(rd.Stats.SkippedShards) != 0 {
		t.Fatalf("SkippedShards = %v, want none (replica should cover)", rd.Stats.SkippedShards)
	}
	verifyN1(t, rd, 1, 4, 1024)
	if got := ctx.Obs.Counter("plfs.replica.failover").Value(); got == 0 {
		t.Errorf("plfs.replica.failover = 0, want > 0")
	}
}

// TestGlobalIndexReplicaFailover loses the committed global index and
// expects the replica copy to serve the flattened open.
func TestGlobalIndexReplicaFailover(t *testing.T) {
	r, primary := replicatedRig(t, plfs.Options{IndexMode: plfs.IndexFlatten}, "g")
	// Flatten the index via a serial open, then lose the primary copy.
	ctx := r.ctx(0, nil)
	if err := r.m.Flatten(ctx, "g"); err != nil {
		t.Fatalf("flatten: %v", err)
	}
	gp := filepath.Join(primary, "g", "meta", "global.index")
	if _, err := os.Stat(gp); err != nil {
		t.Fatalf("global index missing after flatten: %v", err)
	}
	if err := os.Remove(gp); err != nil {
		t.Fatalf("remove global index: %v", err)
	}
	rd, err := r.m.OpenReader(r.ctx(0, nil), "g")
	if err != nil {
		t.Fatalf("open after global index loss: %v", err)
	}
	defer rd.Close()
	verifyN1(t, rd, 1, 4, 1024)
}

// TestHedgedReadAvoidsOpenBreaker forces the primary volume's breaker
// open and expects index reads to route to the replica first, charging
// the hedge counters.
func TestHedgedReadAvoidsOpenBreaker(t *testing.T) {
	r, primary := replicatedRig(t, plfs.Options{HedgedReads: true}, "h")
	h := r.m.Health()
	if h == nil {
		t.Fatalf("mount with HedgedReads has no health table")
	}
	boom := errors.New("io error")
	now := r.clock.Now()
	for i := 0; i < 8; i++ {
		h.Observe(primary, now, 0, boom)
	}
	if !h.Avoid(primary, now) {
		t.Fatalf("primary breaker should be open")
	}

	ctx := r.ctx(0, nil)
	ctx.Obs = obs.New()
	rd, err := r.m.OpenReader(ctx, "h")
	if err != nil {
		t.Fatalf("open with open primary breaker: %v", err)
	}
	defer rd.Close()
	verifyN1(t, rd, 1, 4, 1024)
	if got := ctx.Obs.Counter("plfs.read.hedged").Value(); got == 0 {
		t.Errorf("plfs.read.hedged = 0, want > 0")
	}
	if got := ctx.Obs.Counter("plfs.read.hedge_wins").Value(); got == 0 {
		t.Errorf("plfs.read.hedge_wins = 0, want > 0")
	}
}

// sumSleeper tallies charged virtual time.
type sumSleeper struct{ total time.Duration }

func (s *sumSleeper) Sleep(d time.Duration) { s.total += d }

// serviceCtx builds a serial HostLeader context for a service mount.
func serviceCtx(roots []string, clock plfs.Clock) plfs.Ctx {
	vols := make([]plfs.Backend, len(roots))
	for i := range vols {
		vols[i] = osfs.New()
	}
	return plfs.Ctx{Vols: vols, HostLeader: true, Clock: clock}
}

// TestRepairContainer exercises the three repair paths one by one:
// re-replicating a lost replica, restoring a lost primary from its
// replica, and rebuilding a dropping whose copies are all gone from the
// data file's recovery footer — verifying read-back after each.
func TestRepairContainer(t *testing.T) {
	roots := []string{t.TempDir(), t.TempDir()}
	svc := plfs.NewService(plfs.ServiceOptions{})
	m := svc.Mount(roots, plfs.Options{IndexReplicas: 2})
	clock := &fakeClock{}
	ctx := serviceCtx(roots, clock)

	w, err := m.Create(ctx, "c")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for k := 0; k < 4; k++ {
		off := int64(k) * 1024
		if err := w.Write(off, payload.Synthetic(1, off, 1024)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	primary := ""
	for _, root := range roots {
		if _, err := os.Stat(filepath.Join(root, "c", ".plfsaccess")); err == nil {
			primary = root
		}
	}
	replica := roots[0]
	if primary == roots[0] {
		replica = roots[1]
	}
	prIx := globOne(t, filepath.Join(primary, "c", "hostdir.*", "dropping.index.*"))
	repIx := globOne(t, filepath.Join(replica, "c", "hostdir.*", "dropping.index.*"))

	verify := func(stage string) {
		t.Helper()
		rd, err := m.OpenReader(serviceCtx(roots, clock), "c")
		if err != nil {
			t.Fatalf("%s: open: %v", stage, err)
		}
		defer rd.Close()
		verifyN1(t, rd, 1, 4, 1024)
	}
	repair := func(stage string, wantRepaired int) plfs.RepairReport {
		t.Helper()
		rep, err := m.RepairContainer(serviceCtx(roots, clock), "c")
		if err != nil {
			t.Fatalf("%s: repair: %v", stage, err)
		}
		if rep.Found != rep.Repaired+rep.Unrepairable {
			t.Fatalf("%s: ledger broken: found %d != repaired %d + unrepairable %d",
				stage, rep.Found, rep.Repaired, rep.Unrepairable)
		}
		if rep.Repaired != wantRepaired || rep.Unrepairable != 0 {
			t.Fatalf("%s: repaired %d unrepairable %d, want %d/0 (%v)",
				stage, rep.Repaired, rep.Unrepairable, wantRepaired, rep.Problems)
		}
		return rep
	}

	// A healthy container repairs nothing.
	repair("healthy", 0)

	// 1. Lost replica: the scrub re-replicates from the primary.
	if err := os.Remove(repIx); err != nil {
		t.Fatalf("remove replica: %v", err)
	}
	repair("lost replica", 1)
	if _, err := os.Stat(repIx); err != nil {
		t.Fatalf("replica not restored: %v", err)
	}
	verify("lost replica")

	// 2. Lost primary: restored from the replica copy.
	if err := os.Remove(prIx); err != nil {
		t.Fatalf("remove primary: %v", err)
	}
	repair("lost primary", 1)
	if _, err := os.Stat(prIx); err != nil {
		t.Fatalf("primary not restored: %v", err)
	}
	verify("lost primary")

	// 3. Both copies lost: rebuilt from the data file's recovery footer.
	if err := os.Remove(prIx); err != nil {
		t.Fatalf("remove primary: %v", err)
	}
	if err := os.Remove(repIx); err != nil {
		t.Fatalf("remove replica: %v", err)
	}
	rep := repair("torn dropping", 1)
	if len(rep.Rebuilt) != 1 {
		t.Fatalf("Rebuilt = %v, want the torn dropping", rep.Rebuilt)
	}
	if _, err := os.Stat(prIx); err != nil {
		t.Fatalf("primary not rebuilt: %v", err)
	}
	verify("torn dropping")

	// The service ledger accumulated every pass: found = repaired.
	if _, err := svc.RepairTick(serviceCtx(roots, clock), m); err != nil {
		t.Fatalf("repair tick: %v", err)
	}
	st := svc.Stats()
	if st.Repair.Ticks != 1 {
		t.Errorf("repair ticks = %d, want 1", st.Repair.Ticks)
	}
	if st.Repair.Found != st.Repair.Repaired+st.Repair.Unrepairable {
		t.Errorf("service ledger broken: %+v", st.Repair)
	}
}

// TestRepairDaemon runs the virtual-clock daemon loop for a few ticks
// over a container with a missing replica and expects exactly one
// repair across the run (later ticks find nothing).
func TestRepairDaemon(t *testing.T) {
	roots := []string{t.TempDir(), t.TempDir()}
	svc := plfs.NewService(plfs.ServiceOptions{})
	m := svc.Mount(roots, plfs.Options{IndexReplicas: 2})
	clock := &fakeClock{}
	ctx := serviceCtx(roots, clock)
	sleeper := &sumSleeper{}
	ctx.Sleep = sleeper

	w, err := m.Create(ctx, "d")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := w.Write(0, payload.Synthetic(1, 0, 512)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Drop one replica index copy.
	primary := roots[0]
	if _, err := os.Stat(filepath.Join(roots[1], "d", ".plfsaccess")); err == nil {
		primary = roots[1]
	}
	replica := roots[0]
	if primary == roots[0] {
		replica = roots[1]
	}
	repIx := globOne(t, filepath.Join(replica, "d", "hostdir.*", "dropping.index.*"))
	if err := os.Remove(repIx); err != nil {
		t.Fatalf("remove replica: %v", err)
	}

	rep := svc.RepairDaemon(ctx, m, 50*time.Millisecond, 3)
	if rep.Found != 1 || rep.Repaired != 1 || rep.Unrepairable != 0 {
		t.Fatalf("daemon totals = %+v, want found=repaired=1", rep)
	}
	if slept := sleeper.total; slept != 3*50*time.Millisecond {
		t.Errorf("daemon slept %v, want 150ms of charged virtual time", slept)
	}
	if got := svc.Stats().Repair.Ticks; got != 3 {
		t.Errorf("ticks = %d, want 3", got)
	}
	if _, err := os.Stat(repIx); err != nil {
		t.Errorf("replica not restored by daemon: %v", err)
	}
}
