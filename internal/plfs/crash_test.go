package plfs_test

// Crash-torture harness: run an N-writer workload with the backend
// crashed after its k-th mutating operation — for every k — then
// Recover, Scrub, and read the container back.  The invariant at every
// crash boundary is that the file is either absent, a consistent prior
// state (each block fully written or fully absent, no torn or silently
// corrupt bytes served), or fully recovered.  This enumerates every
// commit boundary of the container protocol, so any non-atomic publish
// shows up as a specific k that fails.

import (
	"fmt"
	"testing"

	"plfs/internal/fault"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// crashOpts is the container configuration the torture runs under:
// checksummed framing on, so recovery and scrub exercise the full
// integrity machinery.
func crashOpts(mode plfs.Mode) plfs.Options {
	return plfs.Options{IndexMode: mode, NumSubdirs: 2, Checksum: true, Retry: fastRetry(2)}
}

// serialCtx builds a context for sequential single-writer sessions:
// every rank is its own host leader so container creation does not
// depend on a communicator.
func serialCtx(r *rig, rank int) plfs.Ctx {
	ctx := r.ctx(rank, nil)
	ctx.Host = rank
	ctx.HostLeader = true
	return ctx
}

// runSerialCrashWorkload drives n sequential writer sessions against one
// shared file through the injector, ignoring I/O errors: after the crash
// point every operation fails, which is exactly the torn state the
// verifier must then judge.
func runSerialCrashWorkload(r *rig, inj *fault.Injector, name string, n, blocks int, bs int64) {
	for i := 0; i < n; i++ {
		ctx := faulty(serialCtx(r, i), inj)
		w, err := r.m.Create(ctx, name)
		if err != nil {
			return // crashed: every later session fails at Create too
		}
		for k := 0; k < blocks; k++ {
			off := int64(k*n+i) * bs
			_ = w.Write(off, payload.Synthetic(uint64(i+1), off, bs))
		}
		_ = w.Close()
	}
}

// verifyCrashState is the torture invariant: after a crash at any
// operation boundary, Recover must succeed, Scrub must report nothing
// beyond the expected residue of a crash (unreachable droppings awaiting
// nothing, stale openhosts records, torn append tails), and every block
// must read back either fully written or fully absent.
func verifyCrashState(t *testing.T, r *rig, name string, n, blocks int, bs int64) {
	t.Helper()
	ctx := serialCtx(r, 0)
	ok, err := r.m.IsContainer(ctx, name)
	if err != nil {
		t.Fatalf("IsContainer: %v", err)
	}
	if !ok {
		return // crashed before the container was born: absent is consistent
	}
	if _, err := r.m.Recover(ctx, name); err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	srep, err := r.m.Scrub(ctx, name)
	if err != nil {
		t.Fatalf("scrub after recover: %v", err)
	}
	allowed := map[string]bool{
		// A dropping whose session crashed before any index or footer
		// committed is unreachable: its bytes are invisible, not torn.
		"unreachable": true,
		// Crashed writers never deregister from openhosts.
		"stale-openhost": true,
		// Data beyond indexed coverage is a torn append tail: invisible.
		"torn-tail": true,
	}
	for _, p := range srep.Problems {
		if !allowed[p.Kind] {
			t.Errorf("scrub after recover: %s", p)
		}
	}
	rd, err := r.m.OpenReader(ctx, name)
	if err != nil {
		t.Fatalf("open after recover: %v", err)
	}
	defer rd.Close()
	total := int64(n*blocks) * bs
	sz := rd.Size()
	if sz > total {
		t.Fatalf("logical size %d exceeds written %d", sz, total)
	}
	if sz%bs != 0 {
		t.Fatalf("logical size %d is not a block boundary (torn commit visible)", sz)
	}
	if sz == 0 {
		return
	}
	got, err := rd.ReadAt(0, sz)
	if err != nil {
		t.Fatalf("read after recover: %v", err)
	}
	zeros := payload.List{payload.Zeros(bs)}
	for k := 0; k < blocks; k++ {
		for i := 0; i < n; i++ {
			off := int64(k*n+i) * bs
			if off >= sz {
				continue // beyond logical size: absent, consistent
			}
			b := got.Slice(off, bs)
			want := payload.List{payload.Synthetic(uint64(i+1), off, bs)}
			if !payload.ContentEqual(b, want) && !payload.ContentEqual(b, zeros) {
				t.Errorf("block (k=%d, rank=%d) is neither fully written nor absent", k, i)
			}
		}
	}
}

// crashStride compresses the sweep in -short mode (CI) while still
// sampling crash points across the whole protocol.
func crashStride(total int64) int64 {
	if testing.Short() {
		return total/16 + 1
	}
	return 1
}

// TestCrashTortureSerial sweeps every mutating-operation boundary of
// sequential single-writer sessions (the FUSE-style path, Original
// index mode).
func TestCrashTortureSerial(t *testing.T) {
	const n, blocks, bs = 3, 3, int64(512)
	const name = "tortured"

	// Counting run: a fault-free injector tallies the mutating ops, which
	// bounds the crash sweep.
	count := fault.New(fault.Spec{})
	r := newRig(t, 1, crashOpts(plfs.Original))
	runSerialCrashWorkload(r, count, name, n, blocks, bs)
	verifyCrashState(t, r, name, n, blocks, bs) // fault-free run must be fully intact
	total := count.MutatingOps()
	if total < 10 {
		t.Fatalf("suspiciously few mutating ops: %d", total)
	}

	for k := int64(1); k <= total; k += crashStride(total) {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			inj := fault.New(mustSpec(t, fmt.Sprintf("crashat=%d", k)))
			r := newRig(t, 1, crashOpts(plfs.Original))
			runSerialCrashWorkload(r, inj, name, n, blocks, bs)
			if !inj.Crashed() {
				t.Fatalf("crash point %d never fired (sweep is vacuous)", k)
			}
			verifyCrashState(t, r, name, n, blocks, bs)
		})
	}
}

// TestCrashTortureCollective sweeps crash points through the write and
// collective-close phases of a concurrent N-writer job under Index
// Flatten.  Crash points inside the create phase are excluded: a rank
// whose Create fails never joins the close collectives, and its peers
// would block forever — the documented deadlock a real MPI job hits when
// a process dies, not a container-consistency bug.
func TestCrashTortureCollective(t *testing.T) {
	const n, blocks, bs = 4, 2, int64(512)
	const name = "tortured-collective"

	run := func(r *rig, inj *fault.Injector, afterCreate *int64) {
		runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
			ctx = faulty(ctx, inj)
			w, err := r.m.Create(ctx, name)
			if err != nil {
				t.Errorf("rank %d create: %v", rank, err)
				return
			}
			// The barrier pins the create/write phase boundary: crash
			// points above afterCreate can then never land inside a
			// Create, in the counting run or the sweep.
			ctx.Comm.Barrier()
			if afterCreate != nil && rank == 0 {
				*afterCreate = inj.MutatingOps()
			}
			ctx.Comm.Barrier()
			for k := 0; k < blocks; k++ {
				off := int64(k*n+rank) * bs
				_ = w.Write(off, payload.Synthetic(uint64(rank+1), off, bs))
			}
			_ = w.Close() // every rank reaches the close collectives
		})
	}

	// Counting run: total ops, and the op count at the create/write
	// boundary (deterministic because a barrier separates the phases).
	var afterCreate int64
	count := fault.New(fault.Spec{})
	r := newRig(t, 1, crashOpts(plfs.IndexFlatten))
	run(r, count, &afterCreate)
	verifyCrashState(t, r, name, n, blocks, bs)
	total := count.MutatingOps()
	if afterCreate <= 0 || afterCreate >= total {
		t.Fatalf("bad phase boundary: afterCreate=%d total=%d", afterCreate, total)
	}

	for k := afterCreate + 1; k <= total; k += crashStride(total - afterCreate) {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			inj := fault.New(mustSpec(t, fmt.Sprintf("crashat=%d", k)))
			r := newRig(t, 1, crashOpts(plfs.IndexFlatten))
			run(r, inj, nil)
			if !inj.Crashed() {
				t.Fatalf("crash point %d never fired (sweep is vacuous)", k)
			}
			verifyCrashState(t, r, name, n, blocks, bs)
		})
	}
}
