package plfs

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// benchWorkers is the pool width the "parallel" sub-benchmarks use; on a
// single-core runner it degenerates to the serial plan, so compare the
// sub-benchmarks on multi-core hardware.
func benchWorkers() int { return runtime.GOMAXPROCS(0) }

func benchRaws(shards [][]Entry) [][]byte {
	raws := make([][]byte, len(shards))
	for i, s := range shards {
		raws[i] = encodeEntries(s)
	}
	return raws
}

// BenchmarkDecodeEntries measures index-dropping decode throughput:
// one-at-a-time versus fanned out across the worker pool.
func BenchmarkDecodeEntries(b *testing.B) {
	const nShards, perShard = 64, 2048
	shards, _ := randomShards(rand.New(rand.NewSource(1)), nShards, perShard)
	raws := benchRaws(shards)
	out := make([][]Entry, nShards)
	nbytes := int64(nShards * perShard * EntryBytes)
	decode := func(b *testing.B, workers int) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			parallelFor(workers, len(raws), func(s int) {
				var err error
				out[s], err = decodeEntries(raws[s], int32(s))
				if err != nil {
					b.Error(err)
				}
			})
		}
	}
	b.Run("serial", func(b *testing.B) { decode(b, 1) })
	b.Run("parallel", func(b *testing.B) { decode(b, benchWorkers()) })
}

// stridedShards models an N-1 strided checkpoint: rank r's k-th block
// lands at logical (k*nShards+r)*bs, physically log-appended — the
// pattern run detection collapses to one record per writer.
func stridedShards(nShards, perShard int, bs int64) ([][]Entry, []string) {
	shards := make([][]Entry, nShards)
	paths := make([]string, nShards)
	for r := range shards {
		paths[r] = fmt.Sprintf("d%d", r)
		es := make([]Entry, perShard)
		for k := range es {
			es[k] = Entry{
				LogicalOff: (int64(k)*int64(nShards) + int64(r)) * bs,
				Length:     bs,
				PhysOff:    int64(k) * bs,
				Timestamp:  int64(k),
				Dropping:   int32(r),
				Rank:       int32(r),
			}
		}
		shards[r] = es
	}
	return shards, paths
}

// BenchmarkIndexBuild compares resolved-index construction from expanded
// per-entry records against run-compressed records for a strided N-1
// workload (where compression is maximal: one record per writer).
func BenchmarkIndexBuild(b *testing.B) {
	const nShards, perShard = 64, 2048
	shards, paths := stridedShards(nShards, perShard, 512)
	expanded := make([][]Rec, nShards)
	compressed := make([][]Rec, nShards)
	for i, s := range shards {
		expanded[i] = recsOf(s)
		compressed[i] = compressRecs(s)
	}
	b.Run("expanded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ix := BuildIndexRecs(expanded, paths, 1); ix.RawEntries() != nShards*perShard {
				b.Fatal("bad build")
			}
		}
	})
	b.Run("run-compressed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ix := BuildIndexRecs(compressed, paths, 1); ix.RawEntries() != nShards*perShard {
				b.Fatal("bad build")
			}
		}
	})
}

// BenchmarkIndexLookup measures resolved-index range lookups through a
// reused piece buffer.  Both paths must report 0 allocs/op (enforced by
// TestLookupAllocFree): the run table via phase arithmetic, the segment
// table via binary search.
func BenchmarkIndexLookup(b *testing.B) {
	const nShards, perShard, bs = 64, 2048, int64(512)
	run := func(b *testing.B, ix *Index) {
		b.ReportAllocs()
		span := ix.Size()
		buf := make([]Piece, 0, 256)
		var off int64
		b.ResetTimer() // exclude the one-time index build and buffer alloc
		for i := 0; i < b.N; i++ {
			buf = ix.AppendPieces(buf[:0], off%span, 16*bs)
			off += 7 * bs
		}
	}
	shards, paths := stridedShards(nShards, perShard, bs)
	compressed := make([][]Rec, nShards)
	for i, s := range shards {
		compressed[i] = compressRecs(s)
	}
	b.Run("runs", func(b *testing.B) {
		run(b, BuildIndexRecs(compressed, paths, 1))
	})
	rnd, rpaths := randomShards(rand.New(rand.NewSource(3)), nShards, perShard)
	b.Run("segments", func(b *testing.B) {
		run(b, BuildIndex(rnd, rpaths))
	})
}

// BenchmarkBuildIndex measures global-index construction from raw shards:
// the serial flatten-then-sort build versus the per-shard parallel sort
// plus k-way merge feeding ResolveSorted.
func BenchmarkBuildIndex(b *testing.B) {
	const nShards, perShard = 64, 2048
	shards, paths := randomShards(rand.New(rand.NewSource(2)), nShards, perShard)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ix := BuildIndex(shards, paths); ix.RawEntries() != nShards*perShard {
				b.Fatal("bad build")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		w := benchWorkers()
		for i := 0; i < b.N; i++ {
			if ix := BuildIndexParallel(shards, paths, w); ix.RawEntries() != nShards*perShard {
				b.Fatal("bad build")
			}
		}
	})
}
