package plfs

import (
	"math/rand"
	"runtime"
	"testing"
)

// benchWorkers is the pool width the "parallel" sub-benchmarks use; on a
// single-core runner it degenerates to the serial plan, so compare the
// sub-benchmarks on multi-core hardware.
func benchWorkers() int { return runtime.GOMAXPROCS(0) }

func benchRaws(shards [][]Entry) [][]byte {
	raws := make([][]byte, len(shards))
	for i, s := range shards {
		raws[i] = encodeEntries(s)
	}
	return raws
}

// BenchmarkDecodeEntries measures index-dropping decode throughput:
// one-at-a-time versus fanned out across the worker pool.
func BenchmarkDecodeEntries(b *testing.B) {
	const nShards, perShard = 64, 2048
	shards, _ := randomShards(rand.New(rand.NewSource(1)), nShards, perShard)
	raws := benchRaws(shards)
	out := make([][]Entry, nShards)
	nbytes := int64(nShards * perShard * EntryBytes)
	decode := func(b *testing.B, workers int) {
		b.SetBytes(nbytes)
		for i := 0; i < b.N; i++ {
			parallelFor(workers, len(raws), func(s int) {
				var err error
				out[s], err = decodeEntries(raws[s], int32(s))
				if err != nil {
					b.Error(err)
				}
			})
		}
	}
	b.Run("serial", func(b *testing.B) { decode(b, 1) })
	b.Run("parallel", func(b *testing.B) { decode(b, benchWorkers()) })
}

// BenchmarkBuildIndex measures global-index construction from raw shards:
// the serial flatten-then-sort build versus the per-shard parallel sort
// plus k-way merge feeding ResolveSorted.
func BenchmarkBuildIndex(b *testing.B) {
	const nShards, perShard = 64, 2048
	shards, paths := randomShards(rand.New(rand.NewSource(2)), nShards, perShard)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ix := BuildIndex(shards, paths); ix.RawEntries() != nShards*perShard {
				b.Fatal("bad build")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		w := benchWorkers()
		for i := 0; i < b.N; i++ {
			if ix := BuildIndexParallel(shards, paths, w); ix.RawEntries() != nShards*perShard {
				b.Fatal("bad build")
			}
		}
	})
}
