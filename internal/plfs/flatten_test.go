package plfs_test

import (
	"os"
	"path/filepath"
	"testing"

	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestFlattenExistingContainer: the plfs_flatten_index path — flatten a
// container written without IndexFlatten, then verify readers use the
// global index and the bytes are unchanged.
func TestFlattenExistingContainer(t *testing.T) {
	const n, blocks, bs = 6, 4, int64(256)
	r := newRig(t, 2, plfs.Options{
		IndexMode: plfs.Original, NumSubdirs: 3,
		SpreadContainers: true, SpreadSubdirs: true,
	})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "wr1rm")
	})
	ctx := r.ctx(0, nil)
	if err := r.m.Flatten(ctx, "wr1rm"); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := r.m.Flatten(ctx, "wr1rm"); err != nil {
		t.Fatal(err)
	}
	// The global index file exists in the canonical container's metadir.
	found := false
	for _, root := range r.roots {
		if _, err := os.Stat(filepath.Join(root, "wr1rm", "meta", "global.index")); err == nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no global index written")
	}
	// Serial reader must report serving from the flattened index...
	rd, err := r.m.OpenReader(ctx, "wr1rm")
	if err != nil {
		t.Fatal(err)
	}
	if !rd.Stats.UsedGlobal {
		t.Fatal("reader ignored the flattened index")
	}
	verifyN1(t, rd, n, blocks, bs)
	rd.Close()
	// ...and so must collective readers in any mode.
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		rd, err := r.m.OpenReader(ctx, "wr1rm")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if !rd.Stats.UsedGlobal {
			t.Error("collective reader ignored the flattened index")
		}
		verifyN1(t, rd, n, blocks, bs)
		rd.Close()
	})
}

func TestFlattenMissingContainerFails(t *testing.T) {
	r := newRig(t, 1, plfs.Options{})
	if err := r.m.Flatten(r.ctx(0, nil), "ghost"); err == nil {
		t.Fatal("flatten of missing container succeeded")
	}
}

// TestContainerRename: renaming a container moves canonical and shadow
// directories and invalidates any flattened index.
func TestContainerRename(t *testing.T) {
	const n, blocks, bs = 4, 3, int64(128)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 2})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "before")
	})
	ctx := r.ctx(0, nil)
	if err := r.m.Flatten(ctx, "before"); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Rename(ctx, "before", "after"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.m.IsContainer(ctx, "before"); ok {
		t.Fatal("old name still a container")
	}
	rd, err := r.m.OpenReader(ctx, "after")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if rd.Stats.UsedGlobal {
		t.Fatal("stale flattened index survived rename")
	}
	verifyN1(t, rd, n, blocks, bs)
	if err := r.m.Rename(ctx, "missing", "x"); err == nil {
		t.Fatal("rename of missing container succeeded")
	}
}

func TestTruncateEmptiesContainer(t *testing.T) {
	const n, blocks, bs = 4, 3, int64(128)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 2})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "tr")
	})
	ctx := r.ctx(0, nil)
	if err := r.m.Truncate(ctx, "tr"); err != nil {
		t.Fatal(err)
	}
	fi, err := r.m.Stat(ctx, "tr")
	if err != nil || fi.Size != 0 {
		t.Fatalf("post-truncate stat = %+v, %v", fi, err)
	}
	// The container can be rewritten afterwards.
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, 1, bs, "tr")
	})
	rd, err := r.m.OpenReader(ctx, "tr")
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	verifyN1(t, rd, n, 1, bs)
	if err := r.m.Truncate(ctx, "nope"); err == nil {
		t.Fatal("truncate of missing container succeeded")
	}
}

func TestCheckCleanAndCorrupt(t *testing.T) {
	const n, blocks, bs = 4, 3, int64(128)
	r := newRig(t, 1, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 2})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "chk")
	})
	ctx := r.ctx(0, nil)
	rep, err := r.m.Check(ctx, "chk")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean container failed check: %s", rep)
	}
	if rep.Droppings != n || rep.Logical != int64(n*blocks)*bs {
		t.Fatalf("report = %+v", rep)
	}
	// Corrupt a data dropping by truncating it: records become
	// out-of-bounds and coverage mismatches.
	dd, _ := filepath.Glob(filepath.Join(r.roots[0], "chk", "hostdir.*", "dropping.data.*"))
	if err := os.Truncate(dd[0], 10); err != nil {
		t.Fatal(err)
	}
	rep, err = r.m.Check(ctx, "chk")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupt container passed check")
	}
}

// TestIndexCompression: segmented (contiguous) writers produce one index
// record regardless of op count; disabling compression restores one
// record per op.
func TestIndexCompression(t *testing.T) {
	write := func(opt plfs.Options) int {
		r := newRig(t, 1, opt)
		ctx := r.ctx(0, nil)
		w, err := r.m.Create(ctx, "seg")
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 16; k++ {
			off := int64(k) * 64
			if err := w.Write(off, payload.Synthetic(1, off, 64)); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		rd, err := r.m.OpenReader(ctx, "seg")
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		got, _ := rd.ReadAt(0, 16*64)
		if !payload.ContentEqual(got, payload.List{payload.Synthetic(1, 0, 16*64)}) {
			t.Fatal("content mismatch")
		}
		return rd.Stats.RawEntries
	}
	if got := write(plfs.Options{IndexMode: plfs.Original}); got != 1 {
		t.Fatalf("compressed entries = %d, want 1", got)
	}
	if got := write(plfs.Options{IndexMode: plfs.Original, NoIndexCompression: true}); got != 16 {
		t.Fatalf("uncompressed entries = %d, want 16", got)
	}
}
