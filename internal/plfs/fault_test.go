package plfs_test

import (
	"bytes"
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"plfs/internal/fault"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// fastRetry is a retry policy with microsecond backoff so fault tests
// don't sleep for real.
func fastRetry(attempts int) plfs.RetryPolicy {
	return plfs.RetryPolicy{
		Attempts:   attempts,
		Backoff:    10 * time.Microsecond,
		MaxBackoff: 100 * time.Microsecond,
	}
}

// faulty routes a context's volumes through the injector.
func faulty(ctx plfs.Ctx, inj *fault.Injector) plfs.Ctx {
	ctx.Vols = inj.WrapVols(ctx.Vols, ctx.Sleep)
	return ctx
}

func mustSpec(t *testing.T, s string) fault.Spec {
	t.Helper()
	spec, err := fault.ParseSpec(s)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", s, err)
	}
	return spec
}

// TestRetryAbsorbsTransientFaults is the headline resilience property: a
// 5% transient-error rate on the retried operation classes is fully
// absorbed by the retry policy — the collective N-1 round trip succeeds
// and reads back byte-identical in every aggregation mode.
func TestRetryAbsorbsTransientFaults(t *testing.T) {
	const n, blocks, bs = 4, 4, int64(512)
	// One injector across all modes: whether a given 5% roll fires
	// depends on scheduling-sensitive op ordering, so individual modes
	// can legitimately see zero faults — the vacuousness guard sums
	// over every mode's traffic instead.
	inj := fault.New(mustSpec(t, "seed=11,create=0.05,open=0.05,read=0.05,append=0.05"))
	for _, mode := range modes() {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			r := newRig(t, 1, plfs.Options{
				IndexMode: mode, NumSubdirs: 4,
				Retry: fastRetry(6),
			})
			runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
				ctx = faulty(ctx, inj)
				writeN1(t, r.m, ctx, rank, n, blocks, bs, "f")
				rd, err := r.m.OpenReader(ctx, "f")
				if err != nil {
					t.Errorf("rank %d open: %v", rank, err)
					return
				}
				defer rd.Close()
				if rank == 0 {
					verifyN1(t, rd, n, blocks, bs)
				}
			})
		})
	}
	if got := inj.Injected(); len(got) == 0 {
		t.Fatalf("injector fired no faults across any mode; test is vacuous")
	}
}

// TestNoRetryFailsUnderFaults is the control: the same fault rate with
// retries disabled must surface an error somewhere in the round trip.
func TestNoRetryFailsUnderFaults(t *testing.T) {
	inj := fault.New(mustSpec(t, "seed=11,create=0.2,open=0.2,read=0.2,append=0.2"))
	r := newRig(t, 1, plfs.Options{NumSubdirs: 4})
	ctx := faulty(r.ctx(0, nil), inj)

	err := func() error {
		w, err := r.m.Create(ctx, "f")
		if err != nil {
			return err
		}
		for k := 0; k < 32; k++ {
			off := int64(k) * 256
			if err := w.Write(off, payload.Synthetic(1, off, 256)); err != nil {
				w.Close()
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		rd, err := r.m.OpenReader(ctx, "f")
		if err != nil {
			return err
		}
		defer rd.Close()
		_, err = rd.ReadAt(0, rd.Size())
		return err
	}()
	if err == nil {
		t.Fatalf("20%% fault rate with no retry completed cleanly")
	}
}

// writeSerial writes blocks sequentially through a serial (no-comm)
// context and closes.
func writeSerial(t *testing.T, r *rig, name string, blocks int, bs int64) {
	t.Helper()
	ctx := r.ctx(0, nil)
	w, err := r.m.Create(ctx, name)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for k := 0; k < blocks; k++ {
		off := int64(k) * bs
		if err := w.Write(off, payload.Synthetic(1, off, bs)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// verifySerial re-reads the file through a fresh mount and checks every
// byte of the sequential pattern.
func verifySerial(t *testing.T, r *rig, opt plfs.Options, name string, blocks int, bs int64) {
	t.Helper()
	m2 := plfs.NewMount(r.roots, opt)
	ctx := r.ctx(0, nil)
	rd, err := m2.OpenReader(ctx, name)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rd.Close()
	total := int64(blocks) * bs
	if rd.Size() != total {
		t.Fatalf("size = %d, want %d", rd.Size(), total)
	}
	got, err := rd.ReadAt(0, total)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := payload.Synthetic(1, 0, total)
	if !payload.ContentEqual(got, payload.List{want}) {
		t.Fatalf("contents differ after recovery")
	}
}

// indexFiles globs the on-disk index droppings of a container across the
// rig's volumes.
func indexFiles(t *testing.T, r *rig, name string) []string {
	t.Helper()
	var out []string
	for _, root := range r.roots {
		m, err := filepath.Glob(filepath.Join(root, name, "hostdir.*", "dropping.index.*"))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m...)
	}
	return out
}

func dataFiles(t *testing.T, r *rig, name string) []string {
	t.Helper()
	var out []string
	for _, root := range r.roots {
		m, err := filepath.Glob(filepath.Join(root, name, "hostdir.*", "dropping.data.*"))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m...)
	}
	return out
}

// TestRecoverMissingIndex deletes an index dropping outright and checks
// plfs_recover rebuilds it from the data dropping's footer, after which
// a full read is byte-identical.
func TestRecoverMissingIndex(t *testing.T) {
	const blocks, bs = 8, int64(512)
	r := newRig(t, 1, plfs.Options{})
	writeSerial(t, r, "f", blocks, bs)

	idx := indexFiles(t, r, "f")
	if len(idx) != 1 {
		t.Fatalf("index droppings = %d, want 1", len(idx))
	}
	if err := os.Remove(idx[0]); err != nil {
		t.Fatal(err)
	}

	m2 := plfs.NewMount(r.roots, plfs.Options{})
	rep, err := m2.Recover(r.ctx(0, nil), "f")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rep.OK() || len(rep.Rebuilt) != 1 {
		t.Fatalf("recover report: %+v", rep)
	}
	verifySerial(t, r, plfs.Options{}, "f", blocks, bs)
}

// TestRecoverTornIndex truncates an index dropping mid-record (a torn
// metadata write) and checks Recover replaces it from the footer.
func TestRecoverTornIndex(t *testing.T) {
	const blocks, bs = 8, int64(512)
	r := newRig(t, 1, plfs.Options{})
	writeSerial(t, r, "f", blocks, bs)

	idx := indexFiles(t, r, "f")
	if len(idx) != 1 {
		t.Fatalf("index droppings = %d, want 1", len(idx))
	}
	fi, err := os.Stat(idx[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(idx[0], fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	m2 := plfs.NewMount(r.roots, plfs.Options{})
	if _, err := m2.OpenReader(r.ctx(0, nil), "f"); err == nil {
		t.Fatalf("open succeeded on a torn index")
	}
	rep, err := m2.Recover(r.ctx(0, nil), "f")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rep.OK() || len(rep.Rebuilt) != 1 {
		t.Fatalf("recover report: %+v", rep)
	}
	verifySerial(t, r, plfs.Options{}, "f", blocks, bs)
}

// TestRecoverCorruptFraming removes both the index and the data footer;
// the dropping must be reported unrecoverable, not silently dropped.
func TestRecoverCorruptFraming(t *testing.T) {
	const blocks, bs = 8, int64(512)
	r := newRig(t, 1, plfs.Options{})
	writeSerial(t, r, "f", blocks, bs)

	idx, data := indexFiles(t, r, "f"), dataFiles(t, r, "f")
	if len(idx) != 1 || len(data) != 1 {
		t.Fatalf("droppings = %d/%d, want 1/1", len(idx), len(data))
	}
	if err := os.Remove(idx[0]); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(data[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop the footer (and a byte of data) off the data dropping.
	if err := os.Truncate(data[0], fi.Size()-17); err != nil {
		t.Fatal(err)
	}

	m2 := plfs.NewMount(r.roots, plfs.Options{})
	rep, err := m2.Recover(r.ctx(0, nil), "f")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.OK() || len(rep.Unrecoverable) != 1 {
		t.Fatalf("recover report: %+v", rep)
	}
}

// TestAllowPartialSkipsUnreadableShards corrupts one writer's index
// shard and opens with AllowPartial: the open succeeds, the shard is
// recorded as skipped, surviving ranks' extents read byte-identical, and
// the lost extents read as zeros.
func TestAllowPartialSkipsUnreadableShards(t *testing.T) {
	const n, blocks, bs = 4, 4, int64(512)
	r := newRig(t, 1, plfs.Options{NumSubdirs: 4})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "f")
	})

	idx := indexFiles(t, r, "f")
	if len(idx) != n {
		t.Fatalf("index droppings = %d, want %d", len(idx), n)
	}
	victim := idx[0]
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()-7); err != nil {
		t.Fatal(err)
	}
	// The victim's stamp ends ".<rank>"; its blocks should read as holes.
	parts := strings.Split(victim, ".")
	lostRank := -1
	fmt.Sscanf(parts[len(parts)-1], "%d", &lostRank)
	if lostRank < 0 || lostRank >= n {
		t.Fatalf("cannot parse rank from %s", victim)
	}

	// Without AllowPartial the open must fail.
	mStrict := plfs.NewMount(r.roots, plfs.Options{NumSubdirs: 4})
	if _, err := mStrict.OpenReader(r.ctx(0, nil), "f"); err == nil {
		t.Fatalf("strict open succeeded on a corrupt shard")
	}

	m2 := plfs.NewMount(r.roots, plfs.Options{NumSubdirs: 4, AllowPartial: true})
	rd, err := m2.OpenReader(r.ctx(0, nil), "f")
	if err != nil {
		t.Fatalf("partial open: %v", err)
	}
	defer rd.Close()
	if len(rd.Stats.SkippedShards) != 1 || rd.Stats.SkippedShards[0] == "" {
		t.Fatalf("SkippedShards = %v, want the corrupt shard", rd.Stats.SkippedShards)
	}
	total := int64(n*blocks) * bs
	got, err := rd.ReadAt(0, total)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	buf := got.Materialize()
	if int64(len(buf)) != total {
		t.Fatalf("read %d bytes, want %d", len(buf), total)
	}
	zeros := make([]byte, bs)
	for k := 0; k < blocks; k++ {
		for i := 0; i < n; i++ {
			off := int64(k*n+i) * bs
			blk := buf[off : off+bs]
			if i == lostRank {
				if !bytes.Equal(blk, zeros) {
					t.Fatalf("lost rank %d block %d not zeroed", i, k)
				}
				continue
			}
			want := payload.Synthetic(uint64(i+1), off, bs).Materialize()
			if !bytes.Equal(blk, want) {
				t.Fatalf("surviving rank %d block %d corrupted", i, k)
			}
		}
	}
}

// TestCloseCollectiveDesync is the regression test for the early-return
// bug: a rank whose flush fails must still reach the collective barrier
// (no hang), report its error, and deregister from openhosts.
func TestCloseCollectiveDesync(t *testing.T) {
	const n, blocks, bs = 4, 4, int64(512)
	inj := fault.New(mustSpec(t, "seed=3,append=1.0"))
	r := newRig(t, 1, plfs.Options{
		NumSubdirs: 4,
		// Buffer everything so the injected append failures hit at Close,
		// after every rank has entered the collective.
		DataFlushBytes: 1 << 30,
	})

	closeErrs := make([]error, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
			if rank == 1 {
				ctx = faulty(ctx, inj)
			}
			w, err := r.m.Create(ctx, "f")
			if err != nil {
				t.Errorf("rank %d create: %v", rank, err)
				return
			}
			for k := 0; k < blocks; k++ {
				off := int64(k*n+rank) * bs
				if err := w.Write(off, payload.Synthetic(uint64(rank+1), off, bs)); err != nil {
					t.Errorf("rank %d write: %v", rank, err)
				}
			}
			closeErrs[rank] = w.Close()
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("collective close hung: a failing rank skipped the barrier")
	}
	for rank, err := range closeErrs {
		if rank == 1 && err == nil {
			t.Errorf("rank 1 close succeeded despite failed appends")
		}
		if rank != 1 && err != nil {
			t.Errorf("rank %d close: %v", rank, err)
		}
	}
	// Every host must have deregistered even on the failing path.
	for _, root := range r.roots {
		hosts, err := filepath.Glob(filepath.Join(root, "f", "openhosts", "host.*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(hosts) != 0 {
			t.Errorf("openhosts not empty after close: %v", hosts)
		}
	}
	// The survivors' bytes stay reachable; rank 1's extents are holes.
	rd, err := plfs.NewMount(r.roots, plfs.Options{NumSubdirs: 4}).OpenReader(r.ctx(0, nil), "f")
	if err != nil {
		t.Fatalf("reopen after partial close: %v", err)
	}
	defer rd.Close()
	if _, err := rd.ReadAt(0, rd.Size()); err != nil {
		t.Fatalf("read after partial close: %v", err)
	}
}

// TestRenameRollback is the regression test for the split-container bug:
// when a later volume's rename fails, the volumes already renamed must
// be renamed back so the container stays whole under its old name.
func TestRenameRollback(t *testing.T) {
	const n, blocks, bs = 8, 2, int64(512)
	r := newRig(t, 2, plfs.Options{NumSubdirs: 2, SpreadSubdirs: true})
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "old")
	})
	// The container must span both volumes for the rollback to matter.
	for v, root := range r.roots {
		if _, err := os.Stat(filepath.Join(root, "old")); err != nil {
			t.Fatalf("volume %d has no container piece: %v", v, err)
		}
	}

	inj := fault.New(mustSpec(t, "seed=5,rename=1.0"))
	ctx := r.ctx(0, nil)
	ctx.Vols[1] = inj.Wrap(ctx.Vols[1], 1, nil)
	err := r.m.Rename(ctx, "old", "new")
	if err == nil {
		t.Fatalf("rename succeeded despite injected volume failure")
	}
	if !strings.Contains(err.Error(), "volume 1") {
		t.Errorf("error does not name the failing volume: %v", err)
	}

	// Old name must be fully intact, new name absent.
	clean := r.ctx(0, nil)
	if _, err := r.m.Stat(clean, "new"); !errors.Is(err, iofs.ErrNotExist) {
		t.Errorf("new name exists after failed rename: %v", err)
	}
	rd, err := r.m.OpenReader(clean, "old")
	if err != nil {
		t.Fatalf("old name unreadable after rollback: %v", err)
	}
	defer rd.Close()
	verifyN1(t, rd, n, blocks, bs)
}

// TestTruncateRewriteSmaller is the regression test for the stale size
// record bug: after O_TRUNC and a smaller rewrite, Stat must report the
// new size even though a larger pre-truncate record once existed — and
// even if such a record leaks back into the metadir.
func TestTruncateRewriteSmaller(t *testing.T) {
	const bs = int64(512)
	r := newRig(t, 1, plfs.Options{})
	writeSerial(t, r, "f", 8, bs)
	ctx := r.ctx(0, nil)
	if fi, err := r.m.Stat(ctx, "f"); err != nil || fi.Size != 8*bs {
		t.Fatalf("pre-truncate stat = %+v, %v; want size %d", fi, err, 8*bs)
	}

	if err := r.m.Truncate(ctx, "f"); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	writeSerial(t, r, "f", 2, bs)
	if fi, err := r.m.Stat(ctx, "f"); err != nil || fi.Size != 2*bs {
		t.Fatalf("post-rewrite stat = %+v, %v; want size %d", fi, err, 2*bs)
	}

	// A stale generation-0 record sneaking back in must not win.
	stale := filepath.Join(r.roots[0], "f", "meta", "sz.999999.0")
	if err := os.WriteFile(stale, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := plfs.NewMount(r.roots, plfs.Options{})
	if fi, err := m2.Stat(r.ctx(0, nil), "f"); err != nil || fi.Size != 2*bs {
		t.Fatalf("stat with stale record = %+v, %v; want size %d", fi, err, 2*bs)
	}
}

// TestLostPathReadsAsNotExist exercises the injector's permanent-loss
// class: with the index dropping "lost" (every access fails ErrNotExist),
// AllowPartial still serves the remaining shards.
func TestLostPathReadsAsNotExist(t *testing.T) {
	r := newRig(t, 1, plfs.Options{})
	writeSerial(t, r, "f", 4, 512)

	inj := fault.New(fault.Spec{Seed: 9, Lose: []string{"dropping.index"}})
	ctx := faulty(r.ctx(0, nil), inj)
	m2 := plfs.NewMount(r.roots, plfs.Options{AllowPartial: true})
	rd, err := m2.OpenReader(ctx, "f")
	if err != nil {
		t.Fatalf("partial open with lost index: %v", err)
	}
	defer rd.Close()
	if len(rd.Stats.SkippedShards) != 1 {
		t.Fatalf("SkippedShards = %v, want 1 entry", rd.Stats.SkippedShards)
	}
}
