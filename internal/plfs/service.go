package plfs

// This file implements the mount service: one long-lived process serving
// many tenants' containers at once.  The paper's premise is PLFS as
// shared transformative middleware, where metadata and index pressure —
// not data bandwidth — set the scaling wall; a service therefore needs
// three things a single-job mount does not: per-container concurrency
// that never serializes unrelated containers (the sharded state table in
// mount.go), one cache economy budgeting every tenant's resident bytes
// (economy.go), and admission control so a 32k-rank create storm cannot
// starve a small interactive job (the per-class gates here).  See
// DESIGN.md §14.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"plfs/internal/obs"
)

// ErrAdmission is the sentinel wrapped by operations the admission gate
// rejected after exhausting their backoff attempts.
var ErrAdmission = errors.New("admission rejected")

// ClassConfig bounds one admission class's concurrent operations.
type ClassConfig struct {
	// Name identifies the class ("" is the default class, used by every
	// tenant without an explicit TenantClass mapping).
	Name string
	// MaxInFlight caps the class's concurrently admitted operations
	// (a collective operation counts once, admitted by its root rank);
	// 0 means unlimited.
	MaxInFlight int
	// Attempts is the number of admission tries before rejecting
	// (default 8).  Backoff is the wait before the second try, doubling
	// each attempt; it is charged through the context's Sleeper —
	// virtual time under the simulator (deterministic in the seed, like
	// the retry machinery), real sleep over osfs.  Default 200µs.
	Attempts int
	Backoff  time.Duration
}

func (c ClassConfig) attempts() int {
	if c.Attempts <= 0 {
		return 8
	}
	return c.Attempts
}

func (c ClassConfig) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 200 * time.Microsecond
	}
	return c.Backoff
}

// ServiceOptions configure a mount service.
type ServiceOptions struct {
	// CacheBudgetBytes bounds the resident bytes of everything the
	// service's mounts cache — built global indexes and parsed index
	// shards, across all containers and tenants (default 256 MiB).
	CacheBudgetBytes int64
	// Classes declares the admission classes.  With no classes every
	// operation is admitted immediately (the gate only counts).
	Classes []ClassConfig
	// TenantClass maps a tenant name to its admission class; unmapped
	// tenants use the "" class when declared, else run ungated.
	TenantClass map[string]string
	// Health tunes the per-volume circuit breakers every mount of the
	// service shares (see health.go); the zero value uses the defaults.
	Health HealthConfig
}

func (o ServiceOptions) withDefaults() ServiceOptions {
	if o.CacheBudgetBytes <= 0 {
		o.CacheBudgetBytes = 256 << 20
	}
	return o
}

// Service is a multi-tenant mount service: it owns the shared cache
// economy and admission gates, and builds the Mounts that share them.
// One Service per process serves any number of mounts, tenants, and
// containers concurrently.
type Service struct {
	opt    ServiceOptions
	econ   *economy
	ixc    *indexCache
	health *Health // per-volume breakers, shared by every mount

	gates map[string]*gate // by class name; immutable after NewService

	mu      sync.Mutex
	nmounts int
	tenants map[string]*tenantStats

	// Repair ledger: every problem the repair daemon (or plfsctl scrub
	// -repair) finds ends up as exactly one of repaired or unrepairable,
	// so found = repaired + unrepairable over any quiescent window.
	repairTicks        atomic.Int64
	repairFound        atomic.Int64
	repairRepaired     atomic.Int64
	repairUnrepairable atomic.Int64
	repairDeferred     atomic.Int64
}

// gate is one class's in-flight-operation semaphore.  Admission is
// try-acquire with bounded, Sleeper-charged backoff rather than a
// blocking semaphore, so it stays deterministic under the discrete-event
// virtual clock (blocking on a host mutex would never appear in virtual
// time).
type gate struct {
	cfg ClassConfig

	mu       sync.Mutex
	inflight int
	peak     int
}

func (g *gate) tryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.MaxInFlight > 0 && g.inflight >= g.cfg.MaxInFlight {
		return false
	}
	g.inflight++
	if g.inflight > g.peak {
		g.peak = g.inflight
	}
	return true
}

func (g *gate) release() {
	g.mu.Lock()
	g.inflight--
	g.mu.Unlock()
}

type tenantStats struct {
	admitted  atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	retries   atomic.Int64
}

// NewService creates a mount service.
func NewService(opt ServiceOptions) *Service {
	opt = opt.withDefaults()
	econ := newEconomy(opt.CacheBudgetBytes)
	s := &Service{
		opt:     opt,
		econ:    econ,
		ixc:     newIndexCache(econ),
		health:  NewHealth(opt.Health),
		gates:   map[string]*gate{},
		tenants: map[string]*tenantStats{},
	}
	econ.register(s.ixc)
	for _, c := range opt.Classes {
		s.gates[c.Name] = &gate{cfg: c}
	}
	return s
}

// Mount attaches a mount to the service: it shares the service's cache
// economy, cross-open index cache, admission gates, and per-volume
// health table.
func (s *Service) Mount(roots []string, opt Options) *Mount {
	return newMount(roots, opt, s)
}

// Health returns the service's shared per-volume breaker table.
func (s *Service) Health() *Health { return s.health }

func (s *Service) nextMountID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nmounts++
	return fmt.Sprintf("m%d\x00", s.nmounts)
}

// gateFor resolves a tenant's admission gate (nil = ungated).
func (s *Service) gateFor(tenant string) *gate {
	class := ""
	if s.opt.TenantClass != nil {
		if c, ok := s.opt.TenantClass[tenantName(tenant)]; ok {
			class = c
		}
	}
	return s.gates[class]
}

func (s *Service) tenantStats(tenant string) *tenantStats {
	tenant = tenantName(tenant)
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantStats{}
		s.tenants[tenant] = ts
	}
	return ts
}

// admit passes one operation through the tenant's class gate, counting
// it as admitted; the returned release marks it completed.  A full gate
// retries with doubled Sleeper-charged backoff and rejects when the
// attempts run out, so every admitted operation ends as exactly one of
// completed or — never — both, and admitted = completed + rejected holds
// over any quiescent window.
func (s *Service) admit(ctx Ctx, op string) (func(), error) {
	tenant := tenantName(ctx.Tenant)
	ts := s.tenantStats(tenant)
	ts.admitted.Add(1)
	count(ctx.Obs, tenant, "admitted")
	g := s.gateFor(ctx.Tenant)
	done := func() {
		if g != nil {
			g.release()
		}
		ts.completed.Add(1)
		count(ctx.Obs, tenant, "completed")
	}
	if g == nil || g.tryAcquire() {
		return done, nil
	}
	backoff := g.cfg.backoff()
	for attempt := 1; attempt < g.cfg.attempts(); attempt++ {
		ts.retries.Add(1)
		count(ctx.Obs, tenant, "retries")
		ctx.sleep(backoff)
		backoff *= 2
		if g.tryAcquire() {
			return done, nil
		}
	}
	ts.rejected.Add(1)
	count(ctx.Obs, tenant, "rejected")
	return nil, fmt.Errorf("plfs: %s: tenant %q over class in-flight limit (%d): %w",
		op, tenant, g.cfg.MaxInFlight, ErrAdmission)
}

// count bumps the aggregate and per-tenant admission counters.
func count(reg *obs.Registry, tenant, what string) {
	if reg == nil {
		return
	}
	reg.Counter("plfs.svc." + what).Add(1)
	reg.Counter("plfs.svc.tenant." + tenant + "." + what).Add(1)
}

// admit gates one mount operation.  Standalone mounts are ungated.  A
// collective operation is admitted once, by rank 0, and the verdict is
// broadcast so every rank proceeds — or fails — together; per-rank
// admission would strand admitted ranks in the collective when a peer
// is rejected.
func (m *Mount) admit(ctx Ctx, op string) (func(), error) {
	if m.svc == nil {
		return func() {}, nil
	}
	if ctx.Comm == nil {
		return m.svc.admit(ctx, op)
	}
	var done func()
	var res any
	if ctx.Comm.Rank() == 0 {
		d, err := m.svc.admit(ctx, op)
		done = d
		res = errToStr(err)
	}
	if s := ctx.Comm.Bcast(0, admitTag, res); s != nil {
		if done != nil {
			// Unreachable today (rank 0 broadcast its own verdict), but
			// keep the ticket from leaking if the protocol ever changes.
			done()
		}
		return nil, fmt.Errorf("%s: %w", s.(string), ErrAdmission)
	}
	if done == nil {
		done = func() {}
	}
	return done, nil
}

// admitTag is the collective tag of the admission verdict broadcast.
const admitTag = 23

// ServiceStats is a point-in-time snapshot of the service.
type ServiceStats struct {
	Economy EconomyStats
	Tenants []TenantAdmission
	Classes []ClassStats
	Repair  RepairTotals
	Health  []VolHealth
}

// RepairTotals is the service's lifetime repair ledger.  Over any
// quiescent window Found = Repaired + Unrepairable.
type RepairTotals struct {
	Ticks        int64
	Found        int64
	Repaired     int64
	Unrepairable int64
	// Deferred counts work items skipped because their volume's breaker
	// was not closed — not part of the found ledger (nothing was
	// diagnosed), just a measure of how much the scrubber is steering.
	Deferred int64
}

// TenantAdmission is one tenant's admission ledger.  Over any quiescent
// window Admitted = Completed + Rejected.
type TenantAdmission struct {
	Tenant    string
	Admitted  int64
	Completed int64
	Rejected  int64
	Retries   int64
}

// ClassStats is one admission class's gate occupancy.
type ClassStats struct {
	Name         string
	MaxInFlight  int
	InFlight     int
	PeakInFlight int
}

// Stats snapshots the service's economy, tenant, and gate state.
func (s *Service) Stats() ServiceStats {
	out := ServiceStats{
		Economy: s.econ.stats(),
		Repair: RepairTotals{
			Ticks:        s.repairTicks.Load(),
			Found:        s.repairFound.Load(),
			Repaired:     s.repairRepaired.Load(),
			Unrepairable: s.repairUnrepairable.Load(),
			Deferred:     s.repairDeferred.Load(),
		},
		Health: s.health.Snapshot(),
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.tenants))
	for t := range s.tenants {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		ts := s.tenants[t]
		out.Tenants = append(out.Tenants, TenantAdmission{
			Tenant:    t,
			Admitted:  ts.admitted.Load(),
			Completed: ts.completed.Load(),
			Rejected:  ts.rejected.Load(),
			Retries:   ts.retries.Load(),
		})
	}
	s.mu.Unlock()
	cnames := make([]string, 0, len(s.gates))
	for c := range s.gates {
		cnames = append(cnames, c)
	}
	sort.Strings(cnames)
	for _, c := range cnames {
		g := s.gates[c]
		g.mu.Lock()
		out.Classes = append(out.Classes, ClassStats{
			Name: c, MaxInFlight: g.cfg.MaxInFlight,
			InFlight: g.inflight, PeakInFlight: g.peak,
		})
		g.mu.Unlock()
	}
	return out
}

// Publish snapshots the service state into a registry as gauges —
// idempotent (Set, not Add), so it can run after every phase.  Counter-
// style admission totals already stream through each operation's
// ctx.Obs; these gauges add the economy and gate views plfsctl top's
// tenant section renders.
func (s *Service) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := s.Stats()
	reg.Gauge("plfs.econ.budget_bytes").Set(float64(st.Economy.BudgetBytes))
	reg.Gauge("plfs.econ.used_bytes").Set(float64(st.Economy.UsedBytes))
	reg.Gauge("plfs.econ.evictions").Set(float64(st.Economy.Evictions))
	reg.Gauge("plfs.econ.evicted_bytes").Set(float64(st.Economy.EvictedBytes))
	for _, t := range st.Economy.TenantBytes {
		reg.Gauge("plfs.svc.tenant." + t.Tenant + ".cache_bytes").Set(float64(t.Bytes))
	}
	// The admission ledger also streams as counters through each op's own
	// ctx.Obs; re-publishing it here as gauges makes one registry (e.g.
	// plfsrun -tenants -metrics) carry the whole service view even when
	// the ops reported to per-tenant registries.
	for _, t := range st.Tenants {
		p := "plfs.svc.tenant." + t.Tenant + "."
		reg.Gauge(p + "admitted").Set(float64(t.Admitted))
		reg.Gauge(p + "completed").Set(float64(t.Completed))
		reg.Gauge(p + "rejected").Set(float64(t.Rejected))
		reg.Gauge(p + "retries").Set(float64(t.Retries))
	}
	for _, c := range st.Classes {
		name := c.Name
		if name == "" {
			name = defaultTenant
		}
		reg.Gauge("plfs.svc.class." + name + ".peak_inflight").Set(float64(c.PeakInFlight))
	}
	reg.Gauge("plfs.repair.ticks").Set(float64(st.Repair.Ticks))
	reg.Gauge("plfs.repair.found").Set(float64(st.Repair.Found))
	reg.Gauge("plfs.repair.repaired").Set(float64(st.Repair.Repaired))
	reg.Gauge("plfs.repair.unrepairable").Set(float64(st.Repair.Unrepairable))
	reg.Gauge("plfs.repair.deferred").Set(float64(st.Repair.Deferred))
	s.health.Publish(reg)
}
