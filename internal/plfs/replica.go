package plfs

// Index replication (DESIGN.md §15).  Under Options.IndexReplicas = N,
// every index artifact — per-writer index droppings and the flattened
// global index — commits to N distinct volumes: the primary at its
// canonical path, and replica k at the same container-relative path on
// volume (primaryVol+k) mod V.  Replicas are invisible to the normal
// dropping discovery (listDroppings walks only canonical hostdir
// locations), so they can never double-count; readers derive replica
// paths from the primary on demand and fail over replica-by-replica —
// before AllowPartial ever gets to skip a shard — turning a lost or
// browned-out index volume into a transparent recovery.
//
// Commit ordering: the primary commits first and must succeed; replica
// commits are best-effort (failures are counted as
// plfs.replica.write_errors and healed later by the repair daemon).
// Each copy goes through the writeFileAtomic temp+rename protocol, so a
// crash anywhere leaves every volume with either a complete copy or
// nothing — never a torn replica.

import (
	"errors"
	iofs "io/fs"
	"path"
	"strings"
	"time"

	"plfs/internal/payload"
)

// replicas resolves Options.IndexReplicas to an effective copy count,
// clamped to the volume count (replica placement needs distinct
// volumes).
func (m *Mount) replicas() int {
	r := m.opt.IndexReplicas
	if r > len(m.roots) {
		r = len(m.roots)
	}
	if r < 1 {
		r = 1
	}
	return r
}

// replicaPath maps a primary backend path to its k-th replica location:
// the same volume-relative path on volume (primaryVol+k) mod V.
func (m *Mount) replicaPath(p string, k int) (string, int) {
	v := m.volOfPath(p)
	rv := (v + k) % len(m.roots)
	rel := strings.TrimPrefix(p, m.roots[v])
	return path.Join(m.roots[rv], rel), rv
}

// ensureDirs creates dir and any missing parents on volume v (replica
// volumes have no shadow-container skeleton until a replica lands).
func (m *Mount) ensureDirs(ctx Ctx, v int, dir string) error {
	root := m.roots[v]
	rel := strings.Trim(strings.TrimPrefix(dir, root), "/")
	if rel == "" {
		return nil
	}
	p := root
	for _, seg := range strings.Split(rel, "/") {
		p = path.Join(p, seg)
		if err := ctx.Vols[v].Mkdir(p); err != nil && !errors.Is(err, iofs.ErrExist) {
			return err
		}
	}
	return nil
}

// commitReplicated writes final via writeFileAtomic and then copies it
// to the replica slots.  The primary commit's verdict is the caller's;
// replica failures are tolerated (counted, repaired later).
func (m *Mount) commitReplicated(ctx Ctx, final string, buf []byte, pol RetryPolicy, replace bool) error {
	v := m.volOfPath(final)
	if err := ctx.writeFileAtomic(ctx.Vols[v], final, buf, pol, replace); err != nil {
		return err
	}
	m.replicateFile(ctx, final, buf, pol)
	return nil
}

// replicateFile copies final's committed bytes to its replica slots
// (replace semantics: a stale or partial replica converges to buf).
// It returns how many replica commits failed.
func (m *Mount) replicateFile(ctx Ctx, final string, buf []byte, pol RetryPolicy) int {
	failed := 0
	for k := 1; k < m.replicas(); k++ {
		rp, rv := m.replicaPath(final, k)
		if m.volDegraded(ctx, rv) {
			// A degraded replica slot would put a multi-op atomic commit
			// on the writer's critical path at browned-out latency.  Leave
			// the index under-replicated: the repair daemon re-replicates
			// once the slot's breaker closes.
			failed++
			if ctx.Obs != nil {
				ctx.Obs.Counter("plfs.replica.deferred").Add(1)
			}
			continue
		}
		err := m.ensureDirs(ctx, rv, path.Dir(rp))
		if err == nil {
			err = ctx.writeFileAtomic(ctx.Vols[rv], rp, buf, pol, true)
		}
		if err != nil {
			failed++
			if ctx.Obs != nil {
				ctx.Obs.Counter("plfs.replica.write_errors").Add(1)
			}
		}
	}
	return failed
}

// removeReplicas deletes final's replica copies — must run wherever the
// primary is removed (truncate, unlink, recover dropping a corrupt
// global index), or a later failover would resurrect stale bytes.
func (m *Mount) removeReplicas(ctx Ctx, final string) {
	for k := 1; k < m.replicas(); k++ {
		rp, rv := m.replicaPath(final, k)
		_ = ctx.Vols[rv].Remove(rp)
	}
}

// fillMissingIndex synthesizes the canonical index path for a data
// dropping whose index file was not found by discovery.  With
// replication on, a copy may survive on a replica volume, so the read
// path must attempt the canonical path (and fail over) instead of
// silently dropping the shard.  Legitimately index-less droppings —
// empty data files from writers that never wrote — stay skipped.
func (m *Mount) fillMissingIndex(ctx Ctx, d *droppingRef) bool {
	if m.replicas() <= 1 || d.Data == "" {
		return false
	}
	if fi, err := ctx.Vols[d.Vol].Stat(d.Data); err == nil && fi.Size == 0 {
		return false
	}
	dir, base := path.Split(d.Data)
	d.Index = dir + indexPrefix + strings.TrimPrefix(base, dataPrefix)
	return true
}

// readIndexReplicated reads one index file (an index dropping or the
// global index) with the self-healing policy:
//
//   - breaker open on the primary's volume → a healthy replica is tried
//     first (the read is hedged away from the browned-out target);
//   - a failed candidate fails over to the next replica, so only a loss
//     of every copy surfaces an error (and only then can AllowPartial
//     skip the shard);
//   - a primary read that succeeds but exceeds the volume's rolling-p99
//     slowness cutoff reissues against a replica and the first success
//     wins.
//
// Every non-primary attempt charges plfs.read.hedged; a non-primary
// success charges plfs.read.hedge_wins.  Error failover additionally
// counts plfs.replica.failover.  With replication and hedging both off
// this is exactly the old single-path read.
func (m *Mount) readIndexReplicated(ctx Ctx, primary string, pol RetryPolicy) (payload.List, int64, error) {
	return m.readIndexReplicatedOpt(ctx, primary, pol, false)
}

// readIndexReplicatedOpt adds existence-probe semantics: with
// skipDegradedOnMissing set, a candidate on a degraded volume is not
// attempted once a healthy volume has already answered ErrNotExist —
// the caller is probing for a file that usually does not exist (the
// opportunistic global-index lookup), and paying a browned-out
// round-trip to hear "not found" again taxes every open.  A non-neutral
// failure (a retryable error: the healthy copy is broken, not absent)
// re-enables the degraded candidates, so genuine loss still fails over.
func (m *Mount) readIndexReplicatedOpt(ctx Ctx, primary string, pol RetryPolicy, skipDegradedOnMissing bool) (payload.List, int64, error) {
	R := m.replicas()
	pv := m.volOfPath(primary)
	if R <= 1 {
		return ctx.readAllRetried(ctx.Vols[pv], primary, pol)
	}
	paths := make([]string, R)
	vols := make([]int, R)
	paths[0], vols[0] = primary, pv
	for k := 1; k < R; k++ {
		paths[k], vols[k] = m.replicaPath(primary, k)
	}
	// Candidate order: primary first, unless hedging is on and the
	// primary's breaker is open — then the first healthy replica leads
	// and the primary falls to the back (it still serves as last resort).
	// State, not Avoid: foreground reads steer and never spend the
	// half-open probe budget — the periodic scrub is the prober, off the
	// workload's critical path (see Health.Avoid).
	order := make([]int, 0, R)
	hedging := false // breaker-open reorder (vs plain error failover)
	unhealthy := func(v int) bool {
		return m.health.State(m.roots[v], ctx.now()) != BreakerClosed
	}
	if m.opt.HedgedReads && m.health != nil && unhealthy(pv) {
		hedging = true
		for k := 1; k < R; k++ {
			if !unhealthy(vols[k]) {
				order = append(order, k)
			}
		}
		order = append(order, 0)
		for k := 1; k < R; k++ {
			if unhealthy(vols[k]) {
				order = append(order, k)
			}
		}
	} else {
		for k := 0; k < R; k++ {
			order = append(order, k)
		}
	}
	var firstErr error
	healthyTried := 0
	onlyMissing := true
	for n, k := range order {
		if skipDegradedOnMissing && m.health != nil && unhealthy(vols[k]) &&
			healthyTried > 0 && onlyMissing {
			continue
		}
		if m.health == nil || !unhealthy(vols[k]) {
			healthyTried++
		}
		// Hedged = a replica attempt made because the breaker steered us
		// there; a plain error failover (primary copy lost or sick) only
		// charges the failover counter, on success below.
		if k != 0 && hedging && ctx.Obs != nil {
			ctx.Obs.Counter("plfs.read.hedged").Add(1)
		}
		t0 := ctx.now()
		pl, size, err := ctx.readAllRetried(ctx.Vols[vols[k]], paths[k], pol)
		if err == nil {
			if k != 0 && ctx.Obs != nil {
				if hedging {
					ctx.Obs.Counter("plfs.read.hedge_wins").Add(1)
				}
				if n > 0 {
					ctx.Obs.Counter("plfs.replica.failover").Add(1)
				}
			}
			// Latency hedge: a slow primary success reissues against the
			// next candidate and the faster copy's bytes win (identical
			// content either way; this claws back tail latency).
			if k == 0 && n+1 < len(order) && m.opt.HedgedReads && m.health != nil &&
				m.health.Slow(m.roots[pv], time.Duration(ctx.now()-t0), size) {
				if ctx.Obs != nil {
					ctx.Obs.Counter("plfs.read.hedged").Add(1)
				}
				hk := order[n+1]
				if hpl, hsize, herr := ctx.readAllRetried(ctx.Vols[vols[hk]], paths[hk], pol); herr == nil {
					if ctx.Obs != nil {
						ctx.Obs.Counter("plfs.read.hedge_wins").Add(1)
					}
					return hpl, hsize, nil
				}
			}
			return pl, size, nil
		}
		if !errors.Is(err, iofs.ErrNotExist) {
			onlyMissing = false
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, 0, firstErr
}
