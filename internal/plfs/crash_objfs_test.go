package plfs_test

// The crash-torture invariants, re-proven without rename atomicity: over
// the object-store backend every atomic commit is a conditional PUT, so
// the sweep below enumerates every mutating-operation boundary of the
// conditional-PUT protocol (OpPut included) and asserts the same
// Recover+Scrub+read-back invariants the POSIX rename protocol is held
// to in crash_test.go.  A second set of tests covers the losing side of
// a conditional PUT: transient PUT failures and generation conflicts
// must be absorbed by the commit retry loop, never surfacing as torn or
// duplicated container state.

import (
	"fmt"
	"testing"

	"plfs/internal/fault"
	"plfs/internal/objfs"
	"plfs/internal/plfs"
)

// newObjRig is newRig over one shared engineless object store: every
// context's volumes are objfs backends onto the same flat keyspace, the
// crash-test analogue of volumes on one physical store.
func newObjRig(t testing.TB, volumes int, opt plfs.Options) (*rig, *objfs.Store) {
	t.Helper()
	s := objfs.New(objfs.DefaultConfig())
	roots := s.Roots(volumes)
	r := &rig{
		m:     plfs.NewMount(roots, opt),
		roots: roots,
		clock: &fakeClock{},
		newVols: func() []plfs.Backend {
			vols := make([]plfs.Backend, volumes)
			for i := range vols {
				vols[i] = objfs.Vol(s)
			}
			return vols
		},
	}
	return r, s
}

// TestObjfsN1WriteRead is the basic end-to-end check: a concurrent N-1
// workload through the full container protocol lands on the object
// store and reads back byte-identical, in both the eager and deferred
// index modes.
func TestObjfsN1WriteRead(t *testing.T) {
	for _, mode := range []plfs.Mode{plfs.Original, plfs.IndexFlatten} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			const n, blocks, bs = 4, 3, int64(512)
			r, s := newObjRig(t, 2, crashOpts(mode))
			runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
				writeN1(t, r.m, ctx, rank, n, blocks, bs, "shared")
			})
			rd, err := r.m.OpenReader(serialCtx(r, 0), "shared")
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			defer rd.Close()
			verifyN1(t, rd, n, blocks, bs)
			st := s.Stats()
			if st.CondPuts == 0 {
				t.Fatal("no conditional PUTs issued: commits took the rename path")
			}
			if st.Puts == 0 || st.Objects == 0 {
				t.Fatalf("implausible store stats: %+v", st)
			}
		})
	}
}

// TestObjfsCrashTortureSerial is TestCrashTortureSerial over the object
// store: crash the backend at every K-th mutating operation (conditional
// PUTs count), reopen the frozen keyspace, and hold recovery to the
// block-atomicity invariant.  No rename exists to be atomic here; the
// sweep passing proves conditional PUT alone carries the commit
// protocol.
func TestObjfsCrashTortureSerial(t *testing.T) {
	const n, blocks, bs = 3, 3, int64(512)
	const name = "tortured-obj"

	count := fault.New(fault.Spec{})
	r, _ := newObjRig(t, 1, crashOpts(plfs.Original))
	runSerialCrashWorkload(r, count, name, n, blocks, bs)
	verifyCrashState(t, r, name, n, blocks, bs)
	total := count.MutatingOps()
	if total < 10 {
		t.Fatalf("suspiciously few mutating ops: %d", total)
	}

	for k := int64(1); k <= total; k += crashStride(total) {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			inj := fault.New(mustSpec(t, fmt.Sprintf("crashat=%d", k)))
			r, _ := newObjRig(t, 1, crashOpts(plfs.Original))
			runSerialCrashWorkload(r, inj, name, n, blocks, bs)
			if !inj.Crashed() {
				t.Fatalf("crash point %d never fired (sweep is vacuous)", k)
			}
			verifyCrashState(t, r, name, n, blocks, bs)
		})
	}
}

// TestObjfsLosingWriterRetries injects a 25% transient failure rate on
// conditional PUTs: every commit in the container protocol loses a few
// rounds and must retry cleanly — the workload still completes and reads
// back byte-identical, and the injector confirms PUT faults actually
// fired (the sweep is not vacuous).
func TestObjfsLosingWriterRetries(t *testing.T) {
	const n, blocks, bs = 3, 3, int64(512)
	opt := crashOpts(plfs.IndexFlatten)
	opt.Retry = fastRetry(10)
	r, _ := newObjRig(t, 2, opt)
	inj := fault.New(mustSpec(t, "seed=11,put=0.25"))
	runRanks(t, r, n, func(ctx plfs.Ctx, rank int) {
		ctx = faulty(ctx, inj)
		writeN1(t, r.m, ctx, rank, n, blocks, bs, "contested")
	})
	if inj.Injected()[fault.OpPut] == 0 {
		t.Fatal("no conditional-PUT faults fired: the retry claim is untested")
	}
	rd, err := r.m.OpenReader(serialCtx(r, 0), "contested")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer rd.Close()
	verifyN1(t, rd, n, blocks, bs)
}

// TestConflictErrorClassification pins the retry classification the
// conditional-PUT protocol depends on: a generation conflict is
// transient (the losing writer re-reads and reissues), while the
// namespace verdicts stay permanent.
func TestConflictErrorClassification(t *testing.T) {
	if !plfs.Retryable(&objfs.ConflictError{Key: "k", Want: 1, Have: 2}) {
		t.Fatal("ConflictError must classify as retryable")
	}
	if plfs.Retryable(objfs.ErrExist) || plfs.Retryable(objfs.ErrNotExist) {
		t.Fatal("objfs namespace verdicts must classify as permanent")
	}
}
