package plfs

// Batched collective create: the 100k-rank answer to the open storm.
//
// The classic collective Create (writer.go) already coalesces the
// container skeleton through rank 0, but every rank still issues its own
// hostdir mkdir, openhosts create, and data-dropping create — at 100k
// ranks that is hundreds of thousands of serialized metadata RPCs into a
// handful of hot directories.  When the mount opts in (Options.BulkCreate)
// and every volume backend advertises BulkCreator, rank 0 instead gathers
// each rank's placement (subdir, stamp, host leadership), assembles one
// bulk-create batch per volume — directories first, files grouped by
// parent — and ships each as a single amortized RPC.  The verdict and the
// container's rebalance forwarding map are broadcast back, and each rank
// merely OpenWrites its pre-created dropping on the wide metadata read
// pool (Li/Latham's "Parallel Data Object Creation" shape).
//
// Because rank 0 resolves forwarding markers before placing droppings,
// batched writers follow migrated hostdirs to their new volumes — the
// rebalance protocol (rebalance.go) and this path compose.

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path"
	"sort"
)

// bulkCapable reports whether the batched create path can run: every
// volume backend (outermost wrapper) must advertise BulkCreator.
func bulkCapable(vols []Backend) bool {
	for _, b := range vols {
		if _, ok := b.(BulkCreator); !ok {
			return false
		}
	}
	return len(vols) > 0
}

// bulkReq is one rank's contribution to the batched open.
type bulkReq struct {
	Rank   int
	Host   int
	Leader bool
	Subdir int
	Stamp  string
}

// bulkVerdict is rank 0's broadcast answer: the batch outcome plus the
// container's forwarding map, so every rank places its dropping paths
// exactly where rank 0 created them.
type bulkVerdict struct {
	Err   string
	Moved map[int]int
}

// createBatched is the collective bulk-create open (see the file comment).
// The caller (Mount.Create) has already cleaned rel, wrapped the health
// context, and passed admission.
func (m *Mount) createBatched(ctx Ctx, rel string) (*Writer, error) {
	if ctx.Obs != nil {
		ctx.Obs.Counter("plfs.create.batched").Add(1)
	}
	subdir := m.placeSubdir(ctx, rel, ctx.Host)
	stamp := fmt.Sprintf("%d.%d", ctx.now(), ctx.Rank)
	req := bulkReq{Rank: ctx.Rank, Host: ctx.Host, Leader: ctx.HostLeader, Subdir: subdir, Stamp: stamp}
	reqs := ctx.Comm.Gather(0, 64, req)
	var res any
	if ctx.Comm.Rank() == 0 {
		res = m.bulkCreateRoot(ctx, rel, reqs)
	}
	verdict := ctx.Comm.Bcast(0, 256, res).(bulkVerdict)
	if verdict.Err != "" {
		return nil, errors.New(verdict.Err)
	}

	// From here the flow mirrors Create: pin the container state for the
	// session and advance its generation.
	st := m.pin(rel, ctx.Tenant)
	ok := false
	defer func() {
		if !ok {
			m.unpin(st)
		}
	}()
	st.mu.Lock()
	st.gen++
	st.builtKey, st.built = "", nil
	st.mu.Unlock()

	w := &Writer{m: m, ctx: ctx, rel: rel, st: st}
	w.vc = m.containerVol(rel)
	w.subdir = subdir
	w.stamp = stamp
	hpath, hv := m.hostdirPath(rel, w.subdir)
	if mv, moved := verdict.Moved[w.subdir]; moved && mv != hv && mv < len(m.roots) {
		hpath = path.Join(m.roots[mv], rel, fmt.Sprintf("%s%d", hostdirPrefix, w.subdir))
		hv = mv
	}
	w.subVol = hv
	w.dataPath = path.Join(hpath, dataPrefix+w.stamp)
	w.indexPath = path.Join(hpath, indexPrefix+w.stamp)
	var df File
	err := ctx.retry(m.opt.Retry, func() error {
		f, e := ctx.Vols[hv].OpenWrite(w.dataPath)
		if e == nil {
			df = f
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	w.dataFile = df
	ok = true
	return w, nil
}

// bulkCreateRoot is rank 0's half of the batched open: it creates the
// container skeleton, resolves forwarding markers, assembles one batch
// per volume, and ships each through the BulkCreator capability.
func (m *Mount) bulkCreateRoot(ctx Ctx, rel string, reqVals []any) bulkVerdict {
	if err := m.createSkeleton(ctx, rel); err != nil {
		return bulkVerdict{Err: err.Error()}
	}
	cpath, vc := m.containerPath(rel)
	ents, err := ctx.readDirRetried(ctx.Vols[vc], cpath, m.opt.Retry)
	if err != nil {
		return bulkVerdict{Err: err.Error()}
	}
	var moved map[int]int
	for id, t := range movedTargets(ents) {
		if t.Vol < len(m.roots) {
			if moved == nil {
				moved = map[int]int{}
			}
			moved[id] = t.Vol
		}
	}

	// Assemble per-volume batches.  Directories sort ahead of the files
	// under them (a parent path is a strict prefix), and sorting files
	// groups same-parent entries into runs — exactly what the BulkCreator
	// contract asks for.  Exclusive entries (data droppings) must be
	// fresh; everything else tolerates ErrExist, the usual polite race.
	type volBatch struct {
		dirs  []string
		files []string
	}
	batches := make([]volBatch, len(m.roots))
	seen := map[string]bool{}
	exclusive := map[string]bool{}
	addDir := func(v int, p string) {
		if !seen[p] {
			seen[p] = true
			batches[v].dirs = append(batches[v].dirs, p)
		}
	}
	addFile := func(v int, p string, excl bool) {
		if !seen[p] {
			seen[p] = true
			exclusive[p] = excl
			batches[v].files = append(batches[v].files, p)
		}
	}
	for _, rv := range reqVals {
		r := rv.(bulkReq)
		hv := m.subdirVol(vc, r.Subdir)
		mv, isMoved := moved[r.Subdir]
		if isMoved && mv != hv {
			hv = mv
		}
		hpath := path.Join(m.roots[hv], rel, fmt.Sprintf("%s%d", hostdirPrefix, r.Subdir))
		if hv != vc {
			// Shadow container on the remote volume; the canonical metalink
			// marker only for hash-placed hostdirs — a migrated hostdir is
			// already advertised by its forwarding marker.
			addDir(hv, path.Join(m.roots[hv], rel))
			if !isMoved {
				addFile(vc, path.Join(cpath, fmt.Sprintf("%s%d%s", hostdirPrefix, r.Subdir, metalinkSufx)), false)
			}
		}
		addDir(hv, hpath)
		if r.Leader {
			addFile(vc, path.Join(cpath, openHostsDir, fmt.Sprintf("host.%d", r.Host)), false)
		}
		addFile(hv, path.Join(hpath, dataPrefix+r.Stamp), true)
	}
	for v := range batches {
		sort.Strings(batches[v].dirs)
		sort.Strings(batches[v].files)
		ops := make([]BulkOp, 0, len(batches[v].dirs)+len(batches[v].files))
		for _, p := range batches[v].dirs {
			ops = append(ops, BulkOp{Path: p, Dir: true})
		}
		for _, p := range batches[v].files {
			ops = append(ops, BulkOp{Path: p})
		}
		if len(ops) == 0 {
			continue
		}
		errs := ctx.bulkCreateRetried(ctx.Vols[v].(BulkCreator), m.opt.Retry, ops)
		for i, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, iofs.ErrExist) && !exclusive[ops[i].Path] {
				continue
			}
			return bulkVerdict{Err: fmt.Sprintf("plfs: bulk create %s: %v", ops[i].Path, err)}
		}
	}
	return bulkVerdict{Moved: moved}
}

// bulkCreateRetried is CreateBulk under the retry policy, per entry:
// entries that failed transiently are resubmitted as a (smaller) batch,
// and — mirroring createRetried — an ErrExist on a resubmitted entry
// means an earlier attempt landed it, which is success.
func (c Ctx) bulkCreateRetried(bc BulkCreator, p RetryPolicy, ops []BulkOp) []error {
	out := bc.CreateBulk(ops)
	if !p.enabled() {
		return out
	}
	var pending []int
	for i, err := range out {
		if Retryable(err) {
			pending = append(pending, i)
		}
	}
	for k := 1; k < p.Attempts && len(pending) > 0; k++ {
		if c.Obs != nil {
			c.Obs.Counter("plfs.retry.attempts").Add(1)
		}
		c.retrySleep(p.delay(k, c.Rank))
		batch := make([]BulkOp, len(pending))
		for j, i := range pending {
			batch[j] = ops[i]
		}
		errs := bc.CreateBulk(batch)
		var next []int
		for j, i := range pending {
			err := errs[j]
			if err != nil && errors.Is(err, iofs.ErrExist) {
				err = nil // an earlier attempt landed this entry
			}
			out[i] = err
			if Retryable(err) {
				next = append(next, i)
			}
		}
		pending = next
	}
	if len(pending) > 0 && c.Obs != nil {
		c.Obs.Counter("plfs.retry.exhausted").Add(int64(len(pending)))
	}
	return out
}
