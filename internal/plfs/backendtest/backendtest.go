// Package backendtest is the executable form of the Backend contract
// documented in DESIGN.md §16: a table of conformance checks that every
// plfs.Backend implementation must pass, run verbatim against osfs,
// simfs, and objfs by each package's conformance test.
//
// Checks report failures with Errorf only (never FailNow), so a harness
// may run them on any goroutine — the simfs conformance test drives them
// from a discrete-event process.  Optional capabilities (VectoredIO,
// BatchAppender, CondPutter) are probed and silently skipped when the
// backend does not advertise them; the capability matrix in README's
// "Backends" section says who should pass what.
//
// Deliberately not checked, because implementations legitimately
// diverge (§16 documents each):
//
//   - Create in a missing parent directory (POSIX stores require the
//     parent; a flat object store has no parents).
//   - Rename over an existing target: both atomic replacement and an
//     ErrExist refusal are conforming, and the check accepts either.
//   - The error kind of removing a non-empty directory (only that it
//     fails and removes nothing).
package backendtest

import (
	"errors"
	iofs "io/fs"
	"testing"

	"plfs/internal/extent"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// Check is one conformance check.  b must be a fresh backend whose root
// directory exists and is empty; the check may create anything it likes
// below it.
type Check struct {
	Name string
	Fn   func(tb testing.TB, b plfs.Backend, root string)
}

// Checks returns the conformance table.
func Checks() []Check {
	return []Check{
		{"CreateExclusive", checkCreateExclusive},
		{"MissingNames", checkMissingNames},
		{"MkdirSemantics", checkMkdirSemantics},
		{"AppendOffsets", checkAppendOffsets},
		{"SparseWriteAt", checkSparseWriteAt},
		{"ReadPastEOF", checkReadPastEOF},
		{"RenameBasic", checkRenameBasic},
		{"RenameOverExisting", checkRenameOverExisting},
		{"RemoveNonEmptyDir", checkRemoveNonEmptyDir},
		{"ReadDirOrdering", checkReadDirOrdering},
		{"VectoredEquivalence", checkVectoredEquivalence},
		{"BatchAppend", checkBatchAppend},
		{"CondPut", checkCondPut},
		{"BulkCreate", checkBulkCreate},
	}
}

// Run executes every check as a subtest over an engineless backend.
// make is called once per subtest and must return a fresh backend and
// its empty root.  Backends that need an engine (simfs) iterate Checks
// themselves and drive each Fn from a simulated process.
func Run(t *testing.T, make func(t *testing.T) (plfs.Backend, string)) {
	for _, c := range Checks() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			b, root := make(t)
			c.Fn(t, b, root)
		})
	}
}

// bytesOf reads [0, size) of an open handle as materialized bytes.
func bytesOf(tb testing.TB, f plfs.File) []byte {
	tb.Helper()
	pl, err := f.ReadAt(0, f.Size())
	if err != nil {
		tb.Errorf("read back: %v", err)
		return nil
	}
	return pl.Materialize()
}

func checkCreateExclusive(tb testing.TB, b plfs.Backend, root string) {
	p := root + "/f"
	f, err := b.Create(p)
	if err != nil {
		tb.Errorf("create: %v", err)
		return
	}
	f.Close()
	if _, err := b.Create(p); !errors.Is(err, iofs.ErrExist) {
		tb.Errorf("second create: want errors.Is ErrExist, got %v", err)
	}
	// OpenWrite reopens without truncation.
	f, err = b.OpenWrite(p)
	if err != nil {
		tb.Errorf("openwrite existing: %v", err)
		return
	}
	f.Close()
}

func checkMissingNames(tb testing.TB, b plfs.Backend, root string) {
	p := root + "/missing"
	if _, err := b.OpenRead(p); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("openread missing: want ErrNotExist, got %v", err)
	}
	if _, err := b.OpenWrite(p); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("openwrite missing: want ErrNotExist, got %v", err)
	}
	if _, err := b.Stat(p); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("stat missing: want ErrNotExist, got %v", err)
	}
	if _, err := b.ReadDir(p); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("readdir missing: want ErrNotExist, got %v", err)
	}
	if err := b.Remove(p); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("remove missing: want ErrNotExist, got %v", err)
	}
	if err := b.Rename(p, root+"/elsewhere"); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("rename missing: want ErrNotExist, got %v", err)
	}
}

func checkMkdirSemantics(tb testing.TB, b plfs.Backend, root string) {
	d := root + "/d"
	if err := b.Mkdir(d); err != nil {
		tb.Errorf("mkdir: %v", err)
		return
	}
	if err := b.Mkdir(d); !errors.Is(err, iofs.ErrExist) {
		tb.Errorf("re-mkdir: want ErrExist, got %v", err)
	}
	fi, err := b.Stat(d)
	if err != nil || !fi.Dir {
		tb.Errorf("stat dir: %+v, %v", fi, err)
	}
	ents, err := b.ReadDir(d)
	if err != nil || len(ents) != 0 {
		tb.Errorf("readdir empty dir: %v ents, err %v", len(ents), err)
	}
	if err := b.Remove(d); err != nil {
		tb.Errorf("remove empty dir: %v", err)
	}
	if _, err := b.Stat(d); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("stat removed dir: want ErrNotExist, got %v", err)
	}
}

func checkAppendOffsets(tb testing.TB, b plfs.Backend, root string) {
	f, err := b.Create(root + "/f")
	if err != nil {
		tb.Errorf("create: %v", err)
		return
	}
	defer f.Close()
	off, err := f.Append(payload.FromBytes([]byte("hello")))
	if err != nil || off != 0 {
		tb.Errorf("first append: off %d, err %v (want 0, nil)", off, err)
	}
	off, err = f.Append(payload.FromBytes([]byte("way")))
	if err != nil || off != 5 {
		tb.Errorf("second append: off %d, err %v (want 5, nil)", off, err)
	}
	if sz := f.Size(); sz != 8 {
		tb.Errorf("size after appends: %d, want 8", sz)
	}
	if got := string(bytesOf(tb, f)); got != "helloway" {
		tb.Errorf("content %q, want %q", got, "helloway")
	}
}

func checkSparseWriteAt(tb testing.TB, b plfs.Backend, root string) {
	f, err := b.Create(root + "/f")
	if err != nil {
		tb.Errorf("create: %v", err)
		return
	}
	defer f.Close()
	if err := f.WriteAt(100, payload.FromBytes([]byte("tail"))); err != nil {
		tb.Errorf("sparse write: %v", err)
		return
	}
	if sz := f.Size(); sz != 104 {
		tb.Errorf("size %d, want 104", sz)
	}
	pl, err := f.ReadAt(98, 6)
	if err != nil {
		tb.Errorf("read across hole: %v", err)
		return
	}
	if got := pl.Materialize(); string(got) != "\x00\x00tail" {
		tb.Errorf("hole read %q, want two NULs then tail", got)
	}
}

func checkReadPastEOF(tb testing.TB, b plfs.Backend, root string) {
	f, err := b.Create(root + "/f")
	if err != nil {
		tb.Errorf("create: %v", err)
		return
	}
	defer f.Close()
	f.Append(payload.FromBytes([]byte("abc")))
	pl, err := f.ReadAt(1, 5)
	if err != nil {
		tb.Errorf("read past EOF: %v", err)
		return
	}
	if got := pl.Materialize(); string(got) != "bc\x00\x00\x00" {
		tb.Errorf("overhang %q, want bc then three NULs", got)
	}
	if pl.Len() != 5 {
		tb.Errorf("overhang length %d, want 5 (zero-filled)", pl.Len())
	}
}

func checkRenameBasic(tb testing.TB, b plfs.Backend, root string) {
	f, err := b.Create(root + "/old")
	if err != nil {
		tb.Errorf("create: %v", err)
		return
	}
	f.Append(payload.FromBytes([]byte("cargo")))
	f.Close()
	if err := b.Rename(root+"/old", root+"/new"); err != nil {
		tb.Errorf("rename: %v", err)
		return
	}
	if _, err := b.OpenRead(root + "/old"); !errors.Is(err, iofs.ErrNotExist) {
		tb.Errorf("old name after rename: want ErrNotExist, got %v", err)
	}
	f, err = b.OpenRead(root + "/new")
	if err != nil {
		tb.Errorf("open renamed: %v", err)
		return
	}
	defer f.Close()
	if got := string(bytesOf(tb, f)); got != "cargo" {
		tb.Errorf("renamed content %q, want %q", got, "cargo")
	}
}

func checkRenameOverExisting(tb testing.TB, b plfs.Backend, root string) {
	mk := func(name, content string) {
		f, err := b.Create(root + "/" + name)
		if err != nil {
			tb.Errorf("create %s: %v", name, err)
			return
		}
		f.Append(payload.FromBytes([]byte(content)))
		f.Close()
	}
	mk("src", "source")
	mk("dst", "target")
	err := b.Rename(root+"/src", root+"/dst")
	read := func(name string) string {
		f, err := b.OpenRead(root + "/" + name)
		if err != nil {
			return "<" + err.Error() + ">"
		}
		defer f.Close()
		return string(bytesOf(tb, f))
	}
	switch {
	case err == nil:
		// Atomic replacement (os.Rename): source gone, target is source.
		if _, serr := b.Stat(root + "/src"); !errors.Is(serr, iofs.ErrNotExist) {
			tb.Errorf("replace outcome: src still present (%v)", serr)
		}
		if got := read("dst"); got != "source" {
			tb.Errorf("replace outcome: dst %q, want %q", got, "source")
		}
	case errors.Is(err, iofs.ErrExist):
		// Refusal: both names intact, nothing moved.
		if got := read("src"); got != "source" {
			tb.Errorf("refusal outcome: src %q, want %q", got, "source")
		}
		if got := read("dst"); got != "target" {
			tb.Errorf("refusal outcome: dst %q, want %q", got, "target")
		}
	default:
		tb.Errorf("rename over existing: want nil or ErrExist, got %v", err)
	}
}

func checkRemoveNonEmptyDir(tb testing.TB, b plfs.Backend, root string) {
	d := root + "/d"
	if err := b.Mkdir(d); err != nil {
		tb.Errorf("mkdir: %v", err)
		return
	}
	f, err := b.Create(d + "/f")
	if err != nil {
		tb.Errorf("create in dir: %v", err)
		return
	}
	f.Close()
	if err := b.Remove(d); err == nil {
		tb.Errorf("remove non-empty dir succeeded")
	}
	if fi, err := b.Stat(d); err != nil || !fi.Dir {
		tb.Errorf("dir damaged by refused remove: %+v, %v", fi, err)
	}
	if err := b.Remove(d + "/f"); err != nil {
		tb.Errorf("remove child: %v", err)
	}
	if err := b.Remove(d); err != nil {
		tb.Errorf("remove emptied dir: %v", err)
	}
}

func checkReadDirOrdering(tb testing.TB, b plfs.Backend, root string) {
	for _, name := range []string{"b", "a", "c10", "c2"} {
		f, err := b.Create(root + "/" + name)
		if err != nil {
			tb.Errorf("create %s: %v", name, err)
			return
		}
		f.Append(payload.FromBytes([]byte(name)))
		f.Close()
	}
	if err := b.Mkdir(root + "/adir"); err != nil {
		tb.Errorf("mkdir: %v", err)
		return
	}
	ents, err := b.ReadDir(root)
	if err != nil {
		tb.Errorf("readdir: %v", err)
		return
	}
	want := []struct {
		name string
		dir  bool
		size int64
	}{{"a", false, 1}, {"adir", true, 0}, {"b", false, 1}, {"c10", false, 3}, {"c2", false, 2}}
	if len(ents) != len(want) {
		tb.Errorf("readdir: %d entries, want %d (%+v)", len(ents), len(want), ents)
		return
	}
	for i, w := range want {
		e := ents[i]
		if e.Name != w.name || e.Dir != w.dir || (!e.Dir && e.Size != w.size) {
			tb.Errorf("entry %d: %+v, want %+v", i, e, w)
		}
	}
}

func checkVectoredEquivalence(tb testing.TB, b plfs.Backend, root string) {
	fv, err := b.Create(root + "/vectored")
	if err != nil {
		tb.Errorf("create: %v", err)
		return
	}
	defer fv.Close()
	vio, ok := fv.(plfs.VectoredIO)
	if !ok {
		return // optional capability
	}
	fp, err := b.Create(root + "/plain")
	if err != nil {
		tb.Errorf("create plain: %v", err)
		return
	}
	defer fp.Close()

	segs := []extent.Ext{{Off: 0, Len: 3}, {Off: 10, Len: 4}, {Off: 5, Len: 2}}
	data := payload.FromBytes([]byte("abcdefghi"))
	if err := vio.WritevAt(segs, payload.List{data}); err != nil {
		tb.Errorf("writev: %v", err)
		return
	}
	pos := int64(0)
	for _, s := range segs {
		if err := fp.WriteAt(s.Off, data.Slice(pos, s.Len)); err != nil {
			tb.Errorf("plain write: %v", err)
			return
		}
		pos += s.Len
	}
	if fv.Size() != fp.Size() {
		tb.Errorf("sizes diverge: vectored %d, plain %d", fv.Size(), fp.Size())
	}
	got, err := vio.ReadvAt([]extent.Ext{{Off: 0, Len: 7}, {Off: 9, Len: 5}})
	if err != nil {
		tb.Errorf("readv: %v", err)
		return
	}
	a, err := fp.ReadAt(0, 7)
	if err != nil {
		tb.Errorf("plain read: %v", err)
		return
	}
	bb, err := fp.ReadAt(9, 5)
	if err != nil {
		tb.Errorf("plain read: %v", err)
		return
	}
	if !payload.ContentEqual(got, a.Concat(bb)) {
		tb.Errorf("vectored read %q != per-extent read %q",
			got.Materialize(), a.Concat(bb).Materialize())
	}
}

func checkBatchAppend(tb testing.TB, b plfs.Backend, root string) {
	f, err := b.Create(root + "/f")
	if err != nil {
		tb.Errorf("create: %v", err)
		return
	}
	defer f.Close()
	ba, ok := f.(plfs.BatchAppender)
	if !ok {
		return // optional capability
	}
	f.Append(payload.FromBytes([]byte("head")))
	off, err := ba.Appendv(payload.List{
		payload.FromBytes([]byte("-mid-")),
		payload.FromBytes([]byte("tail")),
	})
	if err != nil || off != 4 {
		tb.Errorf("appendv: off %d, err %v (want 4, nil)", off, err)
	}
	if got := string(bytesOf(tb, f)); got != "head-mid-tail" {
		tb.Errorf("batched content %q, want %q", got, "head-mid-tail")
	}
}

func checkCondPut(tb testing.TB, b plfs.Backend, root string) {
	cp, ok := b.(plfs.CondPutter)
	if !ok {
		return // optional capability
	}
	p := root + "/rec"
	err := cp.PutIfAbsent(p, []byte("v1"))
	if errors.Is(err, errors.ErrUnsupported) {
		return // a wrapper whose inner backend lacks the capability
	}
	if err != nil {
		tb.Errorf("put-if-absent: %v", err)
		return
	}
	if err := cp.PutIfAbsent(p, []byte("v2")); !errors.Is(err, iofs.ErrExist) {
		tb.Errorf("second put-if-absent: want ErrExist, got %v", err)
	}
	f, err := b.OpenRead(p)
	if err != nil {
		tb.Errorf("open after losing put: %v", err)
		return
	}
	got := string(bytesOf(tb, f))
	f.Close()
	if got != "v1" {
		tb.Errorf("losing put mutated object: %q, want %q", got, "v1")
	}
	if err := cp.PutReplace(p, []byte("v3")); err != nil {
		tb.Errorf("put-replace: %v", err)
		return
	}
	f, err = b.OpenRead(p)
	if err != nil {
		tb.Errorf("open after replace: %v", err)
		return
	}
	got = string(bytesOf(tb, f))
	f.Close()
	if got != "v3" {
		tb.Errorf("replace content %q, want %q", got, "v3")
	}
	// PutReplace also creates absent keys (generation "absent").
	if err := cp.PutReplace(root+"/fresh", []byte("new")); err != nil {
		tb.Errorf("put-replace absent: %v", err)
	}
}

func checkBulkCreate(tb testing.TB, b plfs.Backend, root string) {
	bc, ok := b.(plfs.BulkCreator)
	if !ok {
		return // optional capability
	}
	f, err := b.Create(root + "/taken")
	if err != nil {
		tb.Errorf("setup create: %v", err)
		return
	}
	f.Close()
	errs := bc.CreateBulk([]plfs.BulkOp{
		{Path: root + "/d", Dir: true},
		{Path: root + "/d/inner"}, // parented by the batch's own first entry
		{Path: root + "/taken"},   // name already exists
		{Path: root + "/d/second"},
	})
	if len(errs) != 4 {
		tb.Errorf("verdict count %d, want 4", len(errs))
		return
	}
	if errors.Is(errs[0], errors.ErrUnsupported) {
		return // a wrapper whose inner backend lacks the capability
	}
	if errs[0] != nil || errs[1] != nil || errs[3] != nil {
		tb.Errorf("fresh entries: %v, %v, %v (want nils)", errs[0], errs[1], errs[3])
	}
	if !errors.Is(errs[2], iofs.ErrExist) {
		tb.Errorf("taken entry: want errors.Is ErrExist, got %v", errs[2])
	}
	fi, err := b.Stat(root + "/d")
	if err != nil || !fi.Dir {
		tb.Errorf("bulk-created dir: %+v, %v", fi, err)
	}
	// Created files are closed and fresh: OpenWrite must attach, and the
	// losing entry must not have disturbed the existing file.
	for _, p := range []string{root + "/d/inner", root + "/d/second", root + "/taken"} {
		f, err := b.OpenWrite(p)
		if err != nil {
			tb.Errorf("openwrite %s after bulk: %v", p, err)
			continue
		}
		f.Close()
	}
}
