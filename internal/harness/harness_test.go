package harness_test

import (
	"testing"

	"plfs/internal/harness"
)

// TestAllFiguresRunQuick smoke-runs every figure and ablation at Quick
// scale with a single repetition: every experiment must complete and
// produce non-empty tables with the expected series.
func TestAllFiguresRunQuick(t *testing.T) {
	opts := harness.Options{Scale: harness.Quick, Reps: 1}
	for _, fig := range harness.Figures() {
		fig := fig
		t.Run(fig.ID, func(t *testing.T) {
			tabs, err := fig.Run(opts)
			if err != nil {
				t.Fatalf("%s: %v", fig.ID, err)
			}
			if len(tabs) == 0 {
				t.Fatalf("%s produced no tables", fig.ID)
			}
			for _, tab := range tabs {
				if len(tab.Points()) == 0 {
					t.Fatalf("%s: empty table %q", fig.ID, tab.Title)
				}
				for _, p := range tab.Points() {
					if p.N < 1 {
						t.Fatalf("%s: point with no observations: %+v", fig.ID, p)
					}
				}
			}
		})
	}
}

func TestFindFigure(t *testing.T) {
	if _, ok := harness.FindFigure("fig4"); !ok {
		t.Fatal("fig4 not found")
	}
	if _, ok := harness.FindFigure("nope"); ok {
		t.Fatal("bogus figure found")
	}
}
