package harness

import (
	"testing"

	"plfs/internal/plfs"
)

// TestTenantIndependence is the service's isolation acceptance test: a
// small interactive tenant's p99 container-open time must stay within 2x
// of its unloaded baseline while a gated batch tenant hammers unrelated
// containers on the same service.  Everything runs on the virtual clock,
// so both sides of the comparison are deterministic in the seed.
func TestTenantIndependence(t *testing.T) {
	probe := SaturationTenant{
		Name: "probe", Class: "interactive",
		Ranks: 2, Containers: 4, OpsPerRank: 4, OpSize: 16 << 10,
	}
	bulk := SaturationTenant{
		Name: "bulk", Class: "batch",
		Ranks: 8, Containers: 6, OpsPerRank: 16, OpSize: 256 << 10,
	}
	svc := plfs.ServiceOptions{
		CacheBudgetBytes: 16 << 20,
		Classes: []plfs.ClassConfig{
			{Name: "interactive", MaxInFlight: 8},
			{Name: "batch", MaxInFlight: 2},
		},
	}
	run := func(tenants ...SaturationTenant) SaturationReport {
		t.Helper()
		r, err := RunSaturation(SaturationJob{Seed: 7, Svc: svc, Tenants: tenants})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	probeOf := func(r SaturationReport) TenantOutcome {
		t.Helper()
		for _, out := range r.Tenants {
			if out.Tenant.Name == "probe" {
				return out
			}
		}
		t.Fatal("probe tenant missing from report")
		return TenantOutcome{}
	}

	base := probeOf(run(probe))
	if base.Opens == 0 || base.OpenP99 <= 0 {
		t.Fatalf("baseline probe recorded no opens: %+v", base)
	}
	if base.Admission.Rejected != 0 {
		t.Fatalf("baseline probe rejected %d ops on an idle service", base.Admission.Rejected)
	}

	loadedRep := run(bulk, probe)
	loaded := probeOf(loadedRep)
	if loaded.Admission.Rejected != 0 {
		t.Fatalf("probe rejected %d ops; the interactive class must not starve", loaded.Admission.Rejected)
	}
	if limit := 2 * base.OpenP99; loaded.OpenP99 > limit {
		t.Fatalf("probe p99 open %v under bulk load, want <= %v (2x unloaded %v)",
			loaded.OpenP99, limit, base.OpenP99)
	}

	// Virtual-clock determinism: the same seed reproduces the loaded run
	// bit-for-bit.
	again := run(bulk, probe)
	if again.Makespan != loadedRep.Makespan || again.OpenP99 != loadedRep.OpenP99 ||
		again.AggregateBytes != loadedRep.AggregateBytes {
		t.Fatalf("nondeterministic run: %+v vs %+v",
			again, loadedRep)
	}
	if probeOf(again).OpenP99 != loaded.OpenP99 {
		t.Fatalf("probe p99 differs across identical runs: %v vs %v",
			probeOf(again).OpenP99, loaded.OpenP99)
	}
}
