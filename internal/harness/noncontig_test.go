package harness_test

import (
	"testing"

	"plfs/internal/harness"
)

// TestNoncontigThakurOrdering checks the ablation reproduces the classic
// noncontiguous-access results (Thakur et al.) on the direct driver —
// naive < sieve < list <= two-phase for small strided writes — and the
// paper's transformative claim on the PLFS driver: list I/O through the
// log-structured container stays within ~10% of the contiguous append
// baseline.  The simulation is deterministic in the seed, so these are
// exact assertions, not flaky performance tests.
func TestNoncontigThakurOrdering(t *testing.T) {
	tabs, err := harness.AblationNoncontig(harness.Options{Scale: harness.Quick, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	bw := tabs[0]
	get := func(series string, x float64) float64 {
		p, ok := bw.Lookup(series, x)
		if !ok {
			t.Fatalf("missing point %s@%v", series, x)
		}
		return p.Mean
	}
	naive, sieve := get("ufs", 0), get("ufs", 1)
	list, twophase := get("ufs", 2), get("ufs", 3)
	if !(naive < sieve && sieve < list) {
		t.Errorf("ufs ordering broken: naive %.1f < sieve %.1f < list %.1f MB/s expected",
			naive, sieve, list)
	}
	if list > twophase*1.05 {
		t.Errorf("ufs list %.1f MB/s should not beat two-phase %.1f MB/s", list, twophase)
	}
	plList, plContig := get("plfs", 2), get("plfs", 4)
	if plList < 0.9*plContig {
		t.Errorf("plfs list %.1f MB/s more than 10%% below contiguous baseline %.1f MB/s",
			plList, plContig)
	}
	// The log structure should also collapse the method spread: on the
	// direct driver the access method is worth an order of magnitude
	// (list vs naive), while on PLFS every independent-writer method
	// lands within a few percent of the others — there is nothing left
	// for the method to optimize.
	if list < 5*naive {
		t.Errorf("ufs method spread too small to matter: naive %.1f, list %.1f MB/s", naive, list)
	}
	plNaive, plSieve := get("plfs", 0), get("plfs", 1)
	lo, hi := plNaive, plNaive
	for _, v := range []float64{plSieve, plList} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 1.1*lo {
		t.Errorf("plfs method spread should collapse: naive %.1f sieve %.1f list %.1f MB/s",
			plNaive, plSieve, plList)
	}
}
