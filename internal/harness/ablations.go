package harness

import (
	"fmt"
	"runtime"
	"time"

	"plfs/internal/adio"
	"plfs/internal/fault"
	"plfs/internal/obs"
	"plfs/internal/plfs"
	"plfs/internal/stats"
	"plfs/internal/workloads"
)

// AblationFlattenThreshold sweeps the Index Flatten buffer threshold: a
// threshold below the per-process entry count forces the overflow
// fallback, trading the cheap broadcast-open for a parallel read.
func AblationFlattenThreshold(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{
		Title:  "Ablation: Index Flatten threshold (entries per process)",
		XLabel: "threshold", YLabel: "seconds",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	entries := int(nb / op) // per-process index entries the workload makes
	for _, mul := range []float64{0.25, 0.5, 2, 8} {
		thr := int(float64(entries) * mul)
		var open, close stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			opt := o.n1MountOpt(plfs.IndexFlatten, 1)
			opt.FlattenThreshold = thr
			res, err := o.run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Opt: opt, Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true, ReadBack: true,
			})
			if err != nil {
				return nil, fmt.Errorf("flatten-threshold %d: %w", thr, err)
			}
			open.Add(res.ReadOpen.Seconds())
			close.Add(res.WriteClose.Seconds())
			o.log("ablation-flatten thr=%-7d rep %d: read-open %.3fs write-close %.3fs",
				thr, rep, res.ReadOpen.Seconds(), res.WriteClose.Seconds())
		}
		tab.AddSample("read-open", float64(thr), &open)
		tab.AddSample("write-close", float64(thr), &close)
	}
	return []*stats.Table{tab}, nil
}

// AblationGroupCount sweeps Parallel Index Read's group size, from a flat
// single group (the leader hierarchy degenerates) through the balanced
// sqrt default to per-process groups.
func AblationGroupCount(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{
		Title:  "Ablation: Parallel Index Read group size",
		XLabel: "group size", YLabel: "read open seconds",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	sqrtN := 16
	if o.Scale == Quick {
		sqrtN = 6
	}
	for _, gs := range []int{1, sqrtN, ranks / 4, ranks} {
		var s stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			opt := o.n1MountOpt(plfs.ParallelIndexRead, 1)
			opt.GroupSize = gs
			res, err := o.run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Opt: opt, Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true, ReadBack: true,
			})
			if err != nil {
				return nil, fmt.Errorf("group-size %d: %w", gs, err)
			}
			s.Add(res.ReadOpen.Seconds())
			o.log("ablation-groups gs=%-5d rep %d: read-open %.3fs", gs, rep, res.ReadOpen.Seconds())
		}
		tab.AddSample("read-open", float64(gs), &s)
	}
	return []*stats.Table{tab}, nil
}

// AblationDecodeWorkers A/Bs the real-CPU worker pool behind index
// aggregation: the same simulated run with DecodeWorkers=1 (serial
// baseline) and DecodeWorkers=GOMAXPROCS.  Simulated read-open time must
// be identical — the pool only parallelizes host CPU work — so the table
// reports both the (identical) simulated seconds and the host wall-clock
// per run, which is where the pool pays off.
func AblationDecodeWorkers(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{
		Title:  "Ablation: DecodeWorkers (simulated read-open vs host wall-clock)",
		XLabel: "workers", YLabel: "seconds",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	serialOpen := make([]float64, o.Reps)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		var open, wall stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			wo := o
			wo.DecodeWorkers = workers
			start := time.Now()
			res, err := o.run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Opt:    wo.n1MountOpt(plfs.ParallelIndexRead, 1),
				Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true, ReadBack: true,
			})
			if err != nil {
				return nil, fmt.Errorf("decode-workers %d: %w", workers, err)
			}
			elapsed := time.Since(start).Seconds()
			if workers == 1 {
				serialOpen[rep] = res.ReadOpen.Seconds()
			} else if res.ReadOpen.Seconds() != serialOpen[rep] {
				return nil, fmt.Errorf("decode-workers %d: simulated read-open %.6fs != serial %.6fs (pool must not change virtual time)",
					workers, res.ReadOpen.Seconds(), serialOpen[rep])
			}
			open.Add(res.ReadOpen.Seconds())
			wall.Add(elapsed)
			o.log("ablation-workers w=%-3d rep %d: sim read-open %.3fs host wall %.2fs",
				workers, rep, res.ReadOpen.Seconds(), elapsed)
		}
		tab.AddSample("sim-read-open", float64(workers), &open)
		tab.AddSample("host-wall", float64(workers), &wall)
	}
	return []*stats.Table{tab}, nil
}

// AblationLockUnit sweeps the underlying file system's range-lock
// granularity for direct N-1 writes: coarser units mean more false
// sharing among strided writers — the serialization PLFS sidesteps.
func AblationLockUnit(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{
		Title:  "Ablation: direct N-1 write bandwidth vs lock unit",
		XLabel: "lock unit KiB", YLabel: "MB/s",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	for _, unit := range []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		var s stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			cfg := o.small()
			cfg.LockUnit = unit
			res, err := o.run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: cfg, Net: defaultNet(),
				Kernel: workloads.MPIIOTest(nb, op), UsePLFS: false,
			})
			if err != nil {
				return nil, fmt.Errorf("lock-unit %d: %w", unit, err)
			}
			s.Add(res.WriteBW(ranks) / 1e6)
			o.log("ablation-lockunit unit=%-8d rep %d: writeBW %.1f MB/s", unit, rep, res.WriteBW(ranks)/1e6)
		}
		tab.AddSample("direct-write", float64(unit>>10), &s)
	}
	return []*stats.Table{tab}, nil
}

// AblationSpread compares federation spread modes for an N-N create storm
// on 10 volumes: no spreading, container spreading, subdir spreading, and
// both.
func AblationSpread(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{
		Title:  "Ablation: federation spread mode (N-N open, 10 volumes)",
		XLabel: "procs", YLabel: "seconds",
	}
	procs := 2048
	if o.Scale == Quick {
		procs = 128
	}
	type variant struct {
		name                string
		containers, subdirs bool
	}
	for _, v := range []variant{
		{"none", false, false},
		{"containers", true, false},
		{"subdirs", false, true},
		{"both", true, true},
	} {
		var s stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			cfg := o.cielo()
			cfg.Volumes = 10
			opt := plfs.Options{
				IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4,
				SpreadContainers: v.containers, SpreadSubdirs: v.subdirs,
			}
			res, err := o.run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: cfg, Net: defaultNet(),
				Opt: opt, Kernel: workloads.CreateStorm{FilesPerRank: 1}, UsePLFS: true,
			})
			if err != nil {
				return nil, fmt.Errorf("spread %s: %w", v.name, err)
			}
			s.Add(res.WriteOpen.Seconds())
			o.log("ablation-spread %-11s rep %d: open %.2fs", v.name, rep, res.WriteOpen.Seconds())
		}
		tab.AddSample(v.name, float64(procs), &s)
	}
	return []*stats.Table{tab}, nil
}

// AblationDegradedOST injects a degraded disk group (25% of nominal
// bandwidth, e.g. a rebuilding RAID set) and measures N-1 write bandwidth
// through PLFS and direct.  Fair-share striping drags every large
// transfer through the slow group, so both paths feel it; the ablation
// quantifies how much of PLFS's advantage survives a sick disk.  The
// degraded case also runs the fault injector: added per-op latency on
// both paths, and — on the PLFS path only — transient errors absorbed by
// the mount's retry policy, so the figure shows what resilience costs.
func AblationDegradedOST(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{
		Title:  "Ablation: write bandwidth with one degraded OST group (25% speed)",
		XLabel: "degraded (0=no,1=yes)", YLabel: "MB/s",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	for _, degraded := range []bool{false, true} {
		x := 0.0
		if degraded {
			x = 1
		}
		for _, plfsOn := range []bool{false, true} {
			series := "direct"
			if plfsOn {
				series = "plfs"
			}
			var s stats.Sample
			for rep := 0; rep < o.Reps; rep++ {
				cfg := o.small()
				j := Job{
					Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: cfg, Net: defaultNet(),
					Opt:    o.n1MountOpt(plfs.ParallelIndexRead, 1),
					Kernel: workloads.MPIIOTest(nb, op), UsePLFS: plfsOn,
					Fault: o.Fault,
				}
				if degraded {
					j.Cfg.DegradedGroup = 0
					j.Cfg.DegradedFactor = 0.25
					spec := fault.Spec{
						Seed:  o.BaseSeed + int64(rep),
						Delay: 200 * time.Microsecond,
					}
					if plfsOn {
						// Only the PLFS path can absorb transient errors;
						// direct I/O has no retry layer.
						spec.P = map[fault.Op]float64{
							fault.OpOpen: 0.02, fault.OpRead: 0.02, fault.OpAppend: 0.02,
						}
						j.Opt.Retry = plfs.RetryPolicy{Attempts: 5}
					}
					j.Fault = &spec
				}
				res, err := Run(j)
				if err != nil {
					return nil, fmt.Errorf("degraded-ost %s: %w", series, err)
				}
				s.Add(res.WriteBW(ranks) / 1e6)
				o.log("ablation-degraded %s degraded=%v rep %d: writeBW %.1f MB/s",
					series, degraded, rep, res.WriteBW(ranks)/1e6)
			}
			tab.AddSample(series, x, &s)
		}
	}
	return []*stats.Table{tab}, nil
}

// AblationChecksum measures what checksummed framing (Options.Checksum)
// costs an N-1 write: CRC32C trailers on index droppings, the global
// index, and the recovery footer, plus one CRC32C per data extent.  The
// hashing charge rides the virtual clock (Options.ChecksumCPUPerMB), so
// the figure shows the end-to-end price of integrity — the resilience
// counterpart to the degraded-OST figure.
func AblationChecksum(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	bw := &stats.Table{
		Title:  "Ablation: checksummed framing overhead (N-1 write)",
		XLabel: "checksum (0=off,1=on)", YLabel: "MB/s",
	}
	cl := &stats.Table{
		Title:  "Ablation: checksummed framing close cost",
		XLabel: "checksum (0=off,1=on)", YLabel: "close seconds",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	for _, on := range []bool{false, true} {
		x := 0.0
		if on {
			x = 1
		}
		var sBW, sCl stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			cfg := o.small()
			j := Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: cfg, Net: defaultNet(),
				Opt:    o.n1MountOpt(plfs.IndexFlatten, 1),
				Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true,
				Fault: o.Fault,
			}
			j.Opt.Checksum = on
			res, err := Run(j)
			if err != nil {
				return nil, fmt.Errorf("checksum on=%v: %w", on, err)
			}
			sBW.Add(res.WriteBW(ranks) / 1e6)
			sCl.Add(res.WriteClose.Seconds())
			o.log("ablation-checksum on=%v rep %d: writeBW %.1f MB/s close %.3fs",
				on, rep, res.WriteBW(ranks)/1e6, res.WriteClose.Seconds())
		}
		bw.AddSample("plfs", x, &sBW)
		cl.AddSample("plfs", x, &sCl)
	}
	return []*stats.Table{bw, cl}, nil
}

// AblationIndexCompress A/Bs run-compressed index records on the strided
// MPI-IO Test through Index Flatten: the same workload with and without
// run detection at flush, reporting the modeled read-open time and the
// index bytes the open actually read (plfs.open.index_bytes).  Strided
// N-1 is the best case — each writer's whole checkpoint collapses to one
// run record — so the bytes column shows the O(1)-per-writer property.
func AblationIndexCompress(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	open := &stats.Table{
		Title:  "Ablation: run-compressed index (read open)",
		XLabel: "compress (0=off,1=on)", YLabel: "seconds",
	}
	bytes := &stats.Table{
		Title:  "Ablation: run-compressed index (index bytes read at open)",
		XLabel: "compress (0=off,1=on)", YLabel: "KiB",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	for _, compress := range []bool{false, true} {
		x := 0.0
		if compress {
			x = 1
		}
		var sOpen, sBytes stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			reg := obs.New()
			opt := o.n1MountOpt(plfs.IndexFlatten, 1)
			opt.NoRunCompression = !compress
			res, err := Run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Opt: opt, Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true, ReadBack: true,
				Fault: o.Fault, Obs: reg,
			})
			if err != nil {
				return nil, fmt.Errorf("index-compress on=%v: %w", compress, err)
			}
			ib := reg.Counter("plfs.open.index_bytes").Value()
			sOpen.Add(res.ReadOpen.Seconds())
			sBytes.Add(float64(ib) / 1024)
			o.log("ablation-index-compress on=%v rep %d: read-open %.3fs index bytes %d",
				compress, rep, res.ReadOpen.Seconds(), ib)
		}
		open.AddSample("read-open", x, &sOpen)
		bytes.AddSample("index-bytes", x, &sBytes)
	}
	return []*stats.Table{open, bytes}, nil
}

// AblationIndexCache A/Bs the cross-open index cache on the reopen
// kernel: one strided checkpoint, then repeated open/read/close cycles
// against the unchanged container — the pattern of analysis tools that
// revisit a file.  With the cache, every open after the first skips
// aggregation entirely (plfs.index.cache.hit counts them); without it,
// each open pays the full index read.
func AblationIndexCache(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	open := &stats.Table{
		Title:  "Ablation: cross-open index cache (total open time, 8 reopens)",
		XLabel: "cache (0=off,1=on)", YLabel: "seconds",
	}
	reads := &stats.Table{
		Title:  "Ablation: cross-open index cache (index dropping reads)",
		XLabel: "cache (0=off,1=on)", YLabel: "reads",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	const reopens = 8
	nb, op := o.n1Bytes()
	for _, cache := range []bool{false, true} {
		x := 0.0
		if cache {
			x = 1
		}
		var sOpen, sReads stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			reg := obs.New()
			opt := o.n1MountOpt(plfs.ParallelIndexRead, 1)
			opt.NoIndexCache = !cache
			res, err := Run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Opt: opt, Kernel: workloads.ReopenN1(nb, op, reopens), UsePLFS: true,
				ReadBack: true, DropCaches: true, Fault: o.Fault, Obs: reg,
			})
			if err != nil {
				return nil, fmt.Errorf("index-cache on=%v: %w", cache, err)
			}
			ir := reg.Counter("plfs.open.index_reads").Value()
			hits := reg.Counter("plfs.index.cache.hit").Value()
			if cache && hits == 0 {
				return nil, fmt.Errorf("index-cache on: no cache hits across %d reopens", reopens)
			}
			sOpen.Add(res.ReadOpen.Seconds())
			sReads.Add(float64(ir))
			o.log("ablation-index-cache on=%v rep %d: total read-open %.3fs index reads %d cache hits %d",
				cache, rep, res.ReadOpen.Seconds(), ir, hits)
		}
		open.AddSample("read-open-total", x, &sOpen)
		reads.AddSample("index-reads", x, &sReads)
	}
	return []*stats.Table{open, reads}, nil
}

// AblationSieveGap sweeps the sieving read-coalescing gap on the
// checkpoint-restart kernel, whose overwrite round leaves op-sized dead
// gaps between each dropping's live extents.  A gap at or above the op
// size merges neighbours into one large read per dropping; the second
// table reports the price — physical read amplification
// (plfs.read.phys_bytes over plfs.read.bytes).
func AblationSieveGap(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	rd := &stats.Table{
		Title:  "Ablation: sieving read coalescing (restart read time)",
		XLabel: "gap KiB", YLabel: "seconds",
	}
	amp := &stats.Table{
		Title:  "Ablation: sieving read coalescing (read amplification)",
		XLabel: "gap KiB", YLabel: "phys bytes / logical bytes",
	}
	ranks := 256
	if o.Scale == Quick {
		ranks = 32
	}
	nb, op := o.n1Bytes()
	for _, gap := range []int64{0, op / 2, op, 8 * op} {
		var sRead, sAmp stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			reg := obs.New()
			opt := o.n1MountOpt(plfs.ParallelIndexRead, 1)
			opt.SieveGap = gap
			res, err := Run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Opt: opt, Kernel: workloads.RestartN1(nb, op), UsePLFS: true,
				ReadBack: true, DropCaches: true, Fault: o.Fault, Obs: reg,
			})
			if err != nil {
				return nil, fmt.Errorf("sieve-gap %d: %w", gap, err)
			}
			phys := reg.Counter("plfs.read.phys_bytes").Value()
			logical := reg.Counter("plfs.read.bytes").Value()
			a := 1.0
			if logical > 0 {
				a = float64(phys) / float64(logical)
			}
			sRead.Add(res.Read.Seconds())
			sAmp.Add(a)
			o.log("ablation-sieve-gap gap=%-8d rep %d: read %.3fs amplification %.3f",
				gap, rep, res.Read.Seconds(), a)
		}
		rd.AddSample("read", float64(gap>>10), &sRead)
		amp.AddSample("amplification", float64(gap>>10), &sAmp)
	}
	return []*stats.Table{rd, amp}, nil
}

// AblationPhases decomposes the Fig. 5 read-open into its span phases —
// list (container listing / global-index probe), decode (shard read +
// parse), merge (index resolve), exchange (collective transport) — using
// the observability registry (DESIGN.md §11).  Each phase value is the
// slowest rank's span for that phase (spans ride the virtual clock, so
// the maximum is the phase's contribution to critical-path open time).
func AblationPhases(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{
		Title:  "Ablation: read-open phase breakdown (Fig. 5 IOR kernel)",
		XLabel: "procs", YLabel: "seconds",
	}
	phases := []string{"open", "list", "decode", "merge", "exchange"}
	for _, procs := range o.kernelProcCounts() {
		samples := make(map[string]*stats.Sample, len(phases))
		for _, ph := range phases {
			samples[ph] = &stats.Sample{}
		}
		for rep := 0; rep < o.repsFor(procs); rep++ {
			reg := obs.New()
			k, hints := fig5Instance(o, "ior", procs)
			res, err := Run(Job{
				Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: o.small(), Net: defaultNet(),
				Opt:    o.n1MountOpt(plfs.ParallelIndexRead, 1),
				Kernel: k, Hints: hints, UsePLFS: true, ReadBack: true,
				DropCaches: true, Fault: o.Fault, Obs: reg,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-phases@%d: %w", procs, err)
			}
			for _, ph := range phases {
				samples[ph].Add(reg.Histogram("span." + ph).Max().Seconds())
			}
			o.log("ablation-phases procs=%-5d rep %d: open %.3fs = list %.3f + decode %.3f + merge %.3f + exchange %.3f (read-open %.3fs)",
				procs, rep,
				reg.Histogram("span.open").Max().Seconds(),
				reg.Histogram("span.list").Max().Seconds(),
				reg.Histogram("span.decode").Max().Seconds(),
				reg.Histogram("span.merge").Max().Seconds(),
				reg.Histogram("span.exchange").Max().Seconds(),
				res.ReadOpen.Seconds())
		}
		for _, ph := range phases {
			tab.AddSample(ph, float64(procs), samples[ph])
		}
	}
	return []*stats.Table{tab}, nil
}

// noncontigPoints enumerates the ablation-noncontig x-axis: the strided
// structured-mesh write issued through each I/O method, plus the
// contiguous baseline at x=4.
func noncontigPoints() []struct {
	X      float64
	Access workloads.Access
	Method adio.IOMethod
} {
	return []struct {
		X      float64
		Access workloads.Access
		Method adio.IOMethod
	}{
		{0, workloads.AccessStrided, adio.MethodNaive},
		{1, workloads.AccessStrided, adio.MethodSieve},
		{2, workloads.AccessStrided, adio.MethodList},
		{3, workloads.AccessStrided, adio.MethodTwoPhase},
		{4, workloads.AccessContig, adio.MethodList},
	}
}

// noncontigKernel builds the ablation's workload: a small-block strided
// write, the access shape where the method choice matters most (Thakur's
// "noncontiguous in file" quadrant, memory-contiguous buffers).
func noncontigKernel(o Options, access workloads.Access) workloads.Kernel {
	blocks := 64
	if o.Scale == Paper {
		blocks = 256
	}
	return workloads.Noncontig{
		Access: access, BlockSize: 2 << 10, BlocksPerRank: blocks,
		Steps: 2, MemContig: true, Seed: 7,
	}
}

// AblationNoncontig reproduces Thakur et al.'s method comparison for
// noncontiguous access on the strided mesh kernel: the same write
// pattern issued naively (one backend op per block), through write-side
// data sieving (locked RMW of the covering extent), through list I/O
// (one vectored op per call), and through two-phase collective
// buffering, on both drivers, with the contiguous write as the x=4
// baseline.  On the seek-dominated direct path the classic ordering
// emerges — naive < sieve < list <= two-phase — while PLFS's log
// structure turns every method into batched appends, so its series is
// flat and sits near the contiguous baseline (the paper's transformative
// argument restated at the ADIO layer).
func AblationNoncontig(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	bw := &stats.Table{
		Title:  "Ablation: noncontiguous write method (0=naive 1=sieve 2=list 3=twophase 4=contig)",
		XLabel: "method", YLabel: "write MB/s",
	}
	ranks := 32
	if o.Scale == Paper {
		ranks = 256
	}
	for _, p := range noncontigPoints() {
		for _, plfsOn := range []bool{false, true} {
			series := "ufs"
			if plfsOn {
				series = "plfs"
			}
			var s stats.Sample
			for rep := 0; rep < o.Reps; rep++ {
				reg := obs.New()
				res, err := Run(Job{
					Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
					Opt:    o.n1MountOpt(plfs.ParallelIndexRead, 1),
					Kernel: noncontigKernel(o, p.Access), Hints: adio.Hints{IOMethod: p.Method},
					UsePLFS: plfsOn, Fault: o.Fault, Obs: reg,
				})
				if err != nil {
					return nil, fmt.Errorf("noncontig %s %s: %w", p.Method, series, err)
				}
				s.Add(res.WriteBW(ranks) / 1e6)
				o.log("ablation-noncontig %-8s %-4s rep %d: writeBW %.1f MB/s (rmw %d, sieve read %d B, vec ops %d)",
					p.Method, series, rep, res.WriteBW(ranks)/1e6,
					reg.Counter("plfs.write.sieve_rmw").Value(),
					reg.Counter("plfs.write.sieve_read_bytes").Value(),
					reg.Counter("plfs.write.vec_ops").Value())
			}
			bw.AddSample(series, p.X, &s)
		}
	}
	return []*stats.Table{bw}, nil
}
