package harness

import (
	"fmt"
	"sort"
	"time"

	"plfs/internal/adio"
	"plfs/internal/mpi"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
	"plfs/internal/simfs"
	"plfs/internal/stats"
	"plfs/internal/workloads"
)

// MetaStormJob is one metadata-at-scale run: a collective create storm
// (workloads.CreateStorm100k) against the simulated POSIX cluster, with
// the two tentpole optimizations togglable — bulk-create batching and
// between-round volume rebalancing.
type MetaStormJob struct {
	Seed       int64
	Ranks      int
	// Containers per round.  The default is 5: over the default 4
	// volumes, static hashing places two of the five on one volume —
	// the hot-volume imbalance the rebalancing variant repairs.
	Containers int
	Rounds     int // storm rounds (default 3)
	// Cfg: zero Nodes = pfs.SmallCluster() federated over 4 metadata
	// volumes (skew needs a federation to be skewed across).
	Cfg pfs.Config
	Net        mpi.NetConfig
	// BulkCreate routes collective creates through the MDS bulk-create
	// RPC (Options.BulkCreate).
	BulkCreate bool
	// Rebalance runs a rank-0 rebalancing pass over every container
	// between rounds, feeding plfs.RebalancePolicy.Load with the
	// per-volume MDS busy-time deltas since the previous pass — the same
	// signal the pfs.vol<i>.mds_busy_seconds gauges export.
	Rebalance bool
}

// MetaStormReport summarizes a MetaStormJob.
type MetaStormReport struct {
	// Creates is the total create count (ranks x containers x rounds);
	// OpenRate divides it by the summed collective open time — the
	// per-op open rate the acceptance bar compares across variants.
	Creates  int64
	OpenTime time.Duration
	OpenRate float64
	// Skew is the final max/median per-volume MDS busy time; Moves
	// counts hostdir migrations the rebalancing passes performed.
	Skew  float64
	Moves int
	// Makespan is the virtual end-to-end time.
	Makespan time.Duration
}

// mdsSkew is max/median over the per-volume MDS busy times (1 when
// degenerate) — the harness-side mirror of the mount's load-skew gate.
func mdsSkew(busy []time.Duration) float64 {
	if len(busy) < 2 {
		return 1
	}
	secs := make([]float64, len(busy))
	for i, d := range busy {
		secs[i] = d.Seconds()
	}
	sort.Float64s(secs)
	maxL, med := secs[len(secs)-1], secs[len(secs)/2]
	if maxL <= 0 {
		return 1
	}
	if med <= 0 {
		return maxL / 1e-9
	}
	return maxL / med
}

// RunMetaStorm executes the collective create storm, deterministic in
// the seed.
func RunMetaStorm(j MetaStormJob) (MetaStormReport, error) {
	if j.Cfg.Nodes == 0 {
		j.Cfg = pfs.SmallCluster()
		j.Cfg.Volumes = 4
	}
	if j.Net == (mpi.NetConfig{}) {
		j.Net = mpi.DefaultNet()
	}
	if j.Containers <= 0 {
		j.Containers = 5
	}
	if j.Rounds <= 0 {
		j.Rounds = 3
	}
	eng := sim.NewEngine(j.Seed)
	ppn := j.Cfg.ProcsPerNode
	if j.Ranks > j.Cfg.Nodes*ppn {
		ppn = (j.Ranks + j.Cfg.Nodes - 1) / j.Cfg.Nodes
	}
	cfg := j.Cfg
	cfg.ProcsPerNode = ppn
	fs := pfs.New(eng, cfg)
	roots := make([]string, fs.Volumes())
	for i := range roots {
		roots[i] = fs.VolumeRoot(i)
	}
	world := mpi.NewWorld(eng, j.Ranks, ppn, j.Net)
	mount := plfs.NewMount(roots, plfs.Options{
		IndexMode:        plfs.ParallelIndexRead,
		NumSubdirs:       4,
		SpreadContainers: len(roots) > 1,
		BulkCreate:       j.BulkCreate,
	})

	// Between-round rebalancing state, touched only by rank 0 while every
	// other rank waits at the kernel's AfterRound barrier (the simulation
	// is cooperative, so the mid-run fs.Report read is safe).
	lastBusy := make([]time.Duration, fs.Volumes())
	moves := 0
	rebalance := func(ctx plfs.Ctx) error {
		busy := fs.Report().MDSBusy
		loads := make([]float64, len(busy))
		for v := range busy {
			loads[v] = (busy[v] - lastBusy[v]).Seconds()
		}
		copy(lastBusy, busy)
		pol := plfs.RebalancePolicy{Load: func(v int) float64 { return loads[v] }}
		for c := 0; c < j.Containers; c++ {
			rep, err := mount.Rebalance(ctx, fmt.Sprintf("meta-storm-c%d", c), pol)
			if err != nil {
				return err
			}
			moves += len(rep.Moves)
		}
		return nil
	}

	var res workloads.Result
	var kerr error
	world.SpawnAll(func(r *mpi.Rank) {
		ctx := simfs.FaultCtx(fs, r.Node(), r.Proc(), r.Rank(), ppn, nil)
		ctx.Comm = r.Comm()
		k := workloads.CreateStorm100k{Containers: j.Containers, Rounds: j.Rounds}
		if j.Rebalance {
			k.AfterRound = func(round int) {
				if r.Rank() != 0 || round == j.Rounds-1 {
					return // nothing left to optimize after the last round
				}
				if err := rebalance(ctx); err != nil && kerr == nil {
					kerr = fmt.Errorf("rebalance after round %d: %w", round, err)
				}
			}
		}
		env := &workloads.Env{Ctx: ctx, Driver: adio.PLFS{Mount: mount}, Path: k.Name()}
		out, err := k.Run(env, false)
		if err != nil && kerr == nil {
			kerr = fmt.Errorf("rank %d: %w", r.Rank(), err)
		}
		if r.Rank() == 0 {
			res = out
		}
	})
	if err := eng.Run(); err != nil {
		return MetaStormReport{}, err
	}
	if kerr != nil {
		return MetaStormReport{}, kerr
	}
	rep := MetaStormReport{
		Creates:  workloads.CreateStorm100k{Containers: j.Containers, Rounds: j.Rounds}.Creates(j.Ranks),
		OpenTime: res.WriteOpen,
		Skew:     mdsSkew(fs.Report().MDSBusy),
		Moves:    moves,
		Makespan: time.Duration(eng.Now()),
	}
	if s := rep.OpenTime.Seconds(); s > 0 {
		rep.OpenRate = float64(rep.Creates) / s
	}
	return rep, nil
}

// metaStormRanks is the x-axis for the ablation-metadata figure: the
// paper-scale sweep tops out past 100k ranks, the regime the tentpole
// targets.
func (o Options) metaStormRanks() []int {
	if o.Scale == Paper {
		return []int{8192, 32768, 102400}
	}
	return []int{64, 256}
}

// AblationMetadata compares the collective create storm across the three
// metadata configurations — static hashing, bulk-create batching, and
// batching plus dynamic volume rebalancing — reporting the per-op open
// rate and the final per-volume MDS load skew for each.
func AblationMetadata(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	rate := &stats.Table{
		Title:  "Ablation: metadata at scale — collective create rate",
		XLabel: "procs", YLabel: "creates/s",
	}
	skew := &stats.Table{
		Title:  "Ablation: metadata at scale — per-volume MDS load skew (max/median)",
		XLabel: "procs", YLabel: "skew",
	}
	variants := []struct {
		name            string
		bulk, rebalance bool
	}{
		{"static", false, false},
		{"batched", true, false},
		{"batched+rebalanced", true, true},
	}
	for _, n := range o.metaStormRanks() {
		for _, v := range variants {
			var sr, ss stats.Sample
			for rep := 0; rep < o.repsFor(n); rep++ {
				r, err := RunMetaStorm(MetaStormJob{
					Seed: o.BaseSeed + int64(rep), Ranks: n,
					BulkCreate: v.bulk, Rebalance: v.rebalance,
				})
				if err != nil {
					return nil, fmt.Errorf("ablation-metadata %s @%d: %w", v.name, n, err)
				}
				sr.Add(r.OpenRate)
				ss.Add(r.Skew)
				o.log("ablation-metadata %-18s n=%-6d rep %d: %.0f creates/s skew %.2f moves %d",
					v.name, n, rep, r.OpenRate, r.Skew, r.Moves)
			}
			rate.AddSample(v.name, float64(n), &sr)
			skew.AddSample(v.name, float64(n), &ss)
		}
	}
	return []*stats.Table{rate, skew}, nil
}
