package harness

import (
	"fmt"
	"os"
	"testing"
	"time"

	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

// TestProfileStorm and TestProfileFig4Point are manual scale probes:
// enable with PLFS_SCALE_TEST=1.
func TestProfileStorm(t *testing.T) {
	if os.Getenv("PLFS_SCALE_TEST") == "" {
		t.Skip("set PLFS_SCALE_TEST=1 to run scale probes")
	}
	for _, ranks := range []int{8192, 16384, 32768} {
		o := Options{Scale: Paper}.withDefaults()
		start := time.Now()
		res, err := fig8Meta(o, ranks, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("ranks=%d open=%.2fs wall=%.1fs\n", ranks, res.WriteOpen.Seconds(), time.Since(start).Seconds())
	}
}

func TestProfileFig4Point(t *testing.T) {
	if os.Getenv("PLFS_SCALE_TEST") == "" {
		t.Skip("set PLFS_SCALE_TEST=1 to run scale probes")
	}
	o := Options{Scale: Paper}.withDefaults()
	nb, op := o.n1Bytes()
	for _, mode := range []plfs.Mode{plfs.Original, plfs.ParallelIndexRead} {
		start := time.Now()
		res, rep, err := RunWithReport(Job{
			Seed: 1, Ranks: 2048, Cfg: o.small(), Net: defaultNet(),
			Opt:    o.n1MountOpt(mode, 1),
			Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true, ReadBack: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("mode=%-20s open=%.3fs readBW=%.0fMB/s wall=%.0fs\n  %s\n",
			mode, res.ReadOpen.Seconds(), res.ReadBW(2048)/1e6, time.Since(start).Seconds(), rep)
	}
}
