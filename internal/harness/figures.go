package harness

import (
	"fmt"

	"plfs/internal/adio"
	"plfs/internal/mpi"
	"plfs/internal/plfs"
	"plfs/internal/stats"
	"plfs/internal/workloads"
)

// Figure is one reproducible experiment from the paper's evaluation.
type Figure struct {
	ID    string
	Title string
	Run   func(Options) ([]*stats.Table, error)
}

// Figures returns the full reproduction suite in paper order.
func Figures() []Figure {
	return []Figure{
		{"fig2", "Summary of N-1 write speedups through PLFS", Fig2},
		{"fig4", "Read scaling: Original vs Index Flatten vs Parallel Index Read", Fig4},
		{"fig5a", "Pixie3D read bandwidth (PLFS vs direct)", fig5Kernel("fig5a", "pixie3d")},
		{"fig5b", "ARAMCO read bandwidth (PLFS vs direct)", fig5Kernel("fig5b", "aramco")},
		{"fig5c", "IOR read bandwidth (PLFS vs direct)", fig5Kernel("fig5c", "ior")},
		{"fig5d", "MADbench read bandwidth (PLFS vs direct)", fig5Kernel("fig5d", "madbench")},
		{"fig5e", "LANL 1 read bandwidth (PLFS vs direct)", fig5Kernel("fig5e", "lanl1")},
		{"fig5f", "LANL 3 read bandwidth (PLFS vs direct, collective buffering)", fig5Kernel("fig5f", "lanl3")},
		{"fig7", "N-N metadata: open/close time vs files, varying MDS count", Fig7},
		{"fig8a", "Large-scale read bandwidth (Cielo profile)", Fig8a},
		{"fig8b", "Large-scale N-N open time: PLFS-1 / PLFS-10 / PLFS-20", Fig8b},
		{"fig8c", "Large-scale N-1 open time: PLFS-1 vs PLFS-10", Fig8c},
		{"fig8d", "Large-scale N-N open: PLFS-10 vs direct (17x claim)", Fig8d},
		{"ablation-flatten", "Ablation: Index Flatten buffer threshold", AblationFlattenThreshold},
		{"ablation-groups", "Ablation: Parallel Index Read group size", AblationGroupCount},
		{"ablation-workers", "Ablation: DecodeWorkers pool (wall-clock A/B)", AblationDecodeWorkers},
		{"ablation-lockunit", "Ablation: direct N-1 write vs lock-unit size", AblationLockUnit},
		{"ablation-spread", "Ablation: federation spread modes", AblationSpread},
		{"ablation-degraded", "Ablation: one degraded OST group", AblationDegradedOST},
		{"ablation-checksum", "Ablation: checksummed framing overhead", AblationChecksum},
		{"ablation-phases", "Ablation: read-open phase breakdown (list/decode/merge/exchange)", AblationPhases},
		{"ablation-index-compress", "Ablation: run-compressed index records", AblationIndexCompress},
		{"ablation-index-cache", "Ablation: cross-open index cache (reopen kernel)", AblationIndexCache},
		{"ablation-sieve-gap", "Ablation: sieving read coalescing gap", AblationSieveGap},
		{"ablation-noncontig", "Ablation: noncontiguous I/O method (naive/sieve/list/twophase)", AblationNoncontig},
		{"ablation-tenants", "Ablation: mount-service saturation vs tenant count", AblationTenants},
		{"ablation-brownout", "Ablation: brownout self-healing (naive/hedged/hedged+replicated)", AblationBrownout},
		{"ablation-backend", "Ablation: posix vs object-store backend (create storm, prefix scan)", AblationBackend},
		{"ablation-metadata", "Ablation: metadata at scale (static vs batched vs batched+rebalanced)", AblationMetadata},
	}
}

// FindFigure resolves an id.
func FindFigure(id string) (Figure, bool) {
	for _, f := range Figures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// n1Bytes returns the MPI-IO Test volume per rank.
func (o Options) n1Bytes() (total, op int64) {
	if o.Scale == Paper {
		return 50 << 20, 50 << 10 // 50 MB in 50 KB ops (§IV.C)
	}
	return 4 << 20, 50 << 10
}

// Fig2 measures the write-phase speedup of PLFS over direct N-1 access
// for the workload suite (the paper's summary bar chart; our kernels
// stand in for its application set — see DESIGN.md).
func Fig2(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	ranks := 512
	if o.Scale == Quick {
		ranks = 32
	}
	tab := &stats.Table{
		Title:  "Figure 2: N-1 write speedup through PLFS (x = processes)",
		XLabel: "procs", YLabel: "write speedup (direct time / PLFS time)",
	}
	for _, k := range fig2Kernels(o, ranks) {
		var s stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			seed := o.BaseSeed + int64(rep)
			dir, err := o.run(Job{Seed: seed, Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Kernel: k.k, Hints: k.hints, UsePLFS: false})
			if err != nil {
				return nil, fmt.Errorf("fig2 %s direct: %w", k.k.Name(), err)
			}
			pl, err := o.run(Job{Seed: seed, Ranks: ranks, Cfg: o.small(), Net: defaultNet(),
				Opt: o.n1MountOpt(plfs.ParallelIndexRead, 1), Kernel: k.k, Hints: k.hints, UsePLFS: true})
			if err != nil {
				return nil, fmt.Errorf("fig2 %s plfs: %w", k.k.Name(), err)
			}
			s.Add(stats.Speedup(dir.WriteTotal().Seconds(), pl.WriteTotal().Seconds()))
			o.log("fig2 %-12s rep %d: direct %.2fs plfs %.2fs", k.k.Name(), rep,
				dir.WriteTotal().Seconds(), pl.WriteTotal().Seconds())
		}
		tab.AddSample(k.k.Name(), float64(ranks), &s)
	}
	return []*stats.Table{tab}, nil
}

type namedKernel struct {
	k     workloads.Kernel
	hints adio.Hints
}

func fig2Kernels(o Options, ranks int) []namedKernel {
	nb, nop := o.n1Bytes()
	big := int64(16 << 30)
	if o.Scale == Quick {
		big = 64 << 20
	}
	return []namedKernel{
		{workloads.MPIIOTest(nb, nop), adio.Hints{}},
		{workloads.LANL1(nb), adio.Hints{}},
		{workloads.LANL2(nb / 2), adio.Hints{}},
		{workloads.IOR(nb, 1<<20), adio.Hints{}},
		{workloads.Madbench{Matrices: 4, MatrixBytes: nb / 4}, adio.Hints{}},
		{workloads.Pixie3D{BytesPerRank: nb, Vars: 8}, adio.Hints{}},
		{workloads.Aramco{TotalBytes: big}, adio.Hints{}},
		{workloads.LANL3(big, ranks), adio.Hints{CollectiveBuffering: true, ProcsPerNode: 16}},
	}
}

// Fig4 reproduces the four panels of the read-scaling study: MPI-IO Test
// (50 MB per stream in 50 KB ops) through PLFS under the three index
// modes, sweeping the number of concurrent I/O streams.
func Fig4(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	mk := func(title, y string) *stats.Table {
		return &stats.Table{Title: title, XLabel: "procs", YLabel: y}
	}
	a := mk("Figure 4a: read open time (index aggregation)", "seconds")
	b := mk("Figure 4b: effective read bandwidth", "MB/s")
	c := mk("Figure 4c: write close time", "seconds")
	d := mk("Figure 4d: effective write bandwidth", "MB/s")
	nb, op := o.n1Bytes()
	modes := []plfs.Mode{plfs.Original, plfs.IndexFlatten, plfs.ParallelIndexRead}
	for _, procs := range o.procCounts() {
		for _, mode := range modes {
			var sa, sb, sc, sd stats.Sample
			for rep := 0; rep < o.repsFor(procs); rep++ {
				res, err := o.run(Job{
					Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: o.small(), Net: defaultNet(),
					Opt:    o.n1MountOpt(mode, 1),
					Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true, ReadBack: true,
				})
				if err != nil {
					return nil, fmt.Errorf("fig4 %v@%d: %w", mode, procs, err)
				}
				sa.Add(res.ReadOpen.Seconds())
				sb.Add(res.ReadBW(procs) / 1e6)
				sc.Add(res.WriteClose.Seconds())
				sd.Add(res.WriteBW(procs) / 1e6)
				o.log("fig4 %-20s procs=%-5d rep %d: open %.3fs readBW %.0f MB/s close %.3fs writeBW %.0f MB/s",
					mode, procs, rep, res.ReadOpen.Seconds(), res.ReadBW(procs)/1e6,
					res.WriteClose.Seconds(), res.WriteBW(procs)/1e6)
			}
			name := mode.String()
			a.AddSample(name, float64(procs), &sa)
			b.AddSample(name, float64(procs), &sb)
			c.AddSample(name, float64(procs), &sc)
			d.AddSample(name, float64(procs), &sd)
		}
	}
	return []*stats.Table{a, b, c, d}, nil
}

// fig5Kernel builds the Fig. 5 reproduction for one I/O kernel: effective
// read bandwidth, PLFS (Parallel Index Read, the chosen default) vs
// direct access, across process counts.
func fig5Kernel(id, name string) func(Options) ([]*stats.Table, error) {
	return func(o Options) ([]*stats.Table, error) {
		o = o.withDefaults()
		tab := &stats.Table{
			Title:  fmt.Sprintf("Figure %s: %s effective read bandwidth", id[3:], name),
			XLabel: "procs", YLabel: "MB/s",
		}
		for _, procs := range o.kernelProcCounts() {
			k, hints := fig5Instance(o, name, procs)
			for _, plfsOn := range []bool{false, true} {
				series := "direct"
				if plfsOn {
					series = "plfs"
				}
				var s stats.Sample
				for rep := 0; rep < o.repsFor(procs); rep++ {
					res, err := o.run(Job{
						Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: o.small(), Net: defaultNet(),
						Opt:    o.n1MountOpt(plfs.ParallelIndexRead, 1),
						Kernel: k, Hints: hints, UsePLFS: plfsOn, ReadBack: true,
						DropCaches: true,
					})
					if err != nil {
						return nil, fmt.Errorf("%s %s@%d: %w", id, series, procs, err)
					}
					s.Add(res.ReadBW(procs) / 1e6)
					o.log("%s %-7s procs=%-5d rep %d: readBW %.0f MB/s (open %.3fs)",
						id, series, procs, rep, res.ReadBW(procs)/1e6, res.ReadOpen.Seconds())
				}
				tab.AddSample(series, float64(procs), &s)
			}
		}
		return []*stats.Table{tab}, nil
	}
}

// fig5Instance builds the kernel configuration of §IV.D for a process
// count.
func fig5Instance(o Options, name string, procs int) (workloads.Kernel, adio.Hints) {
	perProc := int64(50 << 20) // 50 MB
	gig := int64(1 << 30)
	strong := int64(32 << 30)
	if o.Scale == Quick {
		perProc = 16 << 20
		gig = 64 << 20
		strong = 1 << 30
	}
	switch name {
	case "pixie3d":
		return workloads.Pixie3D{BytesPerRank: gig, Vars: 8}, adio.Hints{}
	case "aramco":
		return workloads.Aramco{TotalBytes: strong / 2}, adio.Hints{}
	case "ior":
		return workloads.IOR(perProc, 1<<20), adio.Hints{}
	case "madbench":
		return workloads.Madbench{Matrices: 8, MatrixBytes: perProc / 8}, adio.Hints{}
	case "lanl1":
		return workloads.LANL1(perProc), adio.Hints{}
	case "lanl3":
		return workloads.LANL3(strong, procs), adio.Hints{CollectiveBuffering: true, ProcsPerNode: 16}
	}
	panic("harness: unknown fig5 kernel " + name)
}

// Fig7 reproduces the small-cluster metadata study: an N-N open/close
// storm, PLFS with 1/3/6/9 metadata volumes vs direct access, sweeping
// the number of files.
func Fig7(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	open := &stats.Table{Title: "Figure 7a: N-N open time", XLabel: "files", YLabel: "seconds"}
	cls := &stats.Table{Title: "Figure 7b: N-N close time", XLabel: "files", YLabel: "seconds"}
	files := []int{256, 512, 1024, 2048}
	if o.Scale == Quick {
		files = []int{32, 64, 128}
	}
	type series struct {
		name string
		vols int // 0 = direct
	}
	variants := []series{{"plfs-1", 1}, {"plfs-3", 3}, {"plfs-6", 6}, {"plfs-9", 9}, {"w/o-plfs", 0}}
	for _, nf := range files {
		ranks := nf
		if max := 1024; ranks > max {
			ranks = max
		}
		if o.Scale == Quick && ranks > 64 {
			ranks = 64
		}
		per := nf / ranks
		for _, v := range variants {
			var so, sc stats.Sample
			for rep := 0; rep < o.repsFor(ranks); rep++ {
				cfg := o.small()
				if v.vols > 0 {
					cfg.Volumes = v.vols
				}
				res, err := o.run(Job{
					Seed: o.BaseSeed + int64(rep), Ranks: ranks, Cfg: cfg, Net: defaultNet(),
					Opt:    o.nnMountOpt(v.vols),
					Kernel: workloads.CreateStorm{FilesPerRank: per}, UsePLFS: v.vols > 0,
				})
				if err != nil {
					return nil, fmt.Errorf("fig7 %s@%d: %w", v.name, nf, err)
				}
				so.Add(res.WriteOpen.Seconds())
				sc.Add(res.WriteClose.Seconds())
				o.log("fig7 %-9s files=%-5d rep %d: open %.3fs close %.3fs",
					v.name, nf, rep, res.WriteOpen.Seconds(), res.WriteClose.Seconds())
			}
			open.AddSample(v.name, float64(nf), &so)
			cls.AddSample(v.name, float64(nf), &sc)
		}
	}
	return []*stats.Table{open, cls}, nil
}

// Fig8a reproduces the large-scale read study on the Cielo profile:
// N-N direct, N-N through PLFS, and N-1 through PLFS (Parallel Index
// Read, 10 federated metadata volumes).
func Fig8a(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{Title: "Figure 8a: large-scale effective read bandwidth", XLabel: "procs", YLabel: "MB/s"}
	perProc, op := int64(50<<20), int64(10<<20)
	if o.Scale == Quick {
		perProc, op = 8<<20, 2<<20
	}
	type series struct {
		name    string
		usePLFS bool
		kernel  func(procs int) workloads.Kernel
		opt     func() plfs.Options
	}
	variants := []series{
		{"n-n w/o plfs", false, func(int) workloads.Kernel { return workloads.NNFiles{BytesPerRank: perProc, OpSize: op} }, nil},
		{"n-n plfs", true, func(int) workloads.Kernel { return workloads.NNFiles{BytesPerRank: perProc, OpSize: op} },
			func() plfs.Options { return o.nnMountOpt(10) }},
		{"n-1 plfs", true, func(int) workloads.Kernel { return workloads.MPIIOTest(perProc, op) },
			func() plfs.Options { return o.n1MountOpt(plfs.ParallelIndexRead, 10) }},
	}
	for _, procs := range o.largeProcCounts() {
		for _, v := range variants {
			var s stats.Sample
			for rep := 0; rep < o.repsFor(procs); rep++ {
				cfg := o.cielo()
				cfg.Volumes = 10
				var opt plfs.Options
				if v.opt != nil {
					opt = v.opt()
				}
				res, err := o.run(Job{
					Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: cfg, Net: defaultNet(),
					Opt: opt, Kernel: v.kernel(procs), UsePLFS: v.usePLFS, ReadBack: true,
					DropCaches: true, // a restart reads from cold caches
				})
				if err != nil {
					return nil, fmt.Errorf("fig8a %s@%d: %w", v.name, procs, err)
				}
				s.Add(res.ReadBW(procs) / 1e6)
				o.log("fig8a %-14s procs=%-6d rep %d: readBW %.0f MB/s", v.name, procs, rep, res.ReadBW(procs)/1e6)
			}
			tab.AddSample(v.name, float64(procs), &s)
		}
	}
	return []*stats.Table{tab}, nil
}

// fig8Meta runs a Cielo-profile N-N create storm for one volume count.
func fig8Meta(o Options, procs, vols int, rep int) (workloads.Result, error) {
	cfg := o.cielo()
	if vols > 0 {
		cfg.Volumes = vols
	}
	return o.run(Job{
		Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: cfg, Net: defaultNet(),
		Opt:    o.nnMountOpt(vols),
		Kernel: workloads.CreateStorm{FilesPerRank: 1}, UsePLFS: vols > 0,
	})
}

// Fig8b: large N-N open time for PLFS with 1, 10, and 20 metadata volumes.
func Fig8b(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{Title: "Figure 8b: large-scale N-N open time", XLabel: "procs", YLabel: "seconds"}
	for _, procs := range o.metaProcCounts() {
		for _, vols := range []int{1, 10, 20} {
			var s stats.Sample
			for rep := 0; rep < o.repsFor(procs); rep++ {
				res, err := fig8Meta(o, procs, vols, rep)
				if err != nil {
					return nil, fmt.Errorf("fig8b plfs-%d@%d: %w", vols, procs, err)
				}
				s.Add(res.WriteOpen.Seconds())
				o.log("fig8b plfs-%-3d procs=%-6d rep %d: open %.2fs", vols, procs, rep, res.WriteOpen.Seconds())
			}
			tab.AddSample(fmt.Sprintf("plfs-%d", vols), float64(procs), &s)
		}
	}
	return []*stats.Table{tab}, nil
}

// Fig8c: large N-1 write-open time, PLFS-1 vs PLFS-10 (container creation
// for a single shared file; federation only helps once the per-writer
// metadata load is large).
func Fig8c(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{Title: "Figure 8c: large-scale N-1 open time", XLabel: "procs", YLabel: "seconds"}
	nb, op := int64(4<<20), int64(1<<20)
	for _, procs := range o.metaProcCounts() {
		for _, vols := range []int{1, 10} {
			var s stats.Sample
			for rep := 0; rep < o.repsFor(procs); rep++ {
				cfg := o.cielo()
				cfg.Volumes = vols
				res, err := o.run(Job{
					Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: cfg, Net: defaultNet(),
					Opt:    o.n1MountOpt(plfs.ParallelIndexRead, vols),
					Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true,
				})
				if err != nil {
					return nil, fmt.Errorf("fig8c plfs-%d@%d: %w", vols, procs, err)
				}
				s.Add(res.WriteOpen.Seconds())
				o.log("fig8c plfs-%-3d procs=%-6d rep %d: open %.2fs", vols, procs, rep, res.WriteOpen.Seconds())
			}
			tab.AddSample(fmt.Sprintf("plfs-%d", vols), float64(procs), &s)
		}
	}
	return []*stats.Table{tab}, nil
}

// Fig8d: large N-N open time, PLFS-10 vs direct access — the 17x headline.
func Fig8d(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	tab := &stats.Table{Title: "Figure 8d: N-N open, PLFS-10 vs direct", XLabel: "procs", YLabel: "seconds"}
	for _, procs := range o.metaProcCounts() {
		var direct, pl stats.Sample
		for rep := 0; rep < o.repsFor(procs); rep++ {
			d, err := fig8Meta(o, procs, 0, rep)
			if err != nil {
				return nil, fmt.Errorf("fig8d direct@%d: %w", procs, err)
			}
			p, err := fig8Meta(o, procs, 10, rep)
			if err != nil {
				return nil, fmt.Errorf("fig8d plfs@%d: %w", procs, err)
			}
			direct.Add(d.WriteOpen.Seconds())
			pl.Add(p.WriteOpen.Seconds())
			o.log("fig8d procs=%-6d rep %d: direct %.2fs plfs-10 %.2fs (speedup %.1fx)",
				procs, rep, d.WriteOpen.Seconds(), p.WriteOpen.Seconds(),
				stats.Speedup(d.WriteOpen.Seconds(), p.WriteOpen.Seconds()))
		}
		tab.AddSample("w/o-plfs", float64(procs), &direct)
		tab.AddSample("plfs-10", float64(procs), &pl)
		var sp stats.Sample
		sp.Add(stats.Speedup(direct.Mean(), pl.Mean()))
		tab.AddSample("speedup", float64(procs), &sp)
	}
	return []*stats.Table{tab}, nil
}

func defaultNet() mpi.NetConfig { return mpi.DefaultNet() }
