package harness

import (
	"fmt"

	"plfs/internal/plfs"
	"plfs/internal/stats"
	"plfs/internal/workloads"
)

// AblationBackend runs the same PLFS workloads over the POSIX cluster
// simulation and the flat object store, isolating what the backend
// choice moves.  Two pathologies disappear on objfs for free: the N-N
// create storm no longer serializes on shared-directory create locks
// (every dropping is an independent key), and index commits no longer
// funnel through rename (conditional PUT publishes in one round trip).
// Two costs replace them, and the figure makes both visible: the
// read-side hostdir listing becomes a paged prefix scan priced per key
// scanned, and every dropping carries per-object metadata on the KV
// tier instead of inode state amortized by the directory.
func AblationBackend(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	backends := []string{BackendPosix, BackendObjfs}
	meta := &stats.Table{
		Title:  "Ablation: backend — N-N create storm (directory create serialization)",
		XLabel: "files", YLabel: "seconds",
	}
	read := &stats.Table{
		Title:  "Ablation: backend — N-1 restart read-open (readdir vs prefix scan)",
		XLabel: "procs", YLabel: "seconds",
	}

	// Panel 1: the create storm.  On posix every open contends for the
	// shared hostdir's create lock; on objfs a create is one conditional
	// PUT against a flat keyspace and the storm embarrasses itself in
	// parallel.  Close time carries the commit protocol (rename vs PUT).
	files := []int{32, 64, 128}
	ranks := 32
	if o.Scale == Paper {
		files = []int{256, 512, 1024}
		ranks = 128
	}
	for _, nf := range files {
		r := ranks
		if r > nf {
			r = nf
		}
		per := nf / r
		for _, be := range backends {
			var so, sc stats.Sample
			for rep := 0; rep < o.repsFor(r); rep++ {
				res, err := o.run(Job{
					Seed: o.BaseSeed + int64(rep), Ranks: r, Cfg: o.small(), Net: defaultNet(),
					Opt:     o.nnMountOpt(1),
					Kernel:  workloads.CreateStorm{FilesPerRank: per},
					UsePLFS: true, Backend: be,
				})
				if err != nil {
					return nil, fmt.Errorf("ablation-backend storm %s@%d: %w", be, nf, err)
				}
				so.Add(res.WriteOpen.Seconds())
				sc.Add(res.WriteClose.Seconds())
				o.log("ablation-backend %-5s files=%-5d rep %d: open %.3fs close %.3fs",
					be, nf, rep, res.WriteOpen.Seconds(), res.WriteClose.Seconds())
			}
			meta.AddSample(be+"-open", float64(nf), &so)
			meta.AddSample(be+"-close", float64(nf), &sc)
		}
	}

	// Panel 2: the restart read.  Read-open is dominated by hostdir
	// discovery plus index aggregation; on objfs the listing is a paged
	// prefix scan whose cost grows with the dropping count — the price
	// paid for losing directories.
	nb, op := o.n1Bytes()
	for _, procs := range o.procCounts() {
		for _, be := range backends {
			var s stats.Sample
			for rep := 0; rep < o.repsFor(procs); rep++ {
				res, err := o.run(Job{
					Seed: o.BaseSeed + int64(rep), Ranks: procs, Cfg: o.small(), Net: defaultNet(),
					Opt:    o.n1MountOpt(plfs.ParallelIndexRead, 1),
					Kernel: workloads.MPIIOTest(nb, op), UsePLFS: true, ReadBack: true,
					DropCaches: true, Backend: be,
				})
				if err != nil {
					return nil, fmt.Errorf("ablation-backend read %s@%d: %w", be, procs, err)
				}
				s.Add(res.ReadOpen.Seconds())
				o.log("ablation-backend %-5s procs=%-5d rep %d: readopen %.3fs readBW %.0f MB/s",
					be, procs, rep, res.ReadOpen.Seconds(), res.ReadBW(procs)/1e6)
			}
			read.AddSample(be, float64(procs), &s)
		}
	}
	return []*stats.Table{meta, read}, nil
}
