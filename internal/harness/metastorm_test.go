package harness

import "testing"

// TestMetaStormAcceptance holds the ablation-metadata figure to the
// issue's bar at test scale: bulk-create batching delivers at least 5x
// the static per-op open rate, and rebalancing strictly reduces the
// final per-volume MDS load skew, deterministically per seed.
func TestMetaStormAcceptance(t *testing.T) {
	const ranks = 256
	run := func(bulk, rebalance bool) MetaStormReport {
		t.Helper()
		r, err := RunMetaStorm(MetaStormJob{
			Seed: 7, Ranks: ranks, BulkCreate: bulk, Rebalance: rebalance,
		})
		if err != nil {
			t.Fatalf("meta-storm(bulk=%v rebalance=%v): %v", bulk, rebalance, err)
		}
		if r.Creates == 0 || r.OpenRate <= 0 {
			t.Fatalf("meta-storm(bulk=%v rebalance=%v): empty report %+v", bulk, rebalance, r)
		}
		return r
	}
	static := run(false, false)
	batched := run(true, false)
	rebal := run(true, true)

	if batched.OpenRate < 5*static.OpenRate {
		t.Errorf("batched open rate %.0f/s < 5x static %.0f/s", batched.OpenRate, static.OpenRate)
	}
	if rebal.Moves == 0 {
		t.Error("rebalancing pass migrated nothing")
	}
	if rebal.Skew >= batched.Skew {
		t.Errorf("rebalanced skew %.2f did not improve on batched %.2f", rebal.Skew, batched.Skew)
	}

	// Determinism: the same seed replays to the same report.
	again := run(true, true)
	if again != rebal {
		t.Errorf("replay diverged: %+v vs %+v", again, rebal)
	}
}
