package harness_test

import (
	"testing"

	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

// TestObjfsKernelSuite runs the kernel suite over the object-store
// backend with content verification on: every workload must complete
// and read back byte-identical through the container protocol with
// commits carried by conditional PUT instead of rename.  The same jobs
// run over posix as a control — the backends must agree on logical
// content, only on cost.
func TestObjfsKernelSuite(t *testing.T) {
	jobs := []struct {
		name string
		k    workloads.Kernel
	}{
		{"restart-n1", workloads.RestartN1(1<<20, 64<<10)},
		{"mpi-io-test", workloads.MPIIOTest(1<<20, 64<<10)},
		{"noncontig", workloads.Noncontig{
			Access: workloads.AccessStrided, BlockSize: 32 << 10, BlocksPerRank: 4,
			Steps: 2, MemContig: true, Seed: 7,
		}},
		{"create-storm", workloads.CreateStorm{FilesPerRank: 3}},
	}
	for _, be := range []string{harness.BackendPosix, harness.BackendObjfs} {
		for _, j := range jobs {
			t.Run(be+"/"+j.name, func(t *testing.T) {
				nn := j.name == "create-storm"
				opt := plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4, SpreadSubdirs: !nn}
				if nn {
					opt.SpreadContainers = true
				}
				cfg := pfs.SmallCluster()
				cfg.Volumes = 2
				res, err := harness.Run(harness.Job{
					Seed: 42, Ranks: 8, Cfg: cfg, Net: mpi.DefaultNet(), Backend: be,
					Opt: opt, Kernel: j.k, UsePLFS: true,
					ReadBack: !nn, Verify: true, DropCaches: true,
				})
				if err != nil {
					t.Fatalf("%s over %s: %v", j.name, be, err)
				}
				if res.BytesPerRank < 0 {
					t.Fatalf("negative volume: %+v", res)
				}
				if !nn && res.ReadTotal() <= 0 {
					t.Fatalf("%s over %s: no read phase recorded", j.name, be)
				}
			})
		}
	}
}

// TestObjfsSaturationAndBrownout covers the two service runners on the
// object store: the multi-tenant saturation harness and the brownout
// self-healing harness (both verify read-back internally).
func TestObjfsSaturationAndBrownout(t *testing.T) {
	t.Run("saturation", func(t *testing.T) {
		rep, err := harness.RunSaturation(harness.SaturationJob{
			Seed: 3, Backend: harness.BackendObjfs,
			Svc: plfs.ServiceOptions{
				CacheBudgetBytes: 8 << 20,
				Classes:          []plfs.ClassConfig{{Name: "batch", MaxInFlight: 2}},
			},
			Tenants: []harness.SaturationTenant{
				{Name: "t0", Class: "batch", Ranks: 2, Containers: 2, OpsPerRank: 4, OpSize: 32 << 10},
				{Name: "t1", Class: "batch", Ranks: 2, Containers: 2, OpsPerRank: 4, OpSize: 32 << 10},
			},
		})
		if err != nil {
			t.Fatalf("saturation over objfs: %v", err)
		}
		if rep.AggregateBytes == 0 || rep.Makespan <= 0 {
			t.Fatalf("implausible saturation report: %+v", rep)
		}
	})
	t.Run("brownout", func(t *testing.T) {
		rep, err := harness.RunBrownout(harness.BrownoutJob{
			Seed: 5, Backend: harness.BackendObjfs,
			Ranks: 4, Steps: 6, OpsPerRank: 4, OpSize: 32 << 10,
			BrownVol: 0, BrownFactor: 64, BrownFrom: 2, BrownTo: 4,
			Repair: true,
		})
		if err != nil {
			t.Fatalf("brownout over objfs: %v", err)
		}
		if rep.HealthyBW <= 0 {
			t.Fatalf("no healthy bandwidth measured: %+v", rep)
		}
	})
}

// TestBackendUnknownRejected pins the validation path: an unrecognized
// backend name must fail fast, not fall through to posix.
func TestBackendUnknownRejected(t *testing.T) {
	_, err := harness.Run(harness.Job{
		Seed: 1, Ranks: 2, Cfg: pfs.SmallCluster(), Net: mpi.DefaultNet(), Backend: "s3",
		Kernel: workloads.MPIIOTest(1<<16, 1<<14), UsePLFS: true,
	})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
}
