package harness

// Chaos soak: a multi-tenant Service under combined brownout, transient,
// and crash-point injection with the repair daemon ticking.  Tenant A (2
// ranks) runs the full brownout schedule and self-verifies every read;
// tenant B (1 rank) crashes mid-run at a fixed mutating-op count.  After
// both jobs end, a clean audit pass repairs the crash residue and reads
// tenant B's committed containers back byte-identically with zero
// skipped shards.  The whole run — bandwidths, counters, ledger — must
// be bit-deterministic in the seed.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"plfs/internal/adio"
	"plfs/internal/fault"
	"plfs/internal/mpi"
	"plfs/internal/obs"
	"plfs/internal/payload"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
	"plfs/internal/simfs"
	"plfs/internal/workloads"
)

// chaosOutcome is everything the determinism check compares.
type chaosOutcome struct {
	aSteps  [chaosSteps]workloads.Result
	bDone   int    // tenant B steps committed before the crash
	bErr    string // tenant B's terminal error (the crash)
	metrics []byte // full obs snapshot JSON
	repair  plfs.RepairTotals
	health  []plfs.VolHealth
	audited int // tenant B containers read back byte-identical post-repair
}

const (
	chaosSteps  = 8
	chaosOps    = 4
	chaosOpSize = int64(32 << 10)
	// chaosCrashAt lands inside the brownout window, partway through
	// tenant B's schedule (tuned so some containers commit, one tears).
	chaosCrashAt = 160
)

// runChaos executes one soak run, deterministic in the seed.
func runChaos(t *testing.T, seed int64) chaosOutcome {
	t.Helper()
	eng := sim.NewEngine(seed)
	cfg := pfs.SmallCluster()
	cfg.Volumes = 4
	cfg.ProcsPerNode = 1
	const ranks = 3 // tenant A: world ranks 0,1; tenant B: world rank 2
	fs := pfs.New(eng, cfg)
	world := mpi.NewWorld(eng, ranks, 1, mpi.DefaultNet())
	roots := make([]string, fs.Volumes())
	for i := range roots {
		roots[i] = fs.VolumeRoot(i)
	}
	opt := plfs.Options{
		IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4,
		SpreadContainers: true, SpreadSubdirs: true,
		HedgedReads: true, IndexReplicas: 2,
		Retry: plfs.RetryPolicy{Attempts: 8, Backoff: 200 * time.Microsecond},
	}
	svc := plfs.NewService(plfs.ServiceOptions{})
	mount := svc.Mount(roots, opt)

	// Per-tenant injectors: each tenant's transient dice consume their
	// own sequence, and only tenant B carries the crash point.
	transients := func(extra string) fault.Spec {
		spec, err := fault.ParseSpec(fmt.Sprintf("seed=%d,all=0.02%s", seed, extra))
		if err != nil {
			t.Fatalf("spec: %v", err)
		}
		return spec
	}
	injA := fault.New(transients(""))
	injB := fault.New(transients(fmt.Sprintf(",crashat=%d", chaosCrashAt)))

	reg := obs.New()
	reg.SetClock(func() int64 { return int64(eng.Now()) })

	out := chaosOutcome{}
	var repairErr error
	world.SpawnAll(func(r *mpi.Rank) {
		tenant, inj := "A", injA
		if r.Rank() == 2 {
			tenant, inj = "B", injB
		}
		ctx := simfs.FaultCtx(fs, r.Node(), r.Proc(), r.Rank(), 1, inj)
		ctx.Comm = r.Comm().Split(map[bool]int{true: 0, false: 1}[tenant == "A"], r.Rank())
		ctx.Tenant = tenant
		ctx.Obs = reg
		env := &workloads.Env{
			Ctx:    ctx,
			Driver: adio.PLFS{Mount: mount},
			Path:   "chaos-" + tenant,
			Verify: true,
		}
		if ctx.Comm.Rank() == 0 {
			env.InvalidateCaches = func() { fs.DropCaches(); mount.DropIndexCache() }
		} else {
			env.InvalidateCaches = func() {}
		}
		k := workloads.Brownout{
			Steps: chaosSteps, OpsPerRank: chaosOps, OpSize: chaosOpSize,
		}
		if tenant == "A" {
			k.Control = func(step int) {
				// One volume browns out for the middle of the run — for
				// both tenants' injectors, it is the same sick disk.
				if step == 2 {
					injA.SetBrownout(0, 256)
					injB.SetBrownout(0, 256)
				}
				if step == 6 {
					injA.ClearBrownout(0)
					injB.ClearBrownout(0)
				}
				if step > 0 {
					if _, err := svc.RepairTick(ctx, mount); err != nil && repairErr == nil {
						repairErr = err
					}
				}
			}
			k.Observe = func(step int, res workloads.Result) {
				if ctx.Comm.Rank() == 0 {
					out.aSteps[step] = res
				}
			}
		} else {
			k.Observe = func(step int, res workloads.Result) { out.bDone = step + 1 }
		}
		_, err := k.Run(env, true)
		switch {
		case tenant == "A" && err != nil:
			t.Errorf("tenant A (seed %d): %v", seed, err)
		case tenant == "B" && err == nil:
			t.Errorf("tenant B survived its crash point (seed %d)", seed)
		case tenant == "B":
			out.bErr = err.Error()
		}

		// Audit pass: after both tenants end, world rank 0 repairs the
		// crash residue with a clean (uninjected) context and reads every
		// container tenant B committed back byte-for-byte.
		r.Comm().Barrier()
		if r.Rank() != 0 {
			return
		}
		actx := simfs.Ctx(fs, r.Node(), r.Proc(), r.Rank(), 1)
		actx.Comm = nil
		actx.Obs = reg
		if _, err := svc.RepairTick(actx, mount); err != nil {
			t.Errorf("post-crash repair (seed %d): %v", seed, err)
			return
		}
		for s := 0; s < out.bDone; s++ {
			rel := fmt.Sprintf("chaos-B-s%d", s)
			rd, err := mount.OpenReader(actx, rel)
			if err != nil {
				t.Errorf("audit open %s: %v", rel, err)
				continue
			}
			want := payload.Synthetic(1, 0, chaosOpSize*chaosOps).Materialize()
			got, err := rd.ReadAt(0, chaosOpSize*chaosOps)
			if err != nil {
				t.Errorf("audit read %s: %v", rel, err)
			} else if !bytes.Equal(got.Materialize(), want) {
				t.Errorf("audit %s: bytes differ from what tenant B committed", rel)
			} else {
				out.audited++
			}
			if len(rd.Stats.SkippedShards) != 0 {
				t.Errorf("audit %s skipped shards %v, want none", rel, rd.Stats.SkippedShards)
			}
			if err := rd.Close(); err != nil {
				t.Errorf("audit close %s: %v", rel, err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("engine (seed %d): %v", seed, err)
	}
	if repairErr != nil {
		t.Fatalf("repair tick (seed %d): %v", seed, repairErr)
	}

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	out.metrics = buf.Bytes()
	st := svc.Stats()
	out.repair = st.Repair
	out.health = st.Health
	return out
}

// TestChaosSoak runs the soak twice per seed and checks the invariants
// plus bit-exact reproducibility (the CI runs this under -race -count=2).
func TestChaosSoak(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := runChaos(t, seed)

			// Tenant B made progress and then actually crashed.
			if a.bDone == 0 || a.bDone == chaosSteps {
				t.Errorf("tenant B committed %d/%d steps; the crash point should land mid-run", a.bDone, chaosSteps)
			}
			if a.bErr == "" {
				t.Errorf("tenant B finished without a crash error")
			}
			if a.audited != a.bDone {
				t.Errorf("audited %d of tenant B's %d committed containers", a.audited, a.bDone)
			}
			// The brownout tripped volume 0's breaker at least once.
			opened := false
			for _, v := range a.health {
				if v.Opens > 0 {
					opened = true
				}
			}
			if !opened {
				t.Errorf("no breaker opened under the brownout: %+v", a.health)
			}
			// Repair ledger invariant: everything found was classified.
			if a.repair.Found != a.repair.Repaired+a.repair.Unrepairable {
				t.Errorf("repair ledger broken: %+v", a.repair)
			}
			if a.repair.Ticks == 0 {
				t.Errorf("repair daemon never ticked")
			}

			// Bit-determinism: an identical run reproduces every output.
			b := runChaos(t, seed)
			if a.aSteps != b.aSteps {
				t.Errorf("tenant A step results differ across identical runs")
			}
			if a.bDone != b.bDone || a.bErr != b.bErr || a.audited != b.audited {
				t.Errorf("tenant B outcome differs across identical runs: %d/%q vs %d/%q",
					a.bDone, a.bErr, b.bDone, b.bErr)
			}
			if a.repair != b.repair {
				t.Errorf("repair ledger differs across identical runs: %+v vs %+v", a.repair, b.repair)
			}
			if !bytes.Equal(a.metrics, b.metrics) {
				t.Errorf("metrics snapshots differ across identical runs")
			}
		})
	}
}
