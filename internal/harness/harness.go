// Package harness assembles full experiments: it builds a simulated
// cluster, an MPI world, a PLFS mount, runs a workload kernel through a
// chosen driver, repeats over seeds, and renders the mean ± stddev series
// each of the paper's evaluation figures reports.
package harness

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"plfs/internal/adio"
	"plfs/internal/fault"
	"plfs/internal/mpi"
	"plfs/internal/objfs"
	"plfs/internal/obs"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
	"plfs/internal/simfs"
	"plfs/internal/trace"
	"plfs/internal/workloads"
)

// Backend names for Job.Backend / Options.Backend (-backend flag).
const (
	// BackendPosix is the simulated POSIX parallel file system
	// (internal/pfs via internal/simfs) — the default.
	BackendPosix = "posix"
	// BackendObjfs is the simulated flat object store (internal/objfs):
	// no directories, conditional-PUT commits, prefix-scan listings.
	// Cfg is still consulted for Volumes (key prefixes) but the POSIX
	// cluster is not built; the store's own calibration applies.
	BackendObjfs = "objfs"
)

// backendKnown validates a backend name ("" means posix).
func backendKnown(name string) bool {
	return name == "" || name == BackendPosix || name == BackendObjfs
}

// Job describes one simulated run.
type Job struct {
	Seed int64
	// Backend selects the simulated store under the mount: "" or
	// BackendPosix for the POSIX cluster, BackendObjfs for the flat
	// object store.
	Backend  string
	Ranks    int
	Cfg      pfs.Config
	Net      mpi.NetConfig
	Opt      plfs.Options
	Hints    adio.Hints
	UsePLFS  bool
	Kernel   workloads.Kernel
	ReadBack bool
	Verify   bool
	// DropCaches invalidates client and server caches between the write
	// and read phases, as the kernel studies (Fig. 5) require; the
	// MPI-IO Test experiments (Fig. 4, Fig. 8a) leave caches warm, whose
	// effects the paper explicitly notes.
	DropCaches bool
	// TraceEvery, with TraceTo, samples the file system's resources at
	// the given virtual-time interval and writes the time series as CSV.
	TraceEvery time.Duration
	TraceTo    io.Writer
	// Fault, if non-nil, routes every rank's backend calls through a
	// deterministic fault injector built from the spec (one injector per
	// job, shared across ranks).  Pair with Opt.Retry to study degraded
	// storage; injected latency and backoff cost virtual time.
	Fault *fault.Spec
	// Obs, if non-nil, collects op metrics and phase spans from every
	// rank (plfsrun -metrics/-spans).  The harness rebinds the registry's
	// clock to the engine's virtual time, so span durations and latency
	// histograms report simulated seconds; see DESIGN.md §11.
	Obs *obs.Registry
}

// Run executes the job and returns the job-level result (identical on all
// ranks; rank 0's copy is returned).
func Run(j Job) (workloads.Result, error) {
	res, _, err := RunWithReport(j)
	return res, err
}

// RunWithReport also returns the simulated file system's resource-usage
// report, for bottleneck analysis.
func RunWithReport(j Job) (workloads.Result, pfs.Report, error) {
	if !backendKnown(j.Backend) {
		return workloads.Result{}, pfs.Report{}, fmt.Errorf("harness: unknown backend %q", j.Backend)
	}
	useObj := j.Backend == BackendObjfs
	eng := sim.NewEngine(j.Seed)
	// Metrics ride the virtual clock: a span covering a simulated phase
	// reports simulated time, deterministic in the seed.
	j.Obs.SetClock(func() int64 { return int64(eng.Now()) })
	// Oversubscribe cores when the job exceeds the machine (the paper runs
	// 2048 concurrent I/O streams on its 1024-core cluster).
	ppn := j.Cfg.ProcsPerNode
	if j.Ranks > j.Cfg.Nodes*ppn {
		ppn = (j.Ranks + j.Cfg.Nodes - 1) / j.Cfg.Nodes
	}
	cfgPPN := j.Cfg
	cfgPPN.ProcsPerNode = ppn
	// Exactly one of fs/store backs the run: the POSIX cluster, or the
	// flat object store (whose "volumes" are key prefixes in one shared
	// keyspace — Cfg.Volumes still shapes the mount's spread policy).
	var fs *pfs.FS
	var store *objfs.Store
	var roots []string
	if useObj {
		vols := j.Cfg.Volumes
		if vols < 1 {
			vols = 1
		}
		store = objfs.NewSim(eng, objfs.DefaultConfig())
		roots = store.Roots(vols)
	} else {
		fs = pfs.New(eng, cfgPPN)
		roots = make([]string, fs.Volumes())
		for i := range roots {
			roots[i] = fs.VolumeRoot(i)
		}
	}
	world := mpi.NewWorld(eng, j.Ranks, ppn, j.Net)
	mount := plfs.NewMount(roots, j.Opt)
	var rec *trace.Recorder
	if j.TraceEvery > 0 && j.TraceTo != nil {
		rec = trace.NewRecorder(eng, j.TraceEvery)
		probes := fs.TraceProbes
		if useObj {
			probes = store.TraceProbes
		}
		for _, p := range probes() {
			rec.Add(p.Name, p.Fn)
		}
	}
	var inj *fault.Injector
	if j.Fault != nil {
		inj = fault.New(*j.Fault)
		inj.Obs = j.Obs
	}
	var res workloads.Result
	var kerr error
	world.SpawnAll(func(r *mpi.Rank) {
		var ctx plfs.Ctx
		if useObj {
			ctx = objfs.FaultCtx(store, len(roots), r.Node(), r.Proc(), r.Rank(), ppn, inj)
		} else {
			ctx = simfs.FaultCtx(fs, r.Node(), r.Proc(), r.Rank(), ppn, inj)
		}
		ctx.Comm = r.Comm()
		ctx.Obs = j.Obs
		var drv adio.Driver
		path := j.Kernel.Name()
		if j.UsePLFS {
			drv = adio.PLFS{Mount: mount}
		} else {
			drv = adio.UFS{Vol: 0}
			path = roots[0] + "/" + path
		}
		env := &workloads.Env{Ctx: ctx, Driver: drv, Hints: j.Hints, Path: path, Verify: j.Verify}
		if j.DropCaches {
			if r.Rank() == 0 {
				env.InvalidateCaches = func() {
					if fs != nil {
						fs.DropCaches() // the object store keeps no caches
					}
					mount.DropIndexCache()
				}
			} else {
				env.InvalidateCaches = func() {} // participate in the barrier only
			}
		}
		out, err := j.Kernel.Run(env, j.ReadBack)
		if err != nil && kerr == nil {
			kerr = fmt.Errorf("rank %d: %w", r.Rank(), err)
		}
		if r.Rank() == 0 {
			res = out
		}
	})
	report := func() pfs.Report {
		if useObj {
			return store.Report()
		}
		return fs.Report()
	}
	publish := func() {
		if useObj {
			store.PublishObs(j.Obs)
		} else {
			fs.PublishObs(j.Obs)
		}
	}
	if rec != nil {
		if err := rec.Start(); err != nil {
			return res, report(), err
		}
	}
	if err := eng.Run(); err != nil {
		// A rank that died on an unabsorbed error leaves the others
		// blocked at a collective; surface the root cause alongside the
		// engine's deadlock verdict.
		if kerr != nil {
			err = errors.Join(kerr, err)
		}
		publish()
		return res, report(), err
	}
	if rec != nil {
		if err := rec.WriteCSV(j.TraceTo); err != nil {
			return res, report(), err
		}
	}
	publish()
	rep := report()
	// Large runs (tens of thousands of simulated processes) leave big
	// heaps behind; return the memory before the next repetition so
	// paper-scale sweeps stay within a laptop's RAM.
	if j.Ranks >= 4096 {
		debug.FreeOSMemory()
	}
	return res, rep, kerr
}

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks process counts and volumes so the whole figure suite
	// runs in seconds (tests, `go test -bench`).
	Quick Scale = iota
	// Paper uses the paper's process counts and data sizes.
	Paper
)

// Options configure a figure reproduction.
type Options struct {
	Scale Scale
	Reps  int // repetitions (paper: 10); default 3
	// BaseSeed separates repetition seed streams.
	BaseSeed int64
	// Progress, if non-nil, receives one line per completed run.
	Progress func(string)
	// DecodeWorkers is passed through to plfs.Options.DecodeWorkers for
	// every mount the harness builds: it bounds the real-CPU worker pool
	// used for index decode and the index build.  Simulated results are
	// identical for any value; only regeneration wall-clock changes.
	DecodeWorkers int
	// Fault, if non-nil, applies the fault spec to every job the figure
	// suite runs (plfsbench -fault).
	Fault *fault.Spec
	// Retry is the PLFS retry policy applied to every mount the harness
	// builds (plfsbench -retry).
	Retry plfs.RetryPolicy
	// Obs, if non-nil, is attached to every job the figure suite runs
	// (plfsbench -metrics): one registry accumulates metrics across the
	// whole suite.
	Obs *obs.Registry
	// Backend selects the simulated store for every job the figure suite
	// runs ("" or BackendPosix, or BackendObjfs; plfsbench -backend).
	// Jobs that set their own Backend — the ablation-backend figure —
	// keep it.
	Backend string
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 3
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1000
	}
	return o
}

// run executes one job with the suite-wide fault spec applied, so every
// figure and ablation can be regenerated against degraded storage.
func (o Options) run(j Job) (workloads.Result, error) {
	j.Fault = o.Fault
	j.Obs = o.Obs
	if j.Backend == "" {
		j.Backend = o.Backend
	}
	return Run(j)
}

func (o Options) log(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// procCounts returns the x-axis for the small-cluster figures.
func (o Options) procCounts() []int {
	if o.Scale == Paper {
		return []int{16, 64, 256, 1024, 2048}
	}
	return []int{8, 16, 32, 64}
}

// kernelProcCounts returns the x-axis for the Fig. 5 kernel studies.
func (o Options) kernelProcCounts() []int {
	if o.Scale == Paper {
		return []int{48, 96, 192, 384, 768}
	}
	return []int{8, 16, 32}
}

// largeProcCounts returns the x-axis for the Cielo figures.
func (o Options) largeProcCounts() []int {
	if o.Scale == Paper {
		return []int{4096, 8192, 16384, 32768, 65536}
	}
	return []int{64, 128, 256}
}

// metaProcCounts returns the x-axis for the large metadata figures.
func (o Options) metaProcCounts() []int {
	if o.Scale == Paper {
		return []int{2048, 4096, 8192, 16384, 32768}
	}
	return []int{64, 128, 256}
}

// repsFor trims repetitions on the most expensive points so the paper-
// scale suite stays tractable.
func (o Options) repsFor(ranks int) int {
	r := o.Reps
	if o.Scale == Paper && ranks >= 1024 && r > 2 {
		return 2
	}
	return r
}

// small returns the small-cluster pfs config.
func (o Options) small() pfs.Config { return pfs.SmallCluster() }

// cielo returns the Cielo-profile pfs config.
func (o Options) cielo() pfs.Config {
	if o.Scale == Paper {
		return pfs.Cielo()
	}
	// Quick mode: small machine with Cielo's contention character.
	c := pfs.Cielo()
	c.Nodes = 64
	return c
}

// n1MountOpt is the standard PLFS mount for N-1 workloads: subdirs spread
// across the volumes (Fig. 6), parallel index read unless overridden.
func (o Options) n1MountOpt(mode plfs.Mode, volumes int) plfs.Options {
	return plfs.Options{
		IndexMode:     mode,
		NumSubdirs:    32,
		SpreadSubdirs: volumes > 1,
		DecodeWorkers: o.DecodeWorkers,
		Retry:         o.Retry,
	}
}

// nnMountOpt is the PLFS mount for N-N workloads: whole containers spread
// across volumes (§V technique 1).
func (o Options) nnMountOpt(volumes int) plfs.Options {
	return plfs.Options{
		IndexMode:        plfs.ParallelIndexRead,
		NumSubdirs:       4,
		SpreadContainers: volumes > 1,
		DecodeWorkers:    o.DecodeWorkers,
		Retry:            o.Retry,
	}
}
