package harness_test

import (
	"testing"

	"plfs/internal/harness"
	"plfs/internal/mpi"
	"plfs/internal/obs"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/workloads"
)

// fig5Job is the Quick-scale Fig. 5 IOR read job with an observability
// registry attached.
func fig5Job(reg *obs.Registry, ranks int) harness.Job {
	return harness.Job{
		Seed: 7, Ranks: ranks, Cfg: pfs.SmallCluster(), Net: mpi.DefaultNet(),
		UsePLFS: true, ReadBack: true,
		DropCaches: true,
		Opt: plfs.Options{
			IndexMode:  plfs.ParallelIndexRead,
			NumSubdirs: 32,
		},
		Kernel: workloads.IOR(4<<20, 1<<20),
		Obs:    reg,
	}
}

// TestOpenSpanMatchesReadOpen is the observability acceptance check: the
// open phase is barrier-bracketed, so the slowest rank's "open" span must
// account for the reported read-open time within 5%.
func TestOpenSpanMatchesReadOpen(t *testing.T) {
	reg := obs.New()
	res, err := harness.Run(fig5Job(reg, 16))
	if err != nil {
		t.Fatal(err)
	}
	openMax := reg.Histogram("span.open").Max()
	got, want := openMax.Seconds(), res.ReadOpen.Seconds()
	if want <= 0 {
		t.Fatalf("read-open time = %v, want > 0", res.ReadOpen)
	}
	if diff := got - want; diff < -0.05*want || diff > 0.05*want {
		t.Fatalf("max span.open = %.6fs, read-open = %.6fs: off by more than 5%%", got, want)
	}
	if n := reg.Histogram("span.open").Count(); n != 16 {
		t.Fatalf("open spans = %d, want one per rank (16)", n)
	}
	// The child phases must nest inside "open" and be nonzero overall.
	rows := reg.Breakdown()
	byPath := map[string]bool{}
	for _, r := range rows {
		byPath[r.Path] = true
	}
	for _, p := range []string{"open", "open/decode", "open/merge"} {
		if !byPath[p] {
			t.Errorf("breakdown missing path %q (have %v)", p, rows)
		}
	}
}

// TestMetricsDeterministicAcrossRuns: two identical jobs with the
// virtual-clock registry must produce identical snapshots — the property
// the plfsrun golden-file test relies on.
func TestMetricsDeterministicAcrossRuns(t *testing.T) {
	snap := func() obs.Snapshot {
		reg := obs.New()
		if _, err := harness.Run(fig5Job(reg, 8)); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	a, b := snap(), snap()
	if len(a.Counters) == 0 || len(a.Histograms) == 0 {
		t.Fatalf("empty snapshot: %+v", a)
	}
	for k, v := range a.Counters {
		if b.Counters[k] != v {
			t.Errorf("counter %s: %d vs %d", k, v, b.Counters[k])
		}
	}
	for k, v := range a.Histograms {
		if b.Histograms[k] != v {
			t.Errorf("histogram %s: %+v vs %+v", k, v, b.Histograms[k])
		}
	}
}

// TestObsCountsOps sanity-checks the wiring: a run with N ranks opening
// one shared file must report N opens, N creates, and the written bytes.
func TestObsCountsOps(t *testing.T) {
	reg := obs.New()
	if _, err := harness.Run(fig5Job(reg, 8)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["plfs.open.ops"]; got != 8 {
		t.Errorf("plfs.open.ops = %d, want 8", got)
	}
	if got := snap.Counters["plfs.create.ops"]; got != 8 {
		t.Errorf("plfs.create.ops = %d, want 8", got)
	}
	if got := snap.Counters["plfs.write.bytes"]; got != 8*(4<<20) {
		t.Errorf("plfs.write.bytes = %d, want %d", got, 8*(4<<20))
	}
	if got := snap.Counters["plfs.read.bytes"]; got <= 0 {
		t.Errorf("plfs.read.bytes = %d, want > 0", got)
	}
	if _, ok := snap.Gauges["pfs.vol0.mds_busy_seconds"]; !ok {
		t.Error("missing pfs.vol0.mds_busy_seconds gauge")
	}
	if _, ok := snap.Gauges["pfs.ost0.bytes_moved"]; !ok {
		t.Error("missing pfs.ost0.bytes_moved gauge")
	}
}
