package harness

import (
	"errors"
	"fmt"
	"time"

	"plfs/internal/adio"
	"plfs/internal/mpi"
	"plfs/internal/objfs"
	"plfs/internal/obs"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
	"plfs/internal/simfs"
	"plfs/internal/stats"
	"plfs/internal/workloads"
)

// SaturationTenant describes one tenant job sharing the mount service.
type SaturationTenant struct {
	Name  string
	Class string // admission class; "" = ungated (unless a "" class exists)
	Ranks int
	// Containers, OpsPerRank, and OpSize shape the tenant's workload
	// (see workloads.Saturation).
	Containers int
	OpsPerRank int
	OpSize     int64
}

// SaturationJob is one multi-tenant service run: every tenant's job runs
// concurrently on the simulated cluster against a single plfs.Service.
type SaturationJob struct {
	Seed int64
	Cfg  pfs.Config // zero Nodes = pfs.SmallCluster()
	Net  mpi.NetConfig
	Opt  plfs.Options // zero NumSubdirs = the N-N service mount defaults
	// Svc carries the cache budget and admission classes; TenantClass is
	// derived from the tenants' Class fields.
	Svc     plfs.ServiceOptions
	Tenants []SaturationTenant
	// Obs, if non-nil, additionally receives the service's economy and
	// gate gauges (Service.Publish) after the run.
	Obs *obs.Registry
	// Backend selects the simulated store ("" or BackendPosix, or
	// BackendObjfs).
	Backend string
}

// TenantOutcome is one tenant's view of the run.
type TenantOutcome struct {
	Tenant SaturationTenant
	Result workloads.Result
	// OpenP99 is the tenant's 99th-percentile container open time (write
	// and read opens pooled); Opens counts the samples behind it.
	OpenP99 time.Duration
	Opens   int64
	// Admission is the tenant's ledger from the service
	// (Admitted = Completed + Rejected at quiescence).
	Admission plfs.TenantAdmission
}

// SaturationReport aggregates a SaturationJob.
type SaturationReport struct {
	Tenants []TenantOutcome
	// Makespan is the virtual time from launch to the last tenant's exit.
	Makespan time.Duration
	// AggregateBytes is the total volume written across tenants;
	// AggregateBW divides it by the makespan — the service-wide delivered
	// throughput the tenants experienced together.
	AggregateBytes int64
	AggregateBW    float64
	// OpenP99 is the worst tenant's p99 open time.
	OpenP99 time.Duration
	Service plfs.ServiceStats
}

// RunSaturation executes a multi-tenant service run on the simulated
// cluster: one engine, one parallel file system, one plfs.Service, and a
// communicator split per tenant, deterministic in the seed.
func RunSaturation(j SaturationJob) (SaturationReport, error) {
	if len(j.Tenants) == 0 {
		return SaturationReport{}, errors.New("saturation: no tenants")
	}
	if j.Cfg.Nodes == 0 {
		j.Cfg = pfs.SmallCluster()
	}
	if j.Net == (mpi.NetConfig{}) {
		j.Net = mpi.DefaultNet()
	}
	total := 0
	for _, t := range j.Tenants {
		total += t.Ranks
	}
	eng := sim.NewEngine(j.Seed)
	j.Obs.SetClock(func() int64 { return int64(eng.Now()) })
	ppn := j.Cfg.ProcsPerNode
	if total > j.Cfg.Nodes*ppn {
		ppn = (total + j.Cfg.Nodes - 1) / j.Cfg.Nodes
	}
	if !backendKnown(j.Backend) {
		return SaturationReport{}, fmt.Errorf("saturation: unknown backend %q", j.Backend)
	}
	useObj := j.Backend == BackendObjfs
	cfg := j.Cfg
	cfg.ProcsPerNode = ppn
	var fs *pfs.FS
	var store *objfs.Store
	var roots []string
	if useObj {
		vols := cfg.Volumes
		if vols < 1 {
			vols = 1
		}
		store = objfs.NewSim(eng, objfs.DefaultConfig())
		roots = store.Roots(vols)
	} else {
		fs = pfs.New(eng, cfg)
		roots = make([]string, fs.Volumes())
		for i := range roots {
			roots[i] = fs.VolumeRoot(i)
		}
	}
	world := mpi.NewWorld(eng, total, ppn, j.Net)
	if j.Opt.NumSubdirs == 0 {
		j.Opt = plfs.Options{
			IndexMode:        plfs.ParallelIndexRead,
			NumSubdirs:       4,
			SpreadContainers: len(roots) > 1,
		}
	}
	if j.Svc.TenantClass == nil {
		j.Svc.TenantClass = map[string]string{}
	}
	for _, t := range j.Tenants {
		if t.Class != "" {
			j.Svc.TenantClass[t.Name] = t.Class
		}
	}
	svc := plfs.NewService(j.Svc)
	mount := svc.Mount(roots, j.Opt)

	// Per-tenant registries keep each job's latency histograms separate;
	// all ride the engine's virtual clock.
	regs := make([]*obs.Registry, len(j.Tenants))
	for i := range regs {
		regs[i] = obs.New()
		regs[i].SetClock(func() int64 { return int64(eng.Now()) })
	}
	tenantOf := make([]int, total) // global rank -> tenant index
	{
		r := 0
		for ti, t := range j.Tenants {
			for k := 0; k < t.Ranks; k++ {
				tenantOf[r] = ti
				r++
			}
		}
	}
	results := make([]workloads.Result, len(j.Tenants))
	var kerr error
	world.SpawnAll(func(r *mpi.Rank) {
		ti := tenantOf[r.Rank()]
		t := j.Tenants[ti]
		var ctx plfs.Ctx
		if useObj {
			ctx = objfs.Ctx(store, len(roots), r.Node(), r.Proc(), r.Rank(), ppn)
		} else {
			ctx = simfs.FaultCtx(fs, r.Node(), r.Proc(), r.Rank(), ppn, nil)
		}
		ctx.Comm = r.Comm().Split(ti, r.Rank())
		ctx.Tenant = t.Name
		ctx.Obs = regs[ti]
		env := &workloads.Env{
			Ctx:    ctx,
			Driver: adio.PLFS{Mount: mount},
			Path:   "sat-" + t.Name,
			Verify: true,
		}
		k := workloads.Saturation{Containers: t.Containers, OpsPerRank: t.OpsPerRank, OpSize: t.OpSize}
		out, err := k.Run(env, true)
		if err != nil && kerr == nil {
			kerr = fmt.Errorf("tenant %s rank %d: %w", t.Name, ctx.Comm.Rank(), err)
		}
		if ctx.Comm.Rank() == 0 {
			results[ti] = out
		}
	})
	if err := eng.Run(); err != nil {
		if kerr != nil {
			err = errors.Join(kerr, err)
		}
		return SaturationReport{}, err
	}
	if kerr != nil {
		return SaturationReport{}, kerr
	}

	rep := SaturationReport{
		Makespan: time.Duration(eng.Now()),
		Service:  svc.Stats(),
	}
	ledger := map[string]plfs.TenantAdmission{}
	for _, ta := range rep.Service.Tenants {
		ledger[ta.Tenant] = ta
	}
	for ti, t := range j.Tenants {
		wh := regs[ti].Histogram("saturation.open_write_ns")
		rh := regs[ti].Histogram("saturation.open_read_ns")
		p99 := wh.Quantile(0.99)
		if q := rh.Quantile(0.99); q > p99 {
			p99 = q
		}
		out := TenantOutcome{
			Tenant:    t,
			Result:    results[ti],
			OpenP99:   p99,
			Opens:     wh.Count() + rh.Count(),
			Admission: ledger[t.Name],
		}
		rep.Tenants = append(rep.Tenants, out)
		rep.AggregateBytes += results[ti].BytesPerRank * int64(t.Ranks)
		if p99 > rep.OpenP99 {
			rep.OpenP99 = p99
		}
	}
	if s := rep.Makespan.Seconds(); s > 0 {
		rep.AggregateBW = float64(rep.AggregateBytes) / s
	}
	if j.Obs != nil {
		svc.Publish(j.Obs)
	}
	return rep, nil
}

// AblationTenants sweeps the tenant count over one shared mount service —
// aggregate delivered throughput, worst-tenant p99 open latency, and the
// admission ledger as the service saturates.
func AblationTenants(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	counts := []int{1, 2, 4, 8}
	ranks, containers := 4, 3
	if o.Scale == Paper {
		counts = []int{1, 2, 4, 8, 16, 32}
		ranks, containers = 16, 4
	}
	bw := &stats.Table{
		Title:  "Ablation: mount-service saturation — aggregate throughput",
		XLabel: "tenants", YLabel: "MB/s",
	}
	p99 := &stats.Table{
		Title:  "Ablation: mount-service saturation — p99 container open",
		XLabel: "tenants", YLabel: "seconds",
	}
	adm := &stats.Table{
		Title:  "Ablation: mount-service saturation — admission outcomes",
		XLabel: "tenants", YLabel: "operations",
	}
	for _, n := range counts {
		var sbw, sp99, sadm, srej stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			tenants := make([]SaturationTenant, n)
			for i := range tenants {
				tenants[i] = SaturationTenant{
					Name: fmt.Sprintf("t%d", i), Class: "batch",
					Ranks: ranks, Containers: containers,
					OpsPerRank: 8, OpSize: 64 << 10,
				}
			}
			r, err := RunSaturation(SaturationJob{
				Seed:    o.BaseSeed + int64(rep),
				Backend: o.Backend,
				// The batch gate admits four concurrent jobs' operations: a
				// tenant runs one collective op at a time, so the sweep
				// crosses the admission wall at four tenants and the p99
				// curve splits into "queueing" and "rejected" regimes.
				Svc: plfs.ServiceOptions{
					CacheBudgetBytes: 32 << 20,
					Classes:          []plfs.ClassConfig{{Name: "batch", MaxInFlight: 4}},
				},
				Tenants: tenants,
			})
			if err != nil {
				return nil, fmt.Errorf("ablation-tenants @%d: %w", n, err)
			}
			var admitted, rejected int64
			for _, t := range r.Tenants {
				admitted += t.Admission.Admitted
				rejected += t.Admission.Rejected
			}
			sbw.Add(r.AggregateBW / 1e6)
			sp99.Add(r.OpenP99.Seconds())
			sadm.Add(float64(admitted))
			srej.Add(float64(rejected))
			o.log("ablation-tenants n=%-3d rep %d: aggBW %.0f MB/s p99open %.3fs admitted %d rejected %d",
				n, rep, r.AggregateBW/1e6, r.OpenP99.Seconds(), admitted, rejected)
		}
		bw.AddSample("aggregate", float64(n), &sbw)
		p99.AddSample("worst-tenant", float64(n), &sp99)
		adm.AddSample("admitted", float64(n), &sadm)
		adm.AddSample("rejected", float64(n), &srej)
	}
	return []*stats.Table{bw, p99, adm}, nil
}
