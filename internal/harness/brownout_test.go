package harness

import (
	"testing"

	"plfs/internal/plfs"
)

// brownoutJob builds the acceptance-test schedule: eight steps, volume 0
// browned out (16x latency, elevated transients) for steps 2-4.
func brownoutJob(hedged bool, replicas int) BrownoutJob {
	return BrownoutJob{
		Seed:  11,
		Ranks: 4, Steps: 10, OpsPerRank: 8, OpSize: 64 << 10,
		BrownVol: 0, BrownFactor: 256, BrownFrom: 2, BrownTo: 7,
		Repair: true,
		Opt: plfs.Options{
			IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4,
			SpreadContainers: true, SpreadSubdirs: true,
			HedgedReads: hedged, IndexReplicas: replicas,
		},
	}
}

// TestBrownoutSelfHealing is the headline acceptance check: during a
// 1-volume brownout the hedged+replicated mount sustains most of the
// healthy aggregate bandwidth while the naive mount collapses, and after
// the window closes the half-open probes restore baseline throughput.
func TestBrownoutSelfHealing(t *testing.T) {
	naive, err := RunBrownout(brownoutJob(false, 0))
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	healed, err := RunBrownout(brownoutJob(true, 2))
	if err != nil {
		t.Fatalf("hedged+replicated: %v", err)
	}

	if naive.HealthyBW <= 0 || healed.HealthyBW <= 0 {
		t.Fatalf("no healthy baseline: naive %.0f healed %.0f", naive.HealthyBW, healed.HealthyBW)
	}
	// Naive collapses: the browned volume sits on every step's critical
	// path, so delivered bandwidth drops below a quarter of baseline.
	if frac := naive.BrownBW / naive.HealthyBW; frac >= 0.25 {
		t.Errorf("naive browned BW = %.0f%% of healthy, want < 25%%", 100*frac)
	}
	// Self-healing holds the line: breaker-aware placement and hedged
	// replicated index reads keep >= 60%% of the healthy bandwidth.
	if frac := healed.BrownBW / healed.HealthyBW; frac < 0.60 {
		t.Errorf("healed browned BW = %.0f%% of healthy, want >= 60%%", 100*frac)
	}
	// Recovery: once the brownout clears and probes close the breaker,
	// throughput returns to baseline.
	if frac := healed.AfterBW / healed.HealthyBW; frac < 0.60 {
		t.Errorf("healed post-brownout BW = %.0f%% of healthy, want >= 60%%", 100*frac)
	}
	if healed.Hedged == 0 || healed.HedgeWins == 0 {
		t.Errorf("healed run hedged %d wins %d, want both > 0", healed.Hedged, healed.HedgeWins)
	}
	if naive.Hedged != 0 {
		t.Errorf("naive run hedged %d reads, want 0", naive.Hedged)
	}
	// The breaker actually cycled: volume 0 opened at least once and a
	// probe closed it again by the end of the run.
	var v0 plfs.VolHealth
	for _, v := range healed.Health {
		if v.Opens > 0 {
			v0 = v
		}
	}
	if v0.Opens == 0 {
		t.Errorf("no breaker opened during the brownout: %+v", healed.Health)
	}
	if v0.ProbeOK == 0 {
		t.Errorf("breaker never closed via a probe: %+v", v0)
	}
	// Repair ledger invariant.
	if healed.Repair.Found != healed.Repair.Repaired+healed.Repair.Unrepairable {
		t.Errorf("repair ledger broken: %+v", healed.Repair)
	}

	// Virtual-clock determinism: the same seed reproduces the healed run
	// bit-for-bit, counters included.
	again, err := RunBrownout(brownoutJob(true, 2))
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if len(again.Steps) != len(healed.Steps) {
		t.Fatalf("step counts differ across identical runs")
	}
	for i := range again.Steps {
		if again.Steps[i] != healed.Steps[i] {
			t.Errorf("step %d differs across identical runs: %+v vs %+v",
				i, again.Steps[i], healed.Steps[i])
		}
	}
	if again.Hedged != healed.Hedged || again.HedgeWins != healed.HedgeWins ||
		again.Repair != healed.Repair {
		t.Errorf("counters differ across identical runs: %+v vs %+v", again, healed)
	}
}
