package harness

import (
	"errors"
	"fmt"
	"time"

	"plfs/internal/adio"
	"plfs/internal/fault"
	"plfs/internal/mpi"
	"plfs/internal/objfs"
	"plfs/internal/obs"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
	"plfs/internal/simfs"
	"plfs/internal/stats"
	"plfs/internal/workloads"
)

// BrownoutJob is one self-healing run: a single job writes and verifies
// a fresh container per step while one volume browns out (latency
// multiplied, error rate elevated) for a window of steps in the middle.
// The per-step bandwidth series shows how much of the healthy service
// the configured resilience features preserve — the ablation-brownout
// figure compares naive, hedged, and hedged+replicated mounts.
type BrownoutJob struct {
	Seed int64
	Cfg  pfs.Config // zero Nodes = pfs.SmallCluster()
	Net  mpi.NetConfig
	Opt  plfs.Options // zero NumSubdirs = spread-subdir service defaults
	Svc  plfs.ServiceOptions
	// Ranks, Steps, OpsPerRank, OpSize shape the workload
	// (see workloads.Brownout).
	Ranks      int
	Steps      int
	OpsPerRank int
	OpSize     int64
	// BrownVol browns at BrownFactor from step BrownFrom (inclusive)
	// through BrownTo (exclusive); factor <= 1 disables the fault.
	BrownVol    int
	BrownFactor float64
	BrownFrom   int
	BrownTo     int
	// Fault adds a base injection spec (transients etc.) under the
	// brownout schedule.
	Fault fault.Spec
	// Repair, when set, runs one service repair tick at every step
	// boundary (rank 0), healing under-replicated indices mid-run.
	Repair bool
	// Obs, if non-nil, receives the service gauges (health table,
	// repair ledger) after the run.
	Obs *obs.Registry
	// Backend selects the simulated store ("" or BackendPosix, or
	// BackendObjfs).  Over objfs the brownout schedule still keys on the
	// injector's volume index, so a browned "volume" is a browned slice
	// of the flat keyspace.
	Backend string
}

// BrownoutStep is one step of the time series.
type BrownoutStep struct {
	Step    int
	Browned bool
	// BW is the step's delivered bandwidth (bytes/sec): the step's byte
	// volume over its full write+verify-read span.
	BW float64
}

// BrownoutReport aggregates a BrownoutJob.
type BrownoutReport struct {
	Steps []BrownoutStep
	// HealthyBW averages the steps outside the brownout window that also
	// precede it (the baseline); BrownBW averages the browned steps;
	// AfterBW averages the post-window steps (the recovery).
	HealthyBW float64
	BrownBW   float64
	AfterBW   float64
	// Hedged / HedgeWins / Failover are the run's hedge counters.
	Hedged    int64
	HedgeWins int64
	Failover  int64
	Health    []plfs.VolHealth
	Repair    plfs.RepairTotals
}

// RunBrownout executes a brownout run on the simulated cluster,
// deterministic in the seed.
func RunBrownout(j BrownoutJob) (BrownoutReport, error) {
	if j.Ranks <= 0 || j.Steps <= 0 {
		return BrownoutReport{}, errors.New("brownout: need Ranks and Steps")
	}
	if j.Cfg.Nodes == 0 {
		// Self-healing needs somewhere to fail over to: a federated
		// mount over four volumes, one of which will brown out.  One
		// rank per node so the ranks land on distinct hosts and every
		// container spreads hostdirs across all four volumes — each
		// step then genuinely exercises the browned volume.
		j.Cfg = pfs.SmallCluster()
		j.Cfg.Volumes = 4
		j.Cfg.ProcsPerNode = 1
	}
	if j.Net == (mpi.NetConfig{}) {
		j.Net = mpi.DefaultNet()
	}
	eng := sim.NewEngine(j.Seed)
	j.Obs.SetClock(func() int64 { return int64(eng.Now()) })
	ppn := j.Cfg.ProcsPerNode
	if j.Ranks > j.Cfg.Nodes*ppn {
		ppn = (j.Ranks + j.Cfg.Nodes - 1) / j.Cfg.Nodes
	}
	if !backendKnown(j.Backend) {
		return BrownoutReport{}, fmt.Errorf("brownout: unknown backend %q", j.Backend)
	}
	useObj := j.Backend == BackendObjfs
	cfg := j.Cfg
	cfg.ProcsPerNode = ppn
	var fs *pfs.FS
	var store *objfs.Store
	var roots []string
	if useObj {
		vols := cfg.Volumes
		if vols < 1 {
			vols = 1
		}
		store = objfs.NewSim(eng, objfs.DefaultConfig())
		roots = store.Roots(vols)
	} else {
		fs = pfs.New(eng, cfg)
		roots = make([]string, fs.Volumes())
		for i := range roots {
			roots[i] = fs.VolumeRoot(i)
		}
	}
	world := mpi.NewWorld(eng, j.Ranks, ppn, j.Net)
	if j.Opt.NumSubdirs == 0 {
		j.Opt.IndexMode = plfs.ParallelIndexRead
		j.Opt.NumSubdirs = 4
		j.Opt.SpreadContainers = len(roots) > 1
		j.Opt.SpreadSubdirs = len(roots) > 1
	}
	if j.Opt.Retry.Attempts <= 1 {
		// Brownouts elevate transient error rates; the retry policy is
		// the absorption layer that turns them into latency (which the
		// breaker then sees as slowness).
		j.Opt.Retry = plfs.RetryPolicy{Attempts: 12, Backoff: 200 * time.Microsecond}
	}
	svc := plfs.NewService(j.Svc)
	mount := svc.Mount(roots, j.Opt)
	inj := fault.New(j.Fault)
	// The workload streams into the caller's registry when one was given
	// (so a -metrics dump carries the hedge/read counters, not just the
	// end-of-run gauges); otherwise a private one backs the report.
	reg := j.Obs
	if reg == nil {
		reg = obs.New()
		reg.SetClock(func() int64 { return int64(eng.Now()) })
	}

	steps := make([]BrownoutStep, j.Steps)
	var kerr error
	world.SpawnAll(func(r *mpi.Rank) {
		var ctx plfs.Ctx
		if useObj {
			ctx = objfs.FaultCtx(store, len(roots), r.Node(), r.Proc(), r.Rank(), ppn, inj)
		} else {
			ctx = simfs.FaultCtx(fs, r.Node(), r.Proc(), r.Rank(), ppn, inj)
		}
		ctx.Comm = r.Comm()
		ctx.Obs = reg
		env := &workloads.Env{
			Ctx:    ctx,
			Driver: adio.PLFS{Mount: mount},
			Path:   "brn",
			Verify: true,
		}
		// Cold caches before every readback: the self-healing claim is
		// about the backend read path (dropping discovery, index reads),
		// which a warm cross-open index cache would short-circuit.
		if r.Rank() == 0 {
			env.InvalidateCaches = func() {
				if fs != nil {
					fs.DropCaches()
				}
				mount.DropIndexCache()
			}
		} else {
			env.InvalidateCaches = func() {} // participate in the barrier only
		}
		k := workloads.Brownout{
			Steps:      j.Steps,
			OpsPerRank: j.OpsPerRank,
			OpSize:     j.OpSize,
			Control: func(step int) {
				// Rank 0, at the step boundary: toggle the brownout
				// window and (optionally) run a repair pass.
				if j.BrownFactor > 1 {
					if step == j.BrownFrom {
						inj.SetBrownout(j.BrownVol, j.BrownFactor)
					}
					if step == j.BrownTo {
						inj.ClearBrownout(j.BrownVol)
					}
				}
				if j.Repair && step > 0 {
					if _, err := svc.RepairTick(ctx, mount); err != nil && kerr == nil {
						kerr = fmt.Errorf("repair tick @%d: %w", step, err)
					}
				}
			},
			Observe: func(step int, res workloads.Result) {
				if ctx.Comm.Rank() != 0 {
					return
				}
				span := res.WriteTotal() + res.ReadTotal()
				bw := 0.0
				if span > 0 {
					bw = float64(res.BytesPerRank) * float64(j.Ranks) / span.Seconds()
				}
				steps[step] = BrownoutStep{
					Step:    step,
					Browned: j.BrownFactor > 1 && step >= j.BrownFrom && step < j.BrownTo,
					BW:      bw,
				}
			},
		}
		if _, err := k.Run(env, true); err != nil && kerr == nil {
			kerr = fmt.Errorf("rank %d: %w", ctx.Comm.Rank(), err)
		}
	})
	if err := eng.Run(); err != nil {
		if kerr != nil {
			err = errors.Join(kerr, err)
		}
		return BrownoutReport{}, err
	}
	if kerr != nil {
		return BrownoutReport{}, kerr
	}

	rep := BrownoutReport{
		Steps:     steps,
		Hedged:    reg.Counter("plfs.read.hedged").Value(),
		HedgeWins: reg.Counter("plfs.read.hedge_wins").Value(),
		Failover:  reg.Counter("plfs.replica.failover").Value(),
		Repair:    svc.Stats().Repair,
		Health:    svc.Health().Snapshot(),
	}
	var nh, nb, na int
	for _, s := range steps {
		switch {
		case s.Browned:
			rep.BrownBW += s.BW
			nb++
		case s.Step < j.BrownFrom || j.BrownFactor <= 1:
			rep.HealthyBW += s.BW
			nh++
		default:
			rep.AfterBW += s.BW
			na++
		}
	}
	if nh > 0 {
		rep.HealthyBW /= float64(nh)
	}
	if nb > 0 {
		rep.BrownBW /= float64(nb)
	}
	if na > 0 {
		rep.AfterBW /= float64(na)
	}
	if j.Obs != nil {
		svc.Publish(j.Obs)
		svc.Health().Publish(j.Obs)
	}
	return rep, nil
}

// brownoutVariant names one resilience configuration of the ablation.
type brownoutVariant struct {
	name     string
	hedged   bool
	replicas int
}

// AblationBrownout runs the same brownout schedule against three mounts
// — naive (no resilience), hedged reads only, and hedged + replicated
// indices — and reports the per-step delivered bandwidth series plus
// the hedge/repair counters behind them.  The self-healing claim reads
// straight off the table: the hedged+replicated series holds most of
// the healthy bandwidth through the browned window (the breaker steers
// placement and reads around the sick volume) and returns to baseline
// once half-open probes close the breaker.
func AblationBrownout(o Options) ([]*stats.Table, error) {
	o = o.withDefaults()
	job := BrownoutJob{
		Ranks: 4, Steps: 10, OpsPerRank: 8, OpSize: 64 << 10,
		BrownVol: 0, BrownFactor: 256, BrownFrom: 2, BrownTo: 7,
		Repair: true, Backend: o.Backend,
	}
	if o.Scale == Paper {
		job.Ranks, job.Steps, job.OpsPerRank = 16, 12, 16
		job.BrownFrom, job.BrownTo = 3, 8
	}
	variants := []brownoutVariant{
		{"naive", false, 0},
		{"hedged", true, 0},
		{"hedged+replicated", true, 2},
	}
	bw := &stats.Table{
		Title:  "Ablation: brownout self-healing — per-step delivered bandwidth",
		XLabel: "step", YLabel: "MB/s",
	}
	ctr := &stats.Table{
		Title:  "Ablation: brownout self-healing — hedge and repair activity",
		XLabel: "variant (0=naive 1=hedged 2=hedged+replicated)", YLabel: "count",
	}
	for vi, v := range variants {
		perStep := make([]stats.Sample, job.Steps)
		var hedged, wins, repaired stats.Sample
		for rep := 0; rep < o.Reps; rep++ {
			jv := job
			jv.Seed = o.BaseSeed + int64(rep)
			jv.Opt = plfs.Options{
				IndexMode: plfs.ParallelIndexRead, NumSubdirs: 4,
				SpreadContainers: true, SpreadSubdirs: true,
				HedgedReads: v.hedged, IndexReplicas: v.replicas,
			}
			r, err := RunBrownout(jv)
			if err != nil {
				return nil, fmt.Errorf("ablation-brownout %s: %w", v.name, err)
			}
			for _, s := range r.Steps {
				perStep[s.Step].Add(s.BW / 1e6)
			}
			hedged.Add(float64(r.Hedged))
			wins.Add(float64(r.HedgeWins))
			repaired.Add(float64(r.Repair.Repaired))
			o.log("ablation-brownout %-17s rep %d: healthy %.0f brown %.0f after %.0f MB/s hedged %d wins %d repaired %d",
				v.name, rep, r.HealthyBW/1e6, r.BrownBW/1e6, r.AfterBW/1e6,
				r.Hedged, r.HedgeWins, r.Repair.Repaired)
		}
		for s := range perStep {
			bw.AddSample(v.name, float64(s), &perStep[s])
		}
		ctr.AddSample("hedged", float64(vi), &hedged)
		ctr.AddSample("hedge-wins", float64(vi), &wins)
		ctr.AddSample("repaired", float64(vi), &repaired)
	}
	return []*stats.Table{bw, ctr}, nil
}
