package osfs_test

import (
	"errors"
	iofs "io/fs"
	"path/filepath"
	"testing"
	"time"

	"plfs/internal/osfs"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// TestErrorClassification pins the error identities the retry policy and
// the container protocol depend on: exclusive create reports ErrExist,
// missing files report ErrNotExist, and neither is retryable.
func TestErrorClassification(t *testing.T) {
	dir := t.TempDir()
	b := osfs.New()

	p := filepath.Join(dir, "f")
	f, err := b.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := b.Create(p); !errors.Is(err, iofs.ErrExist) {
		t.Errorf("second create = %v, want ErrExist", err)
	} else if plfs.Retryable(err) {
		t.Errorf("ErrExist is retryable")
	}
	if _, err := b.OpenRead(filepath.Join(dir, "missing")); !errors.Is(err, iofs.ErrNotExist) {
		t.Errorf("open missing = %v, want ErrNotExist", err)
	} else if plfs.Retryable(err) {
		t.Errorf("ErrNotExist is retryable")
	}
	if err := b.Mkdir(dir); !errors.Is(err, iofs.ErrExist) {
		t.Errorf("mkdir existing = %v, want ErrExist", err)
	}
}

// TestAppendReadRoundTrip covers the file surface the droppings use:
// append-only writes, positional reads, sizes.
func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := osfs.New()
	f, err := b.Create(filepath.Join(dir, "d"))
	if err != nil {
		t.Fatal(err)
	}
	off1, err := f.Append(payload.Synthetic(1, 0, 100))
	if err != nil || off1 != 0 {
		t.Fatalf("first append = (%d, %v), want (0, nil)", off1, err)
	}
	off2, err := f.Append(payload.Synthetic(2, 100, 50))
	if err != nil || off2 != 100 {
		t.Fatalf("second append = (%d, %v), want (100, nil)", off2, err)
	}
	if got := f.Size(); got != 150 {
		t.Fatalf("size = %d, want 150", got)
	}
	pl, err := f.ReadAt(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := payload.List{}.Append(payload.Synthetic(2, 100, 50))
	if !payload.ContentEqual(pl, want) {
		t.Errorf("positional read returned wrong bytes")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentIOAdvertised: the reader's fan-out plans key off this
// marker; losing it silently serializes every osfs read.
func TestConcurrentIOAdvertised(t *testing.T) {
	var b plfs.Backend = osfs.New()
	c, ok := b.(plfs.ConcurrentIO)
	if !ok || !c.ConcurrentIO() {
		t.Fatalf("osfs does not advertise ConcurrentIO")
	}
}

// TestPathLocksScopedPerFS is the regression test for the process-global
// lock table: two backends (two mounts) locking the same path must not
// block each other — each FS built by New carries its own table, so
// unrelated mounts never serialize on matching path strings.
func TestPathLocksScopedPerFS(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "shared-name")
	a, b := osfs.New(), osfs.New()
	fa, err := a.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fa.Close()
	fb, err := b.OpenWrite(p)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()

	la := fa.(plfs.RangeLocker)
	lb := fb.(plfs.RangeLocker)
	if err := la.LockRange(0, 1); err != nil {
		t.Fatal(err)
	}
	defer la.UnlockRange(0, 1)

	// With the old global table this deadlocks: b's lock keys to the
	// same path string a already holds.
	done := make(chan struct{})
	go func() {
		lb.LockRange(0, 1)
		lb.UnlockRange(0, 1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("second mount blocked on the first mount's path lock")
	}
}
