package osfs

import (
	"sync"
	"testing"
)

// TestPathLockTableReleasesEntries: the table must hold an entry only
// while some goroutine holds or awaits the lock — a long-lived service
// must not leak one mutex per path ever locked.
func TestPathLockTableReleasesEntries(t *testing.T) {
	tab := newPathLockTable()
	tab.lock("a")
	tab.lock("b")
	if got := tab.entries(); got != 2 {
		t.Fatalf("entries while held = %d, want 2", got)
	}
	tab.unlock("a")
	tab.unlock("b")
	if got := tab.entries(); got != 0 {
		t.Fatalf("entries after release = %d, want 0", got)
	}
}

// TestPathLockTableContention hammers a small path set from many
// goroutines: mutual exclusion per path must hold and every entry must
// be reclaimed once the herd drains.
func TestPathLockTableContention(t *testing.T) {
	tab := newPathLockTable()
	paths := []string{"p0", "p1", "p2"}
	counts := make([]int, len(paths))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := (g + i) % len(paths)
				tab.lock(paths[p])
				counts[p]++ // safe: p's lock is held
				tab.unlock(paths[p])
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 16*200 {
		t.Fatalf("lost increments: %d, want %d", total, 16*200)
	}
	if got := tab.entries(); got != 0 {
		t.Fatalf("entries after drain = %d, want 0", got)
	}
}
