package osfs_test

import (
	"testing"

	"plfs/internal/osfs"
	"plfs/internal/plfs"
	"plfs/internal/plfs/backendtest"
)

// TestBackendConformance runs the DESIGN.md §16 contract suite over the
// real filesystem backend.
func TestBackendConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) (plfs.Backend, string) {
		return osfs.New(), t.TempDir()
	})
}
