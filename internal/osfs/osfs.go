// Package osfs binds the PLFS Backend interface to the real operating
// system filesystem, so PLFS runs as an actual middleware library over a
// local directory tree (the role the underlying parallel file system's
// mount plays in production).
package osfs

import (
	"io"
	"os"
	"sort"

	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// FS implements plfs.Backend over the host filesystem.  The zero value is
// ready to use; paths are passed through verbatim.
type FS struct{}

var _ plfs.Backend = FS{}

// New returns an OS-filesystem backend.
func New() FS { return FS{} }

// ConcurrentIO marks the backend as safe for the reader's I/O fan-out:
// handles are os.Files, whose positional reads are pread(2) calls with no
// shared cursor, and Open/Close are independent syscalls.
func (FS) ConcurrentIO() bool { return true }

// Mkdir implements plfs.Backend.
func (FS) Mkdir(path string) error { return os.Mkdir(path, 0o755) }

// Create implements plfs.Backend.  Creation is exclusive, matching the
// container protocol's reliance on EEXIST.
func (FS) Create(path string) (plfs.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{f: f}, nil
}

// OpenRead implements plfs.Backend.
func (FS) OpenRead(path string) (plfs.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{f: f, ro: true}, nil
}

// OpenWrite implements plfs.Backend: open an existing file for writing
// without truncation.
func (FS) OpenWrite(path string) (plfs.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{f: f}, nil
}

// Stat implements plfs.Backend.
func (FS) Stat(path string) (plfs.Info, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return plfs.Info{}, err
	}
	return plfs.Info{Name: fi.Name(), Dir: fi.IsDir(), Size: fi.Size()}, nil
}

// ReadDir implements plfs.Backend.
func (FS) ReadDir(path string) ([]plfs.Info, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := make([]plfs.Info, 0, len(ents))
	for _, e := range ents {
		info := plfs.Info{Name: e.Name(), Dir: e.IsDir()}
		if !e.IsDir() {
			if fi, err := e.Info(); err == nil {
				info.Size = fi.Size()
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove implements plfs.Backend.
func (FS) Remove(path string) error { return os.Remove(path) }

// Rename implements plfs.Backend.
func (FS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

type file struct {
	f  *os.File
	ro bool
}

func (f *file) WriteAt(off int64, p payload.Payload) error {
	_, err := f.f.WriteAt(p.Materialize(), off)
	return err
}

func (f *file) Append(p payload.Payload) (int64, error) {
	off, err := f.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	_, err = f.f.Write(p.Materialize())
	return off, err
}

func (f *file) ReadAt(off, n int64) (payload.List, error) {
	buf := make([]byte, n)
	read, err := f.f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	var out payload.List
	out = out.Append(payload.FromBytes(buf[:read]))
	if int64(read) < n {
		// Reads past EOF return zeros, matching the simulated store's
		// sparse-object semantics (PLFS bounds reads by the logical size).
		out = out.Append(payload.Zeros(n - int64(read)))
	}
	return out, nil
}

func (f *file) Size() int64 {
	fi, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

func (f *file) Close() error { return f.f.Close() }
