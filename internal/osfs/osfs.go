// Package osfs binds the PLFS Backend interface to the real operating
// system filesystem, so PLFS runs as an actual middleware library over a
// local directory tree (the role the underlying parallel file system's
// mount plays in production).
package osfs

import (
	"io"
	"os"
	"sort"
	"sync"

	"plfs/internal/extent"
	"plfs/internal/payload"
	"plfs/internal/plfs"
)

// FS implements plfs.Backend over the host filesystem.  The zero value is
// ready to use; paths are passed through verbatim.
//
// Each FS built by New carries its own path-lock table, so unrelated
// mounts never contend on (or even see) each other's locks; the zero
// value falls back to a process-global table, which is correct but
// shares lock state with every other zero-value FS.
type FS struct {
	locks *pathLockTable
}

var _ plfs.Backend = FS{}

// New returns an OS-filesystem backend with a private path-lock table.
func New() FS { return FS{locks: newPathLockTable()} }

// ConcurrentIO marks the backend as safe for the reader's I/O fan-out:
// handles are os.Files, whose positional reads are pread(2) calls with no
// shared cursor, and Open/Close are independent syscalls.
func (FS) ConcurrentIO() bool { return true }

// Mkdir implements plfs.Backend.
func (FS) Mkdir(path string) error { return os.Mkdir(path, 0o755) }

// Create implements plfs.Backend.  Creation is exclusive, matching the
// container protocol's reliance on EEXIST.
func (fs FS) Create(path string) (plfs.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{f: f, path: path, locks: fs.lockTable()}, nil
}

// CreateBulk implements plfs.BulkCreator.  A local filesystem has no
// bulk-create RPC, so the batch applies as an in-order loop — the
// capability here is a correctness contract (per-entry verdicts, entries
// applied in order, files left closed), not an amortization: a real MDS
// backend makes the same batch one round trip.  It exists so the batched
// collective open path runs over the POSIX rig, where the fault wrapper
// can still gate every entry individually.
func (fs FS) CreateBulk(ops []plfs.BulkOp) []error {
	errs := make([]error, len(ops))
	for i, op := range ops {
		if op.Dir {
			errs[i] = fs.Mkdir(op.Path)
			continue
		}
		f, err := fs.Create(op.Path)
		if err == nil {
			err = f.Close()
		}
		errs[i] = err
	}
	return errs
}

// OpenRead implements plfs.Backend.
func (fs FS) OpenRead(path string) (plfs.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &file{f: f, path: path, ro: true, locks: fs.lockTable()}, nil
}

// OpenWrite implements plfs.Backend: open an existing file for writing
// without truncation.
func (fs FS) OpenWrite(path string) (plfs.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return &file{f: f, path: path, locks: fs.lockTable()}, nil
}

// Stat implements plfs.Backend.
func (FS) Stat(path string) (plfs.Info, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return plfs.Info{}, err
	}
	return plfs.Info{Name: fi.Name(), Dir: fi.IsDir(), Size: fi.Size()}, nil
}

// ReadDir implements plfs.Backend.
func (FS) ReadDir(path string) ([]plfs.Info, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := make([]plfs.Info, 0, len(ents))
	for _, e := range ents {
		info := plfs.Info{Name: e.Name(), Dir: e.IsDir()}
		if !e.IsDir() {
			if fi, err := e.Info(); err == nil {
				info.Size = fi.Size()
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Remove implements plfs.Backend.
func (FS) Remove(path string) error { return os.Remove(path) }

// Rename implements plfs.Backend.
func (FS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

type file struct {
	f     *os.File
	path  string
	ro    bool
	locks *pathLockTable
}

func (f *file) WriteAt(off int64, p payload.Payload) error {
	_, err := f.f.WriteAt(p.Materialize(), off)
	return err
}

func (f *file) Append(p payload.Payload) (int64, error) {
	off, err := f.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	_, err = f.f.Write(p.Materialize())
	return off, err
}

func (f *file) ReadAt(off, n int64) (payload.List, error) {
	buf := make([]byte, n)
	read, err := f.f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	var out payload.List
	out = out.Append(payload.FromBytes(buf[:read]))
	if int64(read) < n {
		// Reads past EOF return zeros, matching the simulated store's
		// sparse-object semantics (PLFS bounds reads by the logical size).
		out = out.Append(payload.Zeros(n - int64(read)))
	}
	return out, nil
}

func (f *file) Size() int64 {
	fi, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

func (f *file) Close() error { return f.f.Close() }

// WritevAt implements plfs.VectoredIO: the host kernel has no listio
// syscall, so the batch degrades to a pwrite per extent — the win here is
// the single middleware call, not fewer syscalls.
func (f *file) WritevAt(segs []extent.Ext, data payload.List) error {
	var pos int64
	for _, e := range segs {
		off := e.Off
		for _, p := range data.Slice(pos, e.Len) {
			if _, err := f.f.WriteAt(p.Materialize(), off); err != nil {
				return err
			}
			off += p.Len()
		}
		pos += e.Len
	}
	return nil
}

// ReadvAt implements plfs.VectoredIO.
func (f *file) ReadvAt(segs []extent.Ext) (payload.List, error) {
	var out payload.List
	for _, e := range segs {
		if e.Len <= 0 {
			continue
		}
		pl, err := f.ReadAt(e.Off, e.Len)
		if err != nil {
			return nil, err
		}
		out = out.Concat(pl)
	}
	return out, nil
}

// Appendv implements plfs.BatchAppender: one seek to EOF and one write of
// the concatenated pieces.
func (f *file) Appendv(pl payload.List) (int64, error) {
	off, err := f.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 0, pl.Len())
	for _, p := range pl {
		buf = append(buf, p.Materialize()...)
	}
	_, err = f.f.Write(buf)
	return off, err
}

// pathLockTable serializes RMW windows among one backend's writers,
// keyed by path — the stand-in for fcntl byte-range locks when all
// writers are goroutines of one process (fcntl locks are per-process, so
// they would not exclude our own goroutines anyway).  Entries are
// refcounted: the map holds a lock only while some goroutine holds or
// awaits it, so a long-lived service does not accumulate one mutex per
// path ever locked.
type pathLockTable struct {
	mu sync.Mutex
	m  map[string]*pathLock
}

type pathLock struct {
	mu   sync.Mutex
	refs int // holders + waiters, guarded by pathLockTable.mu
}

func newPathLockTable() *pathLockTable {
	return &pathLockTable{m: make(map[string]*pathLock)}
}

// globalLocks backs zero-value FS instances that bypassed New.
var globalLocks = newPathLockTable()

func (fs FS) lockTable() *pathLockTable {
	if fs.locks != nil {
		return fs.locks
	}
	return globalLocks
}

// lock acquires the path's mutex, creating the entry on first use.
func (t *pathLockTable) lock(path string) {
	t.mu.Lock()
	l := t.m[path]
	if l == nil {
		l = new(pathLock)
		t.m[path] = l
	}
	l.refs++
	t.mu.Unlock()
	l.mu.Lock() // outside t.mu: waiting must not block other paths
}

// unlock releases the path's mutex and removes the entry once no holder
// or waiter remains.
func (t *pathLockTable) unlock(path string) {
	t.mu.Lock()
	l := t.m[path]
	if l == nil {
		t.mu.Unlock()
		panic("osfs: unlock of unlocked path " + path)
	}
	l.refs--
	if l.refs == 0 {
		delete(t.m, path)
	}
	t.mu.Unlock()
	l.mu.Unlock()
}

// entries reports the live lock count (tests).
func (t *pathLockTable) entries() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// LockRange implements plfs.RangeLocker.  The grant is conservative:
// whole-file, ignoring off/n.
func (f *file) LockRange(off, n int64) error {
	f.locks.lock(f.path)
	return nil
}

// UnlockRange implements plfs.RangeLocker.
func (f *file) UnlockRange(off, n int64) error {
	f.locks.unlock(f.path)
	return nil
}
