package trace

import (
	"strings"
	"testing"
	"time"

	"plfs/internal/sim"
)

func TestRecorderSamplesAndStops(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRecorder(eng, 10*time.Millisecond)
	counter := 0.0
	r.Add("work", func() float64 { return counter })
	eng.Spawn("worker", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * time.Millisecond)
			counter++
		}
	})
	r.Start()
	if err := eng.Run(); err != nil {
		t.Fatal(err) // the recorder must not deadlock or spin forever
	}
	if r.Samples() < 10 || r.Samples() > 13 {
		t.Fatalf("samples = %d, want ~11", r.Samples())
	}
	series := r.Series("work")
	if series[0] != 0 || series[len(series)-1] < 9 {
		t.Fatalf("series = %v", series)
	}
	if r.Series("nope") != nil {
		t.Fatal("unknown series returned data")
	}
}

func TestWriteCSV(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRecorder(eng, time.Millisecond)
	r.Add("x", func() float64 { return 42 })
	eng.Spawn("p", func(p *sim.Proc) { p.Sleep(3 * time.Millisecond) })
	r.Start()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "t_seconds,x\n") {
		t.Fatalf("csv header: %q", out)
	}
	if !strings.Contains(out, ",42\n") {
		t.Fatalf("csv missing samples: %q", out)
	}
}

func TestStartTwiceFails(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRecorder(eng, time.Millisecond)
	if err := r.Add("x", func() float64 { return 1 }); err != nil {
		t.Fatalf("Add before Start: %v", err)
	}
	eng.Spawn("p", func(p *sim.Proc) { p.Sleep(5 * time.Millisecond) })
	if err := r.Start(); err != nil {
		t.Fatalf("first Start: %v", err)
	}
	if err := r.Start(); err != ErrStarted {
		t.Fatalf("second Start = %v, want ErrStarted", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The rejected Start must not have armed a second sampling schedule.
	if r.Samples() < 5 || r.Samples() > 8 {
		t.Fatalf("samples = %d, want ~6 (double-Start would double it)", r.Samples())
	}
}

func TestAddAfterStartFails(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRecorder(eng, time.Millisecond)
	r.Add("x", func() float64 { return 1 })
	eng.Spawn("p", func(p *sim.Proc) { p.Sleep(2 * time.Millisecond) })
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("late", func() float64 { return 2 }); err != ErrStarted {
		t.Fatalf("Add after Start = %v, want ErrStarted", err)
	}
	if err := r.AddProbes([]Probe{{"late2", func() float64 { return 3 }}}); err != ErrStarted {
		t.Fatalf("AddProbes after Start = %v, want ErrStarted", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The late probes must not appear in the output.
	if r.Series("late") != nil || r.Series("late2") != nil {
		t.Fatal("late probe was recorded despite ErrStarted")
	}
}

func TestRateProbe(t *testing.T) {
	var c int64
	p := Rate("r", time.Second, func() int64 { return c })
	if got := p.Fn(); got != 0 {
		t.Fatalf("first sample = %v", got)
	}
	c = 100
	if got := p.Fn(); got != 100 {
		t.Fatalf("rate = %v, want 100/s", got)
	}
	c = 150
	if got := p.Fn(); got != 50 {
		t.Fatalf("rate = %v, want 50/s", got)
	}
}
