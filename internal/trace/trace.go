// Package trace records time series from a running simulation: a
// Recorder samples caller-supplied probes (queue lengths, bytes moved,
// cache hit ratios …) at a fixed virtual-time interval and renders the
// result as CSV.  It is how plfsrun -trace exposes where an experiment's
// time goes — which stage saturates, when the convoys form, how cache
// hit rates evolve through a run.
package trace

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"plfs/internal/sim"
)

// Errors reported by Recorder misuse.
var (
	// ErrStarted is returned by Start when the recorder is already armed,
	// and by Add/AddProbes after Start: a probe registered mid-run would
	// make earlier rows shorter than the header, corrupting the CSV.
	ErrStarted = errors.New("trace: recorder already started")
)

// Probe reads one instantaneous metric.
type Probe struct {
	Name string
	Fn   func() float64
}

// Recorder samples probes on a virtual-time schedule.
type Recorder struct {
	eng      *sim.Engine
	interval time.Duration
	probes   []Probe
	times    []sim.Time
	rows     [][]float64
	started  bool
}

// NewRecorder creates a recorder sampling every interval of virtual time.
func NewRecorder(eng *sim.Engine, interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Recorder{eng: eng, interval: interval}
}

// Add registers a probe.  All probes must be added before Start; a late
// registration returns ErrStarted and is not recorded.
func (r *Recorder) Add(name string, fn func() float64) error {
	if r.started {
		return ErrStarted
	}
	r.probes = append(r.probes, Probe{name, fn})
	return nil
}

// AddProbes registers a batch of probes (same contract as Add).
func (r *Recorder) AddProbes(ps []Probe) error {
	if r.started {
		return ErrStarted
	}
	r.probes = append(r.probes, ps...)
	return nil
}

// Start arms the sampler.  It must be called after the simulation's
// processes are spawned (the recorder stops itself once no processes
// remain, letting the event queue drain).  Starting an already-started
// recorder returns ErrStarted — a silent second arm would double the
// sampling rate and interleave duplicate rows.
func (r *Recorder) Start() error {
	if r.started {
		return ErrStarted
	}
	r.started = true
	r.sample()
	r.schedule()
	return nil
}

func (r *Recorder) schedule() {
	r.eng.After(r.interval, func() {
		if r.eng.Live() == 0 {
			return
		}
		r.sample()
		r.schedule()
	})
}

func (r *Recorder) sample() {
	r.times = append(r.times, r.eng.Now())
	row := make([]float64, len(r.probes))
	for i, p := range r.probes {
		row[i] = p.Fn()
	}
	r.rows = append(r.rows, row)
}

// Samples returns the number of recorded rows.
func (r *Recorder) Samples() int { return len(r.rows) }

// Series returns the recorded values of the named probe.
func (r *Recorder) Series(name string) []float64 {
	for i, p := range r.probes {
		if p.Name == name {
			out := make([]float64, len(r.rows))
			for j, row := range r.rows {
				out[j] = row[i]
			}
			return out
		}
	}
	return nil
}

// WriteCSV renders the samples: a header row, then one row per sample
// with the virtual time in seconds first.
func (r *Recorder) WriteCSV(w io.Writer) error {
	names := make([]string, 0, len(r.probes)+1)
	names = append(names, "t_seconds")
	for _, p := range r.probes {
		names = append(names, p.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	for i, row := range r.rows {
		cells := make([]string, 0, len(row)+1)
		cells = append(cells, fmt.Sprintf("%.6f", r.times[i].Seconds()))
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Rate wraps a monotone counter probe into a per-second rate probe
// (differences between consecutive samples divided by the interval).
// It keeps state, so use one Rate per counter.
func Rate(name string, interval time.Duration, counter func() int64) Probe {
	var last int64
	return Probe{Name: name, Fn: func() float64 {
		cur := counter()
		d := cur - last
		last = cur
		return float64(d) / interval.Seconds()
	}}
}
