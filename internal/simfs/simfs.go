// Package simfs adapts a simulated parallel file system client
// (internal/pfs) to the PLFS Backend interface, binding the middleware to
// the discrete-event cluster model.
package simfs

import (
	"time"

	"plfs/internal/extent"
	"plfs/internal/fault"
	"plfs/internal/payload"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
)

// Backend wraps one simulated client.
type Backend struct {
	c *pfs.Client
}

var _ plfs.Backend = Backend{}

// New returns a backend for the given simulated client.
func New(c *pfs.Client) Backend { return Backend{c: c} }

// Vols builds the per-volume backend set plfs.Ctx wants; on pfs every
// volume is reachable through the same client, so all slots share it.
func Vols(c *pfs.Client, volumes int) []plfs.Backend {
	out := make([]plfs.Backend, volumes)
	for i := range out {
		out[i] = Backend{c: c}
	}
	return out
}

// Ctx assembles a complete plfs.Ctx for a simulated process.
func Ctx(fs *pfs.FS, node int, p *sim.Proc, rank, procsPerNode int) plfs.Ctx {
	c := fs.Client(node, p)
	return plfs.Ctx{
		Vols:       Vols(c, fs.Volumes()),
		Rank:       rank,
		Host:       node,
		HostLeader: rank%procsPerNode == 0,
		Clock:      plfs.ClockFunc(func() int64 { return int64(p.Now()) }),
		Sleep:      procSleeper{p},
	}
}

// FaultCtx is Ctx with every volume backend routed through the fault
// injector; injected latency and retry backoff are charged to the
// process's virtual clock.  A nil injector yields a plain Ctx.
func FaultCtx(fs *pfs.FS, node int, p *sim.Proc, rank, procsPerNode int, inj *fault.Injector) plfs.Ctx {
	ctx := Ctx(fs, node, p, rank, procsPerNode)
	if inj != nil {
		ctx.Vols = inj.WrapVols(ctx.Vols, ctx.Sleep)
	}
	return ctx
}

type procSleeper struct{ p *sim.Proc }

func (s procSleeper) Sleep(d time.Duration) { s.p.Sleep(d) }

// Mkdir implements plfs.Backend.
func (b Backend) Mkdir(path string) error { return b.c.Mkdir(path) }

// Create implements plfs.Backend.
func (b Backend) Create(path string) (plfs.File, error) {
	h, err := b.c.Create(path)
	if err != nil {
		return nil, err
	}
	return file{h}, nil
}

// OpenRead implements plfs.Backend.
func (b Backend) OpenRead(path string) (plfs.File, error) {
	h, err := b.c.OpenRead(path)
	if err != nil {
		return nil, err
	}
	return file{h}, nil
}

// OpenWrite implements plfs.Backend.
func (b Backend) OpenWrite(path string) (plfs.File, error) {
	h, err := b.c.OpenWrite(path)
	if err != nil {
		return nil, err
	}
	return file{h}, nil
}

// Stat implements plfs.Backend.
func (b Backend) Stat(path string) (plfs.Info, error) {
	fi, err := b.c.Stat(path)
	if err != nil {
		return plfs.Info{}, err
	}
	return plfs.Info{Name: fi.Name, Dir: fi.Dir, Size: fi.Size}, nil
}

// ReadDir implements plfs.Backend.
func (b Backend) ReadDir(path string) ([]plfs.Info, error) {
	ents, err := b.c.ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := make([]plfs.Info, len(ents))
	for i, e := range ents {
		out[i] = plfs.Info{Name: e.Name, Dir: e.Dir, Size: e.Size}
	}
	return out, nil
}

// CreateBulk implements plfs.BulkCreator: the batch rides the simulated
// MDS's bulk-create RPC, paying one amortized service charge per volume
// instead of per-entry create costs (pfs errors wrap the io/fs sentinels
// the plfs contract asks for, so verdicts pass through unchanged).
func (b Backend) CreateBulk(ops []plfs.BulkOp) []error {
	pops := make([]pfs.BulkOp, len(ops))
	for i, op := range ops {
		pops[i] = pfs.BulkOp{Path: op.Path, Dir: op.Dir}
	}
	return b.c.CreateBulk(pops)
}

// Remove implements plfs.Backend.
func (b Backend) Remove(path string) error { return b.c.Remove(path) }

// Rename implements plfs.Backend.
func (b Backend) Rename(oldPath, newPath string) error { return b.c.Rename(oldPath, newPath) }

type file struct {
	h *pfs.Handle
}

func (f file) WriteAt(off int64, p payload.Payload) error { return f.h.WriteAt(off, p) }
func (f file) Append(p payload.Payload) (int64, error)    { return f.h.Append(p) }
func (f file) ReadAt(off, n int64) (payload.List, error)  { return f.h.ReadAt(off, n) }
func (f file) Size() int64                                { return f.h.Size() }
func (f file) Close() error                               { return f.h.Close() }

// Vectored list-I/O, batched appends, and the advisory write lock pass
// straight through to the simulated client, which models their cost
// (plfs.VectoredIO / plfs.BatchAppender / plfs.RangeLocker).
func (f file) WritevAt(segs []extent.Ext, data payload.List) error { return f.h.WritevAt(segs, data) }
func (f file) ReadvAt(segs []extent.Ext) (payload.List, error)     { return f.h.ReadvAt(segs) }
func (f file) Appendv(pl payload.List) (int64, error)              { return f.h.Appendv(pl) }
func (f file) LockRange(off, n int64) error                        { return f.h.LockRange(off, n) }
func (f file) UnlockRange(off, n int64) error                      { return f.h.UnlockRange(off, n) }
