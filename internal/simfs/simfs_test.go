package simfs_test

import (
	"fmt"
	"testing"

	"plfs/internal/mpi"
	"plfs/internal/payload"
	"plfs/internal/pfs"
	"plfs/internal/plfs"
	"plfs/internal/sim"
	"plfs/internal/simfs"
)

// simJob runs an N-rank MPI job against a fresh simulated cluster, with
// PLFS mounted across the cluster's volumes, and reports per-phase
// durations (max across ranks, as a bulk-synchronous job measures).
type simJob struct {
	eng   *sim.Engine
	fs    *pfs.FS
	world *mpi.World
	mount *plfs.Mount
}

func newSimJob(t *testing.T, seed int64, ranks int, opt plfs.Options, mutate func(*pfs.Config)) *simJob {
	t.Helper()
	eng := sim.NewEngine(seed)
	cfg := pfs.SmallCluster()
	cfg.JitterFrac = 0
	if mutate != nil {
		mutate(&cfg)
	}
	fs := pfs.New(eng, cfg)
	world := mpi.NewWorld(eng, ranks, cfg.ProcsPerNode, mpi.DefaultNet())
	roots := make([]string, fs.Volumes())
	for i := range roots {
		roots[i] = fs.VolumeRoot(i)
	}
	return &simJob{eng: eng, fs: fs, world: world, mount: plfs.NewMount(roots, opt)}
}

func (j *simJob) ctx(r *mpi.Rank) plfs.Ctx {
	ctx := simfs.Ctx(j.fs, r.Node(), r.Proc(), r.Rank(), j.world.Size()/j.world.Nodes())
	ctx.Comm = r.Comm()
	return ctx
}

// phases runs write + read and returns (writeTime, openTime, readTime).
func runWriteRead(t *testing.T, seed int64, ranks int, opt plfs.Options) (wT, oT, rT sim.Time, stats plfs.OpenStats) {
	t.Helper()
	j := newSimJob(t, seed, ranks, opt, nil)
	const blocks, bs = 20, int64(50 << 10)
	var wEnd, oEnd, rEnd sim.Time
	j.world.SpawnAll(func(r *mpi.Rank) {
		ctx := j.ctx(r)
		c := ctx.Comm
		w, err := j.mount.Create(ctx, "ckpt")
		if err != nil {
			t.Error(err)
			return
		}
		for k := 0; k < blocks; k++ {
			off := int64(k*ranks+r.Rank()) * bs
			if err := w.Write(off, payload.Synthetic(uint64(r.Rank()+1), off, bs)); err != nil {
				t.Error(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Error(err)
		}
		c.Barrier()
		if r.Proc().Now() > wEnd {
			wEnd = r.Proc().Now()
		}
		rd, err := j.mount.OpenReader(ctx, "ckpt")
		if err != nil {
			t.Error(err)
			return
		}
		c.Barrier()
		if r.Proc().Now() > oEnd {
			oEnd = r.Proc().Now()
		}
		if r.Rank() == 0 {
			stats = rd.Stats
		}
		for k := 0; k < blocks; k++ {
			off := int64(k*ranks+r.Rank()) * bs
			got, err := rd.ReadAt(off, bs)
			if err != nil {
				t.Error(err)
				continue
			}
			want := payload.List{payload.Synthetic(uint64(r.Rank()+1), off, bs)}
			if !payload.ContentEqual(got, want) {
				t.Errorf("rank %d block %d content mismatch", r.Rank(), k)
				return
			}
		}
		rd.Close()
		c.Barrier()
		if r.Proc().Now() > rEnd {
			rEnd = r.Proc().Now()
		}
	})
	if err := j.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return wEnd, oEnd - wEnd, rEnd - oEnd, stats
}

func TestSimulatedN1RoundtripAllModes(t *testing.T) {
	for _, mode := range []plfs.Mode{plfs.Original, plfs.IndexFlatten, plfs.ParallelIndexRead} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			_, _, _, stats := runWriteRead(t, 1, 32, plfs.Options{IndexMode: mode, NumSubdirs: 8})
			if stats.RawEntries != 32*20 {
				t.Fatalf("raw entries = %d, want %d", stats.RawEntries, 32*20)
			}
		})
	}
}

// TestOriginalDoesNSquaredIndexReads verifies the mechanism behind Fig. 3a:
// with N readers, the Original design reads N index files per reader,
// Parallel Index Read about one per reader.
func TestOriginalDoesNSquaredIndexReads(t *testing.T) {
	const ranks = 24
	_, _, _, so := runWriteRead(t, 1, ranks, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 8})
	if so.IndexReads != ranks {
		t.Fatalf("original rank 0 read %d index files, want %d (N per reader)", so.IndexReads, ranks)
	}
	_, _, _, sp := runWriteRead(t, 1, ranks, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 8})
	if sp.IndexReads > 2+ranks/4 {
		t.Fatalf("parallel-index-read rank 0 read %d index files, want ~N/P", sp.IndexReads)
	}
}

// TestAggregationTechniquesBeatOriginal verifies the headline of Fig. 4a:
// at moderate scale both techniques open for read much faster than the
// Original design, and Index Flatten pays for it with a slower close.
func TestAggregationTechniquesBeatOriginal(t *testing.T) {
	const ranks = 128
	wOrig, oOrig, _, _ := runWriteRead(t, 3, ranks, plfs.Options{IndexMode: plfs.Original, NumSubdirs: 16})
	wFlat, oFlat, _, sf := runWriteRead(t, 3, ranks, plfs.Options{IndexMode: plfs.IndexFlatten, NumSubdirs: 16})
	_, oPar, _, _ := runWriteRead(t, 3, ranks, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 16})

	if !sf.UsedGlobal {
		t.Fatal("flatten reader did not use global index")
	}
	if ratio := float64(oOrig) / float64(oPar); ratio < 2 {
		t.Fatalf("original/parallel open ratio = %.2f, want > 2", ratio)
	}
	if ratio := float64(oOrig) / float64(oFlat); ratio < 2 {
		t.Fatalf("original/flatten open ratio = %.2f, want > 2", ratio)
	}
	// Flatten only broadcasts a prebuilt index, but rank 0 parses it
	// serially, so the two techniques land close together (as in the
	// paper's Fig. 4a); flatten must not be meaningfully slower.
	if float64(oFlat) > 1.5*float64(oPar) {
		t.Fatalf("flatten open (%v) much slower than parallel open (%v)", oFlat, oPar)
	}
	// At this scale flatten's close-time cost (gather + global-index write)
	// trades against skipping the per-writer index droppings, so the write
	// phases are comparable; Fig. 4c/4d's divergence appears at 2048
	// streams and is exercised by the benchmark harness instead.
	_ = wFlat
	_ = wOrig
}

// TestSimulatedDeterminism: identical seeds give identical times; the
// simulated PLFS stack is a pure function of (config, seed).
func TestSimulatedDeterminism(t *testing.T) {
	w1, o1, r1, _ := runWriteRead(t, 7, 16, plfs.Options{IndexMode: plfs.ParallelIndexRead})
	w2, o2, r2, _ := runWriteRead(t, 7, 16, plfs.Options{IndexMode: plfs.ParallelIndexRead})
	if w1 != w2 || o1 != o2 || r1 != r2 {
		t.Fatalf("non-deterministic: (%v %v %v) vs (%v %v %v)", w1, o1, r1, w2, o2, r2)
	}
}

// TestPLFSWriteBeatsDirectN1 reproduces the premise of Fig. 2 end to end:
// the same strided N-1 workload is much faster through PLFS than written
// directly to the shared file on the parallel file system.
func TestPLFSWriteBeatsDirectN1(t *testing.T) {
	const ranks = 64
	const blocks, bs = 100, int64(47<<10) + 13 // unaligned with lock units

	direct := func() sim.Time {
		eng := sim.NewEngine(5)
		cfg := pfs.SmallCluster()
		cfg.JitterFrac = 0
		fs := pfs.New(eng, cfg)
		world := mpi.NewWorld(eng, ranks, cfg.ProcsPerNode, mpi.DefaultNet())
		var end sim.Time
		world.SpawnAll(func(r *mpi.Rank) {
			c := fs.Client(r.Node(), r.Proc())
			comm := r.Comm()
			var h *pfs.Handle
			var err error
			if r.Rank() == 0 {
				h, err = c.Create("/vol0/shared")
			}
			comm.Barrier()
			if r.Rank() != 0 {
				h, err = c.OpenWrite("/vol0/shared")
			}
			if err != nil {
				t.Error(err)
				return
			}
			for k := 0; k < blocks; k++ {
				off := int64(k*ranks+r.Rank()) * bs
				if err := h.WriteAt(off, payload.Synthetic(uint64(r.Rank()+1), off, bs)); err != nil {
					t.Error(err)
				}
			}
			h.Close()
			comm.Barrier()
			if r.Proc().Now() > end {
				end = r.Proc().Now()
			}
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}()

	j := newSimJob(t, 5, ranks, plfs.Options{IndexMode: plfs.ParallelIndexRead, NumSubdirs: 8}, nil)
	var plfsEnd sim.Time
	j.world.SpawnAll(func(r *mpi.Rank) {
		ctx := j.ctx(r)
		w, err := j.mount.Create(ctx, "shared")
		if err != nil {
			t.Error(err)
			return
		}
		for k := 0; k < blocks; k++ {
			off := int64(k*ranks+r.Rank()) * bs
			if err := w.Write(off, payload.Synthetic(uint64(r.Rank()+1), off, bs)); err != nil {
				t.Error(err)
			}
		}
		w.Close()
		ctx.Comm.Barrier()
		if r.Proc().Now() > plfsEnd {
			plfsEnd = r.Proc().Now()
		}
	})
	if err := j.eng.Run(); err != nil {
		t.Fatal(err)
	}

	speedup := float64(direct) / float64(plfsEnd)
	if speedup < 5 {
		t.Fatalf("PLFS N-1 write speedup = %.1fx, want the paper's order-of-magnitude gap (>5x)", speedup)
	}
	t.Logf("N-1 write speedup through PLFS: %.1fx (direct %v, plfs %v)", speedup, direct, plfsEnd)
}

// TestFederatedMetadataSpeedsNNCreates reproduces the premise of Fig. 7/8:
// an N-N create storm through PLFS speeds up with more metadata volumes.
func TestFederatedMetadataSpeedsNNCreates(t *testing.T) {
	storm := func(vols int) sim.Time {
		const ranks = 64
		opt := plfs.Options{IndexMode: plfs.ParallelIndexRead, SpreadContainers: true, NumSubdirs: 2}
		j := newSimJob(t, 9, ranks, opt, func(c *pfs.Config) { c.Volumes = vols })
		var end sim.Time
		j.world.SpawnAll(func(r *mpi.Rank) {
			ctx := j.ctx(r)
			ctx.Comm = nil // N-N: each rank creates its own file, uncoordinated
			// Pure open/close storm, the paper's metadata methodology.
			w, err := j.mount.Create(ctx, fmt.Sprintf("file.%d", r.Rank()))
			if err != nil {
				t.Error(err)
				return
			}
			if err := w.Close(); err != nil {
				t.Error(err)
			}
			if r.Proc().Now() > end {
				end = r.Proc().Now()
			}
		})
		if err := j.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	one := storm(1)
	ten := storm(10)
	if ratio := float64(one) / float64(ten); ratio < 3 {
		t.Fatalf("PLFS-1/PLFS-10 N-N create ratio = %.2f, want federation speedup (>3x)", ratio)
	}
}
