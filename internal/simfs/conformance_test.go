package simfs_test

import (
	"testing"

	"plfs/internal/pfs"
	"plfs/internal/plfs/backendtest"
	"plfs/internal/sim"
	"plfs/internal/simfs"
)

// TestBackendConformance runs the DESIGN.md §16 contract suite over the
// simulated POSIX cluster.  Each check runs on its own engine from a
// discrete-event process, which is why the suite reports with Errorf
// only — FailNow must not fire off the test goroutine.
func TestBackendConformance(t *testing.T) {
	for _, c := range backendtest.Checks() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			fs := pfs.New(eng, pfs.SmallCluster())
			err := eng.RunProcs(func(p *sim.Proc) {
				ctx := simfs.Ctx(fs, 0, p, 0, 1)
				c.Fn(t, ctx.Vols[0], fs.VolumeRoot(0))
			})
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
		})
	}
}
