package objfs_test

import (
	"testing"

	"plfs/internal/objfs"
	"plfs/internal/plfs"
	"plfs/internal/plfs/backendtest"
)

// TestBackendConformance runs the DESIGN.md §16 contract suite over an
// engineless object store: same table as osfs and simfs, proving the
// flat-namespace emulation (markers, prefix scans, copy+delete renames)
// is indistinguishable through the Backend interface.
func TestBackendConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) (plfs.Backend, string) {
		s := objfs.New(objfs.DefaultConfig())
		return objfs.Vol(s), s.Roots(1)[0]
	})
}
