// Package objfs implements a simulated flat key→object store and binds
// it to the PLFS Backend interface — the "object storage device" target
// the paper's §VI sketches when it argues PLFS droppings are objects in
// disguise (and the namespace ROADMAP item 4 asks for).
//
// The store is everything the simulated POSIX file system (internal/pfs)
// is not:
//
//   - a single flat namespace of keys: no directories, no per-directory
//     lock convoys, no rename serialization — a "directory" is nothing
//     but a key prefix plus a zero-byte marker object (`prefix/`);
//   - conditional PUT as the native publish primitive: put-if-absent and
//     put-if-generation replace the POSIX create-temp/rename commit
//     protocol (plfs.CondPutter), so a commit is one atomic KV operation
//     instead of four namespace mutations;
//   - listing as a bounded prefix scan: ReadDir pages through every key
//     below the prefix (ListPage keys per request), so the cost of
//     "readdir" grows with the object population under the prefix — the
//     price a flat namespace pays back for its free creates;
//   - per-object metadata overhead (MetaObjBytes) charged to every live
//     object, making the container's many-small-objects layout visible
//     in the accounting.
//
// Like internal/simfs + internal/pfs, the store runs in two modes.  New
// builds an engineless store: operations are free, handles are
// goroutine-safe (the Backend advertises plfs.ConcurrentIO), and the
// store drops into the osfs-style unit-test rigs.  NewSim attaches the
// store to a discrete-event engine: a KV server pool (sim.Resource)
// serializes request service, a fair-share link (sim.PSLink) carries
// object bytes, and every operation charges round-trip latency to the
// calling process — all virtual time, deterministic in the seed.
package objfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"sort"
	"strings"
	"sync"
	"time"

	"plfs/internal/obs"
	"plfs/internal/payload"
	"plfs/internal/pfs"
	"plfs/internal/sim"
)

// Errors returned by store operations.  ErrExist and ErrNotExist wrap the
// io/fs sentinels, as the plfs.Backend contract requires.
var (
	ErrExist    = fmt.Errorf("objfs: %w", iofs.ErrExist)
	ErrNotExist = fmt.Errorf("objfs: %w", iofs.ErrNotExist)
	ErrNotEmpty = errors.New("objfs: prefix not empty")
	ErrIsDir    = errors.New("objfs: key is a prefix marker")
)

// ConflictError reports a conditional PUT whose generation precondition
// failed: another writer republished the object between our HEAD and PUT.
// It is transient — the losing writer re-reads the current generation and
// retries — and the plfs retry policy recognizes it via Transient().
type ConflictError struct {
	Key  string
	Want int64 // the generation the PUT was conditioned on
	Have int64 // the generation actually found
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("objfs: conditional put conflict on %s (want gen %d, have %d)", e.Key, e.Want, e.Have)
}

// Transient reports that a retry may succeed (the plfs retry policy's
// classification hook).
func (e *ConflictError) Transient() bool { return true }

// Generation preconditions for Store.put.
const (
	// genAny applies the PUT unconditionally.
	genAny int64 = -1
	// genAbsent requires that the key not exist (put-if-absent).
	genAbsent int64 = 0
)

// Config calibrates the simulated object store.  The defaults are chosen
// against pfs.SmallCluster so a posix-vs-objfs comparison is
// apples-to-apples: the same shared data bandwidth, but KV-style
// metadata — individually pricier round trips with no per-directory
// serialization behind them.
type Config struct {
	// KVServers is the parallel service capacity of the metadata/KV
	// tier.  There is no per-directory lock in front of it: the create
	// storm that convoys on a POSIX directory fans out here.
	KVServers int

	// Service times per request class.
	PutOp    time.Duration // conditional PUT / part upload (metadata commit)
	GetOp    time.Duration // GET request setup
	HeadOp   time.Duration // HEAD (stat)
	DeleteOp time.Duration // DELETE
	ListOp   time.Duration // LIST, per page
	ListKey  time.Duration // LIST, per key scanned within a page

	// ListPage bounds a prefix scan: a listing of n keys costs
	// ceil(n/ListPage) paged LIST requests.
	ListPage int

	// ListInflight bounds LIST pages outstanding store-wide.  A
	// 100k-dropping container lists as ~100 pages per reader, and a wide
	// collective open fans out one such scan per rank; without
	// backpressure those pages monopolize the KV pool and starve
	// everything else.  Excess pages queue at the admission gate instead
	// (0 disables the bound; engineless stores never block).
	ListInflight int

	// RTT is the per-request round-trip latency (the HTTP-ish overhead
	// every object operation pays, typically above a POSIX RPC's).
	RTT time.Duration

	// DataBW is the shared object-data bandwidth in bytes/sec (the same
	// pipe pfs.Config.StorageBW models).
	DataBW float64

	// MetaObjBytes is the per-object metadata footprint charged to every
	// live object — the accounting that makes a container's
	// many-small-objects layout visible (Stats.MetaBytes).
	MetaObjBytes int64

	// JitterFrac perturbs every service time by ±frac (uniform).
	JitterFrac float64
}

// DefaultConfig approximates an on-premise object store fronting the
// same storage as pfs.SmallCluster: identical shared bandwidth, higher
// per-request latency, wide flat metadata.
func DefaultConfig() Config {
	return Config{
		KVServers: 32,
		PutOp:     400 * time.Microsecond,
		GetOp:     150 * time.Microsecond,
		HeadOp:    120 * time.Microsecond,
		DeleteOp:  300 * time.Microsecond,
		ListOp:    600 * time.Microsecond,
		ListKey:   3 * time.Microsecond,
		ListPage:     1000,
		ListInflight: 8,
		RTT:          250 * time.Microsecond,
		DataBW:    1.25e9,

		MetaObjBytes: 512,
		JitterFrac:   0.05,
	}
}

// Stats is a snapshot of the store's operation counters.
type Stats struct {
	Objects int64 // live objects, prefix markers included
	Puts    int64 // PUTs and part uploads (WriteAt/Append count here)
	Gets    int64
	Heads   int64
	Lists   int64 // LIST pages issued
	Deletes int64

	CondPuts  int64 // conditional PUTs (if-absent and if-generation)
	Conflicts int64 // conditional PUTs refused on a precondition

	ListKeys int64 // keys scanned by prefix listings
	BytesIn  int64 // object bytes written
	BytesOut int64 // object bytes read

	// MetaBytes is the live per-object metadata footprint
	// (Objects × Config.MetaObjBytes).
	MetaBytes int64
}

// object is one stored value: sparse payload-backed data plus the
// metadata a conditional PUT conditions on.
type object struct {
	data payload.File
	gen  int64 // bumped on every mutation; conditional PUTs compare it
}

// Store is the flat key→object map.  An engineless store (New) is safe
// for concurrent use from multiple goroutines; a sim-bound store
// (NewSim) must be driven from the engine's processes, one operation in
// flight per process, like every other simulated resource.
type Store struct {
	cfg      Config
	eng      *sim.Engine
	kv       *sim.Resource
	net      *sim.PSLink
	listGate *sim.Resource // LIST-page admission (Config.ListInflight)

	mu   sync.Mutex
	objs map[string]*object
	keys []string // sorted view of objs for prefix scans

	stats Stats
}

// New builds an engineless store: operations cost nothing and handles
// are goroutine-safe.  It backs unit tests and the conformance suite the
// way a temp-dir osfs does.
func New(cfg Config) *Store {
	if cfg.ListPage < 1 {
		cfg.ListPage = 1000
	}
	return &Store{cfg: cfg, objs: map[string]*object{}}
}

// NewSim builds a store bound to the engine: a KV server pool serializes
// request service and a fair-share link carries object bytes, so every
// operation issued through a Backend charges virtual time.
func NewSim(eng *sim.Engine, cfg Config) *Store {
	s := New(cfg)
	s.eng = eng
	s.kv = sim.NewResource(eng, max(1, cfg.KVServers))
	if cfg.ListInflight > 0 {
		s.listGate = sim.NewResource(eng, cfg.ListInflight)
	}
	if cfg.DataBW > 0 {
		s.net = sim.NewPSLink(eng, "objfs-data", cfg.DataBW)
	}
	return s
}

// Config returns the store's calibration.
func (s *Store) Config() Config { return s.cfg }

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Objects = int64(len(s.objs))
	st.MetaBytes = st.Objects * s.cfg.MetaObjBytes
	return st
}

// Roots creates n top-level prefixes ("/obj0" … "/objN-1") and returns
// their names — the mount roots a plfs.Ctx wants.  The prefixes are
// free-standing keys in one flat namespace: "federating" across them
// changes key strings, not service capacity, which is exactly the point
// the ablation-backend figure makes.  Creation is an administrative
// (cost-free) operation; calling Roots again returns the same names.
func (s *Store) Roots(n int) []string {
	out := make([]string, n)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range out {
		out[i] = fmt.Sprintf("/obj%d", i)
		key := out[i] + "/"
		if s.objs[key] == nil {
			s.insertLocked(key)
		}
	}
	return out
}

// Report maps the store's counters onto the pfs.Report shape the harness
// returns, so `plfsrun -stats` has something truthful to print in objfs
// mode: MetaOps covers every KV request, NetBytes the object bytes
// moved.  Fields that only exist on the POSIX simulation (lock RPCs,
// seeks, cache hits) stay zero.
func (s *Store) Report() pfs.Report {
	st := s.Stats()
	return pfs.Report{
		MetaOps:  st.Puts + st.Gets + st.Heads + st.Lists + st.Deletes,
		NetBytes: st.BytesIn + st.BytesOut,
	}
}

// PublishObs writes the store's counters into a metrics registry under
// objfs.* (see internal/obs; the objfs analogue of pfs.FS.PublishObs).
func (s *Store) PublishObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := s.Stats()
	set := func(name string, v int64) { reg.Gauge("objfs." + name).Set(float64(v)) }
	set("objects", st.Objects)
	set("puts", st.Puts)
	set("gets", st.Gets)
	set("heads", st.Heads)
	set("list_pages", st.Lists)
	set("list_keys", st.ListKeys)
	set("deletes", st.Deletes)
	set("cond_puts", st.CondPuts)
	set("cond_put_conflicts", st.Conflicts)
	set("bytes_in", st.BytesIn)
	set("bytes_out", st.BytesOut)
	set("meta_bytes", st.MetaBytes)
}

// TraceProbes exposes the store's shared resources for time-series
// sampling (the objfs analogue of pfs.FS.TraceProbes).
func (s *Store) TraceProbes() []struct {
	Name string
	Fn   func() float64
} {
	type probe = struct {
		Name string
		Fn   func() float64
	}
	ps := []probe{
		{"objfs_objects", func() float64 { return float64(s.Stats().Objects) }},
		{"objfs_kv_ops", func() float64 {
			st := s.Stats()
			return float64(st.Puts + st.Gets + st.Heads + st.Lists + st.Deletes)
		}},
		{"objfs_bytes", func() float64 {
			st := s.Stats()
			return float64(st.BytesIn + st.BytesOut)
		}},
	}
	if s.kv != nil {
		ps = append(ps, probe{"objfs_kv_queue", func() float64 { return float64(s.kv.QueueLen()) }})
	}
	if s.listGate != nil {
		ps = append(ps, probe{"objfs_list_queue", func() float64 { return float64(s.listGate.QueueLen()) }})
	}
	if s.net != nil {
		ps = append(ps, probe{"objfs_data_flows", func() float64 { return float64(s.net.Active()) }})
	}
	return ps
}

// ---- cost charging ------------------------------------------------------
//
// Costs are charged outside the store mutex: under the discrete-event
// engine a blocking call (Sleep, Resource.Use, PSLink.Transfer) parks the
// calling goroutine and runs others, and any of those blocking on a held
// sync.Mutex would deadlock the engine.  The mutex therefore only guards
// the in-memory map, and the windows it leaves between a HEAD and the
// dependent PUT are exactly where generation conflicts become observable.

// service charges one KV request: the round trip plus pooled service
// time.  Engineless stores (or a nil proc) charge nothing.
func (s *Store) service(p *sim.Proc, d time.Duration) {
	if s.eng == nil || p == nil {
		return
	}
	p.Sleep(s.eng.Jitter(s.cfg.RTT, s.cfg.JitterFrac))
	s.kv.Use(p, s.eng.Jitter(d, s.cfg.JitterFrac))
}

// listPage charges one paged LIST request while holding a listing
// admission slot, so at most Config.ListInflight pages are in service
// (RTT included) at once across the whole store — queueing, not KV-pool
// monopolization, is what a storm of giant prefix scans buys itself.
func (s *Store) listPage(p *sim.Proc, perKey time.Duration) {
	if s.listGate != nil && p != nil {
		s.listGate.Acquire(p)
		defer s.listGate.Release()
	}
	s.service(p, s.cfg.ListOp+perKey)
}

// transfer charges object-byte movement through the shared data link.
func (s *Store) transfer(p *sim.Proc, bytes int64) {
	if s.net == nil || p == nil || bytes <= 0 {
		return
	}
	s.net.Transfer(p, bytes)
}

// count applies fn to the counters under the lock.
func (s *Store) count(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

// ---- keyspace primitives (callers hold s.mu) ----------------------------

// insertLocked adds a fresh object at key and returns it.
func (s *Store) insertLocked(key string) *object {
	o := &object{gen: 1}
	s.objs[key] = o
	i := sort.SearchStrings(s.keys, key)
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = key
	return o
}

// deleteLocked removes the object at key.
func (s *Store) deleteLocked(key string) {
	delete(s.objs, key)
	i := sort.SearchStrings(s.keys, key)
	if i < len(s.keys) && s.keys[i] == key {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
	}
}

// scanLocked returns the sorted keys strictly below prefix (the prefix
// marker itself excluded).
func (s *Store) scanLocked(prefix string) []string {
	lo := sort.SearchStrings(s.keys, prefix)
	out := []string{}
	for _, k := range s.keys[lo:] {
		if !strings.HasPrefix(k, prefix) {
			break
		}
		if k == prefix {
			continue
		}
		out = append(out, k)
	}
	return out
}

// markerKey is the key of path's prefix marker object.
func markerKey(path string) string { return strings.TrimSuffix(path, "/") + "/" }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
