package objfs

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"testing"
	"time"

	"plfs/internal/payload"
	"plfs/internal/sim"
)

func TestMarkerSemantics(t *testing.T) {
	s := New(DefaultConfig())
	b := Vol(s)
	if err := b.Mkdir("/d"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := b.Mkdir("/d"); !errors.Is(err, iofs.ErrExist) {
		t.Fatalf("re-mkdir: want ErrExist, got %v", err)
	}
	fi, err := b.Stat("/d")
	if err != nil || !fi.Dir {
		t.Fatalf("stat dir: %+v, %v", fi, err)
	}
	// A file whose ancestors were never created still works: flat store.
	f, err := b.Create("/d/sub/x")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Append(payload.FromBytes([]byte("hi"))); err != nil {
		t.Fatalf("append: %v", err)
	}
	f.Close()
	// "/d/sub" exists as a directory purely by prefix.
	fi, err = b.Stat("/d/sub")
	if err != nil || !fi.Dir {
		t.Fatalf("stat implied dir: %+v, %v", fi, err)
	}
	ents, err := b.ReadDir("/d")
	if err != nil || len(ents) != 1 || ents[0].Name != "sub" || !ents[0].Dir {
		t.Fatalf("readdir /d: %+v, %v", ents, err)
	}
	if err := b.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: want ErrNotEmpty, got %v", err)
	}
	if err := b.Remove("/d/sub/x"); err != nil {
		t.Fatalf("remove file: %v", err)
	}
	if err := b.Remove("/d"); err != nil {
		t.Fatalf("remove emptied dir: %v", err)
	}
	if _, err := b.Stat("/d"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("stat removed: want ErrNotExist, got %v", err)
	}
}

func TestCondPut(t *testing.T) {
	s := New(DefaultConfig())
	b := Vol(s)
	if err := b.PutIfAbsent("/k", []byte("one")); err != nil {
		t.Fatalf("put-if-absent: %v", err)
	}
	if err := b.PutIfAbsent("/k", []byte("two")); !errors.Is(err, iofs.ErrExist) {
		t.Fatalf("second put-if-absent: want ErrExist, got %v", err)
	}
	if err := b.PutReplace("/k", []byte("three")); err != nil {
		t.Fatalf("put-replace: %v", err)
	}
	f, err := b.OpenRead("/k")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	got := string(f.(*file).ReadAtMust(t, 0, f.Size()))
	if got != "three" {
		t.Fatalf("read back %q, want %q", got, "three")
	}
	st := s.Stats()
	if st.CondPuts != 3 || st.Conflicts != 1 {
		t.Fatalf("stats: condputs=%d conflicts=%d, want 3/1", st.CondPuts, st.Conflicts)
	}
}

// ReadAtMust keeps the test terse.
func (f *file) ReadAtMust(t *testing.T, off, n int64) []byte {
	t.Helper()
	pl, err := f.ReadAt(off, n)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return pl.Materialize()
}

func TestRenamePrefix(t *testing.T) {
	s := New(DefaultConfig())
	b := Vol(s)
	if err := b.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"/a/x", "/a/sub/y"} {
		f, err := b.Create(k)
		if err != nil {
			t.Fatalf("create %s: %v", k, err)
		}
		f.Append(payload.FromBytes([]byte(k)))
		f.Close()
	}
	if err := b.Rename("/a", "/b"); err != nil {
		t.Fatalf("rename prefix: %v", err)
	}
	if _, err := b.Stat("/a"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("old prefix still visible: %v", err)
	}
	f, err := b.OpenRead("/b/sub/y")
	if err != nil {
		t.Fatalf("open moved: %v", err)
	}
	if got := string(f.(*file).ReadAtMust(t, 0, f.Size())); got != "/a/sub/y" {
		t.Fatalf("moved content %q", got)
	}
	// Rename onto a taken name refuses with ErrExist, source intact.
	if err := b.Mkdir("/c"); err != nil {
		t.Fatal(err)
	}
	if err := b.Rename("/b", "/c"); !errors.Is(err, iofs.ErrExist) {
		t.Fatalf("rename over existing: want ErrExist, got %v", err)
	}
	if _, err := b.Stat("/b"); err != nil {
		t.Fatalf("source gone after refused rename: %v", err)
	}
}

func TestSimCostsAndConflict(t *testing.T) {
	eng := sim.NewEngine(7)
	s := NewSim(eng, DefaultConfig())
	s.Roots(1)
	setup := Vol(s)
	if err := setup.PutIfAbsent("/obj0/k", []byte("base")); err != nil {
		t.Fatalf("seed: %v", err)
	}

	var errA, errB error
	err := eng.RunProcs(
		func(p *sim.Proc) {
			b := Backend{s: s, p: p}
			errA = b.PutReplace("/obj0/k", []byte("from-a"))
		},
		func(p *sim.Proc) {
			b := Backend{s: s, p: p}
			errB = b.PutReplace("/obj0/k", []byte("from-b"))
		},
	)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if eng.Now() == 0 {
		t.Fatal("sim-bound ops charged no virtual time")
	}
	// Both procs HEAD the same generation before either PUT lands, so
	// exactly one conditional PUT wins and the other gets a transient
	// ConflictError — deterministically, whatever the jitter.
	var ce *ConflictError
	switch {
	case errA == nil && errors.As(errB, &ce):
	case errB == nil && errors.As(errA, &ce):
	default:
		t.Fatalf("want exactly one conflict, got errA=%v errB=%v", errA, errB)
	}
	if !ce.Transient() {
		t.Fatal("ConflictError must be transient")
	}
	if st := s.Stats(); st.Conflicts != 1 {
		t.Fatalf("conflicts=%d, want 1", st.Conflicts)
	}
}

func TestReadDirPaging(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ListPage = 10
	cfg.JitterFrac = 0
	eng := sim.NewEngine(1)
	s := NewSim(eng, cfg)
	s.Roots(1)
	err := eng.RunProcs(func(p *sim.Proc) {
		b := Backend{s: s, p: p}
		for i := 0; i < 25; i++ {
			f, err := b.Create("/obj0/f" + string(rune('a'+i)))
			if err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
			f.Close()
		}
		t0 := p.Now()
		ents, err := b.ReadDir("/obj0")
		if err != nil || len(ents) != 25 {
			t.Errorf("readdir: %d ents, %v", len(ents), err)
			return
		}
		elapsed := time.Duration(p.Now() - t0)
		// 25 keys at page size 10 = 3 LIST pages + 25 per-key scans + RTTs.
		want := 3*(cfg.RTT+cfg.ListOp) + 25*cfg.ListKey
		if elapsed != want {
			t.Errorf("paged scan cost %v, want %v", elapsed, want)
		}
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if st := s.Stats(); st.Lists != 3 || st.ListKeys != 25 {
		t.Fatalf("lists=%d listkeys=%d, want 3/25", st.Lists, st.ListKeys)
	}
}

// TestListInflightBackpressure pins the listing admission gate: with
// ListInflight slots, a fan-out of concurrent giant prefix scans is
// served at most ListInflight pages at a time — total scan time grows
// to pages/slots rounds — while an unbounded store lets every lister's
// pages proceed concurrently.  Results must be identical either way.
func TestListInflightBackpressure(t *testing.T) {
	const listers, files = 8, 30
	run := func(inflight int) (time.Duration, error) {
		cfg := DefaultConfig()
		cfg.ListPage = 10
		cfg.ListInflight = inflight
		cfg.JitterFrac = 0
		eng := sim.NewEngine(1)
		s := NewSim(eng, cfg)
		s.Roots(1)
		if err := eng.RunProcs(func(p *sim.Proc) {
			b := Backend{s: s, p: p}
			for i := 0; i < files; i++ {
				f, err := b.Create(fmt.Sprintf("/obj0/f%02d", i))
				if err != nil {
					t.Errorf("create %d: %v", i, err)
					return
				}
				f.Close()
			}
		}); err != nil {
			return 0, err
		}
		start := eng.Now()
		fns := make([]func(*sim.Proc), listers)
		for l := 0; l < listers; l++ {
			fns[l] = func(p *sim.Proc) {
				ents, err := Backend{s: s, p: p}.ReadDir("/obj0")
				if err != nil || len(ents) != files {
					t.Errorf("readdir: %d ents, %v", len(ents), err)
				}
			}
		}
		if err := eng.RunProcs(fns...); err != nil {
			return 0, err
		}
		return time.Duration(eng.Now() - start), nil
	}

	bounded, err := run(2)
	if err != nil {
		t.Fatalf("bounded run: %v", err)
	}
	unbounded, err := run(0)
	if err != nil {
		t.Fatalf("unbounded run: %v", err)
	}
	// 8 listers x 3 pages = 24 pages through 2 slots: at least 12 rounds
	// of full page service, against ~3 rounds unbounded.
	pageCost := DefaultConfig().RTT + DefaultConfig().ListOp + 10*DefaultConfig().ListKey
	if bounded < 12*pageCost {
		t.Errorf("bounded scan finished in %v, want >= %v (the gate applied no backpressure)", bounded, 12*pageCost)
	}
	if bounded < 3*unbounded {
		t.Errorf("bounded %v vs unbounded %v: expected >=3x serialization from the gate", bounded, unbounded)
	}
}
